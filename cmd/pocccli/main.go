// Command pocccli is a line client for a pocckv server: it connects to one
// data center's port and forwards commands, printing replies.
//
// By default it speaks the binary front-door protocol through a pooled
// connection (the fast path pocckv serves alongside the text protocol);
// -text falls back to the legacy line protocol, byte for byte what a telnet
// session would send.
//
//	pocccli -addr 127.0.0.1:7070
//	> put user:1 ada
//	OK
//	> get user:1
//	VALUE ada
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"repro/internal/client"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:7070", "pocckv data-center address")
	text := flag.Bool("text", false, "use the legacy line-text protocol instead of the binary front door")
	flag.Parse()

	if *text {
		return runText(*addr)
	}
	pool, err := client.DialPool(client.PoolConfig{Addr: *addr, Conns: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer pool.Close()
	sess := pool.Session()
	if err := sess.Ping(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("connected to %s (binary front door)\n", *addr)

	stdin := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !stdin.Scan() {
			fmt.Println()
			return 0
		}
		line := strings.TrimSpace(stdin.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "QUIT") {
			fmt.Println("BYE")
			return 0
		}
		for _, out := range runBinary(sess, line) {
			fmt.Println(out)
		}
	}
}

// runBinary executes one REPL line against a front-door session, rendering
// replies in the text protocol's familiar shapes.
func runBinary(sess *client.RemoteSession, line string) []string {
	cmd, rest, _ := strings.Cut(line, " ")
	switch strings.ToUpper(cmd) {
	case "PING":
		if err := sess.Ping(); err != nil {
			return []string{"ERR " + err.Error()}
		}
		return []string{"PONG"}
	case "PUT":
		key, value, ok := strings.Cut(rest, " ")
		if !ok || key == "" {
			return []string{"ERR usage: PUT <key> <value>"}
		}
		if err := sess.Put(key, []byte(value)); err != nil {
			return []string{"ERR " + err.Error()}
		}
		return []string{"OK"}
	case "GET":
		key := strings.TrimSpace(rest)
		if key == "" {
			return []string{"ERR usage: GET <key>"}
		}
		v, err := sess.Get(key)
		if err != nil {
			return []string{"ERR " + err.Error()}
		}
		if v == nil {
			return []string{"NIL"}
		}
		return []string{"VALUE " + string(v)}
	case "TX":
		keys := strings.Fields(rest)
		if len(keys) == 0 {
			return []string{"ERR usage: TX <key> [key...]"}
		}
		vals, err := sess.ROTx(keys)
		if err != nil {
			return []string{"ERR " + err.Error()}
		}
		out := make([]string, 0, len(keys)+1)
		for _, k := range keys {
			if vals[k] == nil {
				out = append(out, "TXNIL "+k)
			} else {
				out = append(out, "TXVAL "+k+" "+string(vals[k]))
			}
		}
		return append(out, "TXEND")
	case "STATS":
		text, err := sess.Stats()
		if err != nil {
			return []string{"ERR " + err.Error()}
		}
		return strings.Split(text, "\n")
	default:
		// Everything else (WHEREIS/SPLIT/MOVESLOTS/SLOTS/JOIN/LEAVE/EVICT)
		// rides the admin frame; the server enforces its allow-list.
		text, err := sess.Admin(line)
		if err != nil {
			return []string{"ERR " + err.Error()}
		}
		return strings.Split(text, "\n")
	}
}

// runText is the legacy raw loop: lines out, lines in.
func runText(addr string) int {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer func() { _ = conn.Close() }()
	fmt.Printf("connected to %s (text protocol)\n", addr)

	serverReader := bufio.NewReader(conn)
	stdin := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !stdin.Scan() {
			fmt.Println()
			return 0
		}
		line := strings.TrimSpace(stdin.Text())
		if line == "" {
			continue
		}
		if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		upper := strings.ToUpper(line)
		multiline := strings.HasPrefix(upper, "TX ") || upper == "SLOTS"
		for {
			resp, err := serverReader.ReadString('\n')
			if err != nil {
				fmt.Fprintln(os.Stderr, "connection closed")
				return 0
			}
			resp = strings.TrimRight(resp, "\n")
			fmt.Println(resp)
			if !multiline || resp == "TXEND" || resp == "SLOTEND" || strings.HasPrefix(resp, "ERR") {
				break
			}
		}
		if upper == "QUIT" {
			return 0
		}
	}
}
