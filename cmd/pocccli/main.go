// Command pocccli is a line client for a pocckv server: it connects to one
// data center's port and forwards commands, printing replies.
//
//	pocccli -addr 127.0.0.1:7070
//	> put user:1 ada
//	OK
//	> get user:1
//	VALUE ada
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:7070", "pocckv data-center address")
	flag.Parse()

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer func() { _ = conn.Close() }()
	fmt.Printf("connected to %s\n", *addr)

	serverReader := bufio.NewReader(conn)
	stdin := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !stdin.Scan() {
			fmt.Println()
			return 0
		}
		line := strings.TrimSpace(stdin.Text())
		if line == "" {
			continue
		}
		if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		upper := strings.ToUpper(line)
		multiline := strings.HasPrefix(upper, "TX ")
		for {
			resp, err := serverReader.ReadString('\n')
			if err != nil {
				fmt.Fprintln(os.Stderr, "connection closed")
				return 0
			}
			resp = strings.TrimRight(resp, "\n")
			fmt.Println(resp)
			if !multiline || resp == "TXEND" || strings.HasPrefix(resp, "ERR") {
				break
			}
		}
		if upper == "QUIT" {
			return 0
		}
	}
}
