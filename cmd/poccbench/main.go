// Command poccbench regenerates the paper's evaluation figures against the
// emulated geo-replicated deployment.
//
// Usage:
//
//	poccbench -experiment all                 # every figure, CI scale
//	poccbench -experiment fig1a -scale paper  # one figure at paper scale
//	poccbench -list
//
// Scales: "ci" (seconds per figure, small cluster) and "paper" (3 DCs × 32
// partitions, 25 ms think time, full AWS latencies; minutes per figure).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/harness"
)

type experiment struct {
	id   string
	desc string
	run  func(ctx context.Context, sc harness.Scale) ([]*harness.Table, error)
}

func experiments() []experiment {
	return []experiment{
		{"fig1a", "throughput vs #partitions (GET:PUT = p:1)",
			func(ctx context.Context, sc harness.Scale) ([]*harness.Table, error) {
				t, err := harness.Fig1a(ctx, sc, figPartitions(sc))
				return []*harness.Table{t}, err
			}},
		{"fig1b", "response time vs throughput (32:1 GET:PUT)", getPutSweep([]string{"fig1b"})},
		{"fig1c", "throughput vs GET:PUT ratio",
			func(ctx context.Context, sc harness.Scale) ([]*harness.Table, error) {
				t, err := harness.Fig1c(ctx, sc, nil)
				return []*harness.Table{t}, err
			}},
		{"fig2a", "POCC blocking behaviour (GET/PUT)", getPutSweep([]string{"fig2a"})},
		{"fig2b", "Cure* staleness (GET/PUT)", getPutSweep([]string{"fig2b"})},
		{"getput-sweep", "fig1b + fig2a + fig2b from one sweep", getPutSweep([]string{"fig1b", "fig2a", "fig2b"})},
		{"fig3a", "throughput vs partitions per RO-TX",
			func(ctx context.Context, sc harness.Scale) ([]*harness.Table, error) {
				t, err := harness.Fig3a(ctx, sc, figPartitions(sc))
				return []*harness.Table{t}, err
			}},
		{"fig3b", "throughput and RO-TX resp. time vs clients", txSweep([]string{"fig3b"})},
		{"fig3c", "POCC blocking behaviour (RO-TX + PUT)", txSweep([]string{"fig3c"})},
		{"fig3d", "transactional staleness POCC vs Cure*", txSweep([]string{"fig3d"})},
		{"tx-sweep", "fig3b + fig3c + fig3d from one sweep", txSweep([]string{"fig3b", "fig3c", "fig3d"})},
		{"frontdoor", "serving path: text vs binary pipelined vs pooled",
			func(ctx context.Context, sc harness.Scale) ([]*harness.Table, error) {
				t, err := harness.FrontDoor(ctx, sc, 0)
				return []*harness.Table{t}, err
			}},
		{"partition", "behaviour across a network partition (paper's future work)",
			func(ctx context.Context, sc harness.Scale) ([]*harness.Table, error) {
				t, err := harness.PartitionExperiment(ctx, sc, sc.Measure/2)
				return []*harness.Table{t}, err
			}},
		{"ablation-stab", "Cure* stabilization interval sweep",
			func(ctx context.Context, sc harness.Scale) ([]*harness.Table, error) {
				t, err := harness.AblationStabilization(ctx, sc, nil)
				return []*harness.Table{t}, err
			}},
		{"ablation-hb", "POCC heartbeat interval sweep",
			func(ctx context.Context, sc harness.Scale) ([]*harness.Table, error) {
				t, err := harness.AblationHeartbeat(ctx, sc, nil)
				return []*harness.Table{t}, err
			}},
		{"ablation-skew", "clock skew sweep, raw vs hybrid clocks",
			func(ctx context.Context, sc harness.Scale) ([]*harness.Table, error) {
				t, err := harness.AblationClockSkew(ctx, sc, nil)
				return []*harness.Table{t}, err
			}},
		{"visibility", "remote visibility and GSS lag by clock/stabilization variant",
			func(ctx context.Context, sc harness.Scale) ([]*harness.Table, error) {
				t, err := harness.FigureVisibility(ctx, sc)
				return []*harness.Table{t}, err
			}},
		{"ablation-think", "think time sweep",
			func(ctx context.Context, sc harness.Scale) ([]*harness.Table, error) {
				t, err := harness.AblationThinkTime(ctx, sc, nil)
				return []*harness.Table{t}, err
			}},
	}
}

// figPartitions picks the partition sweep for the scale: the paper's
// {2..32} at paper scale, a shrunken set otherwise.
func figPartitions(sc harness.Scale) []int {
	if sc.Partitions >= 32 {
		return []int{2, 4, 8, 16, 24, 32}
	}
	out := []int{}
	for p := 2; p <= sc.Partitions; p *= 2 {
		out = append(out, p)
	}
	return out
}

func clientSweep(sc harness.Scale) []int {
	base := sc.ClientsPerPart
	return []int{base / 4, base / 2, base, base * 2}
}

func getPutSweep(ids []string) func(context.Context, harness.Scale) ([]*harness.Table, error) {
	return func(ctx context.Context, sc harness.Scale) ([]*harness.Table, error) {
		points, err := harness.GetPutSweep(ctx, sc, clientSweep(sc))
		if err != nil {
			return nil, err
		}
		var out []*harness.Table
		for _, id := range ids {
			switch id {
			case "fig1b":
				out = append(out, harness.Fig1b(points))
			case "fig2a":
				out = append(out, harness.Fig2a(points))
			case "fig2b":
				out = append(out, harness.Fig2b(points))
			}
		}
		return out, nil
	}
}

func txSweep(ids []string) func(context.Context, harness.Scale) ([]*harness.Table, error) {
	return func(ctx context.Context, sc harness.Scale) ([]*harness.Table, error) {
		points, err := harness.TxSweep(ctx, sc, clientSweep(sc))
		if err != nil {
			return nil, err
		}
		var out []*harness.Table
		for _, id := range ids {
			switch id {
			case "fig3b":
				out = append(out, harness.Fig3b(points))
			case "fig3c":
				out = append(out, harness.Fig3c(points))
			case "fig3d":
				out = append(out, harness.Fig3d(points))
			}
		}
		return out, nil
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		expFlag   = flag.String("experiment", "all", "experiment id, comma list, or 'all'")
		scaleFlag = flag.String("scale", "ci", "'ci', 'medium' or 'paper'")
		listFlag  = flag.Bool("list", false, "list experiments and exit")
		timeout   = flag.Duration("timeout", time.Hour, "overall deadline")
	)
	flag.Parse()

	exps := experiments()
	if *listFlag {
		for _, e := range exps {
			fmt.Printf("%-16s %s\n", e.id, e.desc)
		}
		return 0
	}

	var sc harness.Scale
	switch *scaleFlag {
	case "ci":
		sc = harness.CIScale()
	case "medium":
		sc = harness.MediumScale()
	case "paper":
		sc = harness.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		return 2
	}

	want := map[string]bool{}
	runAll := *expFlag == "all"
	for _, id := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(id)] = true
	}
	if runAll {
		// "all" uses the combined sweeps instead of re-running per figure.
		want = map[string]bool{
			"fig1a": true, "fig1c": true, "getput-sweep": true,
			"fig3a": true, "tx-sweep": true, "partition": true,
			"frontdoor": true,
			"ablation-stab": true, "ablation-hb": true,
			"ablation-skew": true, "ablation-think": true,
			"visibility": true,
		}
	}

	known := map[string]bool{}
	for _, e := range exps {
		known[e.id] = true
	}
	var unknown []string
	for id := range want {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "unknown experiments: %s\n", strings.Join(unknown, ", "))
		return 2
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	start := time.Now()
	for _, e := range exps {
		if !want[e.id] {
			continue
		}
		fmt.Printf("# running %s (%s scale)...\n", e.id, *scaleFlag)
		tables, err := e.run(ctx, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			return 1
		}
		for _, t := range tables {
			t.Fprint(func(format string, args ...any) { fmt.Printf(format, args...) })
			fmt.Println()
		}
	}
	fmt.Printf("# done in %v\n", time.Since(start).Round(time.Millisecond))
	return 0
}
