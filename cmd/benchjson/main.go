// Command benchjson converts `go test -bench` text output (stdin) into a
// stable JSON document (stdout) so benchmark trajectories can be committed
// and diffed across PRs. Non-benchmark lines are skipped; context lines
// (goos/goarch/pkg/cpu) are captured into the header.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -date 2026-08-08 > BENCH_2026-08-08.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line. NsPerOp is pulled out of Metrics because it
// is the headline; everything else (allocs/op, B/op, versions/s, ...) stays
// keyed by its unit.
type Result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the committed document.
type Report struct {
	Date       string            `json:"date"`
	GoVersion  string            `json:"go_version"`
	Host       map[string]string `json:"host,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
}

func main() {
	date := flag.String("date", "", "date stamp for the report (required, e.g. 2026-08-08)")
	flag.Parse()
	if *date == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -date is required")
		os.Exit(2)
	}

	rep := Report{
		Date:      *date,
		GoVersion: runtime.Version(),
		Host:      map[string]string{},
	}
	var pkg string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "goos: "), strings.HasPrefix(line, "goarch: "), strings.HasPrefix(line, "cpu: "):
			k, v, _ := strings.Cut(line, ": ")
			rep.Host[k] = v
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a PASS/FAIL/name-only line
		}
		r := Result{
			Name:       trimProcSuffix(fields[0]),
			Package:    pkg,
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		// The tail is value/unit pairs: "8566 ns/op 266 B/op 3 allocs/op ...".
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				r.NsPerOp = val
			} else {
				r.Metrics[fields[i+1]] = val
			}
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// trimProcSuffix drops the GOMAXPROCS suffix go test appends to benchmark
// names ("BenchmarkPutPOCC-8" → "BenchmarkPutPOCC") so reports from machines
// with different core counts stay diffable. Sub-benchmark slashes survive.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
