package main

import (
	"strings"
	"testing"
	"time"

	occ "repro"
)

func testShell(t *testing.T) *shell {
	t.Helper()
	store, err := occ.Open(occ.Config{
		DataCenters: 2, Partitions: 2, Engine: occ.POCC,
		Latency: occ.UniformProfile(20*time.Microsecond, 200*time.Microsecond),
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	sh, err := newShell(store)
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func runCmd(sh *shell, line string) string {
	var sb strings.Builder
	sh.exec(&sb, line)
	return sb.String()
}

func TestParseEngine(t *testing.T) {
	for in, want := range map[string]occ.Engine{
		"pocc": occ.POCC, "cure": occ.CureStar, "CURE*": occ.CureStar,
		"hapocc": occ.HAPOCC, "HA-POCC": occ.HAPOCC,
	} {
		got, err := parseEngine(in)
		if err != nil || got != want {
			t.Fatalf("parseEngine(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseEngine("mongo"); err == nil {
		t.Fatal("unknown engine must be rejected")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	sh := testShell(t)
	if out := runCmd(sh, "put color blue"); !strings.Contains(out, "OK") {
		t.Fatalf("put: %q", out)
	}
	if out := runCmd(sh, "get color"); !strings.Contains(out, `"blue"`) {
		t.Fatalf("get: %q", out)
	}
}

func TestPutMultiWordValue(t *testing.T) {
	sh := testShell(t)
	runCmd(sh, "put msg hello causal world")
	if out := runCmd(sh, "get msg"); !strings.Contains(out, `"hello causal world"`) {
		t.Fatalf("get: %q", out)
	}
}

func TestGetMissing(t *testing.T) {
	sh := testShell(t)
	if out := runCmd(sh, "get ghost"); !strings.Contains(out, "(nil)") {
		t.Fatalf("get: %q", out)
	}
}

func TestTx(t *testing.T) {
	sh := testShell(t)
	runCmd(sh, "put a 1")
	runCmd(sh, "put b 2")
	out := runCmd(sh, "tx a b")
	if !strings.Contains(out, `a = "1"`) || !strings.Contains(out, `b = "2"`) {
		t.Fatalf("tx: %q", out)
	}
}

func TestDCSwitch(t *testing.T) {
	sh := testShell(t)
	if out := runCmd(sh, "dc 1"); out != "" {
		t.Fatalf("dc: %q", out)
	}
	if sh.dc != 1 {
		t.Fatal("dc not switched")
	}
	if out := runCmd(sh, "dc 9"); !strings.Contains(out, "no data center") {
		t.Fatalf("dc 9: %q", out)
	}
	if out := runCmd(sh, "dc x"); !strings.Contains(out, "no data center") {
		t.Fatalf("dc x: %q", out)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	sh := testShell(t)
	if out := runCmd(sh, "partition 0 1"); !strings.Contains(out, "down") {
		t.Fatalf("partition: %q", out)
	}
	runCmd(sh, "put island yes") // dc0 write while partitioned
	runCmd(sh, "dc 1")
	if out := runCmd(sh, "get island"); !strings.Contains(out, "(nil)") {
		t.Fatalf("partitioned read leaked: %q", out)
	}
	if out := runCmd(sh, "heal 0 1"); !strings.Contains(out, "healed") {
		t.Fatalf("heal: %q", out)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if out := runCmd(sh, "get island"); strings.Contains(out, `"yes"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healed write never became visible")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStatsAndWhereis(t *testing.T) {
	sh := testShell(t)
	runCmd(sh, "put k v")
	out := runCmd(sh, "stats")
	if !strings.Contains(out, "ops=") || !strings.Contains(out, "session dc0") {
		t.Fatalf("stats: %q", out)
	}
	if out := runCmd(sh, "whereis k"); !strings.Contains(out, "partition") {
		t.Fatalf("whereis: %q", out)
	}
}

func TestUnknownAndUsage(t *testing.T) {
	sh := testShell(t)
	if out := runCmd(sh, "frobnicate"); !strings.Contains(out, "unknown command") {
		t.Fatalf("unknown: %q", out)
	}
	for _, line := range []string{"put onlykey", "get", "tx", "dc", "partition 1", "whereis"} {
		if out := runCmd(sh, line); !strings.Contains(out, "usage:") {
			t.Fatalf("%q: %q", line, out)
		}
	}
	if out := runCmd(sh, "help"); !strings.Contains(out, "commands:") {
		t.Fatalf("help: %q", out)
	}
}

func TestREPLQuit(t *testing.T) {
	sh := testShell(t)
	in := strings.NewReader("put x 1\nget x\nquit\n")
	var out strings.Builder
	if err := sh.repl(in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"1"`) {
		t.Fatalf("repl output: %q", out.String())
	}
}
