// Command poccshell is an interactive shell over a POCC deployment: it
// opens an in-process multi-DC store and lets you issue GETs, PUTs and
// read-only transactions from sessions in different data centers, inject
// and heal network partitions, grow and shrink the deployment (join/leave,
// with -max-dcs headroom), split hot partitions live (split/moveslots, with
// -max-partitions headroom), and inspect statistics — a hands-on tour of
// optimistic causal consistency.
//
// Usage:
//
//	poccshell [-engine pocc|cure|hapocc] [-dcs 3] [-partitions 4] [-max-dcs 6] [-max-partitions 8]
//
// Then type "help".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	occ "repro"
)

func main() {
	var (
		engineFlag = flag.String("engine", "pocc", "pocc, cure or hapocc")
		dcs        = flag.Int("dcs", 3, "number of data centers")
		partitions = flag.Int("partitions", 4, "partitions per data center")
		latency    = flag.Float64("latency", 0.05, "AWS latency scale (1.0 = real)")
		maxDCs     = flag.Int("max-dcs", 0, "DC-slot capacity for the join command (0 = -dcs, fixed membership)")
		maxParts   = flag.Int("max-partitions", 0, "partition capacity for the split command (0 = -partitions, fixed keyspace layout)")
		dataDir    = flag.String("data-dir", "", "durable WAL-backed storage root (required for join; a temp dir is used when -max-dcs is set without it)")
	)
	flag.Parse()

	engine, err := parseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	dir := *dataDir
	if dir == "" && *maxDCs > *dcs {
		// Joins bootstrap from the siblings' WALs, so an elastic shell needs
		// durable storage even if the user did not ask for a specific root.
		if dir, err = os.MkdirTemp("", "poccshell-*"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
	}
	store, err := occ.Open(occ.Config{
		DataCenters:    *dcs,
		Partitions:     *partitions,
		Engine:         engine,
		Latency:        occ.AWSProfile(*latency),
		Seed:           uint64(time.Now().UnixNano()),
		DataDir:        dir,
		MaxDataCenters: *maxDCs,
		MaxPartitions:  *maxParts,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer store.Close()

	fmt.Printf("opened %s store: %d DCs × %d partitions (type \"help\")\n",
		engine, *dcs, *partitions)
	sh, err := newShell(store)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := sh.repl(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func parseEngine(s string) (occ.Engine, error) {
	switch strings.ToLower(s) {
	case "pocc":
		return occ.POCC, nil
	case "cure", "cure*", "curestar":
		return occ.CureStar, nil
	case "hapocc", "ha-pocc":
		return occ.HAPOCC, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want pocc, cure or hapocc)", s)
	}
}

// shell holds the REPL state: one session per data center, one current DC.
type shell struct {
	store    *occ.Store
	sessions []*occ.Session
	dc       int
}

func newShell(store *occ.Store) (*shell, error) {
	sh := &shell{store: store}
	for dc := 0; dc < store.DataCenters(); dc++ {
		s, err := store.Session(dc)
		if err != nil {
			return nil, err
		}
		sh.sessions = append(sh.sessions, s)
	}
	return sh, nil
}

func (sh *shell) repl(in io.Reader, out io.Writer) error {
	scanner := bufio.NewScanner(in)
	for {
		fmt.Fprintf(out, "dc%d> ", sh.dc)
		if !scanner.Scan() {
			fmt.Fprintln(out)
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		sh.exec(out, line)
	}
}

// exec runs one command line.
func (sh *shell) exec(out io.Writer, line string) {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		fmt.Fprint(out, helpText)
	case "dc":
		sh.cmdDC(out, args)
	case "put":
		sh.cmdPut(out, args)
	case "get":
		sh.cmdGet(out, args)
	case "tx":
		sh.cmdTx(out, args)
	case "partition":
		sh.cmdPartition(out, args, true)
	case "heal":
		sh.cmdPartition(out, args, false)
	case "stats":
		sh.cmdStats(out)
	case "whereis":
		sh.cmdWhereis(out, args)
	case "join":
		sh.cmdJoin(out)
	case "leave":
		sh.cmdLeave(out, args)
	case "kill":
		sh.cmdKill(out, args)
	case "evict":
		sh.cmdEvict(out, args)
	case "split":
		sh.cmdSplit(out, args)
	case "moveslots":
		sh.cmdMoveSlots(out, args)
	case "slots":
		sh.cmdSlots(out)
	default:
		fmt.Fprintf(out, "unknown command %q (try \"help\")\n", cmd)
	}
}

const helpText = `commands:
  dc <i>                switch the current session to data center i
  put <key> <value>     write a key from the current DC's session
  get <key>             read a key from the current DC's session
  tx <key> [key...]     causally consistent read-only transaction
  whereis <key>         show the partition a key maps to
  partition <a> <b>     cut all network links between DCs a and b
  heal <a> <b>          heal the links between DCs a and b
  join                  grow the deployment by one DC (bootstraps its full
                        history from the others via WAL catch-up; needs
                        -max-dcs headroom)
  leave <dc>            remove a DC (its history survives on the others)
  kill <dc>             crash every server of a DC (needs -data-dir; the
                        others' stabilization freezes until you evict it)
  evict <dc>            forcibly remove a crashed DC: the survivors agree on
                        its final replicated timestamps and resume
  split <p>             grow every DC by one partition server: half of
                        partition p's hash slots (and their history) move to
                        it live (needs -max-partitions headroom)
  moveslots <to> <s...> reassign hash slots to an existing partition,
                        migrating their history first
  slots                 show the slot routing table (epoch 0 = static
                        layout)
  stats                 server-side blocking/staleness statistics, link
                        health and GC holdback
  quit                  exit
`

func (sh *shell) cmdDC(out io.Writer, args []string) {
	if len(args) != 1 {
		fmt.Fprintln(out, "usage: dc <i>")
		return
	}
	i, err := strconv.Atoi(args[0])
	if err != nil || i < 0 || i >= len(sh.sessions) || sh.sessions[i] == nil {
		fmt.Fprintf(out, "no data center %q (have 0..%d)\n", args[0], len(sh.sessions)-1)
		return
	}
	sh.dc = i
}

func (sh *shell) cmdPut(out io.Writer, args []string) {
	if len(args) < 2 {
		fmt.Fprintln(out, "usage: put <key> <value>")
		return
	}
	key, val := args[0], strings.Join(args[1:], " ")
	start := time.Now()
	if err := sh.sessions[sh.dc].Put(key, []byte(val)); err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(out, "OK (%v)\n", time.Since(start).Round(time.Microsecond))
}

func (sh *shell) cmdGet(out io.Writer, args []string) {
	if len(args) != 1 {
		fmt.Fprintln(out, "usage: get <key>")
		return
	}
	start := time.Now()
	v, err := sh.sessions[sh.dc].Get(args[0])
	if err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	if v == nil {
		fmt.Fprintf(out, "(nil) (%v)\n", time.Since(start).Round(time.Microsecond))
		return
	}
	fmt.Fprintf(out, "%q (%v)\n", v, time.Since(start).Round(time.Microsecond))
}

func (sh *shell) cmdTx(out io.Writer, args []string) {
	if len(args) == 0 {
		fmt.Fprintln(out, "usage: tx <key> [key...]")
		return
	}
	start := time.Now()
	vals, err := sh.sessions[sh.dc].ROTx(args)
	if err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	for _, k := range args {
		if vals[k] == nil {
			fmt.Fprintf(out, "  %s = (nil)\n", k)
		} else {
			fmt.Fprintf(out, "  %s = %q\n", k, vals[k])
		}
	}
	fmt.Fprintf(out, "snapshot read in %v\n", time.Since(start).Round(time.Microsecond))
}

func (sh *shell) cmdPartition(out io.Writer, args []string, down bool) {
	if len(args) != 2 {
		fmt.Fprintln(out, "usage: partition|heal <dcA> <dcB>")
		return
	}
	a, errA := strconv.Atoi(args[0])
	b, errB := strconv.Atoi(args[1])
	if errA != nil || errB != nil {
		fmt.Fprintln(out, "data centers must be numbers")
		return
	}
	sh.store.PartitionNetwork(a, b, down)
	if down {
		fmt.Fprintf(out, "links between dc%d and dc%d are down\n", a, b)
	} else {
		fmt.Fprintf(out, "links between dc%d and dc%d healed\n", a, b)
	}
}

func (sh *shell) cmdStats(out io.Writer) {
	st := sh.store.Stats()
	fmt.Fprintf(out, "ops=%d blocked=%d (prob %.2e, mean %v)\n",
		st.Operations, st.BlockedOperations, st.BlockingProbability, st.MeanBlockingTime)
	fmt.Fprintf(out, "old reads=%.3f%% unmerged=%.3f%% keys=%d versions=%d messages=%d\n",
		st.PercentOldReads, st.PercentUnmergedReads, st.Keys, st.Versions, sh.store.Messages())
	fmt.Fprintf(out, "layout: partitions=%d slot_epoch=%d\n", st.Partitions, st.SlotEpoch)
	fmt.Fprintf(out, "replication: max lag=%v catchups=%d served=%d active=%d full_resyncs=%d\n",
		st.MaxReplicationLag().Round(time.Microsecond), st.CatchUps, st.CatchUpsServed,
		st.CatchUpsActive, st.FullResyncs)
	if st.GCHoldbackAge > 0 {
		fmt.Fprintf(out, "gc holdback: oldest laggard deferring GC for %v\n",
			st.GCHoldbackAge.Round(time.Millisecond))
	}
	if st.CommitGroups > 0 {
		fmt.Fprintf(out, "durable: fsyncs=%d groups=%d records=%d group_p50=%d group_max=%d ack_lag mean=%v max=%v\n",
			st.Fsyncs, st.CommitGroups, st.WALRecords, st.CommitGroupP50, st.CommitGroupMax,
			st.AckToDurableMean.Round(time.Microsecond), st.AckToDurableMax.Round(time.Microsecond))
		fmt.Fprintf(out, "catch-up seeks: hits=%d full_scans=%d parts_skipped=%d\n",
			st.SeekHits, st.FullScans, st.PartsSkipped)
	}
	for dst, row := range st.ReplicationLagPerLink {
		for src, lag := range row {
			if src != dst && lag > 0 {
				fmt.Fprintf(out, "  link dc%d<-dc%d lag=%v\n", dst, src, lag.Round(time.Microsecond))
			}
		}
	}
	for dst, row := range st.LinkStates {
		for src, state := range row {
			if src != dst && state != "" && state != "self" && state != "active" {
				fmt.Fprintf(out, "  link dc%d<-dc%d state=%s\n", dst, src, state)
			}
		}
	}
	for i, s := range sh.sessions {
		if s == nil {
			fmt.Fprintf(out, "session dc%d: (left the deployment)\n", i)
			continue
		}
		mode := "optimistic"
		if s.Pessimistic() {
			mode = "pessimistic"
		}
		fmt.Fprintf(out, "session dc%d: %s (fallbacks=%d promotions=%d)\n",
			i, mode, s.Fallbacks(), s.Promotions())
	}
}

func (sh *shell) cmdJoin(out io.Writer) {
	dc, err := sh.store.AddDataCenter()
	if err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(out, "dc%d starting: bootstrapping history via WAL catch-up...\n", dc)
	start := time.Now()
	if err := sh.store.WaitForJoin(dc, time.Minute); err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	sess, err := sh.store.Session(dc)
	if err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	sh.sessions = append(sh.sessions, sess)
	fmt.Fprintf(out, "dc%d joined and is active (%v); \"dc %d\" switches to it\n",
		dc, time.Since(start).Round(time.Millisecond), dc)
}

func (sh *shell) cmdLeave(out io.Writer, args []string) {
	if len(args) != 1 {
		fmt.Fprintln(out, "usage: leave <dc>")
		return
	}
	dc, err := strconv.Atoi(args[0])
	if err != nil {
		fmt.Fprintln(out, "data center must be a number")
		return
	}
	if err := sh.store.RemoveDataCenter(dc); err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	if dc < len(sh.sessions) {
		sh.sessions[dc] = nil
	}
	if sh.dc == dc {
		for i, s := range sh.sessions {
			if s != nil {
				sh.dc = i
				break
			}
		}
	}
	fmt.Fprintf(out, "dc%d left; its history lives on in the remaining DCs\n", dc)
}

func (sh *shell) cmdKill(out io.Writer, args []string) {
	if len(args) != 1 {
		fmt.Fprintln(out, "usage: kill <dc>")
		return
	}
	dc, err := strconv.Atoi(args[0])
	if err != nil {
		fmt.Fprintln(out, "data center must be a number")
		return
	}
	if err := sh.store.KillDataCenter(dc); err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(out, "dc%d crashed; stabilization on the others freezes until \"evict %d\"\n", dc, dc)
}

func (sh *shell) cmdEvict(out io.Writer, args []string) {
	if len(args) != 1 {
		fmt.Fprintln(out, "usage: evict <dc>")
		return
	}
	dc, err := strconv.Atoi(args[0])
	if err != nil {
		fmt.Fprintln(out, "data center must be a number")
		return
	}
	start := time.Now()
	if err := sh.store.ForceRemoveDataCenter(dc, 0); err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	if dc < len(sh.sessions) {
		sh.sessions[dc] = nil
	}
	if sh.dc == dc {
		for i, s := range sh.sessions {
			if s != nil {
				sh.dc = i
				break
			}
		}
	}
	fmt.Fprintf(out, "dc%d evicted in %v: survivors agreed on its final timestamps and resumed\n",
		dc, time.Since(start).Round(time.Millisecond))
}

func (sh *shell) cmdWhereis(out io.Writer, args []string) {
	if len(args) != 1 {
		fmt.Fprintln(out, "usage: whereis <key>")
		return
	}
	fmt.Fprintf(out, "partition %d\n", sh.store.PartitionOf(args[0]))
}

func (sh *shell) cmdSplit(out io.Writer, args []string) {
	if len(args) != 1 {
		fmt.Fprintln(out, "usage: split <partition>")
		return
	}
	donor, err := strconv.Atoi(args[0])
	if err != nil {
		fmt.Fprintln(out, "partition must be a number")
		return
	}
	start := time.Now()
	np, err := sh.store.SplitPartition(donor)
	if err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(out, "partition %d split in %v: p%d now serves half its slots (epoch %d)\n",
		donor, time.Since(start).Round(time.Millisecond), np, sh.store.Stats().SlotEpoch)
}

func (sh *shell) cmdMoveSlots(out io.Writer, args []string) {
	if len(args) < 2 {
		fmt.Fprintln(out, "usage: moveslots <to> <slot> [slot...]")
		return
	}
	to, err := strconv.Atoi(args[0])
	if err != nil {
		fmt.Fprintln(out, "target partition must be a number")
		return
	}
	var slots []int
	for _, a := range args[1:] {
		sl, err := strconv.Atoi(a)
		if err != nil {
			fmt.Fprintf(out, "bad slot %q\n", a)
			return
		}
		slots = append(slots, sl)
	}
	start := time.Now()
	if err := sh.store.MoveSlots(slots, to); err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(out, "%d slot(s) moved to p%d in %v\n",
		len(slots), to, time.Since(start).Round(time.Millisecond))
}

func (sh *shell) cmdSlots(out io.Writer) {
	tbl := sh.store.SlotTable()
	if tbl == nil {
		fmt.Fprintf(out, "epoch 0 (static layout): %d partitions, slot s -> s mod %d\n",
			sh.store.Partitions(), sh.store.Partitions())
		return
	}
	fmt.Fprintf(out, "epoch %d: %d partitions\n", tbl.Epoch, tbl.Parts)
	for p := 0; p < tbl.Parts; p++ {
		fmt.Fprintf(out, "  p%d: %d slot(s)\n", p, len(tbl.SlotsOwnedBy(p)))
	}
}
