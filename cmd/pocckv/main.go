// Command pocckv runs a geo-replicated causal key-value store and serves it
// over TCP, one port per data center. Clients connect to "their" data
// center's port and speak either protocol the listener serves: the
// pipelined binary front door (what cmd/pocccli and internal/client.Pool
// use — multiplexed sessions, out-of-order completion) or the line protocol
// documented in internal/kvserver (PUT/GET/TX/STATS — try it with telnet or
// pocccli -text).
//
//	pocckv -engine pocc -dcs 3 -partitions 8 -port 7070
//
// binds ports 7070 (DC0), 7071 (DC1) and 7072 (DC2).
//
// With -data-dir and -max-dcs headroom the deployment is elastic: the JOIN
// admin command (or -join at startup) grows it by a data center that
// bootstraps its full history from the existing DCs' write-ahead logs and
// then serves on the next port, and LEAVE <dc> retires one, its history
// surviving on the remaining DCs.
//
// With -max-partitions headroom the keyspace is elastic too: SPLIT <p>
// grows every DC by one partition server, migrating half of partition p's
// hash slots (and their history) to it live, MOVESLOTS rebalances slots
// between existing partitions, and SLOTS shows the routing table.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	occ "repro"
	"repro/internal/kvserver"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		engineFlag = flag.String("engine", "pocc", "pocc, cure or hapocc")
		dcs        = flag.Int("dcs", 3, "number of data centers")
		partitions = flag.Int("partitions", 8, "partitions per data center")
		host       = flag.String("host", "127.0.0.1", "listen host")
		port       = flag.Int("port", 7070, "base port (one per DC)")
		latency    = flag.Float64("latency", 1.0, "AWS latency scale (1.0 = real geo delays)")
		tcp        = flag.Bool("internal-tcp", false, "run inter-node traffic over loopback TCP too")
		dataDir    = flag.String("data-dir", "", "enable durable WAL-backed storage rooted at this directory (empty = in-memory)")
		ckptBytes  = flag.Int64("checkpoint-bytes", 0, "WAL growth that arms a snapshot checkpoint (0 = 1 MiB, negative disables; needs -data-dir)")
		segBytes   = flag.Int64("segment-bytes", 0, "WAL segment roll size (0 = 4 MiB; needs -data-dir)")
		noSync     = flag.Bool("no-sync", false, "skip the per-commit fsync (faster, loses the latest commits on a machine crash)")
		noFsync    = flag.Bool("no-fsync", false, "deprecated alias for -no-sync")
		ackMode    = flag.String("ack", "sync", "local PUT durability: sync (ack after group fsync) or grouped (ack after staging; fsync trails)")
		groupWin   = flag.Duration("group-commit-window", 0, "extra linger coalescing concurrent commits into one fsync (0 = pipeline batching only)")
		catchUp    = flag.String("catchup", "auto", "replication catch-up mode: auto (on when durable), on, off")
		catchUpWin = flag.Int("catchup-max-inflight", 0, "max un-acked bytes per WAL-shipped catch-up stream (0 = 1 MiB)")
		maxDCs     = flag.Int("max-dcs", 0, "DC-slot capacity for runtime joins via the JOIN admin command (0 = -dcs, fixed membership; needs -data-dir to join)")
		maxParts   = flag.Int("max-partitions", 0, "partition capacity for live keyspace splits via the SPLIT admin command (0 = -partitions, fixed layout)")
		join       = flag.Int("join", 0, "grow the deployment by this many DCs at startup through the membership protocol (needs -max-dcs headroom and -data-dir)")
	)
	flag.Parse()

	var engine occ.Engine
	switch strings.ToLower(*engineFlag) {
	case "pocc":
		engine = occ.POCC
	case "cure", "cure*", "curestar":
		engine = occ.CureStar
	case "hapocc", "ha-pocc":
		engine = occ.HAPOCC
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engineFlag)
		return 2
	}

	var ack occ.AckMode
	switch strings.ToLower(*ackMode) {
	case "sync":
		ack = occ.AckSync
	case "grouped":
		ack = occ.AckGrouped
	default:
		fmt.Fprintf(os.Stderr, "unknown -ack mode %q (want sync or grouped)\n", *ackMode)
		return 2
	}

	var catchUpMode occ.CatchUpMode
	switch strings.ToLower(*catchUp) {
	case "auto":
		catchUpMode = occ.CatchUpAuto
	case "on":
		catchUpMode = occ.CatchUpOn
	case "off":
		catchUpMode = occ.CatchUpOff
	default:
		fmt.Fprintf(os.Stderr, "unknown -catchup mode %q (want auto, on or off)\n", *catchUp)
		return 2
	}

	cfg := occ.Config{
		DataCenters:        *dcs,
		Partitions:         *partitions,
		Engine:             engine,
		Seed:               uint64(time.Now().UnixNano()),
		TCP:                *tcp,
		DataDir:            *dataDir,
		CheckpointBytes:    *ckptBytes,
		SegmentBytes:       *segBytes,
		NoSync:             *noSync || *noFsync,
		AckMode:            ack,
		GroupCommitWindow:  *groupWin,
		CatchUp:            catchUpMode,
		CatchUpMaxInFlight: *catchUpWin,
		MaxDataCenters:     *maxDCs,
		MaxPartitions:      *maxParts,
	}
	if !*tcp {
		cfg.Latency = occ.AWSProfile(*latency)
	}
	store, err := occ.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer store.Close()

	srv, err := kvserver.Serve(store, *host, *port)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer srv.Close()

	// -join exercises elastic membership at startup: each new DC registers,
	// bootstraps every partition's history from its siblings' WALs through
	// the catch-up protocol, and gets its own listener once it is active.
	for i := 0; i < *join; i++ {
		dc, err := store.AddDataCenter()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := store.WaitForJoin(dc, time.Minute); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if _, err := srv.ServeDC(dc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("dc%d joined (bootstrapped via catch-up)\n", dc)
	}

	for dc := 0; dc < store.DataCenters(); dc++ {
		fmt.Printf("dc%d listening on %s\n", dc, srv.Addr(dc))
	}
	if *dataDir != "" {
		fmt.Printf("durable storage under %s\n", *dataDir)
	}
	fmt.Printf("engine=%s partitions=%d protocols=binary+text (Ctrl-C to stop)\n", engine, *partitions)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nshutting down")
	return 0
}
