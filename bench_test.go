// Benchmarks regenerating every figure of the paper's evaluation at CI
// scale (shapes, not absolute numbers — see EXPERIMENTS.md), plus
// microbenchmarks of the individual operations. Full paper-scale sweeps are
// produced by cmd/poccbench.
package occ_test

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	occ "repro"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/item"
	"repro/internal/keyspace"
	"repro/internal/storage"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// benchScale is CIScale with windows small enough for the bench suite to
// finish in a couple of minutes.
func benchScale() harness.Scale {
	sc := harness.CIScale()
	sc.Warmup = 150 * time.Millisecond
	sc.Measure = 500 * time.Millisecond
	return sc
}

func reportPoint(b *testing.B, label string, p harness.Point) {
	b.ReportMetric(p.Throughput, label+"_ops/s")
	b.ReportMetric(float64(p.MeanResp)/float64(time.Millisecond), label+"_resp_ms")
}

// BenchmarkFig1aScalability — Fig. 1a: throughput vs number of partitions,
// GET:PUT = p:1, POCC vs Cure*.
func BenchmarkFig1aScalability(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tab, err := harness.Fig1a(context.Background(), sc, []int{2, 4})
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) != 2 {
			b.Fatalf("rows = %d", len(tab.Rows))
		}
	}
}

// BenchmarkFig1bResponseTime — Fig. 1b: response time vs throughput under a
// 32:1 GET:PUT workload (one moderate-load point per system).
func BenchmarkFig1bResponseTime(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		points, err := harness.GetPutSweep(context.Background(), sc, []int{16})
		if err != nil {
			b.Fatal(err)
		}
		reportPoint(b, "cure", points[0][0])
		reportPoint(b, "pocc", points[0][1])
	}
}

// BenchmarkFig1cWriteIntensity — Fig. 1c: throughput vs GET:PUT ratio.
func BenchmarkFig1cWriteIntensity(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tab, err := harness.Fig1c(context.Background(), sc, []int{8, 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) != 2 {
			b.Fatalf("rows = %d", len(tab.Rows))
		}
	}
}

// BenchmarkFig2aBlocking — Fig. 2a: POCC blocking probability and blocking
// time under load.
func BenchmarkFig2aBlocking(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		points, err := harness.GetPutSweep(context.Background(), sc, []int{32})
		if err != nil {
			b.Fatal(err)
		}
		pocc := points[0][1]
		b.ReportMetric(pocc.BlockProb, "block_prob")
		b.ReportMetric(float64(pocc.MeanBlock)/float64(time.Millisecond), "block_ms")
	}
}

// BenchmarkFig2bStaleness — Fig. 2b: Cure* staleness under load.
func BenchmarkFig2bStaleness(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		points, err := harness.GetPutSweep(context.Background(), sc, []int{32})
		if err != nil {
			b.Fatal(err)
		}
		cure := points[0][0]
		b.ReportMetric(cure.GetStale.PercentOld(), "pct_old")
		b.ReportMetric(cure.GetStale.PercentUnmerged(), "pct_unmerged")
	}
}

// BenchmarkFig3aTxScalability — Fig. 3a: throughput vs partitions contacted
// per RO-TX.
func BenchmarkFig3aTxScalability(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tab, err := harness.Fig3a(context.Background(), sc, []int{1, sc.Partitions})
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) != 2 {
			b.Fatalf("rows = %d", len(tab.Rows))
		}
	}
}

// BenchmarkFig3bTxLoad — Fig. 3b: throughput and RO-TX response time vs
// clients per partition.
func BenchmarkFig3bTxLoad(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		points, err := harness.TxSweep(context.Background(), sc, []int{16})
		if err != nil {
			b.Fatal(err)
		}
		cure, pocc := points[0][0], points[0][1]
		b.ReportMetric(cure.Throughput, "cure_ops/s")
		b.ReportMetric(pocc.Throughput, "pocc_ops/s")
		b.ReportMetric(float64(pocc.TxResp)/float64(time.Millisecond), "pocc_tx_ms")
	}
}

// BenchmarkFig3cTxBlocking — Fig. 3c: POCC blocking under the transactional
// workload.
func BenchmarkFig3cTxBlocking(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		points, err := harness.TxSweep(context.Background(), sc, []int{32})
		if err != nil {
			b.Fatal(err)
		}
		pocc := points[0][1]
		b.ReportMetric(pocc.BlockProb, "block_prob")
		b.ReportMetric(float64(pocc.MeanBlock)/float64(time.Millisecond), "block_ms")
	}
}

// BenchmarkFig3dTxStaleness — Fig. 3d: staleness of transactional reads,
// POCC vs Cure*.
func BenchmarkFig3dTxStaleness(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		points, err := harness.TxSweep(context.Background(), sc, []int{16})
		if err != nil {
			b.Fatal(err)
		}
		cure, pocc := points[0][0], points[0][1]
		b.ReportMetric(cure.TxStale.PercentOld(), "cure_pct_old")
		b.ReportMetric(pocc.TxStale.PercentOld(), "pocc_pct_old")
	}
}

// BenchmarkAblationStabilizationInterval — Cure*'s throughput/staleness
// trade-off over the stabilization interval (§V-B discussion).
func BenchmarkAblationStabilizationInterval(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationStabilization(context.Background(), sc,
			[]time.Duration{2 * time.Millisecond, 20 * time.Millisecond}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHeartbeatInterval — POCC blocking time vs heartbeat Δ.
func BenchmarkAblationHeartbeatInterval(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationHeartbeat(context.Background(), sc,
			[]time.Duration{time.Millisecond, 10 * time.Millisecond}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationClockSkew — PUT clock-wait cost vs emulated NTP skew.
func BenchmarkAblationClockSkew(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationClockSkew(context.Background(), sc,
			[]time.Duration{0, 2 * time.Millisecond}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemoteVisibility — update visibility as a benchmark axis: the
// time from a PUT returning at its origin DC until a remote DC's version
// vector (arrival) and GSS (stable) cover it, the remote GSS lag, and the
// wire cost per replicated version, with and without ±50 ms emulated clock
// skew. With hybrid clocks every reported metric should stay flat across
// the two sub-benchmarks; the raw-clock blowup is measured by the
// poccbench "visibility" experiment's raw+vector rows.
func BenchmarkRemoteVisibility(b *testing.B) {
	sc := benchScale()
	for _, bc := range []struct {
		name string
		skew time.Duration
	}{{"NoSkew", 0}, {"Skew50ms", 50 * time.Millisecond}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := harness.VisibilityPoint(context.Background(), sc,
					harness.VisibilityOpts{Skew: bc.skew, Samples: 120})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(st.VisP50)/float64(time.Millisecond), "vis_p50_ms")
				b.ReportMetric(float64(st.VisP99)/float64(time.Millisecond), "vis_p99_ms")
				b.ReportMetric(float64(st.StableP99)/float64(time.Millisecond), "stable_p99_ms")
				b.ReportMetric(float64(st.GSSLagMean)/float64(time.Millisecond), "gss_lag_ms")
				b.ReportMetric(st.DeltaBytesPerVersion, "delta_B/version")
				b.ReportMetric(st.AbsBytesPerVersion, "abs_B/version")
			}
		})
	}
}

// BenchmarkAblationThinkTime — blocking probability vs client think time.
func BenchmarkAblationThinkTime(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationThinkTime(context.Background(), sc,
			[]time.Duration{200 * time.Microsecond, 2 * time.Millisecond}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionRecovery — the paper's future-work experiment: per-phase
// availability across a network partition for all three engines.
func BenchmarkPartitionRecovery(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tab, err := harness.PartitionExperiment(context.Background(), sc, 200*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) != 9 {
			b.Fatalf("rows = %d", len(tab.Rows))
		}
	}
}

// ---------------------------------------------------------------------------
// Operation microbenchmarks
// ---------------------------------------------------------------------------

func benchStore(b *testing.B, engine occ.Engine) (*occ.Store, *occ.Session, []string) {
	b.Helper()
	s, err := occ.Open(occ.Config{
		DataCenters: 3, Partitions: 4, Engine: engine,
		Latency: occ.UniformProfile(20*time.Microsecond, 500*time.Microsecond),
		Seed:    99,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	// Pre-built key set: the loops below must measure the store's hot path,
	// not strconv/concat garbage.
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = "bench-k" + strconv.Itoa(i)
		s.Seed(keys[i], []byte("00000000"))
	}
	sess, err := s.Session(0)
	if err != nil {
		b.Fatal(err)
	}
	return s, sess, keys
}

func BenchmarkGetPOCC(b *testing.B) {
	_, sess, keys := benchStore(b, occ.POCC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Get(keys[i%64]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetCureStar(b *testing.B) {
	_, sess, keys := benchStore(b, occ.CureStar)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Get(keys[i%64]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutPOCC(b *testing.B) {
	_, sess, keys := benchStore(b, occ.POCC)
	val := []byte("abcdefgh")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.Put(keys[i%64], val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDurablePut measures the acknowledged PUT latency of a durable
// deployment on the two rungs of the durability ladder that fsync: sync acks
// (every PUT waits for its commit group's fsync) and grouped acks (the PUT
// returns after staging on the commit pipeline; the fsync it rides happens in
// the background). Grouped is the headline: it should hold within a small
// factor of the in-memory BenchmarkPutPOCC because the fsync leaves the
// acknowledgement path entirely.
func BenchmarkDurablePut(b *testing.B) {
	for _, mode := range []struct {
		name string
		ack  occ.AckMode
	}{
		{"sync", occ.AckSync},
		{"grouped", occ.AckGrouped},
	} {
		b.Run(mode.name, func(b *testing.B) {
			s, err := occ.Open(occ.Config{
				DataCenters: 3, Partitions: 4, Engine: occ.POCC,
				Latency: occ.UniformProfile(20*time.Microsecond, 500*time.Microsecond),
				DataDir: b.TempDir(),
				AckMode: mode.ack,
				Seed:    99,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(s.Close)
			keys := make([]string, 64)
			for i := range keys {
				keys[i] = "bench-k" + strconv.Itoa(i)
				s.Seed(keys[i], []byte("00000000"))
			}
			sess, err := s.Session(0)
			if err != nil {
				b.Fatal(err)
			}
			val := []byte("abcdefgh")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sess.Put(keys[i%64], val); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := s.Stats()
			if st.StorageError != "" {
				b.Fatalf("persistence error during bench: %s", st.StorageError)
			}
			if st.CommitGroups > 0 {
				b.ReportMetric(float64(st.WALRecords)/float64(st.CommitGroups), "records/group")
			}
		})
	}
}

// BenchmarkCatchUpSmallGap measures serving a small catch-up gap — the
// common case after a brief link freeze: the lagging replica is missing the
// last ~1k versions of a 16k-version history. The sender seeks through the
// WAL's per-segment range index (ForEachDurableRange) instead of replaying
// the full durable history, so the cost scales with the gap, not the store.
// The benchmark fails if the seek ever degrades to a full scan.
func BenchmarkCatchUpSmallGap(b *testing.B) {
	const (
		total = 16384
		gap   = 1024
	)
	d, err := storage.OpenDurable(b.TempDir(), storage.DurableOptions{
		NoSync: true,
		// Small segments so the index has cold parts to skip; the default
		// 4 MiB roll would put the whole history in one segment.
		SegmentBytes: 64 << 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	val := []byte("abcdefgh-abcdefgh-abcdefgh-abcdefgh")
	batch := make([]*item.Version, 0, 128)
	for i := 0; i < total; i++ {
		batch = append(batch, &item.Version{
			Key:        "bench-k" + strconv.Itoa(i%512),
			Value:      val,
			SrcReplica: 0,
			UpdateTime: vclock.Timestamp(i + 1),
			Deps:       vclock.New(3),
		})
		if len(batch) == cap(batch) {
			d.InsertBatch(batch)
			batch = batch[:0]
		}
	}
	if err := d.Err(); err != nil {
		b.Fatal(err)
	}
	lo := vclock.VC{total - gap, 0, 0}
	hi := vclock.VC{total, 0, 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shipped := 0
		if err := d.ForEachDurableRange(lo, hi, func(v *item.Version) error {
			if v.UpdateTime > total-gap {
				shipped++
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if shipped != gap {
			b.Fatalf("shipped %d versions, want %d", shipped, gap)
		}
	}
	b.StopTimer()
	st := d.DurableStats()
	if st.SeekHits != uint64(b.N) || st.FullScans != 0 {
		b.Fatalf("gap reads degraded to full scans: seek_hits=%d full_scans=%d (N=%d)",
			st.SeekHits, st.FullScans, b.N)
	}
	b.ReportMetric(float64(gap)*float64(b.N)/b.Elapsed().Seconds(), "shipped_versions/s")
	b.ReportMetric(float64(st.PartsSkipped)/float64(b.N), "parts_skipped/op")
}

// BenchmarkClusterContended measures raw multi-client throughput against a
// zero-latency POCC cluster, sweeping concurrent sessions × partitions, to
// quantify the fine-grained server locking (PR 1's lock split) under real
// contention: many sessions per DC hammering zipf(0.99) hot keys with a 4:1
// GET:PUT mix and no think time. More sessions than cores on few partitions
// maximizes lock pressure; more partitions spreads it.
func BenchmarkClusterContended(b *testing.B) {
	const keysPerPart = 64
	for _, partitions := range []int{2, 8} {
		for _, sessions := range []int{8, 64} {
			b.Run(fmt.Sprintf("parts=%d/sessions=%d", partitions, sessions), func(b *testing.B) {
				c, err := cluster.New(cluster.Config{
					NumDCs: 3, NumPartitions: partitions, Engine: cluster.POCC,
					HeartbeatInterval: time.Millisecond,
					PutDepWait:        true,
					Seed:              42,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(c.Close)
				tbl := keyspace.Build(partitions, keysPerPart)
				c.SeedTable(tbl)
				zipf := workload.NewZipf(keysPerPart, 0.99)

				var next atomic.Int64
				var wg sync.WaitGroup
				b.ReportAllocs()
				b.ResetTimer()
				start := time.Now()
				for s := 0; s < sessions; s++ {
					sess, err := c.NewSession(s % 3)
					if err != nil {
						b.Fatal(err)
					}
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						rng := rand.New(rand.NewPCG(42, uint64(s)))
						val := []byte("abcdefgh")
						for {
							i := next.Add(1)
							if i > int64(b.N) {
								return
							}
							key := tbl.Key(int(rng.Uint64N(uint64(partitions))), zipf.Sample(rng))
							if i%5 == 0 {
								if err := sess.Put(key, val); err != nil {
									b.Error(err)
									return
								}
							} else if _, err := sess.Get(key); err != nil {
								b.Error(err)
								return
							}
						}
					}(s)
				}
				wg.Wait()
				b.StopTimer()
				b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
			})
		}
	}
}

// BenchmarkCatchUpThroughput measures the replication catch-up feed: how
// many versions per second a sender can ship straight out of its write-ahead
// log (the wal cursor + wire decode path a repl.Manager streams through when
// a lagging replica resynchronizes). Setup writes a realistic mixed log —
// local-origin and remote-origin versions — and the stream filters to the
// sender's own originations, exactly like serveCatchUp.
func BenchmarkCatchUpThroughput(b *testing.B) {
	const (
		total      = 16384
		batchSize  = 128
		localShare = 2 // every 2nd version originates locally
	)
	d, err := storage.OpenDurable(b.TempDir(), storage.DurableOptions{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	val := []byte("abcdefgh-abcdefgh-abcdefgh-abcdefgh")
	batch := make([]*item.Version, 0, batchSize)
	wantLocal := 0
	for i := 0; i < total; i++ {
		src := i % localShare
		if src == 0 {
			wantLocal++
		}
		batch = append(batch, &item.Version{
			Key:        "bench-k" + strconv.Itoa(i%512),
			Value:      val,
			SrcReplica: src,
			UpdateTime: vclock.Timestamp(i + 1),
			Deps:       vclock.New(3),
		})
		if len(batch) == batchSize {
			d.InsertBatch(batch)
			batch = batch[:0]
		}
	}
	if err := d.Err(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shipped := 0
		if err := d.ForEachDurable(func(v *item.Version) error {
			if v.SrcReplica == 0 && v.UpdateTime > 0 {
				shipped++
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if shipped != wantLocal {
			b.Fatalf("shipped %d versions, want %d", shipped, wantLocal)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(wantLocal)*float64(b.N)/b.Elapsed().Seconds(), "shipped_versions/s")
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "scanned_versions/s")
}

func BenchmarkROTxPOCC(b *testing.B) {
	_, sess, _ := benchStore(b, occ.POCC)
	keys := []string{"bench-k1", "bench-k2", "bench-k3", "bench-k4"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.ROTx(keys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReshardThroughput measures the live partition split: how many
// versions per second the drain-then-flip migration moves onto the new
// owner while a concurrent workload keeps writing through the epoch fence.
// The copy walks every retained version of the moved slots at each DC's
// local donor, so the moved count is writes-per-key times the keys whose
// slot changes owner.
func BenchmarkReshardThroughput(b *testing.B) {
	const (
		keys        = 256
		writesPer   = 8
		liveWriters = 3
	)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := cluster.New(cluster.Config{
			NumDCs: 3, NumPartitions: 2, MaxPartitions: 3, Engine: cluster.POCC,
			HeartbeatInterval: time.Millisecond,
			Seed:              42,
		})
		if err != nil {
			b.Fatal(err)
		}
		sess, err := c.NewSession(0)
		if err != nil {
			b.Fatal(err)
		}
		keyList := make([]string, keys)
		for k := range keyList {
			keyList[k] = fmt.Sprintf("reshard-bench-%d", k)
			for w := 0; w < writesPer; w++ {
				if err := sess.Put(keyList[k], []byte(strconv.Itoa(w))); err != nil {
					b.Fatal(err)
				}
			}
		}
		// Live load across every DC for the duration of the split; sessions
		// ride through the ErrWrongSlotEpoch fence via client retry.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var livePuts atomic.Int64
		for w := 0; w < liveWriters; w++ {
			s, err := c.NewSession(w)
			if err != nil {
				b.Fatal(err)
			}
			wg.Add(1)
			go func(w int, s *client.Session) {
				defer wg.Done()
				for j := 0; ; j++ {
					select {
					case <-stop:
						return
					default:
					}
					if err := s.Put(fmt.Sprintf("live-w%d-%d", w, j%32), []byte("x")); err != nil {
						b.Error(err)
						return
					}
					livePuts.Add(1)
				}
			}(w, s)
		}
		b.StartTimer()
		start := time.Now()
		np, err := c.SplitPartition(0)
		dur := time.Since(start)
		b.StopTimer()
		close(stop)
		wg.Wait()
		if err != nil {
			b.Fatal(err)
		}
		moved := 0
		for _, k := range keyList {
			if c.PartitionOf(k) == np {
				moved += writesPer
			}
		}
		if moved == 0 {
			b.Fatal("split moved no benchmark keys")
		}
		b.ReportMetric(float64(moved)/dur.Seconds(), "moved_versions/s")
		b.ReportMetric(float64(dur)/float64(time.Millisecond), "split_ms")
		b.ReportMetric(float64(livePuts.Load())/dur.Seconds(), "live_puts/s")
		c.Close()
	}
}
