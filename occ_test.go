package occ_test

import (
	"testing"
	"time"

	occ "repro"
)

func open(t *testing.T, cfg occ.Config) *occ.Store {
	t.Helper()
	if cfg.Latency == nil {
		cfg.Latency = occ.UniformProfile(50*time.Microsecond, time.Millisecond)
	}
	s, err := occ.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

func TestOpenValidation(t *testing.T) {
	if _, err := occ.Open(occ.Config{DataCenters: 2, Partitions: 2}); err == nil {
		t.Fatal("missing engine must be rejected")
	}
	if _, err := occ.Open(occ.Config{DataCenters: 0, Partitions: 2, Engine: occ.POCC}); err == nil {
		t.Fatal("zero DCs must be rejected")
	}
}

func TestEngineNames(t *testing.T) {
	if occ.POCC.String() != "POCC" || occ.CureStar.String() != "Cure*" || occ.HAPOCC.String() != "HA-POCC" {
		t.Fatal("engine names changed")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	for _, engine := range []occ.Engine{occ.POCC, occ.CureStar, occ.HAPOCC} {
		t.Run(engine.String(), func(t *testing.T) {
			s := open(t, occ.Config{DataCenters: 2, Partitions: 2, Engine: engine, Seed: 1})
			sess, err := s.Session(0)
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.Put("greeting", []byte("hello")); err != nil {
				t.Fatal(err)
			}
			got, err := sess.Get("greeting")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "hello" {
				t.Fatalf("got %q", got)
			}
		})
	}
}

func TestCrossDCVisibility(t *testing.T) {
	s := open(t, occ.Config{DataCenters: 3, Partitions: 2, Engine: occ.POCC, Seed: 2})
	writer, err := s.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := writer.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for dc := 1; dc < 3; dc++ {
		reader, err := s.Session(dc)
		if err != nil {
			t.Fatal(err)
		}
		if !waitFor(t, 2*time.Second, func() bool {
			v, errGet := reader.Get("k")
			return errGet == nil && string(v) == "v"
		}) {
			t.Fatalf("dc%d never saw the write", dc)
		}
	}
}

func TestROTxSnapshot(t *testing.T) {
	s := open(t, occ.Config{DataCenters: 2, Partitions: 4, Engine: occ.POCC, Seed: 3})
	sess, err := s.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"a", "b", "c", "d"}
	for i, k := range keys {
		if err := sess.Put(k, []byte{byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	vals, err := sess.ROTx(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if string(vals[k]) != string([]byte{byte('0' + i)}) {
			t.Fatalf("tx[%s] = %q", k, vals[k])
		}
	}
}

func TestSeedAndMissingKeys(t *testing.T) {
	s := open(t, occ.Config{DataCenters: 2, Partitions: 2, Engine: occ.POCC, Seed: 4})
	s.Seed("warm", []byte("data"))
	sess, err := s.Session(1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.Get("warm")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "data" {
		t.Fatalf("seeded value = %q", got)
	}
	missing, err := sess.Get("cold")
	if err != nil {
		t.Fatal(err)
	}
	if missing != nil {
		t.Fatalf("missing key returned %q", missing)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := open(t, occ.Config{DataCenters: 2, Partitions: 2, Engine: occ.POCC, Seed: 5})
	sess, err := s.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := sess.Put("k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Get("k"); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Operations < 20 {
		t.Fatalf("stats = %+v", st)
	}
	// Replication is batched: updates leave on the next Δ flush, so give
	// the transport a moment before asserting the message counter moved.
	deadline := time.Now().Add(time.Second)
	for s.Messages() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Messages() == 0 {
		t.Fatal("replication messages must be counted")
	}
}

func TestLayoutAccessors(t *testing.T) {
	s := open(t, occ.Config{DataCenters: 3, Partitions: 8, Engine: occ.CureStar, Seed: 6})
	if s.DataCenters() != 3 || s.Partitions() != 8 {
		t.Fatalf("layout = %dx%d", s.DataCenters(), s.Partitions())
	}
	if s.Engine() != occ.CureStar {
		t.Fatal("engine accessor wrong")
	}
	p := s.PartitionOf("somekey")
	if p < 0 || p >= 8 {
		t.Fatalf("partition = %d", p)
	}
}

func TestHAPOCCPartitionFallbackPublicAPI(t *testing.T) {
	s := open(t, occ.Config{
		DataCenters: 2, Partitions: 2, Engine: occ.HAPOCC,
		StabilizationInterval: 5 * time.Millisecond,
		BlockTimeout:          40 * time.Millisecond,
		Seed:                  7,
	})
	// Write a causal chain in DC0 while DC0→DC1 is partitioned so DC1 keeps
	// only part of it.
	w, err := s.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put("x", []byte("x0")); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 2*time.Second, func() bool {
		r, errSess := s.Session(1)
		if errSess != nil {
			t.Fatal(errSess)
		}
		v, errGet := r.Get("x")
		return errGet == nil && string(v) == "x0"
	}) {
		t.Fatal("x0 never replicated")
	}

	s.PartitionNetwork(0, 1, true)
	if err := w.Put("x", []byte("x1")); err != nil {
		t.Fatal(err)
	}

	r, err := s.Session(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pessimistic() {
		t.Fatal("session must start optimistic")
	}
	// Reads in DC1 still complete during the partition (they see old data).
	v, err := r.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "x0" {
		t.Fatalf("during partition read %q", v)
	}
	s.PartitionNetwork(0, 1, false)
	if !waitFor(t, 2*time.Second, func() bool {
		v, errGet := r.Get("x")
		return errGet == nil && string(v) == "x1"
	}) {
		t.Fatal("x1 not visible after heal")
	}
}
