// Package occ is a geo-replicated causally consistent key-value store
// implementing Optimistic Causal Consistency (OCC) as described in
// "Optimistic Causal Consistency for Geo-Replicated Key-Value Stores"
// (Spirovska, Didona, Zwaenepoel — ICDCS 2017).
//
// The library embeds a full multi-data-center deployment in one process:
// partition servers, per-link latency-injected networking, loosely
// synchronized physical clocks, update replication, heartbeats, Cure-style
// stabilization, transaction-aware garbage collection and client sessions.
//
// The data path is built for throughput. Partition servers keep no global
// lock: version vectors and stable snapshots are atomic vectors read
// lock-free by the GET/RO-TX hot path, while independent locks cover the
// local write path, stabilization, garbage collection and transaction
// coordination — an optimistic read is a wait-free vector check plus an
// O(1) chain-head lookup, exactly the cheap path the paper argues for.
// Outgoing replication is batched per destination data center and flushed
// on the heartbeat tick Δ (or a size threshold), with the receive side
// applying each batch in a single pass over the storage shards. Deployments
// that cross a real network (internal/tcpnet) frame messages with a
// hand-rolled length-prefixed binary codec whose encode path performs zero
// allocations; the reflection-based gob codec remains available as a
// compatibility fallback. Three engines are provided:
//
//   - POCC — the paper's system: reads return the freshest received version;
//     requests with unresolved dependencies block until the dependency
//     arrives (client-assisted lazy dependency resolution).
//   - CureStar — the pessimistic baseline: reads return the freshest stable
//     version, computed from a periodically stabilized snapshot (GSS).
//   - HAPOCC — highly available POCC: optimistic operation plus infrequent
//     stabilization and a block timeout; sessions fall back to the
//     pessimistic protocol during network partitions and are promoted back
//     once the partition heals.
//
// # Storage engines and durability
//
// Each partition server stores its version chains behind a pluggable
// storage engine (internal/storage.Engine). The default is the sharded
// in-memory engine — fastest, but a killed server loses its partition.
// Setting Config.DataDir selects the durable engine: the in-memory store
// fronted by a segmented write-ahead log (internal/wal) that journals every
// version in the binary wire encoding. Snapshot checkpoints ride the
// garbage-collection exchange (Config.GCInterval): after a GC pass prunes
// the chains, the engine serializes the surviving versions and truncates the
// log's segments, bounding recovery time and disk use.
//
// # The commit pipeline
//
// All durable commits flow through a pipelined group-commit queue: appends
// from the server's concurrent partitions stage onto a shared buffer, and a
// single committer goroutine writes and fsyncs whatever has accumulated as
// one group — while it is in the kernel, the next group is already forming,
// so under load the fsync cost amortizes over hundreds of commits without
// any configured delay (Config.GroupCommitWindow can add a linger to deepen
// groups further). Where the acknowledgement sits relative to that fsync is
// the durability ladder, chosen per deployment:
//
//   - sync (default): every PUT returns only after its commit group is on
//     disk — a machine crash loses nothing acknowledged.
//   - grouped (Config.AckMode = AckGrouped): a local PUT returns after the
//     in-memory insert and WAL staging; the fsync it rides happens in the
//     background. A process exit still loses nothing (Close drains the
//     pipeline); a machine crash can lose only the short acknowledged-but-
//     unsynced suffix of local PUTs.
//   - nosync (Config.NoSync): no fsync at all; a machine crash may lose the
//     latest commits wholesale.
//
// Grouped acks never weaken the replication plane's claims: replicated
// batches are always applied synchronously (a receiver's version-vector
// entry — "I hold everything through t" — and its eviction attestations
// must be backed by fsynced history), and the catch-up feed barriers on the
// pipeline before streaming, so a sender never reports a history complete
// while part of it is still in flight to disk. Recovery after a crash mid-
// group replays the log's longest valid prefix and rebuilds the version-
// vector floor from exactly the versions replayed — a torn group is a
// shorter history, never an inconsistent one.
//
// # Indexed catch-up
//
// Each WAL segment carries a per-origin [min,max] update-timestamp range,
// maintained as records are staged, persisted as a trailer when the segment
// seals, and rebuilt on recovery. A catch-up request for a small recent gap
// seeks through this index (storage.RangedCatchUpSource): snapshot and
// segments whose ranges cannot intersect the requested window are skipped
// without being read, so re-shipping a brief outage's worth of versions
// costs O(gap), not O(store). The index is advisory — readers keep their
// per-version filters — and Stats reports seek hits, full scans and parts
// skipped, alongside the commit-pipeline counters (fsyncs, group sizes,
// ack-to-durable lag).
//
// Recovery reopens the data directory, replays the snapshot plus the log
// tail — tolerating a torn final record from a mid-commit crash — and
// rebuilds both the version chains and the server's version-vector floor,
// so a recovered replica never serves reads that miss its own replayed
// state. Store.RestartServer kills and recovers a single partition server
// in place (sessions keep working; operations racing the restart fail with
// a retriable error), and re-Opening a Store over the same DataDir
// cold-starts the whole deployment from disk. The causal guarantees —
// session guarantees and convergence — hold across both, which
// internal/harness.RecoveryDrill and the cluster recovery tests verify by
// killing servers mid-workload.
//
// The recovered floor covers more than the replayed versions: a server's
// version vector also advances through heartbeats and catch-up claims —
// entries no WAL record backs — and those values flow into the DC's
// garbage-collection exchange. Before sharing a GC contribution the server
// therefore durably attests it (storage.Attester): a small WAL record
// carrying the vector, folded into the floor on replay and re-emitted by
// checkpoints so truncation cannot lose it. The invariant — every shared
// contribution is recoverable — means a crash-restarted partition can never
// report a vector below a floor its data center has already pruned to.
// Attestation records are neutral to the segment range index
// (wal.Options.Neutral), so they never force a catch-up seek to read a
// cold segment.
//
// # Hybrid clocks and stabilization
//
// Timestamps are hybrid logical/physical clocks packed into the same uint64
// the protocol has always shipped: the low 10 bits are a logical counter,
// the rest is the wall clock truncated to 1024 ns ticks, so a packed value
// still reads as nanoseconds and every duration computed from one stays
// meaningful. A node's clock advances as max(wall, last+1) locally and
// absorbs every remote timestamp it handles (replicated batches, heartbeats,
// catch-up claims, and PUT dependency vectors), which changes two costs that
// scale with clock skew under raw physical clocks:
//
//   - The PUT clock-wait (Algorithm 2, line 7) waits on the physical
//     component only and satisfies the ordering with a logical bump, so a
//     writer whose clock trails its dependencies' source pays nothing
//     instead of sleeping out the skew.
//   - The stable snapshot stops trailing the slowest clock: a DC running
//     50 ms behind pins every GSS entry under raw clocks (the poccbench
//     visibility experiment measures ~66 ms GSS lag and a 4x stable-
//     visibility p99 blowup under ±50 ms skew), while hybrid clocks ride
//     message traffic to the fastest clock and hold the lag near the
//     stabilization cadence under the same skew.
//
// Config.RawPhysicalClocks reverts to the old raw clock as the ablation
// baseline. Two wire-level reductions ride the same timestamps: replicated
// batches encode each version's update time and dependency entries as
// zigzag varint deltas against the batch's heartbeat timestamp (hybrid
// timestamps of one flush window sit close together, so deltas are 1-3
// bytes where absolute wall-clock values cost 9 — measured ~21% fewer bytes
// per version end to end), and Config.LeanStabilization replaces most GSS
// exchange ticks' full version vector with one scalar watermark — the
// minimum nonzero member entry of the sender's VV — refreshed by a full
// vector every few ticks (Okapi-style; core.Server.applyVVExchange carries
// the safety argument). BenchmarkRemoteVisibility and the poccbench
// visibility experiment track the three axes — bytes per version, remote
// visibility p50/p99, GSS lag — with and without emulated skew, and make
// race-hlc guards the clock plane under -race.
//
// # Replication plane and catch-up
//
// Geo-replication is an explicit subsystem (internal/repl): each partition
// server's replication manager owns the outbound buffers, the flush and
// heartbeat cadence, and stamps every batch and heartbeat with its
// incarnation epoch and a monotone sequence number. A receiver advances a
// link's version-vector entry — the claim "I hold every version from that
// DC up to t" — only while the sequence is gap-free. A hole, a restarted
// sender (new epoch), or first contact with a sender whose advertised
// history floor exceeds the receiver's progress freezes the entry and
// triggers catch-up: the lagging replica asks for everything after its
// completion point and the sender streams those versions straight out of
// its write-ahead log (a cursor over snapshot + segments that pins files
// open and never blocks the append path), in acknowledged chunks with a
// bounded in-flight window. Crash recovery thus becomes per-replica resync:
// a server killed with unflushed replication buffers — or cut off from the
// stream entirely — rejoins and converges without restarting the world.
// Config.CatchUp selects the mode (enabled automatically for durable
// deployments); Stats exposes per-DC and per-link replication lag and
// catch-up counters.
//
// # Dynamic membership
//
// The set of data centers is elastic: with Config.MaxDataCenters headroom
// (vector capacity is reserved up front — the lock-free hot path cannot
// repoint its atomic vectors) and durable storage, AddDataCenter grows a
// running deployment. Each server of the joining DC sends a JoinRequest to
// its sibling partition in every active DC; the sibling merges the joiner
// into its epoch-stamped membership view — per-DC statuses Joining →
// Active → Left, merged entry-wise as a lattice so concurrent changes
// converge — and starts streaming live updates to it. The bootstrap is the
// catch-up protocol itself: the joiner's first contact with each inbound
// link pulls that DC's full history out of its write-ahead log, and the
// joiner announces itself Active (and only then enters the stabilization
// protocol, so a half-filled version vector never drags the GSS down) once
// every link is synced; WaitForJoin blocks until then. RemoveDataCenter is
// the reverse: each departing server flushes its replication buffer and
// follows it with a LeaveNotice on the same FIFO links, so the survivors
// hold the departed history in full, freeze its vector entries at the
// announced final timestamp, and keep stabilizing without it. A departed
// DC's id is never reused — its timestamps live on in the surviving
// stores. The kvserver JOIN/LEAVE admin commands, pocckv -max-dcs/-join
// and the poccshell join/leave commands expose the same operations.
//
// # Forced removal of a crashed data center
//
// A graceful leave announces its final timestamp; a whole DC that crashes
// announces nothing, and the survivors' global stable snapshot freezes on
// its entry forever — pessimistic reads and HA-POCC fallback would wedge.
// ForceRemoveDataCenter evicts the dead member: for every partition link a
// surviving proposer broadcasts an EvictProposal; each survivor freezes its
// entry for the dead DC (an ack attests "I hold everything through t", so
// the entry must not move before the verdict) and answers with an EvictAck
// carrying that attestation. The agreed final is the maximum attestation —
// the highest timestamp any survivor actually replicated from the dead DC —
// and the EvictNotice installs it everywhere: membership freezes at
// Left(final), every version above the final is discarded (no survivor can
// prove the prefix below a higher cut complete), and survivors re-ship each
// other the (attestation, final] gaps out of their logs. The consistency
// argument is the leave argument with the attested maximum substituted for
// the announced final: below the agreed final the surviving history is
// provably prefix-complete, above it the suffix existed only on the dead
// machine — the same loss a client sees when its coordinator dies before
// replicating, surfaced as a membership event instead of silent divergence.
// Stabilization then resumes, later joiners bootstrap the departed history
// from the survivors, and sessions that read a now-discarded suffix version
// are re-initialized (their dependency state reset) rather than served an
// impossible dependency. Exposed as cluster.ForceRemoveDC,
// occ.Store.ForceRemoveDataCenter, the kvserver EVICT command, and
// poccshell kill/evict.
//
// # Catch-up- and membership-aware garbage collection
//
// The GC exchange computes a global prune point from every server's
// contribution; a replica that is frozen, catching up, or joining must not
// have the history it still needs pruned out from under its resync. Each
// server therefore clamps its contribution (repl.Manager.ClampGC) to the
// floors of every recently-served catch-up requester — what the laggard
// actually holds, per origin — and to zero while any DC is mid-join.
// Config.GCMaxHoldback bounds the deferral: past it the holdback releases,
// GC advances, and the laggard's next incremental request lands below the
// sender's checkpoint-compacted boundary — which is answered with a
// CatchUpReply.FullResync full re-bootstrap, never a silently incomplete
// range. Stats surfaces per-link health states, the oldest holdback age and
// the full-resync count.
//
// # Partitioning and resharding
//
// Keys map to partitions through a first-class slot table rather than a
// fixed hash: every key hashes (FNV-1a, allocation-free) to one of 256
// slots, and an epoch-stamped slot map (internal/keyspace.SlotMap) assigns
// each slot an owning partition. Absent a map the layout is the original
// hash%N spread, byte-for-byte what pre-slot-table deployments used, so
// fixed deployments pay nothing and durable data keeps its placement across
// the upgrade; because that static layout is expressible as a slot table
// only when N divides the slot universe (keyspace.SlotAligned), the first
// reshard — and reserving MaxPartitions headroom — requires such a
// partition count. The map is a lattice —
// per-slot assignments carry the epoch that moved them and merge
// higher-stamp-wins — so concurrently gossiped tables converge on every
// server, and replicated batches and catch-up chunks are stamped with the
// sender's slot epoch.
//
// With Config.MaxPartitions headroom the partition axis is elastic at
// runtime, the partition-analogue of dynamic DC membership.
// Store.SplitPartition starts the next partition index in every data center
// (gated behind the stabilization gate, owning its slots-to-be under the
// next epoch) and moves half the donor's slots onto it; Store.MoveSlots
// reassigns an explicit slot set between existing partitions. Both drive
// the same drain-then-flip migration: install the next-epoch table
// everywhere — the install serializes on each server's outbound write lock,
// so once it returns the old owners reject operations on the moved slots
// (ErrWrongSlotEpoch) and no in-flight write can still commit under the old
// table: the moved-slot version universe provably freezes before the drain
// marks are taken — wait for every data center's donors to deliver their streams
// everywhere (the drain), then copy the moved history from each DC's local
// donors into its new owner, release the gate, and flip routing. The
// next-epoch table is staged in cluster state for the whole fence-to-flip
// window, so a server crash-restarted mid-reshard boots already fenced. A
// freshly split owner additionally adopts the donors' version-vector claim
// (it serves nothing but the copied slots, so the claim is complete); a
// pre-existing MoveSlots target keeps its own vector — the donors' would
// overclaim versions its other slots have not yet received — and dependency
// waits on the inherited history resolve as heartbeats advance it. Client
// sessions ride through the fence by
// re-resolving their route and retrying, so no acknowledged write is lost
// and no causal dependency is ever served out of order; a drain defeated by
// a concurrent failure aborts by rolling the table forward onto the old
// owners (the lattice cannot go back). The kvserver SPLIT/MOVESLOTS/SLOTS
// commands, occ.Store.SlotTable and poccshell split/moveslots/slots expose
// the same operations; make race-reshard guards the path under -race.
//
// # The front door
//
// Deployments served over TCP (internal/kvserver) speak two protocols on
// the same listener, negotiated by the first byte of each connection: a
// line-oriented text protocol (telnet-friendly, one blocking round trip per
// command) and, when the connection opens with wire.FrontDoorMagic, the
// binary front door — the production serving path. Binary connections carry
// a stream of length-prefixed request frames (internal/wire/frontdoor.go),
// each tagged with a request id and a client-chosen wire-session id, over
// the same zero-allocation codec the replication plane uses. Three rules
// shape the server: requests of one wire session execute in FIFO order (a
// session is a single thread of execution in the causality order); requests
// of different sessions complete out of order, so an optimistic GET parked
// in a dependency wait never head-of-line-blocks the other sessions
// multiplexed on the connection; and one writer goroutine owns the socket's
// write side, coalescing whatever responses are ready into a single write
// per batch. The client half (internal/client.Pool) holds a few pooled
// connections per data center, multiplexes RemoteSessions onto them
// round-robin, matches responses to in-flight requests by id, reconstructs
// canonical error values from wire codes (errors.Is works across the wire),
// and retries through reshard fences under the same slot-retry budget as
// in-process sessions. Sizing: a handful of connections saturates a
// listener; throughput comes from pipelining depth, not socket count.
// Pipelined throughput on one connection measures >5x the text protocol's
// (BenchmarkFrontDoorPipelined, enforced by TestFrontDoorPipelinedSpeedup;
// make race-frontdoor guards the path under -race). pocccli and poccbench's
// frontdoor experiment ride the binary path; -text falls back.
//
// # Chaos plane
//
// internal/chaos is the standing fault-injection harness tying the above
// together: from a single seed it derives a deterministic schedule of
// server crash/restarts, DC joins, graceful leaves, kills followed by
// forced removal, live partition splits and slot moves under the checked
// workload, inter-DC link flaps and live latency reprofiles, and
// executes it against a durable HA-POCC deployment while checker sessions
// (internal/causaltest, no auto-fallback — errors reopen fresh sessions,
// mirroring real client failover) assert causal consistency and a watchdog
// asserts stabilization progress whenever no fault legitimately freezes it.
// Every run ends with a heal-and-quiesce epilogue that requires full
// convergence. A failure reports the seed and the executed fault trace;
// replaying the seed reproduces the identical schedule (make race-chaos,
// CHAOS_SECONDS/CHAOS_SEED).
//
// Quick start:
//
//	store, err := occ.Open(occ.Config{DataCenters: 3, Partitions: 4, Engine: occ.POCC})
//	if err != nil { ... }
//	defer store.Close()
//
//	oregon, _ := store.Session(0)
//	_ = oregon.Put("user:42:name", []byte("ada"))
//
//	ireland, _ := store.Session(2)
//	name, _ := ireland.Get("user:42:name") // freshest received version
//
// Sessions provide GET, PUT and causally consistent read-only transactions
// (ROTx). Every operation carries compact dependency vectors (one physical
// timestamp per data center), the metadata POCC uses to detect missing
// dependencies without inter-server synchronization.
package occ
