// Package occ is a geo-replicated causally consistent key-value store
// implementing Optimistic Causal Consistency (OCC) as described in
// "Optimistic Causal Consistency for Geo-Replicated Key-Value Stores"
// (Spirovska, Didona, Zwaenepoel — ICDCS 2017).
//
// The library embeds a full multi-data-center deployment in one process:
// partition servers, per-link latency-injected networking, loosely
// synchronized physical clocks, update replication, heartbeats, Cure-style
// stabilization, transaction-aware garbage collection and client sessions.
//
// The data path is built for throughput. Partition servers keep no global
// lock: version vectors and stable snapshots are atomic vectors read
// lock-free by the GET/RO-TX hot path, while independent locks cover the
// local write path, stabilization, garbage collection and transaction
// coordination — an optimistic read is a wait-free vector check plus an
// O(1) chain-head lookup, exactly the cheap path the paper argues for.
// Outgoing replication is batched per destination data center and flushed
// on the heartbeat tick Δ (or a size threshold), with the receive side
// applying each batch in a single pass over the storage shards. Deployments
// that cross a real network (internal/tcpnet) frame messages with a
// hand-rolled length-prefixed binary codec whose encode path performs zero
// allocations; the reflection-based gob codec remains available as a
// compatibility fallback. Three engines are provided:
//
//   - POCC — the paper's system: reads return the freshest received version;
//     requests with unresolved dependencies block until the dependency
//     arrives (client-assisted lazy dependency resolution).
//   - CureStar — the pessimistic baseline: reads return the freshest stable
//     version, computed from a periodically stabilized snapshot (GSS).
//   - HAPOCC — highly available POCC: optimistic operation plus infrequent
//     stabilization and a block timeout; sessions fall back to the
//     pessimistic protocol during network partitions and are promoted back
//     once the partition heals.
//
// Quick start:
//
//	store, err := occ.Open(occ.Config{DataCenters: 3, Partitions: 4, Engine: occ.POCC})
//	if err != nil { ... }
//	defer store.Close()
//
//	oregon, _ := store.Session(0)
//	_ = oregon.Put("user:42:name", []byte("ada"))
//
//	ireland, _ := store.Session(2)
//	name, _ := ireland.Get("user:42:name") // freshest received version
//
// Sessions provide GET, PUT and causally consistent read-only transactions
// (ROTx). Every operation carries compact dependency vectors (one physical
// timestamp per data center), the metadata POCC uses to detect missing
// dependencies without inter-server synchronization.
package occ
