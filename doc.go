// Package occ is a geo-replicated causally consistent key-value store
// implementing Optimistic Causal Consistency (OCC) as described in
// "Optimistic Causal Consistency for Geo-Replicated Key-Value Stores"
// (Spirovska, Didona, Zwaenepoel — ICDCS 2017).
//
// The library embeds a full multi-data-center deployment in one process:
// partition servers, per-link latency-injected networking, loosely
// synchronized physical clocks, update replication, heartbeats, Cure-style
// stabilization, transaction-aware garbage collection and client sessions.
// Three engines are provided:
//
//   - POCC — the paper's system: reads return the freshest received version;
//     requests with unresolved dependencies block until the dependency
//     arrives (client-assisted lazy dependency resolution).
//   - CureStar — the pessimistic baseline: reads return the freshest stable
//     version, computed from a periodically stabilized snapshot (GSS).
//   - HAPOCC — highly available POCC: optimistic operation plus infrequent
//     stabilization and a block timeout; sessions fall back to the
//     pessimistic protocol during network partitions and are promoted back
//     once the partition heals.
//
// Quick start:
//
//	store, err := occ.Open(occ.Config{DataCenters: 3, Partitions: 4, Engine: occ.POCC})
//	if err != nil { ... }
//	defer store.Close()
//
//	oregon, _ := store.Session(0)
//	_ = oregon.Put("user:42:name", []byte("ada"))
//
//	ireland, _ := store.Session(2)
//	name, _ := ireland.Get("user:42:name") // freshest received version
//
// Sessions provide GET, PUT and causally consistent read-only transactions
// (ROTx). Every operation carries compact dependency vectors (one physical
// timestamp per data center), the metadata POCC uses to detect missing
// dependencies without inter-server synchronization.
package occ
