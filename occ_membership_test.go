package occ

import (
	"fmt"
	"testing"
	"time"
)

// TestMembershipPublicAPI walks the elastic-membership surface end to end:
// a durable store with headroom grows by a DC that bootstraps the pre-join
// history out of its siblings' WALs, serves sessions, and is then removed
// again — its history surviving on the original DCs.
func TestMembershipPublicAPI(t *testing.T) {
	store, err := Open(Config{
		DataCenters: 2, Partitions: 2, Engine: POCC,
		MaxDataCenters: 3,
		DataDir:        t.TempDir(),
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if got := store.MaxDataCenters(); got != 3 {
		t.Fatalf("MaxDataCenters = %d, want 3", got)
	}

	sess, err := store.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := sess.Put(fmt.Sprintf("pre:%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	dc, err := store.AddDataCenter()
	if err != nil {
		t.Fatal(err)
	}
	if dc != 2 || store.DataCenters() != 3 {
		t.Fatalf("joined dc %d, DataCenters %d; want 2 and 3", dc, store.DataCenters())
	}
	if err := store.WaitForJoin(dc, 15*time.Second); err != nil {
		t.Fatal(err)
	}

	// The joiner holds the pre-join history (deliverable only via the WAL
	// catch-up bootstrap) and serves new traffic.
	joined, err := store.Session(dc)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := joined.Get("pre:49")
		if err != nil {
			t.Fatal(err)
		}
		if string(v) == "v49" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("joiner never served the pre-join history (got %q)", v)
		}
		time.Sleep(time.Millisecond)
	}
	if err := joined.Put("from-joiner", []byte("hello")); err != nil {
		t.Fatal(err)
	}

	// Shrink back: the joiner's write must survive on the original DCs.
	if err := store.RemoveDataCenter(dc); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Session(dc); err == nil {
		t.Fatal("Session against a removed DC must fail")
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		v, err := sess.Get("from-joiner")
		if err != nil {
			t.Fatal(err)
		}
		if string(v) == "hello" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("the departed DC's write did not survive on dc0")
		}
		time.Sleep(time.Millisecond)
	}
	// Headroom is spent for good: the departed slot is not reusable.
	if _, err := store.AddDataCenter(); err == nil {
		t.Fatal("AddDataCenter past MaxDataCenters must fail")
	}
}

// TestStatsPerLinkLag pins the per-link replication-lag breakdown: a square
// matrix over the DCs, zero on the diagonal, with the per-DC aggregate
// equal to its row maximum.
func TestStatsPerLinkLag(t *testing.T) {
	store, err := Open(Config{
		DataCenters: 3, Partitions: 2, Engine: POCC,
		Latency: UniformProfile(20*time.Microsecond, 500*time.Microsecond),
		Seed:    12,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	sess, err := store.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := sess.Put(fmt.Sprintf("lag:%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	st := store.Stats()
	if len(st.ReplicationLagPerLink) != 3 {
		t.Fatalf("per-link matrix has %d rows, want 3", len(st.ReplicationLagPerLink))
	}
	for dst, row := range st.ReplicationLagPerLink {
		if len(row) != 3 {
			t.Fatalf("row %d has %d entries, want 3", dst, len(row))
		}
		if row[dst] != 0 {
			t.Fatalf("diagonal entry [%d][%d] = %v, want 0", dst, dst, row[dst])
		}
		var rowMax time.Duration
		for _, l := range row {
			if l > rowMax {
				rowMax = l
			}
		}
		if st.ReplicationLag[dst] != rowMax {
			t.Fatalf("ReplicationLag[%d] = %v, want its row maximum %v",
				dst, st.ReplicationLag[dst], rowMax)
		}
	}
	if st.MaxReplicationLag() > time.Minute {
		t.Fatalf("absurd lag %v on a healthy store", st.MaxReplicationLag())
	}
}
