package occ_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	occ "repro"
)

// TestDurablePublicAPI exercises durability end to end through the public
// surface: write through a session, crash-restart the partition server, and
// read the recovered value back.
func TestDurablePublicAPI(t *testing.T) {
	dir := t.TempDir()
	s, err := occ.Open(occ.Config{
		DataCenters: 2, Partitions: 2, Engine: occ.POCC,
		DataDir: dir,
		Seed:    31,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	w, err := s.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.Put(fmt.Sprintf("durable-%d", i%5), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	key := "durable-0"
	if err := s.RestartServer(0, s.PartitionOf(key)); err != nil {
		t.Fatal(err)
	}

	r, err := s.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 5*time.Second, func() bool {
		v, errGet := r.Get(key)
		if errors.Is(errGet, occ.ErrStopped) {
			return false
		}
		if errGet != nil {
			t.Fatal(errGet)
		}
		return string(v) == "v15"
	}) {
		t.Fatal("recovered server never served the durable value")
	}

	st := s.Stats()
	if st.Keys == 0 || st.Versions == 0 {
		t.Fatalf("Stats reports empty storage after writes: %+v", st)
	}
	if st.StorageError != "" || s.StorageErr() != nil {
		t.Fatalf("durable engines report persistence errors: %q", st.StorageError)
	}
}

// TestDurableGroupedCommitPublicAPI runs the durable crash-restart loop in
// the loosest acknowledged mode — grouped acks plus a commit-window linger —
// and checks both that a killed server recovers every acknowledged write
// (RestartServer drains the pipeline; only a machine crash can lose grouped
// acks) and that the commit-pipeline counters surface through Stats.
func TestDurableGroupedCommitPublicAPI(t *testing.T) {
	s, err := occ.Open(occ.Config{
		DataCenters: 2, Partitions: 2, Engine: occ.POCC,
		DataDir:           t.TempDir(),
		AckMode:           occ.AckGrouped,
		GroupCommitWindow: time.Millisecond,
		Seed:              33,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	w, err := s.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := w.Put(fmt.Sprintf("grouped-%d", i%5), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	key := "grouped-0"
	if err := s.RestartServer(0, s.PartitionOf(key)); err != nil {
		t.Fatal(err)
	}

	r, err := s.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 5*time.Second, func() bool {
		v, errGet := r.Get(key)
		if errors.Is(errGet, occ.ErrStopped) {
			return false
		}
		if errGet != nil {
			t.Fatal(errGet)
		}
		return string(v) == "v35"
	}) {
		t.Fatal("restarted server lost a grouped-acked write")
	}

	// The counters are per-live-engine (a restart resets the restarted
	// server's) and grouped acks return before the commit lands, so poll:
	// shortly after the restart every surviving engine may legitimately
	// still be inside its commit window.
	var st occ.Stats
	if !waitFor(t, 5*time.Second, func() bool {
		st = s.Stats()
		return st.CommitGroups > 0 && st.Fsyncs > 0 && st.WALRecords > 0
	}) {
		t.Fatalf("durable counters missing from Stats: groups=%d fsyncs=%d records=%d",
			st.CommitGroups, st.Fsyncs, st.WALRecords)
	}
	if st.CommitGroupMax == 0 || st.CommitGroupP50 == 0 {
		t.Fatalf("commit-group histogram empty: p50=%d max=%d", st.CommitGroupP50, st.CommitGroupMax)
	}
	if st.StorageError != "" {
		t.Fatalf("grouped-commit run reported a persistence error: %q", st.StorageError)
	}
}

// TestRestartServerWithoutDataDir pins the public guard: restarting an
// in-memory deployment must refuse rather than lose a partition.
func TestRestartServerWithoutDataDir(t *testing.T) {
	s, err := occ.Open(occ.Config{DataCenters: 1, Partitions: 1, Engine: occ.POCC, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if err := s.RestartServer(0, 0); err == nil {
		t.Fatal("RestartServer without DataDir must fail")
	}
}
