package occ_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	occ "repro"
)

// TestDurablePublicAPI exercises durability end to end through the public
// surface: write through a session, crash-restart the partition server, and
// read the recovered value back.
func TestDurablePublicAPI(t *testing.T) {
	dir := t.TempDir()
	s, err := occ.Open(occ.Config{
		DataCenters: 2, Partitions: 2, Engine: occ.POCC,
		DataDir: dir,
		Seed:    31,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	w, err := s.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.Put(fmt.Sprintf("durable-%d", i%5), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	key := "durable-0"
	if err := s.RestartServer(0, s.PartitionOf(key)); err != nil {
		t.Fatal(err)
	}

	r, err := s.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 5*time.Second, func() bool {
		v, errGet := r.Get(key)
		if errors.Is(errGet, occ.ErrStopped) {
			return false
		}
		if errGet != nil {
			t.Fatal(errGet)
		}
		return string(v) == "v15"
	}) {
		t.Fatal("recovered server never served the durable value")
	}

	st := s.Stats()
	if st.Keys == 0 || st.Versions == 0 {
		t.Fatalf("Stats reports empty storage after writes: %+v", st)
	}
	if st.StorageError != "" || s.StorageErr() != nil {
		t.Fatalf("durable engines report persistence errors: %q", st.StorageError)
	}
}

// TestRestartServerWithoutDataDir pins the public guard: restarting an
// in-memory deployment must refuse rather than lose a partition.
func TestRestartServerWithoutDataDir(t *testing.T) {
	s, err := occ.Open(occ.Config{DataCenters: 1, Partitions: 1, Engine: occ.POCC, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if err := s.RestartServer(0, 0); err == nil {
		t.Fatal("RestartServer without DataDir must fail")
	}
}
