// Package msg defines the messages exchanged between partition servers:
// update replication, heartbeats (Algorithm 2, lines 12-28), the RO-TX slice
// protocol (lines 29-47), the Cure-style stabilization exchange used by the
// pessimistic mode and HA-POCC, and the garbage-collection exchange.
package msg

import (
	"repro/internal/item"
	"repro/internal/netemu"
	"repro/internal/vclock"
)

// Replicate carries a freshly created version to the sibling replicas of its
// partition in the other data centers. Replication messages from one node are
// sent in update-timestamp order (the FIFO links preserve it).
type Replicate struct {
	V *item.Version
}

// ReplicateBatch carries a batch of freshly created versions, in update-
// timestamp order, to the sibling replicas. Senders accumulate updates and
// flush on the heartbeat tick (Δ) or when a size threshold is reached;
// HBTime is the covering heartbeat timestamp — receivers advance the sender
// DC's version-vector entry to max(HBTime, last version's update time), so a
// batch subsumes a separate heartbeat while updates flow.
type ReplicateBatch struct {
	Versions []*item.Version
	HBTime   vclock.Timestamp
}

// Heartbeat advertises the sender's current clock so idle replicas keep the
// receivers' version vectors moving (Algorithm 2, lines 19-28).
type Heartbeat struct {
	Time vclock.Timestamp
}

// SliceReq asks a same-DC partition to read keys within the transactional
// snapshot TV on behalf of a RO-TX coordinator.
type SliceReq struct {
	TxID        uint64
	Coordinator netemu.NodeID
	Keys        []string
	TV          vclock.VC
	// Pessimistic marks slices of transactions issued by pessimistic
	// (fallback) sessions. Visibility is fully encoded in TV (the
	// coordinator builds it from its GSS for pessimistic transactions), so
	// responders do not branch on this flag; it is kept for diagnostics and
	// wire-format stability.
	Pessimistic bool
}

// SliceResp returns the versions read for a SliceReq. Err is non-empty when
// the responder had to abort the slice (HA-POCC block timeout).
type SliceResp struct {
	TxID  uint64
	Items []ItemReply
	Err   string
}

// VVExchange is the stabilization message of the pessimistic protocol: nodes
// within a DC periodically broadcast their version vectors and compute the
// Globally Stable Snapshot as the aggregate minimum (§IV-C).
type VVExchange struct {
	Partition int
	VV        vclock.VC
}

// GCExchange carries a node's garbage-collection contribution: the aggregate
// minimum of its visibility vector and the snapshot vectors of its active
// transactions. The GC vector GV is the aggregate minimum across the DC.
type GCExchange struct {
	Partition int
	TV        vclock.VC
}

// ItemReply is the result of reading one key: the returned version's payload
// and causal metadata (value, update time, dependency vector, source replica
// — the GETReply of Algorithm 2, line 4) plus the chain statistics the
// evaluation reports.
type ItemReply struct {
	Key        string
	Exists     bool
	Value      []byte
	SrcReplica int
	UpdateTime vclock.Timestamp
	Deps       vclock.VC
	// Fresher counts LWW-newer versions hidden by the visibility rule
	// ("old" items, Fig. 2b); Invisible counts not-yet-visible versions in
	// the chain ("unmerged").
	Fresher   int
	Invisible int
}

// FromVersion builds an ItemReply for v (nil means the key has no visible
// version).
func FromVersion(key string, v *item.Version, fresher, invisible int) ItemReply {
	r := ItemReply{Key: key, Fresher: fresher, Invisible: invisible}
	if v != nil {
		r.Exists = true
		r.Value = v.Value
		r.SrcReplica = v.SrcReplica
		r.UpdateTime = v.UpdateTime
		r.Deps = v.Deps
	}
	return r
}
