// Package msg defines the messages exchanged between partition servers:
// update replication, heartbeats (Algorithm 2, lines 12-28), the RO-TX slice
// protocol (lines 29-47), the Cure-style stabilization exchange used by the
// pessimistic mode and HA-POCC, and the garbage-collection exchange.
package msg

import (
	"repro/internal/item"
	"repro/internal/keyspace"
	"repro/internal/netemu"
	"repro/internal/vclock"
)

// Replicate carries a freshly created version to the sibling replicas of its
// partition in the other data centers. Replication messages from one node are
// sent in update-timestamp order (the FIFO links preserve it).
type Replicate struct {
	V *item.Version
}

// ReplicateBatch carries a batch of freshly created versions, in update-
// timestamp order, to the sibling replicas. Senders accumulate updates and
// flush on the heartbeat tick (Δ) or when a size threshold is reached;
// HBTime is the covering heartbeat timestamp — receivers advance the sender
// DC's version-vector entry to max(HBTime, last version's update time), so a
// batch subsumes a separate heartbeat while updates flow.
//
// Epoch identifies the sender's incarnation (seeded from its clock at
// start-up, so it changes across restarts) and Seq numbers the sender's
// batches 1, 2, 3, … within that incarnation. Because every flush goes to
// every sibling DC, each link observes the same gap-free sequence; a
// receiver that sees a hole — or a new epoch — knows updates were lost on
// that link and can request a catch-up (internal/repl). Epoch 0 marks a
// legacy, unsequenced batch: receivers apply it optimistically.
//
// Floor is the sender incarnation's starting history floor: every version
// it originated before this incarnation has a timestamp ≤ Floor (the
// recovered WAL floor; 0 for a fresh store). A receiver making first
// contact with the link adopts the stream only when its own progress covers
// Floor — otherwise the sender holds history the receiver never saw and a
// catch-up round is needed first.
type ReplicateBatch struct {
	Versions []*item.Version
	HBTime   vclock.Timestamp
	Epoch    uint64
	Seq      uint64
	Floor    vclock.Timestamp
	// SlotEpoch is the sender's slot-table epoch when the batch was flushed.
	// A receiver whose table has moved past it re-routes versions of moved
	// slots to their current in-DC owner (core's slot handoff) instead of
	// applying them to a server that no longer serves the slot. Zero means
	// the sender predates resharding (or runs the static layout).
	SlotEpoch uint64
}

// Heartbeat advertises the sender's current clock so idle replicas keep the
// receivers' version vectors moving (Algorithm 2, lines 19-28). Epoch and
// Seq mirror ReplicateBatch: Seq is the sender's last flushed batch
// sequence, letting receivers verify the link is gap-free before advancing
// their version vector on an otherwise data-free message (an idle restarted
// sender is detected exactly here). Epoch 0 marks a legacy heartbeat; Floor
// is the incarnation's starting history floor (see ReplicateBatch).
type Heartbeat struct {
	Time  vclock.Timestamp
	Epoch uint64
	Seq   uint64
	Floor vclock.Timestamp
}

// CatchUpRequest asks the sibling replica that feeds this link to re-ship
// every version it originated after From, which the requester sets to its
// version-vector entry for the sender's DC — the timestamp through which its
// received prefix is known complete. ReqID matches replies to the request
// round, so a re-issued request cannot be satisfied by a stale stream.
//
// Have is the requester's whole version vector at request time. When set, it
// additionally asks the sender to re-ship the history of *departed* (DCLeft)
// data centers: for every departed DC d the sender streams the versions d
// originated with Have[d] < UpdateTime ≤ min(final[d], sender's progress) out
// of its own log, and claims the shipped bound per DC on the Done reply
// (CatchUpReply.Departed). This is how a joiner — or a survivor left short by
// a forced eviction — obtains history whose origin is no longer around to
// serve it. Nil Have requests own-origin history only (legacy shape).
type CatchUpRequest struct {
	ReqID uint64
	From  vclock.Timestamp
	Have  vclock.VC
}

// DepartedClaim is the sender's guarantee, carried on a final CatchUpReply,
// that the requester now holds every version the departed DC originated with
// a timestamp ≤ Through that the sender holds — and the sender's own
// version-vector entry for that DC covers Through, so the prefix is complete.
type DepartedClaim struct {
	DC      int
	Through vclock.Timestamp
}

// CatchUpReply carries one chunk of a catch-up stream, served straight out
// of the sender's write-ahead log. Chunks are numbered from 1 and
// acknowledged individually (CatchUpAck) so the sender can bound the data in
// flight. The final chunk has Done set and carries the resume point: the
// sender guarantees the requester now holds every version it originated
// with a timestamp ≤ Through, and that batches after (ResumeEpoch,
// ResumeSeq) continue the link's sequence from there. Unsupported marks a
// sender without a durable log to stream from; the requester falls back to
// optimistic (pre-catch-up) semantics for the link.
// FullResync marks a stream the sender had to restart from timestamp zero:
// the requested From lies below the sender's checkpoint-compaction floor, so
// the (From, Through] range alone could silently miss versions a checkpoint
// pruned as superseded. Rather than ship an incomplete range, the sender
// streams its complete surviving history and says so — the signal (plus the
// GC holdback that normally prevents compacting past a lagging link's floor)
// is the documented degraded path when GCMaxHoldback released the floor
// early. Departed carries the per-DC bounds of re-shipped departed history
// (see CatchUpRequest.Have); it is only set on the Done reply.
type CatchUpReply struct {
	ReqID       uint64
	Chunk       uint64
	Versions    []*item.Version
	Done        bool
	Unsupported bool
	ResumeEpoch uint64
	ResumeSeq   uint64
	Through     vclock.Timestamp
	FullResync  bool
	Departed    []DepartedClaim
	// SlotEpoch is the sender's slot-table epoch for this chunk (see
	// ReplicateBatch.SlotEpoch); caught-up versions of since-moved slots get
	// re-routed by the receiver exactly like live traffic.
	SlotEpoch uint64
	// Progress is the sender's per-origin claim for this chunk: for every
	// origin d with Progress[d] > 0, the requester — once it has applied
	// chunks 1..Chunk of this round — holds every version d originated in
	// the round's shipped window with UpdateTime ≤ Progress[d]. The sender
	// only advances an origin's claim while its log walk visits that
	// origin's versions in ascending timestamp order (checkpoint-snapshot
	// segments are not globally ordered), so the claim is always safe to
	// resume a later round from. Nil on legacy streams.
	Progress vclock.VC
}

// CatchUpAck acknowledges receipt of one catch-up chunk, opening the
// sender's in-flight window for the next one (backpressure).
type CatchUpAck struct {
	ReqID uint64
	Chunk uint64
}

// Data-center membership statuses. The values form a lattice: a status only
// ever moves to a larger value (Unknown → Joining → Active → Left), so two
// divergent views merge by taking the entry-wise maximum and always agree
// eventually. Left is terminal — a departed DC's id is never reused, or its
// timestamps would collide with the departed history.
const (
	// DCUnknown marks a slot that has never held a member.
	DCUnknown uint8 = iota
	// DCJoining marks a member that is bootstrapping: it receives the live
	// update stream and pulls history via WAL-shipped catch-up, but has not
	// yet proven it holds every member's past.
	DCJoining
	// DCActive marks a fully synchronized member.
	DCActive
	// DCLeft marks a departed member. Its version-vector entries freeze at
	// the final timestamp it announced (LeaveNotice.Final).
	DCLeft
)

// Membership is the epoch-stamped view of the deployment's data centers,
// owned by each server's replication manager and carried on every membership
// message. Status is indexed by DC id; ids beyond the slice are DCUnknown.
// Epoch counts view changes: a node that mutates its view locally sets
// Epoch to one past the largest epoch it has seen, so epochs order the
// changes a single admin drives while the entry-wise lattice merge keeps
// concurrent changes convergent.
// Final records, per DC id, the final timestamp a departed (DCLeft) member
// was frozen at: a graceful leaver announces its own (LeaveNotice.Final), a
// forcibly evicted DC gets the value the survivors agreed on (EvictNotice).
// Entries merge by numeric maximum alongside the statuses, so the view
// carries the freeze point wherever it travels; zero means "not known /
// no cap". Entries for non-departed DCs are meaningless and stay zero.
type Membership struct {
	Epoch  uint64
	Status []uint8
	Final  vclock.VC
}

// Clone returns an independent copy of the view.
func (m Membership) Clone() Membership {
	out := Membership{Epoch: m.Epoch}
	if m.Status != nil {
		out.Status = append([]uint8(nil), m.Status...)
	}
	if m.Final != nil {
		out.Final = m.Final.Clone()
	}
	return out
}

// FinalOf returns the final (freeze) timestamp recorded for a departed dc,
// or zero when none is known.
func (m Membership) FinalOf(dc int) vclock.Timestamp {
	if dc < 0 || dc >= len(m.Final) {
		return 0
	}
	return m.Final[dc]
}

// SetFinal records a departed DC's final timestamp, growing the vector as
// needed. It only ever raises the entry (the lattice order).
func (m *Membership) SetFinal(dc int, final vclock.Timestamp) {
	if dc < 0 {
		return
	}
	for len(m.Final) <= dc {
		m.Final = append(m.Final, 0)
	}
	if final > m.Final[dc] {
		m.Final[dc] = final
	}
}

// Get returns the status of dc (DCUnknown beyond the view).
func (m Membership) Get(dc int) uint8 {
	if dc < 0 || dc >= len(m.Status) {
		return DCUnknown
	}
	return m.Status[dc]
}

// IsMember reports whether dc currently participates in replication
// (Joining or Active).
func (m Membership) IsMember(dc int) bool {
	s := m.Get(dc)
	return s == DCJoining || s == DCActive
}

// Merge folds o into m entry-wise (statuses take the lattice maximum, the
// epoch takes the numeric maximum) and reports whether m changed. Entries of
// o beyond limit are ignored — the receiver's vector capacity bounds the DC
// ids it can track, and a hostile view must not grow state unboundedly.
func (m *Membership) Merge(o Membership, limit int) bool {
	changed := false
	n := len(o.Status)
	if n > limit {
		n = limit
	}
	if n > len(m.Status) {
		grown := make([]uint8, n)
		copy(grown, m.Status)
		m.Status = grown
		changed = true
	}
	for i := 0; i < n; i++ {
		if o.Status[i] > m.Status[i] {
			m.Status[i] = o.Status[i]
			changed = true
		}
	}
	nf := len(o.Final)
	if nf > limit {
		nf = limit
	}
	for i := 0; i < nf; i++ {
		if o.Final[i] > m.FinalOf(i) {
			m.SetFinal(i, o.Final[i])
			changed = true
		}
	}
	if o.Epoch > m.Epoch {
		m.Epoch = o.Epoch
		changed = true
	}
	return changed
}

// JoinRequest announces a joining DC's partition server to its sibling in a
// member DC: the sender asks to be added to the sibling's replication
// fan-out. View is the joiner's current view (itself marked DCJoining), so a
// sibling that never heard of the join learns it from the request itself.
type JoinRequest struct {
	DC   int
	View Membership
}

// JoinAccept is the sibling's reply to a JoinRequest: its merged membership
// view, plus Through — the acceptor's own-origin progress at accept time,
// the point the joiner must at least catch up through before its view of
// this link is complete (informational; the catch-up protocol enforces the
// real bound).
type JoinAccept struct {
	View    Membership
	Through vclock.Timestamp
}

// MembershipUpdate broadcasts a view change — most importantly a joiner
// announcing itself DCActive once every inbound link has bootstrapped.
// Receivers fold the view in by the lattice merge.
type MembershipUpdate struct {
	View Membership
}

// LeaveNotice is a departing DC's final word on a replication link. It is
// sent after the sender's last flush on the same FIFO link, so by the time
// it arrives the receiver holds every version the leaver originated — and
// none of them exceeds Final. Receivers freeze the leaver's version-vector
// entry at Final, cancel any catch-up round pending on the link (nobody is
// left to answer it), and drop the DC from their fan-out.
type LeaveNotice struct {
	DC    int
	Final vclock.Timestamp
	View  Membership
}

// EvictProposal opens a forced-removal round for a *crashed* DC: a proposer
// (one surviving server per partition, usually driven by an administrator's
// ForceRemoveDC) asks every surviving sibling to report how much of the dead
// DC's history it provably holds. Unlike a graceful leave there is no final
// flush to trust — the survivors must agree on the freeze point themselves.
// ReqID identifies the round; proposals are re-sent with backoff until every
// survivor has acknowledged, and acknowledging is idempotent.
type EvictProposal struct {
	DC    int
	ReqID uint64
	View  Membership
}

// EvictAck answers an EvictProposal: Entry is the responder's version-vector
// entry for the DC being evicted — the timestamp through which its received
// prefix from that DC is gap-free and complete. The proposer takes the
// maximum over all acks (and its own entry) as the agreed final timestamp.
type EvictAck struct {
	DC    int
	ReqID uint64
	Entry vclock.Timestamp
}

// EvictNotice concludes a forced removal: the survivors agreed that Final is
// the highest prefix-complete timestamp any of them holds from the dead DC.
// Receivers mark the DC DCLeft with that final in their view (lattice merge,
// exactly like a LeaveNotice), drop any version above Final the dead DC
// managed to slip to them outside the agreed prefix, cancel catch-up rounds
// pending on the dead link, and — if their own entry is below Final — pull
// the missing suffix from a surviving holder via CatchUpRequest.Have. The
// evicted DC's id is never reused.
type EvictNotice struct {
	DC    int
	Final vclock.Timestamp
	View  Membership
}

// SlotMapUpdate gossips an epoch-stamped slot table (keyspace.SlotMap).
// Receivers fold it in by the lattice merge and re-gossip on change, so a
// reshard driven at any one server converges across the deployment without
// coordination — the within-DC analogue of MembershipUpdate.
type SlotMapUpdate struct {
	Map *keyspace.SlotMap
}

// SlotHandoff forwards versions that reached a server which no longer owns
// their slots (a replication batch or catch-up chunk stamped with a
// pre-reshard slot epoch) to the slot's current in-DC owner. Handoff inserts
// are idempotent store writes only — they never advance the receiver's
// version vector, because the forwarding server cannot vouch for the
// origin's gap-free prefix. They are defense-in-depth: the reshard protocol
// drains in-flight traffic before flipping routing, so handoffs carry
// near-zero volume in practice.
type SlotHandoff struct {
	Versions []*item.Version
}

// SliceReq asks a same-DC partition to read keys within the transactional
// snapshot TV on behalf of a RO-TX coordinator.
type SliceReq struct {
	TxID        uint64
	Coordinator netemu.NodeID
	Keys        []string
	TV          vclock.VC
	// Pessimistic marks slices of transactions issued by pessimistic
	// (fallback) sessions. Visibility is fully encoded in TV (the
	// coordinator builds it from its GSS for pessimistic transactions), so
	// responders do not branch on this flag; it is kept for diagnostics and
	// wire-format stability.
	Pessimistic bool
}

// SliceResp returns the versions read for a SliceReq. Err is non-empty when
// the responder had to abort the slice (HA-POCC block timeout).
type SliceResp struct {
	TxID  uint64
	Items []ItemReply
	Err   string
}

// VVExchange is the stabilization message of the pessimistic protocol: nodes
// within a DC periodically broadcast their version vectors and compute the
// Globally Stable Snapshot as the aggregate minimum (§IV-C).
//
// In the lean (Okapi-style) stabilization variant most ticks carry only
// Watermark — a scalar HLC attestation equal to the minimum nonzero member
// entry of the sender's VV — with VV nil; full vectors are still sent
// periodically to establish and refresh the per-entry baseline. A receiver
// folds a watermark into the sender's last known full vector (see
// core.Server.applyVVExchange for the safety argument).
type VVExchange struct {
	Partition int
	VV        vclock.VC
	Watermark vclock.Timestamp
}

// GCExchange carries a node's garbage-collection contribution: the aggregate
// minimum of its visibility vector and the snapshot vectors of its active
// transactions. The GC vector GV is the aggregate minimum across the DC.
type GCExchange struct {
	Partition int
	TV        vclock.VC
}

// ItemReply is the result of reading one key: the returned version's payload
// and causal metadata (value, update time, dependency vector, source replica
// — the GETReply of Algorithm 2, line 4) plus the chain statistics the
// evaluation reports.
type ItemReply struct {
	Key        string
	Exists     bool
	Value      []byte
	SrcReplica int
	UpdateTime vclock.Timestamp
	Deps       vclock.VC
	// Fresher counts LWW-newer versions hidden by the visibility rule
	// ("old" items, Fig. 2b); Invisible counts not-yet-visible versions in
	// the chain ("unmerged").
	Fresher   int
	Invisible int
}

// FromVersion builds an ItemReply for v (nil means the key has no visible
// version).
func FromVersion(key string, v *item.Version, fresher, invisible int) ItemReply {
	r := ItemReply{Key: key, Fresher: fresher, Invisible: invisible}
	if v != nil {
		r.Exists = true
		r.Value = v.Value
		r.SrcReplica = v.SrcReplica
		r.UpdateTime = v.UpdateTime
		r.Deps = v.Deps
	}
	return r
}
