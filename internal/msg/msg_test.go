package msg

import (
	"testing"

	"repro/internal/item"
	"repro/internal/vclock"
)

func TestFromVersion(t *testing.T) {
	v := &item.Version{
		Key: "k", Value: []byte("v"), SrcReplica: 2, UpdateTime: 99,
		Deps: vclock.VC{1, 2, 3},
	}
	r := FromVersion("k", v, 4, 5)
	if !r.Exists {
		t.Fatal("existing version must set Exists")
	}
	if string(r.Value) != "v" || r.SrcReplica != 2 || r.UpdateTime != 99 {
		t.Fatalf("reply = %+v", r)
	}
	if !r.Deps.Equal(vclock.VC{1, 2, 3}) {
		t.Fatalf("deps = %v", r.Deps)
	}
	if r.Fresher != 4 || r.Invisible != 5 {
		t.Fatalf("staleness stats = %+v", r)
	}
}

func TestFromVersionNil(t *testing.T) {
	r := FromVersion("k", nil, 0, 3)
	if r.Exists || r.Value != nil || r.UpdateTime != 0 {
		t.Fatalf("reply = %+v", r)
	}
	if r.Key != "k" || r.Invisible != 3 {
		t.Fatalf("reply = %+v", r)
	}
}
