package wire

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/item"
	"repro/internal/keyspace"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/vclock"
)

// FuzzCatchUpDecode feeds arbitrary bytes through the binary envelope
// decoder, asserting that corrupted or truncated frames — including the
// catch-up and sequenced-replication message set the recovery path depends
// on — only ever produce errors, never panics or runaway allocations. This
// is exactly what a tcpnet reader does with bytes off an untrusted wire.
func FuzzCatchUpDecode(f *testing.F) {
	// Seed with well-formed frames of every replication-plane message so the
	// fuzzer mutates realistic input.
	seeds := []any{
		msg.ReplicateBatch{
			Versions: []*item.Version{{
				Key: "user:42", Value: []byte("payload"), SrcReplica: 1,
				UpdateTime: 123456, Deps: vclock.VC{7, 0, 99}, Optimistic: true,
			}},
			HBTime: 123456, Epoch: 77, Seq: 3, Floor: 1000,
		},
		msg.Heartbeat{Time: 4242, Epoch: 77, Seq: 3, Floor: 1000},
		msg.CatchUpRequest{ReqID: 9, From: 500},
		msg.CatchUpReply{
			ReqID: 9, Chunk: 2,
			Versions: []*item.Version{{Key: "k", Deps: vclock.New(3)}},
		},
		msg.CatchUpReply{ReqID: 9, Done: true, ResumeEpoch: 77, ResumeSeq: 3, Through: 123456},
		msg.CatchUpReply{ReqID: 9, Done: true, Unsupported: true},
		msg.CatchUpRequest{ReqID: 10, From: 500, Have: vclock.VC{7, 0, 99}},
		msg.CatchUpReply{ReqID: 10, Done: true, Through: 123456, FullResync: true,
			Departed: []msg.DepartedClaim{{DC: 2, Through: 777}}},
		msg.CatchUpAck{ReqID: 9, Chunk: 2},
	}
	for _, m := range seeds {
		var buf bytes.Buffer
		if err := NewBinaryEncoder(&buf).Encode(Envelope{
			Src: netemu.NodeID{DC: 1, Partition: 2}, Msg: m,
		}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2]) // truncated frame
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewBinaryDecoder(bytes.NewReader(data))
		for {
			env, err := dec.Decode()
			if err != nil {
				return // an error is the accepted outcome
			}
			// A frame that decodes must re-encode: the codec round-trips
			// every value it is willing to produce.
			var buf bytes.Buffer
			if err := NewBinaryEncoder(&buf).Encode(env); err != nil {
				t.Fatalf("decoded envelope failed to re-encode: %v (%#v)", err, env)
			}
		}
	})
}

// FuzzMembershipDecode drives the binary decoder with mutations of the
// membership message set (join/accept/update/leave). Membership views carry
// a length-marked status vector and are merged into per-node state on
// receipt, so a corrupted frame must fail cleanly — and any frame that does
// decode must re-encode byte-identically: the membership protocol relies on
// relayed views (a JoinAccept forwards the merged view) surviving
// re-serialization unchanged.
func FuzzMembershipDecode(f *testing.F) {
	views := []msg.Membership{
		{},
		{Epoch: 1, Status: []uint8{}},
		{Epoch: 7, Status: []uint8{msg.DCActive, msg.DCActive, msg.DCJoining}},
		{Epoch: 9, Status: []uint8{msg.DCLeft, msg.DCActive, msg.DCUnknown, msg.DCJoining}},
		{Epoch: 11, Status: []uint8{msg.DCActive, msg.DCLeft}, Final: vclock.VC{0, 4242}},
	}
	var seeds []any
	for _, v := range views {
		seeds = append(seeds,
			msg.JoinRequest{DC: 3, View: v},
			msg.JoinAccept{View: v, Through: 123456},
			msg.MembershipUpdate{View: v},
			msg.LeaveNotice{DC: 1, Final: 98765, View: v},
			msg.EvictProposal{DC: 1, ReqID: 7, View: v},
			msg.EvictNotice{DC: 1, Final: 98765, View: v},
		)
	}
	seeds = append(seeds, msg.EvictAck{DC: 1, ReqID: 7, Entry: 98765})
	for _, m := range seeds {
		var buf bytes.Buffer
		if err := NewBinaryEncoder(&buf).Encode(Envelope{
			Src: netemu.NodeID{DC: 2, Partition: 1}, Msg: m,
		}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2]) // truncated frame
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewBinaryDecoder(bytes.NewReader(data))
		for {
			env, err := dec.Decode()
			if err != nil {
				return // corrupted input must fail, not panic
			}
			var buf bytes.Buffer
			if err := NewBinaryEncoder(&buf).Encode(env); err != nil {
				t.Fatalf("decoded envelope failed to re-encode: %v (%#v)", err, env)
			}
			re, err := NewBinaryDecoder(bytes.NewReader(buf.Bytes())).Decode()
			if err != nil {
				t.Fatalf("re-encoded envelope failed to decode: %v (%#v)", err, env)
			}
			if !reflect.DeepEqual(env, re) {
				t.Fatalf("re-encode changed the message:\n in: %#v\nout: %#v", env, re)
			}
		}
	})
}

// FuzzSlotMapDecode drives the binary decoder with mutations of the slot
// table message set (SlotMapUpdate/SlotHandoff) plus slot-epoch-stamped
// replication and catch-up frames. A slot map installs directly into every
// server's routing state, so a corrupted frame must either fail cleanly or
// yield a map whose invariants hold (owners in range, stamps below the
// epoch) — and any frame that decodes must re-encode to the same message.
func FuzzSlotMapDecode(f *testing.F) {
	m4 := keyspace.DefaultMap(4)
	moved, err := m4.MoveSlots([]int{0, 4, 8, 12}, 4)
	if err != nil {
		f.Fatal(err)
	}
	seeds := []any{
		msg.SlotMapUpdate{},
		msg.SlotMapUpdate{Map: m4},
		msg.SlotMapUpdate{Map: moved},
		msg.SlotHandoff{Versions: []*item.Version{{
			Key: "user:42", Value: []byte("payload"), SrcReplica: 1,
			UpdateTime: 123456, Deps: vclock.VC{7, 0, 99},
		}}},
		msg.ReplicateBatch{HBTime: 123456, Epoch: 77, Seq: 3, Floor: 1000, SlotEpoch: 2},
		msg.CatchUpReply{ReqID: 9, Done: true, Through: 123456, SlotEpoch: 2,
			Progress: vclock.VC{7, 0, 99}},
	}
	for _, m := range seeds {
		var buf bytes.Buffer
		if err := NewBinaryEncoder(&buf).Encode(Envelope{
			Src: netemu.NodeID{DC: 1, Partition: 2}, Msg: m,
		}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2]) // truncated frame
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewBinaryDecoder(bytes.NewReader(data))
		for {
			env, err := dec.Decode()
			if err != nil {
				return // corrupted input must fail, not panic
			}
			if u, ok := env.Msg.(msg.SlotMapUpdate); ok && u.Map != nil {
				if verr := u.Map.Validate(); verr != nil {
					t.Fatalf("decoder produced an invalid slot map: %v", verr)
				}
			}
			var buf bytes.Buffer
			if err := NewBinaryEncoder(&buf).Encode(env); err != nil {
				t.Fatalf("decoded envelope failed to re-encode: %v (%#v)", err, env)
			}
			re, err := NewBinaryDecoder(bytes.NewReader(buf.Bytes())).Decode()
			if err != nil {
				t.Fatalf("re-encoded envelope failed to decode: %v (%#v)", err, env)
			}
			if !reflect.DeepEqual(env, re) {
				t.Fatalf("re-encode changed the message:\n in: %#v\nout: %#v", env, re)
			}
		}
	})
}

// FuzzHLCDecode drives the binary decoder with mutations of the hybrid-clock
// message set: delta-encoded ReplicateBatch frames (zigzag timestamps against
// the HBTime base, absolute-fallback format byte) and watermark-carrying
// VVExchange frames. Corrupted input must fail cleanly, and any frame that
// decodes must survive re-encoding semantically — the encoder is free to pick
// the canonical format byte, so equality is checked on the decoded message,
// not the bytes.
func FuzzHLCDecode(f *testing.F) {
	base := vclock.Timestamp(1 << 44)
	seeds := []any{
		msg.ReplicateBatch{HBTime: base, Epoch: 77, Seq: 3, Floor: base - 5000,
			Versions: []*item.Version{{
				Key: "user:42", Value: []byte("payload"), SrcReplica: 1,
				UpdateTime: base - 700, Deps: vclock.VC{base - 900, 0, base - 40000}, Optimistic: true,
			}}},
		msg.ReplicateBatch{HBTime: base, Epoch: 1, Seq: 9,
			Versions: []*item.Version{
				{Key: "lo", UpdateTime: 1, Deps: vclock.VC{0, 1, 1 << 62}},
				{Key: "hi", UpdateTime: base + 1<<50, Deps: vclock.VC{base + 1, 0}},
			}},
		// Absolute-fallback batch: a dep delta of exactly 1<<63.
		msg.ReplicateBatch{HBTime: 2, Versions: []*item.Version{
			{Key: "fb", UpdateTime: 3, Deps: vclock.VC{2 + 1<<63}},
		}},
		msg.VVExchange{Partition: 1, VV: vclock.VC{base, 0, base - 1}, Watermark: base - 1},
		msg.VVExchange{Partition: 2, Watermark: base},
		msg.Heartbeat{Time: base, Epoch: 77, Seq: 4, Floor: base - 5000},
	}
	for _, m := range seeds {
		var buf bytes.Buffer
		if err := NewBinaryEncoder(&buf).Encode(Envelope{
			Src: netemu.NodeID{DC: 1, Partition: 2}, Msg: m,
		}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2]) // truncated frame
	}
	// Hand-built frame with an unknown batch format byte: must be rejected.
	var bad bytes.Buffer
	if err := NewBinaryEncoder(&bad).Encode(Envelope{
		Src: netemu.NodeID{DC: 1, Partition: 2},
		Msg: msg.ReplicateBatch{HBTime: base},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(bad.Bytes())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewBinaryDecoder(bytes.NewReader(data))
		for {
			env, err := dec.Decode()
			if err != nil {
				return // corrupted input must fail, not panic
			}
			var buf bytes.Buffer
			if err := NewBinaryEncoder(&buf).Encode(env); err != nil {
				t.Fatalf("decoded envelope failed to re-encode: %v (%#v)", err, env)
			}
			re, err := NewBinaryDecoder(bytes.NewReader(buf.Bytes())).Decode()
			if err != nil {
				t.Fatalf("re-encoded envelope failed to decode: %v (%#v)", err, env)
			}
			if !reflect.DeepEqual(env, re) {
				t.Fatalf("re-encode changed the message:\n in: %#v\nout: %#v", env, re)
			}
		}
	})
}
