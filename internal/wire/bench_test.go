package wire

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/item"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/vclock"
)

// benchEnvelope is a representative replication frame: one batch of eight
// versions with 3-entry dependency vectors and 8-byte payloads, the shape
// the Δ-flush produces under the paper's workload.
func benchEnvelope() Envelope {
	batch := msg.ReplicateBatch{HBTime: 123456789}
	for i := 0; i < 8; i++ {
		batch.Versions = append(batch.Versions, &item.Version{
			Key:        "bench-key-42",
			Value:      []byte("00000000"),
			SrcReplica: 1,
			UpdateTime: vclock.Timestamp(1000000 + i),
			Deps:       vclock.VC{999999, 888888, 777777},
		})
	}
	return Envelope{Src: netemu.NodeID{DC: 1, Partition: 3}, Msg: batch}
}

func benchEncode(b *testing.B, codec Codec) {
	b.Helper()
	env := benchEnvelope()
	enc := codec.NewEncoder(io.Discard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(env); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecode(b *testing.B, codec Codec) {
	b.Helper()
	env := benchEnvelope()
	// Pre-encode b.N frames into one stream so decode cost dominates.
	var buf bytes.Buffer
	enc := codec.NewEncoder(&buf)
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(env); err != nil {
			b.Fatal(err)
		}
	}
	dec := codec.NewDecoder(bytes.NewReader(buf.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireCodecEncodeBinary(b *testing.B) { benchEncode(b, Binary) }
func BenchmarkWireCodecEncodeGob(b *testing.B)    { benchEncode(b, Gob) }
func BenchmarkWireCodecDecodeBinary(b *testing.B) { benchDecode(b, Binary) }
func BenchmarkWireCodecDecodeGob(b *testing.B)    { benchDecode(b, Gob) }

// BenchmarkWireCodecHeartbeat measures the smallest frame — the steady
// idle-DC traffic.
func BenchmarkWireCodecHeartbeat(b *testing.B) {
	env := Envelope{Src: netemu.NodeID{DC: 2, Partition: 0}, Msg: msg.Heartbeat{Time: 987654321}}
	enc := NewBinaryEncoder(io.Discard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(env); err != nil {
			b.Fatal(err)
		}
	}
}
