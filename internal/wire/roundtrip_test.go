package wire

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/item"
	"repro/internal/keyspace"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/vclock"
)

// genVC returns nil, empty, or a random vector — the three shapes dependency
// vectors take on the wire.
func genVC(r *rand.Rand) vclock.VC {
	switch r.IntN(4) {
	case 0:
		return nil
	case 1:
		return vclock.VC{}
	default:
		v := make(vclock.VC, 1+r.IntN(5))
		for i := range v {
			v[i] = vclock.Timestamp(r.Uint64N(1 << 62))
		}
		return v
	}
}

func genBytes(r *rand.Rand) []byte {
	switch r.IntN(4) {
	case 0:
		return nil
	case 1:
		return []byte{}
	default:
		b := make([]byte, r.IntN(64))
		for i := range b {
			b[i] = byte(r.Uint32())
		}
		return b
	}
}

func genString(r *rand.Rand) string {
	n := r.IntN(24)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.IntN(26))
	}
	return string(b)
}

func genVersion(r *rand.Rand) *item.Version {
	return &item.Version{
		Key:        genString(r),
		Value:      genBytes(r),
		SrcReplica: r.IntN(8),
		UpdateTime: vclock.Timestamp(r.Uint64N(1 << 62)),
		Deps:       genVC(r),
		Optimistic: r.IntN(2) == 0,
	}
}

func genItemReply(r *rand.Rand) msg.ItemReply {
	return msg.ItemReply{
		Key:        genString(r),
		Exists:     r.IntN(2) == 0,
		Value:      genBytes(r),
		SrcReplica: r.IntN(8),
		UpdateTime: vclock.Timestamp(r.Uint64N(1 << 62)),
		Deps:       genVC(r),
		Fresher:    r.IntN(10),
		Invisible:  r.IntN(10),
	}
}

// genMembership returns nil-status, empty, or a random membership view.
func genMembership(r *rand.Rand) msg.Membership {
	m := msg.Membership{Epoch: r.Uint64()}
	switch r.IntN(4) {
	case 0: // nil Status
	case 1:
		m.Status = []uint8{}
	default:
		m.Status = make([]uint8, 1+r.IntN(6))
		for i := range m.Status {
			m.Status[i] = uint8(r.IntN(4)) // DCUnknown..DCLeft
		}
	}
	m.Final = genVC(r)
	return m
}

func genDeparted(r *rand.Rand) []msg.DepartedClaim {
	switch r.IntN(4) {
	case 0:
		return nil
	case 1:
		return []msg.DepartedClaim{}
	default:
		out := make([]msg.DepartedClaim, 1+r.IntN(4))
		for i := range out {
			out[i] = msg.DepartedClaim{DC: r.IntN(8), Through: vclock.Timestamp(r.Uint64N(1 << 62))}
		}
		return out
	}
}

// genSlotMap returns nil or a random *valid* slot map — the decoder
// validates structural invariants, so generated maps must satisfy them.
func genSlotMap(r *rand.Rand) *keyspace.SlotMap {
	if r.IntN(4) == 0 {
		return nil
	}
	m := &keyspace.SlotMap{Epoch: r.Uint64N(1 << 40), Parts: 1 + r.IntN(keyspace.NumSlots)}
	for s := 0; s < keyspace.NumSlots; s++ {
		m.Owner[s] = uint8(r.IntN(m.Parts))
		if m.Epoch > 0 {
			m.Stamp[s] = r.Uint64N(m.Epoch + 1)
		}
	}
	return m
}

// genMsg draws one random protocol message of the i-th type.
func genMsg(r *rand.Rand, kind int) any {
	switch kind % numMsgKinds {
	case 0:
		return msg.Replicate{V: genVersion(r)}
	case 1:
		m := msg.ReplicateBatch{
			HBTime:    vclock.Timestamp(r.Uint64N(1 << 62)),
			Epoch:     r.Uint64(),
			Seq:       r.Uint64(),
			Floor:     vclock.Timestamp(r.Uint64N(1 << 62)),
			SlotEpoch: r.Uint64N(1 << 40),
		}
		switch r.IntN(4) {
		case 0: // nil Versions
		case 1:
			m.Versions = []*item.Version{}
		default:
			for i := 0; i < 1+r.IntN(6); i++ {
				m.Versions = append(m.Versions, genVersion(r))
			}
		}
		return m
	case 2:
		return msg.Heartbeat{
			Time:  vclock.Timestamp(r.Uint64N(1 << 62)),
			Epoch: r.Uint64(),
			Seq:   r.Uint64(),
			Floor: vclock.Timestamp(r.Uint64N(1 << 62)),
		}
	case 3:
		m := msg.SliceReq{
			TxID:        r.Uint64(),
			Coordinator: netemu.NodeID{DC: r.IntN(8), Partition: r.IntN(8)},
			TV:          genVC(r),
			Pessimistic: r.IntN(2) == 0,
		}
		switch r.IntN(4) {
		case 0: // nil Keys
		case 1:
			m.Keys = []string{}
		default:
			for i := 0; i < 1+r.IntN(5); i++ {
				m.Keys = append(m.Keys, genString(r))
			}
		}
		return m
	case 4:
		m := msg.SliceResp{TxID: r.Uint64(), Err: genString(r)}
		switch r.IntN(4) {
		case 0: // nil Items
		case 1:
			m.Items = []msg.ItemReply{}
		default:
			for i := 0; i < 1+r.IntN(5); i++ {
				m.Items = append(m.Items, genItemReply(r))
			}
		}
		return m
	case 5:
		return msg.VVExchange{Partition: r.IntN(8), VV: genVC(r),
			Watermark: vclock.Timestamp(r.Uint64N(1 << 62))}
	case 6:
		return msg.GCExchange{Partition: r.IntN(8), TV: genVC(r)}
	case 7:
		return msg.CatchUpRequest{ReqID: r.Uint64(), From: vclock.Timestamp(r.Uint64N(1 << 62)), Have: genVC(r)}
	case 8:
		m := msg.CatchUpReply{
			ReqID:       r.Uint64(),
			Chunk:       r.Uint64(),
			Done:        r.IntN(2) == 0,
			Unsupported: r.IntN(2) == 0,
			ResumeEpoch: r.Uint64(),
			ResumeSeq:   r.Uint64(),
			Through:     vclock.Timestamp(r.Uint64N(1 << 62)),
			FullResync:  r.IntN(2) == 0,
			Departed:    genDeparted(r),
			SlotEpoch:   r.Uint64N(1 << 40),
			Progress:    genVC(r),
		}
		switch r.IntN(4) {
		case 0: // nil Versions
		case 1:
			m.Versions = []*item.Version{}
		default:
			for i := 0; i < 1+r.IntN(6); i++ {
				m.Versions = append(m.Versions, genVersion(r))
			}
		}
		return m
	case 9:
		return msg.CatchUpAck{ReqID: r.Uint64(), Chunk: r.Uint64()}
	case 10:
		return msg.JoinRequest{DC: r.IntN(8), View: genMembership(r)}
	case 11:
		return msg.JoinAccept{View: genMembership(r), Through: vclock.Timestamp(r.Uint64N(1 << 62))}
	case 12:
		return msg.MembershipUpdate{View: genMembership(r)}
	case 13:
		return msg.LeaveNotice{DC: r.IntN(8), Final: vclock.Timestamp(r.Uint64N(1 << 62)), View: genMembership(r)}
	case 14:
		return msg.EvictProposal{DC: r.IntN(8), ReqID: r.Uint64(), View: genMembership(r)}
	case 15:
		return msg.EvictAck{DC: r.IntN(8), ReqID: r.Uint64(), Entry: vclock.Timestamp(r.Uint64N(1 << 62))}
	case 16:
		return msg.EvictNotice{DC: r.IntN(8), Final: vclock.Timestamp(r.Uint64N(1 << 62)), View: genMembership(r)}
	case 17:
		return msg.SlotMapUpdate{Map: genSlotMap(r)}
	default:
		m := msg.SlotHandoff{}
		switch r.IntN(4) {
		case 0: // nil Versions
		case 1:
			m.Versions = []*item.Version{}
		default:
			for i := 0; i < 1+r.IntN(6); i++ {
				m.Versions = append(m.Versions, genVersion(r))
			}
		}
		return m
	}
}

// numMsgKinds is the number of distinct message types genMsg produces —
// keep it in sync with the switch above so the property tests cover every
// wire type.
const numMsgKinds = 19

func binaryRoundTrip(t *testing.T, env Envelope) Envelope {
	t.Helper()
	var buf bytes.Buffer
	enc := NewBinaryEncoder(&buf)
	if err := enc.Encode(env); err != nil {
		t.Fatalf("binary encode %T: %v", env.Msg, err)
	}
	out, err := NewBinaryDecoder(&buf).Decode()
	if err != nil {
		t.Fatalf("binary decode %T: %v", env.Msg, err)
	}
	return out
}

func gobRoundTrip(t *testing.T, env Envelope) Envelope {
	t.Helper()
	var buf bytes.Buffer
	if err := NewGobEncoder(&buf).Encode(env); err != nil {
		t.Fatalf("gob encode %T: %v", env.Msg, err)
	}
	out, err := NewGobDecoder(&buf).Decode()
	if err != nil {
		t.Fatalf("gob decode %T: %v", env.Msg, err)
	}
	return out
}

// normalize maps nil and empty slices to one canonical shape so the binary
// codec (which preserves nil vs empty exactly) can be compared against gob
// (which collapses empty slices to nil).
func normalize(v reflect.Value) {
	switch v.Kind() {
	case reflect.Ptr:
		if !v.IsNil() {
			normalize(v.Elem())
		}
	case reflect.Interface:
		if !v.IsNil() {
			inner := reflect.New(v.Elem().Type()).Elem()
			inner.Set(v.Elem())
			normalize(inner)
			v.Set(inner)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			normalize(v.Field(i))
		}
	case reflect.Slice:
		if v.Len() == 0 && !v.IsNil() && v.CanSet() {
			v.Set(reflect.Zero(v.Type()))
		}
		for i := 0; i < v.Len(); i++ {
			normalize(v.Index(i))
		}
	}
}

func normalized(env Envelope) Envelope {
	v := reflect.New(reflect.TypeOf(env)).Elem()
	v.Set(reflect.ValueOf(env))
	normalize(v)
	return v.Interface().(Envelope)
}

// TestBinaryRoundTripProperty: for every message type and hundreds of
// random instances (plus nil/empty edge cases), the binary codec decodes
// exactly what was encoded — including the nil-vs-empty distinction — and
// agrees with gob modulo gob's empty-slice collapsing.
func TestBinaryRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 42))
	for kind := 0; kind < numMsgKinds; kind++ {
		t.Run(fmt.Sprintf("kind%d", kind), func(t *testing.T) {
			for i := 0; i < 200; i++ {
				env := Envelope{
					Src: netemu.NodeID{DC: r.IntN(8), Partition: r.IntN(16)},
					Msg: genMsg(r, kind),
				}
				got := binaryRoundTrip(t, env)
				if !reflect.DeepEqual(env, got) {
					t.Fatalf("binary round-trip mangled message:\n in: %#v\nout: %#v", env, got)
				}
				// Cross-check: both codecs decode to the same message, up
				// to gob's nil/empty collapsing.
				viaGob := normalized(gobRoundTrip(t, env))
				viaBin := normalized(got)
				if !reflect.DeepEqual(viaGob, viaBin) {
					t.Fatalf("codecs disagree:\n gob: %#v\n bin: %#v", viaGob, viaBin)
				}
			}
		})
	}
}

// TestBinaryRoundTripEdgeCases pins the shapes most likely to regress.
func TestBinaryRoundTripEdgeCases(t *testing.T) {
	cases := []any{
		msg.Replicate{V: &item.Version{}},
		msg.Replicate{V: &item.Version{Deps: vclock.VC{}}},
		msg.ReplicateBatch{},
		msg.ReplicateBatch{Versions: []*item.Version{}},
		msg.ReplicateBatch{Versions: []*item.Version{{Key: "k", Deps: vclock.New(3)}}, HBTime: 9},
		msg.Heartbeat{},
		msg.SliceReq{},
		msg.SliceReq{Keys: []string{""}, TV: vclock.VC{0}},
		msg.SliceResp{},
		msg.SliceResp{Items: []msg.ItemReply{{}}},
		msg.VVExchange{},
		msg.VVExchange{VV: vclock.VC{}},
		msg.GCExchange{TV: vclock.New(3)},
		msg.CatchUpRequest{},
		msg.CatchUpRequest{ReqID: 1, From: 99},
		msg.CatchUpReply{},
		msg.CatchUpReply{Versions: []*item.Version{}},
		msg.CatchUpReply{Versions: []*item.Version{{Key: "k", Deps: vclock.New(3)}}, Chunk: 2},
		msg.CatchUpReply{Done: true, ResumeEpoch: 7, ResumeSeq: 8, Through: 9},
		msg.CatchUpReply{Done: true, Unsupported: true},
		msg.CatchUpAck{},
		msg.CatchUpAck{ReqID: 3, Chunk: 4},
		msg.ReplicateBatch{Epoch: 1, Seq: 2, Floor: 3},
		msg.Heartbeat{Time: 5, Epoch: 6, Seq: 7, Floor: 8},
		msg.JoinRequest{},
		msg.JoinRequest{DC: 3, View: msg.Membership{Epoch: 9, Status: []uint8{}}},
		msg.JoinRequest{DC: 3, View: msg.Membership{Epoch: 9, Status: []uint8{msg.DCActive, msg.DCJoining}}},
		msg.JoinAccept{},
		msg.JoinAccept{View: msg.Membership{Epoch: 2, Status: []uint8{msg.DCActive}}, Through: 77},
		msg.MembershipUpdate{},
		msg.MembershipUpdate{View: msg.Membership{Epoch: 4, Status: []uint8{msg.DCLeft, msg.DCActive, msg.DCUnknown}}},
		msg.LeaveNotice{},
		msg.LeaveNotice{DC: 1, Final: 1234, View: msg.Membership{Epoch: 5, Status: []uint8{msg.DCActive, msg.DCLeft}}},
		msg.CatchUpRequest{ReqID: 2, From: 7, Have: vclock.VC{1, 2, 3}},
		msg.CatchUpRequest{ReqID: 2, Have: vclock.VC{}},
		msg.CatchUpReply{Done: true, FullResync: true, Through: 42},
		msg.CatchUpReply{Done: true, Departed: []msg.DepartedClaim{}},
		msg.CatchUpReply{Done: true, Departed: []msg.DepartedClaim{{DC: 2, Through: 99}}},
		msg.MembershipUpdate{View: msg.Membership{Epoch: 4, Status: []uint8{msg.DCLeft}, Final: vclock.VC{77}}},
		msg.EvictProposal{},
		msg.EvictProposal{DC: 2, ReqID: 9, View: msg.Membership{Epoch: 3, Status: []uint8{msg.DCActive, msg.DCActive, msg.DCActive}}},
		msg.EvictAck{},
		msg.EvictAck{DC: 2, ReqID: 9, Entry: 123},
		msg.EvictNotice{},
		msg.EvictNotice{DC: 2, Final: 456, View: msg.Membership{Epoch: 7, Status: []uint8{msg.DCActive, msg.DCActive, msg.DCLeft}, Final: vclock.VC{0, 0, 456}}},
		msg.SlotMapUpdate{},
		msg.SlotMapUpdate{Map: keyspace.DefaultMap(4)},
		msg.ReplicateBatch{Epoch: 1, Seq: 2, Floor: 3, SlotEpoch: 4},
		msg.CatchUpReply{Done: true, SlotEpoch: 5, Progress: vclock.VC{1, 0, 9}},
		msg.CatchUpReply{Done: true, Progress: vclock.VC{}},
		msg.SlotHandoff{},
		msg.SlotHandoff{Versions: []*item.Version{}},
		msg.SlotHandoff{Versions: []*item.Version{{Key: "k", Deps: vclock.New(3)}}},
		// Lean stabilization: watermark-only exchange (VV nil).
		msg.VVExchange{Partition: 3, Watermark: 1 << 61},
		msg.VVExchange{Partition: 1, VV: vclock.VC{5, 6}, Watermark: 7},
		// Delta batch extremes: timestamps far below and far above the
		// HBTime base (wraparound zigzag deltas), zero dep entries mixed
		// with nonzero ones, and the one dep delta (1<<63) the delta
		// format cannot carry — the encoder must fall back to absolute.
		msg.ReplicateBatch{HBTime: 1 << 61, Versions: []*item.Version{
			{Key: "lo", UpdateTime: 1, Deps: vclock.VC{0, 1, 1 << 62}},
			{Key: "hi", UpdateTime: 1<<63 + 9, Deps: vclock.VC{1<<61 + 1, 0}},
		}},
		msg.ReplicateBatch{HBTime: 0, Versions: []*item.Version{
			{Key: "fallback", UpdateTime: 3, Deps: vclock.VC{1 << 63}},
		}},
		msg.ReplicateBatch{HBTime: 2, Versions: []*item.Version{
			{Key: "k", UpdateTime: 2 + 1<<63, Deps: vclock.VC{2 + 1<<63}},
		}},
	}
	for i, m := range cases {
		env := Envelope{Src: netemu.NodeID{DC: 1, Partition: 2}, Msg: m}
		got := binaryRoundTrip(t, env)
		if !reflect.DeepEqual(env, got) {
			t.Fatalf("case %d (%T):\n in: %#v\nout: %#v", i, m, env, got)
		}
	}
}

// TestBinaryNilVersionInReplicate: a nil version pointer survives the
// binary codec (gob cannot carry it, so no cross-check).
func TestBinaryNilVersionInReplicate(t *testing.T) {
	env := Envelope{Src: netemu.NodeID{}, Msg: msg.Replicate{}}
	got := binaryRoundTrip(t, env)
	if !reflect.DeepEqual(env, got) {
		t.Fatalf("nil version mangled: %#v", got)
	}
}

// TestBinaryRejectsTruncatedFrames: every prefix of a valid frame must fail
// cleanly (error, not panic or garbage success).
func TestBinaryRejectsTruncatedFrames(t *testing.T) {
	var buf bytes.Buffer
	enc := NewBinaryEncoder(&buf)
	if err := enc.Encode(Envelope{
		Src: netemu.NodeID{DC: 1, Partition: 1},
		Msg: msg.SliceReq{TxID: 7, Keys: []string{"a", "b"}, TV: vclock.VC{1, 2, 3}},
	}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		dec := NewBinaryDecoder(bytes.NewReader(full[:n]))
		if _, err := dec.Decode(); err == nil {
			t.Fatalf("truncated frame of %d/%d bytes decoded successfully", n, len(full))
		}
	}
}

// TestBinaryDeltaBatchProperty drives the delta ReplicateBatch layout with
// HLC-shaped traffic: timestamps clustered within a flush window of the
// HBTime base. Every batch must round-trip exactly, and the delta encoding
// must beat the absolute (pre-HLC) layout on bytes per version — the
// tentpole claim of the hybrid-clock arc, pinned here at the unit level.
func TestBinaryDeltaBatchProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 13))
	var deltaBytes, absBytes, versions int
	for i := 0; i < 300; i++ {
		base := vclock.Timestamp(1<<40 + r.Uint64N(1<<44))
		m := msg.ReplicateBatch{HBTime: base, Epoch: 1 + r.Uint64N(9), Seq: r.Uint64N(1 << 20)}
		for j := 0; j < 1+r.IntN(8); j++ {
			deps := make(vclock.VC, 3)
			for d := range deps {
				if r.IntN(4) > 0 {
					// Within a heartbeat interval of the base, either side.
					deps[d] = base - 500_000 + vclock.Timestamp(r.Uint64N(1_000_000))
				}
			}
			m.Versions = append(m.Versions, &item.Version{
				Key:        genString(r),
				Value:      genBytes(r),
				SrcReplica: r.IntN(3),
				UpdateTime: base - vclock.Timestamp(r.Uint64N(200_000)),
				Deps:       deps,
				Optimistic: true,
			})
		}
		env := Envelope{Src: netemu.NodeID{DC: 1, Partition: 2}, Msg: m}
		got := binaryRoundTrip(t, env)
		if !reflect.DeepEqual(env, got) {
			t.Fatalf("delta batch mangled:\n in: %#v\nout: %#v", env, got)
		}
		var buf bytes.Buffer
		if err := NewBinaryEncoder(&buf).Encode(env); err != nil {
			t.Fatal(err)
		}
		deltaBytes += buf.Len()
		// The pre-HLC layout: absolute version records + absolute header.
		abs := 0
		for _, v := range m.Versions {
			abs += len(AppendVersion(nil, v))
		}
		absBytes += abs
		versions += len(m.Versions)
	}
	if deltaBytes >= absBytes {
		t.Fatalf("delta encoding (%d bytes) not smaller than absolute (%d bytes) over %d versions",
			deltaBytes, absBytes, versions)
	}
	t.Logf("bytes/version: delta %.1f vs absolute %.1f over %d versions",
		float64(deltaBytes)/float64(versions), float64(absBytes)/float64(versions), versions)
}
