package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/item"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/vclock"
)

func roundTrip(t *testing.T, m any) any {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	src := netemu.NodeID{DC: 1, Partition: 3}
	if err := enc.Encode(Envelope{Src: src, Msg: m}); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf)
	env, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if env.Src != src {
		t.Fatalf("src = %v", env.Src)
	}
	return env.Msg
}

func TestRoundTripReplicate(t *testing.T) {
	in := msg.Replicate{V: &item.Version{
		Key: "k", Value: []byte("v"), SrcReplica: 2, UpdateTime: 42,
		Deps: vclock.VC{1, 2, 3}, Optimistic: true,
	}}
	out, ok := roundTrip(t, in).(msg.Replicate)
	if !ok {
		t.Fatalf("decoded %T", out)
	}
	if !reflect.DeepEqual(in.V, out.V) {
		t.Fatalf("version mangled: %+v vs %+v", in.V, out.V)
	}
}

func TestRoundTripHeartbeat(t *testing.T) {
	out, ok := roundTrip(t, msg.Heartbeat{Time: 7}).(msg.Heartbeat)
	if !ok || out.Time != 7 {
		t.Fatalf("decoded %+v", out)
	}
}

func TestRoundTripSliceReq(t *testing.T) {
	in := msg.SliceReq{
		TxID: 9, Coordinator: netemu.NodeID{DC: 2, Partition: 1},
		Keys: []string{"a", "b"}, TV: vclock.VC{4, 5, 6}, Pessimistic: true,
	}
	out, ok := roundTrip(t, in).(msg.SliceReq)
	if !ok || !reflect.DeepEqual(in, out) {
		t.Fatalf("decoded %+v", out)
	}
}

func TestRoundTripSliceResp(t *testing.T) {
	in := msg.SliceResp{
		TxID: 9,
		Items: []msg.ItemReply{{
			Key: "a", Exists: true, Value: []byte("x"), SrcReplica: 1,
			UpdateTime: 11, Deps: vclock.VC{1, 0, 0}, Fresher: 2, Invisible: 1,
		}},
		Err: "boom",
	}
	out, ok := roundTrip(t, in).(msg.SliceResp)
	if !ok || !reflect.DeepEqual(in, out) {
		t.Fatalf("decoded %+v", out)
	}
}

func TestRoundTripExchanges(t *testing.T) {
	vv, ok := roundTrip(t, msg.VVExchange{Partition: 3, VV: vclock.VC{9, 9}}).(msg.VVExchange)
	if !ok || vv.Partition != 3 || !vv.VV.Equal(vclock.VC{9, 9}) {
		t.Fatalf("decoded %+v", vv)
	}
	gc, ok := roundTrip(t, msg.GCExchange{Partition: 1, TV: vclock.VC{5}}).(msg.GCExchange)
	if !ok || gc.Partition != 1 || !gc.TV.Equal(vclock.VC{5}) {
		t.Fatalf("decoded %+v", gc)
	}
}

func TestStreamMultipleEnvelopes(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for i := 0; i < 10; i++ {
		if err := enc.Encode(Envelope{
			Src: netemu.NodeID{DC: 0, Partition: i},
			Msg: msg.Heartbeat{Time: vclock.Timestamp(i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf)
	for i := 0; i < 10; i++ {
		env, err := dec.Decode()
		if err != nil {
			t.Fatalf("envelope %d: %v", i, err)
		}
		if env.Src.Partition != i {
			t.Fatalf("envelope %d out of order: %+v", i, env)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	dec := NewDecoder(bytes.NewReader([]byte("not gob at all")))
	if _, err := dec.Decode(); err == nil || err == io.EOF {
		t.Fatalf("garbage must fail with a real error, got %v", err)
	}
}
