package wire

import (
	"bufio"
	"bytes"
	"io"
	"reflect"
	"testing"
)

// FuzzFrontDoorDecode feeds arbitrary bytes through the front-door frame
// reader and both payload decoders — exactly what a kvserver does with bytes
// off an untrusted client socket. Corrupted or truncated input must only
// ever produce errors, never panics or runaway allocations, and any frame
// that decodes must re-encode to the same value (the client pool relies on
// responses surviving re-serialization in proxies and tests).
func FuzzFrontDoorDecode(f *testing.F) {
	reqs := []FrontDoorRequest{
		{Op: FDPing, ID: 1, Session: 1},
		{Op: FDPut, ID: 2, Session: 1, Key: "user:42", Value: []byte("payload")},
		{Op: FDPut, ID: 3, Session: 2, Key: "", Value: nil},
		{Op: FDGet, ID: 4, Session: 1, Key: "user:42"},
		{Op: FDROTx, ID: 5, Session: 3, Keys: []string{"a", "b", "c"}},
		{Op: FDROTx, ID: 6, Session: 3, Keys: []string{}},
		{Op: FDStats, ID: 7, Session: 1},
		{Op: FDAdmin, ID: 8, Session: 1, Line: "WHEREIS user:42"},
	}
	resps := []FrontDoorResponse{
		{Kind: FDOK, ID: 1},
		{Kind: FDErr, ID: 2, Code: FDCodeWrongSlotEpoch, Text: "wrong slot epoch"},
		{Kind: FDValue, ID: 3, Exists: true, Value: []byte("payload")},
		{Kind: FDValue, ID: 4, Exists: false, Value: nil},
		{Kind: FDTx, ID: 5, Items: []FrontDoorTxItem{
			{Key: "a", Exists: true, Value: []byte("x")},
			{Key: "b", Exists: false},
		}},
		{Kind: FDText, ID: 6, Text: "stats line"},
	}
	for i := range reqs {
		b := AppendFrontDoorRequest(nil, &reqs[i])
		f.Add(b)
		f.Add(b[:len(b)/2]) // truncated frame
	}
	for i := range resps {
		b := AppendFrontDoorResponse(nil, &resps[i])
		f.Add(b)
		f.Add(b[:len(b)/2])
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for {
			frame, err := ReadFrontDoorFrame(br, nil)
			if err != nil {
				if err != io.EOF && !bytes.Contains([]byte(err.Error()), []byte("front door")) {
					t.Fatalf("unexpected error shape: %v", err)
				}
				return
			}
			if req, err := DecodeFrontDoorRequest(frame); err == nil {
				re := AppendFrontDoorRequest(nil, &req)
				frame2, err := ReadFrontDoorFrame(bufio.NewReader(bytes.NewReader(re)), nil)
				if err != nil {
					t.Fatalf("re-encoded request unreadable: %v (%#v)", err, req)
				}
				req2, err := DecodeFrontDoorRequest(frame2)
				if err != nil {
					t.Fatalf("re-encoded request failed to decode: %v (%#v)", err, req)
				}
				if !reflect.DeepEqual(req, req2) {
					t.Fatalf("re-encode changed the request:\n in: %#v\nout: %#v", req, req2)
				}
			}
			// The same bytes interpreted as a response must also fail cleanly
			// or round-trip.
			if resp, err := DecodeFrontDoorResponse(frame); err == nil {
				re := AppendFrontDoorResponse(nil, &resp)
				frame2, err := ReadFrontDoorFrame(bufio.NewReader(bytes.NewReader(re)), nil)
				if err != nil {
					t.Fatalf("re-encoded response unreadable: %v (%#v)", err, resp)
				}
				resp2, err := DecodeFrontDoorResponse(frame2)
				if err != nil {
					t.Fatalf("re-encoded response failed to decode: %v (%#v)", err, resp)
				}
				if !reflect.DeepEqual(resp, resp2) {
					t.Fatalf("re-encode changed the response:\n in: %#v\nout: %#v", resp, resp2)
				}
			}
		}
	})
}
