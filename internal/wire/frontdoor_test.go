package wire

import (
	"bufio"
	"bytes"
	"io"
	"math/rand/v2"
	"reflect"
	"testing"
)

func genFrontDoorRequest(r *rand.Rand) FrontDoorRequest {
	req := FrontDoorRequest{
		ID:      r.Uint64N(1 << 62),
		Session: r.Uint64N(1 << 20),
	}
	switch r.IntN(6) {
	case 0:
		req.Op = FDPing
	case 1:
		req.Op = FDPut
		req.Key = genString(r)
		req.Value = genBytes(r)
	case 2:
		req.Op = FDGet
		req.Key = genString(r)
	case 3:
		req.Op = FDROTx
		switch r.IntN(3) {
		case 0:
			req.Keys = nil
		case 1:
			req.Keys = []string{}
		default:
			req.Keys = make([]string, 1+r.IntN(6))
			for i := range req.Keys {
				req.Keys[i] = genString(r)
			}
		}
	case 4:
		req.Op = FDStats
	default:
		req.Op = FDAdmin
		req.Line = genString(r) + " " + genString(r)
	}
	return req
}

func genFrontDoorResponse(r *rand.Rand) FrontDoorResponse {
	resp := FrontDoorResponse{ID: r.Uint64N(1 << 62)}
	switch r.IntN(5) {
	case 0:
		resp.Kind = FDOK
	case 1:
		resp.Kind = FDErr
		resp.Code = byte(r.IntN(5))
		resp.Text = genString(r)
	case 2:
		resp.Kind = FDValue
		resp.Exists = r.IntN(2) == 0
		resp.Value = genBytes(r)
	case 3:
		resp.Kind = FDTx
		switch r.IntN(3) {
		case 0:
			resp.Items = nil
		case 1:
			resp.Items = []FrontDoorTxItem{}
		default:
			resp.Items = make([]FrontDoorTxItem, 1+r.IntN(6))
			for i := range resp.Items {
				resp.Items[i] = FrontDoorTxItem{
					Key:    genString(r),
					Exists: r.IntN(2) == 0,
					Value:  genBytes(r),
				}
			}
		}
	default:
		resp.Kind = FDText
		resp.Text = genString(r)
	}
	return resp
}

// TestFrontDoorRequestRoundTrip drives random requests through the frame
// encode/decode pair and requires structural identity — the same property
// the 19-message envelope suite asserts for the replication plane.
func TestFrontDoorRequestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 23))
	var buf []byte
	for i := 0; i < 2000; i++ {
		want := genFrontDoorRequest(r)
		buf = AppendFrontDoorRequest(buf[:0], &want)
		frame, err := ReadFrontDoorFrame(bufio.NewReader(bytes.NewReader(buf)), nil)
		if err != nil {
			t.Fatalf("read frame: %v (req %+v)", err, want)
		}
		got, err := DecodeFrontDoorRequest(frame)
		if err != nil {
			t.Fatalf("decode: %v (req %+v)", err, want)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

// TestFrontDoorResponseRoundTrip is the response-side twin.
func TestFrontDoorResponseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(29, 31))
	var buf []byte
	for i := 0; i < 2000; i++ {
		want := genFrontDoorResponse(r)
		buf = AppendFrontDoorResponse(buf[:0], &want)
		frame, err := ReadFrontDoorFrame(bufio.NewReader(bytes.NewReader(buf)), nil)
		if err != nil {
			t.Fatalf("read frame: %v (resp %+v)", err, want)
		}
		got, err := DecodeFrontDoorResponse(frame)
		if err != nil {
			t.Fatalf("decode: %v (resp %+v)", err, want)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

// TestFrontDoorPipelinedStream appends many frames to one buffer — the
// pipelining primitive — and reads them back through one bufio.Reader,
// asserting order and a clean EOF at the end.
func TestFrontDoorPipelinedStream(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 7))
	var buf []byte
	want := make([]FrontDoorRequest, 100)
	for i := range want {
		want[i] = genFrontDoorRequest(r)
		want[i].ID = uint64(i)
		buf = AppendFrontDoorRequest(buf, &want[i])
	}
	br := bufio.NewReader(bytes.NewReader(buf))
	var scratch []byte
	for i := range want {
		frame, err := ReadFrontDoorFrame(br, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		scratch = frame
		got, err := DecodeFrontDoorRequest(frame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("frame %d mismatch:\n got %+v\nwant %+v", i, got, want[i])
		}
	}
	if _, err := ReadFrontDoorFrame(br, scratch); err != io.EOF {
		t.Fatalf("trailing read = %v, want io.EOF", err)
	}
}

// TestFrontDoorDecodeRejectsCorruption truncates and bit-flips well-formed
// payloads: every corruption must yield an error or a decodable (different)
// value — never a panic — and trailing garbage must be rejected.
func TestFrontDoorDecodeRejectsCorruption(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 13))
	for i := 0; i < 500; i++ {
		req := genFrontDoorRequest(r)
		full := AppendFrontDoorRequest(nil, &req)
		frame, err := ReadFrontDoorFrame(bufio.NewReader(bytes.NewReader(full)), nil)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(frame); cut++ {
			_, _ = DecodeFrontDoorRequest(frame[:cut]) // must not panic
		}
		if _, err := DecodeFrontDoorRequest(append(append([]byte{}, frame...), 0xEE)); err == nil {
			t.Fatal("trailing byte not rejected")
		}
	}
	if _, err := DecodeFrontDoorRequest([]byte{}); err == nil {
		t.Fatal("empty request frame not rejected")
	}
	if _, err := DecodeFrontDoorResponse([]byte{0xFF, 0x01}); err == nil {
		t.Fatal("unknown response kind not rejected")
	}
}
