// Package wire serializes protocol messages for transports that cross a
// real network (internal/tcpnet). Messages are framed as gob-encoded
// envelopes carrying the source node and one protocol message.
package wire

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/item"
	"repro/internal/msg"
	"repro/internal/netemu"
)

// Envelope frames one protocol message on the wire.
type Envelope struct {
	Src netemu.NodeID
	Msg any
}

// registerTypes teaches gob every concrete message type carried in the Msg
// interface field. Called by the Encoder/Decoder constructors; gob.Register
// is idempotent for identical type/name pairs.
func registerTypes() {
	gob.Register(msg.Replicate{})
	gob.Register(msg.Heartbeat{})
	gob.Register(msg.SliceReq{})
	gob.Register(msg.SliceResp{})
	gob.Register(msg.VVExchange{})
	gob.Register(msg.GCExchange{})
	gob.Register(&item.Version{})
}

// Encoder writes envelopes to a stream.
type Encoder struct {
	enc *gob.Encoder
}

// NewEncoder wraps w.
func NewEncoder(w io.Writer) *Encoder {
	registerTypes()
	return &Encoder{enc: gob.NewEncoder(w)}
}

// Encode writes one envelope.
func (e *Encoder) Encode(env Envelope) error {
	if err := e.enc.Encode(env); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	return nil
}

// Decoder reads envelopes from a stream.
type Decoder struct {
	dec *gob.Decoder
}

// NewDecoder wraps r.
func NewDecoder(r io.Reader) *Decoder {
	registerTypes()
	return &Decoder{dec: gob.NewDecoder(r)}
}

// Decode reads one envelope. It returns io.EOF unwrapped so callers can end
// their read loops cleanly.
func (d *Decoder) Decode() (Envelope, error) {
	var env Envelope
	if err := d.dec.Decode(&env); err != nil {
		if err == io.EOF {
			return env, io.EOF
		}
		return env, fmt.Errorf("wire: decode: %w", err)
	}
	return env, nil
}
