// Package wire serializes protocol messages for transports that cross a
// real network (internal/tcpnet). Messages are framed as envelopes carrying
// the source node and one protocol message.
//
// Two codecs are provided:
//
//   - Binary (the default): a hand-rolled, length-prefixed binary format
//     with varint-encoded timestamps and reusable scratch buffers — the
//     zero-allocation encode path of the replication hot loop (see
//     binary.go).
//   - Gob: the original reflection-based encoding/gob stream, kept as a
//     compatibility fallback (selectable via tcpnet.ListenCodec).
//
// Both codecs carry the same envelope and message set; a stream uses one
// codec end to end.
package wire

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/item"
	"repro/internal/msg"
	"repro/internal/netemu"
)

// Envelope frames one protocol message on the wire.
type Envelope struct {
	Src netemu.NodeID
	Msg any
}

// Encoder writes envelopes to a stream.
type Encoder interface {
	Encode(Envelope) error
}

// Decoder reads envelopes from a stream. Decode returns io.EOF unwrapped at
// a clean end of stream so callers can end their read loops.
type Decoder interface {
	Decode() (Envelope, error)
}

// Codec selects a wire format.
type Codec int

// Codecs.
const (
	// Binary is the hand-rolled length-prefixed binary codec (default).
	Binary Codec = iota
	// Gob is the reflection-based encoding/gob codec (compatibility
	// fallback).
	Gob
)

func (c Codec) String() string {
	switch c {
	case Binary:
		return "binary"
	case Gob:
		return "gob"
	default:
		return fmt.Sprintf("Codec(%d)", int(c))
	}
}

// NewEncoder returns an encoder for the codec writing to w.
func (c Codec) NewEncoder(w io.Writer) Encoder {
	if c == Gob {
		return NewGobEncoder(w)
	}
	return NewBinaryEncoder(w)
}

// NewDecoder returns a decoder for the codec reading from r.
func (c Codec) NewDecoder(r io.Reader) Decoder {
	if c == Gob {
		return NewGobDecoder(r)
	}
	return NewBinaryDecoder(r)
}

// NewEncoder returns the default (binary) encoder.
func NewEncoder(w io.Writer) Encoder { return Binary.NewEncoder(w) }

// NewDecoder returns the default (binary) decoder.
func NewDecoder(r io.Reader) Decoder { return Binary.NewDecoder(r) }

// registerTypes teaches gob every concrete message type carried in the Msg
// interface field. Called by the Encoder/Decoder constructors; gob.Register
// is idempotent for identical type/name pairs.
func registerTypes() {
	gob.Register(msg.Replicate{})
	gob.Register(msg.ReplicateBatch{})
	gob.Register(msg.Heartbeat{})
	gob.Register(msg.SliceReq{})
	gob.Register(msg.SliceResp{})
	gob.Register(msg.VVExchange{})
	gob.Register(msg.GCExchange{})
	gob.Register(msg.CatchUpRequest{})
	gob.Register(msg.CatchUpReply{})
	gob.Register(msg.CatchUpAck{})
	gob.Register(msg.JoinRequest{})
	gob.Register(msg.JoinAccept{})
	gob.Register(msg.MembershipUpdate{})
	gob.Register(msg.LeaveNotice{})
	gob.Register(msg.EvictProposal{})
	gob.Register(msg.EvictAck{})
	gob.Register(msg.EvictNotice{})
	gob.Register(msg.SlotMapUpdate{})
	gob.Register(msg.SlotHandoff{})
	gob.Register(&item.Version{})
}

// GobEncoder writes gob-encoded envelopes to a stream.
type GobEncoder struct {
	enc *gob.Encoder
}

// NewGobEncoder wraps w.
func NewGobEncoder(w io.Writer) *GobEncoder {
	registerTypes()
	return &GobEncoder{enc: gob.NewEncoder(w)}
}

// Encode writes one envelope.
func (e *GobEncoder) Encode(env Envelope) error {
	if err := e.enc.Encode(env); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	return nil
}

// GobDecoder reads gob-encoded envelopes from a stream.
type GobDecoder struct {
	dec *gob.Decoder
}

// NewGobDecoder wraps r.
func NewGobDecoder(r io.Reader) *GobDecoder {
	registerTypes()
	return &GobDecoder{dec: gob.NewDecoder(r)}
}

// Decode reads one envelope. It returns io.EOF unwrapped so callers can end
// their read loops cleanly.
func (d *GobDecoder) Decode() (Envelope, error) {
	var env Envelope
	if err := d.dec.Decode(&env); err != nil {
		if err == io.EOF {
			return env, io.EOF
		}
		return env, fmt.Errorf("wire: decode: %w", err)
	}
	return env, nil
}
