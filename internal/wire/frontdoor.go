// The front-door protocol: the framed binary request/response format the
// kvserver serving path speaks to external clients (internal/client's
// connection pool, cmd/pocccli). It reuses the binary codec's framing and
// primitive encodings — every frame is
//
//	uvarint(payload length) || payload
//
// — but carries client operations instead of replication-plane messages.
//
// A request payload is
//
//	byte(op) || uvarint(request id) || uvarint(session id) || fields
//
// and a response payload is
//
//	byte(kind) || uvarint(request id) || fields
//
// The request id ties a response back to its request: many requests may be
// in flight on one connection, and the server completes them out of order
// (a causally-blocked GET never stalls requests of other sessions behind
// it), so responses carry no positional meaning. The session id multiplexes
// many client sessions onto one connection: requests of one session execute
// in FIFO order (a session is a single thread of execution in the causality
// order), requests of different sessions execute independently.
//
// A binary connection is negotiated by its first byte: a client opens with
// FrontDoorMagic (0xB1, never the first byte of a text-protocol line), and
// everything after it is frames. Connections that open with anything else
// speak the legacy line-text protocol.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// FrontDoorMagic is the first byte of a binary front-door connection. Text
// protocol lines start with printable ASCII, so the byte unambiguously
// selects the protocol.
const FrontDoorMagic = 0xB1

// MaxFrontDoorFrame bounds a front-door frame so a corrupted length prefix
// cannot ask either side to allocate gigabytes. 16 MiB comfortably fits the
// largest legal request (a PUT value) and response (a wide RO-TX).
const MaxFrontDoorFrame = 1 << 24

// Front-door request ops.
const (
	// FDPing checks liveness; the reply is FDOK.
	FDPing byte = iota + 1
	// FDPut writes Key=Value on the request's session; the reply is FDOK.
	FDPut
	// FDGet reads Key; the reply is FDValue.
	FDGet
	// FDROTx reads Keys atomically from a causal snapshot; the reply is FDTx.
	FDROTx
	// FDStats returns the server's stats line; the reply is FDText.
	FDStats
	// FDAdmin runs one admin command line (WHEREIS/SPLIT/MOVESLOTS/SLOTS/
	// JOIN/LEAVE/EVICT/STATS) and returns its text-protocol output verbatim
	// as FDText — possibly multi-line (SLOTS).
	FDAdmin
)

// Front-door response kinds.
const (
	// FDOK acknowledges a request with no payload (PUT, PING).
	FDOK byte = iota + 1
	// FDErr reports a failure: a machine-readable code plus the error text.
	FDErr
	// FDValue answers a GET: an exists flag and the value bytes.
	FDValue
	// FDTx answers an RO-TX: one item per requested key, in request order.
	FDTx
	// FDText carries a text payload (STATS line, admin command output).
	FDText
)

// Machine-readable error codes on FDErr responses. Clients use them to
// re-map wire errors onto the canonical error values (errors.Is works again
// on the far side of the connection) and to drive retry policy without
// string matching.
const (
	// FDCodeGeneric is any error without a dedicated code.
	FDCodeGeneric byte = iota
	// FDCodeWrongSlotEpoch: the key's slot moved mid-reshard and the
	// server-side retry budget expired. Retryable — the client pool keeps
	// retrying within its own SlotRetryBudget.
	FDCodeWrongSlotEpoch
	// FDCodeSessionClosed: the server closed the session (HA-POCC suspected
	// a network partition). The client must re-initialize its session state.
	FDCodeSessionClosed
	// FDCodeStopped: the operation raced a stopping or restarting server.
	// Transient — retry once the server is back.
	FDCodeStopped
	// FDCodeNoDataCenter: the session's data center left the deployment.
	// Permanent — open a session against a surviving DC.
	FDCodeNoDataCenter
)

// FrontDoorRequest is one decoded request frame. Op selects which fields
// are meaningful: Key+Value for FDPut, Key for FDGet, Keys for FDROTx, Line
// for FDAdmin.
type FrontDoorRequest struct {
	Op      byte
	ID      uint64 // request id, echoed on the response
	Session uint64 // session id, multiplexing key on the connection
	Key     string
	Value   []byte
	Keys    []string
	Line    string
}

// FrontDoorTxItem is one RO-TX result item.
type FrontDoorTxItem struct {
	Key    string
	Exists bool
	Value  []byte
}

// FrontDoorResponse is one decoded response frame. Kind selects which
// fields are meaningful: Code+Text for FDErr, Exists+Value for FDValue,
// Items for FDTx, Text for FDText.
type FrontDoorResponse struct {
	Kind   byte
	ID     uint64 // the request this answers
	Code   byte   // FDErr: machine-readable error code
	Exists bool   // FDValue: false means the key has no visible version
	Value  []byte
	Items  []FrontDoorTxItem
	Text   string // FDText payload or FDErr message
}

// AppendFrontDoorRequest appends one complete request frame (length prefix
// included) to dst and returns the extended slice. Appending to a reused
// buffer makes the steady-state encode path allocation-free, and many
// frames appended to one buffer reach the socket in a single write — the
// client-side pipelining primitive.
func AppendFrontDoorRequest(dst []byte, r *FrontDoorRequest) []byte {
	base := len(dst)
	// Reserve a maximal length prefix, encode the payload after it, then
	// fix the prefix up. 4 bytes of uvarint cover frames up to 256 MiB.
	dst = append(dst, 0, 0, 0, 0)
	dst = append(dst, r.Op)
	dst = appendUint(dst, r.ID)
	dst = appendUint(dst, r.Session)
	switch r.Op {
	case FDPut:
		dst = appendString(dst, r.Key)
		dst = appendBytes(dst, r.Value)
	case FDGet:
		dst = appendString(dst, r.Key)
	case FDROTx:
		if r.Keys == nil {
			dst = appendUint(dst, 0)
		} else {
			dst = appendUint(dst, uint64(len(r.Keys))+1)
			for _, k := range r.Keys {
				dst = appendString(dst, k)
			}
		}
	case FDAdmin:
		dst = appendString(dst, r.Line)
	}
	return fixupFramePrefix(dst, base)
}

// AppendFrontDoorResponse appends one complete response frame (length
// prefix included) to dst — the server-side twin of AppendFrontDoorRequest.
func AppendFrontDoorResponse(dst []byte, r *FrontDoorResponse) []byte {
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = append(dst, r.Kind)
	dst = appendUint(dst, r.ID)
	switch r.Kind {
	case FDErr:
		dst = append(dst, r.Code)
		dst = appendString(dst, r.Text)
	case FDValue:
		dst = appendBool(dst, r.Exists)
		dst = appendBytes(dst, r.Value)
	case FDTx:
		if r.Items == nil {
			dst = appendUint(dst, 0)
		} else {
			dst = appendUint(dst, uint64(len(r.Items))+1)
			for i := range r.Items {
				dst = appendString(dst, r.Items[i].Key)
				dst = appendBool(dst, r.Items[i].Exists)
				dst = appendBytes(dst, r.Items[i].Value)
			}
		}
	case FDText:
		dst = appendString(dst, r.Text)
	}
	return fixupFramePrefix(dst, base)
}

// fixupFramePrefix rewrites the 4-byte length reservation at base with the
// real uvarint length of the payload that follows it, shifting the payload
// down when the prefix is shorter than the reservation.
func fixupFramePrefix(dst []byte, base int) []byte {
	payLen := len(dst) - base - 4
	var pfx [4]byte
	n := binary.PutUvarint(pfx[:], uint64(payLen))
	copy(dst[base:], pfx[:n])
	if n < 4 {
		copy(dst[base+n:], dst[base+4:])
		dst = dst[:base+n+payLen]
	}
	return dst
}

// ReadFrontDoorFrame reads one length-prefixed frame payload, reusing buf
// when it is large enough. It returns io.EOF unwrapped at a clean stream
// end so read loops can terminate.
func ReadFrontDoorFrame(r *bufio.Reader, buf []byte) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: front door: %w", err)
	}
	if n > MaxFrontDoorFrame {
		return nil, fmt.Errorf("wire: front door: frame of %d bytes exceeds limit", n)
	}
	if uint64(cap(buf)) < n {
		buf = make([]byte, n)
	}
	frame := buf[:n]
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, fmt.Errorf("wire: front door: truncated frame: %w", err)
	}
	return frame, nil
}

// DecodeFrontDoorRequest parses one request payload (the frame body, length
// prefix already stripped). Corrupted input yields an error, never a panic.
func DecodeFrontDoorRequest(frame []byte) (FrontDoorRequest, error) {
	var r FrontDoorRequest
	f := &frameReader{b: frame}
	r.Op = f.byteVal()
	r.ID = f.uint()
	r.Session = f.uint()
	switch r.Op {
	case FDPing, FDStats:
	case FDPut:
		r.Key = f.string()
		r.Value = f.bytes()
	case FDGet:
		r.Key = f.string()
	case FDROTx:
		if marker := f.uint(); marker > 0 && f.err == nil {
			n := marker - 1
			if uint64(len(f.b)-f.pos) < n {
				f.fail()
			} else {
				r.Keys = make([]string, 0, n)
				for i := uint64(0); i < n && f.err == nil; i++ {
					r.Keys = append(r.Keys, f.string())
				}
			}
		}
	case FDAdmin:
		r.Line = f.string()
	default:
		if f.err == nil {
			return r, fmt.Errorf("wire: front door: unknown request op %d", r.Op)
		}
	}
	return r, f.finish()
}

// DecodeFrontDoorResponse parses one response payload.
func DecodeFrontDoorResponse(frame []byte) (FrontDoorResponse, error) {
	var r FrontDoorResponse
	f := &frameReader{b: frame}
	r.Kind = f.byteVal()
	r.ID = f.uint()
	switch r.Kind {
	case FDOK:
	case FDErr:
		r.Code = f.byteVal()
		r.Text = f.string()
	case FDValue:
		r.Exists = f.bool()
		r.Value = f.bytes()
	case FDTx:
		if marker := f.uint(); marker > 0 && f.err == nil {
			n := marker - 1
			// Each item takes at least three bytes; reject absurd counts
			// before allocating.
			if uint64(len(f.b)-f.pos) < n {
				f.fail()
			} else {
				r.Items = make([]FrontDoorTxItem, 0, n)
				for i := uint64(0); i < n && f.err == nil; i++ {
					r.Items = append(r.Items, FrontDoorTxItem{
						Key:    f.string(),
						Exists: f.bool(),
						Value:  f.bytes(),
					})
				}
			}
		}
	case FDText:
		r.Text = f.string()
	default:
		if f.err == nil {
			return r, fmt.Errorf("wire: front door: unknown response kind %d", r.Kind)
		}
	}
	return r, f.finish()
}

// finish returns the first recorded error, or a trailing-bytes error when
// the frame was not fully consumed — a strict decode, mirroring
// parsePayload.
func (f *frameReader) finish() error {
	if f.err != nil {
		return f.err
	}
	if f.pos != len(f.b) {
		return fmt.Errorf("wire: %d trailing bytes in frame", len(f.b)-f.pos)
	}
	return nil
}
