// The binary codec: a hand-rolled, length-prefixed wire format for the
// protocol message set. Each envelope is framed as
//
//	uvarint(payload length) || payload
//
// and the payload is
//
//	byte(message tag) || uvarint(src.DC) || uvarint(src.Partition) || fields
//
// Integers (timestamps, replica ids, counters) are unsigned varints — the
// protocol only carries non-negative values. Variable-length fields
// (strings, byte slices, vectors, version lists) carry a length marker that
// distinguishes nil from empty (0 = nil, n+1 = n elements), so a decoded
// message is structurally identical to the encoded one.
//
// The encoder reuses two scratch buffers across calls, so a steady-state
// Encode performs zero allocations and exactly one Write (one frame). The
// decoder reuses its frame buffer; only the decoded values themselves
// (strings, payloads, vectors) are allocated.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/item"
	"repro/internal/keyspace"
	"repro/internal/msg"
	"repro/internal/vclock"
)

// Message tags.
const (
	tagReplicate = iota + 1
	tagReplicateBatch
	tagHeartbeat
	tagSliceReq
	tagSliceResp
	tagVVExchange
	tagGCExchange
	tagCatchUpRequest
	tagCatchUpReply
	tagCatchUpAck
	tagJoinRequest
	tagJoinAccept
	tagMembershipUpdate
	tagLeaveNotice
	tagEvictProposal
	tagEvictAck
	tagEvictNotice
	tagSlotMapUpdate
	tagSlotHandoff
)

// maxFrame bounds a frame's payload so a corrupted length prefix cannot ask
// the decoder to allocate gigabytes.
const maxFrame = 1 << 28

// BinaryEncoder writes binary-encoded envelopes to a stream.
type BinaryEncoder struct {
	w   io.Writer
	pay []byte // payload scratch, reused across Encode calls
	out []byte // frame scratch (length prefix + payload)
}

// NewBinaryEncoder wraps w.
func NewBinaryEncoder(w io.Writer) *BinaryEncoder {
	return &BinaryEncoder{w: w}
}

// Encode writes one envelope as a single frame (one Write call).
func (e *BinaryEncoder) Encode(env Envelope) error {
	pay, err := appendPayload(e.pay[:0], env)
	if err != nil {
		return err
	}
	e.pay = pay
	e.out = binary.AppendUvarint(e.out[:0], uint64(len(pay)))
	e.out = append(e.out, pay...)
	if _, err := e.w.Write(e.out); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	return nil
}

// BinaryDecoder reads binary-encoded envelopes from a stream.
type BinaryDecoder struct {
	r   *bufio.Reader
	buf []byte // frame buffer, reused across Decode calls
}

// NewBinaryDecoder wraps r.
func NewBinaryDecoder(r io.Reader) *BinaryDecoder {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &BinaryDecoder{r: br}
}

// Decode reads one envelope. It returns io.EOF unwrapped at a clean stream
// end so callers can end their read loops.
func (d *BinaryDecoder) Decode() (Envelope, error) {
	var env Envelope
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		if err == io.EOF {
			return env, io.EOF
		}
		return env, fmt.Errorf("wire: decode: %w", err)
	}
	if n > maxFrame {
		return env, fmt.Errorf("wire: decode: frame of %d bytes exceeds limit", n)
	}
	if uint64(cap(d.buf)) < n {
		d.buf = make([]byte, n)
	}
	frame := d.buf[:n]
	if _, err := io.ReadFull(d.r, frame); err != nil {
		return env, fmt.Errorf("wire: decode: truncated frame: %w", err)
	}
	env, err = parsePayload(frame)
	if err != nil {
		return env, fmt.Errorf("wire: decode: %w", err)
	}
	return env, nil
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

func appendPayload(b []byte, env Envelope) ([]byte, error) {
	var tag byte
	switch env.Msg.(type) {
	case msg.Replicate:
		tag = tagReplicate
	case msg.ReplicateBatch:
		tag = tagReplicateBatch
	case msg.Heartbeat:
		tag = tagHeartbeat
	case msg.SliceReq:
		tag = tagSliceReq
	case msg.SliceResp:
		tag = tagSliceResp
	case msg.VVExchange:
		tag = tagVVExchange
	case msg.GCExchange:
		tag = tagGCExchange
	case msg.CatchUpRequest:
		tag = tagCatchUpRequest
	case msg.CatchUpReply:
		tag = tagCatchUpReply
	case msg.CatchUpAck:
		tag = tagCatchUpAck
	case msg.JoinRequest:
		tag = tagJoinRequest
	case msg.JoinAccept:
		tag = tagJoinAccept
	case msg.MembershipUpdate:
		tag = tagMembershipUpdate
	case msg.LeaveNotice:
		tag = tagLeaveNotice
	case msg.EvictProposal:
		tag = tagEvictProposal
	case msg.EvictAck:
		tag = tagEvictAck
	case msg.EvictNotice:
		tag = tagEvictNotice
	case msg.SlotMapUpdate:
		tag = tagSlotMapUpdate
	case msg.SlotHandoff:
		tag = tagSlotHandoff
	default:
		return b, fmt.Errorf("wire: encode: unsupported message type %T", env.Msg)
	}
	b = append(b, tag)
	b = appendUint(b, uint64(env.Src.DC))
	b = appendUint(b, uint64(env.Src.Partition))
	switch m := env.Msg.(type) {
	case msg.Replicate:
		b = appendVersion(b, m.V)
	case msg.ReplicateBatch:
		// HBTime leads the payload: it is the delta base for the version
		// timestamps that follow. A format byte picks between the compact
		// zigzag-delta layout (the default — HLC timestamps inside one
		// batch cluster tightly around HBTime) and the absolute pre-HLC
		// layout, kept for the one delta value the dep encoding cannot
		// represent (see canDeltaBatch).
		b = appendUint(b, uint64(m.HBTime))
		if canDeltaBatch(m) {
			b = append(b, batchDelta)
			base := uint64(m.HBTime)
			if m.Versions == nil {
				b = appendUint(b, 0)
			} else {
				b = appendUint(b, uint64(len(m.Versions))+1)
				for _, v := range m.Versions {
					b = appendVersionDelta(b, v, base)
				}
			}
		} else {
			b = append(b, batchAbsolute)
			if m.Versions == nil {
				b = appendUint(b, 0)
			} else {
				b = appendUint(b, uint64(len(m.Versions))+1)
				for _, v := range m.Versions {
					b = appendVersion(b, v)
				}
			}
		}
		b = appendUint(b, m.Epoch)
		b = appendUint(b, m.Seq)
		b = appendUint(b, uint64(m.Floor))
		b = appendUint(b, m.SlotEpoch)
	case msg.Heartbeat:
		b = appendUint(b, uint64(m.Time))
		b = appendUint(b, m.Epoch)
		b = appendUint(b, m.Seq)
		b = appendUint(b, uint64(m.Floor))
	case msg.SliceReq:
		b = appendUint(b, m.TxID)
		b = appendUint(b, uint64(m.Coordinator.DC))
		b = appendUint(b, uint64(m.Coordinator.Partition))
		if m.Keys == nil {
			b = appendUint(b, 0)
		} else {
			b = appendUint(b, uint64(len(m.Keys))+1)
			for _, k := range m.Keys {
				b = appendString(b, k)
			}
		}
		b = appendVC(b, m.TV)
		b = appendBool(b, m.Pessimistic)
	case msg.SliceResp:
		b = appendUint(b, m.TxID)
		if m.Items == nil {
			b = appendUint(b, 0)
		} else {
			b = appendUint(b, uint64(len(m.Items))+1)
			for i := range m.Items {
				b = appendItemReply(b, &m.Items[i])
			}
		}
		b = appendString(b, m.Err)
	case msg.VVExchange:
		b = appendUint(b, uint64(m.Partition))
		b = appendVC(b, m.VV)
		b = appendUint(b, uint64(m.Watermark))
	case msg.GCExchange:
		b = appendUint(b, uint64(m.Partition))
		b = appendVC(b, m.TV)
	case msg.CatchUpRequest:
		b = appendUint(b, m.ReqID)
		b = appendUint(b, uint64(m.From))
		b = appendVC(b, m.Have)
	case msg.CatchUpReply:
		b = appendUint(b, m.ReqID)
		b = appendUint(b, m.Chunk)
		if m.Versions == nil {
			b = appendUint(b, 0)
		} else {
			b = appendUint(b, uint64(len(m.Versions))+1)
			for _, v := range m.Versions {
				b = appendVersion(b, v)
			}
		}
		b = appendBool(b, m.Done)
		b = appendBool(b, m.Unsupported)
		b = appendUint(b, m.ResumeEpoch)
		b = appendUint(b, m.ResumeSeq)
		b = appendUint(b, uint64(m.Through))
		b = appendBool(b, m.FullResync)
		if m.Departed == nil {
			b = appendUint(b, 0)
		} else {
			b = appendUint(b, uint64(len(m.Departed))+1)
			for _, c := range m.Departed {
				b = appendUint(b, uint64(c.DC))
				b = appendUint(b, uint64(c.Through))
			}
		}
		b = appendUint(b, m.SlotEpoch)
		b = appendVC(b, m.Progress)
	case msg.CatchUpAck:
		b = appendUint(b, m.ReqID)
		b = appendUint(b, m.Chunk)
	case msg.JoinRequest:
		b = appendUint(b, uint64(m.DC))
		b = appendMembership(b, m.View)
	case msg.JoinAccept:
		b = appendMembership(b, m.View)
		b = appendUint(b, uint64(m.Through))
	case msg.MembershipUpdate:
		b = appendMembership(b, m.View)
	case msg.LeaveNotice:
		b = appendUint(b, uint64(m.DC))
		b = appendUint(b, uint64(m.Final))
		b = appendMembership(b, m.View)
	case msg.EvictProposal:
		b = appendUint(b, uint64(m.DC))
		b = appendUint(b, m.ReqID)
		b = appendMembership(b, m.View)
	case msg.EvictAck:
		b = appendUint(b, uint64(m.DC))
		b = appendUint(b, m.ReqID)
		b = appendUint(b, uint64(m.Entry))
	case msg.EvictNotice:
		b = appendUint(b, uint64(m.DC))
		b = appendUint(b, uint64(m.Final))
		b = appendMembership(b, m.View)
	case msg.SlotMapUpdate:
		b = appendSlotMap(b, m.Map)
	case msg.SlotHandoff:
		if m.Versions == nil {
			b = appendUint(b, 0)
		} else {
			b = appendUint(b, uint64(len(m.Versions))+1)
			for _, v := range m.Versions {
				b = appendVersion(b, v)
			}
		}
	}
	return b, nil
}

// appendSlotMap encodes an epoch-stamped slot table: presence byte, epoch,
// partition count, the 256 owner bytes raw, then the 256 per-slot stamps as
// varints (almost all zero in steady state, so one byte each).
func appendSlotMap(b []byte, m *keyspace.SlotMap) []byte {
	if m == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendUint(b, m.Epoch)
	b = appendUint(b, uint64(m.Parts))
	b = append(b, m.Owner[:]...)
	for s := 0; s < keyspace.NumSlots; s++ {
		b = appendUint(b, m.Stamp[s])
	}
	return b
}

func appendUint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendString(b []byte, s string) []byte {
	b = appendUint(b, uint64(len(s)))
	return append(b, s...)
}

// appendBytes encodes a byte slice with a nil-preserving length marker.
func appendBytes(b, p []byte) []byte {
	if p == nil {
		return appendUint(b, 0)
	}
	b = appendUint(b, uint64(len(p))+1)
	return append(b, p...)
}

// appendVC encodes a vector clock with a nil-preserving length marker and
// varint entries (small timestamps — the common case after the per-process
// epoch anchoring — take few bytes).
func appendVC(b []byte, v vclock.VC) []byte {
	if v == nil {
		return appendUint(b, 0)
	}
	b = appendUint(b, uint64(len(v))+1)
	for _, t := range v {
		b = appendUint(b, uint64(t))
	}
	return b
}

func appendVersion(b []byte, v *item.Version) []byte {
	if v == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendString(b, v.Key)
	b = appendBytes(b, v.Value)
	b = appendUint(b, uint64(v.SrcReplica))
	b = appendUint(b, uint64(v.UpdateTime))
	b = appendVC(b, v.Deps)
	b = appendBool(b, v.Optimistic)
	return b
}

// ReplicateBatch payload formats: version records carry either absolute
// timestamps (the pre-HLC layout) or varint zigzag deltas against the batch
// HBTime.
const (
	batchAbsolute = 0
	batchDelta    = 1
)

// zigzag maps a wrapped (two's-complement) timestamp delta to a varint-
// friendly unsigned value: small magnitudes of either sign take few bytes.
// It is a bijection on all 64-bit values; unzigzag inverts it.
func zigzag(d uint64) uint64   { return (d << 1) ^ uint64(int64(d)>>63) }
func unzigzag(z uint64) uint64 { return (z >> 1) ^ -(z & 1) }

// canDeltaBatch reports whether the batch is representable in the delta
// format. The only gap: a nonzero dependency entry encodes as
// zigzag(entry-base)+1 so that zero entries keep their one-byte marker, and
// the +1 wraps onto the marker for the single delta value 1<<63. The encoder
// falls back to the absolute layout for such a batch; the decoder accepts
// both.
func canDeltaBatch(m msg.ReplicateBatch) bool {
	base := uint64(m.HBTime)
	for _, v := range m.Versions {
		if v == nil {
			continue
		}
		for _, t := range v.Deps {
			if t != 0 && uint64(t)-base == 1<<63 {
				return false
			}
		}
	}
	return true
}

// appendVersionDelta encodes a version record with UpdateTime and dependency
// entries as zigzag deltas against base (the batch HBTime). With hybrid
// clocks the timestamps in one flush window sit within microseconds of the
// base, so the 8-9 byte absolute varints collapse to 1-2 bytes each.
func appendVersionDelta(b []byte, v *item.Version, base uint64) []byte {
	if v == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendString(b, v.Key)
	b = appendBytes(b, v.Value)
	b = appendUint(b, uint64(v.SrcReplica))
	b = appendUint(b, zigzag(uint64(v.UpdateTime)-base))
	if v.Deps == nil {
		b = appendUint(b, 0)
	} else {
		b = appendUint(b, uint64(len(v.Deps))+1)
		for _, t := range v.Deps {
			if t == 0 {
				b = appendUint(b, 0)
			} else {
				b = appendUint(b, zigzag(uint64(t)-base)+1)
			}
		}
	}
	b = appendBool(b, v.Optimistic)
	return b
}

// AppendVersion appends the codec's encoding of a version record to b — the
// same bytes a Replicate payload carries on the wire. The write-ahead log
// (internal/wal) reuses it for its durable version records, so a WAL record
// and a replication message agree byte for byte.
func AppendVersion(b []byte, v *item.Version) []byte { return appendVersion(b, v) }

// VersionTag extracts just (SrcReplica, UpdateTime) from an encoded version
// record without decoding — or allocating — the rest. The write-ahead log
// uses it to tag records for its per-segment range index on the append path,
// so it must stay a few header reads, not a full decode. ok=false means the
// bytes are not a well-formed version record prefix.
func VersionTag(rec []byte) (src int, ts uint64, ok bool) {
	if len(rec) < 1 || rec[0] != 1 {
		return 0, 0, false
	}
	b := rec[1:]
	for i := 0; i < 2; i++ { // key string, then value bytes: skip both
		n, un := binary.Uvarint(b)
		if un <= 0 {
			return 0, 0, false
		}
		b = b[un:]
		if i == 1 { // value length carries a +1 nil marker
			if n == 0 {
				continue
			}
			n--
		}
		if uint64(len(b)) < n {
			return 0, 0, false
		}
		b = b[n:]
	}
	s, un := binary.Uvarint(b)
	if un <= 0 {
		return 0, 0, false
	}
	b = b[un:]
	t, un := binary.Uvarint(b)
	if un <= 0 {
		return 0, 0, false
	}
	return int(s), t, true
}

// DecodeVersion parses one version record from the front of b, returning the
// version and the number of bytes consumed. Corrupted or truncated input
// yields an error, never a panic, and a nil-version marker is rejected (logs
// only store real versions).
func DecodeVersion(b []byte) (*item.Version, int, error) {
	f := &frameReader{b: b}
	v := f.version()
	if f.err != nil {
		return nil, 0, f.err
	}
	if v == nil {
		return nil, 0, fmt.Errorf("wire: nil version record")
	}
	return v, f.pos, nil
}

// appendMembership encodes an epoch-stamped membership view: the epoch, the
// status bytes, then the departed-final vector — both with nil-preserving
// length markers.
func appendMembership(b []byte, m msg.Membership) []byte {
	b = appendUint(b, m.Epoch)
	b = appendBytes(b, m.Status)
	return appendVC(b, m.Final)
}

func appendItemReply(b []byte, r *msg.ItemReply) []byte {
	b = appendString(b, r.Key)
	b = appendBool(b, r.Exists)
	b = appendBytes(b, r.Value)
	b = appendUint(b, uint64(r.SrcReplica))
	b = appendUint(b, uint64(r.UpdateTime))
	b = appendVC(b, r.Deps)
	b = appendUint(b, uint64(r.Fresher))
	b = appendUint(b, uint64(r.Invisible))
	return b
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

var errShortFrame = fmt.Errorf("wire: short frame")

// versionArena amortizes the per-version allocations of a batch decode:
// Version structs, dependency-vector entries and value bytes are carved out
// of chunked slabs, so an n-version ReplicateBatch or CatchUpReply costs
// O(n/chunk) allocations instead of ~4n. A full chunk is retired and a fresh
// one allocated — never grown in place — so pointers handed out stay valid
// for the life of the decoded versions. The trade-off is retention: one
// long-lived version keeps its chunk's neighbors reachable, which is fine
// for replication batches (versions enter the store together and are pruned
// by the same GC vector) but wrong for messages whose versions have
// independent lifetimes — only the batch decode paths install an arena.
type versionArena struct {
	vers []item.Version
	deps []vclock.Timestamp
	blob []byte
}

const (
	arenaVersionChunk = 64
	arenaDepsChunk    = 512
	arenaBlobChunk    = 16 << 10
)

func (a *versionArena) newVersion() *item.Version {
	if len(a.vers) == cap(a.vers) {
		a.vers = make([]item.Version, 0, arenaVersionChunk)
	}
	a.vers = a.vers[:len(a.vers)+1]
	return &a.vers[len(a.vers)-1]
}

// ts returns an n-entry timestamp slice from the deps slab (oversize vectors
// fall through to a direct allocation).
func (a *versionArena) ts(n int) []vclock.Timestamp {
	if n > arenaDepsChunk/4 {
		return make([]vclock.Timestamp, n)
	}
	if a.deps == nil || cap(a.deps)-len(a.deps) < n {
		a.deps = make([]vclock.Timestamp, 0, arenaDepsChunk)
	}
	s := a.deps[len(a.deps) : len(a.deps)+n : len(a.deps)+n]
	a.deps = a.deps[:len(a.deps)+n]
	return s
}

// bytes returns an n-byte slice from the blob slab (oversize values fall
// through to a direct allocation).
func (a *versionArena) bytes(n int) []byte {
	if n > arenaBlobChunk/2 {
		return make([]byte, n)
	}
	if a.blob == nil || cap(a.blob)-len(a.blob) < n {
		a.blob = make([]byte, 0, arenaBlobChunk)
	}
	s := a.blob[len(a.blob) : len(a.blob)+n : len(a.blob)+n]
	a.blob = a.blob[:len(a.blob)+n]
	return s
}

// frameReader walks one decoded frame. Methods record the first error; the
// caller checks err once at the end. When arena is set, decoded versions
// (structs, deps, values) are carved out of it instead of allocated
// individually.
type frameReader struct {
	b     []byte
	pos   int
	err   error
	arena *versionArena
}

func (f *frameReader) fail() {
	if f.err == nil {
		f.err = errShortFrame
	}
}

func (f *frameReader) byteVal() byte {
	if f.err != nil || f.pos >= len(f.b) {
		f.fail()
		return 0
	}
	v := f.b[f.pos]
	f.pos++
	return v
}

func (f *frameReader) uint() uint64 {
	if f.err != nil {
		return 0
	}
	v, n := binary.Uvarint(f.b[f.pos:])
	if n <= 0 {
		f.fail()
		return 0
	}
	f.pos += n
	return v
}

func (f *frameReader) bool() bool { return f.byteVal() != 0 }

func (f *frameReader) take(n uint64) []byte {
	if f.err != nil {
		return nil
	}
	if uint64(len(f.b)-f.pos) < n {
		f.fail()
		return nil
	}
	out := f.b[f.pos : f.pos+int(n)]
	f.pos += int(n)
	return out
}

func (f *frameReader) string() string {
	n := f.uint()
	return string(f.take(n))
}

func (f *frameReader) bytes() []byte {
	marker := f.uint()
	if marker == 0 || f.err != nil {
		return nil
	}
	raw := f.take(marker - 1)
	if f.err != nil {
		return nil
	}
	var out []byte
	if f.arena != nil {
		out = f.arena.bytes(len(raw))
	} else {
		out = make([]byte, len(raw))
	}
	copy(out, raw)
	return out
}

func (f *frameReader) vc() vclock.VC {
	marker := f.uint()
	if marker == 0 || f.err != nil {
		return nil
	}
	n := marker - 1
	// Each entry takes at least one byte; reject absurd counts before
	// allocating.
	if uint64(len(f.b)-f.pos) < n {
		f.fail()
		return nil
	}
	var out vclock.VC
	if f.arena != nil {
		out = vclock.VC(f.arena.ts(int(n)))
	} else {
		out = make(vclock.VC, n)
	}
	for i := range out {
		out[i] = vclock.Timestamp(f.uint())
	}
	return out
}

func (f *frameReader) version() *item.Version {
	if f.byteVal() == 0 {
		return nil
	}
	var v *item.Version
	if f.arena != nil {
		v = f.arena.newVersion()
	} else {
		v = &item.Version{}
	}
	v.Key = f.string()
	v.Value = f.bytes()
	v.SrcReplica = int(f.uint())
	v.UpdateTime = vclock.Timestamp(f.uint())
	v.Deps = f.vc()
	v.Optimistic = f.bool()
	if f.err != nil {
		return nil
	}
	return v
}

// versionDelta decodes a version record in the delta format: UpdateTime and
// nonzero dependency entries are zigzag deltas against base (wraparound
// arithmetic, the exact inverse of appendVersionDelta).
func (f *frameReader) versionDelta(base uint64) *item.Version {
	if f.byteVal() == 0 {
		return nil
	}
	var v *item.Version
	if f.arena != nil {
		v = f.arena.newVersion()
	} else {
		v = &item.Version{}
	}
	v.Key = f.string()
	v.Value = f.bytes()
	v.SrcReplica = int(f.uint())
	v.UpdateTime = vclock.Timestamp(base + unzigzag(f.uint()))
	v.Deps = f.vcDelta(base)
	v.Optimistic = f.bool()
	if f.err != nil {
		return nil
	}
	return v
}

func (f *frameReader) vcDelta(base uint64) vclock.VC {
	marker := f.uint()
	if marker == 0 || f.err != nil {
		return nil
	}
	n := marker - 1
	// Each entry takes at least one byte; reject absurd counts before
	// allocating.
	if uint64(len(f.b)-f.pos) < n {
		f.fail()
		return nil
	}
	var out vclock.VC
	if f.arena != nil {
		out = vclock.VC(f.arena.ts(int(n)))
	} else {
		out = make(vclock.VC, n)
	}
	for i := range out {
		if z := f.uint(); z != 0 {
			out[i] = vclock.Timestamp(base + unzigzag(z-1))
		} else {
			out[i] = 0
		}
	}
	return out
}

func (f *frameReader) membership() msg.Membership {
	return msg.Membership{Epoch: f.uint(), Status: f.bytes(), Final: f.vc()}
}

// slotMap decodes an epoch-stamped slot table and validates its structural
// invariants (owners in range, stamps below the epoch) so a corrupted frame
// cannot install a table that routes keys to nonexistent partitions.
func (f *frameReader) slotMap() *keyspace.SlotMap {
	if f.byteVal() == 0 {
		return nil
	}
	m := &keyspace.SlotMap{}
	m.Epoch = f.uint()
	m.Parts = int(f.uint())
	owners := f.take(keyspace.NumSlots)
	if f.err != nil {
		return nil
	}
	copy(m.Owner[:], owners)
	for s := 0; s < keyspace.NumSlots; s++ {
		m.Stamp[s] = f.uint()
	}
	if f.err != nil {
		return nil
	}
	if err := m.Validate(); err != nil {
		f.err = err
		return nil
	}
	return m
}

func (f *frameReader) itemReply() msg.ItemReply {
	var r msg.ItemReply
	r.Key = f.string()
	r.Exists = f.bool()
	r.Value = f.bytes()
	r.SrcReplica = int(f.uint())
	r.UpdateTime = vclock.Timestamp(f.uint())
	r.Deps = f.vc()
	r.Fresher = int(f.uint())
	r.Invisible = int(f.uint())
	return r
}

func parsePayload(frame []byte) (Envelope, error) {
	var env Envelope
	f := &frameReader{b: frame}
	tag := f.byteVal()
	env.Src.DC = int(f.uint())
	env.Src.Partition = int(f.uint())
	switch tag {
	case tagReplicate:
		env.Msg = msg.Replicate{V: f.version()}
	case tagReplicateBatch:
		var m msg.ReplicateBatch
		m.HBTime = vclock.Timestamp(f.uint())
		format := f.byteVal()
		if format > batchDelta {
			f.fail()
		}
		if marker := f.uint(); marker > 0 && f.err == nil {
			n := marker - 1
			if uint64(len(f.b)-f.pos) < n {
				f.fail()
			} else {
				f.arena = &versionArena{}
				m.Versions = make([]*item.Version, 0, n)
				for i := uint64(0); i < n && f.err == nil; i++ {
					if format == batchDelta {
						m.Versions = append(m.Versions, f.versionDelta(uint64(m.HBTime)))
					} else {
						m.Versions = append(m.Versions, f.version())
					}
				}
			}
		}
		m.Epoch = f.uint()
		m.Seq = f.uint()
		m.Floor = vclock.Timestamp(f.uint())
		m.SlotEpoch = f.uint()
		env.Msg = m
	case tagHeartbeat:
		env.Msg = msg.Heartbeat{Time: vclock.Timestamp(f.uint()), Epoch: f.uint(),
			Seq: f.uint(), Floor: vclock.Timestamp(f.uint())}
	case tagSliceReq:
		var m msg.SliceReq
		m.TxID = f.uint()
		m.Coordinator.DC = int(f.uint())
		m.Coordinator.Partition = int(f.uint())
		if marker := f.uint(); marker > 0 && f.err == nil {
			n := marker - 1
			if uint64(len(f.b)-f.pos) < n {
				f.fail()
			} else {
				m.Keys = make([]string, 0, n)
				for i := uint64(0); i < n && f.err == nil; i++ {
					m.Keys = append(m.Keys, f.string())
				}
			}
		}
		m.TV = f.vc()
		m.Pessimistic = f.bool()
		env.Msg = m
	case tagSliceResp:
		var m msg.SliceResp
		m.TxID = f.uint()
		if marker := f.uint(); marker > 0 && f.err == nil {
			n := marker - 1
			if uint64(len(f.b)-f.pos) < n {
				f.fail()
			} else {
				m.Items = make([]msg.ItemReply, 0, n)
				for i := uint64(0); i < n && f.err == nil; i++ {
					m.Items = append(m.Items, f.itemReply())
				}
			}
		}
		m.Err = f.string()
		env.Msg = m
	case tagVVExchange:
		env.Msg = msg.VVExchange{Partition: int(f.uint()), VV: f.vc(),
			Watermark: vclock.Timestamp(f.uint())}
	case tagGCExchange:
		env.Msg = msg.GCExchange{Partition: int(f.uint()), TV: f.vc()}
	case tagCatchUpRequest:
		env.Msg = msg.CatchUpRequest{ReqID: f.uint(), From: vclock.Timestamp(f.uint()), Have: f.vc()}
	case tagCatchUpReply:
		var m msg.CatchUpReply
		m.ReqID = f.uint()
		m.Chunk = f.uint()
		if marker := f.uint(); marker > 0 && f.err == nil {
			n := marker - 1
			if uint64(len(f.b)-f.pos) < n {
				f.fail()
			} else {
				f.arena = &versionArena{}
				m.Versions = make([]*item.Version, 0, n)
				for i := uint64(0); i < n && f.err == nil; i++ {
					m.Versions = append(m.Versions, f.version())
				}
			}
		}
		m.Done = f.bool()
		m.Unsupported = f.bool()
		m.ResumeEpoch = f.uint()
		m.ResumeSeq = f.uint()
		m.Through = vclock.Timestamp(f.uint())
		m.FullResync = f.bool()
		if marker := f.uint(); marker > 0 && f.err == nil {
			n := marker - 1
			if uint64(len(f.b)-f.pos) < n {
				f.fail()
			} else {
				m.Departed = make([]msg.DepartedClaim, 0, n)
				for i := uint64(0); i < n && f.err == nil; i++ {
					m.Departed = append(m.Departed, msg.DepartedClaim{
						DC: int(f.uint()), Through: vclock.Timestamp(f.uint())})
				}
			}
		}
		m.SlotEpoch = f.uint()
		m.Progress = f.vc()
		env.Msg = m
	case tagCatchUpAck:
		env.Msg = msg.CatchUpAck{ReqID: f.uint(), Chunk: f.uint()}
	case tagJoinRequest:
		env.Msg = msg.JoinRequest{DC: int(f.uint()), View: f.membership()}
	case tagJoinAccept:
		env.Msg = msg.JoinAccept{View: f.membership(), Through: vclock.Timestamp(f.uint())}
	case tagMembershipUpdate:
		env.Msg = msg.MembershipUpdate{View: f.membership()}
	case tagLeaveNotice:
		env.Msg = msg.LeaveNotice{DC: int(f.uint()), Final: vclock.Timestamp(f.uint()), View: f.membership()}
	case tagEvictProposal:
		env.Msg = msg.EvictProposal{DC: int(f.uint()), ReqID: f.uint(), View: f.membership()}
	case tagEvictAck:
		env.Msg = msg.EvictAck{DC: int(f.uint()), ReqID: f.uint(), Entry: vclock.Timestamp(f.uint())}
	case tagEvictNotice:
		env.Msg = msg.EvictNotice{DC: int(f.uint()), Final: vclock.Timestamp(f.uint()), View: f.membership()}
	case tagSlotMapUpdate:
		env.Msg = msg.SlotMapUpdate{Map: f.slotMap()}
	case tagSlotHandoff:
		var m msg.SlotHandoff
		if marker := f.uint(); marker > 0 && f.err == nil {
			n := marker - 1
			if uint64(len(f.b)-f.pos) < n {
				f.fail()
			} else {
				f.arena = &versionArena{}
				m.Versions = make([]*item.Version, 0, n)
				for i := uint64(0); i < n && f.err == nil; i++ {
					m.Versions = append(m.Versions, f.version())
				}
			}
		}
		env.Msg = m
	default:
		return env, fmt.Errorf("wire: unknown message tag %d", tag)
	}
	if f.err != nil {
		return env, f.err
	}
	if f.pos != len(f.b) {
		return env, fmt.Errorf("wire: %d trailing bytes in frame", len(f.b)-f.pos)
	}
	return env, nil
}
