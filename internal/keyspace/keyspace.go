// Package keyspace implements the deterministic key→partition mapping of the
// system model (§II-C): the data set is split into N partitions and each key
// is assigned to a single partition by a hash function. It also builds the
// per-partition key tables used by the workload generators, which (like the
// paper's loader) populate every partition with a fixed number of keys.
//
// Since the slot-table refactor, the mapping is two-level: keys hash into a
// fixed universe of NumSlots slots, and an epoch-stamped SlotMap assigns each
// slot to a partition server. The static layout (PartitionOf) remains the
// seed's plain hash%N — durable deployments from before the refactor keep
// their key placement — and is expressible as a slot table (DefaultMap)
// exactly when N divides NumSlots (SlotAligned); resharding moves whole
// slots between servers by publishing a higher-stamped map.
package keyspace

import (
	"errors"
	"fmt"
)

// NumSlots is the fixed size of the slot universe. Every key hashes to
// exactly one slot; slots — not keys — are the unit of ownership and of
// movement during resharding. 256 slots keeps the map one cache line of
// owners wide while still splitting any realistic partition count evenly.
const NumSlots = 256

// hash32 is an inlined FNV-1a (identical output to hash/fnv's New32a) so the
// per-operation routing path stays allocation-free.
func hash32(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// SlotOf returns the slot a key hashes into.
func SlotOf(key string) int {
	return int(hash32(key) % NumSlots)
}

// PartitionOf returns the partition responsible for key under a static
// N-partition layout: the full hash mod n, byte-for-byte the layout the
// pre-slot-table code used, so durable deployments keep their key placement
// across the refactor. When n divides NumSlots this coincides with
// DefaultMap(n).OwnerOf(key); for other n no slot table reproduces it (a
// single slot holds keys with different hash%n values), which is why
// adopting slot routing on a live static layout requires SlotAligned(n).
func PartitionOf(key string, n int) int {
	return int(hash32(key) % uint32(n))
}

// SlotAligned reports whether the epoch-0 slot layout over n partitions
// (DefaultMap) routes every key identically to the static hash layout
// (PartitionOf): true exactly when n divides NumSlots, since
// hash%NumSlots%n == hash%n holds for all hashes only then.
func SlotAligned(n int) bool {
	return n > 0 && NumSlots%n == 0
}

// SlotMap is the epoch-stamped assignment of slots to partition servers
// within a DC. It forms a join-semilattice under Merge, mirroring
// msg.Membership: each slot carries the epoch at which its ownership last
// changed, and merging keeps, per slot, the assignment with the higher
// stamp. Two maps merged in any order or grouping converge to the same map,
// so the table can be gossiped without coordination.
//
// A SlotMap is immutable once published: mutations (MoveSlots) return a new
// map at a higher epoch.
type SlotMap struct {
	// Epoch is the generation of the map; it only grows. Routing layers
	// reject operations stamped with a different epoch (ErrWrongSlotEpoch
	// in core) so clients refresh instead of writing through stale routes.
	Epoch uint64
	// Parts is the number of partition servers the map assigns slots over
	// (owners are in [0, Parts)). Grows monotonically under Merge.
	Parts int
	// Owner[s] is the partition server responsible for slot s.
	Owner [NumSlots]uint8
	// Stamp[s] is the epoch at which slot s last changed owner. Slot s of
	// the default layout has stamp 0.
	Stamp [NumSlots]uint64
}

// DefaultMap returns the epoch-0 slot layout over n partitions:
// owner[s] = s mod n. It routes identically to PartitionOf(·, n) exactly
// when SlotAligned(n); for other n the two layouts disagree on some keys,
// so a deployment still routing statically must not adopt it (see
// cluster.SplitPartition / MoveSlots, which refuse the transition).
func DefaultMap(n int) *SlotMap {
	if n <= 0 || n > NumSlots {
		panic(fmt.Sprintf("keyspace: DefaultMap(%d) out of range [1,%d]", n, NumSlots))
	}
	m := &SlotMap{Parts: n}
	for s := 0; s < NumSlots; s++ {
		m.Owner[s] = uint8(s % n)
	}
	return m
}

// Clone returns a deep copy (SlotMap has no reference fields, so a value
// copy suffices; Clone keeps call sites honest about ownership).
func (m *SlotMap) Clone() *SlotMap {
	c := *m
	return &c
}

// OwnerOf returns the partition server responsible for key. Allocation-free.
func (m *SlotMap) OwnerOf(key string) int { return int(m.Owner[SlotOf(key)]) }

// SlotsOwnedBy returns the slots currently assigned to partition p.
func (m *SlotMap) SlotsOwnedBy(p int) []int {
	var out []int
	for s := 0; s < NumSlots; s++ {
		if int(m.Owner[s]) == p {
			out = append(out, s)
		}
	}
	return out
}

// MoveSlots returns a new map at epoch m.Epoch+1 in which the given slots
// are owned by partition `to`, stamped with the new epoch. Parts grows to
// cover `to` if needed. The receiver is not modified.
func (m *SlotMap) MoveSlots(slots []int, to int) (*SlotMap, error) {
	if to < 0 || to >= NumSlots {
		return nil, fmt.Errorf("keyspace: MoveSlots target %d out of range", to)
	}
	n := m.Clone()
	n.Epoch = m.Epoch + 1
	if to+1 > n.Parts {
		n.Parts = to + 1
	}
	for _, s := range slots {
		if s < 0 || s >= NumSlots {
			return nil, fmt.Errorf("keyspace: MoveSlots slot %d out of range", s)
		}
		n.Owner[s] = uint8(to)
		n.Stamp[s] = n.Epoch
	}
	return n, nil
}

// Merge folds o into m entry-wise and reports whether m changed. Per slot
// the higher stamp wins; on equal stamps the higher owner wins, making the
// tie-break deterministic so Merge is commutative, associative and
// idempotent (a true lattice join — the same shape as msg.Membership.Merge).
// Epoch and Parts take the max.
func (m *SlotMap) Merge(o *SlotMap) bool {
	if o == nil {
		return false
	}
	changed := false
	if o.Epoch > m.Epoch {
		m.Epoch = o.Epoch
		changed = true
	}
	if o.Parts > m.Parts {
		m.Parts = o.Parts
		changed = true
	}
	for s := 0; s < NumSlots; s++ {
		if o.Stamp[s] > m.Stamp[s] || (o.Stamp[s] == m.Stamp[s] && o.Owner[s] > m.Owner[s]) {
			m.Stamp[s] = o.Stamp[s]
			m.Owner[s] = o.Owner[s]
			changed = true
		}
	}
	return changed
}

// Validate checks structural invariants after a wire decode: every owner
// must be a real partition, no slot may be stamped past the map epoch, and
// the partition count must fit the owner byte.
func (m *SlotMap) Validate() error {
	if m.Parts <= 0 || m.Parts > NumSlots {
		return errors.New("keyspace: slot map partition count out of range")
	}
	for s := 0; s < NumSlots; s++ {
		if int(m.Owner[s]) >= m.Parts {
			return fmt.Errorf("keyspace: slot %d owned by %d, only %d partitions", s, m.Owner[s], m.Parts)
		}
		if m.Stamp[s] > m.Epoch {
			return fmt.Errorf("keyspace: slot %d stamped %d past epoch %d", s, m.Stamp[s], m.Epoch)
		}
	}
	return nil
}

// Table holds, for each partition, the list of keys that hash to it.
type Table struct {
	partitions int
	keys       [][]string
}

// Build generates perPartition keys for each of n partitions. Keys are drawn
// from a deterministic sequence ("k<i>") and bucketed by PartitionOf, so the
// same (n, perPartition) arguments always yield the same table.
func Build(n, perPartition int) *Table {
	t := &Table{partitions: n, keys: make([][]string, n)}
	for i := range t.keys {
		t.keys[i] = make([]string, 0, perPartition)
	}
	filled := 0
	for i := 0; filled < n; i++ {
		key := fmt.Sprintf("k%d", i)
		p := PartitionOf(key, n)
		if len(t.keys[p]) < perPartition {
			t.keys[p] = append(t.keys[p], key)
			if len(t.keys[p]) == perPartition {
				filled++
			}
		}
	}
	return t
}

// Partitions returns the number of partitions.
func (t *Table) Partitions() int { return t.partitions }

// KeysPerPartition returns the number of keys in each partition.
func (t *Table) KeysPerPartition() int { return len(t.keys[0]) }

// Key returns the rank-th key of a partition. Workload generators draw rank
// from a zipf distribution, so rank 0 is the hottest key of the partition.
func (t *Table) Key(partition, rank int) string { return t.keys[partition][rank] }

// AllKeys returns a copy of every key of a partition.
func (t *Table) AllKeys(partition int) []string {
	out := make([]string, len(t.keys[partition]))
	copy(out, t.keys[partition])
	return out
}
