// Package keyspace implements the deterministic key→partition mapping of the
// system model (§II-C): the data set is split into N partitions and each key
// is assigned to a single partition by a hash function. It also builds the
// per-partition key tables used by the workload generators, which (like the
// paper's loader) populate every partition with a fixed number of keys.
package keyspace

import (
	"fmt"
	"hash/fnv"
)

// PartitionOf returns the partition responsible for key under an
// N-partition layout.
func PartitionOf(key string, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// Table holds, for each partition, the list of keys that hash to it.
type Table struct {
	partitions int
	keys       [][]string
}

// Build generates perPartition keys for each of n partitions. Keys are drawn
// from a deterministic sequence ("k<i>") and bucketed by PartitionOf, so the
// same (n, perPartition) arguments always yield the same table.
func Build(n, perPartition int) *Table {
	t := &Table{partitions: n, keys: make([][]string, n)}
	for i := range t.keys {
		t.keys[i] = make([]string, 0, perPartition)
	}
	filled := 0
	for i := 0; filled < n; i++ {
		key := fmt.Sprintf("k%d", i)
		p := PartitionOf(key, n)
		if len(t.keys[p]) < perPartition {
			t.keys[p] = append(t.keys[p], key)
			if len(t.keys[p]) == perPartition {
				filled++
			}
		}
	}
	return t
}

// Partitions returns the number of partitions.
func (t *Table) Partitions() int { return t.partitions }

// KeysPerPartition returns the number of keys in each partition.
func (t *Table) KeysPerPartition() int { return len(t.keys[0]) }

// Key returns the rank-th key of a partition. Workload generators draw rank
// from a zipf distribution, so rank 0 is the hottest key of the partition.
func (t *Table) Key(partition, rank int) string { return t.keys[partition][rank] }

// AllKeys returns a copy of every key of a partition.
func (t *Table) AllKeys(partition int) []string {
	out := make([]string, len(t.keys[partition]))
	copy(out, t.keys[partition])
	return out
}
