package keyspace

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestPartitionOfStable(t *testing.T) {
	a := PartitionOf("user:42", 32)
	for i := 0; i < 10; i++ {
		if PartitionOf("user:42", 32) != a {
			t.Fatal("PartitionOf must be deterministic")
		}
	}
}

func TestPartitionOfInRange(t *testing.T) {
	f := func(key string, nRaw uint8) bool {
		n := 1 + int(nRaw%64)
		p := PartitionOf(key, n)
		return p >= 0 && p < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionOfSpreads(t *testing.T) {
	const n = 8
	counts := make([]int, n)
	const total = 8000
	for i := 0; i < total; i++ {
		counts[PartitionOf(fmt.Sprintf("key-%d", i), n)]++
	}
	for p, c := range counts {
		// Expect roughly total/n per partition; allow a wide band.
		if c < total/n/2 || c > total/n*2 {
			t.Fatalf("partition %d received %d keys, want ~%d", p, c, total/n)
		}
	}
}

func TestBuildShape(t *testing.T) {
	tbl := Build(4, 100)
	if tbl.Partitions() != 4 {
		t.Fatalf("Partitions = %d", tbl.Partitions())
	}
	if tbl.KeysPerPartition() != 100 {
		t.Fatalf("KeysPerPartition = %d", tbl.KeysPerPartition())
	}
	seen := map[string]bool{}
	for p := 0; p < 4; p++ {
		keys := tbl.AllKeys(p)
		if len(keys) != 100 {
			t.Fatalf("partition %d has %d keys", p, len(keys))
		}
		for _, k := range keys {
			if PartitionOf(k, 4) != p {
				t.Fatalf("key %q bucketed into wrong partition", k)
			}
			if seen[k] {
				t.Fatalf("key %q appears twice", k)
			}
			seen[k] = true
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, b := Build(3, 50), Build(3, 50)
	for p := 0; p < 3; p++ {
		for r := 0; r < 50; r++ {
			if a.Key(p, r) != b.Key(p, r) {
				t.Fatal("Build must be deterministic")
			}
		}
	}
}

func TestAllKeysIsACopy(t *testing.T) {
	tbl := Build(2, 10)
	keys := tbl.AllKeys(0)
	keys[0] = "mutated"
	if tbl.Key(0, 0) == "mutated" {
		t.Fatal("AllKeys must return a copy")
	}
}
