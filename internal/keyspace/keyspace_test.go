package keyspace

import (
	"fmt"
	"hash/fnv"
	"testing"
	"testing/quick"
)

func TestPartitionOfStable(t *testing.T) {
	a := PartitionOf("user:42", 32)
	for i := 0; i < 10; i++ {
		if PartitionOf("user:42", 32) != a {
			t.Fatal("PartitionOf must be deterministic")
		}
	}
}

func TestPartitionOfInRange(t *testing.T) {
	f := func(key string, nRaw uint8) bool {
		n := 1 + int(nRaw%64)
		p := PartitionOf(key, n)
		return p >= 0 && p < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionOfSpreads(t *testing.T) {
	const n = 8
	counts := make([]int, n)
	const total = 8000
	for i := 0; i < total; i++ {
		counts[PartitionOf(fmt.Sprintf("key-%d", i), n)]++
	}
	for p, c := range counts {
		// Expect roughly total/n per partition; allow a wide band.
		if c < total/n/2 || c > total/n*2 {
			t.Fatalf("partition %d received %d keys, want ~%d", p, c, total/n)
		}
	}
}

func TestBuildShape(t *testing.T) {
	tbl := Build(4, 100)
	if tbl.Partitions() != 4 {
		t.Fatalf("Partitions = %d", tbl.Partitions())
	}
	if tbl.KeysPerPartition() != 100 {
		t.Fatalf("KeysPerPartition = %d", tbl.KeysPerPartition())
	}
	seen := map[string]bool{}
	for p := 0; p < 4; p++ {
		keys := tbl.AllKeys(p)
		if len(keys) != 100 {
			t.Fatalf("partition %d has %d keys", p, len(keys))
		}
		for _, k := range keys {
			if PartitionOf(k, 4) != p {
				t.Fatalf("key %q bucketed into wrong partition", k)
			}
			if seen[k] {
				t.Fatalf("key %q appears twice", k)
			}
			seen[k] = true
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, b := Build(3, 50), Build(3, 50)
	for p := 0; p < 3; p++ {
		for r := 0; r < 50; r++ {
			if a.Key(p, r) != b.Key(p, r) {
				t.Fatal("Build must be deterministic")
			}
		}
	}
}

func TestAllKeysIsACopy(t *testing.T) {
	tbl := Build(2, 10)
	keys := tbl.AllKeys(0)
	keys[0] = "mutated"
	if tbl.Key(0, 0) == "mutated" {
		t.Fatal("AllKeys must return a copy")
	}
}

// --- Slot table ---

func TestSlotOfMatchesPartitionOf(t *testing.T) {
	// The default slot layout reproduces the static hash layout exactly for
	// the slot-aligned partition counts — the precondition for adopting slot
	// routing on a live deployment without re-homing keys.
	f := func(key string, nRaw uint8) bool {
		for n := 1; n <= NumSlots; n *= 2 {
			if !SlotAligned(n) {
				return false
			}
			if DefaultMap(n).OwnerOf(key) != PartitionOf(key, n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{3, 5, 6, 7, 24, 100} {
		if SlotAligned(n) {
			t.Fatalf("SlotAligned(%d) = true, want false", n)
		}
	}
}

func TestPartitionOfMatchesSeedLayout(t *testing.T) {
	// PartitionOf must stay byte-for-byte the pre-slot-table mapping
	// (fnv32a(key) % n) for EVERY partition count: durable deployments from
	// before the refactor restart onto this code and their WAL-recovered
	// stores hold keys placed by that layout.
	f := func(key string, nRaw uint8) bool {
		n := 1 + int(nRaw%64)
		h := fnv.New32a()
		_, _ = h.Write([]byte(key))
		return PartitionOf(key, n) == int(h.Sum32()%uint32(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSlotOfInRange(t *testing.T) {
	f := func(key string) bool {
		s := SlotOf(key)
		return s >= 0 && s < NumSlots
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// randomMap builds an arbitrary-but-valid SlotMap from fuzz bytes.
func randomMap(owners [NumSlots]uint8, stamps [NumSlots]uint8, parts uint8, epoch uint8) *SlotMap {
	m := &SlotMap{Parts: 1 + int(parts)%NumSlots}
	m.Epoch = uint64(epoch)
	for s := 0; s < NumSlots; s++ {
		m.Owner[s] = uint8(int(owners[s]) % m.Parts)
		st := uint64(stamps[s])
		if st > m.Epoch {
			st = m.Epoch
		}
		m.Stamp[s] = st
	}
	return m
}

// Every key maps to exactly one owner at every epoch, and that owner is a
// real partition: the ISSUE's "never orphan or double-own" property. Owner
// is a total function (array lookup), so orphan/double-own can only appear
// as an out-of-range or divergent post-merge assignment.
func TestSlotMapMergeNeverOrphans(t *testing.T) {
	f := func(ao, as [NumSlots]uint8, ap, ae uint8, bo, bs [NumSlots]uint8, bp, be uint8) bool {
		a := randomMap(ao, as, ap, ae)
		b := randomMap(bo, bs, bp, be)
		ab := a.Clone()
		ab.Merge(b)
		if err := ab.Validate(); err != nil {
			return false
		}
		// Commutativity: merging in the other order yields the same map.
		ba := b.Clone()
		ba.Merge(a)
		if *ab != *ba {
			return false
		}
		// Idempotence: merging again changes nothing.
		if ab.Merge(b) || ab.Merge(a) {
			return false
		}
		// Single ownership at the merged epoch: every slot has exactly one
		// in-range owner.
		for s := 0; s < NumSlots; s++ {
			if int(ab.Owner[s]) >= ab.Parts {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSlotMapMergeMonotone(t *testing.T) {
	// A merged map never loses a slot movement: higher stamps survive.
	f := func(ao, as [NumSlots]uint8, ap, ae uint8, bo, bs [NumSlots]uint8, bp, be uint8) bool {
		a := randomMap(ao, as, ap, ae)
		b := randomMap(bo, bs, bp, be)
		ab := a.Clone()
		ab.Merge(b)
		for s := 0; s < NumSlots; s++ {
			if ab.Stamp[s] < a.Stamp[s] || ab.Stamp[s] < b.Stamp[s] {
				return false
			}
		}
		return ab.Epoch >= a.Epoch && ab.Epoch >= b.Epoch && ab.Parts >= a.Parts && ab.Parts >= b.Parts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMoveSlots(t *testing.T) {
	m := DefaultMap(2)
	moved, err := m.MoveSlots([]int{0, 2, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if moved.Epoch != 1 || moved.Parts != 3 {
		t.Fatalf("epoch=%d parts=%d, want 1/3", moved.Epoch, moved.Parts)
	}
	for _, s := range []int{0, 2, 4} {
		if moved.Owner[s] != 2 || moved.Stamp[s] != 1 {
			t.Fatalf("slot %d owner=%d stamp=%d", s, moved.Owner[s], moved.Stamp[s])
		}
	}
	if moved.Owner[1] != m.Owner[1] || moved.Stamp[1] != 0 {
		t.Fatal("untouched slot changed")
	}
	if m.Epoch != 0 {
		t.Fatal("MoveSlots mutated the receiver")
	}
	// A stale holder of m that merges `moved` adopts every movement.
	stale := m.Clone()
	if !stale.Merge(moved) {
		t.Fatal("merge of a newer map must report change")
	}
	if *stale != *moved {
		t.Fatal("merge must converge to the moved map")
	}
	if _, err := m.MoveSlots([]int{-1}, 0); err == nil {
		t.Fatal("negative slot must be rejected")
	}
	if _, err := m.MoveSlots([]int{0}, NumSlots); err == nil {
		t.Fatal("out-of-range target must be rejected")
	}
}

func TestSlotMapValidate(t *testing.T) {
	m := DefaultMap(4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := m.Clone()
	bad.Owner[7] = 200 // only 4 partitions
	if bad.Validate() == nil {
		t.Fatal("out-of-range owner must fail validation")
	}
	bad = m.Clone()
	bad.Stamp[3] = 9 // past epoch 0
	if bad.Validate() == nil {
		t.Fatal("stamp past epoch must fail validation")
	}
	bad = m.Clone()
	bad.Parts = 0
	if bad.Validate() == nil {
		t.Fatal("zero partitions must fail validation")
	}
}

// BenchmarkSlotRouting guards the routing half of the GET hot path: hashing
// a key to its slot and resolving the owner must not allocate.
func BenchmarkSlotRouting(b *testing.B) {
	m := DefaultMap(4)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("user:%d:profile", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += m.OwnerOf(keys[i&63])
	}
	_ = sink
}
