package tcpnet

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/item"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/vclock"
)

func pair(t *testing.T) (*Node, *Node) {
	t.Helper()
	a, err := Listen(netemu.NodeID{DC: 0, Partition: 0}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen(netemu.NodeID{DC: 1, Partition: 0}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dir := map[netemu.NodeID]string{a.ID(): a.Addr(), b.ID(): b.Addr()}
	a.Connect(dir)
	b.Connect(dir)
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func waitCond(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(500 * time.Microsecond)
	}
	return false
}

func TestSendReceive(t *testing.T) {
	a, b := pair(t)
	var mu sync.Mutex
	var got []msg.Heartbeat
	var srcs []netemu.NodeID
	b.SetHandler(func(src netemu.NodeID, m any) {
		mu.Lock()
		got = append(got, m.(msg.Heartbeat))
		srcs = append(srcs, src)
		mu.Unlock()
	})
	a.Send(b.ID(), msg.Heartbeat{Time: 42})
	if !waitCond(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	}) {
		t.Fatal("message never delivered over TCP")
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0].Time != 42 || srcs[0] != a.ID() {
		t.Fatalf("got %+v from %v", got[0], srcs[0])
	}
}

func TestFIFOOrder(t *testing.T) {
	a, b := pair(t)
	const count = 500
	var mu sync.Mutex
	var got []vclock.Timestamp
	b.SetHandler(func(_ netemu.NodeID, m any) {
		mu.Lock()
		got = append(got, m.(msg.Heartbeat).Time)
		mu.Unlock()
	})
	for i := 1; i <= count; i++ {
		a.Send(b.ID(), msg.Heartbeat{Time: vclock.Timestamp(i)})
	}
	if !waitCond(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == count
	}) {
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("delivered %d of %d", len(got), count)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, ts := range got {
		if ts != vclock.Timestamp(i+1) {
			t.Fatalf("position %d holds %d: FIFO violated", i, ts)
		}
	}
}

func TestBidirectional(t *testing.T) {
	a, b := pair(t)
	gotA := make(chan vclock.Timestamp, 1)
	gotB := make(chan vclock.Timestamp, 1)
	a.SetHandler(func(_ netemu.NodeID, m any) { gotA <- m.(msg.Heartbeat).Time })
	b.SetHandler(func(_ netemu.NodeID, m any) { gotB <- m.(msg.Heartbeat).Time })
	a.Send(b.ID(), msg.Heartbeat{Time: 1})
	b.Send(a.ID(), msg.Heartbeat{Time: 2})
	select {
	case ts := <-gotB:
		if ts != 1 {
			t.Fatalf("b got %d", ts)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("b never received")
	}
	select {
	case ts := <-gotA:
		if ts != 2 {
			t.Fatalf("a got %d", ts)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("a never received")
	}
}

func TestSendBeforePeerListensRetries(t *testing.T) {
	a, err := Listen(netemu.NodeID{DC: 0, Partition: 0}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Reserve an address, close it, and point a's directory at it before the
	// real peer binds — the outbound link must retry until the peer is up.
	probe, err := Listen(netemu.NodeID{DC: 9, Partition: 9}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr()
	probe.Close()

	bID := netemu.NodeID{DC: 1, Partition: 0}
	a.Connect(map[netemu.NodeID]string{bID: addr})
	a.Send(bID, msg.Heartbeat{Time: 99})

	time.Sleep(20 * time.Millisecond) // let a few dial attempts fail
	got := make(chan vclock.Timestamp, 1)
	bl, err := net0Listen(addr)
	if err != nil {
		t.Skipf("could not rebind reserved address %s: %v", addr, err)
	}
	b := bl
	defer b.Close()
	b.SetHandler(func(_ netemu.NodeID, m any) { got <- m.(msg.Heartbeat).Time })
	select {
	case ts := <-got:
		if ts != 99 {
			t.Fatalf("got %d", ts)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued message never delivered after peer came up")
	}
}

// net0Listen binds the real peer of TestSendBeforePeerListensRetries.
func net0Listen(addr string) (*Node, error) {
	return Listen(netemu.NodeID{DC: 1, Partition: 0}, addr)
}

func TestSendToUnknownPanics(t *testing.T) {
	a, _ := pair(t)
	defer func() {
		if recover() == nil {
			t.Fatal("send to unknown node must panic")
		}
	}()
	a.Send(netemu.NodeID{DC: 9, Partition: 9}, msg.Heartbeat{})
}

func TestSentCounterAndCloseIdempotent(t *testing.T) {
	a, b := pair(t)
	b.SetHandler(func(netemu.NodeID, any) {})
	for i := 0; i < 5; i++ {
		a.Send(b.ID(), msg.Heartbeat{Time: vclock.Timestamp(i + 1)})
	}
	if got := a.Sent(); got != 5 {
		t.Fatalf("Sent = %d", got)
	}
	a.Close()
	a.Close() // must not panic or deadlock
	a.Send(b.ID(), msg.Heartbeat{Time: 6})
	if got := a.Sent(); got != 5 {
		t.Fatalf("send after close must be dropped, Sent = %d", got)
	}
}

func TestManySendersOneReceiver(t *testing.T) {
	recv, err := Listen(netemu.NodeID{DC: 2, Partition: 0}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	var mu sync.Mutex
	perSrc := map[netemu.NodeID][]vclock.Timestamp{}
	recv.SetHandler(func(src netemu.NodeID, m any) {
		mu.Lock()
		perSrc[src] = append(perSrc[src], m.(msg.Heartbeat).Time)
		mu.Unlock()
	})

	const senders = 4
	const per = 100
	nodes := make([]*Node, senders)
	for i := range nodes {
		n, errL := Listen(netemu.NodeID{DC: 0, Partition: i}, "127.0.0.1:0")
		if errL != nil {
			t.Fatal(errL)
		}
		n.Connect(map[netemu.NodeID]string{recv.ID(): recv.Addr()})
		nodes[i] = n
		defer n.Close()
	}
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			for j := 1; j <= per; j++ {
				n.Send(recv.ID(), msg.Heartbeat{Time: vclock.Timestamp(j)})
			}
		}(i, n)
	}
	wg.Wait()
	if !waitCond(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		total := 0
		for _, v := range perSrc {
			total += len(v)
		}
		return total == senders*per
	}) {
		t.Fatal("not all messages delivered")
	}
	mu.Lock()
	defer mu.Unlock()
	for src, seq := range perSrc {
		for j, ts := range seq {
			if ts != vclock.Timestamp(j+1) {
				t.Fatalf("src %v: FIFO violated at %d", src, j)
			}
		}
	}
}

// TestBurstDrainsInBatches floods one link with a burst far larger than any
// single write: the batched drain must deliver every message, in order,
// payloads intact. The burst is enqueued as fast as possible so the writer
// observes multi-message backlogs (the batch path), including while it is
// still dialing.
func TestBurstDrainsInBatches(t *testing.T) {
	a, b := pair(t)
	const count = 3000
	var mu sync.Mutex
	var got []msg.ReplicateBatch
	b.SetHandler(func(_ netemu.NodeID, m any) {
		mu.Lock()
		got = append(got, m.(msg.ReplicateBatch))
		mu.Unlock()
	})
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 1; i <= count; i++ {
		a.Send(b.ID(), msg.ReplicateBatch{
			Seq: uint64(i),
			Versions: []*item.Version{{
				Key: "burst", Value: payload, UpdateTime: vclock.Timestamp(i),
			}},
		})
	}
	if !waitCond(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == count
	}) {
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("delivered %d of %d", len(got), count)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, m := range got {
		if m.Seq != uint64(i+1) {
			t.Fatalf("position %d holds seq %d: FIFO violated", i, m.Seq)
		}
		if len(m.Versions) != 1 || !bytes.Equal(m.Versions[0].Value, payload) {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}
