// Package tcpnet carries the protocol over real TCP connections, proving
// the engine is transport-agnostic: each node owns a listener, keeps one
// persistent outbound connection per destination (TCP ordering gives the
// lossless FIFO channel the system model assumes), and encodes messages
// with internal/wire — the zero-allocation binary codec by default, with
// gob available as a compatibility fallback (ListenCodec). Intended for
// single-host/loopback deployments and demos; the emulated transport
// (internal/netemu) remains the tool for latency and partition injection.
package tcpnet

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netemu"
	"repro/internal/wire"
)

// Node is a TCP-backed core.Transport.
type Node struct {
	id       netemu.NodeID
	codec    wire.Codec
	listener net.Listener
	handler  atomic.Pointer[netemu.Handler]

	mu     sync.Mutex
	peers  map[netemu.NodeID]string // node -> address (set by Connect)
	outs   map[netemu.NodeID]*outLink
	ins    map[net.Conn]struct{} // accepted connections, closed on shutdown
	closed bool

	sent atomic.Uint64
	wg   sync.WaitGroup
}

// Listen binds a node on addr ("127.0.0.1:0" for an ephemeral port) using
// the default binary wire codec.
func Listen(id netemu.NodeID, addr string) (*Node, error) {
	return ListenCodec(id, addr, wire.Binary)
}

// ListenCodec binds a node with an explicit wire codec. All nodes of one
// deployment must use the same codec; wire.Gob is the compatibility
// fallback for peers running the reflection-based codec.
func ListenCodec(id netemu.NodeID, addr string, codec wire.Codec) (*Node, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	n := &Node{
		id:       id,
		codec:    codec,
		listener: l,
		peers:    make(map[netemu.NodeID]string),
		outs:     make(map[netemu.NodeID]*outLink),
		ins:      make(map[net.Conn]struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.listener.Addr().String() }

// ID implements core.Transport.
func (n *Node) ID() netemu.NodeID { return n.id }

// SetHandler implements core.Transport.
func (n *Node) SetHandler(h netemu.Handler) { n.handler.Store(&h) }

// Connect installs the directory of peer addresses. It must be called before
// the first Send; connections are dialed lazily.
func (n *Node) Connect(directory map[netemu.NodeID]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id, addr := range directory {
		n.peers[id] = addr
	}
}

// Sent returns the number of messages handed to the transport.
func (n *Node) Sent() uint64 { return n.sent.Load() }

// Send implements core.Transport: it enqueues m on the persistent ordered
// connection to dst and never blocks on the network.
func (n *Node) Send(dst netemu.NodeID, m any) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	link, ok := n.outs[dst]
	if !ok {
		addr, known := n.peers[dst]
		if !known {
			n.mu.Unlock()
			panic(fmt.Sprintf("tcpnet: send to unknown node %v", dst))
		}
		link = newOutLink(n, addr)
		n.outs[dst] = link
	}
	n.mu.Unlock()
	n.sent.Add(1)
	link.enqueue(m)
}

// Close shuts the node down: the listener stops, outbound links flush their
// queues best-effort and close, and all goroutines are joined.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	outs := make([]*outLink, 0, len(n.outs))
	for _, l := range n.outs {
		outs = append(outs, l)
	}
	ins := make([]net.Conn, 0, len(n.ins))
	for c := range n.ins {
		ins = append(ins, c)
	}
	n.mu.Unlock()

	for _, l := range outs {
		l.close()
	}
	_ = n.listener.Close()
	// Unblock inbound readers: their Decode calls return once the
	// connections are closed.
	for _, c := range ins {
		_ = c.Close()
	}
	n.wg.Wait()
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.ins[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.readLoop(conn)
		}()
	}
}

// readLoop decodes envelopes from one inbound connection and dispatches them
// sequentially, preserving the sender's FIFO order.
func (n *Node) readLoop(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		n.mu.Lock()
		delete(n.ins, conn)
		n.mu.Unlock()
	}()
	dec := n.codec.NewDecoder(conn)
	for {
		env, err := dec.Decode()
		if err != nil {
			return
		}
		if hp := n.handler.Load(); hp != nil {
			(*hp)(env.Src, env.Msg)
		}
	}
}

// outLink is a persistent ordered connection to one destination with an
// unbounded send queue (the lossless-channel model). A dedicated writer
// goroutine drains the queue in batches: everything queued is encoded
// through one buffered writer and flushed once per drain, so a replication
// burst costs one syscall instead of one per message. Dial failures are
// retried with backoff so no message is ever dropped while the node is up.
type outLink struct {
	node *Node
	addr string

	mu     sync.Mutex
	cond   *sync.Cond
	q      []any
	closed bool
}

func newOutLink(n *Node, addr string) *outLink {
	l := &outLink{node: n, addr: addr}
	l.cond = sync.NewCond(&l.mu)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		l.run()
	}()
	return l
}

func (l *outLink) enqueue(m any) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.q = append(l.q, m)
	l.mu.Unlock()
	l.cond.Signal()
}

func (l *outLink) close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
}

func (l *outLink) run() {
	var conn net.Conn
	var bw *bufio.Writer
	var enc wire.Encoder
	defer func() {
		if conn != nil {
			_ = conn.Close()
		}
	}()
	backoff := time.Millisecond
	for {
		l.mu.Lock()
		for len(l.q) == 0 && !l.closed {
			l.cond.Wait()
		}
		if l.closed && len(l.q) == 0 {
			l.mu.Unlock()
			return
		}
		// Snapshot the whole backlog: everything queued drains in one
		// buffered write. The full-slice expression pins the batch's length
		// so concurrent enqueues (which may grow the same backing array)
		// stay out of it; the batch is only popped after a successful flush.
		batch := l.q[:len(l.q):len(l.q)]
		l.mu.Unlock()

		if conn == nil {
			c, err := net.Dial("tcp", l.addr)
			if err != nil {
				if l.isClosed() {
					return // give up on the backlog at shutdown
				}
				time.Sleep(backoff)
				if backoff < 100*time.Millisecond {
					backoff *= 2
				}
				continue
			}
			if tc, ok := c.(*net.TCPConn); ok {
				// TCP_NODELAY on, explicitly (it is also Go's default):
				// batching happens here in the writer, where it costs one
				// flush per drain, not in the kernel, where Nagle would add
				// up to an RTT of latency to every small heartbeat.
				_ = tc.SetNoDelay(true)
			}
			conn = c
			bw = bufio.NewWriterSize(conn, 64*1024)
			enc = l.node.codec.NewEncoder(bw)
			backoff = time.Millisecond
		}
		ok := true
		for _, m := range batch {
			if err := enc.Encode(wire.Envelope{Src: l.node.id, Msg: m}); err != nil {
				ok = false
				break
			}
		}
		if ok {
			ok = bw.Flush() == nil
		}
		if !ok {
			// Connection broke: drop it and retransmit the whole batch on a
			// fresh connection (neither codec can resume mid-stream). A
			// partially-flushed batch means duplicates on the receiver,
			// which the protocol tolerates: sequenced replication drops
			// already-seen (epoch, seq) pairs, and a gap triggers catch-up.
			_ = conn.Close()
			conn, bw, enc = nil, nil, nil
			continue
		}
		l.mu.Lock()
		l.q = l.q[len(batch):]
		l.mu.Unlock()
	}
}

func (l *outLink) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}
