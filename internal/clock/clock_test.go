package clock

import (
	"sync"
	"testing"
	"time"

	"repro/internal/vclock"
)

func TestNowStrictlyIncreasing(t *testing.T) {
	c := New(0)
	prev := c.Now()
	for i := 0; i < 10000; i++ {
		now := c.Now()
		if now <= prev {
			t.Fatalf("Now() not strictly increasing: %d after %d", now, prev)
		}
		prev = now
	}
}

func TestNowStrictlyIncreasingConcurrent(t *testing.T) {
	c := New(0)
	const workers = 8
	const perWorker = 5000
	seen := make([][]vclock.Timestamp, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]vclock.Timestamp, perWorker)
			for i := range out {
				out[i] = c.Now()
			}
			seen[w] = out
		}(w)
	}
	wg.Wait()
	all := make(map[vclock.Timestamp]bool, workers*perWorker)
	for w := range seen {
		prev := vclock.Timestamp(0)
		for _, ts := range seen[w] {
			if ts <= prev {
				t.Fatalf("worker %d saw non-increasing timestamps", w)
			}
			prev = ts
			if all[ts] {
				t.Fatalf("duplicate timestamp %d across workers", ts)
			}
			all[ts] = true
		}
	}
}

func TestSkewShiftsReadings(t *testing.T) {
	ahead := New(time.Second)
	behind := New(-time.Millisecond)
	a, b := ahead.Now(), behind.Now()
	if a <= b {
		t.Fatalf("clock with +1s skew (%d) must read ahead of -1ms skew (%d)", a, b)
	}
	diff := time.Duration(a - b)
	if diff < 900*time.Millisecond || diff > 1100*time.Millisecond {
		t.Fatalf("skew difference %v outside expected window", diff)
	}
}

func TestNegativeSkewNeverZero(t *testing.T) {
	c := New(-time.Hour) // far behind the epoch: raw reading would be negative
	if ts := c.Now(); ts == 0 {
		t.Fatal("Now() must never return 0")
	}
}

func TestSleepUntilAfter(t *testing.T) {
	c := New(0)
	target := c.Now() + vclock.Timestamp(2*time.Millisecond)
	start := time.Now()
	got := c.SleepUntilAfter(target)
	if got <= target {
		t.Fatalf("SleepUntilAfter returned %d, want > %d", got, target)
	}
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Fatalf("returned too early after %v", elapsed)
	}
}

func TestSleepUntilAfterPast(t *testing.T) {
	c := New(0)
	past := c.Now() - 1
	done := make(chan vclock.Timestamp, 1)
	go func() { done <- c.SleepUntilAfter(past) }()
	select {
	case got := <-done:
		if got <= past {
			t.Fatalf("got %d, want > %d", got, past)
		}
	case <-time.After(time.Second):
		t.Fatal("SleepUntilAfter with past target must return immediately")
	}
}

func TestSkewAccessor(t *testing.T) {
	c := New(42 * time.Microsecond)
	if c.Skew() != 42*time.Microsecond {
		t.Fatalf("Skew = %v", c.Skew())
	}
}

func TestAdvanceTo(t *testing.T) {
	c := New(0)
	before := c.Now()
	target := before + vclock.Timestamp(time.Hour)
	c.AdvanceTo(target)
	if got := c.Now(); got <= target {
		t.Fatalf("Now() = %d after AdvanceTo(%d), want strictly greater", got, target)
	}
	// Advancing backwards is a no-op: the clock stays monotone.
	high := c.Now()
	c.AdvanceTo(before)
	if got := c.Now(); got <= high {
		t.Fatalf("Now() = %d regressed after a backwards AdvanceTo", got)
	}
}
