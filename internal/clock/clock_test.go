package clock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vclock"
)

func TestNowStrictlyIncreasing(t *testing.T) {
	c := New(0)
	prev := c.Now()
	for i := 0; i < 10000; i++ {
		now := c.Now()
		if now <= prev {
			t.Fatalf("Now() not strictly increasing: %d after %d", now, prev)
		}
		prev = now
	}
}

func TestNowStrictlyIncreasingConcurrent(t *testing.T) {
	c := New(0)
	const workers = 8
	const perWorker = 5000
	seen := make([][]vclock.Timestamp, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]vclock.Timestamp, perWorker)
			for i := range out {
				out[i] = c.Now()
			}
			seen[w] = out
		}(w)
	}
	wg.Wait()
	all := make(map[vclock.Timestamp]bool, workers*perWorker)
	for w := range seen {
		prev := vclock.Timestamp(0)
		for _, ts := range seen[w] {
			if ts <= prev {
				t.Fatalf("worker %d saw non-increasing timestamps", w)
			}
			prev = ts
			if all[ts] {
				t.Fatalf("duplicate timestamp %d across workers", ts)
			}
			all[ts] = true
		}
	}
}

func TestSkewShiftsReadings(t *testing.T) {
	ahead := New(time.Second)
	behind := New(-time.Millisecond)
	a, b := ahead.Now(), behind.Now()
	if a <= b {
		t.Fatalf("clock with +1s skew (%d) must read ahead of -1ms skew (%d)", a, b)
	}
	diff := time.Duration(a - b)
	if diff < 900*time.Millisecond || diff > 1100*time.Millisecond {
		t.Fatalf("skew difference %v outside expected window", diff)
	}
}

func TestNegativeSkewNeverZero(t *testing.T) {
	c := New(-time.Hour) // far behind the epoch: raw reading would be negative
	if ts := c.Now(); ts == 0 {
		t.Fatal("Now() must never return 0")
	}
}

func TestSleepUntilAfter(t *testing.T) {
	c := New(0)
	target := c.Now() + vclock.Timestamp(2*time.Millisecond)
	start := time.Now()
	got := c.SleepUntilAfter(target)
	if got <= target {
		t.Fatalf("SleepUntilAfter returned %d, want > %d", got, target)
	}
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Fatalf("returned too early after %v", elapsed)
	}
}

func TestSleepUntilAfterPast(t *testing.T) {
	c := New(0)
	past := c.Now() - 1
	done := make(chan vclock.Timestamp, 1)
	go func() { done <- c.SleepUntilAfter(past) }()
	select {
	case got := <-done:
		if got <= past {
			t.Fatalf("got %d, want > %d", got, past)
		}
	case <-time.After(time.Second):
		t.Fatal("SleepUntilAfter with past target must return immediately")
	}
}

func TestSkewAccessor(t *testing.T) {
	c := New(42 * time.Microsecond)
	if c.Skew() != 42*time.Microsecond {
		t.Fatalf("Skew = %v", c.Skew())
	}
}

func TestAdvanceTo(t *testing.T) {
	c := New(0)
	before := c.Now()
	target := before + vclock.Timestamp(time.Hour)
	c.AdvanceTo(target)
	if got := c.Now(); got <= target {
		t.Fatalf("Now() = %d after AdvanceTo(%d), want strictly greater", got, target)
	}
	// Advancing backwards is a no-op: the clock stays monotone.
	high := c.Now()
	c.AdvanceTo(before)
	if got := c.Now(); got <= high {
		t.Fatalf("Now() = %d regressed after a backwards AdvanceTo", got)
	}
}

// --- negative-skew clamp regression ---------------------------------------

// A large negative skew must not collapse readings onto a constant floor:
// the clamp rebases on the last-issued timestamp, so the clock keeps moving
// forward from wherever it has already been — in particular from a recovered
// or merged floor far above the (negative) wall reading.
func TestNegativeSkewRebasesOnLastIssued(t *testing.T) {
	c := New(-time.Hour) // wall reading is deeply negative for the next hour
	first := c.Now()
	if first == 0 {
		t.Fatal("Now() must never return 0")
	}
	floor := first + vclock.Timestamp(30*time.Minute)
	c.AdvanceTo(floor)
	prev := floor
	for i := 0; i < 1000; i++ {
		now := c.Now()
		if now <= prev {
			t.Fatalf("Now() = %d after %d: clamp fell back below the last-issued timestamp", now, prev)
		}
		prev = now
	}
	if prev <= floor {
		t.Fatalf("readings collapsed below the advanced floor: %d <= %d", prev, floor)
	}
}

// --- hybrid logical/physical clocks ---------------------------------------

func TestHLCPacking(t *testing.T) {
	c := NewHLC(0)
	a := c.Now()
	if a.Physical()+vclock.Timestamp(a.Logical()) != a {
		t.Fatalf("Physical()+Logical() must reassemble the timestamp: %d", a)
	}
	// Burst faster than the physical tick: logical counter must climb while
	// the physical component stays put or advances.
	prev := a
	for i := 0; i < 100; i++ {
		now := c.Now()
		if now <= prev {
			t.Fatalf("HLC not strictly increasing: %d after %d", now, prev)
		}
		if now.Physical() < prev.Physical() {
			t.Fatalf("physical component regressed: %d after %d", now.Physical(), prev.Physical())
		}
		prev = now
	}
}

func TestHLCSkewInsensitivePutWait(t *testing.T) {
	// A writer whose physical clock trails by 50 ms receives a dependency
	// stamped by an up-to-date peer. With a raw clock the PUT clock-wait
	// would sleep out the skew; the HLC must satisfy it with a logical bump,
	// immediately.
	fast := NewHLC(0)
	slow := NewHLC(-50 * time.Millisecond)
	dep := fast.Now()
	start := time.Now()
	ut := slow.SleepUntilAfter(dep)
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Fatalf("HLC clock-wait slept %v; must be skew-insensitive", elapsed)
	}
	if ut <= dep {
		t.Fatalf("clock-wait returned %d, want > dependency %d", ut, dep)
	}
	if ut.Physical() < dep.Physical() {
		t.Fatalf("hybrid physical component %d below the dependency's %d", ut.Physical(), dep.Physical())
	}
}

func TestHLCObserveMergesRemoteTime(t *testing.T) {
	behind := NewHLC(-20 * time.Millisecond)
	ahead := NewHLC(20 * time.Millisecond)
	remote := ahead.Now()
	behind.Observe(remote)
	if got := behind.Now(); got <= remote {
		t.Fatalf("after Observe(%d), Now() = %d, want strictly greater", remote, got)
	}
	// Raw clocks must NOT absorb remote time: the skew ablation depends on
	// the raw variant staying skew-sensitive.
	raw := New(-20 * time.Millisecond)
	before := raw.Now()
	raw.Observe(remote + vclock.Timestamp(time.Hour))
	after := raw.Now()
	if after >= remote {
		t.Fatalf("raw clock absorbed remote time: %d (was %d)", after, before)
	}
}

// TestHLCMergeProperties quick.Checks the HLC receive-merge rules: merging is
// monotone (never lowers the clock), commutative in effect (observing a set
// of timestamps in any order leaves the clock at the same floor), and the
// issued timestamp never exceeds max(local physical, observed) by more than
// one logical tick per local event.
func TestHLCMergeProperties(t *testing.T) {
	prop := func(raw []uint64) bool {
		if len(raw) == 0 {
			return true
		}
		obs := make([]vclock.Timestamp, len(raw))
		// Keep observations within a century of the epoch so physical
		// arithmetic cannot overflow uint64 in the assertions.
		for i, r := range raw {
			obs[i] = vclock.Timestamp(r % uint64(100*365*24*time.Hour))
		}
		a, b := NewHLC(0), NewHLC(0)
		start := a.Now()
		// a observes in the given order, b in reverse.
		for _, o := range obs {
			a.Observe(o)
		}
		for i := len(obs) - 1; i >= 0; i-- {
			b.Observe(obs[i])
		}
		af, bf := a.last.Load(), b.last.Load()
		max := start
		for _, o := range obs {
			if o > max {
				max = o
			}
		}
		// Commutative in effect: both orders settle on the same floor
		// (modulo the wall advancing underneath, which only raises both
		// toward the same reading).
		if af != bf && vclock.Timestamp(af) < max && vclock.Timestamp(bf) < max {
			return false
		}
		// Monotone: the floor never drops below the largest observation.
		if vclock.Timestamp(af) < max || vclock.Timestamp(bf) < max {
			return false
		}
		// Bounded drift: issuing an event after the merges stays within one
		// logical tick of max(physical seen, current wall).
		now := a.Now()
		if now <= max {
			return false
		}
		wall := vclock.Timestamp(time.Since(a.epoch).Nanoseconds())
		bound := max
		if wall > bound {
			bound = wall
		}
		return now.Physical() <= bound.Physical()+vclock.Timestamp(vclock.LogicalMask)+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
