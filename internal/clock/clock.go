// Package clock provides the per-node clocks used by the POCC and Cure*
// protocols. Each node owns a Clock that yields monotonically increasing
// timestamps. Two flavours exist:
//
//   - New returns a raw physical clock: readings are wall nanoseconds plus a
//     fixed skew offset, emulating the loose NTP synchronization of the
//     paper's testbed. Protocol correctness is independent of the skew
//     (paper §IV), but the PUT clock-wait (Algorithm 2, line 7) is sensitive
//     to it, which the ablation benchmarks exercise.
//
//   - NewHLC returns a hybrid logical/physical clock (Okapi-style, PAPERS.md).
//     Readings pack wall nanoseconds truncated to 1<<vclock.LogicalBits ticks
//     with a logical counter in the low bits, and the clock absorbs every
//     remote timestamp it Observes: a reading is max(masked wall, last+1),
//     which is exactly the HLC local-event rule with logical overflow rolling
//     into the physical component. Under HLCs the PUT clock-wait degenerates
//     to a logical bump, making write latency insensitive to skew.
package clock

import (
	"sync/atomic"
	"time"

	"repro/internal/vclock"
)

// Clock is a monotonically increasing clock with an optional fixed skew. It
// is safe for concurrent use.
type Clock struct {
	epoch  time.Time
	skew   int64 // nanoseconds added to the true time, may be negative
	hybrid bool  // HLC mode: masked physical component + logical low bits
	last   atomic.Uint64
}

// New returns a raw physical clock with the given skew. All clocks created
// from the same process share a wall-clock epoch so their readings are
// comparable, emulating NTP-synchronized machines whose offsets are bounded
// by the skew.
func New(skew time.Duration) *Clock {
	return &Clock{epoch: processEpoch, skew: int64(skew)}
}

// NewHLC returns a hybrid logical/physical clock with the given skew on its
// physical component. Unlike a raw clock it merges every timestamp passed to
// Observe, so a cluster of HLCs rides at the pace of its fastest member and
// timestamp assignment never waits out skew.
func NewHLC(skew time.Duration) *Clock {
	return &Clock{epoch: processEpoch, skew: int64(skew), hybrid: true}
}

// processEpoch anchors all clocks so Timestamps stay small and positive.
var processEpoch = time.Now()

// Hybrid reports whether this is a hybrid logical/physical clock.
func (c *Clock) Hybrid() bool { return c.hybrid }

// Now returns the current timestamp. Successive calls on the same Clock are
// strictly increasing, emulating the paper's assumption that each server's
// physical clock provides monotonically increasing timestamps.
//
// When the wall reading falls at or below the last issued timestamp — clock
// skew, a recovered floor from AdvanceTo, or merged remote time — the next
// timestamp is rebased on the last-issued one (last+1) rather than clamped
// to a constant, so readings keep moving forward from wherever the clock has
// already been. In hybrid mode the wall reading is truncated to the
// 1<<vclock.LogicalBits tick and last+1 increments the logical counter; the
// counter rolls into the physical component on overflow, bounding logical
// drift at one tick (1.024 µs) above the largest physical time the clock has
// seen.
func (c *Clock) Now() vclock.Timestamp {
	raw := time.Since(c.epoch).Nanoseconds() + c.skew
	if raw < 0 {
		raw = 0
	}
	wall := uint64(raw)
	if c.hybrid {
		wall &^= uint64(vclock.LogicalMask)
	}
	for {
		last := c.last.Load()
		t := wall
		if t <= last {
			t = last + 1
		}
		if c.last.CompareAndSwap(last, t) {
			return vclock.Timestamp(t)
		}
	}
}

// AdvanceTo raises the clock floor so every subsequent Now() returns a value
// strictly greater than t. A server that recovers state from a previous
// process calls it with the replayed version-vector floor: recovered
// timestamps are anchored to the previous process's epoch and may sit ahead
// of this process's wall clock, and a new write must never be assigned a
// timestamp below versions that already exist (it would be shadowed by LWW
// and invisible to the catch-up protocol's completion claims).
func (c *Clock) AdvanceTo(t vclock.Timestamp) {
	for {
		last := c.last.Load()
		if uint64(t) <= last {
			return
		}
		if c.last.CompareAndSwap(last, uint64(t)) {
			return
		}
	}
}

// Observe merges a remote timestamp into a hybrid clock: the HLC receive
// rule is max(local, remote), which AdvanceTo implements. On a raw physical
// clock Observe is a no-op — a raw clock reports (skewed) wall time only, so
// the raw-vs-HLC ablation keeps its skew sensitivity.
func (c *Clock) Observe(t vclock.Timestamp) {
	if c.hybrid {
		c.AdvanceTo(t)
	}
}

// SleepUntilAfter blocks until Now() returns a value strictly greater than t.
// It implements the PUT clock-wait: the server must assign the new version a
// timestamp higher than any of its potential dependencies.
//
// A hybrid clock never sleeps: it waits on the hybrid physical component
// only, which Observe has already merged past t's physical part, so bumping
// the logical counter (AdvanceTo + Now) satisfies the ordering requirement
// immediately. This is the Okapi-style fix for skewed-writer PUT latency —
// on raw clocks a writer behind by the skew bound stalls here for up to that
// bound.
func (c *Clock) SleepUntilAfter(t vclock.Timestamp) vclock.Timestamp {
	if c.hybrid {
		c.AdvanceTo(t)
		return c.Now()
	}
	for {
		now := c.Now()
		if now > t {
			return now
		}
		// The gap is bounded by the clock skew between DCs (sub-millisecond
		// to a few milliseconds); poll in small steps.
		gap := time.Duration(t-now) + time.Microsecond
		if gap > time.Millisecond {
			gap = time.Millisecond
		}
		time.Sleep(gap)
	}
}

// Skew returns the configured skew.
func (c *Clock) Skew() time.Duration { return time.Duration(c.skew) }
