// Package clock provides the per-node physical clocks used by the POCC and
// Cure* protocols. Each node owns a Clock that yields monotonically
// increasing physical timestamps. To emulate the loose NTP synchronization of
// the paper's testbed, a Clock can carry a fixed skew offset; protocol
// correctness is independent of the skew (paper §IV), but the PUT clock-wait
// (Algorithm 2, line 7) is sensitive to it, which the ablation benchmarks
// exercise.
package clock

import (
	"sync/atomic"
	"time"

	"repro/internal/vclock"
)

// Clock is a monotonically increasing physical clock with an optional fixed
// skew. It is safe for concurrent use.
type Clock struct {
	epoch time.Time
	skew  int64 // nanoseconds added to the true time, may be negative
	last  atomic.Uint64
}

// New returns a clock with the given skew. All clocks created from the same
// process share a wall-clock epoch so their readings are comparable, emulating
// NTP-synchronized machines whose offsets are bounded by the skew.
func New(skew time.Duration) *Clock {
	return &Clock{epoch: processEpoch, skew: int64(skew)}
}

// processEpoch anchors all clocks so Timestamps stay small and positive.
var processEpoch = time.Now()

// Now returns the current timestamp. Successive calls on the same Clock are
// strictly increasing, emulating the paper's assumption that each server's
// physical clock provides monotonically increasing timestamps.
func (c *Clock) Now() vclock.Timestamp {
	raw := time.Since(c.epoch).Nanoseconds() + c.skew
	if raw < 1 {
		raw = 1
	}
	t := uint64(raw)
	for {
		last := c.last.Load()
		if t <= last {
			t = last + 1
		}
		if c.last.CompareAndSwap(last, t) {
			return vclock.Timestamp(t)
		}
	}
}

// AdvanceTo raises the clock floor so every subsequent Now() returns a value
// strictly greater than t. A server that recovers state from a previous
// process calls it with the replayed version-vector floor: recovered
// timestamps are anchored to the previous process's epoch and may sit ahead
// of this process's wall clock, and a new write must never be assigned a
// timestamp below versions that already exist (it would be shadowed by LWW
// and invisible to the catch-up protocol's completion claims).
func (c *Clock) AdvanceTo(t vclock.Timestamp) {
	for {
		last := c.last.Load()
		if uint64(t) <= last {
			return
		}
		if c.last.CompareAndSwap(last, uint64(t)) {
			return
		}
	}
}

// SleepUntilAfter blocks until Now() returns a value strictly greater than t.
// It implements the PUT clock-wait: the server must assign the new version a
// timestamp higher than any of its potential dependencies.
func (c *Clock) SleepUntilAfter(t vclock.Timestamp) vclock.Timestamp {
	for {
		now := c.Now()
		if now > t {
			return now
		}
		// The gap is bounded by the clock skew between DCs (sub-millisecond
		// to a few milliseconds); poll in small steps.
		gap := time.Duration(t-now) + time.Microsecond
		if gap > time.Millisecond {
			gap = time.Millisecond
		}
		time.Sleep(gap)
	}
}

// Skew returns the configured skew.
func (c *Clock) Skew() time.Duration { return time.Duration(c.skew) }
