package kvserver

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	occ "repro"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	store, err := occ.Open(occ.Config{
		DataCenters: 2, Partitions: 2, Engine: occ.POCC,
		Latency: occ.UniformProfile(20*time.Microsecond, 500*time.Microsecond),
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(store, "127.0.0.1", 0)
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})
	return srv
}

func dial(t *testing.T, srv *Server, dc int) *Client {
	t.Helper()
	c, err := Dial(srv.Addr(dc))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestPingPutGet(t *testing.T) {
	srv := testServer(t)
	c := dial(t, srv, 0)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("lang", "go"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("lang")
	if err != nil || !ok || v != "go" {
		t.Fatalf("get = %q ok=%v err=%v", v, ok, err)
	}
}

func TestGetMissing(t *testing.T) {
	srv := testServer(t)
	c := dial(t, srv, 0)
	_, ok, err := c.Get("nope")
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestValueWithSpaces(t *testing.T) {
	srv := testServer(t)
	c := dial(t, srv, 0)
	if err := c.Put("quote", "hello causal world"); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := c.Get("quote")
	if !ok || v != "hello causal world" {
		t.Fatalf("got %q", v)
	}
}

func TestTx(t *testing.T) {
	srv := testServer(t)
	c := dial(t, srv, 0)
	if err := c.Put("a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("b", "2"); err != nil {
		t.Fatal(err)
	}
	vals, err := c.Tx("a", "b", "ghost")
	if err != nil {
		t.Fatal(err)
	}
	if vals["a"] != "1" || vals["b"] != "2" {
		t.Fatalf("tx = %v", vals)
	}
	if _, present := vals["ghost"]; present {
		t.Fatal("missing key must be absent from the result")
	}
}

func TestCrossDCSessions(t *testing.T) {
	srv := testServer(t)
	writer := dial(t, srv, 0)
	reader := dial(t, srv, 1)
	if err := writer.Put("geo", "replicated"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, ok, err := reader.Get("geo")
		if err != nil {
			t.Fatal(err)
		}
		if ok && v == "replicated" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("write never visible in the other DC")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStats(t *testing.T) {
	srv := testServer(t)
	c := dial(t, srv, 0)
	if err := c.Put("s", "1"); err != nil {
		t.Fatal(err)
	}
	line, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "STATS ops=") {
		t.Fatalf("stats = %q", line)
	}
}

// rawConn exercises the wire protocol directly (errors, QUIT, unknown).
func rawConn(t *testing.T, srv *Server) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", srv.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn, bufio.NewReader(conn)
}

func sendLine(t *testing.T, conn net.Conn, r *bufio.Reader, line string) string {
	t.Helper()
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		t.Fatal(err)
	}
	resp, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimRight(resp, "\n")
}

func TestProtocolErrors(t *testing.T) {
	srv := testServer(t)
	conn, r := rawConn(t, srv)
	for line, wantPrefix := range map[string]string{
		"PUT onlykey":   "ERR usage: PUT",
		"GET":           "ERR usage: GET",
		"GET two words": "ERR usage: GET",
		"TX":            "ERR usage: TX",
		"WHEREIS":       "ERR usage: WHEREIS",
		"FLY me":        "ERR unknown command",
	} {
		if resp := sendLine(t, conn, r, line); !strings.HasPrefix(resp, wantPrefix) {
			t.Fatalf("%q -> %q, want prefix %q", line, resp, wantPrefix)
		}
	}
}

func TestWhereis(t *testing.T) {
	srv := testServer(t)
	conn, r := rawConn(t, srv)
	resp := sendLine(t, conn, r, "WHEREIS somekey")
	if !strings.HasPrefix(resp, "PARTITION ") {
		t.Fatalf("whereis = %q", resp)
	}
}

func TestQuitClosesConnection(t *testing.T) {
	srv := testServer(t)
	conn, r := rawConn(t, srv)
	if resp := sendLine(t, conn, r, "QUIT"); resp != "BYE" {
		t.Fatalf("quit = %q", resp)
	}
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("connection must be closed after QUIT")
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	srv := testServer(t)
	conn, r := rawConn(t, srv)
	srv.Close()
	if _, err := fmt.Fprintf(conn, "PING\n"); err == nil {
		if _, err := r.ReadString('\n'); err == nil {
			t.Fatal("connection must be closed by server shutdown")
		}
	}
}

func TestCausalChainOverWire(t *testing.T) {
	srv := testServer(t)
	alice := dial(t, srv, 0)
	bob := dial(t, srv, 1)
	if err := alice.Put("photo", "cat.jpg"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Put("comment", "cute!"); err != nil {
		t.Fatal(err)
	}
	// Once Bob sees the comment, the photo must be visible too (Bob's
	// session carries the comment's dependency vector).
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, ok, err := bob.Get("comment")
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("comment never replicated")
		}
		time.Sleep(time.Millisecond)
	}
	v, ok, err := bob.Get("photo")
	if err != nil || !ok || v != "cat.jpg" {
		t.Fatalf("photo = %q ok=%v err=%v: causality violated over the wire", v, ok, err)
	}
}

// TestJoinLeaveAdminCommands drives the elastic-membership surface over the
// wire: JOIN grows the deployment (the new DC bootstraps from the existing
// WALs and gets its own listener), the new port serves the pre-join data,
// and LEAVE retires the DC again.
func TestJoinLeaveAdminCommands(t *testing.T) {
	store, err := occ.Open(occ.Config{
		DataCenters: 2, Partitions: 2, Engine: occ.POCC,
		MaxDataCenters: 3,
		DataDir:        t.TempDir(),
		Seed:           9,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(store, "127.0.0.1", 0)
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})

	admin := dial(t, srv, 0)
	if err := admin.Put("greeting", "hello"); err != nil {
		t.Fatal(err)
	}

	dc, addr, err := admin.Join()
	if err != nil {
		t.Fatal(err)
	}
	if dc != 2 || addr == "" || srv.Addr(dc) != addr {
		t.Fatalf("JOIN returned dc=%d addr=%q (server says %q)", dc, addr, srv.Addr(dc))
	}

	joined, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = joined.Close() })
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, ok, err := joined.Get("greeting")
		if err != nil {
			t.Fatal(err)
		}
		if ok && v == "hello" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("joined DC never served the pre-join key (got %q ok=%v)", v, ok)
		}
		time.Sleep(time.Millisecond)
	}

	stats, err := admin.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "dcs=3") || !strings.Contains(stats, "link_lag_ms=") {
		t.Fatalf("stats line missing membership fields: %q", stats)
	}

	if err := admin.Leave(dc); err != nil {
		t.Fatal(err)
	}
	if srv.Addr(dc) != "" {
		t.Fatalf("departed DC still has listener %q", srv.Addr(dc))
	}
	if err := admin.Leave(dc); err == nil {
		t.Fatal("double LEAVE must fail")
	}
	// The survivors keep serving.
	if v, ok, err := admin.Get("greeting"); err != nil || !ok || v != "hello" {
		t.Fatalf("survivor get = %q ok=%v err=%v", v, ok, err)
	}
}

// readSlots sends SLOTS and reads the multi-line reply: the header plus
// every SLOT line through SLOTEND.
func readSlots(t *testing.T, conn net.Conn, r *bufio.Reader) (header string, slotLines []string) {
	t.Helper()
	if _, err := fmt.Fprintf(conn, "SLOTS\n"); err != nil {
		t.Fatal(err)
	}
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	header = strings.TrimRight(line, "\n")
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimRight(line, "\n")
		if line == "SLOTEND" {
			return header, slotLines
		}
		slotLines = append(slotLines, line)
	}
}

func TestSplitAndSlotsAdminCommands(t *testing.T) {
	store, err := occ.Open(occ.Config{
		DataCenters: 2, Partitions: 2, Engine: occ.POCC,
		MaxPartitions: 3,
		Seed:          13,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(store, "127.0.0.1", 0)
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})

	admin := dial(t, srv, 0)
	keys := make([]string, 24)
	for i := range keys {
		keys[i] = fmt.Sprintf("reshard-%d", i)
		if err := admin.Put(keys[i], "v"); err != nil {
			t.Fatal(err)
		}
	}

	conn, r := rawConn(t, srv)
	// Before any reshard the layout is implicit: epoch 0, no SLOT lines.
	header, lines := readSlots(t, conn, r)
	if header != "SLOTS epoch=0 parts=2" || len(lines) != 0 {
		t.Fatalf("slots before split = %q %v", header, lines)
	}

	if resp := sendLine(t, conn, r, "SPLIT 0"); resp != "SPLITDONE 2" {
		t.Fatalf("split = %q", resp)
	}
	if got := store.Partitions(); got != 3 {
		t.Fatalf("partitions = %d after split, want 3", got)
	}

	// The installed table renders one SLOT line per partition and every
	// partition owns at least one slot.
	header, lines = readSlots(t, conn, r)
	if header != "SLOTS epoch=1 parts=3" {
		t.Fatalf("slots header = %q", header)
	}
	if len(lines) != 3 {
		t.Fatalf("slot lines = %v, want 3", lines)
	}
	for p, line := range lines {
		if !strings.HasPrefix(line, fmt.Sprintf("SLOT %d ", p)) {
			t.Fatalf("slot line %d = %q", p, line)
		}
	}

	// STATS surfaces the live layout.
	stats, err := admin.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "partitions=3") || !strings.Contains(stats, "slot_epoch=1") {
		t.Fatalf("stats missing layout fields: %q", stats)
	}

	// Every pre-split key is still served, now through the wider layout.
	for _, k := range keys {
		if v, ok, err := admin.Get(k); err != nil || !ok || v != "v" {
			t.Fatalf("get %q after split = %q ok=%v err=%v", k, v, ok, err)
		}
	}

	// MOVESLOTS reassigns an explicit range and bumps the epoch; WHEREIS
	// agrees with the table afterwards.
	tbl := store.SlotTable()
	owned := tbl.SlotsOwnedBy(0)
	if len(owned) == 0 {
		t.Fatal("partition 0 owns nothing after split")
	}
	moveCmd := "MOVESLOTS 1"
	for _, sl := range owned[:2] {
		moveCmd += fmt.Sprintf(" %d", sl)
	}
	if resp := sendLine(t, conn, r, moveCmd); resp != "MOVED 2 1" {
		t.Fatalf("moveslots = %q", resp)
	}
	if got := store.SlotTable().Epoch; got != 2 {
		t.Fatalf("slot epoch = %d after move, want 2", got)
	}
	resp := sendLine(t, conn, r, "WHEREIS "+keys[0])
	wantP := store.PartitionOf(keys[0])
	if !strings.HasPrefix(resp, fmt.Sprintf("PARTITION %d", wantP)) {
		t.Fatalf("whereis %q = %q, want partition %d", keys[0], resp, wantP)
	}

	// Bad arguments are usage errors, not table mutations.
	if resp := sendLine(t, conn, r, "SPLIT"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("bare SPLIT = %q", resp)
	}
	if resp := sendLine(t, conn, r, "MOVESLOTS 1"); !strings.HasPrefix(resp, "ERR usage: MOVESLOTS") {
		t.Fatalf("bare MOVESLOTS = %q", resp)
	}
}
