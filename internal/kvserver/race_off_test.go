//go:build !race

package kvserver

// raceEnabled reports whether the race detector is instrumenting this build.
// Timing-sensitive assertions skip under -race: instrumentation slows the
// concurrent pipelined path far more than the synchronous text baseline, so
// the throughput ratio stops measuring the protocol.
const raceEnabled = false
