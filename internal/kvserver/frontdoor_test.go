package kvserver

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	occ "repro"
	"repro/internal/client"
)

func testPool(t *testing.T, srv *Server, dc, conns int) *client.Pool {
	t.Helper()
	pool, err := client.DialPool(client.PoolConfig{Addr: srv.Addr(dc), Conns: conns})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	return pool
}

func TestFrontDoorBasicOps(t *testing.T) {
	srv := testServer(t)
	pool := testPool(t, srv, 0, 2)
	sess := pool.Session()

	if err := sess.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Put("lang", []byte("go")); err != nil {
		t.Fatal(err)
	}
	v, err := sess.Get("lang")
	if err != nil || string(v) != "go" {
		t.Fatalf("get = %q err=%v", v, err)
	}
	if v, err := sess.Get("ghost"); err != nil || v != nil {
		t.Fatalf("missing key = %q err=%v", v, err)
	}
	if err := sess.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	vals, err := sess.ROTx([]string{"lang", "b", "ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if string(vals["lang"]) != "go" || string(vals["b"]) != "2" || vals["ghost"] != nil {
		t.Fatalf("rotx = %v", vals)
	}
	stats, err := sess.Stats()
	if err != nil || !strings.HasPrefix(stats, "STATS ") {
		t.Fatalf("stats = %q err=%v", stats, err)
	}
	where, err := sess.Admin("WHEREIS lang")
	if err != nil || !strings.HasPrefix(where, "PARTITION ") {
		t.Fatalf("whereis = %q err=%v", where, err)
	}
	slots, err := sess.Admin("SLOTS")
	if err != nil || !strings.HasPrefix(slots, "SLOTS ") || !strings.HasSuffix(slots, "SLOTEND") {
		t.Fatalf("slots = %q err=%v", slots, err)
	}
	// Data commands are not admin commands: the allow-list rejects them.
	if _, err := sess.Admin("PUT sneaky path"); err == nil {
		t.Fatal("admin PUT must be rejected")
	}
}

// TestFrontDoorSessionOrder pipelines PUT then GET of the same key on one
// session without waiting in between: FIFO execution within a session means
// the GET must observe the PUT.
func TestFrontDoorSessionOrder(t *testing.T) {
	srv := testServer(t)
	pool := testPool(t, srv, 0, 1)
	sess := pool.Session()
	var gets []*client.Call
	for i := 0; i < 50; i++ {
		sess.PutAsync(fmt.Sprintf("ord%d", i), []byte(fmt.Sprintf("v%d", i)))
		gets = append(gets, sess.GetAsync(fmt.Sprintf("ord%d", i)))
	}
	for i, g := range gets {
		resp, err := g.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Exists || string(resp.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %d = %q exists=%v", i, resp.Value, resp.Exists)
		}
	}
}

// TestFrontDoorLargeValue pushes a value far past the text protocol's
// initial 64 KiB scanner buffer through the binary path.
func TestFrontDoorLargeValue(t *testing.T) {
	srv := testServer(t)
	pool := testPool(t, srv, 0, 1)
	sess := pool.Session()
	big := bytes.Repeat([]byte("x"), 200*1024)
	if err := sess.Put("big", big); err != nil {
		t.Fatal(err)
	}
	v, err := sess.Get("big")
	if err != nil || !bytes.Equal(v, big) {
		t.Fatalf("big value corrupted: len=%d err=%v", len(v), err)
	}
}

// TestTextLargeValueAndTooLongLine is the satellite regression test: a
// >64 KiB value works on the text protocol (the scanner's buffer grows to
// maxTextLine), and a line past maxTextLine draws an explicit "ERR too
// long" reply instead of a silently dropped connection.
func TestTextLargeValueAndTooLongLine(t *testing.T) {
	srv := testServer(t)
	c := dial(t, srv, 0)
	big := strings.Repeat("y", 100*1024)
	if err := c.Put("big", big); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("big")
	if err != nil || !ok || v != big {
		t.Fatalf("big text value corrupted: len=%d ok=%v err=%v", len(v), ok, err)
	}

	tooLong := dial(t, srv, 0)
	err = tooLong.Put("big", strings.Repeat("z", maxTextLine+16))
	if err == nil || !strings.Contains(err.Error(), "too long") {
		t.Fatalf("oversized line: err=%v, want ERR too long", err)
	}
}

// TestFrontDoorBlockedGetDoesNotStallPipeline is the tentpole's
// deterministic no-head-of-line-blocking test. Partition 0's replication
// between the DCs is cut, a DC0 session writes kA (partition 0) then kB
// (partition 1), and a DC1 session that has read kB — whose dependencies
// include kA — issues a GET for kA: the server parks it in waitVV until
// DC1's partition 0 catches up, which cannot happen until the link heals.
// A second session pipelined on the SAME connection must complete dozens of
// operations while that GET stays parked; only healing the link releases it.
func TestFrontDoorBlockedGetDoesNotStallPipeline(t *testing.T) {
	store, err := occ.Open(occ.Config{
		DataCenters: 2, Partitions: 2, Engine: occ.POCC,
		Latency: occ.UniformProfile(20*time.Microsecond, 500*time.Microsecond),
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(store, "127.0.0.1", 0)
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); store.Close() })

	kA, kB := "", ""
	for i := 0; kA == "" || kB == ""; i++ {
		k := fmt.Sprintf("key%d", i)
		if store.PartitionOf(k) == 0 && kA == "" {
			kA = k
		}
		if store.PartitionOf(k) == 1 && kB == "" {
			kB = k
		}
	}
	// Cut partition 0 between the DCs, then write kA -> kB causally: kB
	// replicates, kA cannot.
	store.PartitionReplication(0, 1, 0, true)
	w, err := store.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put(kA, []byte("a1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Put(kB, []byte("b1")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		fresh, err := store.Session(1)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := fresh.Get(kB); err != nil {
			t.Fatal(err)
		} else if string(v) == "b1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("kB never replicated to DC1")
		}
		time.Sleep(time.Millisecond)
	}

	// One connection, two sessions: the blocked GET and the bystanders
	// share a socket.
	pool := testPool(t, srv, 1, 1)
	s1, s2 := pool.Session(), pool.Session()
	if v, err := s1.Get(kB); err != nil || string(v) != "b1" {
		t.Fatalf("s1 read kB = %q err=%v", v, err)
	}
	blocked := s1.GetAsync(kA) // parks in waitVV server-side

	// Dozens of round trips on s2 complete while s1's GET stays parked.
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("bystander%d", i)
		if err := s2.Put(k, []byte("ok")); err != nil {
			t.Fatal(err)
		}
		if v, err := s2.Get(k); err != nil || string(v) != "ok" {
			t.Fatalf("bystander get = %q err=%v", v, err)
		}
	}
	select {
	case <-blocked.Done():
		resp, err := blocked.Wait()
		t.Fatalf("blocked GET completed before the link healed: %+v err=%v", resp, err)
	default:
	}

	store.PartitionReplication(0, 1, 0, false) // heal: held messages deliver
	resp, err := blocked.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Exists || string(resp.Value) != "a1" {
		t.Fatalf("blocked GET = %q exists=%v", resp.Value, resp.Exists)
	}
}

// TestFrontDoorUnderChurn drives pipelined pooled clients through a
// concurrent partition split and server restarts — the race-frontdoor
// workload. Sessions must keep their read-your-writes guarantee across the
// churn; transient ErrStopped from a restarting server is the only
// tolerated failure.
func TestFrontDoorUnderChurn(t *testing.T) {
	store, err := occ.Open(occ.Config{
		DataCenters: 2, Partitions: 2, Engine: occ.POCC,
		DataDir: t.TempDir(), NoSync: true, AckMode: occ.AckGrouped,
		MaxPartitions: 4,
		Latency:       occ.UniformProfile(20*time.Microsecond, 500*time.Microsecond),
		Seed:          13,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(store, "127.0.0.1", 0)
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); store.Close() })

	pool := testPool(t, srv, 0, 2)
	const workers, opsPer = 4, 60
	done := make(chan error, workers)
	for g := 0; g < workers; g++ {
		go func(id int) {
			sess := pool.Session()
			for i := 0; i < opsPer; i++ {
				key := fmt.Sprintf("churn%d-%d", id, i)
				val := []byte(fmt.Sprintf("v%d-%d", id, i))
				for {
					err := sess.Put(key, val)
					if err == nil {
						break
					}
					if errors.Is(err, occ.ErrStopped) {
						time.Sleep(time.Millisecond)
						continue
					}
					done <- fmt.Errorf("put %s: %w", key, err)
					return
				}
				for {
					v, err := sess.Get(key)
					if err == nil {
						if string(v) != string(val) {
							done <- fmt.Errorf("get %s = %q, want %q", key, v, val)
							return
						}
						break
					}
					if errors.Is(err, occ.ErrStopped) {
						time.Sleep(time.Millisecond)
						continue
					}
					done <- fmt.Errorf("get %s: %w", key, err)
					return
				}
			}
			done <- nil
		}(g)
	}

	if _, err := store.SplitPartition(0); err != nil {
		t.Errorf("split: %v", err)
	}
	if err := store.RestartServer(0, 1); err != nil {
		t.Errorf("restart dc0-p1: %v", err)
	}
	if err := store.RestartServer(1, 0); err != nil {
		t.Errorf("restart dc1-p0: %v", err)
	}

	for g := 0; g < workers; g++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(2 * time.Minute):
			t.Fatal("churn workers timed out")
		}
	}
}
