//go:build race

package kvserver

// raceEnabled reports whether the race detector is instrumenting this build.
const raceEnabled = true
