// Package kvserver exposes a running occ.Store over a plain text TCP
// protocol, one listener per data center, so external clients (telnet, the
// pocccli binary, or any language) can use the store without linking Go
// code. Every connection gets its own client session bound to the
// listener's data center, matching the paper's model of clients attached to
// one DC.
//
// Protocol (one request per line, responses line-oriented):
//
//	PING                      -> PONG
//	PUT <key> <value>         -> OK
//	GET <key>                 -> VALUE <value> | NIL
//	TX <key> [key...]         -> TXVAL <key> <value> | TXNIL <key> (one per
//	                             key, any order) then TXEND
//	WHEREIS <key>             -> PARTITION <n> (the key's current owner —
//	                             slot-table routing after a reshard)
//	STATS                     -> STATS ops=<n> blocked=<n> ...
//	SPLIT <partition>         -> SPLITDONE <new-partition> (admin: grow every
//	                             DC by one partition server; half the donor's
//	                             hash slots move to it, history migrates,
//	                             routing flips — needs -max-partitions
//	                             headroom)
//	MOVESLOTS <to> <slot...>  -> MOVED <n> <to> (admin: reassign hash slots
//	                             to an existing partition, migrating their
//	                             history first)
//	SLOTS                     -> SLOTS epoch=<e> parts=<n> then one line
//	                             "SLOT <owner> <slots...>" per partition,
//	                             then SLOTEND (the current routing table;
//	                             epoch 0 = static hash layout)
//	JOIN                      -> JOINED <dc> <addr> (admin: grow the
//	                             deployment by one DC; the new DC boots,
//	                             catches up from its siblings' WALs, and
//	                             gets its own listener)
//	LEAVE <dc>                -> LEFT <dc> (admin: remove a DC; its history
//	                             stays on the survivors)
//	EVICT <dc>                -> EVICTED <dc> (admin: forcibly remove a
//	                             crashed DC; the survivors agree on its final
//	                             replicated timestamps and resume)
//	QUIT                      -> BYE (server closes the connection)
//
// Errors are reported as "ERR <message>". Keys must not contain spaces;
// values may (everything after the key is the value).
package kvserver

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	occ "repro"
	"repro/internal/wire"
)

// Server serves a store over TCP.
type Server struct {
	store    *occ.Store
	host     string
	basePort int

	mu        sync.Mutex
	listeners []net.Listener // indexed by DC; nil for departed DCs
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// Serve binds one listener per data center on consecutive ports starting at
// basePort ("host:0" semantics are supported by passing basePort 0, in which
// case each DC gets an ephemeral port). It returns once all listeners are
// bound; handling runs in the background until Close. Data centers joined
// later (the JOIN admin command, or Store.AddDataCenter followed by
// ServeDC) get the next consecutive port.
func Serve(store *occ.Store, host string, basePort int) (*Server, error) {
	s := &Server{store: store, host: host, basePort: basePort, conns: make(map[net.Conn]struct{})}
	for dc := 0; dc < store.DataCenters(); dc++ {
		if _, err := s.ServeDC(dc); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// ServeDC binds the listener for one data center (basePort+dc, or an
// ephemeral port with basePort 0) and starts accepting connections on it.
// It returns the bound address, and is idempotent: a DC that is already
// served keeps its listener.
func (s *Server) ServeDC(dc int) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", errors.New("kvserver: server closed")
	}
	for len(s.listeners) <= dc {
		s.listeners = append(s.listeners, nil)
	}
	if l := s.listeners[dc]; l != nil {
		return l.Addr().String(), nil
	}
	port := 0
	if s.basePort != 0 {
		port = s.basePort + dc
	}
	l, err := net.Listen("tcp", fmt.Sprintf("%s:%d", s.host, port))
	if err != nil {
		return "", fmt.Errorf("kvserver: bind dc%d: %w", dc, err)
	}
	s.listeners[dc] = l
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(dc, l)
	}()
	return l.Addr().String(), nil
}

// Addr returns the listen address for a data center ("" for a departed or
// unserved DC).
func (s *Server) Addr(dc int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if dc < 0 || dc >= len(s.listeners) || s.listeners[dc] == nil {
		return ""
	}
	return s.listeners[dc].Addr().String()
}

// Close stops the listeners and closes every open connection.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	listeners := append([]net.Listener(nil), s.listeners...)
	s.mu.Unlock()
	for _, l := range listeners {
		if l != nil {
			_ = l.Close()
		}
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop(dc int, l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(dc, conn)
		}()
	}
}

// maxTextLine bounds one text-protocol line. A longer line gets an "ERR too
// long" reply (and then loses the connection: the scanner cannot resync
// mid-token). Values beyond this belong on the binary front door, whose
// frames go up to wire.MaxFrontDoorFrame.
const maxTextLine = 1024 * 1024

func (s *Server) handleConn(dc int, conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// Negotiate the protocol on the first byte: wire.FrontDoorMagic selects
	// the binary pipelined front door, anything else (printable ASCII) is a
	// legacy text-protocol line.
	br := bufio.NewReader(conn)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == wire.FrontDoorMagic {
		_, _ = br.ReadByte()
		s.handleBinaryConn(dc, conn, br)
		return
	}
	sess, err := s.store.Session(dc)
	w := bufio.NewWriter(conn)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		_ = w.Flush()
		return
	}
	scanner := bufio.NewScanner(br)
	scanner.Buffer(make([]byte, 64*1024), maxTextLine)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		quit := s.handleLine(w, sess, line)
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
	// A line past maxTextLine used to kill the connection silently; tell the
	// client what happened before hanging up.
	if errors.Is(scanner.Err(), bufio.ErrTooLong) {
		fmt.Fprintln(w, "ERR too long")
		_ = w.Flush()
	}
}

// handleLine executes one protocol line; it returns true when the
// connection should close.
func (s *Server) handleLine(w *bufio.Writer, sess *occ.Session, line string) bool {
	cmd, rest, _ := strings.Cut(line, " ")
	switch strings.ToUpper(cmd) {
	case "PING":
		fmt.Fprintln(w, "PONG")
	case "PUT":
		key, value, ok := strings.Cut(rest, " ")
		if !ok || key == "" {
			fmt.Fprintln(w, "ERR usage: PUT <key> <value>")
			return false
		}
		if err := sess.Put(key, []byte(value)); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		fmt.Fprintln(w, "OK")
	case "GET":
		key := strings.TrimSpace(rest)
		if key == "" || strings.ContainsRune(key, ' ') {
			fmt.Fprintln(w, "ERR usage: GET <key>")
			return false
		}
		v, err := sess.Get(key)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		if v == nil {
			fmt.Fprintln(w, "NIL")
		} else {
			fmt.Fprintf(w, "VALUE %s\n", v)
		}
	case "TX":
		keys := strings.Fields(rest)
		if len(keys) == 0 {
			fmt.Fprintln(w, "ERR usage: TX <key> [key...]")
			return false
		}
		vals, err := sess.ROTx(keys)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		for _, k := range keys {
			if vals[k] == nil {
				fmt.Fprintf(w, "TXNIL %s\n", k)
			} else {
				fmt.Fprintf(w, "TXVAL %s %s\n", k, vals[k])
			}
		}
		fmt.Fprintln(w, "TXEND")
	case "WHEREIS":
		key := strings.TrimSpace(rest)
		if key == "" {
			fmt.Fprintln(w, "ERR usage: WHEREIS <key>")
			return false
		}
		fmt.Fprintf(w, "PARTITION %d\n", s.store.PartitionOf(key))
	case "STATS":
		st := s.store.Stats()
		fmt.Fprintf(w, "STATS ops=%d blocked=%d block_prob=%.3e old_pct=%.3f unmerged_pct=%.3f keys=%d versions=%d messages=%d dcs=%d max_lag_ms=%.3f link_lag_ms=%s catchups=%d catchups_served=%d catchups_active=%d full_resyncs=%d links=%s gc_holdback_ms=%.3f fsyncs=%d commit_groups=%d wal_records=%d group_p50=%d group_max=%d ack_lag_mean_us=%.1f ack_lag_max_us=%.1f seek_hits=%d full_scans=%d parts_skipped=%d partitions=%d slot_epoch=%d\n",
			st.Operations, st.BlockedOperations, st.BlockingProbability,
			st.PercentOldReads, st.PercentUnmergedReads, st.Keys, st.Versions, s.store.Messages(),
			s.store.DataCenters(),
			float64(st.MaxReplicationLag())/float64(time.Millisecond),
			formatLinkLag(st.ReplicationLagPerLink),
			st.CatchUps, st.CatchUpsServed, st.CatchUpsActive,
			st.FullResyncs, formatLinkStates(st.LinkStates),
			float64(st.GCHoldbackAge)/float64(time.Millisecond),
			st.Fsyncs, st.CommitGroups, st.WALRecords, st.CommitGroupP50, st.CommitGroupMax,
			float64(st.AckToDurableMean)/float64(time.Microsecond),
			float64(st.AckToDurableMax)/float64(time.Microsecond),
			st.SeekHits, st.FullScans, st.PartsSkipped,
			st.Partitions, st.SlotEpoch)
	case "SPLIT":
		donor, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil {
			fmt.Fprintln(w, "ERR usage: SPLIT <partition>")
			return false
		}
		np, err := s.store.SplitPartition(donor)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		fmt.Fprintf(w, "SPLITDONE %d\n", np)
	case "MOVESLOTS":
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			fmt.Fprintln(w, "ERR usage: MOVESLOTS <to> <slot> [slot...]")
			return false
		}
		to, err := strconv.Atoi(fields[0])
		if err != nil {
			fmt.Fprintln(w, "ERR usage: MOVESLOTS <to> <slot> [slot...]")
			return false
		}
		slots := make([]int, 0, len(fields)-1)
		for _, f := range fields[1:] {
			sl, err := strconv.Atoi(f)
			if err != nil {
				fmt.Fprintf(w, "ERR bad slot %q\n", f)
				return false
			}
			slots = append(slots, sl)
		}
		if err := s.store.MoveSlots(slots, to); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		fmt.Fprintf(w, "MOVED %d %d\n", len(slots), to)
	case "SLOTS":
		tbl := s.store.SlotTable()
		if tbl == nil {
			fmt.Fprintf(w, "SLOTS epoch=0 parts=%d\n", s.store.Partitions())
			fmt.Fprintln(w, "SLOTEND")
			return false
		}
		fmt.Fprintf(w, "SLOTS epoch=%d parts=%d\n", tbl.Epoch, tbl.Parts)
		for p := 0; p < tbl.Parts; p++ {
			owned := tbl.SlotsOwnedBy(p)
			var sb strings.Builder
			for _, sl := range owned {
				fmt.Fprintf(&sb, " %d", sl)
			}
			fmt.Fprintf(w, "SLOT %d%s\n", p, sb.String())
		}
		fmt.Fprintln(w, "SLOTEND")
	case "JOIN":
		dc, err := s.store.AddDataCenter()
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		if err := s.store.WaitForJoin(dc, time.Minute); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		addr, err := s.ServeDC(dc)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		fmt.Fprintf(w, "JOINED %d %s\n", dc, addr)
	case "LEAVE":
		dc, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil {
			fmt.Fprintln(w, "ERR usage: LEAVE <dc>")
			return false
		}
		if err := s.store.RemoveDataCenter(dc); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		s.mu.Lock()
		if dc < len(s.listeners) && s.listeners[dc] != nil {
			_ = s.listeners[dc].Close()
			s.listeners[dc] = nil
		}
		s.mu.Unlock()
		fmt.Fprintf(w, "LEFT %d\n", dc)
	case "EVICT":
		dc, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil {
			fmt.Fprintln(w, "ERR usage: EVICT <dc>")
			return false
		}
		if err := s.store.ForceRemoveDataCenter(dc, 0); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		s.mu.Lock()
		if dc < len(s.listeners) && s.listeners[dc] != nil {
			_ = s.listeners[dc].Close()
			s.listeners[dc] = nil
		}
		s.mu.Unlock()
		fmt.Fprintf(w, "EVICTED %d\n", dc)
	case "QUIT":
		fmt.Fprintln(w, "BYE")
		return true
	default:
		fmt.Fprintf(w, "ERR unknown command %q\n", cmd)
	}
	return false
}

// formatLinkLag renders the per-link lag matrix as "dst<src:ms" pairs for
// every distinct live link, e.g. "0<1:0.012,0<2:0.034,1<0:0.008". A "-"
// stands for a deployment with no remote links.
func formatLinkLag(lag [][]time.Duration) string {
	var sb strings.Builder
	for dst, row := range lag {
		for src, l := range row {
			if src == dst {
				continue
			}
			if sb.Len() > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d<%d:%.3f", dst, src, float64(l)/float64(time.Millisecond))
		}
	}
	if sb.Len() == 0 {
		return "-"
	}
	return sb.String()
}

// formatLinkStates renders the link-health matrix as "dst<src:state" pairs
// for every distinct link, e.g. "0<1:active,1<0:frozen". A "-" stands for a
// deployment with no remote links.
func formatLinkStates(states [][]string) string {
	var sb strings.Builder
	for dst, row := range states {
		for src, st := range row {
			if src == dst || st == "" || st == "self" {
				continue
			}
			if sb.Len() > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d<%d:%s", dst, src, st)
		}
	}
	if sb.Len() == 0 {
		return "-"
	}
	return sb.String()
}

// Client is a minimal client for the kvserver protocol, used by tests and
// cmd/pocccli.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a kvserver listener.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kvserver: dial: %w", err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req string) (string, error) {
	if _, err := fmt.Fprintf(c.conn, "%s\n", req); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\n"), nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	resp, err := c.roundTrip("PING")
	if err != nil {
		return err
	}
	if resp != "PONG" {
		return fmt.Errorf("kvserver: unexpected ping reply %q", resp)
	}
	return nil
}

// Put writes a key.
func (c *Client) Put(key, value string) error {
	resp, err := c.roundTrip("PUT " + key + " " + value)
	if err != nil {
		return err
	}
	if resp != "OK" {
		return errors.New(resp)
	}
	return nil
}

// Get reads a key; ok is false when the key has no visible version.
func (c *Client) Get(key string) (value string, ok bool, err error) {
	resp, err := c.roundTrip("GET " + key)
	if err != nil {
		return "", false, err
	}
	switch {
	case resp == "NIL":
		return "", false, nil
	case strings.HasPrefix(resp, "VALUE "):
		return strings.TrimPrefix(resp, "VALUE "), true, nil
	default:
		return "", false, errors.New(resp)
	}
}

// Tx runs a read-only transaction; missing keys are absent from the map.
func (c *Client) Tx(keys ...string) (map[string]string, error) {
	if _, err := fmt.Fprintf(c.conn, "TX %s\n", strings.Join(keys, " ")); err != nil {
		return nil, err
	}
	out := make(map[string]string, len(keys))
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "TXEND":
			return out, nil
		case strings.HasPrefix(line, "TXVAL "):
			kv := strings.TrimPrefix(line, "TXVAL ")
			k, v, _ := strings.Cut(kv, " ")
			out[k] = v
		case strings.HasPrefix(line, "TXNIL "):
			// missing key: leave it out of the map
		default:
			return nil, errors.New(line)
		}
	}
}

// Stats returns the raw stats line.
func (c *Client) Stats() (string, error) { return c.roundTrip("STATS") }

// Join grows the deployment by one data center and returns its id and
// listen address. It blocks until the new DC has bootstrapped.
func (c *Client) Join() (dc int, addr string, err error) {
	resp, err := c.roundTrip("JOIN")
	if err != nil {
		return 0, "", err
	}
	var rest string
	ok := strings.HasPrefix(resp, "JOINED ")
	if ok {
		rest = strings.TrimPrefix(resp, "JOINED ")
		dcStr, addrStr, found := strings.Cut(rest, " ")
		if found {
			if dc, err = strconv.Atoi(dcStr); err == nil {
				return dc, addrStr, nil
			}
		}
	}
	return 0, "", errors.New(resp)
}

// Leave removes a data center from the deployment.
func (c *Client) Leave(dc int) error {
	resp, err := c.roundTrip(fmt.Sprintf("LEAVE %d", dc))
	if err != nil {
		return err
	}
	if resp != fmt.Sprintf("LEFT %d", dc) {
		return errors.New(resp)
	}
	return nil
}

// Evict forcibly removes a crashed data center: the survivors agree on its
// final replicated timestamps and drop it from the membership.
func (c *Client) Evict(dc int) error {
	resp, err := c.roundTrip(fmt.Sprintf("EVICT %d", dc))
	if err != nil {
		return err
	}
	if resp != fmt.Sprintf("EVICTED %d", dc) {
		return errors.New(resp)
	}
	return nil
}
