package kvserver

import (
	"fmt"
	"sync"
	"testing"
	"time"

	occ "repro"
	"repro/internal/client"
)

// benchServer opens a small deployment behind a kvserver listener. The mix
// everywhere below is the paper's 32:1 GET:PUT ratio on a pre-populated
// keyspace.
func benchServer(tb testing.TB) *Server {
	tb.Helper()
	store, err := occ.Open(occ.Config{
		DataCenters: 2, Partitions: 4, Engine: occ.POCC,
		Latency: occ.UniformProfile(20*time.Microsecond, 500*time.Microsecond),
		Seed:    17,
	})
	if err != nil {
		tb.Fatal(err)
	}
	srv, err := Serve(store, "127.0.0.1", 0)
	if err != nil {
		store.Close()
		tb.Fatal(err)
	}
	tb.Cleanup(func() { srv.Close(); store.Close() })

	seed, err := store.Session(0)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < benchKeys; i++ {
		if err := seed.Put(benchKey(i), []byte("seed-value")); err != nil {
			tb.Fatal(err)
		}
	}
	return srv
}

const benchKeys = 1024

// benchKeySet is precomputed so key formatting stays out of the measured
// loops on both protocols.
var benchKeySet = func() [benchKeys]string {
	var ks [benchKeys]string
	for i := range ks {
		ks[i] = fmt.Sprintf("bench%d", i)
	}
	return ks
}()

func benchKey(i int) string { return benchKeySet[i%benchKeys] }

// benchOp runs the i-th operation of the 32:1 mix on a synchronous text
// client.
func benchTextOp(c *Client, i int) error {
	if i%33 == 0 {
		return c.Put(benchKey(i), "bench-value")
	}
	_, _, err := c.Get(benchKey(i))
	return err
}

// BenchmarkFrontDoorText is the baseline: the legacy line protocol, one
// blocking round trip per operation on one connection.
func BenchmarkFrontDoorText(b *testing.B) {
	srv := benchServer(b)
	c, err := Dial(srv.Addr(0))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := benchTextOp(c, i); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
}

// runPipelined pushes total operations of the 32:1 mix through `sessions`
// sessions on one pool, each keeping `window` requests in flight, and
// reports how many completed.
func runPipelined(tb testing.TB, pool *client.Pool, sessions, window, total int) {
	tb.Helper()
	var wg sync.WaitGroup
	errc := make(chan error, sessions)
	per := total / sessions
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sess := pool.Session()
			pending := make([]*client.Call, 0, window)
			drain := func(low int) error {
				for len(pending) > low {
					call := pending[0]
					pending = pending[1:]
					if _, err := call.Wait(); err != nil {
						return err
					}
				}
				return nil
			}
			for i := 0; i < per; i++ {
				var call *client.Call
				if i%33 == 0 {
					call = sess.PutAsync(benchKey(id*per+i), []byte("bench-value"))
				} else {
					call = sess.GetAsync(benchKey(id*per + i))
				}
				pending = append(pending, call)
				if len(pending) >= window {
					if err := drain(window / 2); err != nil {
						errc <- err
						return
					}
				}
			}
			errc <- drain(0)
		}(s)
	}
	wg.Wait()
	for s := 0; s < sessions; s++ {
		if err := <-errc; err != nil {
			tb.Fatal(err)
		}
	}
}

// BenchmarkFrontDoorPipelined is the tentpole configuration: ONE connection,
// several sessions multiplexed onto it, each pipelining a window of
// requests. The server completes them out of order across sessions; the
// single writer coalesces the responses.
func BenchmarkFrontDoorPipelined(b *testing.B) {
	srv := benchServer(b)
	pool, err := client.DialPool(client.PoolConfig{Addr: srv.Addr(0), Conns: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	b.ResetTimer()
	start := time.Now()
	runPipelined(b, pool, 8, 64, b.N)
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
}

// BenchmarkFrontDoorPooled is the production shape: a small connection pool
// multiplexing many sessions.
func BenchmarkFrontDoorPooled(b *testing.B) {
	srv := benchServer(b)
	pool, err := client.DialPool(client.PoolConfig{Addr: srv.Addr(0), Conns: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	b.ResetTimer()
	start := time.Now()
	runPipelined(b, pool, 32, 64, b.N)
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
}

// TestFrontDoorPipelinedSpeedup is the acceptance criterion: the pipelined
// binary protocol must sustain at least 5x the text protocol's
// single-connection throughput. Both sides run the same 32:1 mix against
// the same deployment for a fixed wall-clock window; the ratio is
// machine-independent because both numerator and denominator scale with
// the host.
func TestFrontDoorPipelinedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the concurrent/synchronous ratio")
	}
	srv := benchServer(t)

	const window = 400 * time.Millisecond
	c, err := Dial(srv.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	textOps := 0
	for deadline := time.Now().Add(window); time.Now().Before(deadline); textOps++ {
		if err := benchTextOp(c, textOps); err != nil {
			t.Fatal(err)
		}
	}

	pool, err := client.DialPool(client.PoolConfig{Addr: srv.Addr(0), Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	// Calibrate by running the same wall-clock window: issue batches and
	// count completions until the deadline.
	pipeOps := 0
	start := time.Now()
	for time.Since(start) < window {
		const batch = 8 * 1024
		runPipelined(t, pool, 8, 64, batch)
		pipeOps += batch
	}
	elapsed := time.Since(start)

	textRate := float64(textOps) / window.Seconds()
	pipeRate := float64(pipeOps) / elapsed.Seconds()
	t.Logf("text: %.0f ops/s, pipelined: %.0f ops/s, speedup %.2fx",
		textRate, pipeRate, pipeRate/textRate)
	if pipeRate < 5*textRate {
		t.Fatalf("pipelined throughput %.0f ops/s is below 5x text %.0f ops/s",
			pipeRate, textRate)
	}
}
