package kvserver

// The binary front door: the pipelined, multiplexed serving path. A
// connection that opens with wire.FrontDoorMagic carries a stream of
// length-prefixed request frames (see internal/wire/frontdoor.go) instead of
// text lines. Three rules shape the implementation:
//
//  1. Requests of one wire session execute in FIFO order — a session is a
//     single thread of execution in the causality order, so reordering
//     inside a session would break the session guarantees the client
//     depends on. Each session gets its own worker goroutine and queue.
//
//  2. Requests of different sessions complete out of order. A
//     causally-blocked GET (optimistic reads park in waitVV until the local
//     partition's version vector catches up) or a slow RO-TX on one session
//     must not head-of-line-block the pipeline for everyone else. The only
//     cross-session coupling is backpressure: a session whose queue is full
//     (fdSessionQueue outstanding requests) stalls the connection reader
//     until its worker drains.
//
//  3. One writer goroutine owns the socket's write side. Workers hand it
//     finished responses over a channel; it coalesces whatever is ready
//     into a single buffer and issues one write per batch, so a burst of
//     pipelined completions costs one syscall, not one per response.

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	occ "repro"
	"repro/internal/wire"
)

const (
	// fdSessionQueue bounds the per-session request queue. Deep enough that
	// a pipelining client with a few hundred requests in flight never stalls
	// the reader; shallow enough that one runaway session cannot buffer
	// unbounded work.
	fdSessionQueue = 1024
	// fdFlushBytes caps a coalesced write batch. Past this the writer
	// flushes even with more responses queued, bounding response latency
	// under sustained load and the scratch buffer's growth.
	fdFlushBytes = 256 * 1024
)

// fdAdminCommands is the allow-list of text-protocol commands an FDAdmin
// frame may run. They are exactly the commands that never touch a client
// session, so the admin path can reuse handleLine with a nil session.
var fdAdminCommands = map[string]bool{
	"WHEREIS": true, "STATS": true, "SPLIT": true, "MOVESLOTS": true,
	"SLOTS": true, "JOIN": true, "LEAVE": true, "EVICT": true,
}

type fdConn struct {
	s    *Server
	dc   int
	conn net.Conn

	out  chan wire.FrontDoorResponse // workers -> writer
	dead chan struct{}               // closed when the writer dies
	down atomic.Bool                 // set just before dead closes; cheap per-op check

	sessions map[uint64]*fdSession // owned by the reader goroutine
	workers  sync.WaitGroup
}

type fdSession struct {
	sess    *occ.Session
	sessErr error // Session(dc) failure, reported on every request
	in      chan wire.FrontDoorRequest
}

// handleBinaryConn runs one binary front-door connection. The caller has
// consumed the magic byte; br holds the rest of the stream. It returns when
// the read side is done and every in-flight request has been answered or
// abandoned (writer death).
func (s *Server) handleBinaryConn(dc int, conn net.Conn, br *bufio.Reader) {
	fd := &fdConn{
		s: s, dc: dc, conn: conn,
		out:      make(chan wire.FrontDoorResponse, 1024),
		dead:     make(chan struct{}),
		sessions: make(map[uint64]*fdSession),
	}
	var writerDone sync.WaitGroup
	writerDone.Add(1)
	go func() {
		defer writerDone.Done()
		fd.writer()
	}()

	var buf []byte
	for {
		frame, err := wire.ReadFrontDoorFrame(br, buf)
		if err != nil {
			break // EOF or protocol corruption: drop the connection
		}
		buf = frame[:0]
		req, err := wire.DecodeFrontDoorRequest(frame)
		if err != nil {
			break
		}
		if !fd.dispatch(req) {
			break // writer died: no way to answer anything anymore
		}
	}
	for _, ss := range fd.sessions {
		close(ss.in)
	}
	fd.workers.Wait()
	close(fd.out) // writer drains the tail, then exits
	writerDone.Wait()
}

// dispatch routes one request to its session's worker, creating session and
// worker on first use. It reports false when the writer is gone.
func (fd *fdConn) dispatch(req wire.FrontDoorRequest) bool {
	ss := fd.sessions[req.Session]
	if ss == nil {
		ss = &fdSession{in: make(chan wire.FrontDoorRequest, fdSessionQueue)}
		ss.sess, ss.sessErr = fd.s.store.Session(fd.dc)
		fd.sessions[req.Session] = ss
		fd.workers.Add(1)
		go func() {
			defer fd.workers.Done()
			fd.sessionWorker(ss)
		}()
	}
	// Fast path: a non-blocking send skips selectgo entirely; the queue
	// almost always has room. Fall back to the two-way select only when the
	// session's worker is backed up.
	select {
	case ss.in <- req:
		return true
	default:
	}
	select {
	case ss.in <- req:
		return true
	case <-fd.dead:
		return false
	}
}

// sessionWorker executes one session's requests in order.
func (fd *fdConn) sessionWorker(ss *fdSession) {
	for req := range ss.in {
		if fd.down.Load() {
			continue // connection is gone; drain without executing
		}
		resp := fd.execute(ss, &req)
		select {
		case fd.out <- resp: // non-blocking fast path
			continue
		default:
		}
		select {
		case fd.out <- resp:
		case <-fd.dead:
		}
	}
}

// writer owns the socket's write side: it coalesces finished responses into
// one buffer and issues one write per batch. On a write error it closes
// dead (releasing every worker and the reader) and the connection itself,
// so the reader unblocks promptly.
func (fd *fdConn) writer() {
	defer func() {
		fd.down.Store(true)
		close(fd.dead)
	}()
	var scratch []byte
	for resp := range fd.out {
		scratch = wire.AppendFrontDoorResponse(scratch[:0], &resp)
	coalesce:
		for len(scratch) < fdFlushBytes {
			select {
			case more, ok := <-fd.out:
				if !ok {
					break coalesce
				}
				scratch = wire.AppendFrontDoorResponse(scratch, &more)
			default:
				break coalesce
			}
		}
		if _, err := fd.conn.Write(scratch); err != nil {
			_ = fd.conn.Close()
			return
		}
	}
}

// execute runs one request against its session and builds the response.
func (fd *fdConn) execute(ss *fdSession, req *wire.FrontDoorRequest) wire.FrontDoorResponse {
	if ss.sessErr != nil {
		// The session could not be opened — the DC left the deployment (or
		// the store is closing). Permanent for this connection.
		return wire.FrontDoorResponse{
			Kind: wire.FDErr, ID: req.ID,
			Code: wire.FDCodeNoDataCenter, Text: ss.sessErr.Error(),
		}
	}
	switch req.Op {
	case wire.FDPing:
		return wire.FrontDoorResponse{Kind: wire.FDOK, ID: req.ID}
	case wire.FDPut:
		if err := ss.sess.Put(req.Key, req.Value); err != nil {
			return fdError(req.ID, err)
		}
		return wire.FrontDoorResponse{Kind: wire.FDOK, ID: req.ID}
	case wire.FDGet:
		v, err := ss.sess.Get(req.Key)
		if err != nil {
			return fdError(req.ID, err)
		}
		return wire.FrontDoorResponse{
			Kind: wire.FDValue, ID: req.ID, Exists: v != nil, Value: v,
		}
	case wire.FDROTx:
		items := []wire.FrontDoorTxItem{}
		if len(req.Keys) > 0 {
			vals, err := ss.sess.ROTx(req.Keys)
			if err != nil {
				return fdError(req.ID, err)
			}
			items = make([]wire.FrontDoorTxItem, 0, len(req.Keys))
			for _, k := range req.Keys {
				v := vals[k]
				items = append(items, wire.FrontDoorTxItem{
					Key: k, Exists: v != nil, Value: v,
				})
			}
		}
		return wire.FrontDoorResponse{Kind: wire.FDTx, ID: req.ID, Items: items}
	case wire.FDStats:
		return fd.runAdminLine(req.ID, "STATS")
	case wire.FDAdmin:
		cmd, _, _ := strings.Cut(strings.TrimSpace(req.Line), " ")
		if !fdAdminCommands[strings.ToUpper(cmd)] {
			return wire.FrontDoorResponse{
				Kind: wire.FDErr, ID: req.ID, Code: wire.FDCodeGeneric,
				Text: "not an admin command: " + cmd,
			}
		}
		return fd.runAdminLine(req.ID, req.Line)
	default:
		return wire.FrontDoorResponse{
			Kind: wire.FDErr, ID: req.ID, Code: wire.FDCodeGeneric,
			Text: "unknown op",
		}
	}
}

// runAdminLine reuses the text-protocol command dispatch for admin frames:
// the line's text output (possibly multi-line, e.g. SLOTS) becomes an
// FDText payload. Only allow-listed commands reach here, none of which use
// the session argument.
func (fd *fdConn) runAdminLine(id uint64, line string) wire.FrontDoorResponse {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	fd.s.handleLine(w, nil, line)
	_ = w.Flush()
	text := strings.TrimRight(buf.String(), "\n")
	if strings.HasPrefix(text, "ERR ") {
		return wire.FrontDoorResponse{
			Kind: wire.FDErr, ID: id, Code: wire.FDCodeGeneric,
			Text: strings.TrimPrefix(text, "ERR "),
		}
	}
	return wire.FrontDoorResponse{Kind: wire.FDText, ID: id, Text: text}
}

// fdError maps an operation error onto an FDErr response with a
// machine-readable code, so the client pool can reconstruct the canonical
// error value (errors.Is works on the far side) and drive retry policy
// without string matching.
func fdError(id uint64, err error) wire.FrontDoorResponse {
	code := wire.FDCodeGeneric
	switch {
	case errors.Is(err, occ.ErrWrongSlotEpoch):
		code = wire.FDCodeWrongSlotEpoch
	case errors.Is(err, occ.ErrSessionClosed):
		code = wire.FDCodeSessionClosed
	case errors.Is(err, occ.ErrStopped):
		code = wire.FDCodeStopped
	}
	return wire.FrontDoorResponse{
		Kind: wire.FDErr, ID: id, Code: code, Text: err.Error(),
	}
}
