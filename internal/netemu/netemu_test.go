package netemu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func collect(t *testing.T, n *Network, id NodeID) (*Endpoint, func() []any) {
	t.Helper()
	var mu sync.Mutex
	var got []any
	ep := n.Register(id, func(_ NodeID, m any) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	return ep, func() []any {
		mu.Lock()
		defer mu.Unlock()
		out := make([]any, len(got))
		copy(out, got)
		return out
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatal("condition not reached within timeout")
}

func TestDeliveryBasic(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.Register(NodeID{0, 0}, nil)
	_, got := collect(t, n, NodeID{1, 0})
	a.Send(NodeID{1, 0}, "hello")
	waitFor(t, time.Second, func() bool { return len(got()) == 1 })
	if got()[0] != "hello" {
		t.Fatalf("got %v", got()[0])
	}
}

func TestFIFOOrderPerLink(t *testing.T) {
	n := New(Config{Latency: func(_, _ NodeID) time.Duration { return time.Millisecond }, JitterFrac: 0.5, Seed: 42})
	defer n.Close()
	a := n.Register(NodeID{0, 0}, nil)
	_, got := collect(t, n, NodeID{1, 0})
	const count = 200
	for i := 0; i < count; i++ {
		a.Send(NodeID{1, 0}, i)
	}
	waitFor(t, 5*time.Second, func() bool { return len(got()) == count })
	for i, m := range got() {
		if m.(int) != i {
			t.Fatalf("message %d arrived at position %d: FIFO violated", m, i)
		}
	}
}

func TestLatencyInjection(t *testing.T) {
	const lat = 20 * time.Millisecond
	n := New(Config{Latency: func(_, _ NodeID) time.Duration { return lat }})
	defer n.Close()
	a := n.Register(NodeID{0, 0}, nil)
	var deliveredAt atomic.Value
	n.Register(NodeID{1, 0}, func(_ NodeID, _ any) { deliveredAt.Store(time.Now()) })
	start := time.Now()
	a.Send(NodeID{1, 0}, 1)
	waitFor(t, time.Second, func() bool { return deliveredAt.Load() != nil })
	elapsed := deliveredAt.Load().(time.Time).Sub(start)
	if elapsed < lat {
		t.Fatalf("delivered after %v, want >= %v", elapsed, lat)
	}
	if elapsed > lat*4 {
		t.Fatalf("delivered after %v, far above injected latency %v", elapsed, lat)
	}
}

func TestHandlerSource(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.Register(NodeID{0, 3}, nil)
	var src atomic.Value
	n.Register(NodeID{2, 1}, func(s NodeID, _ any) { src.Store(s) })
	a.Send(NodeID{2, 1}, struct{}{})
	waitFor(t, time.Second, func() bool { return src.Load() != nil })
	if got := src.Load().(NodeID); got != (NodeID{0, 3}) {
		t.Fatalf("handler saw src %v", got)
	}
}

func TestPartitionBuffersAndHeals(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.Register(NodeID{0, 0}, nil)
	_, got := collect(t, n, NodeID{1, 0})

	// Prime the link, then cut it.
	a.Send(NodeID{1, 0}, "pre")
	waitFor(t, time.Second, func() bool { return len(got()) == 1 })
	n.PartitionDCs(0, 1, true)
	for i := 0; i < 5; i++ {
		a.Send(NodeID{1, 0}, i)
	}
	time.Sleep(20 * time.Millisecond)
	if len(got()) != 1 {
		t.Fatalf("messages leaked through a downed link: %v", got())
	}

	n.PartitionDCs(0, 1, false)
	waitFor(t, time.Second, func() bool { return len(got()) == 6 })
	for i, m := range got()[1:] {
		if m.(int) != i {
			t.Fatalf("post-heal delivery out of order: %v", got())
		}
	}
}

func TestPartitionLeavesIntraDCLinks(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.Register(NodeID{0, 0}, nil)
	_, got01 := collect(t, n, NodeID{0, 1})
	_, got10 := collect(t, n, NodeID{1, 0})
	// Create both links first.
	a.Send(NodeID{0, 1}, "x")
	a.Send(NodeID{1, 0}, "x")
	waitFor(t, time.Second, func() bool { return len(got01()) == 1 && len(got10()) == 1 })

	n.PartitionDCs(0, 1, true)
	a.Send(NodeID{0, 1}, "intra")
	a.Send(NodeID{1, 0}, "inter")
	waitFor(t, time.Second, func() bool { return len(got01()) == 2 })
	time.Sleep(10 * time.Millisecond)
	if len(got10()) != 1 {
		t.Fatal("inter-DC message crossed a partition")
	}
}

func TestSetLinkDownBeforeTraffic(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.Register(NodeID{0, 0}, nil)
	_, got := collect(t, n, NodeID{1, 0})
	n.SetLinkDown(NodeID{0, 0}, NodeID{1, 0}, true)
	a.Send(NodeID{1, 0}, 7)
	time.Sleep(10 * time.Millisecond)
	if len(got()) != 0 {
		t.Fatal("downed link delivered a message")
	}
	n.SetLinkDown(NodeID{0, 0}, NodeID{1, 0}, false)
	waitFor(t, time.Second, func() bool { return len(got()) == 1 })
}

func TestMessageCount(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.Register(NodeID{0, 0}, nil)
	_, got := collect(t, n, NodeID{1, 0})
	for i := 0; i < 10; i++ {
		a.Send(NodeID{1, 0}, i)
	}
	waitFor(t, time.Second, func() bool { return len(got()) == 10 })
	if c := n.MessageCount(); c != 10 {
		t.Fatalf("MessageCount = %d, want 10", c)
	}
}

func TestSendAfterCloseIsDropped(t *testing.T) {
	n := New(Config{})
	a := n.Register(NodeID{0, 0}, nil)
	n.Register(NodeID{1, 0}, func(_ NodeID, _ any) { t.Error("delivered after close") })
	n.Close()
	a.Send(NodeID{1, 0}, 1) // must not panic nor deliver
	time.Sleep(5 * time.Millisecond)
}

func TestDuplicateRegisterPanics(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	n.Register(NodeID{0, 0}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register must panic")
		}
	}()
	n.Register(NodeID{0, 0}, nil)
}

func TestSendToUnknownPanics(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.Register(NodeID{0, 0}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("send to unregistered endpoint must panic")
		}
	}()
	a.Send(NodeID{9, 9}, 1)
}

func TestConcurrentSendersFIFOPerLink(t *testing.T) {
	n := New(Config{Latency: func(_, _ NodeID) time.Duration { return 100 * time.Microsecond }})
	defer n.Close()
	const senders = 4
	const per = 100
	eps := make([]*Endpoint, senders)
	for i := 0; i < senders; i++ {
		eps[i] = n.Register(NodeID{0, i}, nil)
	}
	var mu sync.Mutex
	perSrc := make(map[NodeID][]int)
	n.Register(NodeID{1, 0}, func(src NodeID, m any) {
		mu.Lock()
		perSrc[src] = append(perSrc[src], m.(int))
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				eps[i].Send(NodeID{1, 0}, j)
			}
		}(i)
	}
	wg.Wait()
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		total := 0
		for _, v := range perSrc {
			total += len(v)
		}
		return total == senders*per
	})
	mu.Lock()
	defer mu.Unlock()
	for src, seq := range perSrc {
		for j, v := range seq {
			if v != j {
				t.Fatalf("link from %v violated FIFO at %d: %v", src, j, v)
			}
		}
	}
}
