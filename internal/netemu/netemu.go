// Package netemu emulates the geo-distributed network of the paper's AWS
// testbed. Nodes (one per partition server per data center) exchange messages
// over point-to-point lossless FIFO channels — the system model assumed by
// POCC (§II-C). Every directed link injects a configurable latency with
// jitter, and links can be taken down and healed to emulate network
// partitions for the HA-POCC experiments. While a link is down, messages are
// buffered (lossless) and drain in order after healing.
package netemu

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// NodeID identifies a partition server: data center m, partition n.
type NodeID struct {
	DC        int
	Partition int
}

func (id NodeID) String() string {
	return fmt.Sprintf("dc%d/p%d", id.DC, id.Partition)
}

// Handler processes a message delivered to an endpoint. Handlers are invoked
// sequentially per link (preserving FIFO order per channel); a handler that
// may block for a long time must hand the message off to another goroutine.
type Handler func(src NodeID, m any)

// LatencyFunc returns the base one-way delay for a directed link.
type LatencyFunc func(src, dst NodeID) time.Duration

// Config parameterizes a Network.
type Config struct {
	// Latency returns the base one-way latency per link. Nil means zero
	// latency (still asynchronous and FIFO).
	Latency LatencyFunc
	// JitterFrac adds a uniform random jitter in [0, JitterFrac·base) to
	// every message. Zero disables jitter.
	JitterFrac float64
	// Seed makes jitter deterministic across runs.
	Seed uint64
}

// Network is a collection of endpoints connected by emulated links.
type Network struct {
	cfg Config

	mu     sync.Mutex
	eps    map[NodeID]*Endpoint
	links  map[linkKey]*link
	closed bool
	wg     sync.WaitGroup

	msgs  atomic.Uint64 // total messages accepted for delivery
	scale atomic.Uint64 // latency multiplier (float64 bits); 1.0 at start
}

type linkKey struct{ src, dst NodeID }

// New creates an empty network.
func New(cfg Config) *Network {
	n := &Network{
		cfg:   cfg,
		eps:   make(map[NodeID]*Endpoint),
		links: make(map[linkKey]*link),
	}
	n.scale.Store(math.Float64bits(1.0))
	return n
}

// SetLatencyScale multiplies every link's base latency by f from now on —
// the chaos plane's live latency reprofile. f must be >= 0; 1 restores the
// configured profile. In-flight messages keep the delay they were assigned.
func (n *Network) SetLatencyScale(f float64) {
	if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		panic(fmt.Sprintf("netemu: invalid latency scale %v", f))
	}
	n.scale.Store(math.Float64bits(f))
}

// LatencyScale returns the current latency multiplier.
func (n *Network) LatencyScale() float64 {
	return math.Float64frombits(n.scale.Load())
}

// Endpoint is a node's attachment point to the network.
type Endpoint struct {
	net     *Network
	id      NodeID
	handler atomic.Pointer[Handler]
}

// Register attaches a node. The handler may be set later with SetHandler;
// messages delivered before a handler is installed are dropped (registration
// happens before any traffic in practice).
func (n *Network) Register(id NodeID, h Handler) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.eps[id]; ok {
		panic(fmt.Sprintf("netemu: duplicate endpoint %v", id))
	}
	ep := &Endpoint{net: n, id: id}
	if h != nil {
		ep.handler.Store(&h)
	}
	n.eps[id] = ep
	return ep
}

// SetHandler installs or replaces the endpoint's message handler.
func (e *Endpoint) SetHandler(h Handler) { e.handler.Store(&h) }

// ID returns the endpoint's node id.
func (e *Endpoint) ID() NodeID { return e.id }

// Send enqueues m for delivery to dst. It never blocks: links buffer an
// unbounded number of messages, modelling lossless channels. Sends on a
// closed network are dropped.
func (e *Endpoint) Send(dst NodeID, m any) {
	e.net.send(e.id, dst, m)
}

func (n *Network) send(src, dst NodeID, m any) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	dstEP, ok := n.eps[dst]
	if !ok {
		n.mu.Unlock()
		panic(fmt.Sprintf("netemu: send to unregistered endpoint %v", dst))
	}
	k := linkKey{src, dst}
	l, ok := n.links[k]
	if !ok {
		l = n.newLink(src, dst, dstEP)
		n.links[k] = l
	}
	n.mu.Unlock()

	n.msgs.Add(1)
	l.enqueue(envelope{msg: m, sent: time.Now()})
}

// MessageCount reports the total number of messages sent through the network,
// a proxy for the communication overhead of the protocols.
func (n *Network) MessageCount() uint64 { return n.msgs.Load() }

// SetLinkDown cuts or heals a single directed link.
func (n *Network) SetLinkDown(src, dst NodeID, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	k := linkKey{src, dst}
	l, ok := n.links[k]
	if !ok {
		if dstEP, okEP := n.eps[dst]; okEP {
			l = n.newLink(src, dst, dstEP)
			n.links[k] = l
		} else {
			return
		}
	}
	l.setDown(down)
}

// PartitionDCs cuts (or heals) every link between two data centers, in both
// directions, emulating an inter-DC network partition.
func (n *Network) PartitionDCs(a, b int, down bool) {
	n.mu.Lock()
	ids := make([]NodeID, 0, len(n.eps))
	for id := range n.eps {
		ids = append(ids, id)
	}
	n.mu.Unlock()
	for _, src := range ids {
		for _, dst := range ids {
			if src == dst {
				continue
			}
			crosses := (src.DC == a && dst.DC == b) || (src.DC == b && dst.DC == a)
			if crosses {
				n.SetLinkDown(src, dst, down)
			}
		}
	}
}

// Close shuts the network down. Buffered messages are discarded and all link
// goroutines are joined before Close returns.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	for _, l := range n.links {
		l.close()
	}
	n.mu.Unlock()
	n.wg.Wait()
}

// envelope carries a message and its send time so latency is measured from
// the moment of the send, not the moment the link goroutine dequeues it.
type envelope struct {
	msg  any
	sent time.Time
}

// link is a directed FIFO channel with injected latency.
type link struct {
	src, dst NodeID
	ep       *Endpoint
	latency  time.Duration
	jitter   float64
	scale    *atomic.Uint64 // the network's live latency multiplier
	rng      *rand.Rand     // owned by the delivery goroutine after start

	mu     sync.Mutex
	cond   *sync.Cond
	q      []envelope
	down   bool
	closed bool
}

// newLink must be called with n.mu held.
func (n *Network) newLink(src, dst NodeID, dstEP *Endpoint) *link {
	var lat time.Duration
	if n.cfg.Latency != nil {
		lat = n.cfg.Latency(src, dst)
	}
	seed := n.cfg.Seed ^ uint64(src.DC)<<48 ^ uint64(src.Partition)<<32 ^
		uint64(dst.DC)<<16 ^ uint64(dst.Partition)
	l := &link{
		src:     src,
		dst:     dst,
		ep:      dstEP,
		latency: lat,
		jitter:  n.cfg.JitterFrac,
		scale:   &n.scale,
		rng:     rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15)),
	}
	l.cond = sync.NewCond(&l.mu)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		l.run()
	}()
	return l
}

func (l *link) enqueue(e envelope) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.q = append(l.q, e)
	l.mu.Unlock()
	l.cond.Signal()
}

func (l *link) setDown(down bool) {
	l.mu.Lock()
	l.down = down
	l.mu.Unlock()
	l.cond.Broadcast()
}

func (l *link) close() {
	l.mu.Lock()
	l.closed = true
	l.q = nil
	l.mu.Unlock()
	l.cond.Broadcast()
}

func (l *link) run() {
	var lastDelivery time.Time
	for {
		l.mu.Lock()
		for (len(l.q) == 0 || l.down) && !l.closed {
			l.cond.Wait()
		}
		if l.closed {
			l.mu.Unlock()
			return
		}
		e := l.q[0]
		l.q = l.q[1:]
		l.mu.Unlock()

		delay := l.latency
		if s := math.Float64frombits(l.scale.Load()); s != 1.0 {
			delay = time.Duration(float64(delay) * s)
		}
		if l.jitter > 0 && delay > 0 {
			delay += time.Duration(l.rng.Float64() * l.jitter * float64(delay))
		}
		deliverAt := e.sent.Add(delay)
		if now := time.Now(); deliverAt.Before(now) {
			deliverAt = now // link was down or goroutine lagged
		}
		if deliverAt.Before(lastDelivery) {
			deliverAt = lastDelivery // FIFO: never deliver out of order
		}
		lastDelivery = deliverAt
		if d := time.Until(deliverAt); d > 0 {
			time.Sleep(d)
		}
		if hp := l.ep.handler.Load(); hp != nil {
			(*hp)(l.src, e.msg)
		}
	}
}
