// Package repl is the replication plane of a partition server: it owns the
// outbound update stream to the sibling replicas in the other data centers
// and the inbound bookkeeping that decides when a received update stream is
// trustworthy enough to advance the version vector.
//
// # Sequenced streams
//
// Every flushed batch (msg.ReplicateBatch) carries the sender's incarnation
// epoch and a monotone sequence number; heartbeats re-attest the current
// sequence. Because a flush goes to every sibling DC, each link observes
// the same gap-free sequence 1, 2, 3, …, so a receiver can verify — before
// advancing its version vector, which asserts "I hold every version from
// this DC up to t" — that it did not miss a batch. A hole in the sequence,
// or a new epoch (the sender restarted and its in-memory buffer tail died
// with it), freezes the link's VV advancement and triggers catch-up.
//
// # WAL-shipped catch-up
//
// The lagging receiver sends a msg.CatchUpRequest carrying the timestamp
// through which its prefix is complete (its VV entry for that DC). The
// sender streams every version it originated after that point straight out
// of its durable log (storage.CatchUpSource over the internal/wal cursor) in
// acknowledged chunks, never holding more than Config.MaxInFlightBytes of
// un-acked data on the wire — backpressure instead of unbounded buffers.
// The final chunk carries the resume point (epoch, sequence, timestamp): on
// receipt the receiver raises its VV through the streamed history, splices
// the batches that arrived during the round back onto the sequence, and
// resumes normal operation — or detects another discontinuity and goes
// again from the new, strictly higher floor, so rounds always make
// progress.
//
// Deployments without a durable engine (no catch-up source) answer
// Unsupported and the receiver falls back to the optimistic pre-catch-up
// semantics, exactly the behavior of in-memory deployments where a crashed
// replica has nothing to re-ship anyway.
//
// # Membership
//
// The manager owns an epoch-stamped membership view (msg.Membership): the
// per-DC statuses Joining → Active → Left, merged entry-wise as a lattice so
// concurrent view changes converge without coordination. The view drives the
// outbound fan-out — batches and heartbeats go to every Joining or Active
// remote DC, never to a departed one.
//
// A joining DC's servers start with Config.Joining set: each sends a
// msg.JoinRequest to its sibling partition in every active DC, which merges
// the joiner into its view (adding it to the fan-out) and answers
// msg.JoinAccept. Bootstrap then *is* the catch-up protocol: the first
// sequenced message on each inbound link either proves the sender has no
// prior history (adopt) or triggers a WAL-shipped catch-up round from
// timestamp zero. Once every active link is synced, the manager flips the
// DC to Active, broadcasts a msg.MembershipUpdate, and signals the backend
// (Joined) — the server only then enters the stabilization protocol, so a
// half-bootstrapped replica can never inject its partial state into the GSS.
//
// A leaving DC calls Leave: under the outbound lock it flushes the buffered
// tail, then sends msg.LeaveNotice carrying its final timestamp on the same
// FIFO links — so by the time the notice arrives, the receiver holds every
// version the leaver originated. Receivers freeze the departed entry at
// Final, cancel catch-up rounds pending on the link (nobody is left to
// answer), and drop the DC from the fan-out: stabilization keeps advancing
// on the survivors because no achievable dependency can exceed Final.
package repl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/item"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/vclock"
)

// Transport carries protocol messages between partition servers (the same
// contract as core.Transport: lossless FIFO delivery per (src, dst) pair,
// non-blocking Send).
type Transport interface {
	ID() netemu.NodeID
	Send(dst netemu.NodeID, m any)
}

// Backend is the surface the manager needs from its partition server. All
// methods must be safe for concurrent use; PrepareLocal is invoked under the
// manager's outbound lock so the assigned timestamps leave each link in
// order.
type Backend interface {
	// PrepareLocal assigns v its update timestamp, installs it in storage
	// and raises the local version-vector entry — the write-path work that
	// must be atomic with enqueueing v for replication. It reports false
	// (and does nothing) when the server has stopped.
	PrepareLocal(v *item.Version) (vclock.Timestamp, bool)
	// ApplyRemote installs a batch of remote versions in storage.
	ApplyRemote(vs []*item.Version)
	// VVEntry returns the server's version-vector entry for dc.
	VVEntry(dc int) vclock.Timestamp
	// RaiseVV lifts the version-vector entry for dc to at least t and wakes
	// any requests the advance unblocks.
	RaiseVV(dc int, t vclock.Timestamp)
	// Joined signals that this node's bootstrap finished: every active
	// inbound link is synced and the DC announced itself Active. Called at
	// most once, and never when Config.Joining is unset.
	Joined()
}

// Source feeds catch-up streams from durable storage; storage.Durable
// implements it (see storage.CatchUpSource, an identical interface kept
// separate so neither package imports the other). A Source that cannot
// prove its history is complete (a sticky persistence error) must fail the
// stream; the manager then answers Unsupported instead of claiming
// completeness it cannot back.
type Source interface {
	ForEachDurable(fn func(v *item.Version) error) error
}

// Tuning defaults.
const (
	defaultBatchSize      = 128
	defaultMaxInFlight    = 1 << 20 // catch-up bytes on the wire, un-acked
	catchUpChunkBytes     = 64 << 10
	minReRequestInterval  = 100 * time.Millisecond
	maxReRequestInterval  = 2 * time.Second
	reRequestPerHeartbeat = 50
)

// errCanceled aborts a catch-up serving stream (superseded, or shutdown).
var errCanceled = errors.New("repl: catch-up stream canceled")

// Config parameterizes a Manager.
type Config struct {
	// ID is the server's (data center, partition) coordinate.
	ID netemu.NodeID
	// NumDCs is the number of data centers (sibling replicas = NumDCs-1).
	NumDCs int
	// Clock is the node's physical clock (timestamps and the incarnation
	// epoch are drawn from it).
	Clock *clock.Clock
	// Endpoint attaches the manager to the network. The manager never
	// installs a handler; the server routes inbound messages to the
	// Handle* methods.
	Endpoint Transport
	// Backend is the owning partition server.
	Backend Backend
	// HeartbeatInterval is Δ: the idle-heartbeat cadence and the default
	// flush cadence.
	HeartbeatInterval time.Duration
	// BatchSize caps the outbound buffer before an inline flush
	// (0 = default 128, 1 = flush on every update).
	BatchSize int
	// FlushInterval is the timed flush cadence (0 = HeartbeatInterval,
	// negative = flush inline on every update).
	FlushInterval time.Duration
	// CatchUp enables sequenced-stream verification and gap recovery on the
	// inbound side. Disabled, the manager applies whatever arrives and
	// advances the VV optimistically — the pre-catch-up semantics, right for
	// in-memory deployments.
	CatchUp bool
	// Source serves outbound catch-up streams; nil answers requests with
	// Unsupported.
	Source Source
	// MaxInFlightBytes bounds the un-acked catch-up data per stream
	// (0 = default 1 MiB).
	MaxInFlightBytes int
	// MaxDCs caps the DC ids this node can ever track — the capacity of the
	// membership view and the inbound link table. 0 means NumDCs: fixed
	// membership, no joins possible.
	MaxDCs int
	// Joining marks this node's DC as bootstrapping into an existing
	// deployment: the manager sends JoinRequests to every active sibling,
	// pulls each link's history through catch-up, and announces the DC
	// Active when every link is synced. Requires CatchUp (bootstrap *is* the
	// catch-up protocol).
	Joining bool
	// Membership is the initial view (zero value: the first NumDCs DCs are
	// active). Deployments that grew or shrank pass the current view so
	// restarted and joining servers start from reality.
	Membership msg.Membership
}

// Stats counts the manager's catch-up activity.
type Stats struct {
	// Requested counts inbound catch-up rounds this node started (gaps or
	// sender restarts it detected).
	Requested uint64
	// Completed counts inbound rounds that finished (Done received).
	Completed uint64
	// Served counts outbound streams this node served to lagging siblings.
	Served uint64
	// ActiveIn is the number of links currently frozen awaiting catch-up.
	ActiveIn int
}

// inLink is the receiver-side state of one inbound replication link,
// identified by the source DC (the sibling partition is fixed). Messages on
// a link are handled by one goroutine at a time in the common case, but TCP
// reconnects can briefly run two, so the state is locked.
type inLink struct {
	mu    sync.Mutex
	known bool   // first contact made; epoch/seq below are meaningful
	epoch uint64 // sender incarnation the link is synced to
	seq   uint64 // last batch sequence applied in order

	// Catch-up round state. While pending, arriving versions are installed
	// but the VV entry is frozen; chain* tracks the contiguous run of
	// sequenced messages seen during the round so it can be spliced onto the
	// resume point when Done arrives.
	pending    bool
	reqID      uint64
	reqAt      time.Time
	chainSet   bool
	chainEpoch uint64
	chainBase  uint64 // sequence immediately before the chain's first batch
	chainSeq   uint64
	chainTS    vclock.Timestamp
}

// catchUpServe is one outbound catch-up stream in progress.
type catchUpServe struct {
	dc     int
	reqID  uint64
	acks   chan uint64
	cancel chan struct{}
}

// Manager owns a partition server's replication plane: outbound buffering,
// flush and heartbeat cadence, per-link sequence numbers, and both sides of
// the catch-up protocol.
type Manager struct {
	cfg    Config
	m, n   int
	maxDCs int
	clk    *clock.Clock
	ep     Transport
	be     Backend
	epoch  uint64 // incarnation id, immutable

	// viewMu guards the membership view; targets caches the fan-out set
	// (remote member DCs) so the flush path reads it with one atomic load.
	viewMu    sync.Mutex
	view      msg.Membership
	joinAskAt time.Time // last JoinRequest broadcast (rate limit)
	targets   atomic.Pointer[[]int]
	joining   atomic.Bool // this DC is bootstrapping
	retired   atomic.Bool // this DC has left: Publish refuses new writes

	fanout        bool // MaxDCs > 1: there may be someone to replicate to
	batchSize     int
	syncFlush     bool
	hbDrivesFlush bool
	maxInFlight   int
	reRequest     time.Duration

	// floor is the incarnation's starting history floor: every version this
	// node originated before this incarnation has a timestamp ≤ floor (the
	// recovered WAL floor; 0 for a fresh store). Advertised on every
	// sequenced message so a first-contact receiver can tell whether the
	// stream's past holds history it never saw. Immutable.
	floor vclock.Timestamp

	// mu serializes the outbound stream: the buffer, the batch sequence
	// counter, and every send to sibling DCs (per-link FIFO order must match
	// update-timestamp order). PrepareLocal runs under it so a timestamp is
	// never assigned out of enqueue order.
	mu     sync.Mutex
	buf    []*item.Version
	seq    uint64           // last flushed batch sequence
	lastTS vclock.Timestamp // highest timestamp handed to the transport

	in []*inLink // inbound link state, indexed by source DC

	serveMu sync.Mutex
	serving map[int]*catchUpServe // outbound streams by destination DC

	reqSeq     atomic.Uint64
	statReq    atomic.Uint64
	statDone   atomic.Uint64
	statServed atomic.Uint64
	activeIn   atomic.Int64

	stopped atomic.Bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

// NewManager builds and starts a replication manager: its flush and
// heartbeat loops are running when it returns.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Clock == nil || cfg.Endpoint == nil || cfg.Backend == nil {
		return nil, errors.New("repl: Clock, Endpoint and Backend are required")
	}
	if cfg.NumDCs < 1 {
		return nil, fmt.Errorf("repl: invalid NumDCs %d", cfg.NumDCs)
	}
	if cfg.BatchSize < 0 || cfg.MaxInFlightBytes < 0 {
		return nil, errors.New("repl: BatchSize and MaxInFlightBytes must be >= 0")
	}
	maxDCs := cfg.MaxDCs
	if maxDCs == 0 {
		maxDCs = cfg.NumDCs
	}
	if maxDCs < cfg.NumDCs {
		return nil, fmt.Errorf("repl: MaxDCs %d below NumDCs %d", maxDCs, cfg.NumDCs)
	}
	if len(cfg.Membership.Status) > maxDCs {
		return nil, fmt.Errorf("repl: initial membership names %d DCs, capacity is %d",
			len(cfg.Membership.Status), maxDCs)
	}
	if cfg.Joining && !cfg.CatchUp {
		return nil, errors.New("repl: Joining requires CatchUp (bootstrap is the catch-up protocol)")
	}
	if cfg.ID.DC < 0 || cfg.ID.DC >= maxDCs {
		return nil, fmt.Errorf("repl: id %v outside the DC capacity %d", cfg.ID, maxDCs)
	}
	r := &Manager{
		cfg:         cfg,
		m:           cfg.ID.DC,
		n:           cfg.ID.Partition,
		maxDCs:      maxDCs,
		clk:         cfg.Clock,
		ep:          cfg.Endpoint,
		be:          cfg.Backend,
		epoch:       uint64(cfg.Clock.Now()), // monotone across in-process restarts
		fanout:      maxDCs > 1,
		batchSize:   cfg.BatchSize,
		maxInFlight: cfg.MaxInFlightBytes,
		serving:     make(map[int]*catchUpServe),
		stop:        make(chan struct{}),
	}
	// The membership view lives at full capacity; slots beyond the current
	// deployment stay DCUnknown until a join claims them.
	status := make([]uint8, maxDCs)
	if cfg.Membership.Status != nil {
		copy(status, cfg.Membership.Status)
	} else {
		for i := 0; i < cfg.NumDCs; i++ {
			status[i] = msg.DCActive
		}
	}
	if cfg.Joining {
		status[r.m] = msg.DCJoining
		r.joining.Store(true)
	} else if status[r.m] == msg.DCUnknown {
		status[r.m] = msg.DCActive
	}
	r.view = msg.Membership{Epoch: cfg.Membership.Epoch, Status: status}
	r.rebuildTargetsLocked()
	if r.batchSize == 0 {
		r.batchSize = defaultBatchSize
	}
	if r.maxInFlight == 0 {
		r.maxInFlight = defaultMaxInFlight
	}
	flushInterval := cfg.FlushInterval
	if flushInterval == 0 {
		flushInterval = cfg.HeartbeatInterval
	}
	r.syncFlush = r.batchSize == 1 || flushInterval <= 0
	r.hbDrivesFlush = !r.syncFlush && flushInterval == cfg.HeartbeatInterval
	r.reRequest = reRequestPerHeartbeat * cfg.HeartbeatInterval
	if r.reRequest < minReRequestInterval {
		r.reRequest = minReRequestInterval
	}
	if r.reRequest > maxReRequestInterval {
		r.reRequest = maxReRequestInterval
	}
	// The resume floor: a recovered server starts its stream at its replayed
	// local entry, so a catch-up snapshot taken before its first flush still
	// covers everything the previous incarnation acknowledged — and every
	// sequenced message advertises it so first-contact receivers can tell
	// whether they are behind this node's past.
	r.lastTS = r.be.VVEntry(r.m)
	r.floor = r.lastTS
	r.in = make([]*inLink, maxDCs)
	for i := range r.in {
		r.in[i] = &inLink{}
	}

	if cfg.HeartbeatInterval > 0 && r.fanout {
		r.wg.Add(1)
		go r.heartbeatLoop()
	}
	if !r.syncFlush && r.fanout && !r.hbDrivesFlush {
		r.wg.Add(1)
		go r.flushLoop(flushInterval)
	}
	if r.joining.Load() {
		r.sendJoinRequests()
		// Degenerate join (no active sibling to sync against, e.g. the first
		// DC of a deployment): complete immediately.
		r.maybeFinishJoin()
	}
	return r, nil
}

// Epoch returns the manager's incarnation id.
func (r *Manager) Epoch() uint64 { return r.epoch }

// Stats returns a snapshot of the catch-up counters.
func (r *Manager) Stats() Stats {
	return Stats{
		Requested: r.statReq.Load(),
		Completed: r.statDone.Load(),
		Served:    r.statServed.Load(),
		ActiveIn:  int(r.activeIn.Load()),
	}
}

// ---------------------------------------------------------------------------
// Membership
// ---------------------------------------------------------------------------

// View returns a copy of the current membership view.
func (r *Manager) View() msg.Membership {
	r.viewMu.Lock()
	defer r.viewMu.Unlock()
	return r.view.Clone()
}

// Bootstrapped reports whether this node participates fully in replication:
// true for ordinary members, and for a joiner once every active inbound
// link has been synced (catch-up complete) and the DC announced Active.
func (r *Manager) Bootstrapped() bool { return !r.joining.Load() }

// statusOf returns the membership status of dc.
func (r *Manager) statusOf(dc int) uint8 {
	r.viewMu.Lock()
	defer r.viewMu.Unlock()
	return r.view.Get(dc)
}

// rebuildTargetsLocked recomputes the fan-out set — every remote Joining or
// Active DC — from the view. A departed node sends nothing and accepts no
// new writes (a write acked after the departure would replicate to nobody).
// Called with viewMu held (or from the constructor before the manager is
// shared).
func (r *Manager) rebuildTargetsLocked() {
	ts := make([]int, 0, len(r.view.Status))
	if r.view.Get(r.m) != msg.DCLeft {
		for dc, st := range r.view.Status {
			if dc != r.m && (st == msg.DCActive || st == msg.DCJoining) {
				ts = append(ts, dc)
			}
		}
	} else {
		r.retired.Store(true)
	}
	r.targets.Store(&ts)
}

// applyView merges v into the local view. On change it rebuilds the fan-out
// targets and retires the links of any DC the merge marked departed.
func (r *Manager) applyView(v msg.Membership) {
	r.viewMu.Lock()
	if !r.view.Merge(v, r.maxDCs) {
		r.viewMu.Unlock()
		return
	}
	r.rebuildTargetsLocked()
	var left []int
	for dc, st := range r.view.Status {
		if st == msg.DCLeft && dc != r.m {
			left = append(left, dc)
		}
	}
	r.viewMu.Unlock()
	for _, dc := range left {
		r.retireLink(dc)
	}
}

// retireLink tears down the replication state owed to a departed DC: an
// inbound catch-up round pending on the link is cancelled (nobody is left
// to answer it) and an outbound stream serving the DC is stopped.
func (r *Manager) retireLink(dc int) {
	st := r.in[dc]
	st.mu.Lock()
	if st.pending {
		st.pending = false
		r.activeIn.Add(-1)
	}
	st.mu.Unlock()
	r.serveMu.Lock()
	if s := r.serving[dc]; s != nil {
		close(s.cancel)
		delete(r.serving, dc)
	}
	r.serveMu.Unlock()
}

// sendJoinRequests asks the sibling partition in every active DC to add
// this (joining) DC to its fan-out. Idempotent; re-sent on the heartbeat
// cadence until every link makes first contact, so a lost request cannot
// wedge the join.
func (r *Manager) sendJoinRequests() {
	r.viewMu.Lock()
	r.joinAskAt = time.Now()
	view := r.view.Clone()
	r.viewMu.Unlock()
	for dc, st := range view.Status {
		if dc != r.m && st == msg.DCActive {
			r.ep.Send(netemu.NodeID{DC: dc, Partition: r.n},
				msg.JoinRequest{DC: r.m, View: view})
		}
	}
}

// maybeFinishJoin completes the bootstrap when every active inbound link is
// synced: flip this DC to Active, broadcast the new view, and signal the
// backend. Called after every event that can sync a link. The completeness
// check and the flip run under viewMu so a concurrently-merged view (a DC
// learned mid-check) serializes with the decision: it is either examined
// here or arrives after the flip, when first-contact catch-up covers it
// like for any other active member.
func (r *Manager) maybeFinishJoin() {
	if !r.joining.Load() {
		return
	}
	r.viewMu.Lock()
	for dc, st := range r.view.Status {
		if dc == r.m || st != msg.DCActive {
			continue
		}
		l := r.in[dc]
		l.mu.Lock()
		ok := l.known && !l.pending
		l.mu.Unlock()
		if !ok {
			r.viewMu.Unlock()
			return
		}
	}
	if !r.joining.CompareAndSwap(true, false) {
		r.viewMu.Unlock()
		return
	}
	// The lattice only moves forward: a concurrent forced removal (self
	// marked Left) must not be overwritten by the Active announcement.
	if r.view.Status[r.m] == msg.DCJoining {
		r.view.Status[r.m] = msg.DCActive
		r.view.Epoch++
	}
	r.rebuildTargetsLocked()
	view := r.view.Clone()
	r.viewMu.Unlock()
	for _, dc := range *r.targets.Load() {
		r.ep.Send(netemu.NodeID{DC: dc, Partition: r.n}, msg.MembershipUpdate{View: view})
	}
	r.be.Joined()
}

// Leave announces this node's departure: the buffered tail is flushed and a
// LeaveNotice carrying the final timestamp follows it on the same FIFO
// links, so every receiver holds the leaver's complete history when the
// notice arrives. The notice is this node's last word — the fan-out is
// emptied and new writes are refused under the same critical section, so
// nothing (no batch, no heartbeat, no acked-but-unreplicated write) can
// postdate it. It returns the announced final timestamp.
func (r *Manager) Leave() vclock.Timestamp {
	r.viewMu.Lock()
	if r.view.Status[r.m] != msg.DCLeft {
		r.view.Status[r.m] = msg.DCLeft
		r.view.Epoch++
	}
	view := r.view.Clone()
	// Targets are not rebuilt yet: the final flush and the notice itself
	// still ride the existing links.
	r.viewMu.Unlock()
	r.mu.Lock()
	r.flushLocked()
	final := r.lastTS
	for _, dc := range *r.targets.Load() {
		r.ep.Send(netemu.NodeID{DC: dc, Partition: r.n},
			msg.LeaveNotice{DC: r.m, Final: final, View: view})
	}
	// Retire while still holding the outbound lock: the heartbeat loop and
	// Publish both serialize on it, so the first thing either sees after
	// the notice is an empty fan-out and a refused write path.
	empty := make([]int, 0)
	r.targets.Store(&empty)
	r.retired.Store(true)
	r.mu.Unlock()
	return final
}

// HandleJoinRequest merges the joiner into the view — adding it to the
// fan-out, so the live stream starts flowing — and answers with the merged
// view. The joiner's history bootstrap is *not* served here: it rides the
// ordinary catch-up protocol, triggered by the joiner's first contact with
// this node's sequenced stream.
func (r *Manager) HandleJoinRequest(src netemu.NodeID, m msg.JoinRequest) {
	r.applyView(m.View)
	r.mu.Lock()
	through := r.lastTS
	r.mu.Unlock()
	r.ep.Send(src, msg.JoinAccept{View: r.View(), Through: through})
}

// HandleJoinAccept merges the acceptor's view (the joiner may learn of DCs
// that joined or left before it arrived).
func (r *Manager) HandleJoinAccept(src netemu.NodeID, m msg.JoinAccept) {
	r.applyView(m.View)
}

// HandleMembershipUpdate merges a broadcast view change.
func (r *Manager) HandleMembershipUpdate(src netemu.NodeID, m msg.MembershipUpdate) {
	r.applyView(m.View)
}

// HandleLeaveNotice retires a departed DC: the view merge drops it from the
// fan-out and cancels catch-up state on the link, and the version-vector
// entry is raised to the leaver's final timestamp — complete by FIFO order,
// since the notice follows the leaver's last flush on the same link.
func (r *Manager) HandleLeaveNotice(src netemu.NodeID, m msg.LeaveNotice) {
	r.applyView(m.View)
	if m.DC == src.DC && src.DC >= 0 && src.DC < r.maxDCs {
		r.be.RaiseVV(src.DC, m.Final)
	}
	r.maybeFinishJoin() // a joiner no longer waits on the departed link
}

// Close stops the background loops and any catch-up streams in progress.
// With flush set (graceful shutdown) the buffered tail is handed to the
// transport first; without it (crash simulation) the tail is discarded — the
// loss catch-up exists to repair.
func (r *Manager) Close(flush bool) {
	if !r.stopped.CompareAndSwap(false, true) {
		return
	}
	close(r.stop)
	r.serveMu.Lock()
	for _, s := range r.serving {
		close(s.cancel)
	}
	r.serveMu.Unlock()
	r.wg.Wait()
	r.mu.Lock()
	if flush {
		r.flushLocked()
	} else {
		r.buf = nil
	}
	r.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Outbound: publish, flush, heartbeat
// ---------------------------------------------------------------------------

// Publish runs the local write path: under the outbound lock it lets the
// backend assign v its timestamp and install it, then enqueues v for
// replication, flushing inline when the batch is full (or unbatched). It
// reports false when the server has stopped or its DC has left the
// deployment — after the Leave announcement nothing rides the links, so
// acking a write then would lose it the moment the node shuts down.
func (r *Manager) Publish(v *item.Version) (vclock.Timestamp, bool) {
	r.mu.Lock()
	if r.retired.Load() {
		r.mu.Unlock()
		return 0, false
	}
	ut, ok := r.be.PrepareLocal(v)
	if !ok {
		r.mu.Unlock()
		return 0, false
	}
	if r.fanout {
		r.buf = append(r.buf, v)
		if r.syncFlush || len(r.buf) >= r.batchSize {
			r.flushLocked()
		}
	}
	r.mu.Unlock()
	return ut, true
}

// flushLocked stamps the buffered updates with the next batch sequence and
// sends them to every member DC. Called with mu held so batches (and
// heartbeats) leave each link in timestamp order. The buffer's slice is
// handed to the message (versions are immutable and shared across DCs).
// With an empty fan-out (a deployment not yet grown) the sequence still
// advances and the versions rest in the WAL — a later joiner's first
// contact sees the sequence and pulls them through catch-up.
func (r *Manager) flushLocked() {
	if len(r.buf) == 0 {
		return
	}
	r.seq++
	hb := r.buf[len(r.buf)-1].UpdateTime
	if hb > r.lastTS {
		r.lastTS = hb
	}
	m := msg.ReplicateBatch{Versions: r.buf, HBTime: hb, Epoch: r.epoch, Seq: r.seq, Floor: r.floor}
	r.buf = nil
	for _, dc := range *r.targets.Load() {
		r.ep.Send(netemu.NodeID{DC: dc, Partition: r.n}, m)
	}
}

// heartbeatLoop flushes the buffer every Δ (when Δ is the flush cadence) and
// broadcasts the local clock when no update has advanced the local
// version-vector entry for a heartbeat interval (Algorithm 2, lines 19-26).
// Heartbeats are suppressed while updates sit in the buffer, so they never
// overtake buffered versions with smaller timestamps.
func (r *Manager) heartbeatLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		r.mu.Lock()
		if r.hbDrivesFlush {
			r.flushLocked()
		}
		ct := r.clk.Now()
		idle := len(r.buf) == 0 &&
			ct >= r.be.VVEntry(r.m)+vclock.Timestamp(r.cfg.HeartbeatInterval)
		if idle {
			if ct > r.lastTS {
				r.lastTS = ct
			}
			hb := msg.Heartbeat{Time: ct, Epoch: r.epoch, Seq: r.seq, Floor: r.floor}
			for _, dc := range *r.targets.Load() {
				r.ep.Send(netemu.NodeID{DC: dc, Partition: r.n}, hb)
			}
		}
		r.mu.Unlock()
		if idle {
			r.be.RaiseVV(r.m, ct)
		}
		if r.joining.Load() {
			// A lost JoinRequest (or a sibling that was down) must not wedge
			// the bootstrap: re-ask on the re-request cadence until every
			// active link has made first contact, and re-check completion in
			// case the last sync arrived without a message to piggyback on.
			r.viewMu.Lock()
			resend := time.Since(r.joinAskAt) > r.reRequest
			r.viewMu.Unlock()
			if resend {
				r.sendJoinRequests()
			}
			r.maybeFinishJoin()
		}
	}
}

// flushLoop drains the buffer on a cadence distinct from the heartbeat
// interval (FlushInterval ≠ Δ).
func (r *Manager) flushLoop(interval time.Duration) {
	defer r.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		r.mu.Lock()
		r.flushLocked()
		r.mu.Unlock()
	}
}

// ---------------------------------------------------------------------------
// Inbound: sequenced apply and gap detection
// ---------------------------------------------------------------------------

// HandleBatch installs a replicated batch and advances the sender DC's
// version-vector entry when the link's sequence is intact. Versions are
// always installed — POCC serves the freshest received version regardless —
// only the VV advance (the claim "I hold the complete prefix") is gated.
func (r *Manager) HandleBatch(src netemu.NodeID, m msg.ReplicateBatch) {
	if !r.validSrc(src.DC) {
		return
	}
	r.be.ApplyRemote(m.Versions)
	adv := m.HBTime
	if n := len(m.Versions); n > 0 {
		if last := m.Versions[n-1].UpdateTime; last > adv {
			adv = last
		}
	}
	if !r.cfg.CatchUp || m.Epoch == 0 {
		// Catch-up disabled, or a legacy unsequenced batch: optimistic apply.
		r.be.RaiseVV(src.DC, adv)
		return
	}
	r.handleSequenced(src.DC, m.Epoch, m.Seq, m.Floor, adv, true)
}

// HandleHeartbeat advances the sender DC's version-vector entry
// (Algorithm 2, lines 27-28), gated on the link sequence like a batch: a
// heartbeat re-attests the sender's current sequence, which is exactly how
// an idle restarted sender (whose buffered tail died with it) is detected.
func (r *Manager) HandleHeartbeat(src netemu.NodeID, m msg.Heartbeat) {
	if !r.validSrc(src.DC) {
		return
	}
	if !r.cfg.CatchUp || m.Epoch == 0 {
		r.be.RaiseVV(src.DC, m.Time)
		return
	}
	r.handleSequenced(src.DC, m.Epoch, m.Seq, m.Floor, m.Time, false)
}

// validSrc reports whether dc is a plausible remote source this node can
// track — inbound state is indexed by DC id, so an id outside the vector
// capacity (a corrupted or hostile frame) must be dropped, not indexed.
func (r *Manager) validSrc(dc int) bool {
	return dc >= 0 && dc < r.maxDCs && dc != r.m
}

// handleSequenced runs the receiver state machine for one sequenced message
// on the link from dc. A batch consumes the next sequence number; a
// heartbeat re-attests the current one. adv is the VV advance the message
// carries when the sequence is intact; floor is the sender incarnation's
// starting history floor.
func (r *Manager) handleSequenced(dc int, epoch, seq uint64, floor, adv vclock.Timestamp, isBatch bool) {
	if r.statusOf(dc) == msg.DCLeft {
		// A straggler from a departed DC (in flight when the LeaveNotice
		// overtook it on another link): its data is applied, and nothing it
		// attests can exceed the announced final timestamp, so the plain
		// advance is safe — but no catch-up round may start toward a DC
		// that no longer answers.
		r.be.RaiseVV(dc, adv)
		return
	}
	st := r.in[dc]
	var raise vclock.Timestamp
	st.mu.Lock()
	base := seq
	if isBatch {
		base = seq - 1
	}
	switch {
	case st.pending:
		// Catch-up in flight: track the chain for the splice at Done, and
		// re-issue the request if the round has gone quiet (a request lost
		// to a dropping link must not freeze the link forever).
		r.noteChainLocked(st, epoch, seq, adv, isBatch)
		if time.Since(st.reqAt) > r.reRequest {
			r.startCatchUpLocked(st, dc)
		}
	case !st.known:
		if base == 0 && floor <= r.be.VVEntry(dc) {
			// Nothing precedes this message in the sender's incarnation
			// (batch 1, or an idle heartbeat before any flush) and this
			// node's progress covers the incarnation's starting floor, so
			// the sender's entire past is already here: adopt the stream.
			st.known, st.epoch, st.seq = true, epoch, seq
			raise = adv
		} else {
			// The link has history this node never saw — it is the one that
			// restarted (or came up late). Resync from the recovered floor.
			r.startCatchUpLocked(st, dc)
			r.noteChainLocked(st, epoch, seq, adv, isBatch)
		}
	case epoch == st.epoch && isBatch && seq == st.seq+1:
		st.seq = seq
		raise = adv
	case epoch == st.epoch && !isBatch && seq == st.seq:
		raise = adv
	case epoch == st.epoch && seq <= st.seq:
		// Duplicate delivery (at-least-once transports); already applied.
	default:
		// A sequence hole, or a new sender incarnation whose pre-crash
		// buffer tail is gone: freeze the VV entry and fetch the missing
		// history out of the sender's log.
		r.startCatchUpLocked(st, dc)
		r.noteChainLocked(st, epoch, seq, adv, isBatch)
	}
	st.mu.Unlock()
	if raise > 0 {
		r.be.RaiseVV(dc, raise)
	}
	r.maybeFinishJoin() // a first-contact adoption may have been the last link
}

// startCatchUpLocked opens a new catch-up round on the link: freeze VV
// advancement, reset the observed chain, and ask the sender for everything
// after this node's completion point. Called with st.mu held.
func (r *Manager) startCatchUpLocked(st *inLink, dc int) {
	if !st.pending {
		st.pending = true
		r.activeIn.Add(1)
	}
	st.chainSet = false
	st.reqID = r.reqSeq.Add(1)
	st.reqAt = time.Now()
	r.statReq.Add(1)
	r.ep.Send(netemu.NodeID{DC: dc, Partition: r.n},
		msg.CatchUpRequest{ReqID: st.reqID, From: r.be.VVEntry(dc)})
}

// noteChainLocked folds one sequenced message into the chain observed while
// a catch-up round is pending. The chain is the longest contiguous run of
// same-epoch messages ending at the newest one; on Done it either splices
// onto the resume point or proves another round is needed.
func (r *Manager) noteChainLocked(st *inLink, epoch, seq uint64, ts vclock.Timestamp, isBatch bool) {
	base := seq
	if isBatch {
		base = seq - 1
	}
	switch {
	case !st.chainSet:
	case epoch == st.chainEpoch && isBatch && seq == st.chainSeq+1:
		st.chainSeq = seq
		if ts > st.chainTS {
			st.chainTS = ts
		}
		return
	case epoch == st.chainEpoch && !isBatch && seq == st.chainSeq:
		if ts > st.chainTS {
			st.chainTS = ts
		}
		return
	case epoch == st.chainEpoch && seq <= st.chainSeq:
		return // duplicate
	}
	// First message of the round, or a discontinuity: restart the chain here.
	st.chainSet = true
	st.chainEpoch = epoch
	st.chainBase = base
	st.chainSeq = seq
	st.chainTS = ts
}

// HandleCatchUpReply installs a catch-up chunk, acknowledges it (the
// sender's backpressure window), and on the final chunk completes the round:
// raise the VV through the streamed history, splice the chain of batches
// that arrived meanwhile, and either resume normal sequencing or start the
// next round from the new floor.
func (r *Manager) HandleCatchUpReply(src netemu.NodeID, m msg.CatchUpReply) {
	if !r.validSrc(src.DC) {
		return
	}
	if len(m.Versions) > 0 {
		r.be.ApplyRemote(m.Versions)
	}
	if !m.Done {
		r.ep.Send(src, msg.CatchUpAck{ReqID: m.ReqID, Chunk: m.Chunk})
		return
	}
	st := r.in[src.DC]
	st.mu.Lock()
	if !st.pending || st.reqID != m.ReqID {
		st.mu.Unlock()
		return // a stale stream; the live round will complete on its own
	}
	st.pending = false
	r.activeIn.Add(-1)
	r.statDone.Add(1)
	var chainRaise vclock.Timestamp
	again := false
	switch {
	case !st.chainSet:
		st.known, st.epoch, st.seq = true, m.ResumeEpoch, m.ResumeSeq
	case st.chainEpoch == m.ResumeEpoch && st.chainBase <= m.ResumeSeq:
		// The observed chain connects to the resume point: everything
		// between Through and the chain's tip has been applied in order.
		st.known, st.epoch = true, st.chainEpoch
		st.seq = st.chainSeq
		if m.ResumeSeq > st.seq {
			st.seq = m.ResumeSeq
		}
		if st.chainSeq > m.ResumeSeq {
			chainRaise = st.chainTS
		}
	default:
		// Still a hole between the resume point and what arrived during the
		// round — go again. The next round starts from Through (raised
		// below), strictly past this one's floor, so rounds make progress.
		again = true
	}
	st.mu.Unlock()
	// The sender guarantees every version it originated with a timestamp ≤
	// Through is now present (previously received, or streamed in this
	// round). An Unsupported reply makes the same advance on the optimistic
	// fallback semantics instead.
	r.be.RaiseVV(src.DC, m.Through)
	if chainRaise > 0 {
		r.be.RaiseVV(src.DC, chainRaise)
	}
	if again {
		st.mu.Lock()
		if !st.pending {
			r.startCatchUpLocked(st, src.DC)
		}
		st.mu.Unlock()
	}
	r.maybeFinishJoin() // a completed round may have been the last link
}

// ---------------------------------------------------------------------------
// Outbound catch-up serving
// ---------------------------------------------------------------------------

// HandleCatchUpRequest serves a lagging sibling: it snapshots the resume
// point and streams the requested history from the durable log on a
// dedicated goroutine. A newer request from the same DC supersedes the
// stream in progress.
func (r *Manager) HandleCatchUpRequest(src netemu.NodeID, m msg.CatchUpRequest) {
	if !r.validSrc(src.DC) {
		return
	}
	s := &catchUpServe{
		dc:     src.DC,
		reqID:  m.ReqID,
		acks:   make(chan uint64, 256),
		cancel: make(chan struct{}),
	}
	r.serveMu.Lock()
	if r.stopped.Load() {
		r.serveMu.Unlock()
		return
	}
	if old := r.serving[src.DC]; old != nil {
		close(old.cancel)
	}
	r.serving[src.DC] = s
	r.wg.Add(1)
	r.serveMu.Unlock()
	go func() {
		defer r.wg.Done()
		r.serveCatchUp(src, s, m.From)
		r.serveMu.Lock()
		if r.serving[src.DC] == s {
			delete(r.serving, src.DC)
		}
		r.serveMu.Unlock()
	}()
}

// HandleCatchUpAck credits one chunk back to the in-flight window of the
// stream it belongs to.
func (r *Manager) HandleCatchUpAck(src netemu.NodeID, m msg.CatchUpAck) {
	if !r.validSrc(src.DC) {
		return
	}
	r.serveMu.Lock()
	s := r.serving[src.DC]
	r.serveMu.Unlock()
	if s == nil || s.reqID != m.ReqID {
		return
	}
	select {
	case s.acks <- m.Chunk:
	default: // window is tiny relative to the channel; a full channel means
		// the stream is already unblocked by earlier acks
	}
}

// versionBytes approximates a version's wire footprint for the in-flight
// window accounting.
func versionBytes(v *item.Version) int {
	return len(v.Key) + len(v.Value) + 10*len(v.Deps) + 24
}

// serveCatchUp streams every version this node originated in (from,
// through] out of the durable log, in acknowledged chunks no larger than
// the in-flight window, then sends the resume point. The through/resumeSeq
// pair is captured under the outbound lock after a flush, which establishes
// the invariant the receiver relies on: every version ≤ through has been
// handed to the transport in a batch with sequence ≤ resumeSeq (and is in
// the log), and every later version rides a higher sequence.
func (r *Manager) serveCatchUp(src netemu.NodeID, s *catchUpServe, from vclock.Timestamp) {
	r.mu.Lock()
	r.flushLocked()
	through := r.lastTS
	resumeSeq := r.seq
	r.mu.Unlock()

	done := msg.CatchUpReply{
		ReqID: s.reqID, Done: true,
		ResumeEpoch: r.epoch, ResumeSeq: resumeSeq, Through: through,
	}
	if r.cfg.Source == nil {
		done.Unsupported = true
		r.ep.Send(src, done)
		return
	}

	var (
		chunkID    uint64
		chunk      []*item.Version
		chunkBytes int
		inFlight   int
		window     []struct {
			id    uint64
			bytes int
		}
	)
	sendChunk := func() error {
		if len(chunk) == 0 {
			return nil
		}
		// Backpressure: wait for acks while the window is full. The first
		// chunk always goes out, so a window smaller than one chunk still
		// streams (one chunk at a time).
		for inFlight > 0 && inFlight+chunkBytes > r.maxInFlight {
			select {
			case <-s.cancel:
				return errCanceled
			case <-r.stop:
				return errCanceled
			case ack := <-s.acks:
				for len(window) > 0 && window[0].id <= ack {
					inFlight -= window[0].bytes
					window = window[1:]
				}
			}
		}
		chunkID++
		r.ep.Send(src, msg.CatchUpReply{ReqID: s.reqID, Chunk: chunkID, Versions: chunk})
		window = append(window, struct {
			id    uint64
			bytes int
		}{chunkID, chunkBytes})
		inFlight += chunkBytes
		chunk, chunkBytes = nil, 0
		return nil
	}

	err := r.cfg.Source.ForEachDurable(func(v *item.Version) error {
		select {
		case <-s.cancel:
			return errCanceled
		case <-r.stop:
			return errCanceled
		default:
		}
		if v.SrcReplica != r.m || v.UpdateTime <= from || v.UpdateTime > through {
			return nil
		}
		chunk = append(chunk, v)
		chunkBytes += versionBytes(v)
		if chunkBytes >= catchUpChunkBytes {
			return sendChunk()
		}
		return nil
	})
	if err == nil {
		err = sendChunk()
	}
	if err != nil {
		if errors.Is(err, errCanceled) {
			return // superseded or shutting down; no resume point
		}
		// The log could not prove completeness (read error). Answer
		// Unsupported so the receiver falls back to optimistic semantics
		// instead of freezing forever — the same degradation as a sticky
		// persistence error.
		done.Unsupported = true
		r.ep.Send(src, done)
		return
	}
	r.ep.Send(src, done)
	r.statServed.Add(1)
}
