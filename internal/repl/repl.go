// Package repl is the replication plane of a partition server: it owns the
// outbound update stream to the sibling replicas in the other data centers
// and the inbound bookkeeping that decides when a received update stream is
// trustworthy enough to advance the version vector.
//
// # Sequenced streams
//
// Every flushed batch (msg.ReplicateBatch) carries the sender's incarnation
// epoch and a monotone sequence number; heartbeats re-attest the current
// sequence. Because a flush goes to every sibling DC, each link observes
// the same gap-free sequence 1, 2, 3, …, so a receiver can verify — before
// advancing its version vector, which asserts "I hold every version from
// this DC up to t" — that it did not miss a batch. A hole in the sequence,
// or a new epoch (the sender restarted and its in-memory buffer tail died
// with it), freezes the link's VV advancement and triggers catch-up.
//
// # WAL-shipped catch-up
//
// The lagging receiver sends a msg.CatchUpRequest carrying the timestamp
// through which its prefix is complete (its VV entry for that DC). The
// sender streams every version it originated after that point straight out
// of its durable log (storage.CatchUpSource over the internal/wal cursor) in
// acknowledged chunks, never holding more than Config.MaxInFlightBytes of
// un-acked data on the wire — backpressure instead of unbounded buffers.
// The final chunk carries the resume point (epoch, sequence, timestamp): on
// receipt the receiver raises its VV through the streamed history, splices
// the batches that arrived during the round back onto the sequence, and
// resumes normal operation — or detects another discontinuity and goes
// again from the new, strictly higher floor, so rounds always make
// progress.
//
// Deployments without a durable engine (no catch-up source) answer
// Unsupported and the receiver falls back to the optimistic pre-catch-up
// semantics, exactly the behavior of in-memory deployments where a crashed
// replica has nothing to re-ship anyway.
//
// # Membership
//
// The manager owns an epoch-stamped membership view (msg.Membership): the
// per-DC statuses Joining → Active → Left, merged entry-wise as a lattice so
// concurrent view changes converge without coordination. The view drives the
// outbound fan-out — batches and heartbeats go to every Joining or Active
// remote DC, never to a departed one.
//
// A joining DC's servers start with Config.Joining set: each sends a
// msg.JoinRequest to its sibling partition in every active DC, which merges
// the joiner into its view (adding it to the fan-out) and answers
// msg.JoinAccept. Bootstrap then *is* the catch-up protocol: the first
// sequenced message on each inbound link either proves the sender has no
// prior history (adopt) or triggers a WAL-shipped catch-up round from
// timestamp zero. Once every active link is synced, the manager flips the
// DC to Active, broadcasts a msg.MembershipUpdate, and signals the backend
// (Joined) — the server only then enters the stabilization protocol, so a
// half-bootstrapped replica can never inject its partial state into the GSS.
//
// A leaving DC calls Leave: under the outbound lock it flushes the buffered
// tail, then sends msg.LeaveNotice carrying its final timestamp on the same
// FIFO links — so by the time the notice arrives, the receiver holds every
// version the leaver originated. Receivers freeze the departed entry at
// Final, cancel catch-up rounds pending on the link (nobody is left to
// answer), and drop the DC from the fan-out: stabilization keeps advancing
// on the survivors because no achievable dependency can exceed Final.
//
// # Forced removal
//
// A crashed DC never sends a LeaveNotice, so the survivors' GSS freezes at
// its last heartbeat and stays there. ProposeEvict runs the coordination
// round that unblocks them: the proposer broadcasts msg.EvictProposal to
// every active survivor, each answers msg.EvictAck carrying its
// version-vector entry for the dead DC — a prefix-complete "I hold
// everything it originated through t" claim — and the agreed final is the
// maximum of those entries. The proposer freezes the view (Status Left,
// Final recorded in the membership lattice) and broadcasts msg.EvictNotice.
//
// Unlike a graceful leave, the notice does not ride the departed DC's own
// FIFO links, so a receiver may hold versions *beyond* the final (applied
// optimistically from the dead DC's last, un-agreed flush) or may be
// *behind* it. Both sides are reconciled at the notice: versions above the
// final are dropped from storage (Backend.DropAbove — they were replicated
// to nobody provably, so keeping them is unreplicatable divergence), and a
// receiver below the final gap-fills through ordinary catch-up rounds on
// the surviving links. Every msg.CatchUpRequest carries the requester's
// full version vector (Have), and the server streams — besides its own
// history — every departed-origin version the requester lacks up to the
// agreed final, bounding each claim in the Done chunk's Departed list. The
// same mechanism re-ships a departed DC's history to joiners that arrive
// after it left.
//
// # Catch-up-aware garbage collection
//
// The GC exchange prunes superseded versions once every replica's snapshot
// has moved past them — but a replica frozen in catch-up (or a joiner mid-
// bootstrap) still needs the history below its resume floor. The manager
// therefore remembers the floors of every catch-up request it has served
// recently and clamps the server's local GC contribution to them (ClampGC),
// holding the global prune point back until the laggard drains. The
// holdback ages out after GCMaxHoldback (see core.Config): past that, GC
// advances and the laggard's next incremental request is answered with a
// CatchUpReply.FullResync full re-bootstrap instead of a silently
// incomplete range — the serving side detects the request floor is below
// the WAL's checkpoint-compacted boundary (storage.Durable.CompactedFloor)
// and restreams from zero.
package repl

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/item"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/vclock"
)

// Transport carries protocol messages between partition servers (the same
// contract as core.Transport: lossless FIFO delivery per (src, dst) pair,
// non-blocking Send).
type Transport interface {
	ID() netemu.NodeID
	Send(dst netemu.NodeID, m any)
}

// Backend is the surface the manager needs from its partition server. All
// methods must be safe for concurrent use; PrepareLocal is invoked under the
// manager's outbound lock so the assigned timestamps leave each link in
// order.
type Backend interface {
	// PrepareLocal assigns v its update timestamp, installs it in storage
	// and raises the local version-vector entry — the write-path work that
	// must be atomic with enqueueing v for replication. A non-nil error
	// (surfaced verbatim by Publish, with nothing done) means the backend
	// refused the write: it has stopped, or its slot table no longer routes
	// v's key here. The ownership check lives in this under-lock half — not
	// in the caller's fast path — so a slot-map install serialized by Locked
	// is a hard fence: no write commits under a table the install replaced.
	PrepareLocal(v *item.Version) (vclock.Timestamp, error)
	// ApplyRemote installs a batch of remote versions in storage. slotEpoch
	// is the sender's slot-table epoch when the batch was stamped: a backend
	// whose table has moved past it re-routes versions whose slots changed
	// owner (see keyspace.SlotMap). Zero means the sender predates slot
	// tables (or runs the default map) — versions apply in place.
	ApplyRemote(vs []*item.Version, slotEpoch uint64)
	// SlotEpoch returns the backend's current slot-table epoch (0 when no
	// table is installed); stamped on outbound batches and catch-up chunks.
	SlotEpoch() uint64
	// VVEntry returns the server's version-vector entry for dc.
	VVEntry(dc int) vclock.Timestamp
	// RaiseVV lifts the version-vector entry for dc to at least t and wakes
	// any requests the advance unblocks.
	RaiseVV(dc int, t vclock.Timestamp)
	// DropAbove removes every stored version originated by dc with an update
	// timestamp strictly greater than after, returning the number removed —
	// the forced-removal purge of a crashed DC's un-agreed suffix.
	DropAbove(dc int, after vclock.Timestamp) int
	// Joined signals that this node's bootstrap finished: every active
	// inbound link is synced and the DC announced itself Active. Called at
	// most once, and never when Config.Joining is unset.
	Joined()
}

// Source feeds catch-up streams from durable storage; storage.Durable
// implements it (see storage.CatchUpSource, an identical interface kept
// separate so neither package imports the other). A Source that cannot
// prove its history is complete (a sticky persistence error) must fail the
// stream; the manager then answers Unsupported instead of claiming
// completeness it cannot back.
type Source interface {
	ForEachDurable(fn func(v *item.Version) error) error
}

// RangedSource is optionally implemented by a Source that can seek: the
// stream visits only the durable history that may fall inside the per-origin
// (lo, hi] window, using a storage-side index to skip cold segments (see
// storage.RangedCatchUpSource). The window is advisory — versions outside it
// may still be streamed — so the manager keeps its per-version filter; the
// win is that serving a small recent gap stops scanning the full store.
type RangedSource interface {
	ForEachDurableRange(lo, hi vclock.VC, fn func(v *item.Version) error) error
}

// TailSource is optionally implemented by a Source whose ranged walk can
// flag, per version, that the record came from the append-ordered live log
// (tail) rather than the unordered snapshot (see
// storage.TailCatchUpSource). Own-origin tail versions arrive in ascending
// timestamp order after all own-origin snapshot history, which is what lets
// serveCatchUp stamp sound mid-stream progress claims: when an own-origin
// tail version with timestamp t has been shipped, every own-origin version
// at or below t the requester asked for is in the chunks sent so far.
type TailSource interface {
	ForEachDurableTail(lo, hi vclock.VC, fn func(v *item.Version, tail bool) error) error
}

// CompactedSource is optionally implemented by a Source whose log discards
// superseded history at checkpoints (storage.Durable). The floor is the
// per-origin boundary below which only pruned state survives: an
// incremental catch-up range starting under it cannot be proven complete,
// so the manager answers with a full resync instead.
type CompactedSource interface {
	CompactedFloor() vclock.VC
}

// Tuning defaults.
const (
	defaultBatchSize      = 128
	defaultMaxInFlight    = 1 << 20 // catch-up bytes on the wire, un-acked
	catchUpChunkBytes     = 64 << 10
	minReRequestInterval  = 100 * time.Millisecond
	maxReRequestInterval  = 2 * time.Second
	reRequestPerHeartbeat = 50

	// evictFreezeGrace bounds the provisional version-vector freeze a node
	// holds after acking an eviction proposal: if the round dies with its
	// proposer (no notice ever arrives), the freeze expires and the link
	// resumes — the false-positive recovery path.
	evictFreezeGrace = 10 * time.Second
)

// errCanceled aborts a catch-up serving stream (superseded, or shutdown).
var errCanceled = errors.New("repl: catch-up stream canceled")

// Config parameterizes a Manager.
type Config struct {
	// ID is the server's (data center, partition) coordinate.
	ID netemu.NodeID
	// NumDCs is the number of data centers (sibling replicas = NumDCs-1).
	NumDCs int
	// Clock is the node's physical clock (timestamps and the incarnation
	// epoch are drawn from it).
	Clock *clock.Clock
	// Endpoint attaches the manager to the network. The manager never
	// installs a handler; the server routes inbound messages to the
	// Handle* methods.
	Endpoint Transport
	// Backend is the owning partition server.
	Backend Backend
	// HeartbeatInterval is Δ: the idle-heartbeat cadence and the default
	// flush cadence.
	HeartbeatInterval time.Duration
	// BatchSize caps the outbound buffer before an inline flush
	// (0 = default 128, 1 = flush on every update).
	BatchSize int
	// FlushInterval is the timed flush cadence (0 = HeartbeatInterval,
	// negative = flush inline on every update).
	FlushInterval time.Duration
	// CatchUp enables sequenced-stream verification and gap recovery on the
	// inbound side. Disabled, the manager applies whatever arrives and
	// advances the VV optimistically — the pre-catch-up semantics, right for
	// in-memory deployments.
	CatchUp bool
	// Source serves outbound catch-up streams; nil answers requests with
	// Unsupported.
	Source Source
	// MaxInFlightBytes bounds the un-acked catch-up data per stream
	// (0 = default 1 MiB).
	MaxInFlightBytes int
	// MaxDCs caps the DC ids this node can ever track — the capacity of the
	// membership view and the inbound link table. 0 means NumDCs: fixed
	// membership, no joins possible.
	MaxDCs int
	// Joining marks this node's DC as bootstrapping into an existing
	// deployment: the manager sends JoinRequests to every active sibling,
	// pulls each link's history through catch-up, and announces the DC
	// Active when every link is synced. Requires CatchUp (bootstrap *is* the
	// catch-up protocol).
	Joining bool
	// JoinTimeout abandons a bootstrap that has not completed within the
	// given duration: the manager stops soliciting and JoinFailed reports
	// true, so the operator can unwind the half-joined DC cleanly instead
	// of letting it solicit forever. 0 means no deadline.
	JoinTimeout time.Duration
	// Membership is the initial view (zero value: the first NumDCs DCs are
	// active). Deployments that grew or shrank pass the current view so
	// restarted and joining servers start from reality.
	Membership msg.Membership
}

// Stats counts the manager's catch-up activity.
type Stats struct {
	// Requested counts inbound catch-up rounds this node started (gaps or
	// sender restarts it detected).
	Requested uint64
	// Completed counts inbound rounds that finished (Done received).
	Completed uint64
	// Served counts outbound streams this node served to lagging siblings.
	Served uint64
	// FullResyncs counts inbound rounds answered with a full re-bootstrap
	// because the requested floor was below the sender's checkpoint-
	// compacted boundary (the GC-overran-the-laggard degraded path).
	FullResyncs uint64
	// Resumed counts inbound rounds that picked up a dead predecessor's
	// persisted mid-stream progress instead of re-requesting its whole
	// range — the catch-up starvation fix for flaky links.
	Resumed uint64
	// Deferred counts fresh inbound batches parked while a catch-up round
	// was in flight on their link, so the round's chunk and Done-claim
	// application gets the CPU first (the oversubscription starvation fix).
	Deferred uint64
	// ActiveIn is the number of links currently frozen awaiting catch-up.
	ActiveIn int
}

// inLink is the receiver-side state of one inbound replication link,
// identified by the source DC (the sibling partition is fixed). Messages on
// a link are handled by one goroutine at a time in the common case, but TCP
// reconnects can briefly run two, so the state is locked.
type inLink struct {
	mu    sync.Mutex
	known bool   // first contact made; epoch/seq below are meaningful
	epoch uint64 // sender incarnation the link is synced to
	seq   uint64 // last batch sequence applied in order

	// Catch-up round state. While pending, arriving versions are installed
	// but the VV entry is frozen; chain* tracks the contiguous run of
	// sequenced messages seen during the round so it can be spliced onto the
	// resume point when Done arrives.
	pending    bool
	reqID      uint64
	reqAt      time.Time
	chainSet   bool
	chainEpoch uint64
	chainBase  uint64 // sequence immediately before the chain's first batch
	chainSeq   uint64
	chainTS    vclock.Timestamp

	// Resumable rounds. resume records, per origin, the floor below which
	// streamed chunks have already been applied contiguously — the round's
	// persisted progress. A round that dies mid-stream (frozen link, lost
	// chunk, superseding re-request) restarts from max(VV, resume) instead
	// of re-streaming everything after the VV floor, so a slow link makes
	// forward progress across rounds instead of starving. nextChunk is the
	// next contiguous chunk number expected for reqID: a chunk's Progress
	// claim is only valid once chunks 1..k have all been applied, so a gap
	// in the stream stops resume (but never version installs) from
	// advancing. Cleared when a round completes — the Done raise covers it.
	resume    vclock.VC
	nextChunk uint64

	// Eviction freeze. Acking an EvictProposal attests "I hold everything
	// through evictCap" — the entry must not pass that point before the
	// verdict, or the agreed final could cut below an already-attested
	// prefix. The freeze self-expires (evictFreezeGrace) if no notice
	// follows.
	evictCap      vclock.Timestamp
	evictCapUntil time.Time

	// Done-claim priority. While a catch-up round is pending, fresh inbound
	// batches are parked here (bounded by deferMaxBytes) instead of applied
	// inline, so under CPU oversubscription the round's chunk and Done
	// application is not starved by a firehose of new version traffic. The
	// buffer drains — outside the link lock — before the round's completion
	// raises the VV, and on link retirement. Past the byte cap batches fall
	// back to inline application (store inserts are idempotent and
	// order-independent, so mixing is safe).
	deferred      []deferredBatch
	deferredBytes int
}

// deferredBatch is one parked fresh batch: the versions to apply and the
// slot epoch they were fenced under.
type deferredBatch struct {
	vs        []*item.Version
	slotEpoch uint64
}

// deferMaxBytes bounds the parked fresh traffic per link while a catch-up
// round is pending.
const deferMaxBytes = 1 << 20

// capRaiseLocked clamps a version-vector raise on a link frozen by a
// pending eviction round. Called with st.mu held.
func capRaiseLocked(st *inLink, t vclock.Timestamp) vclock.Timestamp {
	if st.evictCap > 0 && t > st.evictCap && time.Now().Before(st.evictCapUntil) {
		return st.evictCap
	}
	return t
}

// catchUpServe is one outbound catch-up stream in progress.
type catchUpServe struct {
	dc     int
	reqID  uint64
	acks   chan uint64
	cancel chan struct{}
}

// evictRound is one forced-removal coordination round in progress: the
// proposer waits for an EvictAck from every survivor in need, folding the
// acked version-vector entries into the agreed final.
type evictRound struct {
	dc    int
	reqID uint64
	need  map[int]bool
	final vclock.Timestamp
	done  chan struct{}
}

// holdback is the GC floor owed to one lagging catch-up requester: the
// server must not let the global prune point pass what the laggard has not
// received yet (its request floor for this link, its Have entries for
// departed origins).
type holdback struct {
	floors  vclock.VC // entry-wise: prune nothing above these
	since   time.Time // when the laggard was first seen (holdback age)
	lastReq time.Time // last request or served chunk (expiry clock)
}

// Manager owns a partition server's replication plane: outbound buffering,
// flush and heartbeat cadence, per-link sequence numbers, and both sides of
// the catch-up protocol.
type Manager struct {
	cfg    Config
	m, n   int
	maxDCs int
	clk    *clock.Clock
	ep     Transport
	be     Backend
	epoch  uint64 // incarnation id, immutable

	// viewMu guards the membership view; targets caches the fan-out set
	// (remote member DCs) so the flush path reads it with one atomic load.
	viewMu      sync.Mutex
	view        msg.Membership
	joinAskAt   time.Time     // last JoinRequest broadcast (rate limit)
	joinBackoff time.Duration // current re-solicit interval (doubles per send)
	joinStart   time.Time     // when the bootstrap began (JoinTimeout anchor)
	targets     atomic.Pointer[[]int]
	joining     atomic.Bool // this DC is bootstrapping
	joinFailed  atomic.Bool // bootstrap abandoned (JoinTimeout elapsed)
	retired     atomic.Bool // this DC has left: Publish refuses new writes

	// evictMu guards the forced-removal round this node is proposing (at
	// most one at a time).
	evictMu sync.Mutex
	evict   *evictRound

	// holdMu guards the GC holdback table: per requesting DC, the floors the
	// local GC contribution must not pass while the laggard is draining, and
	// the first-seen time of any Joining DC (a joiner needs everything).
	holdMu    sync.Mutex
	holdbacks map[int]*holdback
	joinSeen  map[int]time.Time

	fanout        bool // MaxDCs > 1: there may be someone to replicate to
	batchSize     int
	syncFlush     bool
	hbDrivesFlush bool
	maxInFlight   int
	reRequest     time.Duration

	// floor is the incarnation's starting history floor: every version this
	// node originated before this incarnation has a timestamp ≤ floor (the
	// recovered WAL floor; 0 for a fresh store). Advertised on every
	// sequenced message so a first-contact receiver can tell whether the
	// stream's past holds history it never saw. Immutable.
	floor vclock.Timestamp

	// mu serializes the outbound stream: the buffer, the batch sequence
	// counter, and every send to sibling DCs (per-link FIFO order must match
	// update-timestamp order). PrepareLocal runs under it so a timestamp is
	// never assigned out of enqueue order.
	mu     sync.Mutex
	buf    []*item.Version
	seq    uint64           // last flushed batch sequence
	lastTS vclock.Timestamp // highest timestamp handed to the transport

	in []*inLink // inbound link state, indexed by source DC

	serveMu sync.Mutex
	serving map[int]*catchUpServe // outbound streams by destination DC

	reqSeq         atomic.Uint64
	statReq        atomic.Uint64
	statDone       atomic.Uint64
	statServed     atomic.Uint64
	statFullResync atomic.Uint64
	statResumed    atomic.Uint64
	statDeferred   atomic.Uint64
	activeIn       atomic.Int64

	stopped atomic.Bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

// NewManager builds and starts a replication manager: its flush and
// heartbeat loops are running when it returns.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Clock == nil || cfg.Endpoint == nil || cfg.Backend == nil {
		return nil, errors.New("repl: Clock, Endpoint and Backend are required")
	}
	if cfg.NumDCs < 1 {
		return nil, fmt.Errorf("repl: invalid NumDCs %d", cfg.NumDCs)
	}
	if cfg.BatchSize < 0 || cfg.MaxInFlightBytes < 0 {
		return nil, errors.New("repl: BatchSize and MaxInFlightBytes must be >= 0")
	}
	maxDCs := cfg.MaxDCs
	if maxDCs == 0 {
		maxDCs = cfg.NumDCs
	}
	if maxDCs < cfg.NumDCs {
		return nil, fmt.Errorf("repl: MaxDCs %d below NumDCs %d", maxDCs, cfg.NumDCs)
	}
	if len(cfg.Membership.Status) > maxDCs {
		return nil, fmt.Errorf("repl: initial membership names %d DCs, capacity is %d",
			len(cfg.Membership.Status), maxDCs)
	}
	if cfg.Joining && !cfg.CatchUp {
		return nil, errors.New("repl: Joining requires CatchUp (bootstrap is the catch-up protocol)")
	}
	if cfg.ID.DC < 0 || cfg.ID.DC >= maxDCs {
		return nil, fmt.Errorf("repl: id %v outside the DC capacity %d", cfg.ID, maxDCs)
	}
	r := &Manager{
		cfg:         cfg,
		m:           cfg.ID.DC,
		n:           cfg.ID.Partition,
		maxDCs:      maxDCs,
		clk:         cfg.Clock,
		ep:          cfg.Endpoint,
		be:          cfg.Backend,
		epoch:       uint64(cfg.Clock.Now()), // monotone across in-process restarts
		fanout:      maxDCs > 1,
		batchSize:   cfg.BatchSize,
		maxInFlight: cfg.MaxInFlightBytes,
		serving:     make(map[int]*catchUpServe),
		holdbacks:   make(map[int]*holdback),
		joinSeen:    make(map[int]time.Time),
		stop:        make(chan struct{}),
	}
	// The membership view lives at full capacity; slots beyond the current
	// deployment stay DCUnknown until a join claims them.
	status := make([]uint8, maxDCs)
	if cfg.Membership.Status != nil {
		copy(status, cfg.Membership.Status)
	} else {
		for i := 0; i < cfg.NumDCs; i++ {
			status[i] = msg.DCActive
		}
	}
	if cfg.Joining {
		status[r.m] = msg.DCJoining
		r.joining.Store(true)
	} else if status[r.m] == msg.DCUnknown {
		status[r.m] = msg.DCActive
	}
	// The final-timestamp lattice rides along with the statuses: a restarted
	// server seeded with a view that already records departures must keep
	// their caps, or it would re-adopt a dead DC's un-agreed suffix.
	var final vclock.VC
	if len(cfg.Membership.Final) > 0 {
		final = cfg.Membership.Final.Clone()
	}
	r.view = msg.Membership{Epoch: cfg.Membership.Epoch, Status: status, Final: final}
	r.rebuildTargetsLocked()
	if r.batchSize == 0 {
		r.batchSize = defaultBatchSize
	}
	if r.maxInFlight == 0 {
		r.maxInFlight = defaultMaxInFlight
	}
	flushInterval := cfg.FlushInterval
	if flushInterval == 0 {
		flushInterval = cfg.HeartbeatInterval
	}
	r.syncFlush = r.batchSize == 1 || flushInterval <= 0
	r.hbDrivesFlush = !r.syncFlush && flushInterval == cfg.HeartbeatInterval
	r.reRequest = reRequestPerHeartbeat * cfg.HeartbeatInterval
	if r.reRequest < minReRequestInterval {
		r.reRequest = minReRequestInterval
	}
	if r.reRequest > maxReRequestInterval {
		r.reRequest = maxReRequestInterval
	}
	// The resume floor: a recovered server starts its stream at its replayed
	// local entry, so a catch-up snapshot taken before its first flush still
	// covers everything the previous incarnation acknowledged — and every
	// sequenced message advertises it so first-contact receivers can tell
	// whether they are behind this node's past.
	r.lastTS = r.be.VVEntry(r.m)
	r.floor = r.lastTS
	r.in = make([]*inLink, maxDCs)
	for i := range r.in {
		r.in[i] = &inLink{}
	}

	// The join bootstrap starts before the background loops: heartbeatLoop
	// reads joinStart to enforce JoinTimeout, so it must be published before
	// the goroutine exists (goroutine creation is the happens-before edge).
	if r.joining.Load() {
		r.joinStart = time.Now()
		r.sendJoinRequests()
		// Degenerate join (no active sibling to sync against, e.g. the first
		// DC of a deployment): complete immediately.
		r.maybeFinishJoin()
	}
	if cfg.HeartbeatInterval > 0 && r.fanout {
		r.wg.Add(1)
		go r.heartbeatLoop()
	}
	if !r.syncFlush && r.fanout && !r.hbDrivesFlush {
		r.wg.Add(1)
		go r.flushLoop(flushInterval)
	}
	if !r.syncFlush && r.fanout && flushInterval/4 > 0 {
		r.wg.Add(1)
		go r.adaptiveFlushLoop(flushInterval)
	}
	return r, nil
}

// Epoch returns the manager's incarnation id.
func (r *Manager) Epoch() uint64 { return r.epoch }

// Stats returns a snapshot of the catch-up counters.
func (r *Manager) Stats() Stats {
	return Stats{
		Requested:   r.statReq.Load(),
		Completed:   r.statDone.Load(),
		Served:      r.statServed.Load(),
		FullResyncs: r.statFullResync.Load(),
		Resumed:     r.statResumed.Load(),
		Deferred:    r.statDeferred.Load(),
		ActiveIn:    int(r.activeIn.Load()),
	}
}

// LinkStates reports the health of every inbound replication link, indexed
// by source DC: "self" for this node's own slot, "evicted" for a departed
// DC (graceful or forced), "catching-up" while a recovery round is making
// progress, "frozen" when a pending round has gone quiet (the sender is not
// answering), "active" for a synced link, and "idle" for a slot that has
// never made contact (unknown or unused capacity).
func (r *Manager) LinkStates() []string {
	r.viewMu.Lock()
	status := make([]uint8, r.maxDCs)
	copy(status, r.view.Status)
	r.viewMu.Unlock()
	out := make([]string, r.maxDCs)
	for dc := 0; dc < r.maxDCs; dc++ {
		switch {
		case dc == r.m:
			out[dc] = "self"
			continue
		case status[dc] == msg.DCLeft:
			out[dc] = "evicted"
			continue
		}
		st := r.in[dc]
		st.mu.Lock()
		switch {
		case st.pending && time.Since(st.reqAt) <= 2*r.reRequest:
			out[dc] = "catching-up"
		case st.pending:
			out[dc] = "frozen"
		case st.known:
			out[dc] = "active"
		default:
			out[dc] = "idle"
		}
		st.mu.Unlock()
	}
	return out
}

// ---------------------------------------------------------------------------
// Membership
// ---------------------------------------------------------------------------

// View returns a copy of the current membership view.
func (r *Manager) View() msg.Membership {
	r.viewMu.Lock()
	defer r.viewMu.Unlock()
	return r.view.Clone()
}

// Bootstrapped reports whether this node participates fully in replication:
// true for ordinary members, and for a joiner once every active inbound
// link has been synced (catch-up complete) and the DC announced Active.
func (r *Manager) Bootstrapped() bool { return !r.joining.Load() }

// JoinFailed reports that the bootstrap was abandoned: Config.JoinTimeout
// elapsed before every active link synced. The manager has stopped
// soliciting; the owner should tear the node down.
func (r *Manager) JoinFailed() bool { return r.joinFailed.Load() }

// statusOf returns the membership status of dc.
func (r *Manager) statusOf(dc int) uint8 {
	r.viewMu.Lock()
	defer r.viewMu.Unlock()
	return r.view.Get(dc)
}

// finalOf returns the recorded final timestamp of dc (0 = none known).
func (r *Manager) finalOf(dc int) vclock.Timestamp {
	r.viewMu.Lock()
	defer r.viewMu.Unlock()
	return r.view.FinalOf(dc)
}

// leftFinal reports whether dc has departed, and its recorded final.
func (r *Manager) leftFinal(dc int) (vclock.Timestamp, bool) {
	r.viewMu.Lock()
	defer r.viewMu.Unlock()
	return r.view.FinalOf(dc), r.view.Get(dc) == msg.DCLeft
}

// setFinal records the final timestamp of a departed DC in the membership
// lattice (entries only ever rise), so it travels with every view this node
// relays and survives restarts that seed from a sibling's view.
func (r *Manager) setFinal(dc int, final vclock.Timestamp) {
	if dc < 0 || dc >= r.maxDCs || final == 0 {
		return
	}
	r.viewMu.Lock()
	r.view.SetFinal(dc, final)
	r.viewMu.Unlock()
}

// rebuildTargetsLocked recomputes the fan-out set — every remote Joining or
// Active DC — from the view. A departed node sends nothing and accepts no
// new writes (a write acked after the departure would replicate to nobody).
// Called with viewMu held (or from the constructor before the manager is
// shared).
func (r *Manager) rebuildTargetsLocked() {
	ts := make([]int, 0, len(r.view.Status))
	if r.view.Get(r.m) != msg.DCLeft {
		for dc, st := range r.view.Status {
			if dc != r.m && (st == msg.DCActive || st == msg.DCJoining) {
				ts = append(ts, dc)
			}
		}
	} else {
		r.retired.Store(true)
	}
	r.targets.Store(&ts)
}

// applyView merges v into the local view. On change it rebuilds the fan-out
// targets, retires the links of any DC the merge marked departed, and seals
// any DC that departed *in this merge* — reconciling storage and the
// version vector against its recorded final timestamp.
func (r *Manager) applyView(v msg.Membership) {
	r.viewMu.Lock()
	was := r.view.Status
	prev := make([]uint8, len(was))
	copy(prev, was)
	if !r.view.Merge(v, r.maxDCs) {
		r.viewMu.Unlock()
		return
	}
	r.rebuildTargetsLocked()
	var left, newly []int
	var finals []vclock.Timestamp
	for dc, st := range r.view.Status {
		if st != msg.DCLeft || dc == r.m {
			continue
		}
		left = append(left, dc)
		if dc >= len(prev) || prev[dc] != msg.DCLeft {
			newly = append(newly, dc)
			finals = append(finals, r.view.FinalOf(dc))
		}
	}
	r.viewMu.Unlock()
	for _, dc := range left {
		r.retireLink(dc)
	}
	for i, dc := range newly {
		r.sealDeparted(dc, finals[i])
	}
}

// retireLink tears down the replication state owed to a departed DC: an
// inbound catch-up round pending on the link is cancelled (nobody is left
// to answer it) and an outbound stream serving the DC is stopped.
func (r *Manager) retireLink(dc int) {
	st := r.in[dc]
	st.mu.Lock()
	if st.pending {
		st.pending = false
		r.activeIn.Add(-1)
	}
	batches := st.deferred
	st.deferred, st.deferredBytes = nil, 0
	st.evictCap = 0 // the verdict is in; the Left status caps from here on
	st.mu.Unlock()
	// Fresh batches parked during a round the departure cancelled are still
	// applied — filterDeparted screens the un-agreed suffix now that the DC
	// is marked Left. Applied outside the link lock: filterDeparted takes
	// the view lock.
	for _, b := range batches {
		r.be.ApplyRemote(r.filterDeparted(b.vs), b.slotEpoch)
	}
	r.serveMu.Lock()
	if s := r.serving[dc]; s != nil {
		close(s.cancel)
		delete(r.serving, dc)
	}
	r.serveMu.Unlock()
	r.holdMu.Lock()
	delete(r.holdbacks, dc)
	delete(r.joinSeen, dc)
	r.holdMu.Unlock()
}

// sealDeparted reconciles this node against a DC that just transitioned to
// Left with the recorded final timestamp: versions beyond the final — the
// dead DC's un-agreed suffix, applied optimistically before the eviction
// was decided — are dropped from storage, and if this node's prefix is
// still short of the final, gap-fill catch-up rounds are started on the
// surviving links (every live sibling re-ships departed-origin history it
// holds, see serveCatchUp). With no recorded final (a legacy graceful leave
// whose notice carried it out of band) there is nothing to reconcile
// against, so only the link teardown in applyView applies.
func (r *Manager) sealDeparted(dc int, final vclock.Timestamp) {
	if final == 0 {
		return
	}
	r.be.DropAbove(dc, final)
	if !r.cfg.CatchUp || r.be.VVEntry(dc) >= final {
		return
	}
	r.fillDepartedGaps()
}

// fillDepartedGaps starts a catch-up round on every quiet surviving link
// while some departed DC's recorded final exceeds this node's entry for it:
// the rounds carry this node's full version vector (Have), so any sibling
// holding the missing departed-origin history re-ships it and bounds the
// claim in its Done chunk. Re-invoked from the heartbeat loop until the gap
// closes — a single shot could race a survivor that has not yet learned of
// the departure and would answer without a claim.
func (r *Manager) fillDepartedGaps() {
	r.viewMu.Lock()
	var gap bool
	for dc, st := range r.view.Status {
		if st == msg.DCLeft && dc != r.m {
			if f := r.view.FinalOf(dc); f > 0 && r.be.VVEntry(dc) < f {
				gap = true
				break
			}
		}
	}
	var live []int
	if gap {
		for dc, st := range r.view.Status {
			if dc != r.m && st == msg.DCActive {
				live = append(live, dc)
			}
		}
	}
	r.viewMu.Unlock()
	for _, dc := range live {
		st := r.in[dc]
		st.mu.Lock()
		if !st.pending && time.Since(st.reqAt) > r.reRequest {
			r.startCatchUpLocked(st, dc)
		}
		st.mu.Unlock()
	}
}

// sendJoinRequests asks the sibling partition in every active DC to add
// this (joining) DC to its fan-out. Idempotent; re-sent with exponential
// backoff (jittered, capped) until every link makes first contact, so a
// lost request cannot wedge the join and a wedged join cannot flood the
// deployment with solicitations.
func (r *Manager) sendJoinRequests() {
	r.viewMu.Lock()
	r.joinAskAt = time.Now()
	if r.joinBackoff == 0 {
		r.joinBackoff = r.reRequest
	} else if r.joinBackoff < maxReRequestInterval {
		r.joinBackoff *= 2
		if r.joinBackoff > maxReRequestInterval {
			r.joinBackoff = maxReRequestInterval
		}
	}
	view := r.view.Clone()
	r.viewMu.Unlock()
	for dc, st := range view.Status {
		if dc != r.m && st == msg.DCActive {
			r.ep.Send(netemu.NodeID{DC: dc, Partition: r.n},
				msg.JoinRequest{DC: r.m, View: view})
		}
	}
}

// maybeFinishJoin completes the bootstrap when every active inbound link is
// synced: flip this DC to Active, broadcast the new view, and signal the
// backend. Called after every event that can sync a link. The completeness
// check and the flip run under viewMu so a concurrently-merged view (a DC
// learned mid-check) serializes with the decision: it is either examined
// here or arrives after the flip, when first-contact catch-up covers it
// like for any other active member.
func (r *Manager) maybeFinishJoin() {
	if !r.joining.Load() || r.joinFailed.Load() {
		return // an abandoned bootstrap must not announce itself Active
	}
	r.viewMu.Lock()
	for dc, st := range r.view.Status {
		if dc == r.m || st != msg.DCActive {
			continue
		}
		l := r.in[dc]
		l.mu.Lock()
		ok := l.known && !l.pending
		l.mu.Unlock()
		if !ok {
			r.viewMu.Unlock()
			return
		}
	}
	if !r.joining.CompareAndSwap(true, false) {
		r.viewMu.Unlock()
		return
	}
	// The lattice only moves forward: a concurrent forced removal (self
	// marked Left) must not be overwritten by the Active announcement.
	if r.view.Status[r.m] == msg.DCJoining {
		r.view.Status[r.m] = msg.DCActive
		r.view.Epoch++
	}
	r.rebuildTargetsLocked()
	view := r.view.Clone()
	r.viewMu.Unlock()
	for _, dc := range *r.targets.Load() {
		r.ep.Send(netemu.NodeID{DC: dc, Partition: r.n}, msg.MembershipUpdate{View: view})
	}
	r.be.Joined()
}

// Leave announces this node's departure: the buffered tail is flushed and a
// LeaveNotice carrying the final timestamp follows it on the same FIFO
// links, so every receiver holds the leaver's complete history when the
// notice arrives. The notice is this node's last word — the fan-out is
// emptied and new writes are refused under the same critical section, so
// nothing (no batch, no heartbeat, no acked-but-unreplicated write) can
// postdate it. It returns the announced final timestamp.
func (r *Manager) Leave() vclock.Timestamp {
	r.viewMu.Lock()
	if r.view.Status[r.m] != msg.DCLeft {
		r.view.Status[r.m] = msg.DCLeft
		r.view.Epoch++
	}
	view := r.view.Clone()
	// Targets are not rebuilt yet: the final flush and the notice itself
	// still ride the existing links.
	r.viewMu.Unlock()
	r.mu.Lock()
	r.flushLocked()
	final := r.lastTS
	for _, dc := range *r.targets.Load() {
		r.ep.Send(netemu.NodeID{DC: dc, Partition: r.n},
			msg.LeaveNotice{DC: r.m, Final: final, View: view})
	}
	// Retire while still holding the outbound lock: the heartbeat loop and
	// Publish both serialize on it, so the first thing either sees after
	// the notice is an empty fan-out and a refused write path.
	empty := make([]int, 0)
	r.targets.Store(&empty)
	r.retired.Store(true)
	r.mu.Unlock()
	return final
}

// HandleJoinRequest merges the joiner into the view — adding it to the
// fan-out, so the live stream starts flowing — and answers with the merged
// view. The joiner's history bootstrap is *not* served here: it rides the
// ordinary catch-up protocol, triggered by the joiner's first contact with
// this node's sequenced stream.
func (r *Manager) HandleJoinRequest(src netemu.NodeID, m msg.JoinRequest) {
	r.applyView(m.View)
	r.mu.Lock()
	through := r.lastTS
	r.mu.Unlock()
	r.ep.Send(src, msg.JoinAccept{View: r.View(), Through: through})
}

// HandleJoinAccept merges the acceptor's view (the joiner may learn of DCs
// that joined or left before it arrived).
func (r *Manager) HandleJoinAccept(src netemu.NodeID, m msg.JoinAccept) {
	r.applyView(m.View)
}

// HandleMembershipUpdate merges a broadcast view change.
func (r *Manager) HandleMembershipUpdate(src netemu.NodeID, m msg.MembershipUpdate) {
	r.applyView(m.View)
}

// HandleLeaveNotice retires a departed DC: the version-vector entry is
// raised to the leaver's final timestamp — complete by FIFO order, since
// the notice follows the leaver's last flush on the same link — the final
// is recorded in the membership lattice (so later joiners and restarted
// survivors inherit the cap), and the view merge drops the DC from the
// fan-out and cancels catch-up state on the link. The raise runs first so
// the departure seal sees a closed gap and skips the gap-fill rounds.
func (r *Manager) HandleLeaveNotice(src netemu.NodeID, m msg.LeaveNotice) {
	if m.DC == src.DC && src.DC >= 0 && src.DC < r.maxDCs {
		r.be.RaiseVV(src.DC, m.Final)
	}
	r.setFinal(m.DC, m.Final)
	r.applyView(m.View)
	r.maybeFinishJoin() // a joiner no longer waits on the departed link
}

// ---------------------------------------------------------------------------
// Forced removal
// ---------------------------------------------------------------------------

// ProposeEvict runs the forced-removal round for a crashed DC: every active
// survivor is asked to attest its version-vector entry for the dead DC (a
// prefix-complete "I hold everything it originated through t" claim), and
// the agreed final is the maximum attestation — every version at or below
// it provably survives at the attesting survivor, and everything above it
// was acknowledged by nobody. On agreement the proposer freezes the view
// (Status Left, final recorded in the lattice), reconciles its own state
// (sealDeparted), and broadcasts msg.EvictNotice so the survivors do the
// same. Proposals are re-sent with backoff until every ack arrives or the
// timeout elapses; evicting an already-departed DC returns its recorded
// final immediately.
//
// Only one round may run per manager at a time. Concurrent proposers (split
// views) are safe: finals merge by maximum in the membership lattice and
// any survivor left short of the winning final gap-fills through catch-up.
func (r *Manager) ProposeEvict(dead int, timeout time.Duration) (vclock.Timestamp, error) {
	if dead < 0 || dead >= r.maxDCs {
		return 0, fmt.Errorf("repl: evict target %d outside DC capacity %d", dead, r.maxDCs)
	}
	if dead == r.m {
		return 0, errors.New("repl: a DC cannot propose its own eviction")
	}
	if r.stopped.Load() {
		return 0, errors.New("repl: manager stopped")
	}
	if final, left := r.leftFinal(dead); left {
		return final, nil
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}

	// Freeze and attest the proposer's own entry first, exactly like an
	// acking survivor: the agreed final must not fall below an entry any
	// participant keeps raising during the round.
	st := r.in[dead]
	st.mu.Lock()
	entry := r.be.VVEntry(dead)
	st.evictCap = entry
	st.evictCapUntil = time.Now().Add(evictFreezeGrace)
	st.mu.Unlock()

	r.viewMu.Lock()
	view := r.view.Clone()
	r.viewMu.Unlock()
	need := make(map[int]bool)
	for dc, s := range view.Status {
		if dc != r.m && dc != dead && s == msg.DCActive {
			need[dc] = true
		}
	}
	round := &evictRound{
		dc: dead, reqID: r.reqSeq.Add(1), need: need,
		final: entry, done: make(chan struct{}),
	}
	r.evictMu.Lock()
	if r.evict != nil {
		r.evictMu.Unlock()
		return 0, errors.New("repl: an eviction round is already in progress")
	}
	r.evict = round
	r.evictMu.Unlock()
	defer func() {
		r.evictMu.Lock()
		if r.evict == round {
			r.evict = nil
		}
		r.evictMu.Unlock()
	}()

	prop := msg.EvictProposal{DC: dead, ReqID: round.reqID, View: view}
	send := func() {
		r.evictMu.Lock()
		targets := make([]int, 0, len(round.need))
		for dc := range round.need {
			targets = append(targets, dc)
		}
		r.evictMu.Unlock()
		for _, dc := range targets {
			r.ep.Send(netemu.NodeID{DC: dc, Partition: r.n}, prop)
		}
	}
	if len(need) > 0 {
		send()
		deadline := time.NewTimer(timeout)
		defer deadline.Stop()
		backoff := r.reRequest
		resend := time.NewTimer(backoff)
		defer resend.Stop()
	wait:
		for {
			select {
			case <-round.done:
				break wait
			case <-r.stop:
				return 0, errors.New("repl: manager stopped")
			case <-deadline.C:
				return 0, fmt.Errorf("repl: eviction of DC %d timed out awaiting survivor acks", dead)
			case <-resend.C:
				send()
				if backoff < maxReRequestInterval {
					backoff *= 2
					if backoff > maxReRequestInterval {
						backoff = maxReRequestInterval
					}
				}
				resend.Reset(backoff)
			}
		}
	}
	r.evictMu.Lock()
	final := round.final
	r.evictMu.Unlock()

	// Adopt the verdict and tell everyone. The broadcast rides the rebuilt
	// fan-out (survivors and joiners; the dead DC is out of it), and the
	// lattice-merged view travels with it so even a receiver that missed
	// the proposal converges in one hop.
	r.viewMu.Lock()
	if r.view.Get(dead) != msg.DCLeft {
		r.view.Status[dead] = msg.DCLeft
		r.view.Epoch++
	}
	r.view.SetFinal(dead, final)
	r.rebuildTargetsLocked()
	view = r.view.Clone()
	r.viewMu.Unlock()
	r.retireLink(dead)
	r.sealDeparted(dead, final)
	notice := msg.EvictNotice{DC: dead, Final: final, View: view}
	for _, dc := range *r.targets.Load() {
		r.ep.Send(netemu.NodeID{DC: dc, Partition: r.n}, notice)
	}
	return final, nil
}

// HandleEvictProposal attests this node's version-vector entry for the DC
// under eviction and freezes it there until the verdict (or the freeze
// grace) — between the ack and the notice a gap-free straggler must not
// push the entry past what was attested, or the agreed final could cut
// below an already-claimed prefix.
func (r *Manager) HandleEvictProposal(src netemu.NodeID, m msg.EvictProposal) {
	if !r.validSrc(src.DC) || m.DC < 0 || m.DC >= r.maxDCs {
		return
	}
	r.applyView(m.View)
	if m.DC == r.m {
		return // nobody attests their own eviction; the notice is the verdict
	}
	st := r.in[m.DC]
	st.mu.Lock()
	entry := r.be.VVEntry(m.DC)
	st.evictCap = entry
	st.evictCapUntil = time.Now().Add(evictFreezeGrace)
	st.mu.Unlock()
	r.ep.Send(src, msg.EvictAck{DC: m.DC, ReqID: m.ReqID, Entry: entry})
}

// HandleEvictAck folds one survivor's attestation into the round in
// progress; the last awaited ack completes it.
func (r *Manager) HandleEvictAck(src netemu.NodeID, m msg.EvictAck) {
	if !r.validSrc(src.DC) {
		return
	}
	r.evictMu.Lock()
	round := r.evict
	if round == nil || round.dc != m.DC || round.reqID != m.ReqID || !round.need[src.DC] {
		r.evictMu.Unlock()
		return
	}
	delete(round.need, src.DC)
	if m.Entry > round.final {
		round.final = m.Entry
	}
	if len(round.need) == 0 {
		close(round.done)
	}
	r.evictMu.Unlock()
}

// HandleEvictNotice adopts the eviction verdict: record the agreed final in
// the lattice and merge the view — the Left transition retires the link,
// purges the dead DC's un-agreed suffix from storage, and starts gap-fill
// rounds if this node's prefix is short of the final (sealDeparted, via
// applyView). A notice naming this node's own DC means the deployment
// declared *us* dead while we were merely unreachable: the merge retires
// this node (writes refused, fan-out emptied) — the data is safe on the
// survivors up to the final, and rejoining requires a fresh join.
func (r *Manager) HandleEvictNotice(src netemu.NodeID, m msg.EvictNotice) {
	if m.DC < 0 || m.DC >= r.maxDCs {
		return
	}
	r.setFinal(m.DC, m.Final)
	r.applyView(m.View)
	r.maybeFinishJoin() // a joiner no longer waits on the departed link
}

// Close stops the background loops and any catch-up streams in progress.
// With flush set (graceful shutdown) the buffered tail is handed to the
// transport first; without it (crash simulation) the tail is discarded — the
// loss catch-up exists to repair.
func (r *Manager) Close(flush bool) {
	if !r.stopped.CompareAndSwap(false, true) {
		return
	}
	close(r.stop)
	r.serveMu.Lock()
	for _, s := range r.serving {
		close(s.cancel)
	}
	r.serveMu.Unlock()
	r.wg.Wait()
	r.mu.Lock()
	if flush {
		r.flushLocked()
	} else {
		r.buf = nil
	}
	r.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Outbound: publish, flush, heartbeat
// ---------------------------------------------------------------------------

// ErrRetired is returned by Publish after the local DC has left the
// deployment: nothing rides the links anymore, so acking a write then would
// lose it the moment the node shuts down.
var ErrRetired = errors.New("repl: local DC has left the deployment")

// Locked runs fn under the outbound lock, serialized against Publish's
// critical section. The slot-table fence uses it: installing a new table
// inside Locked guarantees that every write committed under the old table
// has already raised the local version-vector entry when the install
// returns, so a reshard's drain marks (captured after the install) cover
// every version the old layout will ever produce.
func (r *Manager) Locked(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn()
}

// Publish runs the local write path: under the outbound lock it lets the
// backend assign v its timestamp and install it, then enqueues v for
// replication, flushing inline when the batch is full (or unbatched). It
// returns ErrRetired when the DC has left the deployment, and surfaces the
// backend's refusal (stopped, or the key's slot moved away) verbatim.
func (r *Manager) Publish(v *item.Version) (vclock.Timestamp, error) {
	r.mu.Lock()
	if r.retired.Load() {
		r.mu.Unlock()
		return 0, ErrRetired
	}
	ut, err := r.be.PrepareLocal(v)
	if err != nil {
		r.mu.Unlock()
		return 0, err
	}
	if r.fanout {
		r.buf = append(r.buf, v)
		if r.syncFlush || len(r.buf) >= r.batchSize {
			r.flushLocked()
		}
	}
	r.mu.Unlock()
	return ut, nil
}

// flushLocked stamps the buffered updates with the next batch sequence and
// sends them to every member DC. Called with mu held so batches (and
// heartbeats) leave each link in timestamp order. The buffer's slice is
// handed to the message (versions are immutable and shared across DCs).
// With an empty fan-out (a deployment not yet grown) the sequence still
// advances and the versions rest in the WAL — a later joiner's first
// contact sees the sequence and pulls them through catch-up.
func (r *Manager) flushLocked() {
	if len(r.buf) == 0 {
		return
	}
	r.seq++
	hb := r.buf[len(r.buf)-1].UpdateTime
	if hb > r.lastTS {
		r.lastTS = hb
	}
	m := msg.ReplicateBatch{Versions: r.buf, HBTime: hb, Epoch: r.epoch, Seq: r.seq,
		Floor: r.floor, SlotEpoch: r.be.SlotEpoch()}
	r.buf = nil
	for _, dc := range *r.targets.Load() {
		r.ep.Send(netemu.NodeID{DC: dc, Partition: r.n}, m)
	}
}

// heartbeatLoop flushes the buffer every Δ (when Δ is the flush cadence) and
// broadcasts the local clock when no update has advanced the local
// version-vector entry for a heartbeat interval (Algorithm 2, lines 19-26).
// Heartbeats are suppressed while updates sit in the buffer, so they never
// overtake buffered versions with smaller timestamps.
func (r *Manager) heartbeatLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		r.mu.Lock()
		if r.hbDrivesFlush {
			r.flushLocked()
		}
		ct := r.clk.Now()
		idle := len(r.buf) == 0 &&
			ct >= r.be.VVEntry(r.m)+vclock.Timestamp(r.cfg.HeartbeatInterval)
		if idle {
			if ct > r.lastTS {
				r.lastTS = ct
			}
			hb := msg.Heartbeat{Time: ct, Epoch: r.epoch, Seq: r.seq, Floor: r.floor}
			for _, dc := range *r.targets.Load() {
				r.ep.Send(netemu.NodeID{DC: dc, Partition: r.n}, hb)
			}
		}
		r.mu.Unlock()
		if idle {
			r.be.RaiseVV(r.m, ct)
		}
		if r.joining.Load() && !r.joinFailed.Load() {
			if r.cfg.JoinTimeout > 0 && time.Since(r.joinStart) > r.cfg.JoinTimeout {
				// Abandon the bootstrap: stop soliciting and let the owner
				// unwind the half-joined DC via JoinFailed.
				r.joinFailed.Store(true)
			} else {
				// A lost JoinRequest (or a sibling that was down) must not
				// wedge the bootstrap: re-ask until every active link has
				// made first contact — with jittered exponential backoff, so
				// a deployment that cannot answer is not flooded — and
				// re-check completion in case the last sync arrived without
				// a message to piggyback on.
				r.viewMu.Lock()
				wait := r.joinBackoff
				if wait > 0 {
					wait += time.Duration(rand.Int64N(int64(wait/2) + 1))
				}
				resend := time.Since(r.joinAskAt) > wait
				r.viewMu.Unlock()
				if resend {
					r.sendJoinRequests()
				}
				r.maybeFinishJoin()
			}
		}
		if r.cfg.CatchUp {
			// Departed-DC gaps heal through ordinary catch-up on the live
			// links; retry until the recorded finals are reached (a one-shot
			// round can race a survivor that has not yet learned of the
			// departure and answers without a claim).
			r.fillDepartedGaps()
		}
	}
}

// flushLoop drains the buffer on a cadence distinct from the heartbeat
// interval (FlushInterval ≠ Δ).
func (r *Manager) flushLoop(interval time.Duration) {
	defer r.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		r.mu.Lock()
		r.flushLocked()
		r.mu.Unlock()
	}
}

// adaptiveFlushLoop is the load-sensitive half of the flush cadence: at a
// quarter of the flush interval it flushes any buffer that has already
// filled a quarter of the batch cap. Under load this shrinks the effective Δ
// (remote visibility improves) without touching the idle cadence — it only
// ever flushes earlier than the timed/heartbeat flush, never later, so the
// Δ freshness bound is preserved. The size trigger keeps the extra wakeups
// from fragmenting batches when traffic is light.
func (r *Manager) adaptiveFlushLoop(interval time.Duration) {
	defer r.wg.Done()
	threshold := r.batchSize / 4
	if threshold < 2 {
		threshold = 2
	}
	t := time.NewTicker(interval / 4)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		r.mu.Lock()
		if len(r.buf) >= threshold {
			r.flushLocked()
		}
		r.mu.Unlock()
	}
}

// ---------------------------------------------------------------------------
// Inbound: sequenced apply and gap detection
// ---------------------------------------------------------------------------

// HandleBatch installs a replicated batch and advances the sender DC's
// version-vector entry when the link's sequence is intact. Versions are
// always installed — POCC serves the freshest received version regardless —
// only the VV advance (the claim "I hold the complete prefix") is gated.
func (r *Manager) HandleBatch(src netemu.NodeID, m msg.ReplicateBatch) {
	if !r.validSrc(src.DC) {
		return
	}
	adv := m.HBTime
	if n := len(m.Versions); n > 0 {
		if last := m.Versions[n-1].UpdateTime; last > adv {
			adv = last
		}
	}
	// HLC receive rule: fold the remote attestation into the local clock so
	// the next local write is stamped past everything it could depend on.
	r.clk.Observe(adv)
	if r.cfg.CatchUp && m.Epoch != 0 && r.deferWhilePending(src.DC, m, adv) {
		return
	}
	r.be.ApplyRemote(r.filterDeparted(m.Versions), m.SlotEpoch)
	if !r.cfg.CatchUp || m.Epoch == 0 {
		// Catch-up disabled, or a legacy unsequenced batch: optimistic apply.
		r.be.RaiseVV(src.DC, adv)
		return
	}
	r.handleSequenced(src.DC, m.Epoch, m.Seq, m.Floor, adv, true)
}

// deferWhilePending parks a fresh sequenced batch while a catch-up round is
// in flight on its link, returning true if the batch was consumed. The
// round's bookkeeping still runs — the chain must record the batch for the
// splice at Done, and a quiet round must be re-requested — but the store
// application is postponed until the round completes (or the link retires),
// so chunk application is never starved of CPU by fresh traffic. A VV raise
// is not owed here: a pending link's entry is frozen by definition, and the
// drain runs before the completion raises.
func (r *Manager) deferWhilePending(dc int, m msg.ReplicateBatch, adv vclock.Timestamp) bool {
	st := r.in[dc]
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.pending || st.deferredBytes >= deferMaxBytes {
		return false
	}
	for _, v := range m.Versions {
		if v != nil {
			st.deferredBytes += versionBytes(v)
		}
	}
	st.deferred = append(st.deferred, deferredBatch{vs: m.Versions, slotEpoch: m.SlotEpoch})
	r.statDeferred.Add(1)
	r.noteChainLocked(st, m.Epoch, m.Seq, adv, true)
	if time.Since(st.reqAt) > r.reRequest {
		r.startCatchUpLocked(st, dc)
	}
	return true
}

// HandleHeartbeat advances the sender DC's version-vector entry
// (Algorithm 2, lines 27-28), gated on the link sequence like a batch: a
// heartbeat re-attests the sender's current sequence, which is exactly how
// an idle restarted sender (whose buffered tail died with it) is detected.
func (r *Manager) HandleHeartbeat(src netemu.NodeID, m msg.Heartbeat) {
	if !r.validSrc(src.DC) {
		return
	}
	r.clk.Observe(m.Time)
	if !r.cfg.CatchUp || m.Epoch == 0 {
		r.be.RaiseVV(src.DC, m.Time)
		return
	}
	r.handleSequenced(src.DC, m.Epoch, m.Seq, m.Floor, m.Time, false)
}

// validSrc reports whether dc is a plausible remote source this node can
// track — inbound state is indexed by DC id, so an id outside the vector
// capacity (a corrupted or hostile frame) must be dropped, not indexed.
func (r *Manager) validSrc(dc int) bool {
	return dc >= 0 && dc < r.maxDCs && dc != r.m
}

// filterDeparted screens an inbound version slice: once a DC has departed
// with an agreed final, versions it originated beyond the final are its
// un-agreed suffix — installing a straggler would resurrect state the
// forced removal already purged. The shared slice is never mutated (one
// flush fans the same message out to every sibling); a filtered copy is
// built only when something must be dropped.
func (r *Manager) filterDeparted(vs []*item.Version) []*item.Version {
	if len(vs) == 0 {
		return vs
	}
	r.viewMu.Lock()
	var status []uint8
	var finals vclock.VC
	for _, st := range r.view.Status {
		if st == msg.DCLeft {
			status = append([]uint8(nil), r.view.Status...)
			finals = r.view.Final.Clone()
			break
		}
	}
	r.viewMu.Unlock()
	if status == nil {
		return vs // nobody has departed: the common case, zero extra work
	}
	drop := func(v *item.Version) bool {
		d := v.SrcReplica
		return d >= 0 && d < len(status) && status[d] == msg.DCLeft &&
			finals.Get(d) > 0 && v.UpdateTime > finals.Get(d)
	}
	for i, v := range vs {
		if drop(v) {
			out := make([]*item.Version, i, len(vs))
			copy(out, vs[:i])
			for _, w := range vs[i+1:] {
				if !drop(w) {
					out = append(out, w)
				}
			}
			return out
		}
	}
	return vs
}

// handleSequenced runs the receiver state machine for one sequenced message
// on the link from dc. A batch consumes the next sequence number; a
// heartbeat re-attests the current one. adv is the VV advance the message
// carries when the sequence is intact; floor is the sender incarnation's
// starting history floor.
func (r *Manager) handleSequenced(dc int, epoch, seq uint64, floor, adv vclock.Timestamp, isBatch bool) {
	if final, left := r.leftFinal(dc); left {
		// A straggler from a departed DC (in flight when the notice overtook
		// it on another link): after a graceful leave nothing it attests can
		// exceed the announced final, and after a forced removal anything
		// beyond the agreed final is the dead DC's un-agreed suffix — never
		// attested, so the advance is capped there. No catch-up round may
		// start toward a DC that no longer answers.
		if final > 0 && adv > final {
			adv = final
		}
		r.be.RaiseVV(dc, adv)
		return
	}
	st := r.in[dc]
	var raise vclock.Timestamp
	st.mu.Lock()
	base := seq
	if isBatch {
		base = seq - 1
	}
	switch {
	case st.pending:
		// Catch-up in flight: track the chain for the splice at Done, and
		// re-issue the request if the round has gone quiet (a request lost
		// to a dropping link must not freeze the link forever).
		r.noteChainLocked(st, epoch, seq, adv, isBatch)
		if time.Since(st.reqAt) > r.reRequest {
			r.startCatchUpLocked(st, dc)
		}
	case !st.known:
		if base == 0 && floor <= r.be.VVEntry(dc) {
			// Nothing precedes this message in the sender's incarnation
			// (batch 1, or an idle heartbeat before any flush) and this
			// node's progress covers the incarnation's starting floor, so
			// the sender's entire past is already here: adopt the stream.
			st.known, st.epoch, st.seq = true, epoch, seq
			raise = adv
		} else {
			// The link has history this node never saw — it is the one that
			// restarted (or came up late). Resync from the recovered floor.
			r.startCatchUpLocked(st, dc)
			r.noteChainLocked(st, epoch, seq, adv, isBatch)
		}
	case epoch == st.epoch && isBatch && seq == st.seq+1:
		st.seq = seq
		raise = adv
	case epoch == st.epoch && !isBatch && seq == st.seq:
		raise = adv
	case epoch == st.epoch && seq <= st.seq:
		// Duplicate delivery (at-least-once transports); already applied.
	default:
		// A sequence hole, or a new sender incarnation whose pre-crash
		// buffer tail is gone: freeze the VV entry and fetch the missing
		// history out of the sender's log.
		r.startCatchUpLocked(st, dc)
		r.noteChainLocked(st, epoch, seq, adv, isBatch)
	}
	// The raise happens under the link lock so an eviction ack (which reads
	// the entry and freezes it at the attested point, also under the lock)
	// serializes with it — no raise can slip past a just-sent attestation.
	if raise > 0 {
		r.be.RaiseVV(dc, capRaiseLocked(st, raise))
	}
	st.mu.Unlock()
	r.maybeFinishJoin() // a first-contact adoption may have been the last link
}

// haveVV snapshots this node's full version vector — the Have field of a
// catch-up request, which tells the server what departed-origin history the
// requester is missing besides the link's own range.
func (r *Manager) haveVV() vclock.VC {
	have := make(vclock.VC, r.maxDCs)
	for i := range have {
		have[i] = r.be.VVEntry(i)
	}
	return have
}

// startCatchUpLocked opens a new catch-up round on the link: freeze VV
// advancement, reset the observed chain, and ask the sender for everything
// after this node's completion point. Called with st.mu held.
func (r *Manager) startCatchUpLocked(st *inLink, dc int) {
	if !st.pending {
		st.pending = true
		r.activeIn.Add(1)
	}
	st.chainSet = false
	st.reqID = r.reqSeq.Add(1)
	st.reqAt = time.Now()
	st.nextChunk = 1
	r.statReq.Add(1)
	have := r.haveVV()
	if len(st.resume) > 0 {
		// A prior round for this link died mid-stream: ask only for history
		// past its persisted progress, not the whole range again.
		if st.resume.Get(dc) > have[dc] {
			r.statResumed.Add(1)
		}
		have.MaxInPlace(st.resume)
	}
	r.ep.Send(netemu.NodeID{DC: dc, Partition: r.n},
		msg.CatchUpRequest{ReqID: st.reqID, From: have[dc], Have: have})
}

// noteChainLocked folds one sequenced message into the chain observed while
// a catch-up round is pending. The chain is the longest contiguous run of
// same-epoch messages ending at the newest one; on Done it either splices
// onto the resume point or proves another round is needed.
func (r *Manager) noteChainLocked(st *inLink, epoch, seq uint64, ts vclock.Timestamp, isBatch bool) {
	base := seq
	if isBatch {
		base = seq - 1
	}
	switch {
	case !st.chainSet:
	case epoch == st.chainEpoch && isBatch && seq == st.chainSeq+1:
		st.chainSeq = seq
		if ts > st.chainTS {
			st.chainTS = ts
		}
		return
	case epoch == st.chainEpoch && !isBatch && seq == st.chainSeq:
		if ts > st.chainTS {
			st.chainTS = ts
		}
		return
	case epoch == st.chainEpoch && seq <= st.chainSeq:
		return // duplicate
	}
	// First message of the round, or a discontinuity: restart the chain here.
	st.chainSet = true
	st.chainEpoch = epoch
	st.chainBase = base
	st.chainSeq = seq
	st.chainTS = ts
}

// HandleCatchUpReply installs a catch-up chunk, acknowledges it (the
// sender's backpressure window), and on the final chunk completes the round:
// raise the VV through the streamed history, splice the chain of batches
// that arrived meanwhile, and either resume normal sequencing or start the
// next round from the new floor.
func (r *Manager) HandleCatchUpReply(src netemu.NodeID, m msg.CatchUpReply) {
	if !r.validSrc(src.DC) {
		return
	}
	if len(m.Versions) > 0 {
		r.be.ApplyRemote(r.filterDeparted(m.Versions), m.SlotEpoch)
	}
	if !m.Done {
		r.ep.Send(src, msg.CatchUpAck{ReqID: m.ReqID, Chunk: m.Chunk})
		st := r.in[src.DC]
		st.mu.Lock()
		if st.pending && st.reqID == m.ReqID {
			// A flowing stream is alive: refresh the re-request clock so a
			// long stream is not superseded mid-flight, and persist the
			// sender's progress claim once every chunk up to this one has
			// been applied — the resume point a follow-up round starts from
			// if this stream dies before Done.
			st.reqAt = time.Now()
			if m.Chunk == st.nextChunk {
				st.nextChunk++
				if len(m.Progress) > 0 {
					st.resume = st.resume.GrowTo(len(m.Progress))
					st.resume.MaxInPlace(m.Progress)
				}
			}
		}
		st.mu.Unlock()
		return
	}
	r.clk.Observe(m.Through)
	st := r.in[src.DC]
	st.mu.Lock()
	for {
		if !st.pending || st.reqID != m.ReqID {
			st.mu.Unlock()
			return // a stale stream; the live round will complete on its own
		}
		if len(st.deferred) == 0 {
			break
		}
		// Drain the fresh traffic parked during the round before its
		// completion raises the VV: the chain splice below may attest the
		// chain tip, which covers these batches. Application happens
		// outside the link lock (ApplyRemote and filterDeparted take their
		// own locks); re-check the round afterwards — a concurrent
		// supersede or retirement ends this completion.
		batches := st.deferred
		st.deferred, st.deferredBytes = nil, 0
		st.mu.Unlock()
		for _, b := range batches {
			r.be.ApplyRemote(r.filterDeparted(b.vs), b.slotEpoch)
		}
		st.mu.Lock()
	}
	st.pending = false
	st.resume, st.nextChunk = nil, 0
	r.activeIn.Add(-1)
	r.statDone.Add(1)
	if m.FullResync {
		r.statFullResync.Add(1)
	}
	var chainRaise vclock.Timestamp
	again := false
	switch {
	case !st.chainSet:
		st.known, st.epoch, st.seq = true, m.ResumeEpoch, m.ResumeSeq
	case st.chainEpoch == m.ResumeEpoch && st.chainBase <= m.ResumeSeq:
		// The observed chain connects to the resume point: everything
		// between Through and the chain's tip has been applied in order.
		st.known, st.epoch = true, st.chainEpoch
		st.seq = st.chainSeq
		if m.ResumeSeq > st.seq {
			st.seq = m.ResumeSeq
		}
		if st.chainSeq > m.ResumeSeq {
			chainRaise = st.chainTS
		}
	default:
		// Still a hole between the resume point and what arrived during the
		// round — go again. The next round starts from Through (raised
		// below), strictly past this one's floor, so rounds make progress.
		again = true
	}
	// The sender guarantees every version it originated with a timestamp ≤
	// Through is now present (previously received, or streamed in this
	// round). An Unsupported reply makes the same advance on the optimistic
	// fallback semantics instead. Raised under the link lock (capped by a
	// pending eviction attestation) like every sequenced advance.
	r.be.RaiseVV(src.DC, capRaiseLocked(st, m.Through))
	if chainRaise > 0 {
		r.be.RaiseVV(src.DC, capRaiseLocked(st, chainRaise))
	}
	st.mu.Unlock()
	// Departed-origin claims: the sender streamed every version in
	// (Have[d], Through] it holds of each departed DC d, and its Through is
	// bounded by both the agreed final and its own prefix-complete entry —
	// so the advance asserts nothing this node does not now hold. Clamped
	// at the locally-known final for safety against view skew.
	for _, c := range m.Departed {
		if c.DC < 0 || c.DC >= r.maxDCs || c.DC == r.m || c.Through == 0 {
			continue
		}
		t := c.Through
		if f := r.finalOf(c.DC); f > 0 && t > f {
			t = f
		}
		r.be.RaiseVV(c.DC, t)
	}
	if again {
		st.mu.Lock()
		if !st.pending {
			r.startCatchUpLocked(st, src.DC)
		}
		st.mu.Unlock()
	}
	r.maybeFinishJoin() // a completed round may have been the last link
}

// ---------------------------------------------------------------------------
// Outbound catch-up serving
// ---------------------------------------------------------------------------

// HandleCatchUpRequest serves a lagging sibling: it snapshots the resume
// point and streams the requested history from the durable log on a
// dedicated goroutine. A newer request from the same DC supersedes the
// stream in progress.
func (r *Manager) HandleCatchUpRequest(src netemu.NodeID, m msg.CatchUpRequest) {
	if !r.validSrc(src.DC) || r.statusOf(src.DC) == msg.DCLeft {
		return // nothing is owed to a departed DC
	}
	r.noteHoldback(src.DC, m)
	s := &catchUpServe{
		dc:     src.DC,
		reqID:  m.ReqID,
		acks:   make(chan uint64, 256),
		cancel: make(chan struct{}),
	}
	r.serveMu.Lock()
	if r.stopped.Load() {
		r.serveMu.Unlock()
		return
	}
	if old := r.serving[src.DC]; old != nil {
		close(old.cancel)
	}
	r.serving[src.DC] = s
	r.wg.Add(1)
	r.serveMu.Unlock()
	go func() {
		defer r.wg.Done()
		r.serveCatchUp(src, s, m)
		r.serveMu.Lock()
		if r.serving[src.DC] == s {
			delete(r.serving, src.DC)
		}
		r.serveMu.Unlock()
	}()
}

// noteHoldback records (or refreshes) the GC floor owed to a lagging
// requester: its full version vector is exactly what it has — the local GC
// contribution must not pass it while the laggard drains (ClampGC). Floors
// only rise; the entry expires once the laggard goes quiet or ages past
// the holdback cap.
func (r *Manager) noteHoldback(dc int, m msg.CatchUpRequest) {
	now := time.Now()
	floors := m.Have.Clone().GrowTo(r.maxDCs)
	if m.From > floors[r.m] {
		floors[r.m] = m.From
	}
	r.holdMu.Lock()
	if hb := r.holdbacks[dc]; hb != nil {
		hb.floors = hb.floors.GrowTo(len(floors))
		hb.floors.MaxInPlace(floors)
		hb.lastReq = now
	} else {
		r.holdbacks[dc] = &holdback{floors: floors, since: now, lastReq: now}
	}
	r.holdMu.Unlock()
}

// HandleCatchUpAck credits one chunk back to the in-flight window of the
// stream it belongs to.
func (r *Manager) HandleCatchUpAck(src netemu.NodeID, m msg.CatchUpAck) {
	if !r.validSrc(src.DC) {
		return
	}
	r.serveMu.Lock()
	s := r.serving[src.DC]
	r.serveMu.Unlock()
	if s == nil || s.reqID != m.ReqID {
		return
	}
	select {
	case s.acks <- m.Chunk:
	default: // window is tiny relative to the channel; a full channel means
		// the stream is already unblocked by earlier acks
	}
}

// versionBytes approximates a version's wire footprint for the in-flight
// window accounting.
func versionBytes(v *item.Version) int {
	return len(v.Key) + len(v.Value) + 10*len(v.Deps) + 24
}

// serveCatchUp streams every version this node originated in (from,
// through] out of the durable log, in acknowledged chunks no larger than
// the in-flight window, then sends the resume point. The through/resumeSeq
// pair is captured under the outbound lock after a flush, which establishes
// the invariant the receiver relies on: every version ≤ through has been
// handed to the transport in a batch with sequence ≤ resumeSeq (and is in
// the log), and every later version rides a higher sequence.
//
// Besides its own history, the stream re-ships departed-origin versions the
// requester lacks: for every DC the view records as Left, the range
// (Have[d], min(final, own entry)] rides along, bounded by a claim in the
// Done chunk so the receiver can advance its vector for the departed DC —
// this is how survivors close their eviction gaps and how joiners bootstrap
// the history of DCs that left before they arrived.
//
// If a requested range starts below the WAL's checkpoint-compacted boundary
// it cannot be served incrementally (superseded versions in it are gone):
// the stream restarts from zero and the Done chunk says so (FullResync) —
// never a silently incomplete range.
func (r *Manager) serveCatchUp(src netemu.NodeID, s *catchUpServe, req msg.CatchUpRequest) {
	r.mu.Lock()
	r.flushLocked()
	through := r.lastTS
	resumeSeq := r.seq
	r.mu.Unlock()

	from := req.From
	r.viewMu.Lock()
	var claims []msg.DepartedClaim
	for dc, st := range r.view.Status {
		if st != msg.DCLeft || dc == r.m || dc == src.DC {
			continue
		}
		to := r.be.VVEntry(dc)
		if f := r.view.FinalOf(dc); f > 0 && f < to {
			to = f
		}
		if to > req.Have.Get(dc) {
			claims = append(claims, msg.DepartedClaim{DC: dc, Through: to})
		}
	}
	r.viewMu.Unlock()

	done := msg.CatchUpReply{
		ReqID: s.reqID, Done: true,
		ResumeEpoch: r.epoch, ResumeSeq: resumeSeq, Through: through,
		Departed: claims, SlotEpoch: r.be.SlotEpoch(),
	}
	if r.cfg.Source == nil {
		done.Unsupported = true
		r.ep.Send(src, done)
		return
	}

	// Per-origin stream bounds: own origin in (from, through], each claimed
	// departed origin in (Have[d], claim]. A floor below the checkpoint-
	// compacted boundary drops to zero and flags the full resync.
	var compacted vclock.VC
	if cs, ok := r.cfg.Source.(CompactedSource); ok {
		compacted = cs.CompactedFloor()
	}
	if from < compacted.Get(r.m) {
		from = 0
		done.FullResync = true
	}
	shipFloor := make(vclock.VC, r.maxDCs)
	shipCeil := make(vclock.VC, r.maxDCs)
	shipFloor[r.m], shipCeil[r.m] = from, through
	for _, c := range claims {
		f := req.Have.Get(c.DC)
		if f < compacted.Get(c.DC) {
			f = 0
			done.FullResync = true
		}
		shipFloor[c.DC], shipCeil[c.DC] = f, c.Through
	}

	// Resumable rounds: mid-stream progress claims for this node's own
	// origin. A claim stamped on chunk k asserts that every own-origin
	// version at or below it that the requester asked for rides in chunks
	// 1..k — so a round that dies mid-stream can resume past the claim
	// instead of restarting from the request floor. The claim only advances
	// on own-origin tail versions (TailSource): those arrive in ascending
	// timestamp order after all own-origin snapshot history, making the
	// assertion sound the moment the version is shipped. It freezes if the
	// ascending order is ever violated (defensive — local commits append in
	// timestamp order) and never advances through an unordered snapshot,
	// where no mid-stream completeness claim can be proven.
	var (
		ownClaim   vclock.Timestamp
		ownLast    vclock.Timestamp
		ownOrdered = true
	)
	var (
		chunkID    uint64
		chunk      []*item.Version
		chunkBytes int
		inFlight   int
		window     []struct {
			id    uint64
			bytes int
		}
	)
	sendChunk := func() error {
		if len(chunk) == 0 {
			return nil
		}
		// Backpressure: wait for acks while the window is full. The first
		// chunk always goes out, so a window smaller than one chunk still
		// streams (one chunk at a time).
		for inFlight > 0 && inFlight+chunkBytes > r.maxInFlight {
			select {
			case <-s.cancel:
				return errCanceled
			case <-r.stop:
				return errCanceled
			case ack := <-s.acks:
				for len(window) > 0 && window[0].id <= ack {
					inFlight -= window[0].bytes
					window = window[1:]
				}
			}
		}
		chunkID++
		cm := msg.CatchUpReply{ReqID: s.reqID, Chunk: chunkID, Versions: chunk,
			SlotEpoch: r.be.SlotEpoch()}
		if ownClaim > 0 {
			p := make(vclock.VC, r.maxDCs)
			p[r.m] = ownClaim
			cm.Progress = p
		}
		r.ep.Send(src, cm)
		window = append(window, struct {
			id    uint64
			bytes int
		}{chunkID, chunkBytes})
		inFlight += chunkBytes
		chunk, chunkBytes = nil, 0
		return nil
	}

	walk := func(v *item.Version, tail bool) error {
		select {
		case <-s.cancel:
			return errCanceled
		case <-r.stop:
			return errCanceled
		default:
		}
		d := v.SrcReplica
		if tail && d == r.m && ownOrdered {
			if v.UpdateTime <= ownLast {
				ownOrdered = false
			} else {
				ownLast = v.UpdateTime
				// Below the floor the requester already holds it; above the
				// ceiling it is outside the round — either way every needed
				// own version at or below t is shipped once this one is.
				t := v.UpdateTime
				if c := shipCeil[d]; t > c {
					t = c
				}
				if t > ownClaim {
					ownClaim = t
				}
			}
		}
		if d < 0 || d >= r.maxDCs || v.UpdateTime <= shipFloor[d] || v.UpdateTime > shipCeil[d] {
			return nil
		}
		chunk = append(chunk, v)
		chunkBytes += versionBytes(v)
		if chunkBytes >= catchUpChunkBytes {
			return sendChunk()
		}
		return nil
	}
	var err error
	switch sc := r.cfg.Source.(type) {
	case TailSource:
		// Seek plus provenance: segments outside the requested windows are
		// skipped, and tail versions carry the ordering guarantee the
		// progress claims need.
		err = sc.ForEachDurableTail(shipFloor, shipCeil, walk)
	case RangedSource:
		// Seek: let the storage index skip every segment outside the
		// requested windows, so a small gap is served in O(gap).
		err = sc.ForEachDurableRange(shipFloor, shipCeil,
			func(v *item.Version) error { return walk(v, false) })
	default:
		err = r.cfg.Source.ForEachDurable(
			func(v *item.Version) error { return walk(v, false) })
	}
	if err == nil {
		err = sendChunk()
	}
	if err != nil {
		if errors.Is(err, errCanceled) {
			return // superseded or shutting down; no resume point
		}
		// The log could not prove completeness (read error). Answer
		// Unsupported so the receiver falls back to optimistic semantics
		// instead of freezing forever — the same degradation as a sticky
		// persistence error.
		done.Unsupported = true
		r.ep.Send(src, done)
		return
	}
	r.ep.Send(src, done)
	r.statServed.Add(1)
}

// ---------------------------------------------------------------------------
// Catch-up-aware garbage collection
// ---------------------------------------------------------------------------

// servingTo reports whether an outbound catch-up stream to dc is live.
func (r *Manager) servingTo(dc int) bool {
	r.serveMu.Lock()
	defer r.serveMu.Unlock()
	return r.serving[dc] != nil
}

// ClampGC caps the server's local GC contribution so the global prune point
// never passes history a laggard still needs: each recently-served catch-up
// requester pins the vector at its recorded floors (what it actually holds),
// and a Joining DC mid-bootstrap pins it at zero (it needs everything).
// Entries are clamped in place and gv is returned for convenience.
//
// A holdback older than maxAge is released — GC advances and the laggard's
// next incremental request is answered with a full resync instead (the
// GCMaxHoldback escape hatch, so one wedged replica cannot pin the
// deployment's garbage forever). A negative maxAge never releases. Expired
// holdbacks (no request within the re-request grace and no stream in
// flight) are dropped: the laggard either caught up or died, and a dead
// laggard that returns re-bootstraps through the same full-resync path.
func (r *Manager) ClampGC(gv vclock.VC, maxAge time.Duration) vclock.VC {
	now := time.Now()
	r.viewMu.Lock()
	var joining []int
	for dc, st := range r.view.Status {
		if dc != r.m && st == msg.DCJoining {
			joining = append(joining, dc)
		}
	}
	r.viewMu.Unlock()

	grace := 4 * r.reRequest
	r.holdMu.Lock()
	for _, dc := range joining {
		if _, ok := r.joinSeen[dc]; !ok {
			r.joinSeen[dc] = now
		}
	}
	for dc := range r.joinSeen {
		still := false
		for _, j := range joining {
			if j == dc {
				still = true
				break
			}
		}
		if !still {
			delete(r.joinSeen, dc)
		}
	}
	zero := false
	for _, t := range r.joinSeen {
		if maxAge < 0 || now.Sub(t) <= maxAge {
			zero = true
		}
	}
	var floors vclock.VC
	constrained := false
	for dc, hb := range r.holdbacks {
		if now.Sub(hb.lastReq) > grace && !r.servingTo(dc) {
			delete(r.holdbacks, dc)
			continue
		}
		if maxAge >= 0 && now.Sub(hb.since) > maxAge {
			continue // released: the laggard re-bootstraps via full resync
		}
		if !constrained {
			floors = hb.floors.Clone()
			constrained = true
			continue
		}
		// Two laggards: the effective floor is the entry-wise minimum.
		floors = floors.GrowTo(len(hb.floors))
		for i := range floors {
			if f := hb.floors.Get(i); f < floors[i] {
				floors[i] = f
			}
		}
	}
	r.holdMu.Unlock()
	if zero {
		for i := range gv {
			gv[i] = 0
		}
		return gv
	}
	if constrained {
		for i := range gv {
			if f := floors.Get(i); gv[i] > f {
				gv[i] = f
			}
		}
	}
	return gv
}

// HoldbackAge reports how long the oldest live GC holdback (a lagging
// catch-up requester, or a joiner mid-bootstrap) has pinned the prune
// point; zero when nothing is held. Observability for the stats surface.
func (r *Manager) HoldbackAge() time.Duration {
	now := time.Now()
	r.holdMu.Lock()
	defer r.holdMu.Unlock()
	var oldest time.Time
	for _, hb := range r.holdbacks {
		if oldest.IsZero() || hb.since.Before(oldest) {
			oldest = hb.since
		}
	}
	for _, t := range r.joinSeen {
		if oldest.IsZero() || t.Before(oldest) {
			oldest = t
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return now.Sub(oldest)
}
