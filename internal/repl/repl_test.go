package repl

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/item"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/vclock"
)

// fakeTransport records every send.
type fakeTransport struct {
	id netemu.NodeID

	mu   sync.Mutex
	sent []struct {
		dst netemu.NodeID
		m   any
	}
}

func (t *fakeTransport) ID() netemu.NodeID { return t.id }

func (t *fakeTransport) Send(dst netemu.NodeID, m any) {
	t.mu.Lock()
	t.sent = append(t.sent, struct {
		dst netemu.NodeID
		m   any
	}{dst, m})
	t.mu.Unlock()
}

func (t *fakeTransport) msgs(dst netemu.NodeID) []any {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []any
	for _, s := range t.sent {
		if s.dst == dst {
			out = append(out, s.m)
		}
	}
	return out
}

// fakeBackend is a minimal server: a VV, an applied-version log, a clock.
type fakeBackend struct {
	clk *clock.Clock

	mu      sync.Mutex
	vv      []vclock.Timestamp
	applied []*item.Version
	stopped bool
	joined  bool
}

func newFakeBackend(dcs int) *fakeBackend {
	return &fakeBackend{clk: clock.New(0), vv: make([]vclock.Timestamp, dcs)}
}

func (b *fakeBackend) Joined() {
	b.mu.Lock()
	b.joined = true
	b.mu.Unlock()
}

func (b *fakeBackend) isJoined() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.joined
}

func (b *fakeBackend) PrepareLocal(v *item.Version) (vclock.Timestamp, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stopped {
		return 0, errors.New("fake backend stopped")
	}
	ut := b.clk.Now()
	v.UpdateTime = ut
	if ut > b.vv[v.SrcReplica] {
		b.vv[v.SrcReplica] = ut
	}
	return ut, nil
}

func (b *fakeBackend) ApplyRemote(vs []*item.Version, _ uint64) {
	b.mu.Lock()
	b.applied = append(b.applied, vs...)
	b.mu.Unlock()
}

func (b *fakeBackend) SlotEpoch() uint64 { return 0 }

func (b *fakeBackend) VVEntry(dc int) vclock.Timestamp {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.vv[dc]
}

func (b *fakeBackend) RaiseVV(dc int, t vclock.Timestamp) {
	b.mu.Lock()
	if t > b.vv[dc] {
		b.vv[dc] = t
	}
	b.mu.Unlock()
}

func (b *fakeBackend) DropAbove(dc int, after vclock.Timestamp) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	kept, dropped := b.applied[:0], 0
	for _, v := range b.applied {
		if v.SrcReplica == dc && v.UpdateTime > after {
			dropped++
			continue
		}
		kept = append(kept, v)
	}
	b.applied = kept
	return dropped
}

func (b *fakeBackend) appliedCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.applied)
}

// fakeSource serves a fixed version list as the durable history.
type fakeSource struct{ vs []*item.Version }

func (s *fakeSource) ForEachDurable(fn func(v *item.Version) error) error {
	for _, v := range s.vs {
		if err := fn(v); err != nil {
			return err
		}
	}
	return nil
}

func newTestManager(t *testing.T, cfg Config) (*Manager, *fakeTransport, *fakeBackend) {
	t.Helper()
	tr := &fakeTransport{id: cfg.ID}
	dcs := cfg.MaxDCs
	if dcs == 0 {
		dcs = cfg.NumDCs
	}
	be := newFakeBackend(dcs)
	cfg.Clock = be.clk
	cfg.Endpoint = tr
	cfg.Backend = be
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close(false) })
	return m, tr, be
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(200 * time.Microsecond)
	}
	return false
}

func ver(dc int, ts vclock.Timestamp, key string) *item.Version {
	return &item.Version{Key: key, Value: []byte("v"), SrcReplica: dc, UpdateTime: ts, Deps: vclock.New(3)}
}

// TestPublishSequencesBatches: flushed batches carry the incarnation epoch
// and gap-free sequence numbers, identically on every link.
func TestPublishSequencesBatches(t *testing.T) {
	m, tr, _ := newTestManager(t, Config{
		ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: 3, BatchSize: 2,
		HeartbeatInterval: time.Hour, // timed flushing effectively off: size-driven flushes only
	})
	for i := 0; i < 6; i++ {
		if _, err := m.Publish(&item.Version{Key: "k", SrcReplica: 0}); err != nil {
			t.Fatal("publish refused")
		}
	}
	for dc := 1; dc < 3; dc++ {
		got := tr.msgs(netemu.NodeID{DC: dc, Partition: 0})
		if len(got) != 3 {
			t.Fatalf("dc%d got %d messages, want 3 batches", dc, len(got))
		}
		for i, raw := range got {
			b, ok := raw.(msg.ReplicateBatch)
			if !ok {
				t.Fatalf("dc%d message %d is %T", dc, i, raw)
			}
			if b.Epoch != m.Epoch() || b.Seq != uint64(i+1) {
				t.Fatalf("dc%d message %d: (epoch %d, seq %d), want (%d, %d)",
					dc, i, b.Epoch, b.Seq, m.Epoch(), i+1)
			}
			if len(b.Versions) != 2 {
				t.Fatalf("batch of %d versions, want 2", len(b.Versions))
			}
		}
	}
}

// TestInOrderBatchesAdvanceVV: an intact sequence applies and advances the
// VV; a duplicate redelivery does not regress anything.
func TestInOrderBatchesAdvanceVV(t *testing.T) {
	m, tr, be := newTestManager(t, Config{
		ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: 3, CatchUp: true,
	})
	src := netemu.NodeID{DC: 1, Partition: 0}
	b1 := msg.ReplicateBatch{Versions: []*item.Version{ver(1, 100, "a")}, HBTime: 100, Epoch: 7, Seq: 1}
	b2 := msg.ReplicateBatch{Versions: []*item.Version{ver(1, 200, "b")}, HBTime: 200, Epoch: 7, Seq: 2}
	m.HandleBatch(src, b1)
	m.HandleBatch(src, b2)
	m.HandleBatch(src, b2) // at-least-once redelivery
	if got := be.VVEntry(1); got != 200 {
		t.Fatalf("VV[1] = %d, want 200", got)
	}
	if n := be.appliedCount(); n != 3 {
		t.Fatalf("applied %d versions, want 3 (dup re-applied idempotently)", n)
	}
	if reqs := tr.msgs(src); len(reqs) != 0 {
		t.Fatalf("unexpected outbound traffic %v", reqs)
	}
	m.HandleHeartbeat(src, msg.Heartbeat{Time: 500, Epoch: 7, Seq: 2})
	if got := be.VVEntry(1); got != 500 {
		t.Fatalf("VV[1] = %d after in-sequence heartbeat, want 500", got)
	}
}

// TestGapFreezesVVAndRequestsCatchUp: a sequence hole installs the versions
// but freezes the VV entry and asks the sender for the missing history;
// Done completes the round, raises the VV through the stream, and splices
// the batches that arrived meanwhile.
func TestGapFreezesVVAndRequestsCatchUp(t *testing.T) {
	m, tr, be := newTestManager(t, Config{
		ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: 3, CatchUp: true,
	})
	src := netemu.NodeID{DC: 1, Partition: 0}
	m.HandleBatch(src, msg.ReplicateBatch{Versions: []*item.Version{ver(1, 100, "a")}, HBTime: 100, Epoch: 7, Seq: 1})
	// Seq 2 and 3 lost; 4 arrives.
	m.HandleBatch(src, msg.ReplicateBatch{Versions: []*item.Version{ver(1, 400, "d")}, HBTime: 400, Epoch: 7, Seq: 4})
	if got := be.VVEntry(1); got != 100 {
		t.Fatalf("VV[1] = %d after a gap, want it frozen at 100", got)
	}
	out := tr.msgs(src)
	if len(out) != 1 {
		t.Fatalf("outbound = %v, want one CatchUpRequest", out)
	}
	req, ok := out[0].(msg.CatchUpRequest)
	if !ok || req.From != 100 {
		t.Fatalf("request = %#v, want From=100", out[0])
	}
	if st := m.Stats(); st.Requested != 1 || st.ActiveIn != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Batch 5 arrives during the round: applied, chained, VV still frozen.
	m.HandleBatch(src, msg.ReplicateBatch{Versions: []*item.Version{ver(1, 500, "e")}, HBTime: 500, Epoch: 7, Seq: 5})
	if got := be.VVEntry(1); got != 100 {
		t.Fatalf("VV[1] = %d during catch-up, want 100", got)
	}
	// The stream ships the missing seq 2-3 versions and resumes at seq 4.
	m.HandleCatchUpReply(src, msg.CatchUpReply{
		ReqID: req.ReqID, Chunk: 1,
		Versions: []*item.Version{ver(1, 200, "b"), ver(1, 300, "c")},
	})
	m.HandleCatchUpReply(src, msg.CatchUpReply{
		ReqID: req.ReqID, Done: true, ResumeEpoch: 7, ResumeSeq: 4, Through: 400,
	})
	// Through=400 plus the chained seq-5 batch: VV lands at 500.
	if got := be.VVEntry(1); got != 500 {
		t.Fatalf("VV[1] = %d after catch-up, want 500 (Through + spliced chain)", got)
	}
	if st := m.Stats(); st.Completed != 1 || st.ActiveIn != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The link is resynced: seq 6 continues normally.
	m.HandleBatch(src, msg.ReplicateBatch{Versions: []*item.Version{ver(1, 600, "f")}, HBTime: 600, Epoch: 7, Seq: 6})
	if got := be.VVEntry(1); got != 600 {
		t.Fatalf("VV[1] = %d after resync, want 600", got)
	}
	if st := m.Stats(); st.Requested != 1 {
		t.Fatalf("resynced link re-requested: %+v", st)
	}
}

// TestEpochChangeTriggersCatchUp: a restarted sender (new epoch) is
// detected even when idle — on its first heartbeat.
func TestEpochChangeTriggersCatchUp(t *testing.T) {
	m, tr, be := newTestManager(t, Config{
		ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: 2, CatchUp: true,
	})
	src := netemu.NodeID{DC: 1, Partition: 0}
	m.HandleBatch(src, msg.ReplicateBatch{Versions: []*item.Version{ver(1, 100, "a")}, HBTime: 100, Epoch: 7, Seq: 1})
	m.HandleHeartbeat(src, msg.Heartbeat{Time: 900, Epoch: 8, Seq: 0}) // new incarnation
	if got := be.VVEntry(1); got != 100 {
		t.Fatalf("VV[1] = %d, want the heartbeat of a new epoch held back", got)
	}
	out := tr.msgs(src)
	if len(out) != 1 {
		t.Fatalf("outbound = %v, want one CatchUpRequest", out)
	}
	if _, ok := out[0].(msg.CatchUpRequest); !ok {
		t.Fatalf("outbound = %#v, want CatchUpRequest", out[0])
	}
}

// TestFirstContactWithHistoryResyncs: a receiver that knows nothing about a
// link (it restarted) must resync when the sender's stream has history.
func TestFirstContactWithHistoryResyncs(t *testing.T) {
	m, tr, be := newTestManager(t, Config{
		ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: 2, CatchUp: true,
	})
	src := netemu.NodeID{DC: 1, Partition: 0}
	be.RaiseVV(1, 250) // recovered floor from the WAL
	m.HandleBatch(src, msg.ReplicateBatch{Versions: []*item.Version{ver(1, 900, "z")}, HBTime: 900, Epoch: 7, Seq: 9})
	if got := be.VVEntry(1); got != 250 {
		t.Fatalf("VV[1] = %d, want the floor held at 250", got)
	}
	out := tr.msgs(src)
	if len(out) != 1 {
		t.Fatalf("outbound = %v, want one CatchUpRequest", out)
	}
	if req := out[0].(msg.CatchUpRequest); req.From != 250 {
		t.Fatalf("From = %d, want the recovered floor 250", req.From)
	}
}

// TestResumableRoundPersistsChunkProgress: a catch-up stream that dies
// mid-round must not restart from scratch. Contiguously applied chunks
// carry Progress claims that persist as the link's resume floor; a chunk
// arriving out of order contributes versions but no claim (a gap in the
// stream means later claims cover history this node may not hold). The
// follow-up round then asks from max(VV, resume) — strictly past the dead
// round's applied prefix — instead of the frozen VV entry.
func TestResumableRoundPersistsChunkProgress(t *testing.T) {
	m, tr, be := newTestManager(t, Config{
		ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: 3, CatchUp: true,
	})
	src := netemu.NodeID{DC: 1, Partition: 0}
	m.HandleBatch(src, msg.ReplicateBatch{Versions: []*item.Version{ver(1, 100, "a")}, HBTime: 100, Epoch: 7, Seq: 1})
	// Seq 2-3 lost; the gap opens round 1.
	m.HandleBatch(src, msg.ReplicateBatch{Versions: []*item.Version{ver(1, 400, "d")}, HBTime: 400, Epoch: 7, Seq: 4})
	out := tr.msgs(src)
	req1, ok := out[len(out)-1].(msg.CatchUpRequest)
	if !ok || req1.From != 100 {
		t.Fatalf("round 1 request = %#v, want From=100", out[len(out)-1])
	}
	// Chunk 1 applies contiguously: its claim (own history ≤ 250 delivered)
	// becomes the persisted resume floor.
	m.HandleCatchUpReply(src, msg.CatchUpReply{
		ReqID: req1.ReqID, Chunk: 1,
		Versions: []*item.Version{ver(1, 200, "b")},
		Progress: vclock.VC{0, 250, 0},
	})
	// Chunk 3 arrives with chunk 2 missing: versions install, but the claim
	// must be ignored — it vouches for chunk 2's contents too.
	m.HandleCatchUpReply(src, msg.CatchUpReply{
		ReqID: req1.ReqID, Chunk: 3,
		Versions: []*item.Version{ver(1, 380, "c2")},
		Progress: vclock.VC{0, 380, 0},
	})
	if got := be.VVEntry(1); got != 100 {
		t.Fatalf("VV[1] = %d mid-round, want it frozen at 100", got)
	}
	// The stream dies here (no Done). After the re-request interval the next
	// sequenced arrival re-opens the round from the resume floor.
	time.Sleep(120 * time.Millisecond)
	m.HandleBatch(src, msg.ReplicateBatch{Versions: []*item.Version{ver(1, 500, "e")}, HBTime: 500, Epoch: 7, Seq: 5})
	out = tr.msgs(src)
	req2, ok := out[len(out)-1].(msg.CatchUpRequest)
	if !ok || req2.ReqID == req1.ReqID {
		t.Fatalf("round 2 never opened: %#v", out[len(out)-1])
	}
	if req2.From != 250 {
		t.Fatalf("round 2 From = %d, want 250 (chunk 1's claim, not the frozen VV 100, not the gapped chunk's 380)", req2.From)
	}
	if st := m.Stats(); st.Resumed != 1 {
		t.Fatalf("stats = %+v, want Resumed=1", st)
	}
	// Round 2 completes at the sender's live resume point (its stream is at
	// seq 5, everything through ts 500 streamed or previously delivered).
	m.HandleCatchUpReply(src, msg.CatchUpReply{
		ReqID: req2.ReqID, Chunk: 1,
		Versions: []*item.Version{ver(1, 300, "c")},
	})
	m.HandleCatchUpReply(src, msg.CatchUpReply{
		ReqID: req2.ReqID, Done: true, ResumeEpoch: 7, ResumeSeq: 5, Through: 500,
	})
	if got := be.VVEntry(1); got != 500 {
		t.Fatalf("VV[1] = %d after resumed round, want 500", got)
	}
	// The link is healthy again: sequencing continues without a new round.
	m.HandleBatch(src, msg.ReplicateBatch{Versions: []*item.Version{ver(1, 600, "f")}, HBTime: 600, Epoch: 7, Seq: 6})
	if got := be.VVEntry(1); got != 600 {
		t.Fatalf("VV[1] = %d after resync, want 600", got)
	}
}

// TestServeCatchUpStreamsAndResumes: the serving side flushes, snapshots the
// resume point, streams the durable history filtered to (From, Through] and
// own-origin versions, and finishes with Done.
func TestServeCatchUpStreamsAndResumes(t *testing.T) {
	src := &fakeSource{vs: []*item.Version{
		ver(0, 50, "old"),     // ≤ From: receiver already has it
		ver(0, 150, "a"),      // shipped
		ver(0, 250, "b"),      // shipped
		ver(1, 180, "remote"), // other DC's origin: not ours to ship
	}}
	m, tr, be := newTestManager(t, Config{
		ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: 2, CatchUp: true, Source: src,
	})
	be.RaiseVV(0, 300) // local progress; NewManager picked up 0, raise lastTS via publishes instead
	// Publish one version so lastTS covers the history (the manager's
	// resume floor was captured at construction, before RaiseVV above).
	if _, err := m.Publish(&item.Version{Key: "k", SrcReplica: 0}); err != nil {
		t.Fatal("publish refused")
	}
	dst := netemu.NodeID{DC: 1, Partition: 0}
	m.HandleCatchUpRequest(dst, msg.CatchUpRequest{ReqID: 42, From: 100})
	if !waitUntil(t, 2*time.Second, func() bool {
		msgs := tr.msgs(dst)
		if len(msgs) == 0 {
			return false
		}
		if rep, ok := msgs[len(msgs)-1].(msg.CatchUpReply); ok {
			return rep.Done
		}
		return false
	}) {
		t.Fatal("catch-up stream never finished")
	}
	var shipped []string
	var done msg.CatchUpReply
	for _, raw := range tr.msgs(dst) {
		rep, ok := raw.(msg.CatchUpReply)
		if !ok {
			continue // the publish's own batch
		}
		if rep.ReqID != 42 {
			t.Fatalf("reply for request %d, want 42", rep.ReqID)
		}
		for _, v := range rep.Versions {
			shipped = append(shipped, v.Key)
		}
		if rep.Done {
			done = rep
		}
	}
	want := []string{"a", "b"}
	if len(shipped) != len(want) || shipped[0] != "a" || shipped[1] != "b" {
		t.Fatalf("shipped %v, want %v", shipped, want)
	}
	if done.Unsupported || done.ResumeEpoch != m.Epoch() {
		t.Fatalf("done = %+v", done)
	}
	if st := m.Stats(); st.Served != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestServeCatchUpBackpressure: with a one-byte window, each chunk waits for
// the previous chunk's ack before going out.
func TestServeCatchUpBackpressure(t *testing.T) {
	big := bytes.Repeat([]byte("x"), 40<<10) // 40 KiB values → ~2 versions/chunk
	var vs []*item.Version
	for i := 0; i < 8; i++ {
		v := ver(0, vclock.Timestamp(100+i), "k")
		v.Value = big
		vs = append(vs, v)
	}
	m, tr, _ := newTestManager(t, Config{
		ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: 2, CatchUp: true,
		Source:           &fakeSource{vs: vs},
		MaxInFlightBytes: 1, // every chunk must be acked before the next
	})
	if _, err := m.Publish(&item.Version{Key: "k", SrcReplica: 0}); err != nil {
		t.Fatal("publish refused")
	}
	dst := netemu.NodeID{DC: 1, Partition: 0}
	m.HandleCatchUpRequest(dst, msg.CatchUpRequest{ReqID: 1, From: 0})

	replies := func() []msg.CatchUpReply {
		var out []msg.CatchUpReply
		for _, raw := range tr.msgs(dst) {
			if rep, ok := raw.(msg.CatchUpReply); ok {
				out = append(out, rep)
			}
		}
		return out
	}
	if !waitUntil(t, 2*time.Second, func() bool { return len(replies()) == 1 }) {
		t.Fatalf("first chunk never sent: %d replies", len(replies()))
	}
	// No ack: the stream must stall on the window.
	time.Sleep(20 * time.Millisecond)
	if got := len(replies()); got != 1 {
		t.Fatalf("%d replies without an ack, want the window to hold at 1", got)
	}
	// Ack chunks until Done.
	for i := 0; i < 16; i++ {
		rs := replies()
		last := rs[len(rs)-1]
		if last.Done {
			if last.Unsupported {
				t.Fatalf("done = %+v", last)
			}
			return
		}
		m.HandleCatchUpAck(dst, msg.CatchUpAck{ReqID: 1, Chunk: last.Chunk})
		if !waitUntil(t, 2*time.Second, func() bool { return len(replies()) > len(rs) }) {
			t.Fatalf("ack of chunk %d did not open the window", last.Chunk)
		}
	}
	t.Fatal("stream never finished")
}

// TestUnsupportedFallsBackOptimistically: a sender without a durable source
// answers Unsupported and the receiver resumes on the reply's word alone.
func TestUnsupportedFallsBackOptimistically(t *testing.T) {
	m, tr, be := newTestManager(t, Config{
		ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: 2, CatchUp: true,
	})
	src := netemu.NodeID{DC: 1, Partition: 0}
	m.HandleBatch(src, msg.ReplicateBatch{Versions: []*item.Version{ver(1, 300, "c")}, HBTime: 300, Epoch: 7, Seq: 3})
	out := tr.msgs(src)
	req := out[0].(msg.CatchUpRequest)
	m.HandleCatchUpReply(src, msg.CatchUpReply{
		ReqID: req.ReqID, Done: true, Unsupported: true, ResumeEpoch: 7, ResumeSeq: 3, Through: 300,
	})
	if got := be.VVEntry(1); got != 300 {
		t.Fatalf("VV[1] = %d, want the optimistic fallback advance to 300", got)
	}
	m.HandleBatch(src, msg.ReplicateBatch{Versions: []*item.Version{ver(1, 400, "d")}, HBTime: 400, Epoch: 7, Seq: 4})
	if got := be.VVEntry(1); got != 400 {
		t.Fatalf("VV[1] = %d, want 400 (link resynced)", got)
	}
}

// TestCatchUpDisabledAppliesOptimistically: without the knob, sequenced
// batches behave exactly like the pre-catch-up protocol.
func TestCatchUpDisabledAppliesOptimistically(t *testing.T) {
	m, tr, be := newTestManager(t, Config{
		ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: 2, CatchUp: false,
	})
	src := netemu.NodeID{DC: 1, Partition: 0}
	m.HandleBatch(src, msg.ReplicateBatch{Versions: []*item.Version{ver(1, 900, "z")}, HBTime: 900, Epoch: 7, Seq: 9})
	if got := be.VVEntry(1); got != 900 {
		t.Fatalf("VV[1] = %d, want the optimistic advance to 900", got)
	}
	if out := tr.msgs(src); len(out) != 0 {
		t.Fatalf("outbound = %v, want silence", out)
	}
}

// ---------------------------------------------------------------------------
// Membership
// ---------------------------------------------------------------------------

// TestJoinRequestExtendsFanout: a sibling that accepts a joiner starts
// replicating to it immediately — the joiner needs the live stream to
// splice onto its catch-up bootstrap — and answers with its merged view.
func TestJoinRequestExtendsFanout(t *testing.T) {
	m, tr, _ := newTestManager(t, Config{
		ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: 2, MaxDCs: 3,
		CatchUp: true, BatchSize: 1,
	})
	joiner := netemu.NodeID{DC: 2, Partition: 0}
	view := msg.Membership{Epoch: 1, Status: []uint8{msg.DCActive, msg.DCActive, msg.DCJoining}}
	m.HandleJoinRequest(joiner, msg.JoinRequest{DC: 2, View: view})

	out := tr.msgs(joiner)
	if len(out) != 1 {
		t.Fatalf("outbound to joiner = %v, want one JoinAccept", out)
	}
	acc, ok := out[0].(msg.JoinAccept)
	if !ok {
		t.Fatalf("reply is %T, want JoinAccept", out[0])
	}
	if acc.View.Get(2) != msg.DCJoining || acc.View.Get(0) != msg.DCActive {
		t.Fatalf("accepted view = %+v", acc.View)
	}
	if _, err := m.Publish(&item.Version{Key: "k", SrcReplica: 0}); err != nil {
		t.Fatal("publish refused")
	}
	batches := 0
	for _, raw := range tr.msgs(joiner) {
		if _, ok := raw.(msg.ReplicateBatch); ok {
			batches++
		}
	}
	if batches != 1 {
		t.Fatalf("joiner received %d batches after the accept, want 1", batches)
	}
	if len(tr.msgs(netemu.NodeID{DC: 1, Partition: 0})) == 0 {
		t.Fatal("existing sibling fell out of the fan-out")
	}
}

// TestLeaveFlushesThenNotifies: Leave sends the buffered tail first and the
// LeaveNotice second on the same link (the FIFO order the receiver's
// completeness claim rests on), then goes silent.
func TestLeaveFlushesThenNotifies(t *testing.T) {
	m, tr, _ := newTestManager(t, Config{
		ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: 2, BatchSize: 64,
		HeartbeatInterval: time.Hour,
	})
	if _, err := m.Publish(&item.Version{Key: "k", SrcReplica: 0}); err != nil {
		t.Fatal("publish refused")
	}
	final := m.Leave()
	sib := netemu.NodeID{DC: 1, Partition: 0}
	out := tr.msgs(sib)
	if len(out) != 2 {
		t.Fatalf("outbound = %v, want [batch, notice]", out)
	}
	b, ok := out[0].(msg.ReplicateBatch)
	if !ok {
		t.Fatalf("first message is %T, want the final flush", out[0])
	}
	n, ok := out[1].(msg.LeaveNotice)
	if !ok {
		t.Fatalf("second message is %T, want the LeaveNotice", out[1])
	}
	if n.DC != 0 || n.Final != final || n.Final < b.Versions[len(b.Versions)-1].UpdateTime {
		t.Fatalf("notice = %+v (final %d), must cover the flushed tail", n, final)
	}
	if n.View.Get(0) != msg.DCLeft {
		t.Fatalf("notice view = %+v, must mark the leaver departed", n.View)
	}
	// A departed node refuses new writes — an acked write after the notice
	// would replicate to nobody — and sends nothing more.
	if _, err := m.Publish(&item.Version{Key: "k2", SrcReplica: 0}); err == nil {
		t.Fatal("publish accepted after the leave announcement")
	}
	m.Close(true)
	if got := len(tr.msgs(sib)); got != 2 {
		t.Fatalf("outbound after leave = %d messages, want the original 2", got)
	}
}

// TestLeaveNoticeRetiresLink: a notice cancels the catch-up round pending
// on the link (nobody is left to answer it), raises the entry to the
// announced final timestamp, and drops the DC from the fan-out.
func TestLeaveNoticeRetiresLink(t *testing.T) {
	m, tr, be := newTestManager(t, Config{
		ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: 3, CatchUp: true, BatchSize: 1,
	})
	src := netemu.NodeID{DC: 1, Partition: 0}
	m.HandleBatch(src, msg.ReplicateBatch{Versions: []*item.Version{ver(1, 100, "a")}, HBTime: 100, Epoch: 7, Seq: 1})
	m.HandleBatch(src, msg.ReplicateBatch{Versions: []*item.Version{ver(1, 400, "d")}, HBTime: 400, Epoch: 7, Seq: 4})
	if st := m.Stats(); st.ActiveIn != 1 {
		t.Fatalf("stats = %+v, want one frozen link", st)
	}
	view := msg.Membership{Epoch: 2, Status: []uint8{msg.DCActive, msg.DCLeft, msg.DCActive}}
	m.HandleLeaveNotice(src, msg.LeaveNotice{DC: 1, Final: 400, View: view})
	if st := m.Stats(); st.ActiveIn != 0 {
		t.Fatalf("stats = %+v, want the pending round cancelled", st)
	}
	if got := be.VVEntry(1); got != 400 {
		t.Fatalf("VV[1] = %d, want the final timestamp 400", got)
	}
	if m.View().Get(1) != msg.DCLeft {
		t.Fatalf("view = %+v, want dc1 departed", m.View())
	}
	if _, err := m.Publish(&item.Version{Key: "k", SrcReplica: 0}); err != nil {
		t.Fatal("publish refused")
	}
	for _, raw := range tr.msgs(src) {
		if _, ok := raw.(msg.ReplicateBatch); ok {
			t.Fatal("batch sent to a departed DC")
		}
	}
	if got := len(tr.msgs(netemu.NodeID{DC: 2, Partition: 0})); got == 0 {
		t.Fatal("surviving sibling fell out of the fan-out")
	}
	// A straggler from the departed DC is applied but starts no round.
	m.HandleBatch(src, msg.ReplicateBatch{Versions: []*item.Version{ver(1, 380, "s")}, HBTime: 380, Epoch: 7, Seq: 3})
	if st := m.Stats(); st.ActiveIn != 0 {
		t.Fatalf("stats = %+v after a straggler, want no round toward the dead DC", st)
	}
}

// TestJoiningBootstrapAnnouncesActive walks a joiner through its whole
// bootstrap: JoinRequests at start, catch-up on the link with history,
// adoption on the fresh link, and — once both are synced — the Active
// announcement and the backend signal.
func TestJoiningBootstrapAnnouncesActive(t *testing.T) {
	m, tr, be := newTestManager(t, Config{
		ID: netemu.NodeID{DC: 2, Partition: 0}, NumDCs: 3, CatchUp: true, Joining: true,
		Membership: msg.Membership{Epoch: 1, Status: []uint8{msg.DCActive, msg.DCActive, msg.DCJoining}},
	})
	sib0 := netemu.NodeID{DC: 0, Partition: 0}
	sib1 := netemu.NodeID{DC: 1, Partition: 0}
	for _, sib := range []netemu.NodeID{sib0, sib1} {
		out := tr.msgs(sib)
		if len(out) != 1 {
			t.Fatalf("outbound to %v = %v, want one JoinRequest", sib, out)
		}
		if req := out[0].(msg.JoinRequest); req.DC != 2 || req.View.Get(2) != msg.DCJoining {
			t.Fatalf("request = %+v", req)
		}
	}
	if m.Bootstrapped() || be.isJoined() {
		t.Fatal("joiner bootstrapped before hearing from anyone")
	}

	// dc0 has history (seq 5): the joiner must pull it via catch-up.
	m.HandleHeartbeat(sib0, msg.Heartbeat{Time: 500, Epoch: 7, Seq: 5, Floor: 0})
	var req msg.CatchUpRequest
	found := false
	for _, raw := range tr.msgs(sib0) {
		if r, ok := raw.(msg.CatchUpRequest); ok {
			req, found = r, true
		}
	}
	if !found || req.From != 0 {
		t.Fatalf("no full-history CatchUpRequest to dc0 (From must be 0), got %+v", tr.msgs(sib0))
	}
	if m.Bootstrapped() {
		t.Fatal("bootstrapped with a round in flight")
	}

	// dc1 is fresh (seq 0, floor 0): first contact adopts it outright.
	m.HandleHeartbeat(sib1, msg.Heartbeat{Time: 400, Epoch: 9, Seq: 0, Floor: 0})
	if m.Bootstrapped() {
		t.Fatal("bootstrapped while dc0's catch-up is still pending")
	}

	// dc0's stream arrives and completes.
	m.HandleCatchUpReply(sib0, msg.CatchUpReply{
		ReqID: req.ReqID, Chunk: 1, Versions: []*item.Version{ver(0, 100, "a"), ver(0, 450, "b")},
	})
	m.HandleCatchUpReply(sib0, msg.CatchUpReply{
		ReqID: req.ReqID, Done: true, ResumeEpoch: 7, ResumeSeq: 5, Through: 500,
	})

	if !m.Bootstrapped() || !be.isJoined() {
		t.Fatal("joiner did not finish its bootstrap")
	}
	if got := m.View().Get(2); got != msg.DCActive {
		t.Fatalf("joiner's own status = %d, want Active", got)
	}
	for _, sib := range []netemu.NodeID{sib0, sib1} {
		announced := false
		for _, raw := range tr.msgs(sib) {
			if up, ok := raw.(msg.MembershipUpdate); ok && up.View.Get(2) == msg.DCActive {
				announced = true
			}
		}
		if !announced {
			t.Fatalf("no Active announcement reached %v", sib)
		}
	}
	if got := be.VVEntry(0); got != 500 {
		t.Fatalf("VV[0] = %d, want 500 (raised through the stream)", got)
	}
	if got := be.VVEntry(1); got != 400 {
		t.Fatalf("VV[1] = %d, want 400 (adopted heartbeat)", got)
	}
}

// TestJoiningRequiresCatchUp: the bootstrap IS the catch-up protocol, so a
// joining manager without it must be refused outright rather than wedge.
func TestJoiningRequiresCatchUp(t *testing.T) {
	be := newFakeBackend(2)
	_, err := NewManager(Config{
		ID: netemu.NodeID{DC: 1, Partition: 0}, NumDCs: 2, Joining: true,
		Clock: be.clk, Endpoint: &fakeTransport{}, Backend: be,
	})
	if err == nil {
		t.Fatal("Joining without CatchUp must be rejected")
	}
}
