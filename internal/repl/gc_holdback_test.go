package repl

import (
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/item"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/vclock"
)

// compactedSource is a fakeSource whose history below a per-DC floor has
// been checkpoint-compacted away (storage.Durable.CompactedFloor).
type compactedSource struct {
	fakeSource
	floor vclock.VC
}

func (s *compactedSource) CompactedFloor() vclock.VC { return s.floor }

// catchUpReplies filters a transport's sends to one destination down to the
// CatchUpReply stream.
func catchUpReplies(tr *fakeTransport, dst netemu.NodeID) []msg.CatchUpReply {
	var out []msg.CatchUpReply
	for _, raw := range tr.msgs(dst) {
		if rep, ok := raw.(msg.CatchUpReply); ok {
			out = append(out, rep)
		}
	}
	return out
}

// TestFullResyncBelowCompactedFloor: a catch-up request whose resume floor
// falls below the sender's checkpoint-compacted boundary cannot be served
// incrementally (superseded versions in the range are gone). The sender must
// restart the stream from zero and say so — never ship a silently
// incomplete range.
func TestFullResyncBelowCompactedFloor(t *testing.T) {
	src := &compactedSource{
		fakeSource: fakeSource{vs: []*item.Version{
			// Everything below 200 was compacted: only the surviving heads
			// remain in the log. 150's survival is incidental (it is a head);
			// other versions below 200 are gone for good.
			ver(0, 150, "head-a"),
			ver(0, 250, "b"),
			ver(0, 400, "c"),
		}},
		floor: vclock.VC{200, 0},
	}
	m, tr, _ := newTestManager(t, Config{
		ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: 2, CatchUp: true, Source: src,
	})
	if _, err := m.Publish(&item.Version{Key: "k", SrcReplica: 0}); err != nil {
		t.Fatal("publish refused")
	}
	dst := netemu.NodeID{DC: 1, Partition: 0}
	// The requester resumes from 100 — below the compacted boundary 200.
	m.HandleCatchUpRequest(dst, msg.CatchUpRequest{ReqID: 7, From: 100})
	if !waitUntil(t, 2*time.Second, func() bool {
		reps := catchUpReplies(tr, dst)
		return len(reps) > 0 && reps[len(reps)-1].Done
	}) {
		t.Fatal("catch-up stream never finished")
	}
	var shipped []string
	var done msg.CatchUpReply
	for _, rep := range catchUpReplies(tr, dst) {
		for _, v := range rep.Versions {
			shipped = append(shipped, v.Key)
		}
		if rep.Done {
			done = rep
		}
	}
	if !done.FullResync {
		t.Fatalf("done = %+v, want FullResync (floor 100 < compacted 200)", done)
	}
	if done.Unsupported {
		t.Fatalf("done = %+v, want a served stream", done)
	}
	// The stream restarted from zero: every surviving own-origin version is
	// shipped, including the one below the requested floor.
	want := map[string]bool{"head-a": true, "b": true, "c": true}
	if len(shipped) != len(want) {
		t.Fatalf("shipped %v, want all of %v (full restream)", shipped, want)
	}
	for _, k := range shipped {
		if !want[k] {
			t.Fatalf("shipped unexpected %q", k)
		}
	}
}

// TestIncrementalAboveCompactedFloor: a resume floor at or above the
// compacted boundary is served incrementally, no resync flag.
func TestIncrementalAboveCompactedFloor(t *testing.T) {
	src := &compactedSource{
		fakeSource: fakeSource{vs: []*item.Version{
			ver(0, 250, "b"),
			ver(0, 400, "c"),
		}},
		floor: vclock.VC{200, 0},
	}
	m, tr, _ := newTestManager(t, Config{
		ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: 2, CatchUp: true, Source: src,
	})
	if _, err := m.Publish(&item.Version{Key: "k", SrcReplica: 0}); err != nil {
		t.Fatal("publish refused")
	}
	dst := netemu.NodeID{DC: 1, Partition: 0}
	m.HandleCatchUpRequest(dst, msg.CatchUpRequest{ReqID: 8, From: 250})
	if !waitUntil(t, 2*time.Second, func() bool {
		reps := catchUpReplies(tr, dst)
		return len(reps) > 0 && reps[len(reps)-1].Done
	}) {
		t.Fatal("catch-up stream never finished")
	}
	var shipped []string
	var done msg.CatchUpReply
	for _, rep := range catchUpReplies(tr, dst) {
		for _, v := range rep.Versions {
			shipped = append(shipped, v.Key)
		}
		if rep.Done {
			done = rep
		}
	}
	if done.FullResync {
		t.Fatalf("done = %+v, want incremental (floor 250 ≥ compacted 200)", done)
	}
	if len(shipped) != 1 || shipped[0] != "c" {
		t.Fatalf("shipped %v, want [c]", shipped)
	}
}

// TestReceiverCountsFullResync: the receiving side surfaces a full resync in
// its stats — the regression is observable, not silent.
func TestReceiverCountsFullResync(t *testing.T) {
	m, tr, be := newTestManager(t, Config{
		ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: 2, CatchUp: true,
	})
	src := netemu.NodeID{DC: 1, Partition: 0}
	// A gap starts a round: seq 5 with no history known resyncs.
	m.HandleBatch(src, msg.ReplicateBatch{Versions: []*item.Version{ver(1, 500, "z")}, HBTime: 500, Epoch: 3, Seq: 5})
	out := tr.msgs(src)
	if len(out) == 0 {
		t.Fatal("no catch-up request sent")
	}
	req, ok := out[len(out)-1].(msg.CatchUpRequest)
	if !ok {
		t.Fatalf("outbound = %#v, want CatchUpRequest", out[len(out)-1])
	}
	m.HandleCatchUpReply(src, msg.CatchUpReply{
		ReqID: req.ReqID, Done: true, FullResync: true,
		ResumeEpoch: 3, ResumeSeq: 5, Through: 500,
	})
	st := m.Stats()
	if st.FullResyncs != 1 {
		t.Fatalf("FullResyncs = %d, want 1 (stats %+v)", st.FullResyncs, st)
	}
	if got := be.VVEntry(1); got != 500 {
		t.Fatalf("VV[1] = %d, want 500 (round completed)", got)
	}
}

// TestGCHoldbackPinsAndReleases: a lagging catch-up requester pins the GC
// contribution at what it actually holds; the GCMaxHoldback escape hatch
// releases the pin so one wedged replica cannot hold the deployment's
// garbage forever.
func TestGCHoldbackPinsAndReleases(t *testing.T) {
	m, _, _ := newTestManager(t, Config{
		ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: 3, CatchUp: true,
	})
	dst := netemu.NodeID{DC: 1, Partition: 0}
	m.HandleCatchUpRequest(dst, msg.CatchUpRequest{
		ReqID: 1, From: 60, Have: vclock.VC{50, 80, 120},
	})
	// The laggard holds (60, 80, 120): our own entry is its request floor
	// (From > Have[0] of the snapshot it sent).
	gv := m.ClampGC(vclock.VC{500, 500, 500}, -1)
	want := vclock.VC{60, 80, 120}
	if !gv.Equal(want) {
		t.Fatalf("ClampGC = %v, want pinned at %v", gv, want)
	}
	if m.HoldbackAge() <= 0 {
		t.Fatal("HoldbackAge = 0, want a live holdback")
	}
	// Floors only rise: a second request after partial progress.
	m.HandleCatchUpRequest(dst, msg.CatchUpRequest{
		ReqID: 2, From: 90, Have: vclock.VC{90, 200, 100},
	})
	gv = m.ClampGC(vclock.VC{500, 500, 500}, -1)
	want = vclock.VC{90, 200, 120}
	if !gv.Equal(want) {
		t.Fatalf("ClampGC after progress = %v, want %v", gv, want)
	}
	// The escape hatch: a holdback older than maxAge no longer pins GC.
	time.Sleep(2 * time.Millisecond)
	gv = m.ClampGC(vclock.VC{500, 500, 500}, time.Millisecond)
	if !gv.Equal(vclock.VC{500, 500, 500}) {
		t.Fatalf("ClampGC past maxAge = %v, want released to 500s", gv)
	}
}

// TestClampGCJoinerPinsZero: a DC mid-bootstrap needs the full history — its
// presence zeroes the GC contribution entirely until it announces Active.
func TestClampGCJoinerPinsZero(t *testing.T) {
	m, _, _ := newTestManager(t, Config{
		ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: 3, MaxDCs: 3, CatchUp: true,
		Membership: msg.Membership{
			Epoch:  4,
			Status: []uint8{msg.DCActive, msg.DCActive, msg.DCJoining},
		},
	})
	gv := m.ClampGC(vclock.VC{500, 500, 500}, -1)
	if !gv.Equal(vclock.VC{0, 0, 0}) {
		t.Fatalf("ClampGC with a joiner = %v, want all-zero", gv)
	}
	if m.HoldbackAge() <= 0 {
		t.Fatal("HoldbackAge = 0, want the joiner accounted")
	}
}

// TestClampGCNeverPrunesBelowResumeFloor is the satellite property test:
// across randomized membership views and laggard populations, the clamped
// GC vector never passes any live laggard's catch-up resume floor (per
// entry, for every origin it still needs), never rises above the input, and
// zeroes out while any DC is still joining. Pruning above a resume floor
// would make the laggard's next incremental catch-up silently incomplete —
// exactly the regression the holdback exists to prevent.
func TestClampGCNeverPrunesBelowResumeFloor(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x6c0, 0x5eed))
	for iter := 0; iter < 40; iter++ {
		maxDCs := 3 + rng.IntN(4)
		status := make([]uint8, maxDCs)
		status[0] = msg.DCActive // self
		joining := false
		for dc := 1; dc < maxDCs; dc++ {
			switch rng.IntN(4) {
			case 0:
				status[dc] = msg.DCJoining
				joining = true
			case 1:
				status[dc] = msg.DCLeft
			default:
				status[dc] = msg.DCActive
			}
		}
		m, _, _ := newTestManager(t, Config{
			ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: maxDCs, MaxDCs: maxDCs,
			CatchUp:    true,
			Membership: msg.Membership{Epoch: uint64(iter), Status: append([]uint8(nil), status...)},
		})

		// A random population of laggards, each with a random snapshot of
		// what it holds; repeat requests merge (floors only rise).
		floors := make(map[int]vclock.VC)
		for n := 0; n < 1+rng.IntN(4); n++ {
			dc := 1 + rng.IntN(maxDCs-1)
			if status[dc] == msg.DCLeft {
				continue // nothing is owed to a departed DC
			}
			have := make(vclock.VC, maxDCs)
			for i := range have {
				have[i] = vclock.Timestamp(rng.IntN(1000))
			}
			from := vclock.Timestamp(rng.IntN(1000))
			m.HandleCatchUpRequest(netemu.NodeID{DC: dc, Partition: 0},
				msg.CatchUpRequest{ReqID: uint64(n + 1), From: from, Have: have.Clone()})
			want := have.Clone()
			if from > want[0] {
				want[0] = from // our own entry: the laggard's resume floor
			}
			if prev, ok := floors[dc]; ok {
				prev.MaxInPlace(want)
			} else {
				floors[dc] = want
			}
		}

		gv := make(vclock.VC, maxDCs)
		for i := range gv {
			gv[i] = vclock.Timestamp(rng.IntN(2000))
		}
		orig := gv.Clone()
		got := m.ClampGC(gv, -1)

		for i := range got {
			if got[i] > orig[i] {
				t.Fatalf("iter %d: ClampGC raised entry %d: %v -> %v", iter, i, orig, got)
			}
		}
		if joining {
			for i := range got {
				if got[i] != 0 {
					t.Fatalf("iter %d: joiner present but ClampGC = %v, want all-zero (status %v)",
						iter, got, status)
				}
			}
			continue
		}
		for dc, f := range floors {
			for i := range got {
				if got[i] > f.Get(i) {
					t.Fatalf("iter %d: prune point %v passes laggard dc%d's resume floor %v at entry %d (status %v)",
						iter, got, dc, f, i, status)
				}
			}
		}
	}
}
