package vclock

import "testing"

// BenchmarkVClockOps compares the allocating vector operations against
// their in-place variants used on the hot path.
func BenchmarkVClockOps(b *testing.B) {
	a := VC{100, 200, 300}
	c := VC{300, 100, 200}

	b.Run("Max", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = Max(a, c)
		}
	})
	b.Run("MaxInto", func(b *testing.B) {
		dst := New(3)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = MaxInto(dst, a, c)
		}
	})
	b.Run("Clone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = a.Clone()
		}
	})
	b.Run("CopyFrom", func(b *testing.B) {
		dst := New(3)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = dst.CopyFrom(a)
		}
	})
	b.Run("LessEq", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = a.LessEq(c)
		}
	})
	b.Run("MaxInPlace", func(b *testing.B) {
		dst := New(3)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst.MaxInPlace(a)
		}
	})
}
