package vclock

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	v := New(3)
	if v.Len() != 3 {
		t.Fatalf("Len = %d, want 3", v.Len())
	}
	for i := 0; i < 3; i++ {
		if v.Get(i) != 0 {
			t.Fatalf("entry %d = %d, want 0", i, v.Get(i))
		}
	}
}

func TestNilVectorIsZero(t *testing.T) {
	var v VC
	if v.Get(0) != 0 || v.Get(5) != 0 {
		t.Fatal("nil vector entries must read as 0")
	}
	if !v.LessEq(New(3)) {
		t.Fatal("nil vector must be <= any vector")
	}
	if v.Clone() != nil {
		t.Fatal("Clone of nil must be nil")
	}
	if v.MaxEntry() != 0 || v.MinEntry() != 0 {
		t.Fatal("nil vector MaxEntry/MinEntry must be 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := VC{1, 2, 3}
	b := a.Clone()
	b.Set(0, 99)
	if a[0] != 1 {
		t.Fatal("Clone must not alias the original")
	}
}

func TestMaxInPlace(t *testing.T) {
	tests := []struct {
		name    string
		v, o, w VC
	}{
		{"disjoint", VC{5, 0, 3}, VC{1, 7, 3}, VC{5, 7, 3}},
		{"identity", VC{5, 6, 7}, New(3), VC{5, 6, 7}},
		{"shorter other", VC{5, 6, 7}, VC{9}, VC{9, 6, 7}},
		{"nil other", VC{5, 6, 7}, nil, VC{5, 6, 7}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := tt.v.Clone()
			v.MaxInPlace(tt.o)
			if !v.Equal(tt.w) {
				t.Fatalf("MaxInPlace(%v, %v) = %v, want %v", tt.v, tt.o, v, tt.w)
			}
		})
	}
}

func TestMinInPlace(t *testing.T) {
	v := VC{5, 2, 9}
	v.MinInPlace(VC{3, 4, 9})
	if !v.Equal(VC{3, 2, 9}) {
		t.Fatalf("MinInPlace = %v", v)
	}
}

func TestLessEq(t *testing.T) {
	tests := []struct {
		name string
		a, b VC
		want bool
	}{
		{"equal", VC{1, 2}, VC{1, 2}, true},
		{"strictly less", VC{1, 2}, VC{2, 3}, true},
		{"incomparable", VC{1, 5}, VC{2, 3}, false},
		{"greater", VC{3, 3}, VC{2, 3}, false},
		{"zero below all", New(2), VC{0, 0}, true},
		{"longer a against implicit zeros", VC{0, 0, 1}, VC{5, 5}, false},
		{"longer a all zero", VC{0, 0, 0}, VC{5, 5}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.LessEq(tt.b); got != tt.want {
				t.Fatalf("%v.LessEq(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestLessEqExcept(t *testing.T) {
	a := VC{9, 2, 3}
	b := VC{1, 5, 5}
	if !a.LessEqExcept(b, 0) {
		t.Fatal("entry 0 must be skipped")
	}
	if a.LessEqExcept(b, 1) {
		t.Fatal("entry 0 violates when not skipped")
	}
}

func TestMaxMinEntry(t *testing.T) {
	v := VC{4, 9, 1}
	if v.MaxEntry() != 9 {
		t.Fatalf("MaxEntry = %d", v.MaxEntry())
	}
	if v.MinEntry() != 1 {
		t.Fatalf("MinEntry = %d", v.MinEntry())
	}
}

func TestAggregates(t *testing.T) {
	vs := []VC{{5, 1}, {3, 4}, {4, 2}}
	if got := AggregateMin(vs); !got.Equal(VC{3, 1}) {
		t.Fatalf("AggregateMin = %v", got)
	}
	if got := AggregateMax(vs); !got.Equal(VC{5, 4}) {
		t.Fatalf("AggregateMax = %v", got)
	}
	if AggregateMax(nil) != nil {
		t.Fatal("AggregateMax(nil) must be nil")
	}
}

func TestAggregateMinEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AggregateMin(empty) must panic")
		}
	}()
	AggregateMin(nil)
}

func TestValidate(t *testing.T) {
	if err := (VC{1, 2}).Validate(2); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := (VC{1, 2}).Validate(3); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestString(t *testing.T) {
	if got := (VC{1, 22, 3}).String(); got != "[1 22 3]" {
		t.Fatalf("String = %q", got)
	}
}

// randVC generates a bounded random vector for property tests.
func randVC(r *rand.Rand, n int) VC {
	v := New(n)
	for i := range v {
		v[i] = Timestamp(r.Uint64N(1 << 20))
	}
	return v
}

func TestQuickLatticeLaws(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	f := func(seed uint64) bool {
		rr := rand.New(rand.NewPCG(seed, 7))
		n := 1 + int(rr.Uint64N(8))
		a, b, c := randVC(rr, n), randVC(rr, n), randVC(rr, n)

		// Commutativity.
		if !Max(a, b).Equal(Max(b, a)) || !Min(a, b).Equal(Min(b, a)) {
			return false
		}
		// Associativity.
		if !Max(Max(a, b), c).Equal(Max(a, Max(b, c))) {
			return false
		}
		if !Min(Min(a, b), c).Equal(Min(a, Min(b, c))) {
			return false
		}
		// Idempotence.
		if !Max(a, a).Equal(a) || !Min(a, a).Equal(a) {
			return false
		}
		// Absorption: a ∨ (a ∧ b) == a.
		if !Max(a, Min(a, b)).Equal(a) {
			return false
		}
		// Order embedding: a <= Max(a,b), Min(a,b) <= a.
		if !a.LessEq(Max(a, b)) || !Min(a, b).LessEq(a) {
			return false
		}
		// LessEq is a partial order: antisymmetry on (a<=b && b<=a) => equal.
		if a.LessEq(b) && b.LessEq(a) && !a.Equal(b) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: nil}
	_ = r
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMaxIsLUB(t *testing.T) {
	f := func(seed uint64) bool {
		rr := rand.New(rand.NewPCG(seed, 11))
		n := 1 + int(rr.Uint64N(6))
		a, b := randVC(rr, n), randVC(rr, n)
		m := Max(a, b)
		// m is an upper bound.
		if !a.LessEq(m) || !b.LessEq(m) {
			return false
		}
		// m is the LEAST upper bound: every entry equals one of the inputs.
		for i := range m {
			if m[i] != a[i] && m[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualLengthMismatch(t *testing.T) {
	if (VC{1, 2}).Equal(VC{1, 2, 0}) {
		t.Fatal("different lengths must not be Equal")
	}
}

func TestMixedLengthInPlaceOps(t *testing.T) {
	// Vectors of different widths meet when a deployment grows at runtime:
	// the in-place ops must stay total. Max ignores entries the shorter
	// destination cannot track; Min treats entries the argument lacks as
	// zero (the conservative choice for aggregate minima).
	v := VC{5, 5}
	v.MaxInPlace(VC{1, 9, 7})
	if !v.Equal(VC{5, 9}) {
		t.Fatalf("MaxInPlace with a longer argument = %v, want [5 9]", v)
	}
	v = VC{5, 5, 5}
	v.MaxInPlace(VC{9})
	if !v.Equal(VC{9, 5, 5}) {
		t.Fatalf("MaxInPlace with a shorter argument = %v, want [9 5 5]", v)
	}
	v = VC{5, 5, 5}
	v.MinInPlace(VC{3, 9})
	if !v.Equal(VC{3, 5, 0}) {
		t.Fatalf("MinInPlace with a shorter argument = %v, want [3 5 0]", v)
	}
}

func TestGrowTo(t *testing.T) {
	v := VC{1, 2}
	grown := v.GrowTo(4)
	if !grown.Equal(VC{1, 2, 0, 0}) {
		t.Fatalf("GrowTo(4) = %v", grown)
	}
	if same := v.GrowTo(2); &same[0] != &v[0] {
		t.Fatal("GrowTo must not reallocate an already-wide vector")
	}
	if same := v.GrowTo(0); &same[0] != &v[0] {
		t.Fatal("GrowTo(0) must return the vector unchanged")
	}
}
