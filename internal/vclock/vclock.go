// Package vclock implements the vector-clock metadata used throughout the
// POCC/Cure protocols: dependency vectors (DV), read-dependency vectors
// (RDV), server version vectors (VV), globally-stable snapshots (GSS) and
// garbage-collection vectors (GV).
//
// A vector has one entry per data center. Entries are physical timestamps
// (nanoseconds). The zero vector depends on nothing and is the identity of
// Max; it is ≤ every vector of the same length.
package vclock

import (
	"fmt"
	"strconv"
	"strings"
)

// Timestamp is a physical-clock timestamp in nanoseconds since an arbitrary
// per-process epoch. Timestamps from different nodes are comparable because
// node clocks are (loosely) synchronized; protocol correctness does not
// depend on the synchronization precision.
//
// Hybrid logical/physical clocks (clock.NewHLC) pack an HLC into the same
// 64 bits: the low LogicalBits carry the logical counter and the upper bits
// carry wall-clock nanoseconds truncated to a multiple of 1<<LogicalBits.
// A packed HLC value still reads as nanoseconds to within one logical tick
// (1.024 µs), so duration arithmetic on Timestamps — replication lag,
// heartbeat idling, WAL range indexes — is valid for both representations.
type Timestamp uint64

// LogicalBits is the width of the logical counter in a packed hybrid
// timestamp. 10 bits bound the counter at 1024 local events per 1.024 µs of
// frozen wall clock; past that the counter rolls into the physical component,
// which is exactly the HLC overflow rule for a bounded-drift clock.
const LogicalBits = 10

// LogicalMask selects the logical counter of a packed hybrid timestamp.
const LogicalMask Timestamp = 1<<LogicalBits - 1

// Physical returns the physical (wall-clock) component of a packed hybrid
// timestamp: nanoseconds truncated to the 1<<LogicalBits tick. For raw
// physical timestamps it is the same truncation and differs from t by less
// than 1.024 µs, so it is safe to call without knowing the representation.
func (t Timestamp) Physical() Timestamp { return t &^ LogicalMask }

// Logical returns the logical counter of a packed hybrid timestamp.
func (t Timestamp) Logical() uint64 { return uint64(t & LogicalMask) }

// VC is a vector clock with one Timestamp entry per data center.
type VC []Timestamp

// New returns a zero vector with n entries.
func New(n int) VC { return make(VC, n) }

// Len returns the number of entries.
func (v VC) Len() int { return len(v) }

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	if v == nil {
		return nil
	}
	out := make(VC, len(v))
	copy(out, v)
	return out
}

// Get returns entry i, or 0 if v is nil (a nil vector is the zero vector).
func (v VC) Get(i int) Timestamp {
	if v == nil {
		return 0
	}
	return v[i]
}

// Set assigns entry i.
func (v VC) Set(i int, t Timestamp) { v[i] = t }

// MaxInPlace raises every entry of v to at least the corresponding entry of
// o. A nil o is treated as the zero vector. Entries of o beyond v's length
// are ignored: vectors of different lengths meet when deployments change
// size at runtime (a session minted before a DC joined reading a version
// written after), and the shorter vector simply does not track the extra
// data centers.
func (v VC) MaxInPlace(o VC) {
	n := len(o)
	if len(v) < n {
		n = len(v)
	}
	for i := 0; i < n; i++ {
		if o[i] > v[i] {
			v[i] = o[i]
		}
	}
}

// CopyFrom overwrites v with the entries of o, reusing v's storage when the
// lengths match, and returns the destination vector (reallocated only when
// the lengths differ, or nil when o is nil). It is the in-place counterpart
// of Clone for hot paths that snapshot a vector per operation.
func (v VC) CopyFrom(o VC) VC {
	if o == nil {
		return nil
	}
	if len(v) != len(o) {
		v = make(VC, len(o))
	}
	copy(v, o)
	return v
}

// MaxInto sets dst to the entry-wise maximum of a and b, reusing dst's
// storage when possible, and returns dst. dst may alias a or b. It is the
// in-place counterpart of Max for paths that would otherwise allocate a
// fresh vector per operation.
func MaxInto(dst, a, b VC) VC {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if len(dst) != n {
		dst = make(VC, n)
	}
	for i := range dst {
		var av, bv Timestamp
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		if bv > av {
			av = bv
		}
		dst[i] = av
	}
	return dst
}

// MinInPlace lowers every entry of v to at most the corresponding entry of o.
// Entries of v beyond o's length are lowered to zero — o is conceptually
// zero there — so aggregate minima stay conservative when vectors of
// different lengths meet (see MaxInPlace).
func (v VC) MinInPlace(o VC) {
	for i := range v {
		var oi Timestamp
		if i < len(o) {
			oi = o[i]
		}
		if oi < v[i] {
			v[i] = oi
		}
	}
}

// GrowTo returns v widened to at least n entries (new entries zero). It
// returns v unchanged when it is already long enough, so callers resizing
// vectors across a membership change only pay on the first operation after
// the deployment grew.
func (v VC) GrowTo(n int) VC {
	if len(v) >= n {
		return v
	}
	out := make(VC, n)
	copy(out, v)
	return out
}

// Max returns the entry-wise maximum of a and b as a fresh vector.
func Max(a, b VC) VC {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(VC, n)
	copy(out, a)
	out.MaxInPlace(b)
	return out
}

// Min returns the entry-wise minimum of a and b as a fresh vector. Both
// vectors must have the same length.
func Min(a, b VC) VC {
	out := a.Clone()
	out.MinInPlace(b)
	return out
}

// LessEq reports whether v ≤ o entry-wise. A nil vector is the zero vector,
// so nil ≤ anything. Entries beyond o's length are compared against zero.
func (v VC) LessEq(o VC) bool {
	for i := range v {
		var oi Timestamp
		if i < len(o) {
			oi = o[i]
		}
		if v[i] > oi {
			return false
		}
	}
	return true
}

// LessEqExcept reports whether v[i] ≤ o[i] for every entry i != skip. This is
// the POCC GET wait condition: dependencies on the local DC are trivially
// satisfied (Algorithm 2, line 2).
func (v VC) LessEqExcept(o VC, skip int) bool {
	for i := range v {
		if i == skip {
			continue
		}
		var oi Timestamp
		if i < len(o) {
			oi = o[i]
		}
		if v[i] > oi {
			return false
		}
	}
	return true
}

// Equal reports whether v and o have identical entries (and lengths).
func (v VC) Equal(o VC) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// MaxEntry returns the largest entry of v (0 for an empty or nil vector).
// Used by the PUT clock-wait condition (Algorithm 2, line 7).
func (v VC) MaxEntry() Timestamp {
	var m Timestamp
	for _, t := range v {
		if t > m {
			m = t
		}
	}
	return m
}

// MinEntry returns the smallest entry of v (0 for an empty or nil vector).
func (v VC) MinEntry() Timestamp {
	if len(v) == 0 {
		return 0
	}
	m := v[0]
	for _, t := range v[1:] {
		if t < m {
			m = t
		}
	}
	return m
}

// String renders the vector as "[t0 t1 ...]" for logs and test failures.
func (v VC) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, t := range v {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.FormatUint(uint64(t), 10))
	}
	sb.WriteByte(']')
	return sb.String()
}

// AggregateMin returns the entry-wise minimum across vs. It panics if vs is
// empty; callers aggregate at least their own vector.
func AggregateMin(vs []VC) VC {
	if len(vs) == 0 {
		panic("vclock: AggregateMin of empty set")
	}
	out := vs[0].Clone()
	for _, v := range vs[1:] {
		out.MinInPlace(v)
	}
	return out
}

// AggregateMax returns the entry-wise maximum across vs, or nil if vs is
// empty.
func AggregateMax(vs []VC) VC {
	if len(vs) == 0 {
		return nil
	}
	out := vs[0].Clone()
	for _, v := range vs[1:] {
		out.MaxInPlace(v)
	}
	return out
}

// Validate returns an error if v does not have exactly n entries.
func (v VC) Validate(n int) error {
	if len(v) != n {
		return fmt.Errorf("vclock: vector has %d entries, want %d", len(v), n)
	}
	return nil
}
