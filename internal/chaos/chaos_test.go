package chaos

import (
	"os"
	"strconv"
	"testing"
	"time"
)

// TestScheduleDeterministic pins the harness's replay guarantee: the fault
// schedule is a pure function of the seed, so re-running a reported seed
// reproduces the identical fault sequence.
func TestScheduleDeterministic(t *testing.T) {
	const d = 30 * time.Second
	a := Schedule(42, d, 2, 6)
	b := Schedule(42, d, 2, 6)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// A different seed must not produce the same schedule (astronomically
	// unlikely unless the seed is ignored).
	c := Schedule(43, d, 2, 6)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestScheduleCoversAllKinds checks the generator actually draws every fault
// kind over a long window — a weight-table regression would silently shrink
// the harness's coverage.
func TestScheduleCoversAllKinds(t *testing.T) {
	seen := make(map[Kind]bool)
	for _, e := range Schedule(7, 60*time.Second, 2, 6) {
		seen[e.Kind] = true
	}
	for _, k := range []Kind{CrashRestart, LinkFlap, LatencyScale, AddDC, RemoveDC, KillAndEvict, SlotMove, PartitionSplit} {
		if !seen[k] {
			t.Errorf("60s schedule never drew %v", k)
		}
	}
}

// TestChaosSoak runs the full fault-injection soak. The default is a short
// smoke (CI's race-chaos target and the nightly job raise it):
//
//	CHAOS_SECONDS=30 CHAOS_SEED=12345 go test -race -run TestChaosSoak ./internal/chaos
//
// On failure the seed and the executed fault trace are written to
// CHAOS_TRACE_FILE (if set) so the run can be replayed bit-for-bit.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	dur := 2 * time.Second
	if v := os.Getenv("CHAOS_SECONDS"); v != "" {
		secs, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SECONDS %q: %v", v, err)
		}
		dur = time.Duration(secs * float64(time.Second))
	}
	seed := uint64(1)
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		s, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", v, err)
		}
		seed = s
	}

	rep, err := Run(Options{
		Seed:     seed,
		Duration: dur,
		DataDir:  t.TempDir(),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	t.Logf("chaos: seed=%d ops=%d reopens=%d op_errors=%d full_resyncs=%d",
		rep.Seed, rep.Ops, rep.Reopens, rep.OpErrors, rep.Stats.FullResyncs)
	if rep.Ops == 0 {
		t.Error("checker performed no successful operations — the harness is not exercising the cluster")
	}
	if rep.Failed() {
		dump := rep.Dump()
		if path := os.Getenv("CHAOS_TRACE_FILE"); path != "" {
			if werr := os.WriteFile(path, []byte(dump), 0o644); werr != nil {
				t.Logf("could not write %s: %v", path, werr)
			} else {
				t.Logf("fault trace written to %s", path)
			}
		}
		t.Fatalf("chaos soak failed:\n%s", dump)
	}
}
