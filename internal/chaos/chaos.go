// Package chaos is the repository's continuous fault-injection harness: it
// drives a live HA-POCC deployment through an interleaved schedule of server
// crash/restarts, whole-DC membership churn (joins, graceful leaves, kills
// followed by forced removal), inter-DC link flaps and live latency
// reprofiles, while concurrent checker sessions assert causal consistency
// (internal/causaltest) and a watchdog asserts that global stabilization
// keeps making progress whenever no fault legitimately freezes it.
//
// The fault schedule is computed up front as a pure function of a seed
// (Schedule), so a failing soak is replayed exactly by re-running with the
// seed it reports. Execution-time skips (an event drawn against a DC that
// already departed, say) are decided by cluster state and recorded in the
// trace, but the schedule itself — times, kinds, targets — never depends on
// runtime state.
//
// A run ends with a heal-and-quiesce epilogue: every link is restored, the
// latency profile reset, in-flight joins settled, and the harness then
// requires (1) a marker written after the heal to become visible at every
// surviving DC, (2) every surviving DC to converge to identical heads for
// the whole chaos keyspace, and (3) the GSS of every survivor to advance
// past the marker — the "no permanent wedge" guarantee that forced removal
// and catch-up exist to provide. Violations of any of these, or any
// causality violation observed mid-run, fail the run; Report.Dump renders
// the seed plus the executed fault trace for reproduction.
package chaos

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/causaltest"
	"repro/internal/cluster"
	"repro/internal/keyspace"
	"repro/internal/netemu"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// Kind enumerates the fault types the scheduler draws from.
type Kind int

// Fault kinds.
const (
	// CrashRestart crash-restarts one partition server (kill -9 plus
	// WAL recovery plus catch-up resync).
	CrashRestart Kind = iota
	// LinkFlap partitions two DCs for Event.Dur, then heals.
	LinkFlap
	// LatencyScale multiplies every link's base latency by Event.Scale.
	LatencyScale
	// AddDC grows the deployment by a joining DC (bootstrapped by catch-up).
	AddDC
	// RemoveDC gracefully removes a DC (announced finals, flushed history).
	RemoveDC
	// KillAndEvict crashes a whole DC and forcibly removes it: the survivors
	// agree on its final replicated timestamps and discard the rest.
	KillAndEvict
	// SlotMove reshards part of one partition's slot range onto another
	// existing partition (drain-then-flip under the next slot-table epoch).
	SlotMove
	// PartitionSplit grows the keyspace by one partition server per DC and
	// moves half of a donor's slots onto it, bootstrapped from the donors'
	// history while the checked workload keeps writing.
	PartitionSplit
)

func (k Kind) String() string {
	switch k {
	case CrashRestart:
		return "crash-restart"
	case LinkFlap:
		return "link-flap"
	case LatencyScale:
		return "latency-scale"
	case AddDC:
		return "add-dc"
	case RemoveDC:
		return "remove-dc"
	case KillAndEvict:
		return "kill+evict"
	case SlotMove:
		return "slot-move"
	case PartitionSplit:
		return "partition-split"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	// At is the offset from the start of the run.
	At   time.Duration
	Kind Kind
	// DC (and P for CrashRestart, the donor partition for SlotMove and
	// PartitionSplit) is the primary target; DC2 is the peer of a LinkFlap.
	DC, DC2, P int
	// P2 is the receiving partition of a SlotMove.
	P2 int
	// Dur is the down window of a LinkFlap.
	Dur time.Duration
	// Scale is the LatencyScale multiplier.
	Scale float64
}

func (e Event) String() string {
	switch e.Kind {
	case CrashRestart:
		return fmt.Sprintf("%v %v dc%d-p%d", e.At, e.Kind, e.DC, e.P)
	case LinkFlap:
		return fmt.Sprintf("%v %v dc%d<->dc%d for %v", e.At, e.Kind, e.DC, e.DC2, e.Dur)
	case LatencyScale:
		return fmt.Sprintf("%v %v x%g", e.At, e.Kind, e.Scale)
	case SlotMove:
		return fmt.Sprintf("%v %v p%d->p%d", e.At, e.Kind, e.P, e.P2)
	case PartitionSplit:
		return fmt.Sprintf("%v %v p%d", e.At, e.Kind, e.P)
	default:
		return fmt.Sprintf("%v %v dc%d", e.At, e.Kind, e.DC)
	}
}

// Schedule computes the fault schedule for a run: a pure function of the
// seed and the deployment shape. Replaying a seed therefore reproduces the
// identical schedule; whether an individual event applies or is skipped is
// decided against live cluster state at execution time (and recorded in the
// trace), never fed back into the schedule.
func Schedule(seed uint64, d time.Duration, parts, maxDCs int) []Event {
	rng := rand.New(rand.NewPCG(seed, 0xc4a05))
	var evs []Event
	at := 150*time.Millisecond + time.Duration(rng.Int64N(int64(250*time.Millisecond)))
	for at < d {
		e := Event{At: at}
		switch r := rng.IntN(100); {
		case r < 30:
			e.Kind = CrashRestart
			e.DC = rng.IntN(maxDCs)
			e.P = rng.IntN(parts)
		case r < 52:
			e.Kind = LinkFlap
			e.DC = rng.IntN(maxDCs)
			e.DC2 = rng.IntN(maxDCs - 1)
			if e.DC2 >= e.DC {
				e.DC2++
			}
			e.Dur = 100*time.Millisecond + time.Duration(rng.Int64N(int64(600*time.Millisecond)))
		case r < 62:
			e.Kind = LatencyScale
			e.Scale = []float64{0.25, 0.5, 2, 4, 1}[rng.IntN(5)]
		case r < 70:
			e.Kind = AddDC
		case r < 78:
			e.Kind = RemoveDC
			// DC 0 is never removed: the harness needs one anchor DC to write
			// the convergence marker from and to keep at least one seed member.
			e.DC = 1 + rng.IntN(maxDCs-1)
		case r < 86:
			e.Kind = KillAndEvict
			e.DC = 1 + rng.IntN(maxDCs-1)
		case r < 93:
			// Donor and receiver are drawn from the initial layout (always
			// live); the slots actually moved are picked at execution time
			// from the live table and recorded in the trace.
			e.Kind = SlotMove
			e.P = rng.IntN(parts)
			e.P2 = rng.IntN(parts)
		default:
			e.Kind = PartitionSplit
			e.P = rng.IntN(parts)
		}
		evs = append(evs, e)
		at += 120*time.Millisecond + time.Duration(rng.Int64N(int64(500*time.Millisecond)))
	}
	return evs
}

// Options parameterizes a chaos run.
type Options struct {
	// Seed drives the fault schedule, the emulated network and the workers.
	Seed uint64
	// Duration is the fault-injection window (the epilogue adds to the wall
	// time). Zero means 3 s.
	Duration time.Duration
	// DCs×Partitions is the initial layout (0 → 3×2). MaxDCs bounds the
	// lifetime DC-slot capacity (0 → DCs+3); MaxPartitions bounds the
	// partition axis so PartitionSplit faults have headroom (0 →
	// Partitions+2).
	DCs, Partitions, MaxDCs, MaxPartitions int
	// Workers is the number of concurrent checker sessions (0 → 4).
	Workers int
	// DataDir roots the per-server WALs. Required: crash-restarts, kills and
	// join bootstraps all need durable engines.
	DataDir string
	// Keys is the size of the shared chaos keyspace (0 → 24).
	Keys int
	// Logf, when set, receives the live fault trace (e.g. testing.T.Logf).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Duration == 0 {
		o.Duration = 3 * time.Second
	}
	if o.DCs == 0 {
		o.DCs = 3
	}
	if o.Partitions == 0 {
		o.Partitions = 2
	}
	if o.MaxDCs == 0 {
		o.MaxDCs = o.DCs + 3
	}
	if o.MaxPartitions == 0 {
		o.MaxPartitions = o.Partitions + 2
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.Keys == 0 {
		o.Keys = 24
	}
	return o
}

// Report is the outcome of a run.
type Report struct {
	Seed uint64
	// Trace is the executed fault trace: every event with its outcome
	// (applied, skipped and why, or failed), plus the epilogue milestones.
	Trace []string
	// Violations holds every consistency, convergence, stabilization or
	// harness failure. Empty means the run passed.
	Violations []string
	// Ops counts checker operations that completed without error; Reopens
	// counts checker sessions opened (first sessions included); OpErrors
	// counts operations that failed and forced a session reopen.
	Ops, Reopens, OpErrors uint64
	// Stats is the deployment's replication-plane summary sampled at the end.
	Stats cluster.ReplicationStats
}

// Failed reports whether the run recorded any violation.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Dump renders the seed, violations and executed fault trace — everything
// needed to reproduce and diagnose a failed soak (CI uploads it as an
// artifact).
func (r *Report) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos seed %d (replay: CHAOS_SEED=%d)\n", r.Seed, r.Seed)
	fmt.Fprintf(&b, "ops=%d reopens=%d op_errors=%d\n", r.Ops, r.Reopens, r.OpErrors)
	fmt.Fprintf(&b, "violations (%d):\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	b.WriteString("fault trace:\n")
	for _, t := range r.Trace {
		fmt.Fprintf(&b, "  %s\n", t)
	}
	return b.String()
}

// harness is the mutable state of one run.
type harness struct {
	opts  Options
	c     *cluster.Cluster
	reg   *causaltest.Registry
	start time.Time

	mu         sync.Mutex
	active     map[int]bool // DCs workers and faults may target
	joining    bool         // an AddDC bootstrap is in flight (at most one)
	resharding bool         // a SlotMove/PartitionSplit is in flight (at most one)
	down       map[[2]int]bool
	trace      []string
	viols      []string

	evicting atomic.Int32 // kill+evict rounds in flight (watchdog license)
	flapping atomic.Int32 // link flaps in flight (watchdog license)

	ops, reopens, opErrs atomic.Uint64

	stop      chan struct{} // closes when workers should exit
	workerWG  sync.WaitGroup
	healWG    sync.WaitGroup
	joinWG    sync.WaitGroup
	reshardWG sync.WaitGroup
	wdWG      sync.WaitGroup
}

// Run executes a full chaos run: build the deployment, inject the schedule,
// heal, quiesce, and verify. The returned error reports harness-level
// failures only (e.g. the cluster could not be built); fault-induced
// failures are Report.Violations.
func Run(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if opts.DataDir == "" {
		return nil, fmt.Errorf("chaos: Options.DataDir is required (crash faults need durable engines)")
	}
	c, err := cluster.New(cluster.Config{
		NumDCs:        opts.DCs,
		NumPartitions: opts.Partitions,
		Engine:        cluster.HAPOCC,
		// Fast control loops so a few seconds of soak cover many heartbeat,
		// stabilization and GC rounds.
		HeartbeatInterval:     time.Millisecond,
		StabilizationInterval: 20 * time.Millisecond,
		GCInterval:            25 * time.Millisecond,
		PutDepWait:            true,
		// A short suspicion timeout makes wedged sessions fail fast; the
		// checker reopens them rather than falling back (see NewRawSession).
		BlockTimeout: 150 * time.Millisecond,
		ClockSkew:    2 * time.Millisecond,
		Latency: func(src, dst netemu.NodeID) time.Duration {
			if src.DC == dst.DC {
				return 200 * time.Microsecond
			}
			return 2 * time.Millisecond
		},
		JitterFrac: 0.2,
		Seed:       opts.Seed,
		DataDir:    opts.DataDir,
		// Soak the pipelined commit path in its loosest acknowledged mode:
		// grouped acks are exactly what the kill/restart faults must not be
		// able to turn into causal violations.
		Durable:       storage.DurableOptions{AckMode: storage.AckGrouped},
		MaxDCs:        opts.MaxDCs,
		MaxPartitions: opts.MaxPartitions,
		// An undrainable reshard (a member killed mid-drain) must abort and
		// roll forward inside the soak window, not stall it for the default
		// 30s.
		ReshardTimeout: 4 * time.Second,
		// Joins must either finish or unwind inside the epilogue budget.
		JoinTimeout: 10 * time.Second,
		// Short enough that holdbacks for permanently dead links release
		// during the soak, long enough that live catch-ups keep their floor.
		GCMaxHoldback: 2 * time.Second,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: build cluster: %w", err)
	}
	defer c.Close()

	h := &harness{
		opts:   opts,
		c:      c,
		reg:    causaltest.NewRegistry(),
		active: make(map[int]bool, opts.DCs),
		down:   make(map[[2]int]bool),
		stop:   make(chan struct{}),
	}
	for dc := 0; dc < opts.DCs; dc++ {
		h.active[dc] = true
	}
	for i := 0; i < opts.Keys; i++ {
		c.Seed(h.key(i), []byte("seed"))
	}

	h.start = time.Now()
	for i := 0; i < opts.Workers; i++ {
		h.workerWG.Add(1)
		go h.worker(i)
	}
	wdStop := make(chan struct{})
	h.wdWG.Add(1)
	go h.watchdog(wdStop)

	for _, e := range Schedule(opts.Seed, opts.Duration, opts.Partitions, opts.MaxDCs) {
		if d := time.Until(h.start.Add(e.At)); d > 0 {
			time.Sleep(d)
		}
		h.apply(e)
	}

	h.epilogue()
	close(wdStop)
	h.wdWG.Wait()

	h.mu.Lock()
	defer h.mu.Unlock()
	rep := &Report{
		Seed:       opts.Seed,
		Trace:      h.trace,
		Violations: append(h.viols, h.reg.Violations()...),
		Ops:        h.ops.Load(),
		Reopens:    h.reopens.Load(),
		OpErrors:   h.opErrs.Load(),
		Stats:      c.ReplicationStats(),
	}
	return rep, nil
}

func (h *harness) key(i int) string { return fmt.Sprintf("chaos-%03d", i) }

// tracef appends a line to the executed fault trace.
func (h *harness) tracef(format string, args ...any) {
	line := fmt.Sprintf("%8.3fs %s", time.Since(h.start).Seconds(), fmt.Sprintf(format, args...))
	h.mu.Lock()
	h.trace = append(h.trace, line)
	h.mu.Unlock()
	if h.opts.Logf != nil {
		h.opts.Logf("chaos: %s", line)
	}
}

// violatef records a failure (and traces it).
func (h *harness) violatef(format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	h.mu.Lock()
	h.viols = append(h.viols, s)
	h.mu.Unlock()
	h.tracef("VIOLATION: %s", s)
}

// activeDCs snapshots the DCs that faults and workers may target.
func (h *harness) activeDCs() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int, 0, len(h.active))
	for dc, ok := range h.active {
		if ok {
			out = append(out, dc)
		}
	}
	sort.Ints(out)
	return out
}

// apply executes one scheduled event against live cluster state, skipping
// (with a trace entry) events whose target is gone or whose preconditions
// no longer hold.
func (h *harness) apply(e Event) {
	switch e.Kind {
	case CrashRestart:
		h.mu.Lock()
		ok := h.active[e.DC]
		h.mu.Unlock()
		if !ok {
			h.tracef("skip %v: dc%d not active", e, e.DC)
			return
		}
		if err := h.c.RestartServer(e.DC, e.P); err != nil {
			// Losing a restart race with a concurrent removal is a skip, not
			// a failure.
			h.tracef("skip %v: %v", e, err)
			return
		}
		h.tracef("%v", e)

	case LinkFlap:
		h.mu.Lock()
		ok := h.active[e.DC] && h.active[e.DC2]
		if ok {
			h.down[[2]int{e.DC, e.DC2}] = true
		}
		h.mu.Unlock()
		if !ok {
			h.tracef("skip %v: endpoint not active", e)
			return
		}
		h.flapping.Add(1)
		h.c.Network().PartitionDCs(e.DC, e.DC2, true)
		h.tracef("%v (down)", e)
		h.healWG.Add(1)
		a, b := e.DC, e.DC2
		time.AfterFunc(e.Dur, func() {
			defer h.healWG.Done()
			h.c.Network().PartitionDCs(a, b, false)
			h.mu.Lock()
			delete(h.down, [2]int{a, b})
			h.mu.Unlock()
			h.flapping.Add(-1)
			h.tracef("heal dc%d<->dc%d", a, b)
		})

	case LatencyScale:
		h.c.Network().SetLatencyScale(e.Scale)
		h.tracef("%v", e)

	case AddDC:
		h.mu.Lock()
		busy := h.joining
		if !busy {
			h.joining = true
		}
		h.mu.Unlock()
		if busy {
			h.tracef("skip %v: a join is already in flight", e)
			return
		}
		dc, err := h.c.AddDC()
		if err != nil {
			h.mu.Lock()
			h.joining = false
			h.mu.Unlock()
			h.tracef("skip %v: %v", e, err)
			return
		}
		h.tracef("%v: dc%d joining", e, dc)
		h.joinWG.Add(1)
		go func() {
			defer h.joinWG.Done()
			err := h.c.WaitForJoin(dc, 20*time.Second)
			h.mu.Lock()
			h.joining = false
			if err == nil {
				h.active[dc] = true
			}
			h.mu.Unlock()
			if err == nil {
				h.tracef("dc%d joined", dc)
			} else {
				// A join defeated by overlapping faults unwinds cleanly; that
				// is the mechanism under test, not a violation.
				h.tracef("dc%d join did not complete: %v", dc, err)
			}
		}()

	case SlotMove, PartitionSplit:
		h.mu.Lock()
		busy := h.resharding
		if !busy {
			h.resharding = true
		}
		h.mu.Unlock()
		if busy {
			h.tracef("skip %v: a reshard is already in flight", e)
			return
		}
		// Reshards run off the schedule loop: a drain defeated by an
		// overlapping kill takes the full drain bound before it aborts, and
		// that wait must not starve the rest of the schedule.
		h.reshardWG.Add(1)
		go func() {
			defer h.reshardWG.Done()
			h.runReshard(e)
			h.mu.Lock()
			h.resharding = false
			h.mu.Unlock()
		}()

	case RemoveDC:
		if !h.claimRemoval(e) {
			return
		}
		if err := h.c.RemoveDC(e.DC); err != nil {
			h.violatef("graceful removal of dc%d failed: %v", e.DC, err)
			return
		}
		h.tracef("%v (graceful)", e)

	case KillAndEvict:
		if !h.claimRemoval(e) {
			return
		}
		h.evicting.Add(1)
		defer h.evicting.Add(-1)
		if err := h.c.KillDC(e.DC); err != nil {
			h.violatef("kill dc%d failed: %v", e.DC, err)
			return
		}
		h.tracef("%v: dc%d crashed, survivors' GSS frozen", e, e.DC)
		// Let the survivors run against the dead member for a moment — the
		// window in which their GSS is legitimately frozen — then evict.
		time.Sleep(250 * time.Millisecond)
		if err := h.c.ForceRemoveDC(e.DC, 5*time.Second); err != nil {
			h.violatef("forced removal of dc%d failed: %v", e.DC, err)
			return
		}
		h.tracef("%v: dc%d evicted at agreed finals", e, e.DC)
	}
}

// runReshard executes a SlotMove or PartitionSplit against live cluster
// state. Reshards that cannot proceed (capacity used up, donor owns
// nothing, drain defeated by an overlapping fault) are skips, not
// violations: the abort path rolls the slot table forward onto the old
// owners and is itself part of the machinery under test. The checked
// workload keeps writing throughout — sessions pinned to the old owner
// retry through core.ErrWrongSlotEpoch until routing flips.
func (h *harness) runReshard(e Event) {
	switch e.Kind {
	case PartitionSplit:
		if h.c.NumPartitions() >= h.c.MaxPartitions() {
			h.tracef("skip %v: partition capacity %d used up", e, h.c.MaxPartitions())
			return
		}
		np, err := h.c.SplitPartition(e.P)
		if err != nil {
			h.tracef("skip %v: %v", e, err)
			return
		}
		h.tracef("%v: p%d live at slot epoch %d", e, np, h.c.SlotTable().Epoch)

	case SlotMove:
		parts := h.c.NumPartitions()
		donor, target := e.P%parts, e.P2%parts
		if target == donor {
			target = (target + 1) % parts
		}
		if target == donor {
			h.tracef("skip %v: single partition", e)
			return
		}
		tbl := h.c.SlotTable()
		if tbl == nil {
			tbl = keyspace.DefaultMap(parts)
		}
		owned := tbl.SlotsOwnedBy(donor)
		if len(owned) == 0 {
			h.tracef("skip %v: p%d owns no slots", e, donor)
			return
		}
		// Move a modest prefix so repeated draws keep both sides populated.
		n := len(owned) / 4
		if n == 0 {
			n = 1
		}
		if n > 8 {
			n = 8
		}
		if err := h.c.MoveSlots(owned[:n], target); err != nil {
			h.tracef("skip %v: %v", e, err)
			return
		}
		h.tracef("%v: %d slot(s) p%d->p%d at slot epoch %d", e, n, donor, target, h.c.SlotTable().Epoch)
	}
}

// claimRemoval atomically checks a removal's preconditions (target active,
// not DC 0, at least two actives surviving, no join racing it) and marks
// the DC inactive so workers and later faults stop targeting it.
func (h *harness) claimRemoval(e Event) bool {
	h.mu.Lock()
	n := 0
	for _, ok := range h.active {
		if ok {
			n++
		}
	}
	reason := ""
	switch {
	case e.DC == 0 || !h.active[e.DC]:
		reason = fmt.Sprintf("dc%d not removable", e.DC)
	case n <= 2:
		reason = fmt.Sprintf("only %d active DCs", n)
	default:
		h.active[e.DC] = false
	}
	h.mu.Unlock()
	if reason != "" {
		h.tracef("skip %v: %s", e, reason)
		return false
	}
	return true
}

// worker is one checker session loop: it runs a random mix of checked GETs,
// PUTs and RO-TXs against a live DC, and on any error discards the whole
// session and opens a fresh one — mirroring exactly the client-visible
// semantics of a fault (a failed-over client starts a new session with no
// carried-over causal context). Sessions are opened without auto-fallback so
// errors surface here instead of being absorbed mid-operation.
func (h *harness) worker(id int) {
	defer h.workerWG.Done()
	rng := rand.New(rand.NewPCG(h.opts.Seed, 0x3077+uint64(id)))
	var cs *causaltest.Session
	gen := 0
	for {
		select {
		case <-h.stop:
			return
		default:
		}
		if cs == nil {
			dcs := h.activeDCs()
			if len(dcs) == 0 {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			dc := dcs[rng.IntN(len(dcs))]
			s, err := h.c.NewRawSession(dc)
			if err != nil {
				time.Sleep(2 * time.Millisecond)
				continue
			}
			gen++
			cs = causaltest.NewSession(h.reg, s, fmt.Sprintf("w%d.%d@dc%d", id, gen, dc))
			h.reopens.Add(1)
		}
		var err error
		switch r := rng.IntN(10); {
		case r < 5:
			_, err = cs.Get(h.key(rng.IntN(h.opts.Keys)))
		case r < 8:
			err = cs.Put(h.key(rng.IntN(h.opts.Keys)),
				[]byte(fmt.Sprintf("w%d-%d", id, h.ops.Load())))
		default:
			keys := make([]string, 3)
			for i := range keys {
				keys[i] = h.key(rng.IntN(h.opts.Keys))
			}
			_, err = cs.ROTx(keys)
		}
		if err != nil {
			h.opErrs.Add(1)
			cs = nil // fresh session, fresh causal context
			continue
		}
		h.ops.Add(1)
	}
}

// watchdog asserts GSS liveness: DC 0's stabilization cursor for its own
// updates must keep advancing whenever no fault (kill awaiting eviction,
// link down) can legitimately freeze the deployment. A stall without an
// active fault is exactly the permanent wedge the eviction and catch-up
// machinery exists to rule out.
func (h *harness) watchdog(stop <-chan struct{}) {
	defer h.wdWG.Done()
	const window = 10 * time.Second
	var last vclock.Timestamp
	lastProgress := time.Now()
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		h.mu.Lock()
		faultActive := len(h.down) > 0
		h.mu.Unlock()
		if faultActive || h.evicting.Load() > 0 || h.flapping.Load() > 0 {
			lastProgress = time.Now() // legitimate freeze window
			continue
		}
		cur := vclock.Timestamp(0)
		ok := true
		// Live partition count: splits grow it mid-run, and a freshly
		// flipped partition's cursor folds in once its servers stabilize.
		for p := 0; p < h.c.NumPartitions(); p++ {
			srv := h.c.Server(0, p)
			if srv == nil {
				ok = false // mid-restart; try next tick
				break
			}
			g := srv.GSS().Get(0)
			if p == 0 || g < cur {
				cur = g
			}
		}
		if !ok {
			continue
		}
		if cur > last {
			last = cur
			lastProgress = time.Now()
			continue
		}
		if time.Since(lastProgress) > window {
			h.violatef("GSS stalled: dc0's own stabilization cursor stuck at %d for %v with no active fault",
				last, time.Since(lastProgress).Round(time.Millisecond))
			lastProgress = time.Now() // don't spam
		}
	}
}

// epilogue heals every injected fault, settles in-flight joins, stops the
// workers, and verifies the deployment converged: marker visibility, head
// agreement on the whole keyspace across every surviving DC, and GSS
// advancement past the marker.
func (h *harness) epilogue() {
	// Restore the network profile and every downed link (AfterFunc heals are
	// idempotent with this).
	h.c.Network().SetLatencyScale(1)
	h.mu.Lock()
	pairs := make([][2]int, 0, len(h.down))
	for p := range h.down {
		pairs = append(pairs, p)
	}
	h.mu.Unlock()
	for _, p := range pairs {
		h.c.Network().PartitionDCs(p[0], p[1], false)
	}
	h.healWG.Wait()
	h.joinWG.Wait()
	h.reshardWG.Wait()
	h.tracef("healed; joins and reshards settled; quiescing")

	close(h.stop)
	h.workerWG.Wait()

	if err := h.c.StorageErr(); err != nil {
		h.violatef("sticky storage error: %v", err)
	}

	// Write the convergence marker from DC 0 (never removed). Retries cover
	// a marker write racing the tail of a crash-restart.
	markerKey := "chaos-marker"
	var markerUT vclock.Timestamp
	var markerDC int
	wrote := false
	for attempt := 0; attempt < 50 && !wrote; attempt++ {
		s, err := h.c.NewRawSession(0)
		if err == nil {
			if ut, dc, perr := s.PutMeta(markerKey, []byte("converge")); perr == nil {
				markerUT, markerDC = ut, dc
				wrote = true
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !wrote {
		h.violatef("could not write the convergence marker at dc0 after healing")
		return
	}

	dcs := h.activeDCs()
	deadline := time.Now().Add(30 * time.Second)
	for {
		lag := h.convergenceLag(dcs, markerKey, markerUT, markerDC)
		if lag == "" {
			h.tracef("converged across dc%v", dcs)
			return
		}
		if time.Now().After(deadline) {
			h.violatef("no convergence within 30s after healing: %s (repl stats %+v)",
				lag, h.c.ReplicationStats())
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// convergenceLag returns "" when every surviving DC agrees: the marker is
// visible and stable everywhere and every chaos key resolves to the same
// head version at every DC. Otherwise it describes the first divergence.
func (h *harness) convergenceLag(dcs []int, markerKey string, markerUT vclock.Timestamp, markerDC int) string {
	type head struct {
		ut     vclock.Timestamp
		src    int
		exists bool
	}
	for i := 0; i < h.opts.Keys+1; i++ {
		key := markerKey
		if i < h.opts.Keys {
			key = h.key(i)
		}
		var first head
		for n, dc := range dcs {
			r, err := h.c.ReadAt(dc, key)
			if err != nil {
				return fmt.Sprintf("dc%d read %s: %v", dc, key, err)
			}
			cur := head{r.UpdateTime, r.SrcReplica, r.Exists}
			if key == markerKey && (!cur.exists || cur.ut < markerUT) {
				return fmt.Sprintf("dc%d has not seen the marker (%d@dc%d)", dc, markerUT, markerDC)
			}
			if n == 0 {
				first = cur
			} else if cur != first {
				return fmt.Sprintf("heads diverge on %s: dc%d=%+v dc%d=%+v", key, dcs[0], first, dc, cur)
			}
		}
	}
	// GSS must cover the marker at every surviving server: stabilization
	// resumed after the last eviction/heal.
	for _, dc := range dcs {
		for p := 0; p < h.c.NumPartitions(); p++ {
			srv := h.c.Server(dc, p)
			if srv == nil {
				return fmt.Sprintf("dc%d-p%d not running", dc, p)
			}
			if g := srv.GSS().Get(markerDC); g < markerUT {
				return fmt.Sprintf("dc%d-p%d GSS[%d]=%d below marker %d (stabilization wedged)",
					dc, p, markerDC, g, markerUT)
			}
		}
	}
	return ""
}
