// Package causaltest provides a model-based causal-consistency checker used
// by the integration and stress tests. Independently of the protocol under
// test, it tracks the *real* transitive dependency set of every written
// version on the test side; a checked session then asserts that every GET
// returns a version at least as new (in last-writer-wins order) as every
// version the client causally depends on, and that RO-TX results form causal
// snapshots. Because the protocols guarantee that causality is consistent
// with the LWW order (Proposition 2 of the paper), any causality violation
// surfaces as an LWW regression.
package causaltest

import (
	"fmt"
	"sync"

	"repro/internal/client"
	"repro/internal/vclock"
)

// VersionID identifies a written version.
type VersionID struct {
	UpdateTime vclock.Timestamp
	SrcReplica int
}

// zero reports whether the id is the placeholder "no version".
func (v VersionID) zero() bool { return v.UpdateTime == 0 }

// newerOrEqual is the LWW order of the protocols: higher timestamp wins,
// ties go to the lowest source replica.
func (v VersionID) newerOrEqual(o VersionID) bool {
	if v == o {
		return true
	}
	if v.UpdateTime != o.UpdateTime {
		return v.UpdateTime > o.UpdateTime
	}
	return v.SrcReplica < o.SrcReplica
}

type writeKey struct {
	key string
	id  VersionID
}

// Registry records, for every version written through a checked session, the
// exact dependency map (key → newest version the writer causally depended
// on) captured at write time. One registry is shared by all sessions of a
// test.
type Registry struct {
	mu  sync.Mutex
	ctx map[writeKey]map[string]VersionID

	violMu     sync.Mutex
	violations []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ctx: make(map[writeKey]map[string]VersionID)}
}

func (r *Registry) record(key string, id VersionID, deps map[string]VersionID) {
	cp := make(map[string]VersionID, len(deps))
	for k, v := range deps {
		cp[k] = v
	}
	r.mu.Lock()
	r.ctx[writeKey{key, id}] = cp
	r.mu.Unlock()
}

func (r *Registry) contextOf(key string, id VersionID) map[string]VersionID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ctx[writeKey{key, id}] // read-only after record
}

func (r *Registry) violate(format string, args ...any) {
	r.violMu.Lock()
	defer r.violMu.Unlock()
	if len(r.violations) < 50 { // cap the report size
		r.violations = append(r.violations, fmt.Sprintf(format, args...))
	}
}

// Violations returns the recorded causality violations.
func (r *Registry) Violations() []string {
	r.violMu.Lock()
	defer r.violMu.Unlock()
	out := make([]string, len(r.violations))
	copy(out, r.violations)
	return out
}

// Session wraps a client session with causality checking. It must be used by
// a single goroutine, like the underlying session.
type Session struct {
	reg  *Registry
	s    *client.Session
	name string
	// deps is the client's real causal lower bound per key: any later read
	// of k must return a version >= deps[k] in LWW order.
	deps map[string]VersionID
}

// NewSession wraps s. The name labels violations in reports.
func NewSession(reg *Registry, s *client.Session, name string) *Session {
	return &Session{reg: reg, s: s, name: name, deps: make(map[string]VersionID)}
}

// Unwrap returns the underlying session.
func (c *Session) Unwrap() *client.Session { return c.s }

// Get reads key and checks the result against the client's causal history.
func (c *Session) Get(key string) ([]byte, error) {
	reply, err := c.s.GetReply(key)
	if err != nil {
		return nil, err
	}
	id := VersionID{reply.UpdateTime, reply.SrcReplica}
	if !reply.Exists {
		id = VersionID{}
	}
	c.checkRead("GET", key, id)
	c.absorb(key, id)
	return reply.Value, nil
}

// Put writes key and registers the new version's real dependency context.
func (c *Session) Put(key string, value []byte) error {
	ut, dc, err := c.s.PutMeta(key, value)
	if err != nil {
		return err
	}
	id := VersionID{ut, dc}
	c.reg.record(key, id, c.deps)
	c.deps[key] = maxID(c.deps[key], id)
	return nil
}

// ROTx reads keys transactionally, checking both the session guarantees and
// the causal-snapshot property.
func (c *Session) ROTx(keys []string) (map[string][]byte, error) {
	replies, err := c.s.ROTxReplies(keys)
	if err != nil {
		return nil, err
	}
	returned := make(map[string]VersionID, len(replies))
	out := make(map[string][]byte, len(replies))
	for _, r := range replies {
		id := VersionID{r.UpdateTime, r.SrcReplica}
		if !r.Exists {
			id = VersionID{}
		}
		returned[r.Key] = id
		out[r.Key] = r.Value
	}
	// Session guarantee per key.
	for k, id := range returned {
		c.checkRead("RO-TX", k, id)
	}
	// Causal snapshot: if the snapshot contains V and V really depends on
	// (k2, v2), then the version returned for k2 must be >= v2.
	for k, id := range returned {
		if id.zero() {
			continue
		}
		for k2, dep := range c.reg.contextOf(k, id) {
			got, inTx := returned[k2]
			if !inTx {
				continue
			}
			if got.zero() || !got.newerOrEqual(dep) {
				c.reg.violate("%s: RO-TX snapshot broken: returned %s@%v which depends on %s@%v, but %s resolved to %v",
					c.name, k, id, k2, dep, k2, got)
			}
		}
	}
	for k, id := range returned {
		c.absorb(k, id)
	}
	return out, nil
}

// checkRead asserts the session guarantee: the returned version must not be
// LWW-older than anything the client causally depends on for that key.
func (c *Session) checkRead(op, key string, got VersionID) {
	want, ok := c.deps[key]
	if !ok || want.zero() {
		return
	}
	if got.zero() {
		c.reg.violate("%s: %s(%s) returned no version but client depends on %v", c.name, op, key, want)
		return
	}
	if !got.newerOrEqual(want) {
		c.reg.violate("%s: %s(%s) returned %v, causally older than required %v", c.name, op, key, got, want)
	}
}

// absorb merges a read version and its real transitive context into the
// client's dependency map.
func (c *Session) absorb(key string, id VersionID) {
	if id.zero() {
		return
	}
	c.deps[key] = maxID(c.deps[key], id)
	for k, dep := range c.reg.contextOf(key, id) {
		c.deps[k] = maxID(c.deps[k], dep)
	}
}

func maxID(a, b VersionID) VersionID {
	if a.zero() {
		return b
	}
	if b.zero() {
		return a
	}
	if a.newerOrEqual(b) {
		return a
	}
	return b
}
