package causaltest

import (
	"strings"
	"testing"
)

func TestVersionIDOrder(t *testing.T) {
	a := VersionID{UpdateTime: 10, SrcReplica: 1}
	b := VersionID{UpdateTime: 5, SrcReplica: 0}
	if !a.newerOrEqual(b) || b.newerOrEqual(a) {
		t.Fatal("higher timestamp must win")
	}
	tieLow := VersionID{UpdateTime: 10, SrcReplica: 0}
	if !tieLow.newerOrEqual(a) || a.newerOrEqual(tieLow) {
		t.Fatal("ties must go to the lowest replica")
	}
	if !a.newerOrEqual(a) {
		t.Fatal("order must be reflexive")
	}
}

func TestMaxID(t *testing.T) {
	a := VersionID{UpdateTime: 10, SrcReplica: 1}
	b := VersionID{UpdateTime: 12, SrcReplica: 2}
	if maxID(a, b) != b || maxID(b, a) != b {
		t.Fatal("maxID must pick the LWW winner")
	}
	if maxID(VersionID{}, a) != a || maxID(a, VersionID{}) != a {
		t.Fatal("zero id is the identity")
	}
}

func TestCheckReadFlagsRegression(t *testing.T) {
	reg := NewRegistry()
	c := NewSession(reg, nil, "c1")
	// The client causally depends on version 10 of "x".
	c.deps["x"] = VersionID{UpdateTime: 10, SrcReplica: 0}
	// A read returning version 5 is a causality violation.
	c.checkRead("GET", "x", VersionID{UpdateTime: 5, SrcReplica: 0})
	if v := reg.Violations(); len(v) != 1 || !strings.Contains(v[0], "causally older") {
		t.Fatalf("violations = %v", v)
	}
}

func TestCheckReadFlagsMissing(t *testing.T) {
	reg := NewRegistry()
	c := NewSession(reg, nil, "c1")
	c.deps["x"] = VersionID{UpdateTime: 10, SrcReplica: 0}
	c.checkRead("GET", "x", VersionID{})
	if v := reg.Violations(); len(v) != 1 || !strings.Contains(v[0], "no version") {
		t.Fatalf("violations = %v", v)
	}
}

func TestCheckReadAcceptsNewer(t *testing.T) {
	reg := NewRegistry()
	c := NewSession(reg, nil, "c1")
	c.deps["x"] = VersionID{UpdateTime: 10, SrcReplica: 0}
	c.checkRead("GET", "x", VersionID{UpdateTime: 10, SrcReplica: 0})
	c.checkRead("GET", "x", VersionID{UpdateTime: 99, SrcReplica: 2})
	if v := reg.Violations(); len(v) != 0 {
		t.Fatalf("violations = %v", v)
	}
}

func TestAbsorbMergesTransitiveContext(t *testing.T) {
	reg := NewRegistry()
	writer := NewSession(reg, nil, "writer")
	// The writer depends on y@7 when it writes x@9.
	writer.deps["y"] = VersionID{UpdateTime: 7, SrcReplica: 1}
	xid := VersionID{UpdateTime: 9, SrcReplica: 0}
	reg.record("x", xid, writer.deps)

	reader := NewSession(reg, nil, "reader")
	reader.absorb("x", xid)
	if reader.deps["x"] != xid {
		t.Fatal("direct dependency not absorbed")
	}
	if reader.deps["y"] != (VersionID{UpdateTime: 7, SrcReplica: 1}) {
		t.Fatal("transitive dependency not absorbed")
	}
	// Reading an older y later must now be flagged.
	reader.checkRead("GET", "y", VersionID{UpdateTime: 3, SrcReplica: 1})
	if len(reg.Violations()) != 1 {
		t.Fatal("transitive regression not flagged")
	}
}

func TestViolationCap(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < 200; i++ {
		reg.violate("v%d", i)
	}
	if got := len(reg.Violations()); got != 50 {
		t.Fatalf("violations capped at %d, want 50", got)
	}
}
