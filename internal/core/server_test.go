package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/item"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/vclock"
)

// rig wires one real server (dc 0, partition 0) into a network with fake
// sibling endpoints at the other DCs and partitions so tests can observe
// replication traffic and inject protocol messages.
type rig struct {
	t      *testing.T
	net    *netemu.Network
	srv    *Server
	mx     *Metrics
	mu     sync.Mutex
	inbox  map[netemu.NodeID][]any // messages received by fake peers
	fakeEP map[netemu.NodeID]*netemu.Endpoint
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	r := &rig{
		t:      t,
		inbox:  make(map[netemu.NodeID][]any),
		fakeEP: make(map[netemu.NodeID]*netemu.Endpoint),
	}
	r.net = netemu.New(netemu.Config{})
	if cfg.NumDCs == 0 {
		cfg.NumDCs = 3
	}
	if cfg.NumPartitions == 0 {
		cfg.NumPartitions = 2
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.New(0)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &Metrics{}
	}
	if cfg.DefaultMode == 0 {
		cfg.DefaultMode = Optimistic
	}
	cfg.ID = netemu.NodeID{DC: 0, Partition: 0}
	cfg.Endpoint = r.net.Register(cfg.ID, nil)
	// Fake peers: same partition in other DCs, other partitions in DC 0.
	for dc := 1; dc < cfg.NumDCs; dc++ {
		id := netemu.NodeID{DC: dc, Partition: 0}
		r.registerFake(id)
	}
	for p := 1; p < cfg.NumPartitions; p++ {
		id := netemu.NodeID{DC: 0, Partition: p}
		r.registerFake(id)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.srv = srv
	r.mx = cfg.Metrics
	t.Cleanup(func() {
		srv.Close()
		r.net.Close()
	})
	return r
}

func (r *rig) registerFake(id netemu.NodeID) {
	ep := r.net.Register(id, func(_ netemu.NodeID, m any) {
		r.mu.Lock()
		r.inbox[id] = append(r.inbox[id], m)
		r.mu.Unlock()
	})
	r.fakeEP[id] = ep
}

func (r *rig) received(id netemu.NodeID) []any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]any, len(r.inbox[id]))
	copy(out, r.inbox[id])
	return out
}

// inject sends a message from a fake peer to the server.
func (r *rig) inject(from netemu.NodeID, m any) {
	r.fakeEP[from].Send(netemu.NodeID{DC: 0, Partition: 0}, m)
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(200 * time.Microsecond)
	}
	return false
}

func TestConfigValidation(t *testing.T) {
	net := netemu.New(netemu.Config{})
	defer net.Close()
	base := Config{
		ID: netemu.NodeID{DC: 0, Partition: 0}, NumDCs: 3, NumPartitions: 1,
		Clock: clock.New(0), Endpoint: net.Register(netemu.NodeID{DC: 0, Partition: 0}, nil),
		DefaultMode: Optimistic, Metrics: &Metrics{},
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero DCs", func(c *Config) { c.NumDCs = 0 }},
		{"id outside layout", func(c *Config) { c.ID.DC = 7 }},
		{"no clock", func(c *Config) { c.Clock = nil }},
		{"no metrics", func(c *Config) { c.Metrics = nil }},
		{"bad mode", func(c *Config) { c.DefaultMode = 0 }},
		{"pessimistic without stabilization", func(c *Config) { c.DefaultMode = Pessimistic }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := NewServer(cfg); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestPutAssignsIncreasingTimestamps(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour})
	var prev vclock.Timestamp
	for i := 0; i < 50; i++ {
		ut, err := r.srv.Put("k0", []byte("v"), vclock.New(3), Optimistic)
		if err != nil {
			t.Fatal(err)
		}
		if ut <= prev {
			t.Fatalf("put %d: timestamp %d not increasing past %d", i, ut, prev)
		}
		prev = ut
	}
	if got := r.srv.VV().Get(0); got != prev {
		t.Fatalf("VV[0] = %d, want %d", got, prev)
	}
}

func TestPutTimestampExceedsDependencies(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour})
	future := r.srv.clk.Now() + vclock.Timestamp(2*time.Millisecond)
	dv := vclock.VC{0, future, 0}
	ut, err := r.srv.Put("k0", []byte("v"), dv, Optimistic)
	if err != nil {
		t.Fatal(err)
	}
	if ut <= future {
		t.Fatalf("ut = %d must exceed max dependency %d", ut, future)
	}
}

func TestPutReplicatesToSiblingsInOrder(t *testing.T) {
	// BatchSize 1 disables batching: every PUT flushes inline as a
	// single-version sequenced batch (the original one-message-per-update
	// protocol, now with the link's gap-free sequence numbers).
	r := newRig(t, Config{HeartbeatInterval: time.Hour, ReplicationBatchSize: 1})
	const puts = 20
	for i := 0; i < puts; i++ {
		if _, err := r.srv.Put("k0", []byte{byte(i)}, vclock.New(3), Optimistic); err != nil {
			t.Fatal(err)
		}
	}
	for dc := 1; dc < 3; dc++ {
		id := netemu.NodeID{DC: dc, Partition: 0}
		if !waitUntil(t, time.Second, func() bool { return len(r.received(id)) >= puts }) {
			t.Fatalf("dc%d received %d replication messages, want %d", dc, len(r.received(id)), puts)
		}
		var prev vclock.Timestamp
		var prevSeq uint64
		for i, m := range r.received(id) {
			rep, ok := m.(msg.ReplicateBatch)
			if !ok {
				t.Fatalf("message %d is %T, want ReplicateBatch", i, m)
			}
			if len(rep.Versions) != 1 {
				t.Fatalf("message %d carries %d versions, want 1 (unbatched)", i, len(rep.Versions))
			}
			if rep.Versions[0].UpdateTime <= prev {
				t.Fatal("replication not in timestamp order")
			}
			prev = rep.Versions[0].UpdateTime
			if rep.Epoch == 0 || rep.Seq != prevSeq+1 {
				t.Fatalf("message %d carries (epoch %d, seq %d) after seq %d; want a gap-free sequenced stream",
					i, rep.Epoch, rep.Seq, prevSeq)
			}
			prevSeq = rep.Seq
		}
	}
}

func TestGetReturnsFreshestAndMetadata(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour})
	if _, err := r.srv.Put("k0", []byte("old"), vclock.New(3), Optimistic); err != nil {
		t.Fatal(err)
	}
	dv := vclock.VC{0, 7, 0}
	ut, err := r.srv.Put("k0", []byte("new"), dv, Optimistic)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := r.srv.Get("k0", vclock.New(3), Optimistic)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Exists || string(reply.Value) != "new" {
		t.Fatalf("reply = %+v", reply)
	}
	if reply.UpdateTime != ut || reply.SrcReplica != 0 {
		t.Fatalf("metadata = %+v, want ut=%d sr=0", reply, ut)
	}
	if !reply.Deps.Equal(dv) {
		t.Fatalf("deps = %v, want %v", reply.Deps, dv)
	}
}

func TestGetMissingKey(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour})
	reply, err := r.srv.Get("absent", vclock.New(3), Optimistic)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Exists {
		t.Fatal("missing key must not exist")
	}
}

func TestReplicateAdvancesVVAndServesFreshVersion(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour})
	v := &item.Version{Key: "k0", Value: []byte("remote"), SrcReplica: 1,
		UpdateTime: 12345, Deps: vclock.VC{0, 0, 0}}
	r.inject(netemu.NodeID{DC: 1, Partition: 0}, msg.Replicate{V: v})
	if !waitUntil(t, time.Second, func() bool { return r.srv.VV().Get(1) == 12345 }) {
		t.Fatalf("VV[1] = %d, want 12345", r.srv.VV().Get(1))
	}
	reply, err := r.srv.Get("k0", vclock.New(3), Optimistic)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Value) != "remote" {
		t.Fatalf("value = %q", reply.Value)
	}
}

func TestHeartbeatAdvancesVV(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour})
	r.inject(netemu.NodeID{DC: 2, Partition: 0}, msg.Heartbeat{Time: 999})
	if !waitUntil(t, time.Second, func() bool { return r.srv.VV().Get(2) == 999 }) {
		t.Fatalf("VV[2] = %d", r.srv.VV().Get(2))
	}
}

func TestGetBlocksUntilDependencyArrives(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour})
	need := vclock.Timestamp(50000)
	rdv := vclock.VC{0, need, 0}

	type result struct {
		reply msg.ItemReply
		err   error
	}
	done := make(chan result, 1)
	go func() {
		reply, err := r.srv.Get("k0", rdv, Optimistic)
		done <- result{reply, err}
	}()

	select {
	case res := <-done:
		t.Fatalf("GET returned early: %+v", res)
	case <-time.After(30 * time.Millisecond):
	}

	// The missing dependency arrives.
	v := &item.Version{Key: "k0", Value: []byte("dep"), SrcReplica: 1,
		UpdateTime: need, Deps: vclock.VC{0, 0, 0}}
	r.inject(netemu.NodeID{DC: 1, Partition: 0}, msg.Replicate{V: v})

	select {
	case res := <-done:
		if res.err != nil {
			t.Fatal(res.err)
		}
		if string(res.reply.Value) != "dep" {
			t.Fatalf("reply = %+v", res.reply)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("GET still blocked after dependency arrived")
	}
	if bs := r.mx.GetBlocking.Snapshot(); bs.Blocked != 1 || bs.MeanBlockTime() < 20*time.Millisecond {
		t.Fatalf("blocking stats = %+v", bs)
	}
}

func TestGetUnblocksOnHeartbeat(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour})
	rdv := vclock.VC{0, 7777, 0}
	done := make(chan error, 1)
	go func() {
		_, err := r.srv.Get("k0", rdv, Optimistic)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	r.inject(netemu.NodeID{DC: 1, Partition: 0}, msg.Heartbeat{Time: 8000})
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("heartbeat did not unblock the GET")
	}
}

func TestGetIgnoresLocalEntryOfRDV(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour})
	// A dependency on the local DC is trivially satisfied (Algorithm 2 line
	// 2 skips entry m) even when it exceeds VV[m].
	rdv := vclock.VC{1 << 60, 0, 0}
	done := make(chan error, 1)
	go func() {
		_, err := r.srv.Get("k0", rdv, Optimistic)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("GET must not block on the local entry")
	}
}

func TestPutDepWaitBlocks(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour, PutDepWait: true})
	dv := vclock.VC{0, 4242, 0}
	done := make(chan error, 1)
	go func() {
		_, err := r.srv.Put("k0", []byte("v"), dv, Optimistic)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("PUT returned before dependencies arrived: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	r.inject(netemu.NodeID{DC: 1, Partition: 0}, msg.Heartbeat{Time: 5000})
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("PUT still blocked")
	}
	if bs := r.mx.PutBlocking.Snapshot(); bs.Blocked != 1 {
		t.Fatalf("put blocking stats = %+v", bs)
	}
}

func TestBlockTimeoutClosesSession(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour, BlockTimeout: 25 * time.Millisecond})
	rdv := vclock.VC{0, 1 << 50, 0}
	start := time.Now()
	_, err := r.srv.Get("k0", rdv, Optimistic)
	if err != ErrSessionClosed {
		t.Fatalf("err = %v, want ErrSessionClosed", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("returned after %v, before the block timeout", elapsed)
	}
	if !r.srv.Suspected() {
		t.Fatal("server must suspect a partition after a block timeout")
	}
}

func TestSuspectedClearsAfterWindow(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour, BlockTimeout: 5 * time.Millisecond})
	if r.srv.Suspected() {
		t.Fatal("fresh server must not be suspected")
	}
	_, err := r.srv.Get("k0", vclock.VC{0, 1 << 50, 0}, Optimistic)
	if err != ErrSessionClosed {
		t.Fatal(err)
	}
	if !waitUntil(t, time.Second, func() bool { return !r.srv.Suspected() }) {
		t.Fatal("suspicion must clear after the window")
	}
}

func TestPessimisticGetHidesUnstableVersion(t *testing.T) {
	r := newRig(t, Config{
		HeartbeatInterval:     time.Hour,
		DefaultMode:           Pessimistic,
		StabilizationInterval: time.Millisecond,
		NumPartitions:         2,
	})
	// Stable seeded version.
	r.srv.Store().Insert(&item.Version{Key: "k0", Value: []byte("stable"),
		SrcReplica: 1, UpdateTime: 1, Deps: vclock.VC{0, 0, 0}})
	// Fresh remote version depending on an item of partition 1 that this
	// DC's partition 1 has not acknowledged: GSS[1] stays at 0 because the
	// fake peer partition never exchanges a VV.
	fresh := &item.Version{Key: "k0", Value: []byte("fresh"), SrcReplica: 1,
		UpdateTime: 100000, Deps: vclock.VC{0, 90000, 0}}
	r.inject(netemu.NodeID{DC: 1, Partition: 0}, msg.Replicate{V: fresh})
	if !waitUntil(t, time.Second, func() bool { return r.srv.VV().Get(1) == 100000 }) {
		t.Fatal("replication not applied")
	}

	// Optimistic read sees the fresh version immediately.
	opt, err := r.srv.Get("k0", vclock.New(3), Optimistic)
	if err != nil {
		t.Fatal(err)
	}
	if string(opt.Value) != "fresh" {
		t.Fatalf("optimistic read = %q, want the freshest version", opt.Value)
	}

	// Pessimistic read hides it (deps not covered by GSS) and reports the
	// staleness.
	pess, err := r.srv.Get("k0", vclock.New(3), Pessimistic)
	if err != nil {
		t.Fatal(err)
	}
	if string(pess.Value) != "stable" {
		t.Fatalf("pessimistic read = %q, want the stable version", pess.Value)
	}
	if pess.Fresher != 1 || pess.Invisible != 1 {
		t.Fatalf("staleness = %+v", pess)
	}

	// Once partition 1 reports a VV covering the dependency, the GSS
	// advances and the fresh version becomes visible.
	r.inject(netemu.NodeID{DC: 0, Partition: 1},
		msg.VVExchange{Partition: 1, VV: vclock.VC{1 << 40, 1 << 40, 1 << 40}})
	if !waitUntil(t, time.Second, func() bool {
		reply, errGet := r.srv.Get("k0", vclock.New(3), Pessimistic)
		return errGet == nil && string(reply.Value) == "fresh"
	}) {
		t.Fatal("stable version must become visible after stabilization")
	}
}

func TestPessimisticLocalWritesAlwaysVisible(t *testing.T) {
	r := newRig(t, Config{
		HeartbeatInterval:     time.Hour,
		DefaultMode:           Pessimistic,
		StabilizationInterval: time.Millisecond,
		NumPartitions:         2,
	})
	// A pessimistic client writes locally; its session dependencies include
	// its own previous write, which is beyond the GSS. Cure makes local
	// items visible regardless.
	ut, err := r.srv.Put("k0", []byte("mine"), vclock.New(3), Pessimistic)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := r.srv.Get("k0", vclock.New(3), Pessimistic)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Exists || reply.UpdateTime != ut {
		t.Fatalf("pessimistic client cannot read its own write: %+v", reply)
	}
}

func TestHAPessimisticHidesOptimisticLocalWrite(t *testing.T) {
	r := newRig(t, Config{
		HeartbeatInterval:     time.Hour,
		DefaultMode:           Optimistic,
		StabilizationInterval: time.Millisecond,
		NumPartitions:         2,
		BlockTimeout:          time.Second,
	})
	// An optimistic session writes a local item depending on a remote item
	// this DC has not stabilized. Pessimistic sessions must not see it
	// (§IV-C).
	dv := vclock.VC{0, 70000, 0}
	r.inject(netemu.NodeID{DC: 1, Partition: 0}, msg.Heartbeat{Time: 80000})
	if !waitUntil(t, time.Second, func() bool { return r.srv.VV().Get(1) >= 80000 }) {
		t.Fatal("heartbeat not applied")
	}
	if _, err := r.srv.Put("k0", []byte("optimistic"), dv, Optimistic); err != nil {
		t.Fatal(err)
	}
	reply, err := r.srv.Get("k0", vclock.New(3), Pessimistic)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Exists {
		t.Fatalf("unstable optimistic local write leaked to a pessimistic read: %+v", reply)
	}
}

func TestOperationsAfterCloseFail(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour})
	r.srv.Close()
	if _, err := r.srv.Put("k0", []byte("v"), vclock.New(3), Optimistic); err != ErrStopped {
		t.Fatalf("Put err = %v, want ErrStopped", err)
	}
	if _, err := r.srv.Get("k0", vclock.VC{0, 1 << 50, 0}, Optimistic); err != ErrStopped {
		t.Fatalf("Get err = %v, want ErrStopped", err)
	}
}

func TestCloseReleasesBlockedRequests(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour})
	done := make(chan error, 1)
	go func() {
		_, err := r.srv.Get("k0", vclock.VC{0, 1 << 50, 0}, Optimistic)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	r.srv.Close()
	select {
	case err := <-done:
		if err != ErrStopped {
			t.Fatalf("err = %v, want ErrStopped", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked request not released by Close")
	}
}

func TestHeartbeatLoopBroadcastsWhenIdle(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Millisecond})
	id := netemu.NodeID{DC: 1, Partition: 0}
	if !waitUntil(t, time.Second, func() bool {
		for _, m := range r.received(id) {
			if _, ok := m.(msg.Heartbeat); ok {
				return true
			}
		}
		return false
	}) {
		t.Fatal("idle server never sent a heartbeat")
	}
}

func TestStabilizationBroadcastsVV(t *testing.T) {
	r := newRig(t, Config{
		HeartbeatInterval:     time.Hour,
		StabilizationInterval: time.Millisecond,
		NumPartitions:         2,
	})
	id := netemu.NodeID{DC: 0, Partition: 1}
	if !waitUntil(t, time.Second, func() bool {
		for _, m := range r.received(id) {
			if _, ok := m.(msg.VVExchange); ok {
				return true
			}
		}
		return false
	}) {
		t.Fatal("no VVExchange sent to the same-DC peer")
	}
}

func TestGCPrunesOldVersions(t *testing.T) {
	r := newRig(t, Config{
		HeartbeatInterval: time.Millisecond,
		GCInterval:        2 * time.Millisecond,
		NumPartitions:     2,
	})
	for i := 0; i < 5; i++ {
		if _, err := r.srv.Put("k0", []byte{byte(i)}, vclock.New(3), Optimistic); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.srv.Store().Stats().Versions; got != 5 {
		t.Fatalf("Versions = %d before GC", got)
	}
	// GC needs contributions from partition 1 (the fake peer).
	r.inject(netemu.NodeID{DC: 0, Partition: 1},
		msg.GCExchange{Partition: 1, TV: vclock.VC{1 << 40, 1 << 40, 1 << 40}})
	if !waitUntil(t, 2*time.Second, func() bool { return r.srv.Store().Stats().Versions == 1 }) {
		t.Fatalf("Versions = %d after GC, want 1", r.srv.Store().Stats().Versions)
	}
	head := r.srv.Store().Head("k0")
	if head == nil || head.Value[0] != 4 {
		t.Fatal("GC must keep the freshest version")
	}
}

func TestROTxLocalSlice(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Millisecond, NumPartitions: 1})
	if _, err := r.srv.Put("a", []byte("va"), vclock.New(3), Optimistic); err != nil {
		t.Fatal(err)
	}
	if _, err := r.srv.Put("b", []byte("vb"), vclock.New(3), Optimistic); err != nil {
		t.Fatal(err)
	}
	items, err := r.srv.ROTx([]string{"a", "b"}, vclock.New(3), Optimistic, func(string) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("items = %v", items)
	}
	got := map[string]string{}
	for _, it := range items {
		got[it.Key] = string(it.Value)
	}
	if got["a"] != "va" || got["b"] != "vb" {
		t.Fatalf("tx read %v", got)
	}
}

func TestROTxEmptyKeys(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour})
	items, err := r.srv.ROTx(nil, vclock.New(3), Optimistic, func(string) int { return 0 })
	if err != nil || items != nil {
		t.Fatalf("items=%v err=%v", items, err)
	}
}

// TestROTxSnapshotIncludesUnstableReceived checks the OCC claim that the
// transactional snapshot is bounded by what the coordinator has *received*
// (VV), not what is stable: a version whose dependencies are covered by the
// snapshot is returned even though a stabilization protocol has not declared
// it stable.
func TestROTxSnapshotIncludesUnstableReceived(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Millisecond, NumPartitions: 1})
	fresh := &item.Version{Key: "a", Value: []byte("fresh"), SrcReplica: 1,
		UpdateTime: 60000, Deps: vclock.VC{0, 50000, 0}}
	r.inject(netemu.NodeID{DC: 1, Partition: 0}, msg.Replicate{V: fresh})
	if !waitUntil(t, time.Second, func() bool { return r.srv.VV().Get(1) >= 60000 }) {
		t.Fatal("replication not applied")
	}
	items, err := r.srv.ROTx([]string{"a"}, vclock.New(3), Optimistic, func(string) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || string(items[0].Value) != "fresh" {
		t.Fatalf("tx read %+v, want the received-but-unstable version", items)
	}
}

// TestROTxRespectsSnapshotBoundary: a version whose dependency vector is NOT
// covered by the snapshot (deps beyond TV) is excluded, and the older
// version is returned instead (Algorithm 2, line 43).
func TestROTxRespectsSnapshotBoundary(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour, NumPartitions: 1})
	r.srv.Store().Insert(&item.Version{Key: "a", Value: []byte("old"),
		SrcReplica: 1, UpdateTime: 10, Deps: vclock.VC{0, 0, 0}})
	// Version that depends on a DC2 item this server has not received:
	// deps[2] = 999 > VV[2] = 0, so TV cannot cover it.
	r.srv.Store().Insert(&item.Version{Key: "a", Value: []byte("beyond"),
		SrcReplica: 1, UpdateTime: 20, Deps: vclock.VC{0, 10, 999}})
	// Make VV[1] cover ut=20 so the slice wait passes.
	r.inject(netemu.NodeID{DC: 1, Partition: 0}, msg.Heartbeat{Time: 30})
	if !waitUntil(t, time.Second, func() bool { return r.srv.VV().Get(1) >= 30 }) {
		t.Fatal("heartbeat not applied")
	}
	items, err := r.srv.ROTx([]string{"a"}, vclock.New(3), Optimistic, func(string) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || string(items[0].Value) != "old" {
		t.Fatalf("tx read %+v, want the version inside the snapshot", items)
	}
	if items[0].Fresher != 1 {
		t.Fatalf("staleness: fresher = %d, want 1", items[0].Fresher)
	}
}

func TestSliceReqFromPeerGetsResponse(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Millisecond, NumPartitions: 2})
	if _, err := r.srv.Put("a", []byte("va"), vclock.New(3), Optimistic); err != nil {
		t.Fatal(err)
	}
	peer := netemu.NodeID{DC: 0, Partition: 1}
	r.inject(peer, msg.SliceReq{
		TxID: 77, Coordinator: peer, Keys: []string{"a"}, TV: r.srv.VV(),
	})
	if !waitUntil(t, 2*time.Second, func() bool {
		for _, m := range r.received(peer) {
			if resp, ok := m.(msg.SliceResp); ok && resp.TxID == 77 {
				return len(resp.Items) == 1 && string(resp.Items[0].Value) == "va"
			}
		}
		return false
	}) {
		t.Fatal("no SliceResp delivered to the coordinator")
	}
}
