package core

import (
	"testing"

	"repro/internal/msg"
)

// TestApplySliceRespDeduplicatesPartitions pins the at-least-once guard: a
// redelivered slice reply (TCP reconnects duplicate messages) must not
// decrement the fan-in counter, or the transaction would complete with
// another partition's items missing.
func TestApplySliceRespDeduplicatesPartitions(t *testing.T) {
	r := newRig(t, Config{})
	s := r.srv

	p := &txPending{remaining: 2, seen: make([]bool, 2), done: make(chan struct{})}
	s.txMu.Lock()
	s.pendingTx[99] = p
	s.txMu.Unlock()

	reply := func(from int, key string) {
		s.applySliceResp(from, msg.SliceResp{TxID: 99, Items: []msg.ItemReply{{Key: key}}})
	}
	reply(0, "a")
	reply(0, "a") // duplicate delivery from partition 0
	select {
	case <-p.done:
		t.Fatal("duplicate reply completed the fan-in early")
	default:
	}
	if p.remaining != 1 || len(p.items) != 1 {
		t.Fatalf("after duplicate: remaining=%d items=%d, want 1 and 1", p.remaining, len(p.items))
	}

	reply(1, "b")
	select {
	case <-p.done:
	default:
		t.Fatal("fan-in did not complete after both partitions replied")
	}
	if len(p.items) != 2 {
		t.Fatalf("items=%d, want 2", len(p.items))
	}
	// Completion removed the entry, so a late duplicate is a no-op and Close
	// cannot double-close the channel.
	s.txMu.Lock()
	_, live := s.pendingTx[99]
	s.txMu.Unlock()
	if live {
		t.Fatal("completed transaction still pending")
	}
	reply(1, "late")
}
