package core

import (
	"testing"
	"time"

	"repro/internal/item"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/vclock"
)

// TestReplicationBatchFlushOnSize: once ReplicationBatchSize updates are
// buffered, a batch goes out immediately — no heartbeat tick needed.
func TestReplicationBatchFlushOnSize(t *testing.T) {
	r := newRig(t, Config{
		HeartbeatInterval:    time.Hour, // timed flush effectively disabled
		ReplicationBatchSize: 4,
	})
	for i := 0; i < 8; i++ {
		if _, err := r.srv.Put("k0", []byte{byte(i)}, vclock.New(3), Optimistic); err != nil {
			t.Fatal(err)
		}
	}
	id := netemu.NodeID{DC: 1, Partition: 0}
	if !waitUntil(t, time.Second, func() bool {
		total := 0
		for _, m := range r.received(id) {
			if b, ok := m.(msg.ReplicateBatch); ok {
				total += len(b.Versions)
			}
		}
		return total == 8
	}) {
		t.Fatalf("sibling received %v, want 8 versions in batches", r.received(id))
	}
	// Versions inside each batch must be in update-timestamp order.
	var prev vclock.Timestamp
	for _, m := range r.received(id) {
		b, ok := m.(msg.ReplicateBatch)
		if !ok {
			t.Fatalf("unexpected message %T", m)
		}
		for _, v := range b.Versions {
			if v.UpdateTime <= prev {
				t.Fatal("batched replication not in timestamp order")
			}
			prev = v.UpdateTime
		}
		if b.HBTime < prev {
			t.Fatalf("HBTime %d below last version %d", b.HBTime, prev)
		}
	}
}

// TestReplicationBatchFlushOnHeartbeatTick: below the size threshold, the
// buffer drains on the heartbeat tick (Δ), bounding the added replication
// delay by one heartbeat period.
func TestReplicationBatchFlushOnHeartbeatTick(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Millisecond})
	for i := 0; i < 3; i++ {
		if _, err := r.srv.Put("k0", []byte{byte(i)}, vclock.New(3), Optimistic); err != nil {
			t.Fatal(err)
		}
	}
	id := netemu.NodeID{DC: 2, Partition: 0}
	if !waitUntil(t, time.Second, func() bool {
		total := 0
		for _, m := range r.received(id) {
			switch mm := m.(type) {
			case msg.ReplicateBatch:
				total += len(mm.Versions)
			case msg.Replicate:
				total++
			}
		}
		return total == 3
	}) {
		t.Fatal("buffered updates never flushed on the heartbeat tick")
	}
}

// TestReplicationFlushIntervalKnob: a flush cadence faster than the
// heartbeat drains the buffer without waiting for Δ.
func TestReplicationFlushIntervalKnob(t *testing.T) {
	r := newRig(t, Config{
		HeartbeatInterval:        time.Hour,
		ReplicationFlushInterval: time.Millisecond,
	})
	if _, err := r.srv.Put("k0", []byte("v"), vclock.New(3), Optimistic); err != nil {
		t.Fatal(err)
	}
	id := netemu.NodeID{DC: 1, Partition: 0}
	if !waitUntil(t, time.Second, func() bool { return len(r.received(id)) >= 1 }) {
		t.Fatal("dedicated flush loop never drained the buffer")
	}
}

// TestApplyReplicateBatchAdvancesVVAndServesVersions: the receive side
// installs every version of a batch and advances the sender's VV entry to
// the covering heartbeat timestamp.
func TestApplyReplicateBatchAdvancesVVAndServesVersions(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour})
	batch := msg.ReplicateBatch{
		Versions: []*item.Version{
			{Key: "a", Value: []byte("v1"), SrcReplica: 1, UpdateTime: 100, Deps: vclock.New(3)},
			{Key: "b", Value: []byte("v2"), SrcReplica: 1, UpdateTime: 200, Deps: vclock.New(3)},
			{Key: "a", Value: []byte("v3"), SrcReplica: 1, UpdateTime: 300, Deps: vclock.New(3)},
		},
		HBTime: 350, // covering heartbeat beyond the last version
	}
	r.inject(netemu.NodeID{DC: 1, Partition: 0}, batch)
	if !waitUntil(t, time.Second, func() bool { return r.srv.VV().Get(1) == 350 }) {
		t.Fatalf("VV[1] = %d, want the covering HBTime 350", r.srv.VV().Get(1))
	}
	got, err := r.srv.Get("a", vclock.New(3), Optimistic)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Value) != "v3" {
		t.Fatalf("read %q, want the freshest batched version", got.Value)
	}
	if r.srv.Store().Stats().Versions != 3 {
		t.Fatalf("stored %d versions, want 3", r.srv.Store().Stats().Versions)
	}
}

// TestBatchUnblocksWaitingGet: a GET blocked on a missing dependency is
// released when the dependency arrives inside a batch.
func TestBatchUnblocksWaitingGet(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour})
	rdv := vclock.VC{0, 5000, 0}
	done := make(chan error, 1)
	go func() {
		_, err := r.srv.Get("k0", rdv, Optimistic)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("GET returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	r.inject(netemu.NodeID{DC: 1, Partition: 0}, msg.ReplicateBatch{
		Versions: []*item.Version{
			{Key: "k0", Value: []byte("dep"), SrcReplica: 1, UpdateTime: 5000, Deps: vclock.New(3)},
		},
		HBTime: 5000,
	})
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("batch did not release the blocked GET")
	}
}

// TestCloseFlushesBufferedReplication: updates still sitting in the batch
// buffer are handed to the transport on Close, so siblings do not lose the
// tail of the update stream.
func TestCloseFlushesBufferedReplication(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour})
	if _, err := r.srv.Put("k0", []byte("tail"), vclock.New(3), Optimistic); err != nil {
		t.Fatal(err)
	}
	id := netemu.NodeID{DC: 1, Partition: 0}
	if len(r.received(id)) != 0 {
		t.Skip("flush raced ahead; nothing buffered to observe")
	}
	r.srv.Close()
	if !waitUntil(t, time.Second, func() bool { return len(r.received(id)) >= 1 }) {
		t.Fatal("Close dropped the buffered update")
	}
}
