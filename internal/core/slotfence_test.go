package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/item"
	"repro/internal/keyspace"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// TestInstallSlotMapIsWriteFence pins the reshard drain's soundness
// invariant: once InstallSlotMap returns, no write admitted under the
// replaced table can still commit, so a version-vector mark captured after
// the install covers every version the old layout will ever produce. The
// check must hold under concurrent writers whose lock-free ownsKey fast
// path raced the install — the authoritative recheck in PrepareLocal runs
// under the outbound lock the install serializes on. A regression here
// shows up as a version above the mark: exactly the write that would
// escape a reshard's drain and copy, stranding it on a donor forever.
func TestInstallSlotMapIsWriteFence(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Hour, SlotMap: keyspace.DefaultMap(2)})

	// Keys this server (partition 0 of 2) owns under the default layout.
	var keys []string
	for i := 0; len(keys) < 4; i++ {
		k := fmt.Sprintf("fence-%d", i)
		if keyspace.DefaultMap(2).Owner[keyspace.SlotOf(k)] == 0 {
			keys = append(keys, k)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// ErrWrongSlotEpoch while fenced is the expected refusal;
				// anything may race, only commits above the mark are bugs.
				_, _ = r.srv.Put(keys[(w+i)%len(keys)], []byte("v"), nil, Optimistic)
			}
		}(w)
	}

	base := keyspace.DefaultMap(2)
	for round := 0; round < 50; round++ {
		// Fence: move every slot to partition 1 under the next epoch.
		fence := base.Clone()
		fence.Epoch = uint64(2*round + 1)
		for s := 0; s < keyspace.NumSlots; s++ {
			fence.Owner[s] = 1
			fence.Stamp[s] = fence.Epoch
		}
		r.srv.InstallSlotMap(fence)
		mark := r.srv.VV().Get(0)

		var maxTS vclock.Timestamp
		r.srv.Store().(*storage.Mem).ForEachVersion(func(v *item.Version) {
			if v.UpdateTime > maxTS {
				maxTS = v.UpdateTime
			}
		})
		if maxTS > mark {
			t.Fatalf("round %d: version committed at %d after the fence installed (mark %d) — it would escape a reshard's drain",
				round, maxTS, mark)
		}

		// Unfence: hand the slots back so the writers make progress again.
		unfence := fence.Clone()
		unfence.Epoch = uint64(2*round + 2)
		for s := 0; s < keyspace.NumSlots; s++ {
			unfence.Owner[s] = 0
			unfence.Stamp[s] = unfence.Epoch
		}
		r.srv.InstallSlotMap(unfence)
	}
	close(stop)
	wg.Wait()

	// The authoritative recheck, deterministically: PrepareLocal — the
	// under-lock half a raced writer reaches after its stale fast-path check
	// passed — must itself refuse a fenced key, not just Put's front door.
	final := base.Clone()
	final.Epoch = 1000
	for s := 0; s < keyspace.NumSlots; s++ {
		final.Owner[s] = 1
		final.Stamp[s] = final.Epoch
	}
	r.srv.InstallSlotMap(final)
	mark := r.srv.VV().Get(0)
	v := &item.Version{Key: keys[0], Value: []byte("v"), SrcReplica: 0}
	if _, err := (*replBackend)(r.srv).PrepareLocal(v); err != ErrWrongSlotEpoch {
		t.Fatalf("PrepareLocal on a fenced key: err = %v, want ErrWrongSlotEpoch", err)
	}
	if got := r.srv.VV().Get(0); got != mark {
		t.Fatalf("refused write moved VV[0] %d -> %d", mark, got)
	}
}
