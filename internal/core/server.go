// Package core implements the partition server of POCC (Algorithm 2) and of
// the pessimistic baseline Cure* behind a single engine, mirroring the
// paper's fairness setup: the two protocols exchange identical metadata and
// differ only in that the pessimistic mode runs a stabilization protocol and
// searches version chains for stable versions, while the optimistic mode
// returns the freshest received version and blocks (rarely) on missing
// dependencies. HA-POCC is the optimistic engine with infrequent
// stabilization plus a block-timeout that closes sessions so clients can fall
// back to the pessimistic protocol (§III-B, §IV-C).
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/item"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// Transport carries protocol messages between partition servers. The
// emulated network (netemu.Endpoint) and the TCP transport (tcpnet.Node)
// both implement it; the protocol only requires lossless FIFO delivery per
// (src, dst) pair.
type Transport interface {
	// ID returns the local node's coordinate.
	ID() netemu.NodeID
	// Send enqueues m for delivery to dst without blocking.
	Send(dst netemu.NodeID, m any)
	// SetHandler installs the message handler; it is invoked sequentially
	// per source link.
	SetHandler(h netemu.Handler)
}

// Mode selects the visibility protocol a request is served under.
type Mode int

// Visibility modes.
const (
	// Optimistic is POCC: reads return the freshest received version; a
	// request whose dependencies are missing blocks until they arrive.
	Optimistic Mode = iota + 1
	// Pessimistic is Cure*: reads return the freshest *stable* version
	// (dependency vector covered by the GSS); local items written by
	// pessimistic sessions are always visible.
	Pessimistic
)

// Sentinel errors returned by server operations.
var (
	// ErrStopped is returned for operations on a closed server.
	ErrStopped = errors.New("core: server stopped")
	// ErrSessionClosed is returned when a blocked optimistic request exceeds
	// the block timeout: the server suspects a network partition and closes
	// the session so the client can re-initialize it pessimistically.
	ErrSessionClosed = errors.New("core: session closed (suspected network partition)")
)

// Metrics aggregates the per-server statistics the evaluation reports.
type Metrics struct {
	GetBlocking metrics.Blocking
	PutBlocking metrics.Blocking
	TxBlocking  metrics.Blocking // transactional slice reads (Fig. 3c)
	GetStale    metrics.Staleness
	TxStale     metrics.Staleness
}

// Config parameterizes a Server.
type Config struct {
	// ID is the server's (data center, partition) coordinate.
	ID netemu.NodeID
	// NumDCs (M) and NumPartitions (N) describe the layout.
	NumDCs        int
	NumPartitions int
	// Clock is the node's physical clock.
	Clock *clock.Clock
	// Endpoint attaches the server to the network (emulated or TCP). The
	// server installs its own handler.
	Endpoint Transport
	// DefaultMode is the visibility protocol of the deployment: Optimistic
	// for POCC and HA-POCC, Pessimistic for Cure*. Individual requests carry
	// their session's mode, enabling HA-POCC's mixed operation.
	DefaultMode Mode
	// HeartbeatInterval is Δ of Algorithm 2 (1 ms in the evaluation).
	HeartbeatInterval time.Duration
	// StabilizationInterval is the GSS exchange period: 5 ms for Cure*,
	// infrequent (e.g. 500 ms) for HA-POCC, 0 to disable (pure POCC).
	StabilizationInterval time.Duration
	// GCInterval is the garbage-collection exchange period; 0 disables GC.
	GCInterval time.Duration
	// PutDepWait enables the optional wait of Algorithm 2 line 6 (enabled in
	// the paper's evaluation to emulate merge-based conflict handling).
	PutDepWait bool
	// BlockTimeout > 0 turns on HA-POCC's partition suspicion: optimistic
	// requests blocked longer than this return ErrSessionClosed. 0 waits
	// forever (the paper's POCC, evaluated without partitions).
	BlockTimeout time.Duration
	// Metrics receives the server's statistics; required.
	Metrics *Metrics
}

func (c *Config) validate() error {
	if c.NumDCs < 1 || c.NumPartitions < 1 {
		return fmt.Errorf("core: invalid layout %dx%d", c.NumDCs, c.NumPartitions)
	}
	if c.ID.DC < 0 || c.ID.DC >= c.NumDCs || c.ID.Partition < 0 || c.ID.Partition >= c.NumPartitions {
		return fmt.Errorf("core: id %v outside layout %dx%d", c.ID, c.NumDCs, c.NumPartitions)
	}
	if c.Clock == nil || c.Endpoint == nil || c.Metrics == nil {
		return errors.New("core: Clock, Endpoint and Metrics are required")
	}
	if c.DefaultMode != Optimistic && c.DefaultMode != Pessimistic {
		return errors.New("core: DefaultMode must be Optimistic or Pessimistic")
	}
	if c.DefaultMode == Pessimistic && c.StabilizationInterval <= 0 {
		return errors.New("core: pessimistic mode requires a stabilization interval")
	}
	return nil
}

// Server is one partition replica p_n^m.
type Server struct {
	cfg   Config
	m     int // data center id
	n     int // partition id
	clk   *clock.Clock
	ep    Transport
	store *storage.Store
	mx    *Metrics

	mu         sync.Mutex
	vv         vclock.VC             // version vector VV_n^m
	gss        vclock.VC             // globally stable snapshot (pessimistic/HA)
	peerVV     []vclock.VC           // last VV heard from each same-DC partition
	gcContrib  []vclock.VC           // last GC contribution per same-DC partition
	waiters    []*waiter             // requests blocked on VV advances
	gssWaiters []*waiter             // requests blocked on GSS advances
	activeTx   map[uint64]vclock.VC  // snapshot vectors of in-flight RO-TXs
	pendingTx  map[uint64]*txPending // coordinator fan-in state

	txSeq       atomic.Uint64
	suspectedAt atomic.Int64 // unix nanos of the last block timeout; 0 = never

	stop chan struct{}
	wg   sync.WaitGroup
}

// txPending tracks a coordinator's outstanding slice requests.
type txPending struct {
	remaining int
	items     []msg.ItemReply
	err       string
	done      chan struct{}
}

// waiter represents one blocked request: it is released when the watched
// vector covers need on every entry except skip (-1 to check all entries).
type waiter struct {
	need vclock.VC
	skip int
	done chan struct{}
}

func (w *waiter) satisfiedBy(v vclock.VC) bool {
	if w.skip < 0 {
		return w.need.LessEq(v)
	}
	return w.need.LessEqExcept(v, w.skip)
}

// NewServer builds and starts a partition server: its network handler is
// installed and its heartbeat/stabilization/GC loops are running when
// NewServer returns.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		m:         cfg.ID.DC,
		n:         cfg.ID.Partition,
		clk:       cfg.Clock,
		ep:        cfg.Endpoint,
		store:     storage.New(),
		mx:        cfg.Metrics,
		vv:        vclock.New(cfg.NumDCs),
		gss:       vclock.New(cfg.NumDCs),
		peerVV:    make([]vclock.VC, cfg.NumPartitions),
		gcContrib: make([]vclock.VC, cfg.NumPartitions),
		activeTx:  make(map[uint64]vclock.VC),
		pendingTx: make(map[uint64]*txPending),
		stop:      make(chan struct{}),
	}
	for i := range s.peerVV {
		s.peerVV[i] = vclock.New(cfg.NumDCs)
		s.gcContrib[i] = nil // unknown until first exchange
	}
	s.ep.SetHandler(s.handle)

	if cfg.HeartbeatInterval > 0 && cfg.NumDCs > 1 {
		s.wg.Add(1)
		go s.heartbeatLoop()
	}
	if cfg.StabilizationInterval > 0 {
		s.wg.Add(1)
		go s.stabilizationLoop()
	}
	if cfg.GCInterval > 0 {
		s.wg.Add(1)
		go s.gcLoop()
	}
	return s, nil
}

// Close stops the background loops and releases every blocked request with
// ErrStopped. It does not close the shared network.
func (s *Server) Close() {
	s.mu.Lock()
	select {
	case <-s.stop:
		s.mu.Unlock()
		return
	default:
	}
	close(s.stop)
	s.waiters = nil
	s.gssWaiters = nil
	for _, p := range s.pendingTx {
		if p.err == "" {
			p.err = ErrStopped.Error()
		}
		close(p.done)
	}
	s.pendingTx = make(map[uint64]*txPending)
	s.mu.Unlock()
	s.wg.Wait()
}

// ID returns the server's coordinate.
func (s *Server) ID() netemu.NodeID { return s.cfg.ID }

// Store exposes the underlying multiversion store for tests and seeding.
func (s *Server) Store() *storage.Store { return s.store }

// VV returns a copy of the current version vector.
func (s *Server) VV() vclock.VC {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vv.Clone()
}

// GSS returns a copy of the current globally stable snapshot.
func (s *Server) GSS() vclock.VC {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gss.Clone()
}

// Suspected reports whether the server recently suspected a network
// partition (a blocked request hit the block timeout). HA-POCC clients use
// it to decide when to promote sessions back to the optimistic protocol.
func (s *Server) Suspected() bool {
	at := s.suspectedAt.Load()
	if at == 0 {
		return false
	}
	window := 4 * s.cfg.BlockTimeout
	if window <= 0 {
		window = time.Second
	}
	return time.Since(time.Unix(0, at)) < window
}

// ---------------------------------------------------------------------------
// Client-facing operations
// ---------------------------------------------------------------------------

// Get serves a GET(k) with the client's read dependency vector (Algorithm 2,
// lines 1-4). Under Optimistic it blocks until VV covers rdv on every remote
// entry, then returns the freshest version. Under Pessimistic it waits until
// the GSS covers rdv, then returns the freshest stable version.
func (s *Server) Get(key string, rdv vclock.VC, mode Mode) (msg.ItemReply, error) {
	var reply msg.ItemReply
	var res storage.ReadResult
	blocked, err := func() (time.Duration, error) {
		if mode == Pessimistic {
			blocked, err := s.waitGSS(rdv, s.m)
			if err != nil {
				return blocked, err
			}
			gss := s.GSS()
			res = s.store.ReadVisible(key, s.pessimisticVisible(gss))
			return blocked, nil
		}
		blocked, err := s.waitVV(rdv, s.m)
		if err != nil {
			return blocked, err
		}
		res = s.store.ReadVisible(key, nil)
		return blocked, nil
	}()
	s.mx.GetBlocking.Record(blocked)
	if err != nil {
		return reply, err
	}
	s.mx.GetStale.Record(res.Fresher, res.Invisible)
	return msg.FromVersion(key, res.V, res.Fresher, res.Invisible), nil
}

// Put serves a PUT(k, v) with the client's dependency vector (Algorithm 2,
// lines 5-15): optionally wait until the server's state covers the client's
// dependencies, wait until the local clock exceeds every dependency, assign
// the update timestamp, store the version, and replicate it asynchronously
// in timestamp order.
func (s *Server) Put(key string, value []byte, dv vclock.VC, mode Mode) (vclock.Timestamp, error) {
	var blocked time.Duration
	if s.cfg.PutDepWait {
		var err error
		blocked, err = s.waitVV(dv, s.m)
		if err != nil {
			s.mx.PutBlocking.Record(blocked)
			return 0, err
		}
	}
	s.mx.PutBlocking.Record(blocked)

	// Ensure the new version's timestamp exceeds all its dependencies.
	s.clk.SleepUntilAfter(dv.MaxEntry())

	val := make([]byte, len(value))
	copy(val, value)

	s.mu.Lock()
	if s.isStopped() {
		s.mu.Unlock()
		return 0, ErrStopped
	}
	ut := s.clk.Now()
	s.vv[s.m] = ut
	d := &item.Version{
		Key:        key,
		Value:      val,
		SrcReplica: s.m,
		UpdateTime: ut,
		Deps:       dv.Clone(),
		Optimistic: mode == Optimistic,
	}
	if d.Deps == nil {
		d.Deps = vclock.New(s.cfg.NumDCs)
	}
	s.store.Insert(d)
	// Replicate while holding the lock so per-link FIFO order matches
	// timestamp order (the correctness of VV advancement relies on it).
	for dc := 0; dc < s.cfg.NumDCs; dc++ {
		if dc != s.m {
			s.ep.Send(netemu.NodeID{DC: dc, Partition: s.n}, msg.Replicate{V: d})
		}
	}
	s.notifyVVWaitersLocked()
	s.mu.Unlock()
	return ut, nil
}

// ROTx coordinates a causally consistent read-only transaction (Algorithm 2,
// lines 29-38): compute the snapshot vector TV, fan SliceReqs out to the
// partitions holding the keys, and gather the replies.
func (s *Server) ROTx(keys []string, rdv vclock.VC, mode Mode, partitionOf func(string) int) ([]msg.ItemReply, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	byPartition := make(map[int][]string)
	for _, k := range keys {
		p := partitionOf(k)
		byPartition[p] = append(byPartition[p], k)
	}

	s.mu.Lock()
	if s.isStopped() {
		s.mu.Unlock()
		return nil, ErrStopped
	}
	// Snapshot boundary: the optimistic protocol snapshots what the
	// coordinator has *received* (VV); the pessimistic one snapshots what is
	// *stable* (GSS). Both include the client's history (rdv).
	var tv vclock.VC
	if mode == Pessimistic {
		tv = vclock.Max(s.gss, rdv)
	} else {
		tv = vclock.Max(s.vv, rdv)
	}
	txID := s.txSeq.Add(1)
	s.activeTx[txID] = tv
	pending := &txPending{remaining: len(byPartition), done: make(chan struct{})}
	s.pendingTx[txID] = pending
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		delete(s.activeTx, txID)
		delete(s.pendingTx, txID)
		s.mu.Unlock()
	}()

	for p, ks := range byPartition {
		req := msg.SliceReq{
			TxID:        txID,
			Coordinator: s.cfg.ID,
			Keys:        ks,
			TV:          tv,
			Pessimistic: mode == Pessimistic,
		}
		if p == s.n {
			// Serve the local slice on a separate goroutine: it may block on
			// the same conditions as a remote one.
			go s.serveSlice(s.cfg.ID, req)
		} else {
			s.ep.Send(netemu.NodeID{DC: s.m, Partition: p}, req)
		}
	}

	select {
	case <-pending.done:
	case <-s.stop:
		return nil, ErrStopped
	}
	s.mu.Lock()
	items, errStr := pending.items, pending.err
	s.mu.Unlock()
	if errStr != "" {
		if errStr == ErrSessionClosed.Error() {
			return nil, ErrSessionClosed
		}
		return nil, errors.New(errStr)
	}
	return items, nil
}

// ---------------------------------------------------------------------------
// Network message handling
// ---------------------------------------------------------------------------

func (s *Server) handle(src netemu.NodeID, m any) {
	switch mm := m.(type) {
	case msg.Replicate:
		s.applyReplicate(src, mm)
	case msg.Heartbeat:
		s.applyHeartbeat(src, mm)
	case msg.VVExchange:
		s.applyVVExchange(mm)
	case msg.GCExchange:
		s.applyGCExchange(mm)
	case msg.SliceReq:
		// Slice reads may block on VV/GSS; never stall the link goroutine.
		go s.serveSlice(src, mm)
	case msg.SliceResp:
		s.applySliceResp(mm)
	}
}

// applyReplicate installs a remote version and advances the version vector
// (Algorithm 2, lines 16-18). Messages arrive in timestamp order per link.
func (s *Server) applyReplicate(src netemu.NodeID, m msg.Replicate) {
	s.store.Insert(m.V)
	s.mu.Lock()
	if m.V.UpdateTime > s.vv[src.DC] {
		s.vv[src.DC] = m.V.UpdateTime
	}
	s.notifyVVWaitersLocked()
	s.mu.Unlock()
}

// applyHeartbeat advances the sender DC's version-vector entry (lines 27-28).
func (s *Server) applyHeartbeat(src netemu.NodeID, m msg.Heartbeat) {
	s.mu.Lock()
	if m.Time > s.vv[src.DC] {
		s.vv[src.DC] = m.Time
	}
	s.notifyVVWaitersLocked()
	s.mu.Unlock()
}

// applyVVExchange records a same-DC peer's version vector and recomputes the
// GSS as the aggregate minimum (§IV-C).
func (s *Server) applyVVExchange(m msg.VVExchange) {
	s.mu.Lock()
	s.peerVV[m.Partition] = m.VV
	s.recomputeGSSLocked()
	s.mu.Unlock()
}

// recomputeGSSLocked folds the freshest known VV of every partition in the
// DC (including this node's own) into the GSS.
func (s *Server) recomputeGSSLocked() {
	s.peerVV[s.n] = s.vv.Clone()
	gss := vclock.AggregateMin(s.peerVV)
	if s.gss.LessEq(gss) && !s.gss.Equal(gss) {
		s.gss = gss
		s.notifyGSSWaitersLocked()
	}
}

// applyGCExchange records a peer's GC contribution; when contributions from
// every partition are known, prune with their aggregate minimum.
func (s *Server) applyGCExchange(m msg.GCExchange) {
	s.mu.Lock()
	s.gcContrib[m.Partition] = m.TV
	gv := s.gcVectorLocked()
	s.mu.Unlock()
	if gv != nil {
		s.store.CollectGarbage(gv)
	}
}

// gcVectorLocked returns the DC-wide GC vector, or nil if some partition has
// not contributed yet.
func (s *Server) gcVectorLocked() vclock.VC {
	s.gcContrib[s.n] = s.localGCContributionLocked()
	vs := make([]vclock.VC, 0, len(s.gcContrib))
	for _, c := range s.gcContrib {
		if c == nil {
			return nil
		}
		vs = append(vs, c)
	}
	return vclock.AggregateMin(vs)
}

// localGCContributionLocked is the node's GC input: the minimum of its
// visibility vector (VV for optimistic deployments, GSS when stabilization
// runs) and the snapshot vectors of its active transactions. Taking the
// minimum (rather than the paper's "aggregate maximum" wording) is the
// conservative-safe choice: the GC vector never overtakes a snapshot an
// active transaction may still read (see DESIGN.md §3).
func (s *Server) localGCContributionLocked() vclock.VC {
	var base vclock.VC
	if s.cfg.StabilizationInterval > 0 {
		base = s.gss.Clone()
	} else {
		base = s.vv.Clone()
	}
	for _, tv := range s.activeTx {
		base.MinInPlace(tv)
	}
	return base
}

// serveSlice executes a transactional slice read (Algorithm 2, lines 39-47):
// wait until this node has installed every update in the snapshot, then read
// the freshest version of each key within TV.
func (s *Server) serveSlice(src netemu.NodeID, req msg.SliceReq) {
	blocked, err := s.waitVV(req.TV, -1)
	s.mx.TxBlocking.Record(blocked)
	resp := msg.SliceResp{TxID: req.TxID}
	if err != nil {
		resp.Err = err.Error()
	} else {
		var visible func(*item.Version) bool
		if req.Pessimistic {
			gss := s.GSS()
			stable := s.pessimisticVisible(gss)
			visible = func(v *item.Version) bool {
				return v.Deps.LessEq(req.TV) && stable(v)
			}
		}
		resp.Items = make([]msg.ItemReply, 0, len(req.Keys))
		for _, k := range req.Keys {
			var res storage.ReadResult
			if visible != nil {
				res = s.store.ReadVisible(k, visible)
			} else {
				res = s.store.ReadWithin(k, req.TV)
			}
			s.mx.TxStale.Record(res.Fresher, res.Invisible)
			resp.Items = append(resp.Items, msg.FromVersion(k, res.V, res.Fresher, res.Invisible))
		}
	}
	if src == s.cfg.ID {
		s.applySliceResp(resp)
		return
	}
	s.ep.Send(src, resp)
}

// applySliceResp folds a slice reply into the coordinator's pending state.
func (s *Server) applySliceResp(m msg.SliceResp) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pendingTx[m.TxID]
	if !ok || p.remaining <= 0 {
		// Transaction already completed, failed, or the transport delivered
		// a duplicate (TCP reconnects are at-least-once).
		return
	}
	if m.Err != "" && p.err == "" {
		p.err = m.Err
	}
	p.items = append(p.items, m.Items...)
	p.remaining--
	if p.remaining == 0 {
		close(p.done)
	}
}

// ---------------------------------------------------------------------------
// Background loops
// ---------------------------------------------------------------------------

// heartbeatLoop broadcasts the local clock when no PUT has advanced the local
// version-vector entry for a heartbeat interval (Algorithm 2, lines 19-26).
func (s *Server) heartbeatLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		s.mu.Lock()
		ct := s.clk.Now()
		if ct >= s.vv[s.m]+vclock.Timestamp(s.cfg.HeartbeatInterval) {
			s.vv[s.m] = ct
			for dc := 0; dc < s.cfg.NumDCs; dc++ {
				if dc != s.m {
					s.ep.Send(netemu.NodeID{DC: dc, Partition: s.n}, msg.Heartbeat{Time: ct})
				}
			}
			s.notifyVVWaitersLocked()
		}
		s.mu.Unlock()
	}
}

// stabilizationLoop periodically broadcasts this node's VV to its same-DC
// peers so everyone can maintain the GSS (§IV-C).
func (s *Server) stabilizationLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.StabilizationInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		s.mu.Lock()
		vv := s.vv.Clone()
		s.recomputeGSSLocked()
		s.mu.Unlock()
		for p := 0; p < s.cfg.NumPartitions; p++ {
			if p != s.n {
				s.ep.Send(netemu.NodeID{DC: s.m, Partition: p}, msg.VVExchange{Partition: s.n, VV: vv})
			}
		}
	}
}

// gcLoop periodically broadcasts this node's GC contribution and prunes with
// the DC-wide minimum when known.
func (s *Server) gcLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		s.mu.Lock()
		contrib := s.localGCContributionLocked()
		gv := s.gcVectorLocked()
		s.mu.Unlock()
		for p := 0; p < s.cfg.NumPartitions; p++ {
			if p != s.n {
				s.ep.Send(netemu.NodeID{DC: s.m, Partition: p}, msg.GCExchange{Partition: s.n, TV: contrib})
			}
		}
		if gv != nil {
			s.store.CollectGarbage(gv)
		}
	}
}

// ---------------------------------------------------------------------------
// Blocking machinery
// ---------------------------------------------------------------------------

func (s *Server) isStopped() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

// waitVV blocks until the version vector covers need on every entry except
// skip. It returns how long the caller was blocked. With a BlockTimeout
// configured, a wait that exceeds it marks the server suspected and returns
// ErrSessionClosed (the HA-POCC recovery trigger).
func (s *Server) waitVV(need vclock.VC, skip int) (time.Duration, error) {
	return s.waitOn(&s.waiters, func() vclock.VC { return s.vv }, need, skip)
}

// waitGSS blocks until the GSS covers need on every entry except skip.
func (s *Server) waitGSS(need vclock.VC, skip int) (time.Duration, error) {
	return s.waitOn(&s.gssWaiters, func() vclock.VC { return s.gss }, need, skip)
}

func (s *Server) waitOn(list *[]*waiter, vec func() vclock.VC, need vclock.VC, skip int) (time.Duration, error) {
	w := waiter{need: need, skip: skip, done: make(chan struct{})}
	s.mu.Lock()
	if s.isStopped() {
		s.mu.Unlock()
		return 0, ErrStopped
	}
	if w.satisfiedBy(vec()) {
		s.mu.Unlock()
		return 0, nil
	}
	*list = append(*list, &w)
	s.mu.Unlock()

	start := time.Now()
	var timeout <-chan time.Time
	if s.cfg.BlockTimeout > 0 {
		timer := time.NewTimer(s.cfg.BlockTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case <-w.done:
		return time.Since(start), nil
	case <-s.stop:
		s.removeWaiter(list, &w)
		return time.Since(start), ErrStopped
	case <-timeout:
		// The waiter may have been released concurrently with the timer
		// firing; prefer success in that case.
		select {
		case <-w.done:
			return time.Since(start), nil
		default:
		}
		s.removeWaiter(list, &w)
		s.suspectedAt.Store(time.Now().UnixNano())
		return time.Since(start), ErrSessionClosed
	}
}

func (s *Server) removeWaiter(list *[]*waiter, w *waiter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ws := *list
	for i, x := range ws {
		if x == w {
			ws[i] = ws[len(ws)-1]
			*list = ws[:len(ws)-1]
			return
		}
	}
}

func (s *Server) notifyVVWaitersLocked() {
	s.waiters = releaseSatisfied(s.waiters, s.vv)
}

func (s *Server) notifyGSSWaitersLocked() {
	s.gssWaiters = releaseSatisfied(s.gssWaiters, s.gss)
}

func releaseSatisfied(ws []*waiter, v vclock.VC) []*waiter {
	out := ws[:0]
	for _, w := range ws {
		if w.satisfiedBy(v) {
			close(w.done)
		} else {
			out = append(out, w)
		}
	}
	// Clear the tail so released waiters are not retained.
	for i := len(out); i < len(ws); i++ {
		ws[i] = nil
	}
	return out
}

// pessimisticVisible returns the Cure* visibility predicate for the given
// GSS snapshot: stable versions (deps covered by the GSS) are visible; local
// versions written by pessimistic sessions are always visible; local versions
// written by optimistic sessions need stability (HA-POCC, §IV-C).
func (s *Server) pessimisticVisible(gss vclock.VC) func(*item.Version) bool {
	return func(v *item.Version) bool {
		if v.Deps.LessEq(gss) {
			return true
		}
		return v.SrcReplica == s.m && !v.Optimistic
	}
}
