// Package core implements the partition server of POCC (Algorithm 2) and of
// the pessimistic baseline Cure* behind a single engine, mirroring the
// paper's fairness setup: the two protocols exchange identical metadata and
// differ only in that the pessimistic mode runs a stabilization protocol and
// searches version chains for stable versions, while the optimistic mode
// returns the freshest received version and blocks (rarely) on missing
// dependencies. HA-POCC is the optimistic engine with infrequent
// stabilization plus a block-timeout that closes sessions so clients can fall
// back to the pessimistic protocol (§III-B, §IV-C).
//
// # Hot-path locking
//
// The server has no global lock. State is split into independently
// synchronized regions so the optimistic read path never contends with
// replication apply:
//
//   - VV and GSS are atomic vectors ([]atomic.Uint64). Readers (Get, ROTx
//     snapshots, waiter checks) load entries lock-free. Each remote VV entry
//     has a single writer — the link handler of that DC's sibling (FIFO
//     delivery serializes per source) — and the local entry is written under
//     the replication manager's outbound lock; writes use CAS-max so they
//     stay monotone under any interleaving.
//   - The replication plane (outbound buffering, flush/heartbeat cadence,
//     per-link sequence numbers and WAL-shipped catch-up) lives in
//     internal/repl. Its outbound lock serializes the local write path — the
//     local VV entry, the replication buffer, and every send to sibling DCs
//     — so per-link FIFO order matches update-timestamp order, which VV
//     advancement relies on. The server's Put delegates to repl.Manager
//     through the Backend interface.
//   - gssMu guards the stabilization inputs (peer VVs) and GSS recomputation.
//   - gcMu guards the garbage-collection contributions.
//   - txMu guards RO-TX coordinator state (active snapshots, pending fan-in).
//   - Blocked requests live on per-vector wait lists (one for VV, one for
//     GSS) with their own locks and a fast lock-free empty check, so writers
//     that advance a vector pay nothing when nobody is blocked.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/item"
	"repro/internal/keyspace"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/repl"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// Transport carries protocol messages between partition servers. The
// emulated network (netemu.Endpoint) and the TCP transport (tcpnet.Node)
// both implement it; the protocol only requires lossless FIFO delivery per
// (src, dst) pair.
type Transport interface {
	// ID returns the local node's coordinate.
	ID() netemu.NodeID
	// Send enqueues m for delivery to dst without blocking.
	Send(dst netemu.NodeID, m any)
	// SetHandler installs the message handler; it is invoked sequentially
	// per source link.
	SetHandler(h netemu.Handler)
}

// Mode selects the visibility protocol a request is served under.
type Mode int

// Visibility modes.
const (
	// Optimistic is POCC: reads return the freshest received version; a
	// request whose dependencies are missing blocks until they arrive.
	Optimistic Mode = iota + 1
	// Pessimistic is Cure*: reads return the freshest *stable* version
	// (dependency vector covered by the GSS); local items written by
	// pessimistic sessions are always visible.
	Pessimistic
)

// defaultGCMaxHoldback is how long a frozen or catching-up replication link
// defers garbage collection before being released (Config.GCMaxHoldback).
const defaultGCMaxHoldback = 10 * time.Second

// Sentinel errors returned by server operations.
var (
	// ErrStopped is returned for operations on a closed server.
	ErrStopped = errors.New("core: server stopped")
	// ErrSessionClosed is returned when a blocked optimistic request exceeds
	// the block timeout: the server suspects a network partition and closes
	// the session so the client can re-initialize it pessimistically.
	ErrSessionClosed = errors.New("core: session closed (suspected network partition)")
	// ErrWrongSlotEpoch is returned when an operation reaches a server that
	// no longer owns the key's slot: the client's slot table is stale (a
	// reshard moved the slot). Clients refresh their routing table and retry
	// — the error is a redirect, not a failure.
	ErrWrongSlotEpoch = errors.New("core: wrong slot epoch (slot moved; refresh routing)")
)

// Metrics aggregates the per-server statistics the evaluation reports.
type Metrics struct {
	GetBlocking metrics.Blocking
	PutBlocking metrics.Blocking
	TxBlocking  metrics.Blocking // transactional slice reads (Fig. 3c)
	GetStale    metrics.Staleness
	TxStale     metrics.Staleness
}

// Config parameterizes a Server.
type Config struct {
	// ID is the server's (data center, partition) coordinate.
	ID netemu.NodeID
	// NumDCs (M) and NumPartitions (N) describe the layout.
	NumDCs        int
	NumPartitions int
	// Clock is the node's physical clock.
	Clock *clock.Clock
	// Endpoint attaches the server to the network (emulated or TCP). The
	// server installs its own handler.
	Endpoint Transport
	// DefaultMode is the visibility protocol of the deployment: Optimistic
	// for POCC and HA-POCC, Pessimistic for Cure*. Individual requests carry
	// their session's mode, enabling HA-POCC's mixed operation.
	DefaultMode Mode
	// HeartbeatInterval is Δ of Algorithm 2 (1 ms in the evaluation).
	HeartbeatInterval time.Duration
	// StabilizationInterval is the GSS exchange period: 5 ms for Cure*,
	// infrequent (e.g. 500 ms) for HA-POCC, 0 to disable (pure POCC).
	StabilizationInterval time.Duration
	// LeanStabilization switches most GSS exchange ticks from a full
	// version vector to a single scalar HLC watermark (Okapi-style): the
	// minimum nonzero member entry of the sender's VV, folded by the
	// receiver into the sender's last full vector. Cuts stabilization
	// traffic from O(MaxDCs) varints to one per tick; full vectors are
	// still sent every leanFullVVEvery ticks to refresh the baseline.
	LeanStabilization bool
	// GCInterval is the garbage-collection exchange period; 0 disables GC.
	GCInterval time.Duration
	// PutDepWait enables the optional wait of Algorithm 2 line 6 (enabled in
	// the paper's evaluation to emulate merge-based conflict handling).
	PutDepWait bool
	// BlockTimeout > 0 turns on HA-POCC's partition suspicion: optimistic
	// requests blocked longer than this return ErrSessionClosed. 0 waits
	// forever (the paper's POCC, evaluated without partitions).
	BlockTimeout time.Duration
	// ReplicationBatchSize caps how many outgoing updates may accumulate in
	// the per-DC replication buffer before an inline flush. 0 selects the
	// default (128); 1 flushes after every PUT (no batching, as the original
	// one-message-per-update protocol).
	ReplicationBatchSize int
	// ReplicationFlushInterval is the periodic flush cadence of the
	// replication buffer. 0 defaults to HeartbeatInterval, preserving the
	// paper's Δ semantics: a buffered update is delayed at most one
	// heartbeat period. A negative value disables timed batching entirely
	// (every PUT flushes inline). An interval above Δ trades remote
	// freshness for batch size; heartbeats are suppressed while updates
	// are buffered so they never overtake the batch.
	ReplicationFlushInterval time.Duration
	// Engine is the storage engine backing this server. Nil selects a
	// default: a fresh in-memory engine (storage.New), or — when DataDir is
	// set — a durable WAL-backed engine opened (and crash-recovered) from
	// DataDir. The server owns its engine and closes it on Close. When the
	// engine reports a recovered version-vector floor (storage.Recovered),
	// the server's VV starts from that floor, so reads never miss versions
	// the replayed state already contains.
	Engine storage.Engine
	// DataDir, when non-empty and Engine is nil, selects a storage.Durable
	// engine rooted at this directory, tuned by DurableOptions.
	DataDir string
	// DurableOptions tunes the durable engine opened for DataDir
	// (checkpoint trigger, segment size, fsync policy). Ignored when Engine
	// is provided or DataDir is empty.
	DurableOptions storage.DurableOptions
	// CatchUp enables the replication catch-up protocol: outgoing batches
	// and heartbeats carry incarnation epochs and sequence numbers, and the
	// receive side freezes a link's version-vector advancement on a gap (or
	// a restarted sender) until the missing history has been re-shipped out
	// of the sender's write-ahead log (internal/repl). Requires a durable
	// engine to serve streams; a server without one answers Unsupported and
	// peers fall back to optimistic application.
	CatchUp bool
	// CatchUpMaxInFlight bounds the un-acked catch-up bytes per outbound
	// stream (0 = default 1 MiB).
	CatchUpMaxInFlight int
	// MaxDCs caps the data-center ids this server can ever track: the
	// version-vector and GSS capacity, reserved up front because the hot
	// path reads those vectors lock-free and cannot repoint them. 0 means
	// NumDCs — fixed membership, the pre-membership behavior and footprint.
	// Headroom beyond NumDCs lets whole DCs join at runtime (internal/repl
	// membership); a departed DC's id is never reused.
	MaxDCs int
	// Joining marks this server's DC as bootstrapping into an existing
	// deployment: its replication manager pulls every partition's history
	// from its siblings through WAL-shipped catch-up, and the stabilization
	// loop does not start — this server contributes nothing to the GSS —
	// until the bootstrap completes. Requires CatchUp.
	Joining bool
	// JoinTimeout bounds how long a Joining server keeps soliciting the
	// deployment before giving up: past it the join solicitation stops and
	// JoinFailed reports true, so the operator can tear the half-joined
	// server down cleanly. 0 retries forever (the pre-timeout behavior).
	JoinTimeout time.Duration
	// GCMaxHoldback bounds how long the garbage-collection exchange defers
	// pruning for a frozen, catching-up or joining replication link (the
	// membership-aware GC clamp, repl.Manager.ClampGC). Past the bound the
	// holdback is released and GC advances — a laggard frozen longer than
	// this must re-bootstrap via full resync, because the history it still
	// needs may now be pruned past. 0 selects the default (10 s); negative
	// never releases (GC waits for the laggard indefinitely).
	GCMaxHoldback time.Duration
	// Membership is the initial membership view (zero value: the first
	// NumDCs DCs are active). Deployments that grew or shrank pass the
	// current view so restarted and joining servers start from reality.
	Membership msg.Membership
	// MaxPartitions caps the partition ids this server can ever track
	// within its DC — the headroom for splitting partitions at runtime,
	// mirroring MaxDCs: the same-DC peer state (stabilization and GC
	// inputs, RO-TX fan-in) is reserved up front. 0 means NumPartitions —
	// a fixed partition count, the pre-reshard behavior and footprint.
	MaxPartitions int
	// SlotMap is the initial slot table routing keys to partition servers
	// within the DC. Nil means the static layout: this server owns exactly
	// the keys PartitionOf maps to its id, and no ownership checks run.
	// With a map installed, operations on keys whose slot this server does
	// not own fail with ErrWrongSlotEpoch, and the table is gossiped and
	// lattice-merged across the deployment (see InstallSlotMap).
	SlotMap *keyspace.SlotMap
	// Gated starts the server behind the stabilization gate without the
	// whole-DC join protocol: it serves and replicates normally but does
	// not feed the DC's GSS until ReleaseGate. SplitPartition uses it for
	// the new slot owner while the donor's history is being copied in.
	Gated bool
	// Metrics receives the server's statistics; required.
	Metrics *Metrics
}

func (c *Config) validate() error {
	if c.NumDCs < 1 || c.NumPartitions < 1 {
		return fmt.Errorf("core: invalid layout %dx%d", c.NumDCs, c.NumPartitions)
	}
	if c.ID.DC < 0 || c.ID.DC >= c.NumDCs || c.ID.Partition < 0 || c.ID.Partition >= c.maxPartitions() {
		return fmt.Errorf("core: id %v outside layout %dx%d", c.ID, c.NumDCs, c.NumPartitions)
	}
	if c.Clock == nil || c.Endpoint == nil || c.Metrics == nil {
		return errors.New("core: Clock, Endpoint and Metrics are required")
	}
	if c.DefaultMode != Optimistic && c.DefaultMode != Pessimistic {
		return errors.New("core: DefaultMode must be Optimistic or Pessimistic")
	}
	if c.DefaultMode == Pessimistic && c.StabilizationInterval <= 0 {
		return errors.New("core: pessimistic mode requires a stabilization interval")
	}
	if c.ReplicationBatchSize < 0 {
		return errors.New("core: ReplicationBatchSize must be >= 0")
	}
	if c.CatchUpMaxInFlight < 0 {
		return errors.New("core: CatchUpMaxInFlight must be >= 0")
	}
	if c.MaxDCs != 0 && c.MaxDCs < c.NumDCs {
		return fmt.Errorf("core: MaxDCs %d below NumDCs %d", c.MaxDCs, c.NumDCs)
	}
	if c.MaxPartitions != 0 && c.MaxPartitions < c.NumPartitions {
		return fmt.Errorf("core: MaxPartitions %d below NumPartitions %d", c.MaxPartitions, c.NumPartitions)
	}
	if c.MaxPartitions > keyspace.NumSlots {
		return fmt.Errorf("core: MaxPartitions %d exceeds the slot universe (%d)", c.MaxPartitions, keyspace.NumSlots)
	}
	if c.SlotMap != nil {
		if err := c.SlotMap.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// maxDCs resolves the version-vector capacity.
func (c *Config) maxDCs() int {
	if c.MaxDCs != 0 {
		return c.MaxDCs
	}
	return c.NumDCs
}

// maxPartitions resolves the same-DC peer-state capacity.
func (c *Config) maxPartitions() int {
	if c.MaxPartitions != 0 {
		return c.MaxPartitions
	}
	return c.NumPartitions
}

// atomicVC is a vector clock whose entries are read and written atomically,
// giving readers lock-free monotone snapshots. Cross-entry consistency is
// not required by the protocol: every entry only grows, so any interleaved
// load yields a vector that was a valid lower bound of the true state.
type atomicVC struct {
	e []atomic.Uint64
}

func newAtomicVC(n int) *atomicVC { return &atomicVC{e: make([]atomic.Uint64, n)} }

func (a *atomicVC) get(i int) vclock.Timestamp { return vclock.Timestamp(a.e[i].Load()) }

// raiseTo lifts entry i to at least t, reporting whether it advanced. The
// CAS loop keeps the entry monotone even with racing writers (e.g. a TCP
// reconnect briefly running two reader goroutines for one link).
func (a *atomicVC) raiseTo(i int, t vclock.Timestamp) bool {
	for {
		cur := a.e[i].Load()
		if uint64(t) <= cur {
			return false
		}
		if a.e[i].CompareAndSwap(cur, uint64(t)) {
			return true
		}
	}
}

// load fills dst (reallocating only on length mismatch) with an atomic
// snapshot of the vector and returns it.
func (a *atomicVC) load(dst vclock.VC) vclock.VC {
	if len(dst) != len(a.e) {
		dst = make(vclock.VC, len(a.e))
	}
	for i := range a.e {
		dst[i] = vclock.Timestamp(a.e[i].Load())
	}
	return dst
}

// snapshot returns a fresh copy of the vector.
func (a *atomicVC) snapshot() vclock.VC { return a.load(nil) }

// covers reports whether the vector satisfies need on every entry except
// skip (-1 checks all entries), the lock-free form of vclock.LessEqExcept.
func (a *atomicVC) covers(need vclock.VC, skip int) bool {
	for i, t := range need {
		if i == skip {
			continue
		}
		if i >= len(a.e) {
			if t > 0 {
				return false
			}
			continue
		}
		if uint64(t) > a.e[i].Load() {
			return false
		}
	}
	return true
}

// waiter represents one blocked request: it is released when the watched
// vector covers need on every entry except skip (-1 to check all entries).
type waiter struct {
	need vclock.VC
	skip int
	done chan struct{}
}

// waitList is the per-vector condition structure: blocked requests register
// here and writers that advance the vector wake the satisfied ones. The
// active counter lets writers skip the lock entirely when nobody waits —
// the common case on the optimistic hot path.
type waitList struct {
	vec    *atomicVC
	mu     sync.Mutex
	active atomic.Int32
	ws     []*waiter
}

func (l *waitList) add(w *waiter) {
	l.mu.Lock()
	l.ws = append(l.ws, w)
	l.active.Store(int32(len(l.ws)))
	l.mu.Unlock()
}

func (l *waitList) remove(w *waiter) {
	l.mu.Lock()
	for i, x := range l.ws {
		if x == w {
			l.ws[i] = l.ws[len(l.ws)-1]
			l.ws[len(l.ws)-1] = nil
			l.ws = l.ws[:len(l.ws)-1]
			break
		}
	}
	l.active.Store(int32(len(l.ws)))
	l.mu.Unlock()
}

// wake releases every waiter the vector now satisfies.
func (l *waitList) wake() {
	if l.active.Load() == 0 {
		return
	}
	l.mu.Lock()
	out := l.ws[:0]
	for _, w := range l.ws {
		if l.vec.covers(w.need, w.skip) {
			close(w.done)
		} else {
			out = append(out, w)
		}
	}
	// Clear the tail so released waiters are not retained.
	for i := len(out); i < len(l.ws); i++ {
		l.ws[i] = nil
	}
	l.ws = out
	l.active.Store(int32(len(out)))
	l.mu.Unlock()
}

// Server is one partition replica p_n^m.
type Server struct {
	cfg      Config
	m        int // data center id
	n        int // partition id
	maxDCs   int // version-vector capacity (DC ids this server can track)
	maxParts int // same-DC peer-state capacity (partition ids trackable)
	clk      *clock.Clock
	ep       Transport
	store    storage.Engine
	mx       *Metrics

	// slots is the current slot table (immutable; swapped whole under
	// slotMu, read lock-free on the per-operation routing check). Nil means
	// the static layout with no ownership enforcement.
	slots  atomic.Pointer[keyspace.SlotMap]
	slotMu sync.Mutex // serializes merge-and-swap of the slot table

	// joined closes when this server's DC finishes bootstrapping into the
	// deployment (immediately for ordinary members). The stabilization loop
	// of a joining server waits on it: a half-bootstrapped replica must not
	// inject its partial version vector into the GSS.
	joined     chan struct{}
	joinedOnce sync.Once

	vv  *atomicVC // version vector VV_n^m; lock-free reads
	gss *atomicVC // globally stable snapshot (pessimistic/HA); lock-free reads

	// repl is the replication plane: outbound buffering and flush/heartbeat
	// cadence, per-link sequence numbers, and WAL-shipped catch-up. Its
	// outbound lock serializes the local write path (the local VV entry,
	// the buffer, and all sends to sibling DCs — per-link FIFO order must
	// match timestamp order); the server reaches it through Put → Publish.
	repl *repl.Manager

	// gssMu guards GSS recomputation and its inputs.
	gssMu      sync.Mutex
	peerVV     []vclock.VC // last VV heard from each same-DC partition
	gssScratch vclock.VC   // reused aggregate-min workspace

	// gcMu guards the garbage-collection exchange state.
	gcMu      sync.Mutex
	gcContrib []vclock.VC // last GC contribution per same-DC partition

	// txMu guards RO-TX coordinator state.
	txMu      sync.Mutex
	activeTx  map[uint64]vclock.VC  // snapshot vectors of in-flight RO-TXs
	pendingTx map[uint64]*txPending // coordinator fan-in state

	vvWaiters  waitList // requests blocked on VV advances
	gssWaiters waitList // requests blocked on GSS advances

	txSeq       atomic.Uint64
	suspectedAt atomic.Int64 // unix nanos of the last block timeout; 0 = never

	stopped atomic.Bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

// txPending tracks a coordinator's outstanding slice requests. seen marks
// the partitions that already responded: transports are at-least-once (TCP
// reconnects redeliver), and a duplicate reply must not decrement remaining
// or the fan-in would complete with another partition's items missing.
type txPending struct {
	remaining int
	seen      []bool // by responder partition
	items     []msg.ItemReply
	err       string
	done      chan struct{}
}

// NewServer builds and starts a partition server: its network handler is
// installed and its heartbeat/stabilization/GC loops are running when
// NewServer returns.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	eng := cfg.Engine
	if eng == nil {
		if cfg.DataDir != "" {
			var err error
			eng, err = storage.OpenDurable(cfg.DataDir, cfg.DurableOptions)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		} else {
			eng = storage.New()
		}
	}
	maxDCs := cfg.maxDCs()
	maxParts := cfg.maxPartitions()
	s := &Server{
		cfg:       cfg,
		m:         cfg.ID.DC,
		n:         cfg.ID.Partition,
		maxDCs:    maxDCs,
		maxParts:  maxParts,
		clk:       cfg.Clock,
		ep:        cfg.Endpoint,
		store:     eng,
		mx:        cfg.Metrics,
		joined:    make(chan struct{}),
		vv:        newAtomicVC(maxDCs),
		gss:       newAtomicVC(maxDCs),
		peerVV:    make([]vclock.VC, maxParts),
		gcContrib: make([]vclock.VC, maxParts),
		activeTx:  make(map[uint64]vclock.VC),
		pendingTx: make(map[uint64]*txPending),
		stop:      make(chan struct{}),
	}
	if cfg.SlotMap != nil {
		s.slots.Store(cfg.SlotMap.Clone())
	}
	if !cfg.Joining && !cfg.Gated {
		close(s.joined)
		s.joinedOnce.Do(func() {})
	}
	s.vvWaiters.vec = s.vv
	s.gssWaiters.vec = s.gss
	for i := range s.peerVV {
		s.peerVV[i] = vclock.New(maxDCs)
		s.gcContrib[i] = nil // unknown until first exchange
	}
	// A recovered engine replays a version-vector floor: every entry must be
	// restored before the server goes on the network, or a read at the old
	// VV could miss versions the replayed chains already contain. The clock
	// must clear the floor too: recovered timestamps are anchored to the
	// previous process's epoch and can sit ahead of this process's wall
	// clock, and a new write assigned a timestamp below existing versions
	// would be shadowed by LWW and fall outside the catch-up protocol's
	// completion claims.
	if rec, ok := eng.(storage.Recovered); ok {
		var maxFloor vclock.Timestamp
		for i, t := range rec.RecoveredVV() {
			// A DC the view records as departed is frozen at its final
			// timestamp: recovered state above it is the un-agreed suffix a
			// forced removal discarded, so the restored floor must not
			// resurrect it (the matching versions are dropped below).
			if cfg.Membership.Get(i) == msg.DCLeft {
				if f := cfg.Membership.FinalOf(i); f > 0 && t > f {
					t = f
				}
			}
			if i < maxDCs {
				s.vv.raiseTo(i, t)
			}
			if t > maxFloor {
				maxFloor = t
			}
		}
		cfg.Clock.AdvanceTo(maxFloor)
	}
	// Re-apply departed DCs' purges at open: a crash between a forced
	// removal's seal and the next checkpoint leaves the dropped suffix in the
	// WAL, and replay resurrects it into the chains.
	for dc := 0; dc < maxDCs; dc++ {
		if cfg.Membership.Get(dc) == msg.DCLeft {
			if f := cfg.Membership.FinalOf(dc); f > 0 {
				eng.DropAbove(dc, f)
			}
		}
	}
	// Seed transaction IDs from the clock so a restarted server never reuses
	// a prior incarnation's TxIDs: a stale pre-restart slice reply must not
	// fold into a new transaction that happens to share its ID (the
	// duplicate-partition guard cannot tell incarnations apart). Clocks are
	// monotone across in-process restarts, and transactions take far longer
	// than a nanosecond, so the new floor always clears the old range.
	s.txSeq.Store(uint64(cfg.Clock.Now()))
	// The replication manager must exist before the handler is installed
	// (inbound messages delegate to it) and after the VV floor is restored
	// (its resume floor starts at the recovered local entry).
	src, _ := eng.(repl.Source)
	mgr, err := repl.NewManager(repl.Config{
		ID:                cfg.ID,
		NumDCs:            cfg.NumDCs,
		Clock:             cfg.Clock,
		Endpoint:          cfg.Endpoint,
		Backend:           (*replBackend)(s),
		HeartbeatInterval: cfg.HeartbeatInterval,
		BatchSize:         cfg.ReplicationBatchSize,
		FlushInterval:     cfg.ReplicationFlushInterval,
		CatchUp:           cfg.CatchUp,
		Source:            src,
		MaxInFlightBytes:  cfg.CatchUpMaxInFlight,
		MaxDCs:            cfg.MaxDCs,
		Joining:           cfg.Joining,
		JoinTimeout:       cfg.JoinTimeout,
		Membership:        cfg.Membership,
	})
	if err != nil {
		_ = eng.Close()
		return nil, fmt.Errorf("core: %w", err)
	}
	s.repl = mgr
	s.ep.SetHandler(s.handle)

	if cfg.StabilizationInterval > 0 {
		s.wg.Add(1)
		go s.stabilizationLoop()
	}
	if cfg.GCInterval > 0 {
		s.wg.Add(1)
		go s.gcLoop()
	}
	return s, nil
}

// Close stops the background loops, releases every blocked request with
// ErrStopped, flushes any buffered replication and closes the storage
// engine. It does not close the shared network.
func (s *Server) Close() { s.shutdown(true) }

// Crash stops the server the way a machine failure would: the buffered
// replication tail is discarded instead of flushed, so sibling DCs lose the
// end of the update stream — the loss the catch-up protocol exists to
// repair. The storage engine still closes (in-process we must release the
// WAL files for a reopen); genuinely torn log tails are exercised by tests
// that truncate segment files on disk.
func (s *Server) Crash() { s.shutdown(false) }

func (s *Server) shutdown(flush bool) {
	if !s.stopped.CompareAndSwap(false, true) {
		return
	}
	close(s.stop)
	s.txMu.Lock()
	for _, p := range s.pendingTx {
		if p.err == "" {
			p.err = ErrStopped.Error()
		}
		close(p.done)
	}
	s.pendingTx = make(map[uint64]*txPending)
	s.txMu.Unlock()
	s.wg.Wait()
	// On a graceful close the manager hands buffered updates to the
	// transport so siblings do not lose the tail of the update stream; on a
	// crash it drops them.
	s.repl.Close(flush)
	// The flushed versions were persisted at Insert time, so the engine can
	// close last; a durable engine syncs its log here.
	_ = s.store.Close()
}

// ID returns the server's coordinate.
func (s *Server) ID() netemu.NodeID { return s.cfg.ID }

// Store exposes the underlying storage engine for tests and seeding.
func (s *Server) Store() storage.Engine { return s.store }

// StorageErr reports the engine's sticky persistence error, if the engine
// tracks one (storage.Durable does; the in-memory engine never fails). A
// non-nil error means acknowledged writes may not be durable: the server
// keeps serving from memory, but monitoring should treat the node as having
// lost its crash tolerance.
func (s *Server) StorageErr() error {
	if e, ok := s.store.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// VV returns a copy of the current version vector.
func (s *Server) VV() vclock.VC { return s.vv.snapshot() }

// ReplicationLag reports, per remote data center, how far that DC's update
// stream trails this server's own progress: the local version-vector entry
// minus the remote one, in time units (timestamps are physical
// nanoseconds). The local DC's entry is zero, as are the entries of DCs
// that are not members (never joined, or departed — a departed entry is
// frozen by design and would otherwise read as unbounded lag). A frozen
// entry (catch-up in progress) shows up as growing lag.
func (s *Server) ReplicationLag() []time.Duration {
	lag := make([]time.Duration, s.maxDCs)
	view := s.repl.View()
	local := s.vv.get(s.m)
	for dc := range lag {
		if dc == s.m || !view.IsMember(dc) {
			continue
		}
		if remote := s.vv.get(dc); remote < local {
			lag[dc] = time.Duration(local - remote)
		}
	}
	return lag
}

// Membership returns the server's current epoch-stamped membership view.
func (s *Server) Membership() msg.Membership { return s.repl.View() }

// Bootstrapped reports whether this server participates fully in
// replication: always true for ordinary members; for a server started with
// Config.Joining it turns true once every active inbound link has been
// synced via catch-up and the DC announced itself Active.
func (s *Server) Bootstrapped() bool { return s.repl.Bootstrapped() }

// AnnounceLeave announces this server's departure from the deployment: the
// replication buffer is flushed and a LeaveNotice follows it on every link,
// so sibling DCs hold the complete local history and drop this DC from
// their fan-out. The server keeps serving until Close; it returns the final
// announced timestamp.
func (s *Server) AnnounceLeave() vclock.Timestamp { return s.repl.Leave() }

// CatchUpStats returns the replication manager's catch-up counters.
func (s *Server) CatchUpStats() repl.Stats { return s.repl.Stats() }

// LinkStates reports the health of every inbound replication link by DC id
// (self, active, catching-up, frozen, evicted, idle).
func (s *Server) LinkStates() []string { return s.repl.LinkStates() }

// GCHoldbackAge reports how long the oldest live GC holdback (a frozen,
// catching-up or joining link deferring this server's GC contribution) has
// been held, or 0 when none is.
func (s *Server) GCHoldbackAge() time.Duration { return s.repl.HoldbackAge() }

// JoinFailed reports whether a Joining server gave up soliciting the
// deployment (Config.JoinTimeout elapsed before the bootstrap completed).
func (s *Server) JoinFailed() bool { return s.repl.JoinFailed() }

// ForceRemove coordinates the forced removal of a crashed data center: the
// survivors agree on the highest update timestamp each of them holds from
// dead, freeze its membership entry at that final, and discard any version
// above it. It returns the agreed final timestamp. The caller must be sure
// dead is actually gone — evicting a live DC discards its un-replicated
// suffix (it can re-join under a fresh id). timeout bounds the proposal
// round (0 selects a default).
func (s *Server) ForceRemove(dead int, timeout time.Duration) (vclock.Timestamp, error) {
	return s.repl.ProposeEvict(dead, timeout)
}

// GSS returns a copy of the current globally stable snapshot.
func (s *Server) GSS() vclock.VC { return s.gss.snapshot() }

// GSSLag reports how far the globally-stable snapshot trails this node's own
// visibility: the largest per-member-DC gap between the VV and GSS entries,
// as a physical duration. It is the stable-visibility penalty a pessimistic
// read pays on top of replication, and the stabilization benchmark's third
// axis (bytes/version, remote visibility, GSS lag). Zero when stabilization
// is disabled.
func (s *Server) GSSLag() time.Duration {
	if s.cfg.StabilizationInterval <= 0 {
		return 0
	}
	view := s.repl.View()
	vv, gss := s.vv.snapshot(), s.gss.snapshot()
	var lag time.Duration
	for d := range vv {
		if !view.IsMember(d) {
			continue
		}
		if v, g := vv.Get(d).Physical(), gss.Get(d).Physical(); v > g {
			if l := time.Duration(v - g); l > lag {
				lag = l
			}
		}
	}
	return lag
}

// SlotTable returns the server's current slot table (nil under the static
// layout). The returned map is immutable — callers must not modify it.
func (s *Server) SlotTable() *keyspace.SlotMap { return s.slots.Load() }

// SlotEpoch returns the epoch of the current slot table (0 under the static
// layout).
func (s *Server) SlotEpoch() uint64 {
	if sm := s.slots.Load(); sm != nil {
		return sm.Epoch
	}
	return 0
}

// liveParts is the number of partition servers currently live in this DC:
// the slot table's count when it exceeds the configured layout (a split
// grew the DC after this server started), clamped to the reserved capacity.
func (s *Server) liveParts() int {
	n := s.cfg.NumPartitions
	if sm := s.slots.Load(); sm != nil && sm.Parts > n {
		n = sm.Parts
	}
	if n > s.maxParts {
		n = s.maxParts
	}
	return n
}

// ownsKey reports whether this server currently owns the key's slot. Under
// the static layout (nil table) every key the old hash routed here is
// accepted unchecked — the pre-reshard behavior.
func (s *Server) ownsKey(key string) bool {
	sm := s.slots.Load()
	return sm == nil || int(sm.Owner[keyspace.SlotOf(key)]) == s.n
}

// InstallSlotMap folds a slot table into the server's own by the lattice
// merge and, when the merge changed anything, gossips the merged table to
// the same-DC partitions and the cross-DC siblings. Because the merge is
// idempotent, the gossip converges: a receiver that learns nothing new
// re-sends nothing. It returns whether the local table changed.
func (s *Server) InstallSlotMap(m *keyspace.SlotMap) bool {
	if m == nil || s.stopped.Load() {
		return false
	}
	s.slotMu.Lock()
	cur := s.slots.Load()
	var merged *keyspace.SlotMap
	changed := false
	if cur == nil {
		merged, changed = m.Clone(), true
	} else {
		merged = cur.Clone()
		changed = merged.Merge(m)
	}
	if changed {
		// Store under the replication manager's outbound lock — the same
		// lock PrepareLocal checks ownership under — so the install is a
		// hard fence: when it returns, every write the old table admitted
		// has committed and raised the local VV entry, and the reshard's
		// drain marks (captured after the install) provably cover the old
		// layout's entire output.
		s.repl.Locked(func() { s.slots.Store(merged) })
	}
	s.slotMu.Unlock()
	if !changed {
		return false
	}
	// Same-DC fan-out first (routing within the DC is what the table
	// protects), then the sibling in every member DC.
	for p := 0; p < s.liveParts(); p++ {
		if p != s.n {
			s.ep.Send(netemu.NodeID{DC: s.m, Partition: p}, msg.SlotMapUpdate{Map: merged})
		}
	}
	view := s.repl.View()
	for dc := 0; dc < s.maxDCs; dc++ {
		if dc != s.m && view.IsMember(dc) {
			s.ep.Send(netemu.NodeID{DC: dc, Partition: s.n}, msg.SlotMapUpdate{Map: merged})
		}
	}
	return true
}

// ReleaseGate opens the stabilization gate of a server started with
// Config.Gated: its history bootstrap (the reshard copy) is complete, so its
// version vector may now feed the DC's GSS. Idempotent.
func (s *Server) ReleaseGate() { s.joinedOnce.Do(func() { close(s.joined) }) }

// AdvanceClock lifts the server's physical clock to at least t. The reshard
// copy uses it so a new slot owner never assigns an update timestamp below a
// version it inherited from the donor — LWW would shadow the new write and
// the catch-up protocol's completion claims would not cover it.
func (s *Server) AdvanceClock(t vclock.Timestamp) { s.clk.AdvanceTo(t) }

// SeedVV raises the server's version-vector entries to at least vv and wakes
// any requests the advance unblocks — the reshard bootstrap claim. It is only
// sound when the caller has installed into this server every version with a
// timestamp at or below vv whose key this server's slot table routes here:
// for a freshly split owner that is the donor's VV after the drain, because
// the copied history is complete for exactly the moved slots and nothing else
// resolves to the new owner.
func (s *Server) SeedVV(vv vclock.VC) {
	woke := false
	for dc, t := range vv {
		if dc >= 0 && dc < s.maxDCs && s.vv.raiseTo(dc, t) {
			woke = true
		}
	}
	if woke {
		s.vvWaiters.wake()
	}
}

// Suspected reports whether the server recently suspected a network
// partition (a blocked request hit the block timeout). HA-POCC clients use
// it to decide when to promote sessions back to the optimistic protocol.
func (s *Server) Suspected() bool {
	at := s.suspectedAt.Load()
	if at == 0 {
		return false
	}
	window := 4 * s.cfg.BlockTimeout
	if window <= 0 {
		window = time.Second
	}
	return time.Since(time.Unix(0, at)) < window
}

// ---------------------------------------------------------------------------
// Client-facing operations
// ---------------------------------------------------------------------------

// Get serves a GET(k) with the client's read dependency vector (Algorithm 2,
// lines 1-4). Under Optimistic it blocks until VV covers rdv on every remote
// entry, then returns the freshest version. Under Pessimistic it waits until
// the GSS covers rdv, then returns the freshest stable version.
func (s *Server) Get(key string, rdv vclock.VC, mode Mode) (msg.ItemReply, error) {
	var reply msg.ItemReply
	if !s.ownsKey(key) {
		return reply, ErrWrongSlotEpoch
	}
	var res storage.ReadResult
	blocked, err := func() (time.Duration, error) {
		if mode == Pessimistic {
			blocked, err := s.waitGSS(rdv, s.m)
			if err != nil {
				return blocked, err
			}
			gss := s.gss.snapshot()
			res = s.store.ReadVisible(key, s.pessimisticVisible(gss))
			return blocked, nil
		}
		blocked, err := s.waitVV(rdv, s.m)
		if err != nil {
			return blocked, err
		}
		res = s.store.ReadVisible(key, nil)
		return blocked, nil
	}()
	s.mx.GetBlocking.Record(blocked)
	if err != nil {
		return reply, err
	}
	s.mx.GetStale.Record(res.Fresher, res.Invisible)
	return msg.FromVersion(key, res.V, res.Fresher, res.Invisible), nil
}

// Put serves a PUT(k, v) with the client's dependency vector (Algorithm 2,
// lines 5-15): optionally wait until the server's state covers the client's
// dependencies, wait until the local clock exceeds every dependency, assign
// the update timestamp, store the version, and replicate it asynchronously
// in timestamp order (buffered; see flushRepBufLocked).
//
// The server takes ownership of dv — it becomes the new version's dependency
// vector — so callers must not mutate it after the call.
func (s *Server) Put(key string, value []byte, dv vclock.VC, mode Mode) (vclock.Timestamp, error) {
	if !s.ownsKey(key) {
		return 0, ErrWrongSlotEpoch
	}
	var blocked time.Duration
	if s.cfg.PutDepWait {
		var err error
		blocked, err = s.waitVV(dv, s.m)
		if err != nil {
			s.mx.PutBlocking.Record(blocked)
			return 0, err
		}
	}
	s.mx.PutBlocking.Record(blocked)

	// Ensure the new version's timestamp exceeds all its dependencies (the
	// clock-wait of Algorithm 2, line 7). A raw physical clock sleeps out
	// the skew; a hybrid clock waits on the physical component only and
	// satisfies the ordering with a logical bump, so skewed writers pay
	// nothing here.
	s.clk.SleepUntilAfter(dv.MaxEntry())

	val := make([]byte, len(value))
	copy(val, value)
	d := &item.Version{
		Key:        key,
		Value:      val,
		SrcReplica: s.m,
		Deps:       dv,
		Optimistic: mode == Optimistic,
	}
	if d.Deps == nil {
		d.Deps = vclock.New(s.maxDCs)
	}

	// Publish runs the write path under the replication manager's outbound
	// lock: timestamp assignment, storage insert and the local VV advance
	// (PrepareLocal below) stay atomic with enqueueing for replication, so
	// per-link FIFO order matches timestamp order. Slot ownership is
	// re-checked there too — the lock-free check above is only a fast path,
	// and a reshard's fence is sound only if no write can commit under a
	// table that InstallSlotMap (which serializes on the same lock) already
	// replaced.
	ut, err := s.repl.Publish(d)
	if err != nil {
		if err == ErrWrongSlotEpoch {
			return 0, ErrWrongSlotEpoch
		}
		return 0, ErrStopped
	}
	s.vvWaiters.wake()
	return ut, nil
}

// replBackend adapts the server to the replication manager's Backend
// interface without polluting the Server API (a plain type conversion, no
// allocation).
type replBackend Server

// PrepareLocal is the under-lock half of Put: re-check slot ownership (the
// authoritative check — Put's lock-free one only fast-fails; a reshard
// installs its fencing table through the same lock, so a write that loaded
// the old table but commits here after the install would otherwise escape
// the drain marks), assign the update timestamp, install the version
// (insert before advancing VV so a reader at the new VV finds it) and raise
// the local entry. Callers wake the VV waiters after the manager releases
// its lock.
func (b *replBackend) PrepareLocal(v *item.Version) (vclock.Timestamp, error) {
	s := (*Server)(b)
	if s.stopped.Load() {
		return 0, ErrStopped
	}
	if !s.ownsKey(v.Key) {
		return 0, ErrWrongSlotEpoch
	}
	ut := s.clk.Now()
	v.UpdateTime = ut
	s.store.Insert(v)
	// A durable engine drops the insert when its log append fails (a crash or
	// sticky persistence error): the version must then not be acknowledged,
	// claimed by the local VV entry, or enqueued for replication — any of
	// those would let the causal order observe a version no replica durably
	// holds, a hole no catch-up can repair.
	if e, ok := s.store.(interface{ Err() error }); ok && e.Err() != nil {
		return 0, ErrStopped
	}
	s.vv.raiseTo(s.m, ut)
	return ut, nil
}

// ApplyRemote installs a batch of remote versions under one shard pass.
// slotEpoch is the sender's slot-table epoch when the batch was cut: when it
// trails this server's table, the batch may contain versions of slots a
// reshard has since moved away, so after the local insert (this server's VV
// claims still require it to hold the stream) those versions are forwarded
// to their current in-DC owner as an idempotent SlotHandoff. The reshard
// protocol's drain makes this path rare; it exists so a batch in flight
// across the epoch flip cannot strand versions on the old owner.
func (b *replBackend) ApplyRemote(vs []*item.Version, slotEpoch uint64) {
	s := (*Server)(b)
	s.store.InsertBatch(vs)
	sm := s.slots.Load()
	if sm == nil || slotEpoch >= sm.Epoch {
		return
	}
	var byOwner map[int][]*item.Version
	for _, v := range vs {
		if o := int(sm.Owner[keyspace.SlotOf(v.Key)]); o != s.n {
			if byOwner == nil {
				byOwner = make(map[int][]*item.Version)
			}
			byOwner[o] = append(byOwner[o], v)
		}
	}
	for o, fw := range byOwner {
		s.ep.Send(netemu.NodeID{DC: s.m, Partition: o}, msg.SlotHandoff{Versions: fw})
	}
}

// SlotEpoch stamps outgoing replication batches and catch-up chunks with
// the sender's slot-table epoch (see ApplyRemote).
func (b *replBackend) SlotEpoch() uint64 { return (*Server)(b).SlotEpoch() }

// DropAbove discards src-originated versions above after — the forced-removal
// purge of a departed DC's un-agreed suffix.
func (b *replBackend) DropAbove(dc int, after vclock.Timestamp) int {
	return (*Server)(b).store.DropAbove(dc, after)
}

// VVEntry returns one version-vector entry, lock-free.
func (b *replBackend) VVEntry(dc int) vclock.Timestamp {
	return (*Server)(b).vv.get(dc)
}

// RaiseVV lifts one version-vector entry and wakes the requests the advance
// unblocks.
func (b *replBackend) RaiseVV(dc int, t vclock.Timestamp) {
	s := (*Server)(b)
	if s.vv.raiseTo(dc, t) {
		s.vvWaiters.wake()
	}
}

// Joined releases the stabilization loop of a joining server: its bootstrap
// is complete, so its version vector may now feed the GSS.
func (b *replBackend) Joined() {
	s := (*Server)(b)
	s.joinedOnce.Do(func() { close(s.joined) })
}

// ROTx coordinates a causally consistent read-only transaction (Algorithm 2,
// lines 29-38): compute the snapshot vector TV, fan SliceReqs out to the
// partitions holding the keys, and gather the replies.
func (s *Server) ROTx(keys []string, rdv vclock.VC, mode Mode, partitionOf func(string) int) ([]msg.ItemReply, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	byPartition := make(map[int][]string)
	for _, k := range keys {
		p := partitionOf(k)
		byPartition[p] = append(byPartition[p], k)
	}

	// Snapshot boundary: the optimistic protocol snapshots what the
	// coordinator has *received* (VV); the pessimistic one snapshots what is
	// *stable* (GSS). Both include the client's history (rdv).
	//
	// tv is computed and registered under txMu so it serializes against
	// localGCContribution: either the GC pass sees this transaction in
	// activeTx, or it snapshotted the visibility vector before we did — in
	// which case tv covers the GC base and no version inside the snapshot
	// can be pruned.
	txID := s.txSeq.Add(1)
	pending := &txPending{
		remaining: len(byPartition),
		seen:      make([]bool, s.maxParts),
		done:      make(chan struct{}),
	}
	var tv vclock.VC
	s.txMu.Lock()
	if s.stopped.Load() {
		s.txMu.Unlock()
		return nil, ErrStopped
	}
	if mode == Pessimistic {
		tv = s.gss.snapshot()
	} else {
		tv = s.vv.snapshot()
	}
	tv.MaxInPlace(rdv)
	s.activeTx[txID] = tv
	s.pendingTx[txID] = pending
	s.txMu.Unlock()

	defer func() {
		s.txMu.Lock()
		delete(s.activeTx, txID)
		delete(s.pendingTx, txID)
		s.txMu.Unlock()
	}()

	for p, ks := range byPartition {
		req := msg.SliceReq{
			TxID:        txID,
			Coordinator: s.cfg.ID,
			Keys:        ks,
			TV:          tv,
			Pessimistic: mode == Pessimistic,
		}
		if p == s.n {
			// Serve the local slice on a separate goroutine: it may block on
			// the same conditions as a remote one.
			go s.serveSlice(s.cfg.ID, req)
		} else {
			s.ep.Send(netemu.NodeID{DC: s.m, Partition: p}, req)
		}
	}

	select {
	case <-pending.done:
	case <-s.stop:
		return nil, ErrStopped
	}
	s.txMu.Lock()
	items, errStr := pending.items, pending.err
	s.txMu.Unlock()
	if errStr != "" {
		// Slice errors travel as strings (they cross the wire); map the
		// sentinels back so callers can errors.Is them.
		switch errStr {
		case ErrSessionClosed.Error():
			return nil, ErrSessionClosed
		case ErrStopped.Error():
			return nil, ErrStopped
		case ErrWrongSlotEpoch.Error():
			return nil, ErrWrongSlotEpoch
		}
		return nil, errors.New(errStr)
	}
	return items, nil
}

// ---------------------------------------------------------------------------
// Network message handling
// ---------------------------------------------------------------------------

func (s *Server) handle(src netemu.NodeID, m any) {
	if s.stopped.Load() {
		// A stopped (crashed, or departed) server receives nothing: racing
		// senders that have not yet processed the shutdown must not reach a
		// half-closed engine.
		return
	}
	switch mm := m.(type) {
	case msg.Replicate:
		s.applyReplicate(src, mm)
	case msg.ReplicateBatch:
		s.repl.HandleBatch(src, mm)
	case msg.Heartbeat:
		s.repl.HandleHeartbeat(src, mm)
	case msg.CatchUpRequest:
		s.repl.HandleCatchUpRequest(src, mm)
	case msg.CatchUpReply:
		s.repl.HandleCatchUpReply(src, mm)
	case msg.CatchUpAck:
		s.repl.HandleCatchUpAck(src, mm)
	case msg.JoinRequest:
		s.repl.HandleJoinRequest(src, mm)
	case msg.JoinAccept:
		s.repl.HandleJoinAccept(src, mm)
	case msg.MembershipUpdate:
		s.repl.HandleMembershipUpdate(src, mm)
	case msg.LeaveNotice:
		s.repl.HandleLeaveNotice(src, mm)
	case msg.EvictProposal:
		s.repl.HandleEvictProposal(src, mm)
	case msg.EvictAck:
		s.repl.HandleEvictAck(src, mm)
	case msg.EvictNotice:
		s.repl.HandleEvictNotice(src, mm)
	case msg.VVExchange:
		s.applyVVExchange(mm)
	case msg.GCExchange:
		s.applyGCExchange(mm)
	case msg.SlotMapUpdate:
		s.InstallSlotMap(mm.Map)
	case msg.SlotHandoff:
		// Idempotent store inserts only: the forwarder cannot vouch for the
		// origins' gap-free prefixes, so the VV must not move here.
		s.store.InsertBatch(mm.Versions)
	case msg.SliceReq:
		// Slice reads may block on VV/GSS; never stall the link goroutine.
		go s.serveSlice(src, mm)
	case msg.SliceResp:
		s.applySliceResp(src.Partition, mm)
	}
}

// applyReplicate installs a legacy single-version replicate message and
// advances the version vector optimistically (Algorithm 2, lines 16-18).
// The replication manager only emits sequenced batches now; this path
// remains for unsequenced senders (tests and old peers).
func (s *Server) applyReplicate(src netemu.NodeID, m msg.Replicate) {
	s.store.Insert(m.V)
	if s.vv.raiseTo(src.DC, m.V.UpdateTime) {
		s.vvWaiters.wake()
	}
}

// applyVVExchange records a same-DC peer's version vector and recomputes the
// GSS as the aggregate minimum (§IV-C).
//
// A lean exchange (VV nil, Watermark set) raises the already-nonzero entries
// of the sender's last known full vector to the watermark. Safety of the
// fold — no entry may ever exceed the sender's true VV entry — follows from
// three facts:
//
//  1. The sender computed the watermark as the minimum over its nonzero
//     member entries, so for every DC that is still a member, watermark ≤
//     that entry of the sender's VV. An entry nonzero in our (older) copy is
//     necessarily nonzero at the (monotone) sender, hence in that minimum.
//  2. An entry that is zero in our copy is never raised, so a DC that joined
//     after the sender's last full exchange stays conservatively at zero
//     until the next full vector arrives (bounded by leanFullVVEvery ticks).
//  3. A DC departed since our copy was taken has a frozen final timestamp;
//     raising its entry past the final is vacuous — the leave/evict
//     protocols guarantee no version beyond the final exists anywhere.
//
// A watermark arriving before any full vector has nothing to fold into and
// is dropped; the sender's periodic full exchanges repair this.
func (s *Server) applyVVExchange(m msg.VVExchange) {
	if m.Partition < 0 || m.Partition >= s.maxParts {
		return
	}
	s.gssMu.Lock()
	if m.VV == nil {
		if pv := s.peerVV[m.Partition]; pv != nil {
			for i, t := range pv {
				if t > 0 && m.Watermark > t {
					pv[i] = m.Watermark
				}
			}
			s.recomputeGSSLocked()
		}
	} else {
		// Copy rather than alias: the sender broadcasts one VV slice to every
		// same-DC peer, and the watermark fold above writes into peerVV
		// entries — mutating the shared message would race with the other
		// receivers.
		s.peerVV[m.Partition] = s.peerVV[m.Partition].CopyFrom(m.VV)
		s.recomputeGSSLocked()
	}
	s.gssMu.Unlock()
}

// recomputeGSSLocked folds the freshest known VV of every partition in the
// DC (including this node's own) into the GSS. Entries are raised
// individually: every input only grows, so the aggregate minimum is monotone
// per entry. Called with gssMu held.
func (s *Server) recomputeGSSLocked() {
	s.peerVV[s.n] = s.vv.load(s.peerVV[s.n])
	// Fold only the live partitions: the reserved tail (split headroom) has
	// never spoken and would pin the aggregate minimum at zero. A partition
	// that just went live contributes its zero vector until its first
	// exchange arrives — the GSS merely stalls (it is monotone), it cannot
	// regress.
	live := s.peerVV[:s.liveParts()]
	min := s.gssScratch.CopyFrom(live[0])
	for _, v := range live[1:] {
		min.MinInPlace(v)
	}
	s.gssScratch = min
	advanced := false
	for i, t := range min {
		if s.gss.raiseTo(i, t) {
			advanced = true
		}
	}
	if advanced {
		s.gssWaiters.wake()
	}
}

// applyGCExchange records a peer's GC contribution; when contributions from
// every partition are known, prune with their aggregate minimum.
func (s *Server) applyGCExchange(m msg.GCExchange) {
	if m.Partition < 0 || m.Partition >= s.maxParts {
		return
	}
	s.gcMu.Lock()
	s.gcContrib[m.Partition] = m.TV
	gv := s.gcVectorLocked()
	s.gcMu.Unlock()
	if gv != nil {
		s.store.CollectGarbage(gv)
	}
}

// gcVectorLocked returns the DC-wide GC vector, or nil if some partition has
// not contributed yet. Called with gcMu held.
func (s *Server) gcVectorLocked() vclock.VC {
	s.gcContrib[s.n] = s.localGCContribution()
	live := s.gcContrib[:s.liveParts()]
	vs := make([]vclock.VC, 0, len(live))
	for _, c := range live {
		if c == nil {
			return nil
		}
		vs = append(vs, c)
	}
	return vclock.AggregateMin(vs)
}

// localGCContribution is the node's GC input: the minimum of its
// visibility vector (VV for optimistic deployments, GSS when stabilization
// runs) and the snapshot vectors of its active transactions. Taking the
// minimum (rather than the paper's "aggregate maximum" wording) is the
// conservative-safe choice: the GC vector never overtakes a snapshot an
// active transaction may still read (see DESIGN.md §3).
func (s *Server) localGCContribution() vclock.VC {
	// The base snapshot is taken under txMu (see ROTx): a transaction not
	// yet in activeTx is guaranteed to compute a tv covering this base.
	s.txMu.Lock()
	var base vclock.VC
	if s.cfg.StabilizationInterval > 0 {
		base = s.gss.snapshot()
	} else {
		base = s.vv.snapshot()
	}
	for _, tv := range s.activeTx {
		base.MinInPlace(tv)
	}
	s.txMu.Unlock()
	// Clamp to the replication plane's holdback floors: a frozen or
	// catching-up link must not have the history it still needs pruned out
	// from under its resume point (bounded by GCMaxHoldback).
	c := s.repl.ClampGC(base, s.gcMaxHoldback())
	// A contribution is a promise about this node's post-crash state: the
	// DC prunes to the aggregate of these vectors, so a restart must never
	// recover a VV below one — heartbeat-attested entries with no backing
	// version record would otherwise collapse to the last stored version
	// and hand out snapshot vectors under the prune point (see
	// storage.Attester). Persist the vector before sharing it; if the log
	// is sticky-failed, contribute the last durable attestation instead.
	if a, ok := s.store.(storage.Attester); ok {
		c = a.AttestVV(c)
	}
	return c
}

// gcMaxHoldback resolves Config.GCMaxHoldback: 0 selects the default,
// negative means hold back forever.
func (s *Server) gcMaxHoldback() time.Duration {
	if s.cfg.GCMaxHoldback == 0 {
		return defaultGCMaxHoldback
	}
	return s.cfg.GCMaxHoldback
}

// serveSlice executes a transactional slice read (Algorithm 2, lines 39-47):
// wait until this node has installed every update in the snapshot, then read
// the freshest version of each key within TV.
//
// Visibility within a slice is exactly Deps ≤ TV for both protocols: the
// snapshot vector already encodes the protocol's visibility rule (the
// coordinator builds it from its VV for optimistic transactions and from
// its GSS for pessimistic ones, plus the client's history either way).
// Re-checking stability against this server's own GSS — which may lag the
// coordinator's — would hide versions that are inside the snapshot and
// break the transaction's causal cut (the seed's flaky Cure* stress
// failure).
func (s *Server) serveSlice(src netemu.NodeID, req msg.SliceReq) {
	resp := msg.SliceResp{TxID: req.TxID}
	for _, k := range req.Keys {
		if !s.ownsKey(k) {
			// The coordinator routed this slice with a stale slot table; the
			// whole transaction retries after a refresh.
			resp.Err = ErrWrongSlotEpoch.Error()
			break
		}
	}
	if resp.Err != "" {
		if src == s.cfg.ID {
			s.applySliceResp(s.n, resp)
			return
		}
		s.ep.Send(src, resp)
		return
	}
	blocked, err := s.waitVV(req.TV, -1)
	s.mx.TxBlocking.Record(blocked)
	if err != nil {
		resp.Err = err.Error()
	} else {
		resp.Items = make([]msg.ItemReply, 0, len(req.Keys))
		for _, k := range req.Keys {
			res := s.store.ReadWithin(k, req.TV)
			s.mx.TxStale.Record(res.Fresher, res.Invisible)
			resp.Items = append(resp.Items, msg.FromVersion(k, res.V, res.Fresher, res.Invisible))
		}
	}
	if src == s.cfg.ID {
		s.applySliceResp(s.n, resp)
		return
	}
	s.ep.Send(src, resp)
}

// applySliceResp folds partition from's slice reply into the coordinator's
// pending state.
func (s *Server) applySliceResp(from int, m msg.SliceResp) {
	s.txMu.Lock()
	defer s.txMu.Unlock()
	p, ok := s.pendingTx[m.TxID]
	if !ok {
		// Transaction already completed or failed.
		return
	}
	if from < 0 || from >= len(p.seen) || p.seen[from] {
		// Duplicate delivery (TCP reconnects are at-least-once): this
		// partition's items are already folded in.
		return
	}
	p.seen[from] = true
	if m.Err != "" && p.err == "" {
		p.err = m.Err
	}
	p.items = append(p.items, m.Items...)
	p.remaining--
	if p.remaining == 0 {
		// Drop the entry as the channel closes (still under txMu), so Close
		// — which closes every channel left in the map — can never close a
		// completed transaction's channel a second time.
		close(p.done)
		delete(s.pendingTx, m.TxID)
	}
}

// ---------------------------------------------------------------------------
// Background loops
// ---------------------------------------------------------------------------

// stabilizationLoop periodically broadcasts this node's VV to its same-DC
// peers so everyone can maintain the GSS (§IV-C).
func (s *Server) stabilizationLoop() {
	defer s.wg.Done()
	// A joining server enters the GSS protocol only after its bootstrap: its
	// version vector is a hole until catch-up fills it, and the GSS is an
	// aggregate minimum — one half-bootstrapped contributor would stall
	// stable visibility for the whole data center.
	select {
	case <-s.joined:
	case <-s.stop:
		return
	}
	t := time.NewTicker(s.cfg.StabilizationInterval)
	defer t.Stop()
	tick := 0
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		vv := s.vv.snapshot()
		s.gssMu.Lock()
		s.recomputeGSSLocked()
		s.gssMu.Unlock()
		out := msg.VVExchange{Partition: s.n, VV: vv}
		if s.cfg.LeanStabilization && tick%leanFullVVEvery != 0 {
			if w := s.stableWatermark(vv); w > 0 {
				out = msg.VVExchange{Partition: s.n, Watermark: w}
			}
		}
		tick++
		for p := 0; p < s.liveParts(); p++ {
			if p != s.n {
				s.ep.Send(netemu.NodeID{DC: s.m, Partition: p}, out)
			}
		}
	}
}

// leanFullVVEvery is the cadence of full-vector exchanges under lean
// stabilization: one full VV establishes/refreshes the per-entry baseline,
// then leanFullVVEvery-1 scalar watermark ticks ride on it.
const leanFullVVEvery = 16

// stableWatermark computes the scalar attestation a lean stabilization tick
// broadcasts: the minimum over the node's nonzero VV entries of member DCs.
// Zero entries (a member with no shipped data yet, typically a fresh joiner)
// are excluded — including them would pin the watermark at zero — which is
// safe because receivers never raise a zero entry from a watermark. Departed
// DCs are excluded so their frozen final timestamps do not pin the watermark
// in the past. Returns 0 when no entry qualifies; the caller then falls back
// to a full-vector exchange.
func (s *Server) stableWatermark(vv vclock.VC) vclock.Timestamp {
	view := s.repl.View()
	var w vclock.Timestamp
	for d, t := range vv {
		if t == 0 || !view.IsMember(d) {
			continue
		}
		if w == 0 || t < w {
			w = t
		}
	}
	return w
}

// gcLoop periodically broadcasts this node's GC contribution and prunes with
// the DC-wide minimum when known.
func (s *Server) gcLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		s.gcMu.Lock()
		contrib := s.localGCContribution()
		gv := s.gcVectorLocked()
		s.gcMu.Unlock()
		for p := 0; p < s.liveParts(); p++ {
			if p != s.n {
				s.ep.Send(netemu.NodeID{DC: s.m, Partition: p}, msg.GCExchange{Partition: s.n, TV: contrib})
			}
		}
		if gv != nil {
			s.store.CollectGarbage(gv)
		}
	}
}

// ---------------------------------------------------------------------------
// Blocking machinery
// ---------------------------------------------------------------------------

// waitVV blocks until the version vector covers need on every entry except
// skip. It returns how long the caller was blocked. With a BlockTimeout
// configured, a wait that exceeds it marks the server suspected and returns
// ErrSessionClosed (the HA-POCC recovery trigger).
func (s *Server) waitVV(need vclock.VC, skip int) (time.Duration, error) {
	return s.waitOn(&s.vvWaiters, need, skip)
}

// waitGSS blocks until the GSS covers need on every entry except skip.
func (s *Server) waitGSS(need vclock.VC, skip int) (time.Duration, error) {
	return s.waitOn(&s.gssWaiters, need, skip)
}

func (s *Server) waitOn(l *waitList, need vclock.VC, skip int) (time.Duration, error) {
	if s.stopped.Load() {
		return 0, ErrStopped
	}
	// Lock-free fast path: the vector already covers the dependencies.
	if l.vec.covers(need, skip) {
		return 0, nil
	}
	w := &waiter{need: need, skip: skip, done: make(chan struct{})}
	l.add(w)
	// Re-check after registration: a writer that advanced the vector between
	// the fast-path check and add would have seen an empty wait list. wake
	// also releases any other now-satisfied waiter, which is harmless.
	l.wake()

	start := time.Now()
	var timeout <-chan time.Time
	if s.cfg.BlockTimeout > 0 {
		timer := time.NewTimer(s.cfg.BlockTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case <-w.done:
		return time.Since(start), nil
	case <-s.stop:
		l.remove(w)
		return time.Since(start), ErrStopped
	case <-timeout:
		// The waiter may have been released concurrently with the timer
		// firing; prefer success in that case.
		select {
		case <-w.done:
			return time.Since(start), nil
		default:
		}
		l.remove(w)
		s.suspectedAt.Store(time.Now().UnixNano())
		return time.Since(start), ErrSessionClosed
	}
}

// pessimisticVisible returns the Cure* visibility predicate for the given
// GSS snapshot: stable versions (deps covered by the GSS) are visible; local
// versions written by pessimistic sessions are always visible; local versions
// written by optimistic sessions need stability (HA-POCC, §IV-C).
func (s *Server) pessimisticVisible(gss vclock.VC) func(*item.Version) bool {
	return func(v *item.Version) bool {
		if v.Deps.LessEq(gss) {
			return true
		}
		return v.SrcReplica == s.m && !v.Optimistic
	}
}
