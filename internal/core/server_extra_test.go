package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/item"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/vclock"
)

// TestGCSparesActiveTransactionSnapshot: with a long-running RO-TX holding
// an old snapshot, the GC vector must not overtake it, so versions the
// transaction can still read survive.
func TestGCSparesActiveTransactionSnapshot(t *testing.T) {
	r := newRig(t, Config{
		HeartbeatInterval: time.Millisecond,
		GCInterval:        2 * time.Millisecond,
		NumPartitions:     2,
	})
	// Three versions of k0 with growing dependency vectors.
	if _, err := r.srv.Put("k0", []byte("v0"), vclock.New(3), Optimistic); err != nil {
		t.Fatal(err)
	}
	tvOld := r.srv.VV() // snapshot that can only see v0

	// Hold a transaction open at the old snapshot by blocking its slice on
	// a key of the fake peer partition... simpler: register the snapshot the
	// way ROTx would, via a slow transaction against the local partition.
	// We emulate "active" by injecting the snapshot directly through a
	// long-running ROTx on another goroutine whose SliceReq to the fake
	// peer never gets answered.
	txDone := make(chan error, 1)
	go func() {
		// "k1p1" maps to partition 1 (the fake peer) by construction below.
		_, err := r.srv.ROTx([]string{"k0", "peer-key"}, tvOld, Optimistic,
			func(k string) int {
				if k == "peer-key" {
					return 1
				}
				return 0
			})
		txDone <- err
	}()
	time.Sleep(5 * time.Millisecond) // transaction is now registered

	// Newer versions arrive; their deps exceed the old snapshot.
	later := r.srv.VV()
	for i := 0; i < 3; i++ {
		if _, err := r.srv.Put("k0", []byte{byte('a' + i)}, later, Optimistic); err != nil {
			t.Fatal(err)
		}
	}
	// Peer contributes a huge GC vector; without the active-tx guard the
	// chain would be pruned down to the head.
	r.inject(netemu.NodeID{DC: 0, Partition: 1},
		msg.GCExchange{Partition: 1, TV: vclock.VC{1 << 40, 1 << 40, 1 << 40}})
	time.Sleep(20 * time.Millisecond) // several GC rounds

	// The version readable at the old snapshot must still exist.
	res := r.srv.Store().ReadWithin("k0", tvOld)
	if res.V == nil || string(res.V.Value) != "v0" {
		t.Fatalf("GC pruned a version an active transaction still needs: %+v", res)
	}

	// Unblock the transaction and let GC finish its work. The TxID comes
	// from the SliceReq the fake peer captured (IDs are clock-seeded per
	// server incarnation, not 1-based).
	var txID uint64
	for _, m := range r.received(netemu.NodeID{DC: 0, Partition: 1}) {
		if req, ok := m.(msg.SliceReq); ok {
			txID = req.TxID
		}
	}
	if txID == 0 {
		t.Fatal("fake peer never received the SliceReq")
	}
	r.inject(netemu.NodeID{DC: 0, Partition: 1},
		msg.SliceResp{TxID: txID, Items: []msg.ItemReply{{Key: "peer-key"}}})
	if err := <-txDone; err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, func() bool {
		return r.srv.Store().ReadVisible("k0", func(*item.Version) bool { return true }).ChainLen == 1
	})
}

// TestHeartbeatSuppressedByPuts: while PUTs keep advancing VV[m], the
// heartbeat loop must not broadcast (Algorithm 2 line 21's condition).
func TestHeartbeatSuppressedByPuts(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: 3 * time.Millisecond})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := r.srv.Put("hot", []byte("x"), vclock.New(3), Optimistic); err != nil {
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()

	hb, repl := 0, 0
	for _, m := range r.received(netemu.NodeID{DC: 1, Partition: 0}) {
		switch mm := m.(type) {
		case msg.Heartbeat:
			hb++
		case msg.Replicate:
			repl++
		case msg.ReplicateBatch:
			repl += len(mm.Versions)
		}
	}
	if repl == 0 {
		t.Fatal("no replication observed")
	}
	// A put lands every ~200µs << Δ=3ms, so heartbeats must be (almost)
	// fully suppressed; allow a couple from scheduling hiccups.
	if hb > 3 {
		t.Fatalf("heartbeats = %d despite continuous puts (replications = %d)", hb, repl)
	}
}

// TestGSSMonotonic: the GSS never goes backwards, even when peers report
// stale VVs out of order.
func TestGSSMonotonic(t *testing.T) {
	r := newRig(t, Config{
		HeartbeatInterval:     time.Hour,
		StabilizationInterval: time.Millisecond,
		NumPartitions:         2,
	})
	// The GSS is the minimum over the DC, including this node's own VV, so
	// advance the local VV on every entry first.
	if _, err := r.srv.Put("k", []byte("v"), vclock.New(3), Pessimistic); err != nil {
		t.Fatal(err)
	}
	r.inject(netemu.NodeID{DC: 1, Partition: 0}, msg.Heartbeat{Time: 100})
	r.inject(netemu.NodeID{DC: 2, Partition: 0}, msg.Heartbeat{Time: 100})
	if !waitUntil(t, time.Second, func() bool { return r.srv.VV().Get(2) >= 100 }) {
		t.Fatal("heartbeats not applied")
	}
	peer := netemu.NodeID{DC: 0, Partition: 1}
	r.inject(peer, msg.VVExchange{Partition: 1, VV: vclock.VC{100, 100, 100}})
	if !waitUntil(t, time.Second, func() bool { return r.srv.GSS().Get(1) > 0 }) {
		t.Fatal("GSS never advanced")
	}
	high := r.srv.GSS()
	// A stale (lower) report must not pull the GSS back.
	r.inject(peer, msg.VVExchange{Partition: 1, VV: vclock.VC{1, 1, 1}})
	time.Sleep(10 * time.Millisecond)
	if got := r.srv.GSS(); !high.LessEq(got) {
		t.Fatalf("GSS went backwards: %v -> %v", high, got)
	}
}

// TestDuplicateSliceRespIgnored: at-least-once transports may replay a
// SliceResp; the coordinator must not double-count it.
func TestDuplicateSliceRespIgnored(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Millisecond, NumPartitions: 2})
	peer := netemu.NodeID{DC: 0, Partition: 1}
	type res struct {
		items []msg.ItemReply
		err   error
	}
	done := make(chan res, 1)
	go func() {
		items, err := r.srv.ROTx([]string{"local", "remote"}, vclock.New(3), Optimistic,
			func(k string) int {
				if k == "remote" {
					return 1
				}
				return 0
			})
		done <- res{items, err}
	}()
	// Wait for the SliceReq to reach the fake peer, grab its TxID.
	var txID uint64
	if !waitUntil(t, 2*time.Second, func() bool {
		for _, m := range r.received(peer) {
			if req, ok := m.(msg.SliceReq); ok {
				txID = req.TxID
				return true
			}
		}
		return false
	}) {
		t.Fatal("SliceReq never sent")
	}
	reply := msg.SliceResp{TxID: txID, Items: []msg.ItemReply{{Key: "remote"}}}
	r.inject(peer, reply)
	r.inject(peer, reply) // duplicate
	select {
	case out := <-done:
		if out.err != nil {
			t.Fatal(out.err)
		}
		if len(out.items) != 2 {
			t.Fatalf("items = %d (duplicate response double-counted?)", len(out.items))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("transaction never completed")
	}
}

// TestVVNeverRegresses: version vectors are monotone under any interleaving
// of replication, heartbeats and puts.
func TestVVNeverRegresses(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Millisecond})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Feed replication and heartbeats from two fake DCs.
	for dc := 1; dc <= 2; dc++ {
		wg.Add(1)
		go func(dc int) {
			defer wg.Done()
			ts := vclock.Timestamp(1)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ts += vclock.Timestamp(i%3 + 1)
				if i%2 == 0 {
					r.inject(netemu.NodeID{DC: dc, Partition: 0}, msg.Heartbeat{Time: ts})
				} else {
					r.inject(netemu.NodeID{DC: dc, Partition: 0}, msg.Replicate{V: &item.Version{
						Key: fmt.Sprintf("k%d", i%4), Value: []byte("x"),
						SrcReplica: dc, UpdateTime: ts, Deps: vclock.New(3),
					}})
				}
				time.Sleep(50 * time.Microsecond)
			}
		}(dc)
	}
	prev := r.srv.VV()
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		cur := r.srv.VV()
		if !prev.LessEq(cur) {
			close(stop)
			wg.Wait()
			t.Fatalf("VV regressed: %v -> %v", prev, cur)
		}
		prev = cur
	}
	close(stop)
	wg.Wait()
}

// TestDoubleCloseIsSafe: Close must be idempotent.
func TestDoubleCloseIsSafe(t *testing.T) {
	r := newRig(t, Config{HeartbeatInterval: time.Millisecond})
	r.srv.Close()
	r.srv.Close()
}

// TestPessimisticROTxExcludesUnstable: the pessimistic transactional
// snapshot hides received-but-unstable versions, unlike the optimistic one
// (the Fig. 3d mechanism).
func TestPessimisticROTxExcludesUnstable(t *testing.T) {
	r := newRig(t, Config{
		HeartbeatInterval:     time.Millisecond,
		DefaultMode:           Pessimistic,
		StabilizationInterval: time.Millisecond,
		NumPartitions:         2,
	})
	r.srv.Store().Insert(&item.Version{Key: "a", Value: []byte("stable"),
		SrcReplica: 1, UpdateTime: 1, Deps: vclock.VC{0, 0, 0}})
	fresh := &item.Version{Key: "a", Value: []byte("fresh"), SrcReplica: 1,
		UpdateTime: 50000, Deps: vclock.VC{0, 40000, 0}}
	r.inject(netemu.NodeID{DC: 1, Partition: 0}, msg.Replicate{V: fresh})
	if !waitUntil(t, time.Second, func() bool { return r.srv.VV().Get(1) >= 50000 }) {
		t.Fatal("replication not applied")
	}

	// Optimistic transaction sees the fresh version (its deps are covered
	// by the coordinator's VV).
	opt, err := r.srv.ROTx([]string{"a"}, vclock.New(3), Optimistic, func(string) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if string(opt[0].Value) != "fresh" {
		t.Fatalf("optimistic tx read %q", opt[0].Value)
	}

	// Pessimistic transaction hides it: GSS[1] is stuck at 0 because the
	// fake peer partition never stabilizes.
	pess, err := r.srv.ROTx([]string{"a"}, vclock.New(3), Pessimistic, func(string) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if string(pess[0].Value) != "stable" {
		t.Fatalf("pessimistic tx read %q, want the stable version", pess[0].Value)
	}
	if pess[0].Fresher != 1 {
		t.Fatalf("staleness not recorded: %+v", pess[0])
	}
}
