package harness

import (
	"context"
	"testing"
	"time"
)

func TestPartitionExperiment(t *testing.T) {
	sc := microScale()
	tab, err := PartitionExperiment(context.Background(), sc, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 (3 engines x 3 phases)", len(tab.Rows))
	}
}
