package harness

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/item"
	"repro/internal/keyspace"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// VisibilityOpts parameterizes one visibility probe run.
type VisibilityOpts struct {
	// Skew draws each node's clock offset from [-Skew, +Skew]; zero disables
	// skew entirely (it does not fall back to the scale default, because the
	// unskewed baseline is itself a measured variant here).
	Skew time.Duration
	// RawClocks reverts to raw skewed physical clocks (the pre-HLC ablation
	// variant); LeanStab switches GSS exchange to scalar HLC watermarks.
	RawClocks bool
	LeanStab  bool
	// Samples is the number of probe writes; zero means 200.
	Samples int
}

// VisibilityStats is the result of one visibility probe run. Arrival
// visibility is the time from a PUT returning at the origin DC until the
// update is covered by a remote server's version vector (an optimistic
// session could read it); stable visibility additionally waits for the
// remote GSS to cover it (a pessimistic session could read it).
type VisibilityStats struct {
	Samples              int
	VisP50, VisP99       time.Duration
	StableP50, StableP99 time.Duration
	// GSSLagMean/Max sample core.Server.GSSLag at the remote DC: how far its
	// aggregate-min stable snapshot trails its version vector across all
	// member DCs. Under clock skew this is the metric that blows up with raw
	// clocks (a DC whose clock runs behind pins the GSS entry) and stays
	// near the stabilization interval with hybrid clocks.
	GSSLagMean, GSSLagMax time.Duration
	// DeltaBytesPerVersion is the measured wire cost of the probe's update
	// stream under the varint-delta batch encoding, including batch headers
	// and envelope framing. AbsBytesPerVersion is the same stream's
	// per-version cost under the pre-HLC absolute encoding (version records
	// only, headers excluded — a floor that biases against delta, so
	// delta < absolute here is a conservative win). Both are measured at
	// deployed timestamp magnitude (see visibilityEpochOffset).
	DeltaBytesPerVersion, AbsBytesPerVersion float64
}

// visibilityEpochOffset rebases the probe's timestamps for the wire-cost
// measurement. Clocks in this codebase tick ns since process start, so a
// fraction-of-a-second-old test process emits 4-byte varint timestamps that
// no deployed process would: at wall-clock magnitude (a clock epoch years in
// the past, ~2^60 ns) absolute timestamps cost 9-byte varints while the
// batch deltas are unchanged — the offset cancels out of every delta. The
// rebase is applied uniformly to update times and nonzero dependency
// entries, so it models process age without touching the stream's shape.
const visibilityEpochOffset vclock.Timestamp = 1 << 60

// visibilityBatchSize groups probe versions into heartbeat-window-shaped
// batches for the wire measurement, matching repl's flush behaviour.
const visibilityBatchSize = 8

// VisibilityPoint runs one visibility probe: an HA-POCC cluster with a fast
// stabilization cadence, a writer session at DC 0, and per-write polling of
// a remote DC's version vector and GSS. It is shared by the poccbench
// "visibility" experiment and the root BenchmarkRemoteVisibility.
func VisibilityPoint(ctx context.Context, sc Scale, o VisibilityOpts) (VisibilityStats, error) {
	if sc.DCs < 2 {
		return VisibilityStats{}, fmt.Errorf("harness: visibility needs >= 2 DCs, got %d", sc.DCs)
	}
	samples := o.Samples
	if samples == 0 {
		samples = 200
	}
	c, err := cluster.New(cluster.Config{
		NumDCs:                sc.DCs,
		NumPartitions:         sc.Partitions,
		Engine:                cluster.HAPOCC,
		HeartbeatInterval:     time.Millisecond,
		StabilizationInterval: 5 * time.Millisecond,
		GCInterval:            100 * time.Millisecond,
		PutDepWait:            true,
		ClockSkew:             o.Skew,
		Latency:               scaledAWS(sc.LatencyScale),
		JitterFrac:            sc.JitterFrac,
		Seed:                  sc.Seed,
		RawPhysicalClocks:     o.RawClocks,
		LeanStabilization:     o.LeanStab,
	})
	if err != nil {
		return VisibilityStats{}, err
	}
	defer c.Close()

	table := keyspace.Build(sc.Partitions, sc.KeysPerPartition)
	c.SeedTable(table)
	sess, err := c.NewSession(0)
	if err != nil {
		return VisibilityStats{}, err
	}

	// Light background load: one writer per DC cycling through every
	// partition. A deployed system's client traffic continuously couples the
	// hybrid clocks across partitions (a PUT's dependency wait advances the
	// coordinator's clock past the session's dependencies); without it the
	// sequential probe below would be the only coupling path and the stable
	// visibility of each write would be gated on the probe's own pace
	// instead of the stabilization cadence.
	stop := make(chan struct{})
	var bgWG sync.WaitGroup
	defer func() { close(stop); bgWG.Wait() }()
	for dc := 0; dc < sc.DCs; dc++ {
		bg, err := c.NewSession(dc)
		if err != nil {
			return VisibilityStats{}, err
		}
		bgWG.Add(1)
		go func() {
			defer bgWG.Done()
			val := []byte("bg")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := table.Key(i%sc.Partitions, (i/sc.Partitions)%sc.KeysPerPartition)
				_ = bg.Put(key, val) // errors only matter during shutdown
				time.Sleep(time.Millisecond)
			}
		}()
	}

	poll := func(start time.Time, pred func() bool) (time.Duration, error) {
		for !pred() {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			if time.Since(start) > 10*time.Second {
				return 0, fmt.Errorf("harness: visibility probe timed out")
			}
			time.Sleep(50 * time.Microsecond)
		}
		return time.Since(start), nil
	}

	// Wire-cost accounting: replay the probe's update stream through the
	// binary codec in heartbeat-shaped batches and compare against the sum
	// of absolute per-version encodings (the pre-HLC format).
	var (
		buf      bytes.Buffer
		enc      = wire.NewBinaryEncoder(&buf)
		pending  []*item.Version
		seq      uint64
		absBytes int
	)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		hb := pending[0].UpdateTime
		for _, v := range pending {
			if v.UpdateTime > hb {
				hb = v.UpdateTime
			}
		}
		seq++
		return enc.Encode(wire.Envelope{
			Src: netemu.NodeID{DC: 0},
			Msg: msg.ReplicateBatch{Versions: pending, HBTime: hb, Epoch: 1, Seq: seq},
		})
	}

	value := make([]byte, sc.ValueSize)
	vis := make([]time.Duration, 0, samples)
	stable := make([]time.Duration, 0, samples)
	var lagSum, lagMax time.Duration
	const remoteDC = 1
	// A handful of unmeasured writes lets heartbeats, stabilization and the
	// session's dependency vector reach steady state first.
	for i := 0; i < samples+10; i++ {
		key := table.Key(i%sc.Partitions, i%sc.KeysPerPartition)
		p := c.PartitionOf(key)
		deps := sess.DV()
		ut, _, err := sess.PutMeta(key, value)
		if err != nil {
			return VisibilityStats{}, err
		}
		start := time.Now()
		if i < 10 {
			continue
		}
		for d := range deps {
			if deps[d] != 0 {
				deps[d] += visibilityEpochOffset
			}
		}
		pending = append(pending, &item.Version{
			Key: key, Value: value, SrcReplica: 0,
			UpdateTime: ut + visibilityEpochOffset, Deps: deps,
		})
		absBytes += len(wire.AppendVersion(nil, pending[len(pending)-1]))
		if len(pending) >= visibilityBatchSize {
			if err := flush(); err != nil {
				return VisibilityStats{}, err
			}
			pending = pending[:0]
		}
		srv := c.Server(remoteDC, p)
		dv, err := poll(start, func() bool { return srv.VV().Get(0) >= ut })
		if err != nil {
			return VisibilityStats{}, err
		}
		vis = append(vis, dv)
		ds, err := poll(start, func() bool { return srv.GSS().Get(0) >= ut })
		if err != nil {
			return VisibilityStats{}, err
		}
		stable = append(stable, ds)
		if lag := srv.GSSLag(); lag > 0 {
			lagSum += lag
			if lag > lagMax {
				lagMax = lag
			}
		}
	}
	if err := flush(); err != nil {
		return VisibilityStats{}, err
	}

	st := VisibilityStats{Samples: len(vis)}
	st.VisP50, st.VisP99 = percentiles(vis)
	st.StableP50, st.StableP99 = percentiles(stable)
	st.GSSLagMean = lagSum / time.Duration(len(vis))
	st.GSSLagMax = lagMax
	st.DeltaBytesPerVersion = float64(buf.Len()) / float64(len(vis))
	st.AbsBytesPerVersion = float64(absBytes) / float64(len(vis))
	return st, nil
}

// percentiles returns the p50 and p99 of ds (ds is sorted in place).
func percentiles(ds []time.Duration) (p50, p99 time.Duration) {
	if len(ds) == 0 {
		return 0, 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := func(p int) int {
		i := len(ds) * p / 100
		if i >= len(ds) {
			i = len(ds) - 1
		}
		return i
	}
	return ds[idx(50)], ds[idx(99)]
}

// FigureVisibility measures update-visibility latency across the clock and
// stabilization variants: raw physical clocks with full-vector GSS exchange
// (the pre-HLC system), hybrid clocks with full vectors, and hybrid clocks
// with the lean watermark exchange — each with and without ±50 ms emulated
// clock skew. The hybrid rows should be skew-insensitive; the watermark rows
// should match the vector rows on visibility while sending fewer bytes.
func FigureVisibility(ctx context.Context, sc Scale) (*Table, error) {
	variants := []struct {
		name      string
		raw, lean bool
	}{
		{"raw+vector", true, false},
		{"hlc+vector", false, false},
		{"hlc+watermark", false, true},
	}
	t := &Table{
		ID:    "visibility",
		Title: "HA-POCC: remote visibility and GSS lag by clock/stabilization variant",
		Columns: []string{"variant", "skew ms", "vis p50 ms", "vis p99 ms",
			"stable p50 ms", "stable p99 ms", "gss lag ms", "B/ver delta", "B/ver abs"},
	}
	for _, v := range variants {
		for _, sk := range []time.Duration{0, 50 * time.Millisecond} {
			st, err := VisibilityPoint(ctx, sc, VisibilityOpts{
				Skew: sk, RawClocks: v.raw, LeanStab: v.lean,
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				v.name, fmtMs(sk), fmtMs(st.VisP50), fmtMs(st.VisP99),
				fmtMs(st.StableP50), fmtMs(st.StableP99), fmtMs(st.GSSLagMean),
				fmt.Sprintf("%.1f", st.DeltaBytesPerVersion),
				fmt.Sprintf("%.1f", st.AbsBytesPerVersion),
			})
		}
	}
	return t, nil
}
