package harness

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"repro/internal/cluster"
)

// bothEngines is the comparison pair of the evaluation.
var bothEngines = []cluster.Engine{cluster.Cure, cluster.POCC}

// Fig1a — throughput while varying the number of partitions (GET:PUT = p:1).
func Fig1a(ctx context.Context, sc Scale, partitions []int) (*Table, error) {
	if len(partitions) == 0 {
		partitions = []int{2, 4, 8, 16, 24, 32}
	}
	t := &Table{
		ID:      "fig1a",
		Title:   "Throughput (ops/s) vs #partitions, GET:PUT = p:1",
		Columns: []string{"partitions", "Cure* ops/s", "POCC ops/s", "POCC/Cure*"},
	}
	for _, p := range partitions {
		var thr [2]float64
		for i, eng := range bothEngines {
			pt, err := run(ctx, runSpec{scale: sc, engine: eng, partitions: p,
				kind: getPutWorkload, mixParam: p})
			if err != nil {
				return nil, fmt.Errorf("fig1a %s p=%d: %w", eng, p, err)
			}
			thr[i] = pt.Throughput
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(p), fmtOps(thr[0]), fmtOps(thr[1]), fmt.Sprintf("%.2f", ratio(thr[1], thr[0])),
		})
	}
	return t, nil
}

// GetPutSweep runs the 32:1 GET:PUT load sweep shared by Fig. 1b, 2a and 2b:
// for each client count it measures both systems and returns the raw points
// (Cure* then POCC per count).
func GetPutSweep(ctx context.Context, sc Scale, clientsPerPart []int) ([][2]Point, error) {
	if len(clientsPerPart) == 0 {
		clientsPerPart = []int{8, 16, 32, 64}
	}
	out := make([][2]Point, 0, len(clientsPerPart))
	for _, cpp := range clientsPerPart {
		var pair [2]Point
		for i, eng := range bothEngines {
			pt, err := run(ctx, runSpec{scale: sc, engine: eng,
				kind: getPutWorkload, mixParam: 32,
				clients: cpp * sc.Partitions * sc.DCs})
			if err != nil {
				return nil, fmt.Errorf("getput sweep %s cpp=%d: %w", eng, cpp, err)
			}
			pt.Param = cpp
			pair[i] = pt
		}
		out = append(out, pair)
	}
	return out, nil
}

// Fig1b — average response time vs throughput (32 partitions, 32:1).
func Fig1b(points [][2]Point) *Table {
	t := &Table{
		ID:      "fig1b",
		Title:   "Avg. response time vs throughput, 32:1 GET:PUT",
		Columns: []string{"clients/part", "Cure* ops/s", "Cure* resp ms", "POCC ops/s", "POCC resp ms"},
	}
	for _, pair := range points {
		cure, pocc := pair[0], pair[1]
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(cure.Param),
			fmtOps(cure.Throughput), fmtMs(cure.MeanResp),
			fmtOps(pocc.Throughput), fmtMs(pocc.MeanResp),
		})
	}
	return t
}

// Fig2a — POCC blocking probability and mean blocking time vs throughput.
func Fig2a(points [][2]Point) *Table {
	t := &Table{
		ID:      "fig2a",
		Title:   "POCC blocking behaviour, 32:1 GET:PUT",
		Columns: []string{"clients/part", "ops/s", "block prob", "block time ms"},
	}
	for _, pair := range points {
		pocc := pair[1]
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(pocc.Param), fmtOps(pocc.Throughput),
			fmtProb(pocc.BlockProb), fmtMs(pocc.MeanBlock),
		})
	}
	return t
}

// Fig2b — Cure* staleness vs throughput: % old and % unmerged GETs, fresher
// and unmerged version counts.
func Fig2b(points [][2]Point) *Table {
	t := &Table{
		ID:      "fig2b",
		Title:   "Cure* data staleness, 32:1 GET:PUT",
		Columns: []string{"clients/part", "ops/s", "% old", "% unmerged", "# fresher", "# unmerged"},
	}
	for _, pair := range points {
		cure := pair[0]
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(cure.Param), fmtOps(cure.Throughput),
			fmtPct(cure.GetStale.PercentOld()), fmtPct(cure.GetStale.PercentUnmerged()),
			fmt.Sprintf("%.2f", cure.GetStale.MeanFresher()),
			fmt.Sprintf("%.2f", cure.GetStale.MeanUnmergedVersions()),
		})
	}
	return t
}

// Fig1c — throughput vs GET:PUT ratio on the default partition count.
func Fig1c(ctx context.Context, sc Scale, ratios []int) (*Table, error) {
	if len(ratios) == 0 {
		ratios = []int{32, 16, 8, 4, 2, 1}
	}
	t := &Table{
		ID:      "fig1c",
		Title:   "Throughput vs GET:PUT ratio",
		Columns: []string{"ratio", "Cure* ops/s", "POCC ops/s", "POCC/Cure*"},
	}
	for _, r := range ratios {
		var thr [2]float64
		for i, eng := range bothEngines {
			pt, err := run(ctx, runSpec{scale: sc, engine: eng,
				kind: getPutWorkload, mixParam: r})
			if err != nil {
				return nil, fmt.Errorf("fig1c %s ratio=%d: %w", eng, r, err)
			}
			thr[i] = pt.Throughput
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d:1", r), fmtOps(thr[0]), fmtOps(thr[1]),
			fmt.Sprintf("%.2f", ratio(thr[1], thr[0])),
		})
	}
	return t, nil
}

// Fig3a — throughput while varying the number of partitions contacted per
// RO-TX (RO-TX + PUT workload).
func Fig3a(ctx context.Context, sc Scale, fanouts []int) (*Table, error) {
	if len(fanouts) == 0 {
		fanouts = []int{1, 2, 4, 8, 16, 24, 32}
	}
	t := &Table{
		ID:      "fig3a",
		Title:   "Throughput vs partitions contacted per RO-TX",
		Columns: []string{"partitions/tx", "Cure* ops/s", "POCC ops/s", "POCC/Cure*"},
	}
	for _, f := range fanouts {
		if f > sc.Partitions {
			continue
		}
		var thr [2]float64
		for i, eng := range bothEngines {
			pt, err := run(ctx, runSpec{scale: sc, engine: eng,
				kind: roTxWorkload, mixParam: f})
			if err != nil {
				return nil, fmt.Errorf("fig3a %s fanout=%d: %w", eng, f, err)
			}
			thr[i] = pt.Throughput
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(f), fmtOps(thr[0]), fmtOps(thr[1]),
			fmt.Sprintf("%.2f", ratio(thr[1], thr[0])),
		})
	}
	return t, nil
}

// TxSweep runs the transactional load sweep shared by Fig. 3b, 3c and 3d:
// RO-TX over half the partitions + PUT, sweeping clients per partition.
func TxSweep(ctx context.Context, sc Scale, clientsPerPart []int) ([][2]Point, error) {
	if len(clientsPerPart) == 0 {
		clientsPerPart = []int{32, 64, 96, 128, 160, 192}
	}
	fanout := sc.Partitions / 2
	if fanout < 1 {
		fanout = 1
	}
	out := make([][2]Point, 0, len(clientsPerPart))
	for _, cpp := range clientsPerPart {
		var pair [2]Point
		for i, eng := range bothEngines {
			pt, err := run(ctx, runSpec{scale: sc, engine: eng,
				kind: roTxWorkload, mixParam: fanout,
				clients: cpp * sc.Partitions * sc.DCs})
			if err != nil {
				return nil, fmt.Errorf("tx sweep %s cpp=%d: %w", eng, cpp, err)
			}
			pt.Param = cpp
			pair[i] = pt
		}
		out = append(out, pair)
	}
	return out, nil
}

// Fig3b — throughput and RO-TX response time vs clients per partition.
func Fig3b(points [][2]Point) *Table {
	t := &Table{
		ID:      "fig3b",
		Title:   "Throughput and RO-TX response time vs clients/partition (tx over N/2 partitions)",
		Columns: []string{"clients/part", "Cure* ops/s", "Cure* tx ms", "POCC ops/s", "POCC tx ms"},
	}
	for _, pair := range points {
		cure, pocc := pair[0], pair[1]
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(cure.Param),
			fmtOps(cure.Throughput), fmtMs(cure.TxResp),
			fmtOps(pocc.Throughput), fmtMs(pocc.TxResp),
		})
	}
	return t
}

// Fig3c — POCC blocking behaviour under the transactional workload.
func Fig3c(points [][2]Point) *Table {
	t := &Table{
		ID:      "fig3c",
		Title:   "POCC blocking behaviour, RO-TX + PUT workload",
		Columns: []string{"clients/part", "ops/s", "block prob", "block time ms"},
	}
	for _, pair := range points {
		pocc := pair[1]
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(pocc.Param), fmtOps(pocc.Throughput),
			fmtProb(pocc.BlockProb), fmtMs(pocc.MeanBlock),
		})
	}
	return t
}

// Fig3d — staleness of transactional reads: % old items returned by POCC and
// Cure*, % unmerged for Cure*. (In POCC transactional old and unmerged
// coincide, §V-C.)
func Fig3d(points [][2]Point) *Table {
	t := &Table{
		ID:      "fig3d",
		Title:   "Transactional data staleness: POCC vs Cure*",
		Columns: []string{"clients/part", "Cure* % old", "Cure* % unmerged", "POCC % old"},
	}
	for _, pair := range points {
		cure, pocc := pair[0], pair[1]
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(cure.Param),
			fmtPct(cure.TxStale.PercentOld()), fmtPct(cure.TxStale.PercentUnmerged()),
			fmtPct(pocc.TxStale.PercentOld()),
		})
	}
	return t
}

// AblationStabilization sweeps Cure*'s stabilization interval, the
// throughput-vs-staleness trade-off the paper points out in §V-B.
func AblationStabilization(ctx context.Context, sc Scale, intervals []time.Duration) (*Table, error) {
	if len(intervals) == 0 {
		intervals = []time.Duration{time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond, 100 * time.Millisecond}
	}
	t := &Table{
		ID:      "ablation-stab",
		Title:   "Cure*: stabilization interval vs throughput and staleness",
		Columns: []string{"interval ms", "ops/s", "% old", "% unmerged"},
	}
	for _, iv := range intervals {
		pt, err := run(ctx, runSpec{scale: sc, engine: cluster.Cure,
			kind: getPutWorkload, mixParam: 8, stabilization: iv})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmtMs(iv), fmtOps(pt.Throughput),
			fmtPct(pt.GetStale.PercentOld()), fmtPct(pt.GetStale.PercentUnmerged()),
		})
	}
	return t, nil
}

// AblationHeartbeat sweeps POCC's heartbeat interval Δ against the blocking
// time of stalled operations: heartbeats bound how long a blocked request
// waits when the missing dependency does not exist.
func AblationHeartbeat(ctx context.Context, sc Scale, intervals []time.Duration) (*Table, error) {
	if len(intervals) == 0 {
		intervals = []time.Duration{500 * time.Microsecond, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond}
	}
	t := &Table{
		ID:      "ablation-hb",
		Title:   "POCC: heartbeat interval vs blocking",
		Columns: []string{"interval ms", "ops/s", "block prob", "block time ms"},
	}
	for _, iv := range intervals {
		pt, err := run(ctx, runSpec{scale: sc, engine: cluster.POCC,
			kind: getPutWorkload, mixParam: 4, heartbeat: iv})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmtMs(iv), fmtOps(pt.Throughput), fmtProb(pt.BlockProb), fmtMs(pt.MeanBlock),
		})
	}
	return t, nil
}

// AblationClockSkew sweeps the emulated NTP skew against PUT latency, once
// with raw skewed physical clocks and once with hybrid clocks. With raw
// clocks the PUT clock-wait (Algorithm 2 line 7) stretches with the skew
// while correctness is unaffected; the hybrid variant absorbs remote
// timestamps into its logical component, so its wait — and hence its
// response time — should stay flat across the sweep (skew-insensitive).
func AblationClockSkew(ctx context.Context, sc Scale, skews []time.Duration) (*Table, error) {
	if len(skews) == 0 {
		skews = []time.Duration{0, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond}
	}
	t := &Table{
		ID:      "ablation-skew",
		Title:   "POCC: clock skew vs throughput and response time, raw vs hybrid clocks",
		Columns: []string{"skew ms", "raw ops/s", "raw resp ms", "hlc ops/s", "hlc resp ms"},
	}
	for _, sk := range skews {
		row := []string{fmtMs(sk)}
		for _, raw := range []bool{true, false} {
			spec := runSpec{scale: sc, engine: cluster.POCC, kind: getPutWorkload,
				mixParam: 2, rawClocks: raw}
			if sk == 0 {
				spec.clockSkew = -1
			} else {
				spec.clockSkew = sk
			}
			pt, err := run(ctx, spec)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtOps(pt.Throughput), fmtMs(pt.MeanResp))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationThinkTime sweeps the client think time against POCC's blocking
// probability: longer think times give servers time to receive missing
// dependencies before the next request (§V-A).
func AblationThinkTime(ctx context.Context, sc Scale, thinks []time.Duration) (*Table, error) {
	if len(thinks) == 0 {
		thinks = []time.Duration{100 * time.Microsecond, 500 * time.Microsecond, time.Millisecond, 5 * time.Millisecond}
	}
	t := &Table{
		ID:      "ablation-think",
		Title:   "POCC: think time vs blocking probability",
		Columns: []string{"think ms", "ops/s", "block prob"},
	}
	for _, th := range thinks {
		pt, err := run(ctx, runSpec{scale: sc, engine: cluster.POCC,
			kind: getPutWorkload, mixParam: 4, thinkTime: th})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmtMs(th), fmtOps(pt.Throughput), fmtProb(pt.BlockProb)})
	}
	return t, nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
