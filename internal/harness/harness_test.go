package harness

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

// microScale keeps harness tests fast: tiny cluster, tiny windows.
func microScale() Scale {
	return Scale{
		DCs: 2, Partitions: 2, KeysPerPartition: 8, ValueSize: 8,
		ThinkTime: 200 * time.Microsecond, LatencyScale: 0.005, JitterFrac: 0.1,
		Warmup: 30 * time.Millisecond, Measure: 120 * time.Millisecond,
		ClientsPerPart: 2, Seed: 7,
	}
}

func TestRunProducesThroughput(t *testing.T) {
	pt, err := run(context.Background(), runSpec{
		scale: microScale(), engine: cluster.POCC, kind: getPutWorkload, mixParam: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Throughput <= 0 {
		t.Fatalf("throughput = %v", pt.Throughput)
	}
	if pt.Errors != 0 {
		t.Fatalf("errors = %d", pt.Errors)
	}
	if pt.MeanResp <= 0 {
		t.Fatal("mean response time must be positive")
	}
	if pt.Messages == 0 {
		t.Fatal("replication traffic must be counted")
	}
}

func TestRunTxWorkload(t *testing.T) {
	pt, err := run(context.Background(), runSpec{
		scale: microScale(), engine: cluster.Cure, kind: roTxWorkload, mixParam: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Throughput <= 0 {
		t.Fatal("no transactional throughput")
	}
	if pt.TxResp <= 0 {
		t.Fatal("RO-TX latency not recorded")
	}
	if pt.TxStale.Reads == 0 {
		t.Fatal("transactional staleness not recorded")
	}
}

func TestFig1aTableShape(t *testing.T) {
	tab, err := Fig1a(context.Background(), microScale(), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Rows[0]) != len(tab.Columns) {
		t.Fatalf("table shape wrong: %+v", tab)
	}
}

func TestSweepsAndDerivedTables(t *testing.T) {
	points, err := GetPutSweep(context.Background(), microScale(), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0][0].Engine != cluster.Cure || points[0][1].Engine != cluster.POCC {
		t.Fatal("sweep must return (Cure*, POCC) pairs")
	}
	for _, tab := range []*Table{Fig1b(points), Fig2a(points), Fig2b(points)} {
		if len(tab.Rows) != 1 {
			t.Fatalf("%s rows = %d", tab.ID, len(tab.Rows))
		}
	}
}

func TestTxSweepAndDerivedTables(t *testing.T) {
	points, err := TxSweep(context.Background(), microScale(), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []*Table{Fig3b(points), Fig3c(points), Fig3d(points)} {
		if len(tab.Rows) != 1 {
			t.Fatalf("%s rows = %d", tab.ID, len(tab.Rows))
		}
	}
}

func TestFig3aSkipsOversizedFanout(t *testing.T) {
	tab, err := Fig3a(context.Background(), microScale(), []int{1, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("fanout beyond partition count must be skipped, rows = %d", len(tab.Rows))
	}
}

func TestAblations(t *testing.T) {
	sc := microScale()
	ctx := context.Background()
	if _, err := AblationStabilization(ctx, sc, []time.Duration{2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationHeartbeat(ctx, sc, []time.Duration{time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationClockSkew(ctx, sc, []time.Duration{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationThinkTime(ctx, sc, []time.Duration{200 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}
}

func TestTableFprint(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	var sb strings.Builder
	tab.Fprint(func(format string, args ...any) { fmt.Fprintf(&sb, format, args...) })
	out := sb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "bb") {
		t.Fatalf("rendered table: %q", out)
	}
}

func TestFig1cTableShape(t *testing.T) {
	tab, err := Fig1c(context.Background(), microScale(), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || tab.Rows[0][0] != "2:1" {
		t.Fatalf("table = %+v", tab)
	}
}

func TestScalesAreSane(t *testing.T) {
	for _, sc := range []Scale{CIScale(), MediumScale(), PaperScale()} {
		if sc.DCs < 2 || sc.Partitions < 1 || sc.KeysPerPartition < 1 {
			t.Fatalf("scale %+v", sc)
		}
		if sc.Measure <= 0 || sc.ClientsPerPart <= 0 {
			t.Fatalf("scale %+v", sc)
		}
	}
}
