package harness

import (
	"context"
	"strings"
	"testing"
)

// TestRecoveryDrill runs the crash-recovery scenario at CI scale: the table
// must carry both phases, the restarted server must have replayed versions,
// and the drill's own convergence check must have passed (it errors
// otherwise).
func TestRecoveryDrill(t *testing.T) {
	sc := CIScale()
	sc.Partitions = 2
	sc.KeysPerPartition = 16
	sc.ClientsPerPart = 4
	tab, err := RecoveryDrill(context.Background(), sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (before/after)", len(tab.Rows))
	}
	if got := tab.Rows[1][3]; got == "0" {
		t.Fatalf("after-recovery row reports no recovered versions: %v", tab.Rows[1])
	}
	var sb strings.Builder
	tab.Fprint(func(format string, args ...any) { sb.WriteString(format) })
	if sb.Len() == 0 {
		t.Fatal("table did not render")
	}
}
