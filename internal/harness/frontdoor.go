package harness

import (
	"context"
	"fmt"
	"sort"
	"time"

	occ "repro"
	"repro/internal/client"
	"repro/internal/kvserver"
)

// FrontDoor measures the serving path itself — the same store behind three
// client shapes:
//
//   - "text": the legacy line protocol, one synchronous round trip at a
//     time on one connection (the pre-front-door baseline),
//   - "binary-sync": the binary front door driven synchronously, isolating
//     the codec win from the pipelining win,
//   - "binary-pipelined": one connection, one session, a window of
//     in-flight requests (the tentpole configuration), and
//   - "binary-pooled": a small connection pool multiplexing many sessions,
//     the production shape.
//
// Each row reports completed operations, throughput, and client-observed
// p50/p99 latency over the same measurement window, on a 1:1 GET:PUT mix.
func FrontDoor(ctx context.Context, sc Scale, dur time.Duration) (*Table, error) {
	if dur <= 0 {
		dur = sc.Measure
	}
	store, err := occ.Open(occ.Config{
		DataCenters: 2, Partitions: sc.Partitions, Engine: occ.POCC,
		Latency: occ.UniformProfile(20*time.Microsecond, 500*time.Microsecond),
		Seed:    sc.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("frontdoor: %w", err)
	}
	defer store.Close()
	srv, err := kvserver.Serve(store, "127.0.0.1", 0)
	if err != nil {
		return nil, fmt.Errorf("frontdoor: %w", err)
	}
	defer srv.Close()
	addr := srv.Addr(0)

	t := &Table{
		ID:    "frontdoor",
		Title: "Serving-path comparison (1:1 GET:PUT, one data center)",
		Columns: []string{"mode", "conns", "sessions", "window", "ops",
			"kops_per_sec", "p50_us", "p99_us"},
	}

	value := make([]byte, sc.ValueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	text, err := frontDoorText(ctx, addr, value, dur)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, text)
	sync1, err := frontDoorBinary(ctx, addr, value, dur, 1, 1, 1)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, sync1)
	piped, err := frontDoorBinary(ctx, addr, value, dur, 1, 1, 256)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, piped)
	pooled, err := frontDoorBinary(ctx, addr, value, dur, 4, 16, 64)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, pooled)
	return t, nil
}

// frontDoorText drives the legacy protocol: one blocking round trip at a
// time.
func frontDoorText(ctx context.Context, addr string, value []byte, dur time.Duration) ([]string, error) {
	c, err := kvserver.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("frontdoor text: %w", err)
	}
	defer func() { _ = c.Close() }()
	var lats []time.Duration
	deadline := time.Now().Add(dur)
	val := string(value)
	for i := 0; time.Now().Before(deadline) && ctx.Err() == nil; i++ {
		key := fmt.Sprintf("fd%d", i%1024)
		start := time.Now()
		if i%2 == 0 {
			err = c.Put(key, val)
		} else {
			_, _, err = c.Get(key)
		}
		if err != nil {
			return nil, fmt.Errorf("frontdoor text: %w", err)
		}
		lats = append(lats, time.Since(start))
	}
	return frontDoorRow("text", 1, 1, 1, lats, dur), nil
}

// frontDoorBinary drives the binary front door with `sessions` sessions
// multiplexed over `conns` connections, each keeping `window` requests in
// flight.
func frontDoorBinary(ctx context.Context, addr string, value []byte, dur time.Duration, conns, sessions, window int) ([]string, error) {
	pool, err := client.DialPool(client.PoolConfig{Addr: addr, Conns: conns})
	if err != nil {
		return nil, fmt.Errorf("frontdoor binary: %w", err)
	}
	defer pool.Close()

	mode := "binary-sync"
	if window > 1 && conns == 1 {
		mode = "binary-pipelined"
	} else if window > 1 {
		mode = "binary-pooled"
	}

	type result struct {
		lats []time.Duration
		err  error
	}
	results := make(chan result, sessions)
	deadline := time.Now().Add(dur)
	for s := 0; s < sessions; s++ {
		go func(id int) {
			sess := pool.Session()
			type inflight struct {
				start time.Time
				call  *client.Call
			}
			var lats []time.Duration
			pending := make([]inflight, 0, window)
			drainOne := func() error {
				in := pending[0]
				pending = pending[1:]
				if _, err := in.call.Wait(); err != nil {
					return err
				}
				lats = append(lats, time.Since(in.start))
				return nil
			}
			for i := 0; time.Now().Before(deadline) && ctx.Err() == nil; i++ {
				key := fmt.Sprintf("fd%d-%d", id, i%1024)
				var call *client.Call
				start := time.Now()
				if i%2 == 0 {
					call = sess.PutAsync(key, value)
				} else {
					call = sess.GetAsync(key)
				}
				pending = append(pending, inflight{start, call})
				for len(pending) >= window {
					if err := drainOne(); err != nil {
						results <- result{nil, err}
						return
					}
				}
			}
			for len(pending) > 0 {
				if err := drainOne(); err != nil {
					results <- result{nil, err}
					return
				}
			}
			results <- result{lats, nil}
		}(s)
	}
	var lats []time.Duration
	for s := 0; s < sessions; s++ {
		r := <-results
		if r.err != nil {
			return nil, fmt.Errorf("frontdoor %s: %w", mode, r.err)
		}
		lats = append(lats, r.lats...)
	}
	return frontDoorRow(mode, conns, sessions, window, lats, dur), nil
}

func frontDoorRow(mode string, conns, sessions, window int, lats []time.Duration, dur time.Duration) []string {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	return []string{
		mode,
		fmt.Sprintf("%d", conns),
		fmt.Sprintf("%d", sessions),
		fmt.Sprintf("%d", window),
		fmt.Sprintf("%d", len(lats)),
		fmt.Sprintf("%.1f", float64(len(lats))/dur.Seconds()/1000),
		fmt.Sprintf("%.1f", float64(pct(0.50))/float64(time.Microsecond)),
		fmt.Sprintf("%.1f", float64(pct(0.99))/float64(time.Microsecond)),
	}
}
