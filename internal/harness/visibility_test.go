package harness

import (
	"context"
	"testing"
	"time"
)

// TestVisibilityPoint smoke-tests the shared visibility probe at CI scale:
// stats must be internally consistent and the delta wire encoding must beat
// the pre-HLC absolute encoding on the probe's own update stream.
func TestVisibilityPoint(t *testing.T) {
	sc := CIScale()
	st, err := VisibilityPoint(context.Background(), sc, VisibilityOpts{Samples: 40})
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != 40 {
		t.Fatalf("got %d samples, want 40", st.Samples)
	}
	if st.VisP50 <= 0 || st.VisP99 < st.VisP50 {
		t.Fatalf("arrival visibility out of order: p50 %v p99 %v", st.VisP50, st.VisP99)
	}
	// Stable visibility waits on everything arrival visibility waits on,
	// plus stabilization; the sorted coupling makes this hold per-quantile.
	if st.StableP50 < st.VisP50 || st.StableP99 < st.VisP99 {
		t.Fatalf("stable visibility below arrival visibility: vis %v/%v stable %v/%v",
			st.VisP50, st.VisP99, st.StableP50, st.StableP99)
	}
	if st.DeltaBytesPerVersion <= 0 || st.DeltaBytesPerVersion >= st.AbsBytesPerVersion {
		t.Fatalf("delta encoding (%.1f B/version) does not beat absolute (%.1f B/version)",
			st.DeltaBytesPerVersion, st.AbsBytesPerVersion)
	}
	t.Logf("vis p50/p99 %v/%v, stable p50/p99 %v/%v, gss lag mean/max %v/%v, B/version delta/abs %.1f/%.1f",
		st.VisP50, st.VisP99, st.StableP50, st.StableP99,
		st.GSSLagMean, st.GSSLagMax, st.DeltaBytesPerVersion, st.AbsBytesPerVersion)
}

// TestVisibilityPointLeanWatermark checks the watermark variant converges:
// lean stabilization must not stall stable visibility even under skew.
func TestVisibilityPointLeanWatermark(t *testing.T) {
	sc := CIScale()
	st, err := VisibilityPoint(context.Background(), sc, VisibilityOpts{
		Samples: 30, LeanStab: true, Skew: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.StableP99 <= 0 || st.StableP99 > 5*time.Second {
		t.Fatalf("lean stable visibility implausible: p99 %v", st.StableP99)
	}
	t.Logf("lean: vis p99 %v, stable p99 %v, gss lag mean %v", st.VisP99, st.StableP99, st.GSSLagMean)
}
