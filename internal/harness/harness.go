// Package harness regenerates every figure of the paper's evaluation
// (§V): the GET/PUT scalability, response-time, write-intensity, blocking
// and staleness experiments (Fig. 1-2) and the transactional experiments
// (Fig. 3), plus ablations over the design parameters the paper discusses.
// Experiments run against the emulated geo-deployment; the Scale controls
// whether a run is CI-sized (seconds) or paper-sized (minutes).
package harness

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/keyspace"
	"repro/internal/metrics"
	"repro/internal/netemu"
	"repro/internal/workload"
)

// Scale bundles the knobs that shrink an experiment without changing its
// structure.
type Scale struct {
	DCs              int
	Partitions       int // default partition count (figure sweeps override)
	KeysPerPartition int
	ValueSize        int
	ThinkTime        time.Duration
	LatencyScale     float64 // multiplier on the AWS latency matrix
	JitterFrac       float64
	ClockSkew        time.Duration
	Warmup           time.Duration
	Measure          time.Duration
	ClientsPerPart   int // clients per partition per DC for "max throughput" runs
	Seed             uint64
}

// CIScale finishes each experiment point in about a second; used by the
// bench_test.go benchmarks.
func CIScale() Scale {
	return Scale{
		DCs: 3, Partitions: 4, KeysPerPartition: 64, ValueSize: 8,
		ThinkTime: time.Millisecond, LatencyScale: 0.02, JitterFrac: 0.1,
		ClockSkew: 200 * time.Microsecond,
		Warmup:    200 * time.Millisecond, Measure: 700 * time.Millisecond,
		ClientsPerPart: 16, Seed: 42,
	}
}

// MediumScale sits between CI and paper scale: a few seconds per point with
// enough load to push the servers toward saturation, where the paper's
// blocking and staleness dynamics appear.
func MediumScale() Scale {
	return Scale{
		DCs: 3, Partitions: 8, KeysPerPartition: 4096, ValueSize: 8,
		ThinkTime: 2 * time.Millisecond, LatencyScale: 0.1, JitterFrac: 0.1,
		ClockSkew: 500 * time.Microsecond,
		Warmup:    500 * time.Millisecond, Measure: 2 * time.Second,
		ClientsPerPart: 48, Seed: 42,
	}
}

// PaperScale approximates the paper's setup (3 DCs, 32 partitions, zipf-0.99
// over 1M keys/partition is shrunk to 100k to bound memory, 25 ms think
// time, full AWS latencies). Full sweeps take minutes per figure.
func PaperScale() Scale {
	return Scale{
		DCs: 3, Partitions: 32, KeysPerPartition: 100_000, ValueSize: 8,
		ThinkTime: 25 * time.Millisecond, LatencyScale: 1.0, JitterFrac: 0.1,
		ClockSkew: time.Millisecond,
		Warmup:    2 * time.Second, Measure: 5 * time.Second,
		ClientsPerPart: 64, Seed: 42,
	}
}

// Point is one measured configuration of one system.
type Point struct {
	Engine     cluster.Engine
	Param      int // sweep parameter (partitions, ratio, clients, ...)
	Throughput float64
	MeanResp   time.Duration
	TxResp     time.Duration
	BlockProb  float64
	MeanBlock  time.Duration
	GetStale   metrics.StalenessSnapshot
	TxStale    metrics.StalenessSnapshot
	Messages   uint64
	Errors     uint64
}

// workloadKind selects the paper's two workload families.
type workloadKind int

const (
	getPutWorkload workloadKind = iota + 1
	roTxWorkload
)

// runSpec fully describes one experiment point.
type runSpec struct {
	scale      Scale
	engine     cluster.Engine
	partitions int
	kind       workloadKind
	mixParam   int // GETs per PUT, or partitions per RO-TX
	clients    int // total clients; 0 = ClientsPerPart × partitions × DCs
	// overrides (ablations); zero means engine default
	stabilization time.Duration
	heartbeat     time.Duration
	thinkTime     time.Duration // zero means scale.ThinkTime
	clockSkew     time.Duration // negative means zero skew, zero means scale default
	rawClocks     bool          // revert to raw skewed physical clocks (pre-HLC ablation)
	leanStab      bool          // scalar HLC watermark stabilization instead of full vectors
}

// run executes one experiment point.
func run(ctx context.Context, spec runSpec) (Point, error) {
	sc := spec.scale
	partitions := spec.partitions
	if partitions == 0 {
		partitions = sc.Partitions
	}
	hb := spec.heartbeat
	if hb == 0 {
		hb = time.Millisecond
	}
	stab := spec.stabilization
	if stab == 0 && spec.engine == cluster.Cure {
		stab = 5 * time.Millisecond
	}
	skew := sc.ClockSkew
	if spec.clockSkew > 0 {
		skew = spec.clockSkew
	} else if spec.clockSkew < 0 {
		skew = 0
	}
	think := sc.ThinkTime
	if spec.thinkTime != 0 {
		think = spec.thinkTime
	}

	c, err := cluster.New(cluster.Config{
		NumDCs:                sc.DCs,
		NumPartitions:         partitions,
		Engine:                spec.engine,
		HeartbeatInterval:     hb,
		StabilizationInterval: stab,
		GCInterval:            100 * time.Millisecond,
		PutDepWait:            true,
		ClockSkew:             skew,
		Latency:               scaledAWS(sc.LatencyScale),
		JitterFrac:            sc.JitterFrac,
		Seed:                  sc.Seed,
		RawPhysicalClocks:     spec.rawClocks,
		LeanStabilization:     spec.leanStab,
	})
	if err != nil {
		return Point{}, err
	}
	defer c.Close()

	table := keyspace.Build(partitions, sc.KeysPerPartition)
	c.SeedTable(table)
	zipf := workload.NewZipf(sc.KeysPerPartition, 0.99)

	clients := spec.clients
	if clients == 0 {
		clients = sc.ClientsPerPart * partitions * sc.DCs
	}

	newGen := func(i int) workload.Generator {
		switch spec.kind {
		case roTxWorkload:
			return workload.NewROTxMix(table, zipf, spec.mixParam, sc.ValueSize)
		default:
			return workload.NewGetPutMix(table, zipf, spec.mixParam, sc.ValueSize)
		}
	}
	newSess := func(i int) workload.Session {
		s, errSess := c.NewSession(i % sc.DCs)
		if errSess != nil {
			panic(errSess) // layout is validated above; cannot happen
		}
		return s
	}

	// Snapshot server-side metrics when the measurement window opens so the
	// warmup does not pollute blocking/staleness statistics.
	baseCh := make(chan cluster.Aggregate, 1)
	msgsCh := make(chan uint64, 1)
	timer := time.AfterFunc(sc.Warmup, func() {
		baseCh <- c.Metrics()
		msgsCh <- c.Messages()
	})
	defer timer.Stop()

	res, err := workload.Run(ctx, workload.RunnerConfig{
		Clients:      clients,
		NewSession:   newSess,
		NewGenerator: newGen,
		ThinkTime:    think,
		Warmup:       sc.Warmup,
		Measure:      sc.Measure,
		Seed:         sc.Seed,
	})
	if err != nil {
		return Point{}, err
	}

	var base cluster.Aggregate
	var baseMsgs uint64
	select {
	case base = <-baseCh:
		baseMsgs = <-msgsCh
	default: // run was cancelled before the warmup elapsed
	}
	agg := c.Metrics()
	blocking := agg.Blocking()
	blocking = blocking.Sub(base.Blocking())

	p := Point{
		Engine:     spec.engine,
		Param:      spec.mixParam,
		Throughput: res.Throughput(),
		MeanResp:   res.AllLatency.Mean(),
		TxResp:     res.TxLatency.Mean(),
		BlockProb:  blocking.Probability(),
		MeanBlock:  blocking.MeanBlockTime(),
		GetStale:   agg.GetStale.Sub(base.GetStale),
		TxStale:    agg.TxStale.Sub(base.TxStale),
		Messages:   c.Messages() - baseMsgs,
		Errors:     res.Errors,
	}
	return p, nil
}

// scaledAWS maps the public latency scale onto the cluster AWS profile.
func scaledAWS(scale float64) netemu.LatencyFunc {
	if scale <= 0 {
		return nil
	}
	return cluster.AWSLatency(scale)
}

// Table is a printable experiment result, one row per sweep point.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(write func(format string, args ...any)) {
	write("== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, col := range t.Columns {
		widths[i] = len(col)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for i, col := range t.Columns {
		write("%-*s  ", widths[i], col)
	}
	write("\n")
	for _, row := range t.Rows {
		for i, cell := range row {
			write("%-*s  ", widths[i], cell)
		}
		write("\n")
	}
}

func fmtOps(v float64) string { return fmt.Sprintf("%.0f", v) }

func fmtMs(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}

func fmtPct(v float64) string { return fmt.Sprintf("%.3f%%", v) }

func fmtProb(v float64) string { return fmt.Sprintf("%.2e", v) }
