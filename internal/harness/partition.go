package harness

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/keyspace"
	"repro/internal/workload"
)

// newPhaseRand builds a deterministic per-client random source.
func newPhaseRand(seed uint64, dc, i int) *rand.Rand {
	return rand.New(rand.NewPCG(seed, uint64(dc*1000+i)))
}

// PartitionExperiment quantifies system behaviour before, during and after
// an inter-DC network partition — the paper's stated future work ("we plan
// to quantitatively assess the performance and behavior of POCC in presence
// of network partitions"). For each engine it runs a GET/PUT workload in
// three equal phases (healthy, partitioned between DC0 and DC1, healed) and
// reports per-phase completed operations, errors and fallback counts.
//
// Expected outcome: plain POCC completes the partition phase only for
// operations that do not hit a missing dependency (requests on severed
// dependencies block until the heal); HA-POCC falls back and keeps
// completing every operation; Cure* is unaffected but stale.
func PartitionExperiment(ctx context.Context, sc Scale, phase time.Duration) (*Table, error) {
	if phase <= 0 {
		phase = 500 * time.Millisecond
	}
	t := &Table{
		ID:    "partition",
		Title: "Behaviour across a network partition (phases: healthy / partitioned / healed)",
		Columns: []string{"engine", "phase", "ops", "errors", "blocked",
			"fallbacks"},
	}
	for _, eng := range []cluster.Engine{cluster.Cure, cluster.POCC, cluster.HAPOCC} {
		rows, err := partitionRun(ctx, sc, eng, phase)
		if err != nil {
			return nil, fmt.Errorf("partition %s: %w", eng, err)
		}
		t.Rows = append(t.Rows, rows...)
	}
	return t, nil
}

type phaseCounters struct {
	ops    uint64
	errors uint64
}

func partitionRun(ctx context.Context, sc Scale, eng cluster.Engine, phaseDur time.Duration) ([][]string, error) {
	c, err := cluster.New(cluster.Config{
		NumDCs:                sc.DCs,
		NumPartitions:         sc.Partitions,
		Engine:                eng,
		HeartbeatInterval:     time.Millisecond,
		StabilizationInterval: stabilizationFor(eng),
		GCInterval:            100 * time.Millisecond,
		PutDepWait:            true,
		BlockTimeout:          blockTimeoutFor(eng, phaseDur),
		ClockSkew:             sc.ClockSkew,
		Latency:               scaledAWS(sc.LatencyScale),
		JitterFrac:            sc.JitterFrac,
		Seed:                  sc.Seed,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	table := keyspace.Build(sc.Partitions, sc.KeysPerPartition)
	c.SeedTable(table)
	zipf := workload.NewZipf(sc.KeysPerPartition, 0.99)

	const clientsPerDC = 8
	var phases [3]phaseCounters
	phaseIdx := func(start time.Time) int {
		i := int(time.Since(start) / phaseDur)
		if i > 2 {
			i = 2
		}
		return i
	}

	var mu sync.Mutex
	var sessions []*sessionProbe
	var wg sync.WaitGroup
	stop := make(chan struct{})
	start := time.Now()

	for dc := 0; dc < sc.DCs; dc++ {
		for i := 0; i < clientsPerDC; i++ {
			sess, errSess := c.NewSession(dc)
			if errSess != nil {
				return nil, errSess
			}
			probe := &sessionProbe{sess: sess}
			mu.Lock()
			sessions = append(sessions, probe)
			mu.Unlock()
			wg.Add(1)
			go func(dc, i int, probe *sessionProbe) {
				defer wg.Done()
				gen := workload.NewGetPutMix(table, zipf, 4, sc.ValueSize)
				rng := newPhaseRand(sc.Seed, dc, i)
				for {
					select {
					case <-stop:
						return
					case <-ctx.Done():
						return
					default:
					}
					op := gen.Next(rng)
					var errOp error
					switch op.Kind {
					case workload.OpGet:
						_, errOp = probe.sess.Get(op.Keys[0])
					case workload.OpPut:
						errOp = probe.sess.Put(op.Keys[0], op.Value)
					default:
						_, errOp = probe.sess.ROTx(op.Keys)
					}
					idx := phaseIdx(start)
					mu.Lock()
					if errOp != nil {
						phases[idx].errors++
					} else {
						phases[idx].ops++
					}
					mu.Unlock()
					select {
					case <-stop:
						return
					case <-time.After(sc.ThinkTime):
					}
				}
			}(dc, i, probe)
		}
	}

	// Phase transitions: cut after one phase, heal after two.
	timer1 := time.AfterFunc(phaseDur, func() {
		if net := c.Network(); net != nil {
			net.PartitionDCs(0, 1, true)
		}
	})
	defer timer1.Stop()
	timer2 := time.AfterFunc(2*phaseDur, func() {
		if net := c.Network(); net != nil {
			net.PartitionDCs(0, 1, false)
		}
	})
	defer timer2.Stop()

	select {
	case <-time.After(3*phaseDur + 100*time.Millisecond):
	case <-ctx.Done():
	}
	close(stop)
	// Heal before joining the clients: plain-POCC requests blocked on a
	// severed dependency only return once the partition heals.
	if net := c.Network(); net != nil {
		net.PartitionDCs(0, 1, false)
	}
	wg.Wait()

	var fallbacks uint64
	for _, p := range sessions {
		fallbacks += p.sess.Fallbacks()
	}
	blocked := c.Metrics().Blocking().Blocked

	names := []string{"healthy", "partitioned", "healed"}
	rows := make([][]string, 0, 3)
	for i, name := range names {
		fb, bl := "-", "-"
		if i == 2 { // cumulative counters reported once, on the final row
			fb = fmt.Sprintf("%d", fallbacks)
			bl = fmt.Sprintf("%d", blocked)
		}
		rows = append(rows, []string{
			eng.String(), name,
			fmt.Sprintf("%d", phases[i].ops),
			fmt.Sprintf("%d", phases[i].errors),
			bl, fb,
		})
	}
	return rows, nil
}

// sessionProbe lets the experiment read per-session fallback counters after
// the run.
type sessionProbe struct {
	sess interface {
		Get(string) ([]byte, error)
		Put(string, []byte) error
		ROTx([]string) (map[string][]byte, error)
		Fallbacks() uint64
	}
}

func stabilizationFor(eng cluster.Engine) time.Duration {
	switch eng {
	case cluster.Cure:
		return 5 * time.Millisecond
	case cluster.HAPOCC:
		return 20 * time.Millisecond // frequent enough to bound fallback staleness in a short run
	default:
		return 0
	}
}

func blockTimeoutFor(eng cluster.Engine, phase time.Duration) time.Duration {
	if eng != cluster.HAPOCC {
		return 0
	}
	bt := phase / 10
	if bt < 10*time.Millisecond {
		bt = 10 * time.Millisecond
	}
	return bt
}
