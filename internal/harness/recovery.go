package harness

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/keyspace"
	"repro/internal/workload"
)

// RecoveryDrill is the crash-recovery scenario enabled by the durable
// storage engine: a POCC deployment with WAL-backed servers serves a
// GET/PUT workload in three phases — before the crash, immediately after a
// partition server is killed and reopened from its data directory, and
// after a second full workload round — and the drill verifies the restarted
// replica came back with its chains, that the cluster converges, and how
// throughput moves across the phases.
//
// dataDir is the durable storage root (a test passes t.TempDir()).
func RecoveryDrill(ctx context.Context, sc Scale, dataDir string) (*Table, error) {
	partitions := sc.Partitions
	c, err := cluster.New(cluster.Config{
		NumDCs:            sc.DCs,
		NumPartitions:     partitions,
		Engine:            cluster.POCC,
		HeartbeatInterval: time.Millisecond,
		GCInterval:        50 * time.Millisecond,
		PutDepWait:        true,
		ClockSkew:         sc.ClockSkew,
		Latency:           scaledAWS(sc.LatencyScale),
		JitterFrac:        sc.JitterFrac,
		Seed:              sc.Seed,
		DataDir:           dataDir,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	table := keyspace.Build(partitions, sc.KeysPerPartition)
	c.SeedTable(table)
	zipf := workload.NewZipf(sc.KeysPerPartition, 0.99)
	clients := sc.ClientsPerPart * partitions * sc.DCs

	phase := func(label string) (workload.Result, error) {
		res, err := workload.Run(ctx, workload.RunnerConfig{
			Clients: clients,
			NewSession: func(i int) workload.Session {
				s, errSess := c.NewSession(i % sc.DCs)
				if errSess != nil {
					panic(errSess) // layout validated above; cannot happen
				}
				return s
			},
			NewGenerator: func(i int) workload.Generator {
				return workload.NewGetPutMix(table, zipf, 4, sc.ValueSize)
			},
			ThinkTime: sc.ThinkTime,
			Warmup:    sc.Warmup,
			Measure:   sc.Measure,
			Seed:      sc.Seed,
		})
		if err != nil {
			return res, fmt.Errorf("recovery drill %s phase: %w", label, err)
		}
		return res, nil
	}

	t := &Table{
		ID:      "recovery",
		Title:   "Crash-recovery drill (durable engine): throughput across a partition-server restart",
		Columns: []string{"phase", "ops/s", "errors", "recovered versions"},
	}
	addRow := func(label string, res workload.Result, recovered int) {
		t.Rows = append(t.Rows, []string{
			label, fmtOps(res.Throughput()), strconv.FormatUint(res.Errors, 10), strconv.Itoa(recovered),
		})
	}

	before, err := phase("before-crash")
	if err != nil {
		return nil, err
	}
	addRow("before crash", before, 0)

	// Kill and recover the first partition server of DC 0. Sessions created
	// by the next phase route to the recovered instance transparently.
	if err := c.RestartServer(0, 0); err != nil {
		return nil, err
	}
	recovered := c.Server(0, 0).Store().Stats()
	if recovered.Versions == 0 {
		return nil, fmt.Errorf("recovery drill: dc0-p0 restarted empty — WAL replay failed")
	}

	after, err := phase("after-recovery")
	if err != nil {
		return nil, err
	}
	addRow("after recovery", after, recovered.Versions)
	if err := c.StorageErr(); err != nil {
		return nil, fmt.Errorf("recovery drill: %w", err)
	}

	// Convergence epilogue: every DC must agree on the head of every key the
	// recovered partition owns (spot-checked; the cluster tests do the
	// exhaustive version).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if converged(c, table, sc.DCs) {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("recovery drill: replicas did not converge after the restart")
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
	return t, nil
}

// converged reports whether every DC agrees on the chain heads of the
// recovered partition's keys.
func converged(c *cluster.Cluster, table *keyspace.Table, dcs int) bool {
	for _, key := range table.AllKeys(0) {
		h0 := c.Server(0, 0).Store().Head(key)
		for dc := 1; dc < dcs; dc++ {
			h := c.Server(dc, 0).Store().Head(key)
			if (h0 == nil) != (h == nil) {
				return false
			}
			if h0 != nil && !h0.Same(h) {
				return false
			}
		}
	}
	return true
}
