package cluster

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"repro/internal/causaltest"
	"repro/internal/keyspace"
)

// stressConfig drives the randomized causal-consistency stress test: several
// sessions per DC issue random GET/PUT/RO-TX operations against a jittery
// multi-DC cluster while the model-based checker validates every result.
type stressConfig struct {
	engine      Engine
	dcs         int
	partitions  int
	keys        int // keys per partition
	sessions    int // sessions per DC
	opsPer      int
	txEvery     int // issue a RO-TX every txEvery ops (0 = never)
	putEvery    int // issue a PUT every putEvery ops
	seed        uint64
	partitioned bool // flap one inter-DC link mid-run
}

func runStress(t *testing.T, cfg stressConfig) {
	t.Helper()
	c := newCluster(t, Config{
		NumDCs: cfg.dcs, NumPartitions: cfg.partitions, Engine: cfg.engine,
		HeartbeatInterval: time.Millisecond,
		Latency:           UniformLatency(50*time.Microsecond, 2*time.Millisecond),
		JitterFrac:        0.5,
		PutDepWait:        true,
		Seed:              cfg.seed,
	})
	tbl := keyspace.Build(cfg.partitions, cfg.keys)
	c.SeedTable(tbl)
	reg := causaltest.NewRegistry()

	var flapWG sync.WaitGroup
	stopFlap := make(chan struct{})
	if cfg.partitioned {
		flapWG.Add(1)
		go func() {
			defer flapWG.Done()
			down := false
			for {
				select {
				case <-stopFlap:
					if down {
						c.Network().PartitionDCs(0, 1, false)
					}
					return
				case <-time.After(25 * time.Millisecond):
					down = !down
					c.Network().PartitionDCs(0, 1, down)
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for dc := 0; dc < cfg.dcs; dc++ {
		for si := 0; si < cfg.sessions; si++ {
			sess, err := c.NewSession(dc)
			if err != nil {
				t.Fatal(err)
			}
			cs := causaltest.NewSession(reg, sess, sessionName(dc, si))
			wg.Add(1)
			go func(dc, si int, cs *causaltest.Session) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(cfg.seed, uint64(dc*1000+si)))
				for op := 0; op < cfg.opsPer; op++ {
					switch {
					case cfg.txEvery > 0 && op%cfg.txEvery == cfg.txEvery-1:
						keys := make([]string, 0, 3)
						for p := 0; p < cfg.partitions && len(keys) < 3; p++ {
							keys = append(keys, tbl.Key(p, int(rng.Uint64N(uint64(cfg.keys)))))
						}
						if _, err := cs.ROTx(keys); err != nil {
							t.Errorf("dc%d s%d ROTx: %v", dc, si, err)
							return
						}
					case op%cfg.putEvery == cfg.putEvery-1:
						key := tbl.Key(int(rng.Uint64N(uint64(cfg.partitions))), int(rng.Uint64N(uint64(cfg.keys))))
						if err := cs.Put(key, []byte{byte(dc), byte(op)}); err != nil {
							t.Errorf("dc%d s%d Put: %v", dc, si, err)
							return
						}
					default:
						key := tbl.Key(int(rng.Uint64N(uint64(cfg.partitions))), int(rng.Uint64N(uint64(cfg.keys))))
						if _, err := cs.Get(key); err != nil {
							t.Errorf("dc%d s%d Get: %v", dc, si, err)
							return
						}
					}
				}
			}(dc, si, cs)
		}
	}
	wg.Wait()
	close(stopFlap)
	flapWG.Wait()

	for _, v := range reg.Violations() {
		t.Error(v)
	}

	// Convergence epilogue: after traffic quiesces, all DCs agree on heads.
	if !waitUntil(t, 10*time.Second, func() bool {
		for p := 0; p < cfg.partitions; p++ {
			for r := 0; r < cfg.keys; r++ {
				key := tbl.Key(p, r)
				h0 := c.Server(0, p).Store().Head(key)
				for dc := 1; dc < cfg.dcs; dc++ {
					h := c.Server(dc, p).Store().Head(key)
					if (h0 == nil) != (h == nil) {
						return false
					}
					if h0 != nil && !h0.Same(h) {
						return false
					}
				}
			}
		}
		return true
	}) {
		t.Fatal("replicas did not converge after quiescence")
	}
}

func sessionName(dc, si int) string {
	return "dc" + string(rune('0'+dc)) + "-s" + string(rune('0'+si))
}

func TestCausalityStressPOCC(t *testing.T) {
	runStress(t, stressConfig{
		engine: POCC, dcs: 3, partitions: 4, keys: 8,
		sessions: 4, opsPer: 150, txEvery: 10, putEvery: 3, seed: 101,
	})
}

func TestCausalityStressCure(t *testing.T) {
	runStress(t, stressConfig{
		engine: Cure, dcs: 3, partitions: 4, keys: 8,
		sessions: 4, opsPer: 150, txEvery: 10, putEvery: 3, seed: 202,
	})
}

func TestCausalityStressHAPOCC(t *testing.T) {
	runStress(t, stressConfig{
		engine: HAPOCC, dcs: 3, partitions: 4, keys: 8,
		sessions: 4, opsPer: 150, txEvery: 10, putEvery: 3, seed: 303,
	})
}

// TestCausalityStressWriteHeavy uses a 1:1 mix, the paper's most
// write-intensive configuration, where out-of-order replication is most
// likely.
func TestCausalityStressWriteHeavy(t *testing.T) {
	runStress(t, stressConfig{
		engine: POCC, dcs: 3, partitions: 2, keys: 4,
		sessions: 6, opsPer: 200, txEvery: 0, putEvery: 2, seed: 404,
	})
}

// TestCausalityStressHotKeys hammers a tiny keyspace to maximize conflicting
// concurrent writes and LWW arbitration.
func TestCausalityStressHotKeys(t *testing.T) {
	runStress(t, stressConfig{
		engine: POCC, dcs: 3, partitions: 2, keys: 1,
		sessions: 6, opsPer: 150, txEvery: 5, putEvery: 2, seed: 505,
	})
}

// TestCausalityStressUnderPartitionFlap verifies HA-POCC preserves causal
// semantics while an inter-DC link flaps: sessions fall back and get
// promoted, but never observe a causality violation. Fallback resets the
// session's dependency state, which the checker mirrors by construction
// (sessions keep their own expectations — a fallback may legitimately show
// older data, so this test uses fresh checked state per session via the
// registry's per-write contexts only).
func TestCausalityStressUnderPartitionFlap(t *testing.T) {
	if testing.Short() {
		t.Skip("partition-flap stress is slow")
	}
	c := newCluster(t, Config{
		NumDCs: 2, NumPartitions: 2, Engine: HAPOCC,
		HeartbeatInterval:     time.Millisecond,
		StabilizationInterval: 5 * time.Millisecond,
		BlockTimeout:          20 * time.Millisecond,
		Latency:               UniformLatency(50*time.Microsecond, time.Millisecond),
		Seed:                  606,
	})
	tbl := keyspace.Build(2, 4)
	c.SeedTable(tbl)

	stop := make(chan struct{})
	var flapWG sync.WaitGroup
	flapWG.Add(1)
	go func() {
		defer flapWG.Done()
		down := false
		for {
			select {
			case <-stop:
				if down {
					c.Network().PartitionDCs(0, 1, false)
				}
				return
			case <-time.After(30 * time.Millisecond):
				down = !down
				c.Network().PartitionDCs(0, 1, down)
			}
		}
	}()

	var wg sync.WaitGroup
	fallbacks := make([]uint64, 4)
	for i := 0; i < 4; i++ {
		sess, err := c.NewSession(i % 2)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(606, uint64(i)))
			for op := 0; op < 100; op++ {
				key := tbl.Key(int(rng.Uint64N(2)), int(rng.Uint64N(4)))
				if op%3 == 0 {
					if err := sess.Put(key, []byte{byte(i), byte(op)}); err != nil {
						t.Errorf("client %d put: %v", i, err)
						return
					}
				} else {
					if _, err := sess.Get(key); err != nil {
						t.Errorf("client %d get: %v", i, err)
						return
					}
				}
			}
			fallbacks[i] = sess.Fallbacks()
		}(i)
	}
	wg.Wait()
	close(stop)
	flapWG.Wait()
	// Every operation completed despite the flapping link — the availability
	// the recovery mechanism buys. (Fallbacks may or may not trigger
	// depending on timing; the hard requirement is zero failed operations.)
	t.Logf("fallbacks per client: %v", fallbacks)
}
