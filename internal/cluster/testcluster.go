package cluster

import (
	"testing"
	"time"

	"repro/internal/netemu"
)

// Topology is the declarative shape of a test deployment: how many data
// centers and partition servers to start, and how much headroom to reserve
// for runtime growth (AddDC on the DC axis, SplitPartition on the partition
// axis). It is the one front door test code and harnesses use to spin up
// clusters — the knobs that are per-experiment rather than per-shape ride
// in as functional options.
type Topology struct {
	// DCs and Partitions are the initial layout (both default to 1).
	DCs        int
	Partitions int
	// MaxDCs / MaxPartitions reserve growth capacity; 0 fixes the axis at
	// its initial size.
	MaxDCs        int
	MaxPartitions int
}

// Option tweaks the deployment configuration a Topology expands to.
type Option func(*Config)

// WithEngine selects the protocol preset (default POCC).
func WithEngine(e Engine) Option {
	return func(c *Config) { c.Engine = e }
}

// WithSeed fixes the deployment's randomness seed (default 1).
func WithSeed(seed uint64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithLatency injects inter-node latency with uniform jitter.
func WithLatency(l netemu.LatencyFunc, jitterFrac float64) Option {
	return func(c *Config) {
		c.Latency = l
		c.JitterFrac = jitterFrac
	}
}

// WithHeartbeat sets the replication heartbeat cadence (tests usually want
// a fast one so convergence waits stay short).
func WithHeartbeat(d time.Duration) Option {
	return func(c *Config) { c.HeartbeatInterval = d }
}

// WithClockSkew draws each node's clock offset from [-skew, +skew].
func WithClockSkew(skew time.Duration) Option {
	return func(c *Config) { c.ClockSkew = skew }
}

// WithRawClocks reverts every node to a raw skewed physical clock — the
// pre-HLC ablation variant whose PUT clock-wait is skew-sensitive.
func WithRawClocks() Option {
	return func(c *Config) { c.RawPhysicalClocks = true }
}

// WithLeanStabilization switches the GSS exchange to scalar HLC watermarks
// on most ticks (Okapi-style lean stabilization).
func WithLeanStabilization() Option {
	return func(c *Config) { c.LeanStabilization = true }
}

// WithDataDir makes every server durable (WAL-backed storage under dir),
// which also enables crash-restarts, replication catch-up, AddDC and the
// reshard bootstrap on durable history.
func WithDataDir(dir string) Option {
	return func(c *Config) { c.DataDir = dir }
}

// WithGC enables the garbage-collection exchange at the given cadence.
func WithGC(interval time.Duration) Option {
	return func(c *Config) { c.GCInterval = interval }
}

// WithTCP runs inter-node traffic over real loopback TCP.
func WithTCP() Option {
	return func(c *Config) { c.TCP = true }
}

// WithConfig is the escape hatch for knobs without a dedicated option; f
// runs last, over the fully assembled configuration.
func WithConfig(f func(*Config)) Option {
	return func(c *Config) { f(c) }
}

// NewTestCluster expands a Topology into a running deployment, fails the
// test on error, and registers the cluster's shutdown with the test's
// cleanup. Defaults beyond the Topology: POCC engine, seed 1, and
// everything else as Config's zero values.
func NewTestCluster(t testing.TB, topo Topology, opts ...Option) *Cluster {
	t.Helper()
	cfg := Config{
		NumDCs:        topo.DCs,
		NumPartitions: topo.Partitions,
		MaxDCs:        topo.MaxDCs,
		MaxPartitions: topo.MaxPartitions,
		Engine:        POCC,
		Seed:          1,
	}
	if cfg.NumDCs == 0 {
		cfg.NumDCs = 1
	}
	if cfg.NumPartitions == 0 {
		cfg.NumPartitions = 1
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("cluster: start %dx%d: %v", cfg.NumDCs, cfg.NumPartitions, err)
	}
	t.Cleanup(c.Close)
	return c
}
