package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/vclock"
)

// TestLeanStabilizationWatermark runs HA-POCC with the scalar watermark
// exchange under clock skew and checks that (a) the GSS still converges past
// new writes at every server — a watermark that under-claims (pinned by a
// zero or departed entry) would stall it — and (b) the stability invariant
// GSS ≤ VV holds at every sampled instant — a watermark that over-claims
// (raising entries past what the sender has actually seen) would break it.
func TestLeanStabilizationWatermark(t *testing.T) {
	const dcs, parts = 3, 2
	c := NewTestCluster(t, Topology{DCs: dcs, Partitions: parts},
		WithEngine(HAPOCC),
		WithLeanStabilization(),
		WithHeartbeat(time.Millisecond),
		WithClockSkew(5*time.Millisecond),
		WithConfig(func(cfg *Config) { cfg.StabilizationInterval = 2 * time.Millisecond }),
	)
	sess, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	var last vclock.Timestamp
	for i := 0; i < 20; i++ {
		ut, _, err := sess.PutMeta(fmt.Sprintf("lean-k%d", i), []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		if ut > last {
			last = ut
		}
	}
	invariant := func() {
		t.Helper()
		for dc := 0; dc < dcs; dc++ {
			for p := 0; p < parts; p++ {
				gss := c.Server(dc, p).GSS()
				vv := c.Server(dc, p).VV() // after GSS: VV only grows
				if !gss.LessEq(vv) {
					t.Fatalf("dc%d p%d: GSS %v overclaims past VV %v", dc, p, gss, vv)
				}
			}
		}
	}
	if !waitUntil(t, 10*time.Second, func() bool {
		invariant()
		for dc := 0; dc < dcs; dc++ {
			for p := 0; p < parts; p++ {
				if c.Server(dc, p).GSS().Get(0) < last {
					return false
				}
			}
		}
		return true
	}) {
		t.Fatalf("lean GSS never covered the writes: %+v", c.ReplicationStats())
	}
	invariant()
}

// TestHLCPutWaitSkewInsensitive pins satellite 3 at the cluster level: with
// hybrid clocks a session whose dependency carries a far-future remote
// timestamp (a fast origin clock) does not sleep out the skew on its next
// PUT — the hybrid clock absorbs the dependency into its logical component.
// The raw-clock ablation variant is exactly the configuration whose PUT
// clock-wait stretches with the skew (measured, not asserted, by the
// ablation-skew benchmark; asserting a lower bound here would be flaky).
func TestHLCPutWaitSkewInsensitive(t *testing.T) {
	const skew = 30 * time.Millisecond
	c := NewTestCluster(t, Topology{DCs: 2, Partitions: 1},
		WithHeartbeat(time.Millisecond),
		WithClockSkew(skew),
		WithConfig(func(cfg *Config) { cfg.PutDepWait = true }),
	)
	w, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put("hlc-dep", []byte("origin")); err != nil {
		t.Fatal(err)
	}
	r, err := c.NewSession(1)
	if err != nil {
		t.Fatal(err)
	}
	if !waitUntil(t, 10*time.Second, func() bool {
		v, err := r.Get("hlc-dep")
		return err == nil && v != nil
	}) {
		t.Fatal("the write never became visible at DC 1")
	}
	// The read above charged DC 0's (possibly far-ahead) timestamp into the
	// session's dependency vector; the dependent PUT must not sleep it out.
	start := time.Now()
	ut, _, err := r.PutMeta("hlc-dep2", []byte("dependent"))
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > skew/2 {
		t.Fatalf("dependent PUT took %v with hybrid clocks (skew %v): clock-wait is not skew-insensitive", d, skew)
	}
	if dep := r.DV().Get(0); ut <= dep {
		t.Fatalf("dependent PUT's timestamp %d does not dominate its dependency %d", ut, dep)
	}
}
