package cluster

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"repro/internal/causaltest"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/keyspace"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/vclock"
)

// TestMembershipJoinUnderLoad grows a 3-DC cluster to 4 while checked
// sessions keep writing: the joiner must bootstrap the pre-join history out
// of its siblings' WALs through catch-up (there is no other way for it to
// learn the old versions), announce itself Active, and then serve a checked
// workload of its own. Every replica — old and new — must converge to
// identical heads, with zero causal violations.
func TestMembershipJoinUnderLoad(t *testing.T) {
	const (
		dcs        = 3
		partitions = 2
		keys       = 8
		sessions   = 2
		opsPer     = 120
	)
	c := NewTestCluster(t, Topology{DCs: dcs, Partitions: partitions, MaxDCs: dcs + 1},
		WithHeartbeat(time.Millisecond),
		WithGC(20*time.Millisecond),
		WithLatency(UniformLatency(50*time.Microsecond, 2*time.Millisecond), 0.3),
		WithDataDir(t.TempDir()),
		WithSeed(2024),
		WithConfig(func(cfg *Config) { cfg.PutDepWait = true }))
	tbl := keyspace.Build(partitions, keys)
	c.SeedTable(tbl)
	reg := causaltest.NewRegistry()

	// Pre-join history: these writes are flushed and live only in the
	// original DCs' stores and WALs. The joiner can obtain them exclusively
	// through the catch-up bootstrap.
	preSess, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	pre := causaltest.NewSession(reg, preSess, "pre-join")
	for i := 0; i < 100; i++ {
		key := tbl.Key(i%partitions, i%keys)
		if err := pre.Put(key, []byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	runWorkload := func(wg *sync.WaitGroup, dc, si int, cs *causaltest.Session, seed uint64) {
		defer wg.Done()
		rng := rand.New(rand.NewPCG(seed, uint64(dc*1000+si)))
		for op := 0; op < opsPer; op++ {
			key := tbl.Key(int(rng.Uint64N(partitions)), int(rng.Uint64N(keys)))
			var err error
			switch {
			case op%10 == 9:
				ks := []string{tbl.Key(0, int(rng.Uint64N(keys))), tbl.Key(1, int(rng.Uint64N(keys)))}
				_, err = cs.ROTx(ks)
			case op%3 == 2:
				err = cs.Put(key, []byte{byte(dc), byte(op)})
			default:
				_, err = cs.Get(key)
			}
			if err != nil {
				t.Errorf("dc%d s%d op %d: %v", dc, si, op, err)
				return
			}
		}
	}

	var wg sync.WaitGroup
	for dc := 0; dc < dcs; dc++ {
		for si := 0; si < sessions; si++ {
			sess, err := c.NewSession(dc)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go runWorkload(&wg, dc, si, causaltest.NewSession(reg, sess, sessionName(dc, si)), 2024)
		}
	}

	// Grow the deployment mid-workload.
	time.Sleep(20 * time.Millisecond)
	newDC, err := c.AddDC()
	if err != nil {
		t.Fatal(err)
	}
	if newDC != dcs {
		t.Fatalf("joined DC got id %d, want %d", newDC, dcs)
	}
	if err := c.WaitForJoin(newDC, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < partitions; p++ {
		if !c.Server(newDC, p).Bootstrapped() {
			t.Fatalf("dc%d-p%d not bootstrapped after WaitForJoin", newDC, p)
		}
	}

	// The joiner is active: run a checked workload against it too.
	var joinWG sync.WaitGroup
	for si := 0; si < sessions; si++ {
		sess, err := c.NewSession(newDC)
		if err != nil {
			t.Fatal(err)
		}
		joinWG.Add(1)
		go runWorkload(&joinWG, newDC, si, causaltest.NewSession(reg, sess, sessionName(newDC, si)), 4242)
	}
	wg.Wait()
	joinWG.Wait()

	for _, v := range reg.Violations() {
		t.Error(v)
	}

	// The join must have been served out of the WALs: the pre-join history
	// cannot reach the new DC any other way.
	st := c.ReplicationStats()
	if st.CatchUpsServed == 0 || st.CatchUpsCompleted == 0 {
		t.Fatalf("joiner bootstrapped without catch-up rounds (%+v)", st)
	}

	// Every server's view must settle on the joiner being Active.
	if !waitUntil(t, 5*time.Second, func() bool {
		for dc := 0; dc <= dcs; dc++ {
			for p := 0; p < partitions; p++ {
				if c.Server(dc, p).Membership().Get(newDC) != msg.DCActive {
					return false
				}
			}
		}
		return true
	}) {
		t.Fatalf("membership views did not converge on dc%d being active", newDC)
	}

	// Convergence epilogue across all four DCs, pre-join keys included.
	if !waitUntil(t, 15*time.Second, func() bool {
		for p := 0; p < partitions; p++ {
			for r := 0; r < keys; r++ {
				key := tbl.Key(p, r)
				h0 := c.Server(0, p).Store().Head(key)
				for dc := 1; dc <= dcs; dc++ {
					h := c.Server(dc, p).Store().Head(key)
					if (h0 == nil) != (h == nil) {
						return false
					}
					if h0 != nil && !h0.Same(h) {
						return false
					}
				}
			}
		}
		return true
	}) {
		t.Fatalf("replicas did not converge after the join (catch-up stats %+v)", c.ReplicationStats())
	}
	if err := c.StorageErr(); err != nil {
		t.Fatal(err)
	}
}

// TestMembershipLeave shrinks a deployment under load: a DC with live
// history departs gracefully mid-workload. The survivors must hold its
// complete history (the final flush precedes the LeaveNotice on the same
// FIFO links), keep serving the checked workload, and — the part the paper's
// stabilization protocol makes delicate — keep advancing the GSS: a departed
// DC's frozen vector entry must not stall stable visibility.
func TestMembershipLeave(t *testing.T) {
	const (
		dcs        = 3
		partitions = 2
		keys       = 8
		opsPer     = 150
	)
	c := NewTestCluster(t, Topology{DCs: dcs, Partitions: partitions},
		WithEngine(HAPOCC),
		WithHeartbeat(time.Millisecond),
		WithDataDir(t.TempDir()),
		WithSeed(3030),
		WithConfig(func(cfg *Config) {
			cfg.StabilizationInterval = 5 * time.Millisecond
			cfg.PutDepWait = true
		}))
	tbl := keyspace.Build(partitions, keys)
	c.SeedTable(tbl)
	reg := causaltest.NewRegistry()

	// The departing DC writes history the survivors must retain.
	leaverSess, err := c.NewSession(2)
	if err != nil {
		t.Fatal(err)
	}
	leaver := causaltest.NewSession(reg, leaverSess, "leaver")
	for i := 0; i < 60; i++ {
		if err := leaver.Put(tbl.Key(i%partitions, i%keys), []byte(fmt.Sprintf("dc2-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for dc := 0; dc < 2; dc++ { // the surviving DCs keep the cluster busy
		sess, err := c.NewSession(dc)
		if err != nil {
			t.Fatal(err)
		}
		cs := causaltest.NewSession(reg, sess, sessionName(dc, 0))
		wg.Add(1)
		go func(dc int, cs *causaltest.Session) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(3030, uint64(dc)))
			for op := 0; op < opsPer; op++ {
				key := tbl.Key(int(rng.Uint64N(partitions)), int(rng.Uint64N(keys)))
				var err error
				if op%3 == 2 {
					err = cs.Put(key, []byte{byte(dc), byte(op)})
				} else {
					_, err = cs.Get(key)
				}
				if err != nil {
					t.Errorf("dc%d op %d: %v", dc, op, err)
					return
				}
			}
		}(dc, cs)
	}

	time.Sleep(30 * time.Millisecond)
	if err := c.RemoveDC(2); err != nil {
		t.Fatal(err)
	}
	// Sessions pinned to the departed DC fail permanently.
	if _, err := leaver.Get(tbl.Key(0, 0)); err == nil {
		t.Fatal("session on the departed DC kept working")
	}
	wg.Wait()

	for _, v := range reg.Violations() {
		t.Error(v)
	}

	// The survivors' views must mark dc2 departed (the notices may still be
	// in flight when the workload drains), and its slot is gone.
	if !waitUntil(t, 5*time.Second, func() bool {
		for dc := 0; dc < 2; dc++ {
			for p := 0; p < partitions; p++ {
				if c.Server(dc, p).Membership().Get(2) != msg.DCLeft {
					return false
				}
			}
		}
		return true
	}) {
		t.Fatalf("survivors never marked dc2 departed (dc0-p0 view %+v)", c.Server(0, 0).Membership())
	}
	if c.Server(2, 0) != nil {
		t.Fatal("departed DC still resolves a server")
	}
	if _, err := c.NewSession(2); err == nil {
		t.Fatal("NewSession against a departed DC must fail")
	}

	// Survivors hold the departed DC's history and agree on every head.
	if !waitUntil(t, 10*time.Second, func() bool {
		for p := 0; p < partitions; p++ {
			for r := 0; r < keys; r++ {
				key := tbl.Key(p, r)
				h0 := c.Server(0, p).Store().Head(key)
				h1 := c.Server(1, p).Store().Head(key)
				if (h0 == nil) != (h1 == nil) {
					return false
				}
				if h0 != nil && !h0.Same(h1) {
					return false
				}
			}
		}
		return true
	}) {
		t.Fatalf("survivors did not converge after the leave (%+v)", c.ReplicationStats())
	}

	// Stabilization must not stall: the GSS entries of the *surviving* DCs
	// keep advancing (heartbeats drive them), while the departed entry stays
	// frozen — and newly written stable data becomes visible, which is the
	// user-facing meaning of "the GSS still moves".
	before := c.Server(0, 0).GSS()
	if !waitUntil(t, 5*time.Second, func() bool {
		now := c.Server(0, 0).GSS()
		return now.Get(0) > before.Get(0) && now.Get(1) > before.Get(1)
	}) {
		t.Fatalf("GSS stalled after the leave: before %v, now %v", before, c.Server(0, 0).GSS())
	}
	// The departed entry first converges up to the leaver's final timestamp
	// (stabilization ticks fold the last VV advances in), then freezes for
	// good: wait for quiescence, then require it to hold.
	var frozen vclock.Timestamp
	if !waitUntil(t, 5*time.Second, func() bool {
		a := c.Server(0, 0).GSS().Get(2)
		time.Sleep(20 * time.Millisecond)
		b := c.Server(0, 0).GSS().Get(2)
		frozen = b
		return a == b
	}) {
		t.Fatal("departed DC's GSS entry never settled")
	}
	time.Sleep(50 * time.Millisecond)
	if got := c.Server(0, 0).GSS().Get(2); got != frozen {
		t.Fatalf("departed DC's GSS entry moved after the leave: %d -> %d", frozen, got)
	}
	// A departed DC contributes no replication lag.
	st := c.ReplicationStats()
	for dst, row := range st.LagPerLink {
		if row[2] != 0 {
			t.Fatalf("dc%d reports lag %v against the departed dc2", dst, row[2])
		}
	}
	if err := c.StorageErr(); err != nil {
		t.Fatal(err)
	}
}

// TestMembershipValidation pins the admin-facing error surface: joins need
// durability and headroom, leaves need a survivor.
func TestMembershipValidation(t *testing.T) {
	mem := NewTestCluster(t, Topology{DCs: 2, Partitions: 1, MaxDCs: 3},
		WithHeartbeat(time.Millisecond))
	if _, err := mem.AddDC(); err == nil {
		t.Fatal("AddDC on an in-memory cluster must fail (nothing to bootstrap from)")
	}

	c := NewTestCluster(t, Topology{DCs: 2, Partitions: 1},
		WithHeartbeat(time.Millisecond), WithDataDir(t.TempDir()), WithSeed(2))
	if _, err := c.AddDC(); err == nil {
		t.Fatal("AddDC without MaxDCs headroom must fail")
	}
	if err := c.RemoveDC(1); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveDC(1); err == nil {
		t.Fatal("double RemoveDC must fail")
	}
	if err := c.RemoveDC(0); err == nil {
		t.Fatal("removing the last DC must fail")
	}
	// A departed DC cannot be restarted (its slot is retired, not crashed),
	// and a slot that never joined has no server to restart — both must be
	// errors, not panics.
	if err := c.RestartServer(1, 0); err == nil {
		t.Fatal("RestartServer on a departed DC must fail")
	}
	if err := c.RestartServer(5, 0); err == nil {
		t.Fatal("RestartServer on a never-joined slot must fail")
	}
	if _, err := New(Config{NumDCs: 3, NumPartitions: 1, MaxDCs: 2, Engine: POCC}); err == nil {
		t.Fatal("MaxDCs below NumDCs must be rejected")
	}
}

// TestJoinerStabilizationGate pins, deterministically, that a joining
// server enters the stabilization protocol only after its bootstrap: until
// the active inbound link is synced, the joiner must not broadcast a single
// VVExchange (its half-empty version vector would drag the DC's GSS — an
// aggregate minimum — down to nothing). The remote sibling and the same-DC
// peer are bare recording endpoints, so the moment the gate opens is fully
// controlled by the heartbeat injected at the end.
func TestJoinerStabilizationGate(t *testing.T) {
	net := netemu.New(netemu.Config{})
	defer net.Close()

	type recorded struct {
		mu   sync.Mutex
		msgs []any
	}
	record := func(r *recorded) netemu.Handler {
		return func(src netemu.NodeID, m any) {
			r.mu.Lock()
			r.msgs = append(r.msgs, m)
			r.mu.Unlock()
		}
	}
	count := func(r *recorded, pred func(any) bool) int {
		r.mu.Lock()
		defer r.mu.Unlock()
		n := 0
		for _, m := range r.msgs {
			if pred(m) {
				n++
			}
		}
		return n
	}
	isVVX := func(m any) bool { _, ok := m.(msg.VVExchange); return ok }

	var remote, peer recorded
	remoteEP := net.Register(netemu.NodeID{DC: 0, Partition: 0}, record(&remote))
	net.Register(netemu.NodeID{DC: 1, Partition: 1}, record(&peer))
	joinerEP := net.Register(netemu.NodeID{DC: 1, Partition: 0}, nil)

	srv, err := core.NewServer(core.Config{
		ID:                    netemu.NodeID{DC: 1, Partition: 0},
		NumDCs:                2,
		NumPartitions:         2,
		Clock:                 clock.New(0),
		Endpoint:              joinerEP,
		DefaultMode:           core.Optimistic,
		HeartbeatInterval:     time.Millisecond,
		StabilizationInterval: time.Millisecond,
		CatchUp:               true,
		Joining:               true,
		Metrics:               &core.Metrics{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The remote sibling stays silent: the joiner must have asked to join,
	// and must NOT have entered stabilization.
	if !waitUntil(t, 2*time.Second, func() bool {
		return count(&remote, func(m any) bool { _, ok := m.(msg.JoinRequest); return ok }) > 0
	}) {
		t.Fatal("joiner never sent a JoinRequest")
	}
	time.Sleep(20 * time.Millisecond) // ~20 stabilization intervals
	if srv.Bootstrapped() {
		t.Fatal("joiner bootstrapped with a silent sibling")
	}
	if n := count(&peer, isVVX); n != 0 {
		t.Fatalf("joiner broadcast %d VVExchange(s) before its bootstrap", n)
	}

	// First contact from the sibling: nothing precedes this heartbeat in its
	// incarnation (seq 0, floor 0), so the link is adopted, the bootstrap
	// completes, and stabilization opens up.
	remoteEP.Send(netemu.NodeID{DC: 1, Partition: 0},
		msg.Heartbeat{Time: vclock.Timestamp(time.Now().UnixNano()), Epoch: 7, Seq: 0, Floor: 0})
	if !waitUntil(t, 2*time.Second, func() bool { return srv.Bootstrapped() }) {
		t.Fatal("joiner did not bootstrap after first contact")
	}
	if !waitUntil(t, 2*time.Second, func() bool { return count(&peer, isVVX) > 0 }) {
		t.Fatal("stabilization never started after the bootstrap")
	}
	// The completed join was announced on the replication links.
	if count(&remote, func(m any) bool { _, ok := m.(msg.MembershipUpdate); return ok }) == 0 {
		t.Fatal("joiner never announced itself Active")
	}
}

// TestMembershipJoinOverTCP smokes the join path on the real-TCP transport:
// AddDC must extend the live address directory (old nodes learn the new
// endpoints, new nodes learn everyone) and the joiner must bootstrap the
// pre-join history over actual loopback connections.
func TestMembershipJoinOverTCP(t *testing.T) {
	c := NewTestCluster(t, Topology{DCs: 2, Partitions: 2, MaxDCs: 3},
		WithHeartbeat(time.Millisecond),
		WithTCP(),
		WithDataDir(t.TempDir()),
		WithSeed(5050))
	sess, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := sess.Put(fmt.Sprintf("tcp-%d", i%8), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// The history must be *flushed* (sequenced batches on the wire) before
	// the join: a joiner that registers ahead of the origin's first flush
	// legitimately adopts the stream from batch one and needs no catch-up —
	// which would rob the assertion below of its teeth. Replication to dc1
	// proves the flushes happened.
	if !waitUntil(t, 5*time.Second, func() bool {
		for i := 0; i < 8; i++ {
			reply, err := c.ReadAt(1, fmt.Sprintf("tcp-%d", i))
			if err != nil || !reply.Exists {
				return false
			}
		}
		return true
	}) {
		t.Fatal("pre-join history never replicated to dc1")
	}
	dc, err := c.AddDC()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForJoin(dc, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	if !waitUntil(t, 10*time.Second, func() bool {
		for i := 0; i < 8; i++ {
			reply, err := c.ReadAt(dc, fmt.Sprintf("tcp-%d", i))
			if err != nil || !reply.Exists {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("TCP joiner never served the pre-join history (%+v)", c.ReplicationStats())
	}
	if st := c.ReplicationStats(); st.CatchUpsServed == 0 {
		t.Fatalf("TCP join without catch-up rounds (%+v)", st)
	}
}
