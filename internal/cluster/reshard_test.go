package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/keyspace"
	"repro/internal/vclock"
)

// TestSplitPartitionBasic splits a quiescent deployment and checks that the
// moved history survives and routing follows the new layout.
func TestSplitPartitionBasic(t *testing.T) {
	c := NewTestCluster(t, Topology{DCs: 3, Partitions: 2, MaxPartitions: 4},
		WithLatency(UniformLatency(50*time.Microsecond, 500*time.Microsecond), 0))

	s, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("split-k%d", i)
		if err := s.Put(keys[i], []byte("v-"+keys[i])); err != nil {
			t.Fatal(err)
		}
	}

	np, err := c.SplitPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	if np != 2 {
		t.Fatalf("new partition = %d, want 2", np)
	}
	if c.NumPartitions() != 3 {
		t.Fatalf("NumPartitions = %d, want 3", c.NumPartitions())
	}
	tbl := c.SlotTable()
	if tbl == nil || tbl.Epoch == 0 {
		t.Fatalf("slot table not installed after split: %+v", tbl)
	}
	if got := len(tbl.SlotsOwnedBy(np)); got == 0 {
		t.Fatal("split moved no slots to the new partition")
	}

	// Every key must still be readable from every DC — the moved ones now
	// served by the new owner.
	movedKeys := 0
	for _, k := range keys {
		if c.PartitionOf(k) == np {
			movedKeys++
		}
		for dc := 0; dc < 3; dc++ {
			sd, err := c.NewSession(dc)
			if err != nil {
				t.Fatal(err)
			}
			if !waitUntil(t, 5*time.Second, func() bool {
				v, errGet := sd.Get(k)
				return errGet == nil && string(v) == "v-"+k
			}) {
				t.Fatalf("dc%d lost %q (owner %d) after split", dc, k, c.PartitionOf(k))
			}
		}
	}
	if movedKeys == 0 {
		t.Fatal("no test key routed to the new partition; widen the key set")
	}

	// New writes to moved keys go through the new owner and replicate.
	for _, k := range keys {
		if c.PartitionOf(k) != np {
			continue
		}
		if err := s.Put(k, []byte("v2")); err != nil {
			t.Fatalf("put %q after split: %v", k, err)
		}
		for dc := 0; dc < 3; dc++ {
			sd, _ := c.NewSession(dc)
			if !waitUntil(t, 5*time.Second, func() bool {
				v, errGet := sd.Get(k)
				return errGet == nil && string(v) == "v2"
			}) {
				t.Fatalf("dc%d did not converge on post-split write to %q", dc, k)
			}
		}
		break
	}
}

// TestSplitPartitionDurable splits a durable deployment (the copy streams
// out of the donors' WALs) and restarts a new-partition server afterwards
// to check the inherited history is durable at the new owner.
func TestSplitPartitionDurable(t *testing.T) {
	c := NewTestCluster(t, Topology{DCs: 2, Partitions: 2, MaxPartitions: 3},
		WithDataDir(t.TempDir()))

	s, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 48)
	for i := range keys {
		keys[i] = fmt.Sprintf("durable-k%d", i)
		if err := s.Put(keys[i], []byte("d-"+keys[i])); err != nil {
			t.Fatal(err)
		}
	}
	np, err := c.SplitPartition(1)
	if err != nil {
		t.Fatal(err)
	}
	var moved string
	for _, k := range keys {
		if c.PartitionOf(k) == np {
			moved = k
			break
		}
	}
	if moved == "" {
		t.Fatal("no key moved to the new partition")
	}
	if err := c.RestartServer(0, np); err != nil {
		t.Fatal(err)
	}
	sd, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if !waitUntil(t, 5*time.Second, func() bool {
		v, errGet := sd.Get(moved)
		return errGet == nil && string(v) == "d-"+moved
	}) {
		t.Fatalf("restarted new owner lost inherited key %q", moved)
	}
}

// TestMoveSlots moves a slot range between existing partitions and checks
// history and routing follow.
func TestMoveSlots(t *testing.T) {
	c := NewTestCluster(t, Topology{DCs: 2, Partitions: 2})

	s, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 48)
	for i := range keys {
		keys[i] = fmt.Sprintf("move-k%d", i)
		if err := s.Put(keys[i], []byte("m-"+keys[i])); err != nil {
			t.Fatal(err)
		}
	}
	// Move every slot p0 owns to p1: p1 becomes the whole keyspace's owner.
	slots := c.routingMap().SlotsOwnedBy(0)
	if err := c.MoveSlots(slots, 1); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if got := c.PartitionOf(k); got != 1 {
			t.Fatalf("key %q still routed to %d after move", k, got)
		}
		for dc := 0; dc < 2; dc++ {
			sd, _ := c.NewSession(dc)
			if !waitUntil(t, 5*time.Second, func() bool {
				v, errGet := sd.Get(k)
				return errGet == nil && string(v) == "m-"+k
			}) {
				t.Fatalf("dc%d lost %q after slot move", dc, k)
			}
		}
	}
	if err := s.Put(keys[0], []byte("post-move")); err != nil {
		t.Fatalf("put after move: %v", err)
	}
}

// TestSplitPartitionUnderLoad is the reshard acceptance check: sessions in
// every DC write continuously while the split runs; afterwards no
// acknowledged write may be lost (each key is written by one session, so
// the last acknowledged value must be the LWW winner everywhere).
func TestSplitPartitionUnderLoad(t *testing.T) {
	c := NewTestCluster(t, Topology{DCs: 3, Partitions: 2, MaxPartitions: 4},
		WithLatency(UniformLatency(50*time.Microsecond, 300*time.Microsecond), 0))

	const writers = 3 // one per DC, disjoint key spaces
	var wg sync.WaitGroup
	stop := make(chan struct{})
	type acked struct {
		key, val string
	}
	lastAcked := make([][]acked, writers)
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := c.NewSession(w)
			if err != nil {
				errs[w] = err
				return
			}
			final := make(map[string]string)
			for i := 0; ; i++ {
				select {
				case <-stop:
					for k, v := range final {
						lastAcked[w] = append(lastAcked[w], acked{k, v})
					}
					return
				default:
				}
				k := fmt.Sprintf("load-w%d-k%d", w, i%32)
				v := fmt.Sprintf("w%d-i%d", w, i)
				if err := s.Put(k, []byte(v)); err != nil {
					errs[w] = fmt.Errorf("put %q: %w", k, err)
					return
				}
				final[k] = v
			}
		}(w)
	}

	time.Sleep(20 * time.Millisecond) // let writes hit both partitions
	np, err := c.SplitPartition(0)
	if err != nil {
		close(stop)
		wg.Wait()
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // keep writing through the new epoch
	close(stop)
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}

	movedKeys := 0
	for w := 0; w < writers; w++ {
		for _, a := range lastAcked[w] {
			if c.PartitionOf(a.key) == np {
				movedKeys++
			}
			for dc := 0; dc < 3; dc++ {
				sd, err := c.NewSession(dc)
				if err != nil {
					t.Fatal(err)
				}
				if !waitUntil(t, 10*time.Second, func() bool {
					v, errGet := sd.Get(a.key)
					return errGet == nil && string(v) == a.val
				}) {
					v, _ := sd.Get(a.key)
					t.Fatalf("acked write lost: dc%d key %q = %q, want %q (owner %d, table %+v)",
						dc, a.key, v, a.val, c.PartitionOf(a.key), c.SlotTable().Epoch)
				}
			}
		}
	}
	if movedKeys == 0 {
		t.Fatal("workload never touched a moved slot; widen the key set")
	}
}

// TestMoveSlotsLaggingTargetNoOverclaim pins the soundness condition of the
// reshard bootstrap claim: when slots move to a PRE-EXISTING partition whose
// own replication stream lags, the target must NOT adopt the donors'
// version vectors — they cover versions of the target's original slots that
// it never received, and the inflated vector would both satisfy causal
// waits for missing versions and become a catch-up floor that permanently
// skips re-requesting them. The test severs the target's inbound link,
// writes into the hole, reshards, and requires (a) the target's vector not
// to jump over the hole and (b) the hole to heal once the link is restored.
func TestMoveSlotsLaggingTargetNoOverclaim(t *testing.T) {
	c := NewTestCluster(t, Topology{DCs: 2, Partitions: 2}, WithDataDir(t.TempDir()))

	s, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	var donorKeys, targetKeys []string
	for i := 0; len(donorKeys) < 8 || len(targetKeys) < 8; i++ {
		k := fmt.Sprintf("lag-k%d", i)
		if c.PartitionOf(k) == 0 {
			donorKeys = append(donorKeys, k)
		} else {
			targetKeys = append(targetKeys, k)
		}
	}
	for _, k := range append(append([]string(nil), donorKeys...), targetKeys...) {
		if err := s.Put(k, []byte("base-"+k)); err != nil {
			t.Fatal(err)
		}
	}

	// Sever the target's inbound replication at DC1 and write into the gap:
	// these versions exist only at DC0 until the link heals.
	if err := c.DropInboundReplication(1, 1, true); err != nil {
		t.Fatal(err)
	}
	var sevMin vclock.Timestamp
	for i, k := range targetKeys {
		ut, _, err := s.PutMeta(k, []byte("sev-"+k))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 || ut < sevMin {
			sevMin = ut
		}
	}
	// Push the donor's column past the severed timestamps, so the donor VV
	// at DC1 genuinely overclaims the target's gap — the bait the old
	// seeding logic would have swallowed.
	for _, k := range donorKeys {
		if err := s.Put(k, []byte("post-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	if !waitUntil(t, 5*time.Second, func() bool {
		return c.Server(1, 0).VV().Get(0) >= sevMin
	}) {
		t.Fatal("donor column at DC1 never advanced past the severed writes")
	}

	if err := c.MoveSlots(c.routingMap().SlotsOwnedBy(0), 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Server(1, 1).VV().Get(0); got >= sevMin {
		t.Fatalf("lagging target's VV[0] = %d claims the severed writes (first at %d): the reshard overclaimed", got, sevMin)
	}

	// Heal the link: the sequence gap must be detected and every severed
	// write recovered — an inflated catch-up floor would skip them forever.
	if err := c.DropInboundReplication(1, 1, false); err != nil {
		t.Fatal(err)
	}
	for _, k := range targetKeys {
		k := k
		if !waitUntil(t, 10*time.Second, func() bool {
			r, err := c.ReadAt(1, k)
			return err == nil && r.Exists && string(r.Value) == "sev-"+k
		}) {
			t.Fatalf("severed write to %q never reached DC1 (catch-up stats %+v)", k, c.ReplicationStats())
		}
	}
	for _, k := range donorKeys {
		k := k
		if !waitUntil(t, 10*time.Second, func() bool {
			r, err := c.ReadAt(1, k)
			return err == nil && r.Exists && string(r.Value) == "post-"+k
		}) {
			t.Fatalf("moved key %q lost at DC1 after the move", k)
		}
	}
}

// TestRestartMidReshardBootsFenced checks that a server crash-restarted
// inside a reshard's fence-to-flip window boots from the staged next-epoch
// table, not the pre-reshard one: an unfenced donor incarnation would accept
// moved-slot writes that are stranded — acknowledged but invisible — once
// routing flips to the new owner.
func TestRestartMidReshardBootsFenced(t *testing.T) {
	c := NewTestCluster(t, Topology{DCs: 2, Partitions: 2}, WithDataDir(t.TempDir()))
	cur := c.routingMap()
	next, err := cur.MoveSlots(cur.SlotsOwnedBy(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Stage the table exactly as reshard() does before installing the fence,
	// then crash-restart a donor inside the window.
	c.pendingSlots.Store(next.Clone())
	defer c.pendingSlots.Store(nil)
	if err := c.RestartServer(0, 0); err != nil {
		t.Fatal(err)
	}
	tbl := c.Server(0, 0).SlotTable()
	if tbl == nil || tbl.Epoch < next.Epoch {
		t.Fatalf("restarted donor booted with table %+v, want the staged epoch %d (unfenced incarnation would strand moved-slot writes)",
			tbl, next.Epoch)
	}
}

// TestUnalignedStaticLayoutCannotReshard pins the static→slot-table
// transition guard: a hash%N layout is expressible as a slot table only when
// N divides the slot universe, so reshard headroom over an unaligned count
// is rejected at construction and a reshard attempt on a fixed unaligned
// deployment fails cleanly instead of silently re-homing keys.
func TestUnalignedStaticLayoutCannotReshard(t *testing.T) {
	if _, err := New(Config{NumDCs: 1, NumPartitions: 3, MaxPartitions: 6, Engine: POCC}); err == nil {
		t.Fatal("MaxPartitions headroom over an unaligned 3-partition layout must be rejected")
	}
	c := NewTestCluster(t, Topology{DCs: 1, Partitions: 3})
	if err := c.MoveSlots([]int{0}, 1); err == nil {
		t.Fatal("MoveSlots on an unaligned static layout must be rejected")
	}
	// Aligned layouts still reshard, and once a table exists the partition
	// count is free to grow past alignment (slot-to-slot moves).
	a := NewTestCluster(t, Topology{DCs: 1, Partitions: 2, MaxPartitions: 5})
	if _, err := a.SplitPartition(0); err != nil {
		t.Fatalf("aligned split: %v", err)
	}
	if _, err := a.SplitPartition(0); err != nil { // 3 partitions now — table installed, no alignment needed
		t.Fatalf("post-table split to an unaligned count: %v", err)
	}
}

// TestSplitRoutingMatchesServers checks the cluster router and every
// server's own table agree after a split (no server left on the old epoch).
func TestSplitRoutingMatchesServers(t *testing.T) {
	c := NewTestCluster(t, Topology{DCs: 2, Partitions: 2, MaxPartitions: 4})
	if _, err := c.SplitPartition(0); err != nil {
		t.Fatal(err)
	}
	want := c.SlotTable()
	for dc := 0; dc < 2; dc++ {
		for p := 0; p < c.NumPartitions(); p++ {
			srv := c.Server(dc, p)
			if srv == nil {
				t.Fatalf("no server dc%d-p%d", dc, p)
			}
			if !waitUntil(t, 2*time.Second, func() bool {
				tbl := srv.SlotTable()
				return tbl != nil && tbl.Epoch >= want.Epoch
			}) {
				t.Fatalf("dc%d-p%d stuck below epoch %d", dc, p, want.Epoch)
			}
		}
	}
	// One owner per key: the router agrees with keyspace.SlotOf.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if got, want := c.PartitionOf(k), int(want.Owner[keyspace.SlotOf(k)]); got != want {
			t.Fatalf("router sends %q to %d, table says %d", k, got, want)
		}
	}
}
