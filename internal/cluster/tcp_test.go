package cluster

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"repro/internal/causaltest"
	"repro/internal/keyspace"
)

// TCP-mode integration tests: the same protocol runs over real loopback TCP
// connections instead of the emulated network.

func newTCPCluster(t *testing.T, engine Engine) *Cluster {
	t.Helper()
	c, err := New(Config{
		NumDCs: 2, NumPartitions: 2, Engine: engine,
		HeartbeatInterval: time.Millisecond,
		TCP:               true,
		Seed:              77,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestTCPPutGetAcrossDCs(t *testing.T) {
	c := newTCPCluster(t, POCC)
	if c.Network() != nil {
		t.Fatal("TCP mode must not build an emulated network")
	}
	s0, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s0.Put("tcp-key", []byte("over-the-wire")); err != nil {
		t.Fatal(err)
	}
	s1, err := c.NewSession(1)
	if err != nil {
		t.Fatal(err)
	}
	if !waitUntil(t, 5*time.Second, func() bool {
		v, errGet := s1.Get("tcp-key")
		return errGet == nil && string(v) == "over-the-wire"
	}) {
		t.Fatal("write never replicated over TCP")
	}
	if c.Messages() == 0 {
		t.Fatal("TCP sends must be counted")
	}
}

func TestTCPROTx(t *testing.T) {
	c := newTCPCluster(t, Cure)
	tbl := keyspace.Build(2, 2)
	c.SeedTable(tbl)
	s, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{tbl.Key(0, 0), tbl.Key(1, 0)}
	for i, k := range keys {
		if err := s.Put(k, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.ROTx(keys)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[keys[0]]) != "a" || string(got[keys[1]]) != "b" {
		t.Fatalf("tx = %v", got)
	}
}

// TestTCPCausalityStress runs the model-based checker over the TCP
// transport: real sockets must preserve the same causal guarantees as the
// emulated FIFO links.
func TestTCPCausalityStress(t *testing.T) {
	c := newTCPCluster(t, POCC)
	tbl := keyspace.Build(2, 4)
	c.SeedTable(tbl)
	reg := causaltest.NewRegistry()

	var wg sync.WaitGroup
	for dc := 0; dc < 2; dc++ {
		for si := 0; si < 3; si++ {
			sess, err := c.NewSession(dc)
			if err != nil {
				t.Fatal(err)
			}
			cs := causaltest.NewSession(reg, sess, sessionName(dc, si))
			wg.Add(1)
			go func(dc, si int, cs *causaltest.Session) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(77, uint64(dc*10+si)))
				for op := 0; op < 120; op++ {
					key := tbl.Key(int(rng.Uint64N(2)), int(rng.Uint64N(4)))
					switch {
					case op%7 == 6:
						if _, err := cs.ROTx([]string{tbl.Key(0, 0), tbl.Key(1, 0)}); err != nil {
							t.Errorf("tx: %v", err)
							return
						}
					case op%3 == 2:
						if err := cs.Put(key, []byte{byte(dc), byte(op)}); err != nil {
							t.Errorf("put: %v", err)
							return
						}
					default:
						if _, err := cs.Get(key); err != nil {
							t.Errorf("get: %v", err)
							return
						}
					}
				}
			}(dc, si, cs)
		}
	}
	wg.Wait()
	for _, v := range reg.Violations() {
		t.Error(v)
	}
}
