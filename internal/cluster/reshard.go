package cluster

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/core"
	"repro/internal/item"
	"repro/internal/keyspace"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/storage"
	"repro/internal/tcpnet"
	"repro/internal/vclock"
)

// reshardDrainTimeout is the default bound on the drain phase of a reshard:
// how long the coordinator waits for every data center's donors to deliver
// their replication streams to every other member. A drain that cannot
// converge (a member DC is dead but not yet removed) aborts the reshard
// instead of wedging it. Config.ReshardTimeout overrides it.
const reshardDrainTimeout = 30 * time.Second

// reshardTimeout resolves the configured drain bound.
func (c *Cluster) reshardTimeout() time.Duration {
	if c.cfg.ReshardTimeout > 0 {
		return c.cfg.ReshardTimeout
	}
	return reshardDrainTimeout
}

// copyBatchSize is the insert granularity of the bootstrap copy (the
// group-commit boundary on durable targets).
const copyBatchSize = 512

// SplitPartition grows the keyspace by one partition server per data
// center: the next partition index is started (gated) in every member DC,
// half of the donor's slots are reassigned to it under the next slot-table
// epoch, each DC's new server is bootstrapped from its local donor's
// history, and cluster routing flips to the new layout. Returns the new
// partition's index.
//
// The migration is drain-then-flip (see doc.go, "Partitioning and
// resharding"): after the new epoch is installed the donors reject
// operations on the moved slots (core.ErrWrongSlotEpoch) while cluster
// routing still resolves to them, so client sessions retry until the flip
// lands them on the bootstrapped new owner. No acknowledged write is lost:
// every moved-slot version ever acknowledged exists at some DC's donor
// before the drain, is delivered to every DC's donor by the drain, and is
// copied with the donor's version vector claim before the flip.
func (c *Cluster) SplitPartition(donor int) (int, error) {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	np := c.numParts()
	if donor < 0 || donor >= np {
		return 0, fmt.Errorf("cluster: no partition %d", donor)
	}
	if np >= c.maxParts {
		return 0, fmt.Errorf("cluster: no MaxPartitions headroom left (capacity %d used up)", c.maxParts)
	}
	if err := c.adoptableLayout(); err != nil {
		return 0, err
	}
	cur := c.routingMap()
	owned := cur.SlotsOwnedBy(donor)
	if len(owned) < 2 {
		return 0, fmt.Errorf("cluster: partition %d owns %d slot(s); nothing to split", donor, len(owned))
	}
	// The donor keeps the even half of its slots; the odd half moves.
	moved := make([]int, 0, len(owned)/2)
	for i, s := range owned {
		if i%2 == 1 {
			moved = append(moved, s)
		}
	}
	next, err := cur.MoveSlots(moved, np)
	if err != nil {
		return 0, err
	}
	members := c.memberDCs()
	if err := c.startPartitionServers(np, next, members); err != nil {
		return 0, err
	}
	if err := c.reshard(cur, next, moved, np, np, members); err != nil {
		return 0, err
	}
	return np, nil
}

// MoveSlots reassigns the given slots to an existing partition under the
// next slot-table epoch, bootstrapping the target with the moved history
// from each DC's local donors before routing flips. Slots the target
// already owns are allowed and move no data.
func (c *Cluster) MoveSlots(slots []int, to int) error {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	np := c.numParts()
	if to < 0 || to >= np {
		return fmt.Errorf("cluster: no partition %d", to)
	}
	if err := c.adoptableLayout(); err != nil {
		return err
	}
	cur := c.routingMap()
	next, err := cur.MoveSlots(slots, to)
	if err != nil {
		return err
	}
	return c.reshard(cur, next, slots, to, -1, c.memberDCs())
}

// adoptableLayout guards the static→slot-table transition. Until the first
// reshard installs a table, the deployment routes by the seed's hash%N
// layout, which the epoch-0 slot table reproduces only when N divides the
// slot universe; adopting a misaligned table would silently re-home keys
// away from the stores that hold them. Once a table is installed, any
// further reshard is slot-to-slot and needs no alignment.
func (c *Cluster) adoptableLayout() error {
	if c.slots.Load() != nil {
		return nil
	}
	if np := c.numParts(); !keyspace.SlotAligned(np) {
		return fmt.Errorf("cluster: cannot reshard: the static layout over %d partitions is not expressible as a slot table (partition count must divide %d)",
			np, keyspace.NumSlots)
	}
	return nil
}

// memberDCs lists the DC ids currently in the deployment (active or still
// joining — a joiner's servers exist and must be resharded with everyone
// else).
func (c *Cluster) memberDCs() []int {
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	var out []int
	for dc := 0; dc < int(c.dcs.Load()); dc++ {
		if c.status[dc] == msg.DCActive || c.status[dc] == msg.DCJoining {
			out = append(out, dc)
		}
	}
	return out
}

// startPartitionServers brings partition index np up in every member DC:
// endpoints (and relays) first, so a started server can heartbeat every
// sibling, then the servers themselves — gated behind the stabilization
// gate with the next-epoch slot table, so they own their slots-to-be from
// birth but contribute nothing to GSS until their bootstrap completes.
// Endpoints are kept across a failed attempt and reused by the next one.
func (c *Cluster) startPartitionServers(np int, next *keyspace.SlotMap, members []int) error {
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	rng := rand.New(rand.NewPCG(c.cfg.Seed, 0x511707<<8|uint64(np)))
	for _, dc := range members {
		if c.transports[dc][np] != nil {
			continue // left over from a failed attempt
		}
		id := netemu.NodeID{DC: dc, Partition: np}
		if c.cfg.ClockSkew > 0 {
			c.skews[dc][np] = time.Duration(rng.Int64N(int64(2*c.cfg.ClockSkew))) - c.cfg.ClockSkew
		}
		var transport core.Transport
		if c.cfg.TCP {
			node, err := tcpnet.Listen(id, "127.0.0.1:0")
			if err != nil {
				return fmt.Errorf("cluster: split p%d: %w", np, err)
			}
			c.tcpNodes = append(c.tcpNodes, node)
			c.tcpDir[id] = node.Addr()
			transport = node
		} else {
			transport = c.net.Register(id, nil)
		}
		if c.relays != nil {
			rl := newRelay(transport)
			c.relays[dc][np] = rl
			transport = rl
		}
		c.transports[dc][np] = transport
		c.mx[dc][np] = &core.Metrics{}
	}
	if c.cfg.TCP {
		// Every node — old and new — needs the extended directory before
		// the first send to or from the new servers.
		for _, n := range c.tcpNodes {
			n.Connect(c.tcpDir)
		}
	}
	for _, dc := range members {
		cfg := c.serverConfigLocked(dc, np, false)
		cfg.NumPartitions = np + 1
		cfg.SlotMap = next
		cfg.Gated = true
		srv, err := core.NewServer(cfg)
		if err != nil {
			for _, q := range members {
				if started := c.servers[q][np].Swap(nil); started != nil {
					started.Close()
				}
			}
			return fmt.Errorf("cluster: split dc%d-p%d: %w", dc, np, err)
		}
		c.servers[dc][np].Store(srv)
	}
	return nil
}

// reshard drives the drain-then-flip migration. cur is the routing layout
// before the move, next the epoch-advanced table, moved the slots given to
// the caller's target, target the partition receiving them, and newPart the
// partition index started for a split (-1 when moving between existing
// partitions).
func (c *Cluster) reshard(cur, next *keyspace.SlotMap, moved []int, target, newPart int, members []int) error {
	// Which old owner donates which slots, and the membership test the copy
	// filter uses.
	byDonor := make(map[int][]int)
	var movedSet [keyspace.NumSlots]bool
	for _, sl := range moved {
		if sl < 0 || sl >= keyspace.NumSlots {
			return fmt.Errorf("cluster: slot %d out of range", sl)
		}
		if int(cur.Owner[sl]) == target {
			continue // already there; nothing moves
		}
		byDonor[int(cur.Owner[sl])] = append(byDonor[int(cur.Owner[sl])], sl)
		movedSet[sl] = true
	}
	if len(byDonor) == 0 {
		// Ownership does not change; publish the new epoch and finish.
		c.finishReshard(next, members, newPart)
		return nil
	}

	// 1. Install the next-epoch table on every live server, synchronously.
	// From here on the old owners reject operations on the moved slots
	// (core.ErrWrongSlotEpoch) — no new moved-slot version can be created
	// under the old layout — while cluster routing still resolves to them,
	// keeping retrying clients parked until the flip. The table is staged in
	// cluster state first, so a server crash-restarted anywhere in the
	// fence-to-flip window boots from the fenced table instead of the
	// pre-reshard one (serverConfigLocked consults the staged pointer);
	// finishReshard clears the stage on every exit path, abort included.
	c.pendingSlots.Store(next.Clone())
	liveParts := c.numParts()
	if newPart >= 0 {
		liveParts = newPart + 1
	}
	for _, dc := range members {
		for p := 0; p < liveParts; p++ {
			if srv := c.Server(dc, p); srv != nil {
				srv.InstallSlotMap(next)
			}
		}
	}

	// 2. Drain. Every moved-slot version that will ever exist under the old
	// epoch has been accepted by some DC's donor by now (the install above
	// finished before the marks are taken). Wait until each donor column
	// has delivered its own-origin stream up to its mark to its sibling in
	// every other member DC: afterwards each DC's donors hold the complete
	// moved-slot history.
	type mark struct {
		dc, p int
		ts    vclock.Timestamp
	}
	var marks []mark
	for _, dc := range members {
		for p := range byDonor {
			srv := c.Server(dc, p)
			if srv == nil {
				return c.abortReshard(cur, next, moved, members, newPart,
					fmt.Errorf("cluster: reshard: donor dc%d-p%d is down", dc, p))
			}
			marks = append(marks, mark{dc, p, srv.VV().Get(dc)})
		}
	}
	deadline := time.Now().Add(c.reshardTimeout())
	for _, mk := range marks {
		for _, dst := range members {
			if dst == mk.dc {
				continue
			}
			for {
				srv := c.Server(dst, mk.p)
				if srv != nil && srv.VV().Get(mk.dc) >= mk.ts {
					break
				}
				if time.Now().After(deadline) {
					return c.abortReshard(cur, next, moved, members, newPart,
						fmt.Errorf("cluster: reshard: drain of dc%d-p%d into dc%d did not converge within %v",
							mk.dc, mk.p, dst, c.reshardTimeout()))
				}
				time.Sleep(time.Millisecond)
			}
		}
	}

	// 3. Copy. Each member DC bootstraps its target from its local donors'
	// history: durable donors stream their WAL-backed store, in-memory
	// donors enumerate their chains. The donor's version vector is captured
	// before the walk — it only covers versions already in the store, and
	// no moved-slot version is created after the drain — so for a freshly
	// split owner (which routes nothing but the moved slots) seeding it
	// into the target is a sound completeness claim for everything the
	// target serves. A pre-existing target also owns slots the donors know
	// nothing about: its own replication streams may lag the donors', and
	// adopting their VV would overclaim versions it never received —
	// reads would skip causal waits and the inflated catch-up floor would
	// permanently skip re-requesting the gap. Such a target keeps its own
	// VV: the copied history is already in its store, and dependency waits
	// on it resolve as heartbeats advance the VV past the (pre-drain)
	// moved timestamps.
	for _, dc := range members {
		tgt := c.Server(dc, target)
		if tgt == nil {
			return c.abortReshard(cur, next, moved, members, newPart,
				fmt.Errorf("cluster: reshard: target dc%d-p%d is down", dc, target))
		}
		seed := vclock.New(c.maxDCs)
		var maxTS vclock.Timestamp
		for p := range byDonor {
			src := c.Server(dc, p)
			if src == nil {
				return c.abortReshard(cur, next, moved, members, newPart,
					fmt.Errorf("cluster: reshard: donor dc%d-p%d died mid-copy", dc, p))
			}
			vv := src.VV()
			var batch []*item.Version
			collect := func(v *item.Version) {
				if !movedSet[keyspace.SlotOf(v.Key)] {
					return
				}
				if v.UpdateTime > maxTS {
					maxTS = v.UpdateTime
				}
				batch = append(batch, v)
			}
			var err error
			switch st := src.Store().(type) {
			case storage.CatchUpSource:
				err = st.ForEachDurable(func(v *item.Version) error {
					collect(v)
					return nil
				})
			case versionEnumerator:
				st.ForEachVersion(collect)
			default:
				err = fmt.Errorf("cluster: reshard: donor dc%d-p%d store cannot enumerate history", dc, p)
			}
			if err != nil {
				return c.abortReshard(cur, next, moved, members, newPart, err)
			}
			for len(batch) > 0 {
				n := len(batch)
				if n > copyBatchSize {
					n = copyBatchSize
				}
				tgt.Store().InsertBatch(batch[:n])
				batch = batch[n:]
			}
			seed.MaxInPlace(vv)
		}
		for _, t := range seed {
			if t > maxTS {
				maxTS = t
			}
		}
		// The target's clock must not issue timestamps at or below the
		// inherited history (LWW would resurrect moved versions over fresh
		// writes).
		tgt.AdvanceClock(maxTS)
		if newPart >= 0 {
			// Only a fresh split owner adopts the donors' VV claim (see the
			// soundness note above); it also sets the catch-up floor so the
			// copied history is not re-requested from scratch.
			tgt.SeedVV(seed)
		}
	}

	c.finishReshard(next, members, newPart)
	return nil
}

// finishReshard publishes a reshard outcome: split targets leave the
// stabilization gate and are promoted into the live partition count, the
// table is (re-)installed everywhere — the abort path changes it between
// install and finish — and cluster routing flips, releasing retrying
// clients onto the new owners.
func (c *Cluster) finishReshard(m *keyspace.SlotMap, members []int, newPart int) {
	if newPart >= 0 {
		for _, dc := range members {
			if srv := c.Server(dc, newPart); srv != nil {
				srv.ReleaseGate()
			}
		}
		c.parts.Store(int32(newPart + 1))
	}
	// Settle the cluster-level routing state before walking the servers:
	// a server (re)starting from here on boots from the outcome table, and
	// the walk below (plus the re-install in RestartServer) catches servers
	// that raced the stage. Fenced old owners bounce any early-routed
	// operation, so clients just retry across the hand-over.
	c.slots.Store(m.Clone())
	c.pendingSlots.Store(nil)
	for _, dc := range members {
		for p := 0; p < c.numParts(); p++ {
			if srv := c.Server(dc, p); srv != nil {
				srv.InstallSlotMap(m)
			}
		}
	}
}

// abortReshard rolls a half-done reshard forward: the epoch lattice cannot
// go back, so the rollback is one more epoch that reassigns the moved slots
// to their pre-reshard owners. Split targets stay up as live (empty-handed)
// partitions — their siblings already gossip with them, so tearing them
// down would leave the stabilization plane folding a dead column — and the
// burned index simply owns no slots. Returns cause for tail-calling.
func (c *Cluster) abortReshard(cur, next *keyspace.SlotMap, moved []int, members []int, newPart int, cause error) error {
	rb := next.Clone()
	rb.Epoch++
	for _, sl := range moved {
		rb.Owner[sl] = cur.Owner[sl]
		rb.Stamp[sl] = rb.Epoch
	}
	c.finishReshard(rb, members, newPart)
	return cause
}

// versionEnumerator is the in-memory donor's history walk (storage.Mem).
type versionEnumerator interface {
	ForEachVersion(fn func(v *item.Version))
}
