// Package cluster assembles a full geo-replicated deployment: M data centers
// × N partitions of core.Server connected by an emulated network with
// injected inter-DC latencies, per-node skewed clocks, and client sessions
// attached to a DC. It provides the three engine presets the evaluation
// compares: POCC, Cure* and HA-POCC.
package cluster

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/item"
	"repro/internal/keyspace"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/storage"
	"repro/internal/tcpnet"
	"repro/internal/vclock"
)

// Engine selects the protocol preset.
type Engine int

// Engine presets.
const (
	// POCC is the paper's optimistic system: no stabilization, blocking
	// dependency resolution.
	POCC Engine = iota + 1
	// Cure is the pessimistic baseline Cure*: stabilization every
	// StabilizationInterval, stable-visibility reads.
	Cure
	// HAPOCC is highly available POCC: optimistic with infrequent
	// stabilization and block-timeout session fallback.
	HAPOCC
)

func (e Engine) String() string {
	switch e {
	case POCC:
		return "POCC"
	case Cure:
		return "Cure*"
	case HAPOCC:
		return "HA-POCC"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Config parameterizes a deployment.
type Config struct {
	NumDCs        int
	NumPartitions int
	Engine        Engine

	// HeartbeatInterval is Δ (1 ms in the paper).
	HeartbeatInterval time.Duration
	// StabilizationInterval: 5 ms for Cure* and 500 ms for HA-POCC in the
	// paper's spirit; ignored for POCC.
	StabilizationInterval time.Duration
	// GCInterval enables the garbage-collection exchange (0 disables).
	GCInterval time.Duration
	// PutDepWait enables Algorithm 2 line 6 (the evaluation enables it).
	PutDepWait bool
	// ReplicationBatchSize caps the per-DC replication buffer before an
	// inline flush (0 = core default, 1 = unbatched).
	ReplicationBatchSize int
	// ReplicationFlushInterval is the replication buffer flush cadence
	// (0 defaults to the heartbeat interval Δ; negative disables batching).
	ReplicationFlushInterval time.Duration
	// BlockTimeout enables HA-POCC partition suspicion (HAPOCC only).
	BlockTimeout time.Duration
	// ClockSkew bounds the per-node clock offset: each node's skew is drawn
	// uniformly from [-ClockSkew, +ClockSkew], emulating loose NTP sync.
	ClockSkew time.Duration
	// Latency is the inter-node latency function (see AWSLatency). Nil means
	// zero latency.
	Latency netemu.LatencyFunc
	// JitterFrac adds uniform jitter to every message delay.
	JitterFrac float64
	// SessionLatency is the injected one-way client↔server delay.
	SessionLatency time.Duration
	// Seed drives all emulated randomness.
	Seed uint64
	// TCP runs the inter-node traffic over real loopback TCP connections
	// (internal/tcpnet) instead of the emulated network. Latency, jitter and
	// partition injection are unavailable in this mode.
	TCP bool
	// DataDir enables durable per-server storage: every partition server
	// opens a WAL-backed storage.Durable engine under
	// DataDir/dc<m>-p<n> and can be crash-restarted from it (see
	// RestartServer). Empty keeps the default in-memory engines.
	DataDir string
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.HeartbeatInterval == 0 {
		out.HeartbeatInterval = time.Millisecond
	}
	if out.StabilizationInterval == 0 {
		switch out.Engine {
		case Cure:
			out.StabilizationInterval = 5 * time.Millisecond
		case HAPOCC:
			out.StabilizationInterval = 500 * time.Millisecond
		}
	}
	if out.Engine == HAPOCC && out.BlockTimeout == 0 {
		out.BlockTimeout = 250 * time.Millisecond
	}
	return out
}

// Cluster is a running deployment.
type Cluster struct {
	cfg      Config
	net      *netemu.Network // nil in TCP mode
	tcpNodes []*tcpnet.Node  // nil in emulated mode

	// servers is the [dc][partition] matrix; entries are atomic pointers so
	// sessions resolve the current server lock-free per operation while
	// RestartServer swaps one underneath them.
	servers    [][]atomic.Pointer[core.Server]
	transports [][]core.Transport
	relays     [][]*relay // non-nil only for durable (restartable) clusters
	skews      [][]time.Duration
	mx         [][]*core.Metrics // [dc][partition]
	seedSeq    atomic.Uint64     // timestamps for pre-loaded data
	rr         atomic.Uint64     // round-robin coordinator placement
}

// relay sits between the network endpoint and a restartable server. The
// endpoint's handler is installed exactly once and forwards to the current
// server's handler; RestartServer holds the gate exclusively while swapping
// servers, so deliveries pause (preserving per-link FIFO order through the
// restart) instead of reaching a half-closed server.
type relay struct {
	inner core.Transport
	gate  sync.RWMutex
	h     atomic.Pointer[netemu.Handler]
}

func newRelay(inner core.Transport) *relay {
	r := &relay{inner: inner}
	inner.SetHandler(func(src netemu.NodeID, m any) {
		r.gate.RLock()
		defer r.gate.RUnlock()
		if h := r.h.Load(); h != nil {
			(*h)(src, m)
		}
	})
	return r
}

func (r *relay) ID() netemu.NodeID             { return r.inner.ID() }
func (r *relay) Send(dst netemu.NodeID, m any) { r.inner.Send(dst, m) }
func (r *relay) SetHandler(h netemu.Handler)   { r.h.Store(&h) }

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.NumDCs < 1 || cfg.NumPartitions < 1 {
		return nil, fmt.Errorf("cluster: invalid layout %dx%d", cfg.NumDCs, cfg.NumPartitions)
	}
	if cfg.Engine != POCC && cfg.Engine != Cure && cfg.Engine != HAPOCC {
		return nil, errors.New("cluster: unknown engine")
	}
	c := &Cluster{cfg: cfg}
	var transports map[netemu.NodeID]core.Transport
	if cfg.TCP {
		var err error
		transports, err = c.buildTCPTransports()
		if err != nil {
			return nil, err
		}
	} else {
		c.net = netemu.New(netemu.Config{
			Latency:    cfg.Latency,
			JitterFrac: cfg.JitterFrac,
			Seed:       cfg.Seed,
		})
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xc105))
	c.servers = make([][]atomic.Pointer[core.Server], cfg.NumDCs)
	c.transports = make([][]core.Transport, cfg.NumDCs)
	c.skews = make([][]time.Duration, cfg.NumDCs)
	c.mx = make([][]*core.Metrics, cfg.NumDCs)
	if cfg.DataDir != "" {
		c.relays = make([][]*relay, cfg.NumDCs)
	}

	// First pass: register every node's transport (and relay) before any
	// server starts. A started server heartbeats its siblings immediately,
	// so every endpoint must exist before the first server comes up.
	for dc := 0; dc < cfg.NumDCs; dc++ {
		c.servers[dc] = make([]atomic.Pointer[core.Server], cfg.NumPartitions)
		c.transports[dc] = make([]core.Transport, cfg.NumPartitions)
		c.skews[dc] = make([]time.Duration, cfg.NumPartitions)
		c.mx[dc] = make([]*core.Metrics, cfg.NumPartitions)
		if c.relays != nil {
			c.relays[dc] = make([]*relay, cfg.NumPartitions)
		}
		for p := 0; p < cfg.NumPartitions; p++ {
			id := netemu.NodeID{DC: dc, Partition: p}
			if cfg.ClockSkew > 0 {
				c.skews[dc][p] = time.Duration(rng.Int64N(int64(2*cfg.ClockSkew))) - cfg.ClockSkew
			}
			var transport core.Transport
			if cfg.TCP {
				transport = transports[id]
			} else {
				transport = c.net.Register(id, nil)
			}
			if c.relays != nil {
				// Durable deployments interpose a relay so RestartServer can
				// pause delivery while it swaps the server behind it.
				rl := newRelay(transport)
				c.relays[dc][p] = rl
				transport = rl
			}
			c.transports[dc][p] = transport
			c.mx[dc][p] = &core.Metrics{}
		}
	}
	// Second pass: start the servers.
	for dc := 0; dc < cfg.NumDCs; dc++ {
		for p := 0; p < cfg.NumPartitions; p++ {
			srv, err := core.NewServer(c.serverConfig(dc, p))
			if err != nil {
				c.Close()
				return nil, err
			}
			c.servers[dc][p].Store(srv)
		}
	}
	return c, nil
}

// serverConfig assembles the core.Config of partition server (dc, p),
// reusing the node's transport, clock skew and metrics — the pieces that
// survive a RestartServer.
func (c *Cluster) serverConfig(dc, p int) core.Config {
	mode := core.Optimistic
	stab := c.cfg.StabilizationInterval
	blockTimeout := time.Duration(0)
	switch c.cfg.Engine {
	case Cure:
		mode = core.Pessimistic
	case HAPOCC:
		blockTimeout = c.cfg.BlockTimeout
	case POCC:
		stab = 0
	}
	var dataDir string
	if c.cfg.DataDir != "" {
		dataDir = filepath.Join(c.cfg.DataDir, fmt.Sprintf("dc%d-p%d", dc, p))
	}
	return core.Config{
		ID:                       netemu.NodeID{DC: dc, Partition: p},
		NumDCs:                   c.cfg.NumDCs,
		NumPartitions:            c.cfg.NumPartitions,
		Clock:                    clock.New(c.skews[dc][p]),
		Endpoint:                 c.transports[dc][p],
		DefaultMode:              mode,
		HeartbeatInterval:        c.cfg.HeartbeatInterval,
		StabilizationInterval:    stab,
		GCInterval:               c.cfg.GCInterval,
		PutDepWait:               c.cfg.PutDepWait,
		BlockTimeout:             blockTimeout,
		ReplicationBatchSize:     c.cfg.ReplicationBatchSize,
		ReplicationFlushInterval: c.cfg.ReplicationFlushInterval,
		DataDir:                  dataDir,
		Metrics:                  c.mx[dc][p],
	}
}

// RestartServer simulates a partition-server crash and recovery: the server
// is stopped, a fresh one reopens the same durable data directory — its
// version chains and VV floor rebuilt from the snapshot and log tail — and
// takes over the node's network endpoint. Message delivery to the node is
// paused (not dropped) during the swap, so per-link FIFO order is preserved.
// Client operations racing the restart fail with core.ErrStopped and may be
// retried.
//
// It requires Config.DataDir: an in-memory server would restart empty, which
// is a data loss, not a recovery.
//
// The shutdown half is graceful: the outgoing replication buffer is flushed
// to sibling DCs and the log closes cleanly, so this exercises storage
// recovery, not replication loss (a machine crash would also drop the ≤Δ of
// buffered updates; re-shipping those from the WAL is a tracked follow-up).
// The torn-log recovery paths are covered separately by tests that truncate
// segment files on disk between a close and a reopen.
func (c *Cluster) RestartServer(dc, p int) error {
	if c.relays == nil {
		return errors.New("cluster: RestartServer requires Config.DataDir (durable engines)")
	}
	rl := c.relays[dc][p]
	rl.gate.Lock() // drain in-flight deliveries, pause new ones
	defer rl.gate.Unlock()
	c.Server(dc, p).Close()
	srv, err := core.NewServer(c.serverConfig(dc, p))
	if err != nil {
		return fmt.Errorf("cluster: restart dc%d-p%d: %w", dc, p, err)
	}
	c.servers[dc][p].Store(srv)
	return nil
}

// StorageErr returns the first sticky persistence error reported by any
// server's engine, or nil. Durable deployments should poll it: a failed
// engine keeps serving from memory but no longer survives a crash.
func (c *Cluster) StorageErr() error {
	for dc := 0; dc < c.cfg.NumDCs; dc++ {
		for p := 0; p < c.cfg.NumPartitions; p++ {
			if err := c.Server(dc, p).StorageErr(); err != nil {
				return fmt.Errorf("cluster: dc%d-p%d storage: %w", dc, p, err)
			}
		}
	}
	return nil
}

// StorageStats aggregates every server's storage statistics, sampled with
// the engines' single-pass Stats so each server's keys/versions pair is
// consistent per shard.
func (c *Cluster) StorageStats() storage.StoreStats {
	var st storage.StoreStats
	for dc := 0; dc < c.cfg.NumDCs; dc++ {
		for p := 0; p < c.cfg.NumPartitions; p++ {
			es := c.Server(dc, p).Store().Stats()
			st.Keys += es.Keys
			st.Versions += es.Versions
		}
	}
	return st
}

// buildTCPTransports binds a loopback TCP node for every server and
// distributes the address directory.
func (c *Cluster) buildTCPTransports() (map[netemu.NodeID]core.Transport, error) {
	directory := make(map[netemu.NodeID]string)
	out := make(map[netemu.NodeID]core.Transport)
	for dc := 0; dc < c.cfg.NumDCs; dc++ {
		for p := 0; p < c.cfg.NumPartitions; p++ {
			id := netemu.NodeID{DC: dc, Partition: p}
			node, err := tcpnet.Listen(id, "127.0.0.1:0")
			if err != nil {
				for _, n := range c.tcpNodes {
					n.Close()
				}
				return nil, fmt.Errorf("cluster: %w", err)
			}
			c.tcpNodes = append(c.tcpNodes, node)
			directory[id] = node.Addr()
			out[id] = node
		}
	}
	for _, n := range c.tcpNodes {
		n.Connect(directory)
	}
	return out, nil
}

// Close stops every server and the network. Close must not race an
// in-flight RestartServer (tests restart, then clean up).
func (c *Cluster) Close() {
	for dc := range c.servers {
		for p := range c.servers[dc] {
			if s := c.servers[dc][p].Load(); s != nil {
				s.Close()
			}
		}
	}
	if c.net != nil {
		c.net.Close()
	}
	for _, n := range c.tcpNodes {
		n.Close()
	}
}

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Network exposes the emulated network (partition injection, message
// counts). It returns nil in TCP mode.
func (c *Cluster) Network() *netemu.Network { return c.net }

// Messages returns the total number of protocol messages sent, in either
// transport mode.
func (c *Cluster) Messages() uint64 {
	if c.net != nil {
		return c.net.MessageCount()
	}
	var total uint64
	for _, n := range c.tcpNodes {
		total += n.Sent()
	}
	return total
}

// Server returns the partition server p of data center dc (the current one,
// if the node has been restarted). The lookup is a lock-free atomic load, so
// the per-operation routing of sessions costs nothing extra.
func (c *Cluster) Server(dc, p int) *core.Server {
	return c.servers[dc][p].Load()
}

// PartitionOf returns the partition responsible for key.
func (c *Cluster) PartitionOf(key string) int {
	return keyspace.PartitionOf(key, c.cfg.NumPartitions)
}

// dcRouter routes a session's requests within one data center, resolving
// servers per operation so sessions transparently follow a RestartServer.
type dcRouter struct {
	c     *Cluster
	dc    int
	coord int
}

func (r *dcRouter) ServerFor(key string) *core.Server {
	return r.c.Server(r.dc, keyspace.PartitionOf(key, r.c.cfg.NumPartitions))
}
func (r *dcRouter) Coordinator() *core.Server { return r.c.Server(r.dc, r.coord) }
func (r *dcRouter) PartitionOf(key string) int {
	return keyspace.PartitionOf(key, r.c.cfg.NumPartitions)
}

// NewSession opens a client session against data center dc. The session's
// coordinator is chosen round-robin, emulating clients collocated with
// servers.
func (c *Cluster) NewSession(dc int) (*client.Session, error) {
	if dc < 0 || dc >= c.cfg.NumDCs {
		return nil, fmt.Errorf("cluster: no data center %d", dc)
	}
	coord := int(c.rr.Add(1) % uint64(c.cfg.NumPartitions))
	mode := core.Optimistic
	if c.cfg.Engine == Cure {
		mode = core.Pessimistic
	}
	return client.NewSession(client.Config{
		Router:         &dcRouter{c: c, dc: dc, coord: coord},
		NumDCs:         c.cfg.NumDCs,
		Mode:           mode,
		RequestLatency: c.cfg.SessionLatency,
		AutoFallback:   c.cfg.Engine == HAPOCC,
	})
}

// Seed pre-loads a key with an initial value into every data center, the way
// the paper's loader populates each partition before an experiment. Seeded
// versions carry tiny timestamps and empty dependency vectors, so they are
// immediately visible and stable everywhere.
func (c *Cluster) Seed(key string, value []byte) {
	ut := vclock.Timestamp(c.seedSeq.Add(1))
	p := c.PartitionOf(key)
	for dc := 0; dc < c.cfg.NumDCs; dc++ {
		v := &item.Version{
			Key:        key,
			Value:      append([]byte(nil), value...),
			SrcReplica: 0,
			UpdateTime: ut,
			Deps:       vclock.New(c.cfg.NumDCs),
		}
		c.Server(dc, p).Store().Insert(v)
	}
}

// SeedTable pre-loads every key of a keyspace table with an 8-byte value.
func (c *Cluster) SeedTable(table *keyspace.Table) {
	for p := 0; p < table.Partitions(); p++ {
		for _, k := range table.AllKeys(p) {
			c.Seed(k, []byte("00000000"))
		}
	}
}

// Aggregate is the cluster-wide union of per-server metrics.
type Aggregate struct {
	GetBlocking metrics.BlockingSnapshot
	PutBlocking metrics.BlockingSnapshot
	TxBlocking  metrics.BlockingSnapshot
	GetStale    metrics.StalenessSnapshot
	TxStale     metrics.StalenessSnapshot
}

// Blocking merges GET, PUT and slice-read blocking, the aggregate Fig. 2a /
// 3c report.
func (a Aggregate) Blocking() metrics.BlockingSnapshot {
	out := a.GetBlocking
	out.Add(a.PutBlocking)
	out.Add(a.TxBlocking)
	return out
}

// Metrics aggregates every server's statistics.
func (c *Cluster) Metrics() Aggregate {
	var agg Aggregate
	for dc := range c.mx {
		for _, m := range c.mx[dc] {
			agg.GetBlocking.Add(m.GetBlocking.Snapshot())
			agg.PutBlocking.Add(m.PutBlocking.Snapshot())
			agg.TxBlocking.Add(m.TxBlocking.Snapshot())
			agg.GetStale.Add(m.GetStale.Snapshot())
			agg.TxStale.Add(m.TxStale.Snapshot())
		}
	}
	return agg
}

// ReadAt performs a raw GET against a specific DC with an empty dependency
// vector (monitoring helper for tests and examples).
func (c *Cluster) ReadAt(dc int, key string) (msg.ItemReply, error) {
	srv := c.Server(dc, c.PartitionOf(key))
	return srv.Get(key, vclock.New(c.cfg.NumDCs), core.Optimistic)
}
