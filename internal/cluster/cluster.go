// Package cluster assembles a full geo-replicated deployment: M data centers
// × N partitions of core.Server connected by an emulated network with
// injected inter-DC latencies, per-node skewed clocks, and client sessions
// attached to a DC. It provides the three engine presets the evaluation
// compares: POCC, Cure* and HA-POCC.
package cluster

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/item"
	"repro/internal/keyspace"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/storage"
	"repro/internal/tcpnet"
	"repro/internal/vclock"
)

// Engine selects the protocol preset.
type Engine int

// Engine presets.
const (
	// POCC is the paper's optimistic system: no stabilization, blocking
	// dependency resolution.
	POCC Engine = iota + 1
	// Cure is the pessimistic baseline Cure*: stabilization every
	// StabilizationInterval, stable-visibility reads.
	Cure
	// HAPOCC is highly available POCC: optimistic with infrequent
	// stabilization and block-timeout session fallback.
	HAPOCC
)

func (e Engine) String() string {
	switch e {
	case POCC:
		return "POCC"
	case Cure:
		return "Cure*"
	case HAPOCC:
		return "HA-POCC"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Config parameterizes a deployment.
type Config struct {
	NumDCs        int
	NumPartitions int
	Engine        Engine

	// HeartbeatInterval is Δ (1 ms in the paper).
	HeartbeatInterval time.Duration
	// StabilizationInterval: 5 ms for Cure* and 500 ms for HA-POCC in the
	// paper's spirit; ignored for POCC.
	StabilizationInterval time.Duration
	// GCInterval enables the garbage-collection exchange (0 disables).
	GCInterval time.Duration
	// PutDepWait enables Algorithm 2 line 6 (the evaluation enables it).
	PutDepWait bool
	// ReplicationBatchSize caps the per-DC replication buffer before an
	// inline flush (0 = core default, 1 = unbatched).
	ReplicationBatchSize int
	// ReplicationFlushInterval is the replication buffer flush cadence
	// (0 defaults to the heartbeat interval Δ; negative disables batching).
	ReplicationFlushInterval time.Duration
	// BlockTimeout enables HA-POCC partition suspicion (HAPOCC only).
	BlockTimeout time.Duration
	// ClockSkew bounds the per-node clock offset: each node's skew is drawn
	// uniformly from [-ClockSkew, +ClockSkew], emulating loose NTP sync.
	ClockSkew time.Duration
	// RawPhysicalClocks reverts the per-node clocks to raw skewed physical
	// time (the pre-HLC behavior). By default nodes run hybrid
	// logical/physical clocks (clock.NewHLC): every received heartbeat,
	// batch or catch-up claim merges into the local clock, so timestamp
	// assignment — in particular the PUT clock-wait — is insensitive to
	// ClockSkew. The skew ablation sets this to measure the raw variant.
	RawPhysicalClocks bool
	// LeanStabilization switches the GSS exchange to the Okapi-style scalar
	// HLC watermark on most ticks (core.Config.LeanStabilization).
	LeanStabilization bool
	// Latency is the inter-node latency function (see AWSLatency). Nil means
	// zero latency.
	Latency netemu.LatencyFunc
	// JitterFrac adds uniform jitter to every message delay.
	JitterFrac float64
	// SessionLatency is the injected one-way client↔server delay.
	SessionLatency time.Duration
	// Seed drives all emulated randomness.
	Seed uint64
	// TCP runs the inter-node traffic over real loopback TCP connections
	// (internal/tcpnet) instead of the emulated network. Latency, jitter and
	// partition injection are unavailable in this mode.
	TCP bool
	// DataDir enables durable per-server storage: every partition server
	// opens a WAL-backed storage.Durable engine under
	// DataDir/dc<m>-p<n> and can be crash-restarted from it (see
	// RestartServer). Empty keeps the default in-memory engines.
	DataDir string
	// Durable tunes the WAL-backed engines opened for DataDir: checkpoint
	// trigger, segment size and fsync policy (storage.DurableOptions).
	// Ignored without DataDir.
	Durable storage.DurableOptions
	// CatchUp selects the replication catch-up mode (sequenced streams +
	// WAL-shipped resync, internal/repl). CatchUpAuto — the default —
	// enables it exactly when the deployment is durable (DataDir set);
	// CatchUpOn forces it (senders without a WAL answer catch-up requests
	// with Unsupported); CatchUpOff keeps the optimistic pre-catch-up
	// application everywhere.
	CatchUp CatchUpMode
	// CatchUpMaxInFlight bounds the un-acked bytes per outbound catch-up
	// stream (0 = 1 MiB): the sender's backpressure window.
	CatchUpMaxInFlight int
	// MaxDCs reserves capacity for data centers joining at runtime (AddDC):
	// every server's version vector is sized to it up front, because the
	// lock-free hot path cannot repoint vectors. 0 means NumDCs — fixed
	// membership, the pre-membership footprint. A departed DC's id is never
	// reused, so the capacity bounds the total number of joins over the
	// deployment's lifetime, not the concurrent member count.
	MaxDCs int
	// MaxPartitions reserves capacity for partition servers added at runtime
	// (SplitPartition), the partition-axis analogue of MaxDCs: the server
	// matrix and every server's per-partition state are sized to it up
	// front. 0 means NumPartitions — a fixed keyspace layout. Capped by
	// keyspace.NumSlots (a partition must own at least one slot to be
	// useful, and slot owners are one byte on the wire).
	MaxPartitions int
	// ReshardTimeout bounds the drain phase of SplitPartition/MoveSlots
	// (how long the coordinator waits for every member's donors to deliver
	// their streams everywhere before aborting the reshard). 0 means 30s;
	// fault-injection harnesses set it low so an undrainable reshard aborts
	// inside the soak window instead of stalling it.
	ReshardTimeout time.Duration
	// JoinTimeout bounds how long a joining DC's servers keep soliciting the
	// deployment before giving up (core.Config.JoinTimeout); WaitForJoin
	// tears a failed join down cleanly. 0 retries forever.
	JoinTimeout time.Duration
	// GCMaxHoldback bounds how long garbage collection is deferred for a
	// frozen, catching-up or joining replication link
	// (core.Config.GCMaxHoldback). 0 selects the core default (10 s);
	// negative never releases.
	GCMaxHoldback time.Duration
}

// CatchUpMode selects the replication catch-up behavior (Config.CatchUp).
type CatchUpMode int

// Catch-up modes.
const (
	// CatchUpAuto enables catch-up exactly when the deployment is durable.
	CatchUpAuto CatchUpMode = iota
	// CatchUpOn forces catch-up on (useful for mixed experiments).
	CatchUpOn
	// CatchUpOff disables catch-up (the pre-sequencing semantics: a crashed
	// server's unflushed replication tail is silently lost).
	CatchUpOff
)

// enabled resolves the mode against the deployment's durability.
func (m CatchUpMode) enabled(durable bool) bool {
	switch m {
	case CatchUpOn:
		return true
	case CatchUpOff:
		return false
	default:
		return durable
	}
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.HeartbeatInterval == 0 {
		out.HeartbeatInterval = time.Millisecond
	}
	if out.StabilizationInterval == 0 {
		switch out.Engine {
		case Cure:
			out.StabilizationInterval = 5 * time.Millisecond
		case HAPOCC:
			out.StabilizationInterval = 500 * time.Millisecond
		}
	}
	if out.Engine == HAPOCC && out.BlockTimeout == 0 {
		out.BlockTimeout = 250 * time.Millisecond
	}
	return out
}

// Cluster is a running deployment.
type Cluster struct {
	cfg      Config
	maxDCs   int
	maxParts int
	net      *netemu.Network // nil in TCP mode

	// Routing state for the slot table (tentpole of the resharding arc).
	// slots is nil until the first reshard: routing then falls back to the
	// static keyspace.PartitionOf layout, so pre-reshard deployments pay
	// nothing. pendingSlots stages an in-flight reshard's next-epoch table
	// from fence-install until the flip, so a server crash-restarted inside
	// that window boots already fenced instead of resurrecting the
	// pre-reshard table and accepting moved-slot writes the new owner will
	// never see. parts is the number of live partition servers per DC (grows
	// on SplitPartition); reshardMu serializes reshards so at most one slot
	// migration is in flight.
	slots        atomic.Pointer[keyspace.SlotMap]
	pendingSlots atomic.Pointer[keyspace.SlotMap]
	parts        atomic.Int32
	reshardMu    sync.Mutex

	// servers is the [dc][partition] matrix, pre-allocated to MaxDCs rows so
	// AddDC never reshapes it; entries are atomic pointers so sessions
	// resolve the current server lock-free per operation while RestartServer
	// swaps one underneath them (and RemoveDC clears a whole row).
	servers    [][]atomic.Pointer[core.Server]
	transports [][]core.Transport
	relays     [][]*relay // non-nil only for durable (restartable) clusters
	skews      [][]time.Duration
	mx         [][]*core.Metrics // [dc][partition]
	seedSeq    atomic.Uint64     // timestamps for pre-loaded data
	rr         atomic.Uint64     // round-robin coordinator placement

	// memberMu guards the deployment's membership mirror — the admin-side
	// record of which DC slots exist and their statuses — plus the TCP
	// directory and node list, which AddDC extends at runtime.
	memberMu sync.Mutex
	status   []uint8 // per-DC membership status (msg.DC*), len maxDCs
	epoch    uint64  // membership view epoch handed to new/restarted servers
	// finals records, for each forcibly removed DC, the per-partition final
	// timestamp the survivors agreed on, so restarted servers are seeded with
	// the freeze (and re-apply the purge on recovery).
	finals   map[int][]vclock.Timestamp
	tcpNodes []*tcpnet.Node           // nil in emulated mode
	tcpDir   map[netemu.NodeID]string // TCP address directory (TCP mode)
	dcs      atomic.Int32             // DC slots created so far (monotone)
}

// relay sits between the network endpoint and a restartable server. The
// endpoint's handler is installed exactly once and forwards to the current
// server's handler; RestartServer holds the gate exclusively while swapping
// servers, so deliveries pause (preserving per-link FIFO order through the
// restart) instead of reaching a half-closed server.
//
// When dropRepl is set, replication-plane messages (batches, heartbeats,
// catch-up traffic) are discarded instead of paused — a dead machine
// receives nothing. RestartServer sets it for the crash window on
// catch-up-enabled deployments, and tests set it directly
// (DropInboundReplication) to sever a link mid-workload. Request/response
// traffic (slice reads, exchanges) still pauses: in a real deployment it
// rides an RPC layer with its own retries, and dropping it would wedge
// remote RO-TX coordinators.
type relay struct {
	inner    core.Transport
	gate     sync.RWMutex
	dropRepl atomic.Bool
	h        atomic.Pointer[netemu.Handler]
}

// isReplPlane reports whether m belongs to the replication plane — the
// messages a crashed or cut-off receiver genuinely loses. Membership
// traffic rides the same plane: a dead machine hears of no joins or leaves
// either (views re-converge afterwards through the lattice merge and the
// joiner's re-sent requests).
func isReplPlane(m any) bool {
	switch m.(type) {
	case msg.Replicate, msg.ReplicateBatch, msg.Heartbeat,
		msg.CatchUpRequest, msg.CatchUpReply, msg.CatchUpAck,
		msg.JoinRequest, msg.JoinAccept, msg.MembershipUpdate, msg.LeaveNotice,
		msg.EvictProposal, msg.EvictAck, msg.EvictNotice,
		msg.SlotMapUpdate, msg.SlotHandoff:
		return true
	}
	return false
}

func newRelay(inner core.Transport) *relay {
	r := &relay{inner: inner}
	inner.SetHandler(func(src netemu.NodeID, m any) {
		if r.dropRepl.Load() && isReplPlane(m) {
			return
		}
		r.gate.RLock()
		defer r.gate.RUnlock()
		if h := r.h.Load(); h != nil {
			(*h)(src, m)
		}
	})
	return r
}

func (r *relay) ID() netemu.NodeID             { return r.inner.ID() }
func (r *relay) Send(dst netemu.NodeID, m any) { r.inner.Send(dst, m) }
func (r *relay) SetHandler(h netemu.Handler)   { r.h.Store(&h) }

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.NumDCs < 1 || cfg.NumPartitions < 1 {
		return nil, fmt.Errorf("cluster: invalid layout %dx%d", cfg.NumDCs, cfg.NumPartitions)
	}
	if cfg.Engine != POCC && cfg.Engine != Cure && cfg.Engine != HAPOCC {
		return nil, errors.New("cluster: unknown engine")
	}
	if cfg.MaxDCs != 0 && cfg.MaxDCs < cfg.NumDCs {
		return nil, fmt.Errorf("cluster: MaxDCs %d below NumDCs %d", cfg.MaxDCs, cfg.NumDCs)
	}
	maxDCs := cfg.MaxDCs
	if maxDCs == 0 {
		maxDCs = cfg.NumDCs
	}
	if cfg.MaxPartitions != 0 && cfg.MaxPartitions < cfg.NumPartitions {
		return nil, fmt.Errorf("cluster: MaxPartitions %d below NumPartitions %d", cfg.MaxPartitions, cfg.NumPartitions)
	}
	if cfg.MaxPartitions > keyspace.NumSlots {
		return nil, fmt.Errorf("cluster: MaxPartitions %d exceeds the slot universe (%d)", cfg.MaxPartitions, keyspace.NumSlots)
	}
	maxParts := cfg.MaxPartitions
	if maxParts == 0 {
		maxParts = cfg.NumPartitions
	}
	if maxParts > cfg.NumPartitions && !keyspace.SlotAligned(cfg.NumPartitions) {
		// Reshard headroom is reserved, but the first reshard could never
		// run: the static hash%N layout the deployment starts on is only
		// expressible as a slot table when N divides the slot universe.
		return nil, fmt.Errorf("cluster: MaxPartitions headroom requires NumPartitions dividing %d (got %d); the static layout cannot otherwise be adopted as a slot table",
			keyspace.NumSlots, cfg.NumPartitions)
	}
	c := &Cluster{cfg: cfg, maxDCs: maxDCs, maxParts: maxParts, status: make([]uint8, maxDCs)}
	c.parts.Store(int32(cfg.NumPartitions))
	var transports map[netemu.NodeID]core.Transport
	if cfg.TCP {
		var err error
		transports, err = c.buildTCPTransports()
		if err != nil {
			return nil, err
		}
	} else {
		c.net = netemu.New(netemu.Config{
			Latency:    cfg.Latency,
			JitterFrac: cfg.JitterFrac,
			Seed:       cfg.Seed,
		})
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xc105))
	// The matrices hold a row for every DC slot that may ever exist, so
	// AddDC only fills entries in and the lock-free Server lookup never
	// races a reshape.
	c.servers = make([][]atomic.Pointer[core.Server], maxDCs)
	c.transports = make([][]core.Transport, maxDCs)
	c.skews = make([][]time.Duration, maxDCs)
	c.mx = make([][]*core.Metrics, maxDCs)
	if cfg.DataDir != "" {
		c.relays = make([][]*relay, maxDCs)
	}
	for dc := 0; dc < maxDCs; dc++ {
		// Columns are sized to MaxPartitions so SplitPartition only fills
		// entries in, mirroring the MaxDCs row reservation.
		c.servers[dc] = make([]atomic.Pointer[core.Server], maxParts)
		c.transports[dc] = make([]core.Transport, maxParts)
		c.skews[dc] = make([]time.Duration, maxParts)
		c.mx[dc] = make([]*core.Metrics, maxParts)
		if c.relays != nil {
			c.relays[dc] = make([]*relay, maxParts)
		}
	}

	// First pass: register every initial node's transport (and relay) before
	// any server starts. A started server heartbeats its siblings
	// immediately, so every endpoint must exist before the first server
	// comes up.
	for dc := 0; dc < cfg.NumDCs; dc++ {
		c.status[dc] = msg.DCActive
		for p := 0; p < cfg.NumPartitions; p++ {
			id := netemu.NodeID{DC: dc, Partition: p}
			if cfg.ClockSkew > 0 {
				c.skews[dc][p] = time.Duration(rng.Int64N(int64(2*cfg.ClockSkew))) - cfg.ClockSkew
			}
			var transport core.Transport
			if cfg.TCP {
				transport = transports[id]
			} else {
				transport = c.net.Register(id, nil)
			}
			if c.relays != nil {
				// Durable deployments interpose a relay so RestartServer can
				// pause delivery while it swaps the server behind it.
				rl := newRelay(transport)
				c.relays[dc][p] = rl
				transport = rl
			}
			c.transports[dc][p] = transport
			c.mx[dc][p] = &core.Metrics{}
		}
	}
	c.dcs.Store(int32(cfg.NumDCs))
	// Second pass: start the servers.
	for dc := 0; dc < cfg.NumDCs; dc++ {
		for p := 0; p < cfg.NumPartitions; p++ {
			srv, err := core.NewServer(c.serverConfig(dc, p))
			if err != nil {
				c.Close()
				return nil, err
			}
			c.servers[dc][p].Store(srv)
		}
	}
	return c, nil
}

// serverConfig assembles the core.Config of partition server (dc, p),
// reusing the node's transport, clock skew and metrics — the pieces that
// survive a RestartServer.
func (c *Cluster) serverConfig(dc, p int) core.Config {
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	// A server restarted while its DC is still bootstrapping resumes the
	// join: it must re-request, re-sync every link and re-announce — a
	// restart must not let a half-bootstrapped replica skip the
	// stabilization gate.
	return c.serverConfigLocked(dc, p, c.status[dc] == msg.DCJoining)
}

// newClock builds the node's clock: hybrid logical/physical by default,
// raw skewed physical time when Config.RawPhysicalClocks asks for the
// pre-HLC ablation variant. The drawn skew applies to both.
func (c *Cluster) newClock(dc, p int) *clock.Clock {
	if c.cfg.RawPhysicalClocks {
		return clock.New(c.skews[dc][p])
	}
	return clock.NewHLC(c.skews[dc][p])
}

// serverConfigLocked is serverConfig with memberMu held: the membership
// mirror (DC count, statuses, epoch) feeds the server's initial view, so a
// server started or restarted after the deployment grew or shrank begins
// from reality instead of the seed layout.
func (c *Cluster) serverConfigLocked(dc, p int, joining bool) core.Config {
	mode := core.Optimistic
	stab := c.cfg.StabilizationInterval
	blockTimeout := time.Duration(0)
	switch c.cfg.Engine {
	case Cure:
		mode = core.Pessimistic
	case HAPOCC:
		blockTimeout = c.cfg.BlockTimeout
	case POCC:
		stab = 0
	}
	var dataDir string
	if c.cfg.DataDir != "" {
		dataDir = filepath.Join(c.cfg.DataDir, fmt.Sprintf("dc%d-p%d", dc, p))
	}
	numDCs := int(c.dcs.Load())
	if numDCs < c.cfg.NumDCs {
		numDCs = c.cfg.NumDCs
	}
	// A server started or restarted after a reshard begins from the current
	// slot table and partition count; pre-reshard (slots nil) it gets no
	// table and routes by the static layout, exactly like the seed. An
	// in-flight reshard's staged table takes precedence: a donor restarted
	// between the fence install and the flip must come back fenced, or it
	// would accept moved-slot writes that are stranded once routing flips.
	numParts := int(c.parts.Load())
	var slots *keyspace.SlotMap
	if m := c.pendingSlots.Load(); m != nil {
		slots = m.Clone()
	} else if m := c.slots.Load(); m != nil {
		slots = m.Clone()
	}
	view := msg.Membership{
		Epoch:  c.epoch,
		Status: append([]uint8(nil), c.status[:numDCs]...),
	}
	for left, fs := range c.finals {
		if left < numDCs && p < len(fs) {
			view.SetFinal(left, fs[p])
		}
	}
	return core.Config{
		ID:                       netemu.NodeID{DC: dc, Partition: p},
		NumDCs:                   numDCs,
		NumPartitions:            numParts,
		MaxPartitions:            c.maxParts,
		SlotMap:                  slots,
		Clock:                    c.newClock(dc, p),
		Endpoint:                 c.transports[dc][p],
		DefaultMode:              mode,
		HeartbeatInterval:        c.cfg.HeartbeatInterval,
		StabilizationInterval:    stab,
		LeanStabilization:        c.cfg.LeanStabilization,
		GCInterval:               c.cfg.GCInterval,
		PutDepWait:               c.cfg.PutDepWait,
		BlockTimeout:             blockTimeout,
		ReplicationBatchSize:     c.cfg.ReplicationBatchSize,
		ReplicationFlushInterval: c.cfg.ReplicationFlushInterval,
		DataDir:                  dataDir,
		DurableOptions:           c.cfg.Durable,
		CatchUp:                  c.catchUp(),
		CatchUpMaxInFlight:       c.cfg.CatchUpMaxInFlight,
		MaxDCs:                   c.maxDCs,
		Joining:                  joining,
		JoinTimeout:              c.cfg.JoinTimeout,
		GCMaxHoldback:            c.cfg.GCMaxHoldback,
		Membership:               view,
		Metrics:                  c.mx[dc][p],
	}
}

// catchUp resolves the configured catch-up mode for this deployment.
func (c *Cluster) catchUp() bool { return c.cfg.CatchUp.enabled(c.cfg.DataDir != "") }

// RestartServer simulates a partition-server crash and recovery: the server
// is killed, a fresh one reopens the same durable data directory — its
// version chains and VV floor rebuilt from the snapshot and log tail — and
// takes over the node's network endpoint. Client operations racing the
// restart fail with core.ErrStopped and may be retried.
//
// It requires Config.DataDir: an in-memory server would restart empty, which
// is a data loss, not a recovery.
//
// With catch-up enabled (the default for durable deployments), the kill is
// a real crash: the outgoing replication buffer is discarded, not flushed —
// sibling DCs lose the tail of the update stream — and replication-plane
// messages arriving during the down window are dropped, as a dead machine
// would drop them. The restarted server and its siblings then detect the
// discontinuities through the link sequence numbers and resynchronize by
// WAL-shipped catch-up (internal/repl). With catch-up off, the legacy
// graceful semantics apply: the buffer is flushed and delivery pauses
// (never drops) through the swap. The torn-log recovery paths are covered
// separately by tests that truncate segment files on disk between a close
// and a reopen.
func (c *Cluster) RestartServer(dc, p int) error {
	if c.relays == nil {
		return errors.New("cluster: RestartServer requires Config.DataDir (durable engines)")
	}
	if dc < 0 || dc >= len(c.relays) || p < 0 || p >= c.numParts() || c.relays[dc][p] == nil {
		return fmt.Errorf("cluster: no server dc%d-p%d (DC never joined)", dc, p)
	}
	old := c.Server(dc, p)
	if old == nil {
		return fmt.Errorf("cluster: no running server dc%d-p%d (DC departed)", dc, p)
	}
	crash := c.catchUp()
	rl := c.relays[dc][p]
	if crash {
		// A dead machine receives nothing: drop replication traffic for the
		// whole down window (in-flight deliveries included, before the gate
		// settles). Catch-up repairs the loss after the restart — so the
		// drop must end when this function does, even on a failed reopen.
		rl.dropRepl.Store(true)
		defer rl.dropRepl.Store(false)
	}
	rl.gate.Lock() // drain in-flight request deliveries, pause new ones
	defer rl.gate.Unlock()
	if crash {
		old.Crash()
	} else {
		old.Close()
	}
	srv, err := core.NewServer(c.serverConfig(dc, p))
	if err != nil {
		return fmt.Errorf("cluster: restart dc%d-p%d: %w", dc, p, err)
	}
	c.servers[dc][p].Store(srv)
	// Re-read the routing state after publishing the server: a reshard that
	// flipped (or aborted) between the config snapshot above and now has
	// already walked the server matrix, so its install may have hit the dead
	// predecessor. The lattice merge makes the re-install idempotent.
	if m := c.pendingSlots.Load(); m != nil {
		srv.InstallSlotMap(m)
	} else if m := c.slots.Load(); m != nil {
		srv.InstallSlotMap(m)
	}
	return nil
}

// DropInboundReplication severs (drop=true) or restores the
// replication-plane delivery to one node: while severed, batches,
// heartbeats and catch-up traffic addressed to the node are discarded — not
// buffered — emulating a receiver cut off from the update stream. On
// restore the node sees a sequence gap on each inbound link and, with
// catch-up enabled, resynchronizes from its siblings' logs. Requires
// Config.DataDir (the relay interposer exists only on durable
// deployments).
func (c *Cluster) DropInboundReplication(dc, p int, drop bool) error {
	if c.relays == nil {
		return errors.New("cluster: DropInboundReplication requires Config.DataDir")
	}
	c.relays[dc][p].dropRepl.Store(drop)
	return nil
}

// AddDC grows the deployment by one data center: it registers the new DC's
// endpoints, starts its partition servers in joining mode, and returns the
// new DC id. The joiners bootstrap themselves — each sends a JoinRequest to
// its sibling partition in every active DC, pulls that sibling's history
// through WAL-shipped catch-up, and announces itself Active once every
// inbound link is synced (see internal/repl). AddDC returns as soon as the
// servers are up; use WaitForJoin to block until the bootstrap finished.
//
// It requires Config.DataDir: the join bootstrap is the catch-up protocol,
// which streams history out of the siblings' write-ahead logs — an
// in-memory deployment has nothing to bootstrap a joiner from. The
// deployment must have MaxDCs headroom; a departed DC's slot is never
// reused.
func (c *Cluster) AddDC() (int, error) {
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	if c.cfg.DataDir == "" {
		return 0, errors.New("cluster: AddDC requires Config.DataDir (joiners bootstrap from the siblings' WALs)")
	}
	if !c.catchUp() {
		return 0, errors.New("cluster: AddDC requires catch-up (CatchUpOff disables the join bootstrap)")
	}
	dc := int(c.dcs.Load())
	if dc >= c.maxDCs {
		return 0, fmt.Errorf("cluster: no MaxDCs headroom left (capacity %d used up)", c.maxDCs)
	}
	// Register the new DC's endpoints (and relays) before any server — ours
	// or a sibling answering a JoinRequest — can address them.
	rng := rand.New(rand.NewPCG(c.cfg.Seed, 0xadd<<16|uint64(dc)))
	for p := 0; p < c.numParts(); p++ {
		id := netemu.NodeID{DC: dc, Partition: p}
		if c.cfg.ClockSkew > 0 {
			c.skews[dc][p] = time.Duration(rng.Int64N(int64(2*c.cfg.ClockSkew))) - c.cfg.ClockSkew
		}
		var transport core.Transport
		if c.cfg.TCP {
			node, err := tcpnet.Listen(id, "127.0.0.1:0")
			if err != nil {
				return 0, fmt.Errorf("cluster: join dc%d: %w", dc, err)
			}
			c.tcpNodes = append(c.tcpNodes, node)
			c.tcpDir[id] = node.Addr()
			transport = node
		} else {
			transport = c.net.Register(id, nil)
		}
		rl := newRelay(transport) // DataDir is required, so relays exist
		c.relays[dc][p] = rl
		c.transports[dc][p] = rl
		c.mx[dc][p] = &core.Metrics{}
	}
	if c.cfg.TCP {
		// Every node — old and new — needs the extended directory before the
		// first send to or from the new DC.
		for _, n := range c.tcpNodes {
			n.Connect(c.tcpDir)
		}
	}
	c.epoch++
	c.status[dc] = msg.DCJoining
	c.dcs.Store(int32(dc + 1))
	for p := 0; p < c.numParts(); p++ {
		srv, err := core.NewServer(c.serverConfigLocked(dc, p, true))
		if err != nil {
			// Unwind the half-started DC: the servers already running
			// announce their departure (so siblings that merged the join
			// drop the dead links) and close; the id stays burned.
			for q := 0; q < p; q++ {
				if started := c.servers[dc][q].Swap(nil); started != nil {
					started.AnnounceLeave()
					started.Close()
				}
			}
			c.status[dc] = msg.DCLeft
			c.epoch++
			return 0, fmt.Errorf("cluster: join dc%d-p%d: %w", dc, p, err)
		}
		c.servers[dc][p].Store(srv)
	}
	return dc, nil
}

// WaitForJoin blocks until every partition server of dc has finished its
// bootstrap — every inbound link synced via catch-up and the DC announced
// Active — or the timeout expires. On success the admin-side membership
// mirror is promoted too, so servers restarted later start from the settled
// view. If a server gave up soliciting (Config.JoinTimeout elapsed before
// the bootstrap completed), the half-joined DC is torn down cleanly — its
// servers announce their departure and close, the slot's id stays burned —
// and WaitForJoin reports the failure.
func (c *Cluster) WaitForJoin(dc int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		done := true
		for p := 0; p < c.numParts(); p++ {
			srv := c.Server(dc, p)
			if srv != nil && srv.JoinFailed() {
				c.unwindJoin(dc)
				return fmt.Errorf("cluster: dc%d gave up joining (JoinTimeout %v); torn down", dc, c.cfg.JoinTimeout)
			}
			if srv == nil || !srv.Bootstrapped() {
				done = false
				break
			}
		}
		if done {
			c.memberMu.Lock()
			if c.status[dc] == msg.DCJoining {
				c.status[dc] = msg.DCActive
				c.epoch++
			}
			c.memberMu.Unlock()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: dc%d did not finish joining within %v (catch-up stats %+v)",
				dc, timeout, c.ReplicationStats())
		}
		time.Sleep(time.Millisecond)
	}
}

// unwindJoin tears a half-joined DC down: every still-running server
// announces its departure (so siblings that merged the join drop the dead
// links) and closes, and the mirror marks the slot Left for good.
func (c *Cluster) unwindJoin(dc int) {
	for p := 0; p < c.numParts(); p++ {
		if srv := c.servers[dc][p].Swap(nil); srv != nil {
			srv.AnnounceLeave()
			srv.Close()
		}
	}
	c.memberMu.Lock()
	if c.status[dc] != msg.DCLeft {
		c.status[dc] = msg.DCLeft
		c.epoch++
	}
	c.memberMu.Unlock()
}

// RemoveDC removes a data center from the deployment. Each of its partition
// servers announces the departure — flushing its replication buffer and
// following it with a LeaveNotice on the same FIFO links, so the surviving
// DCs hold the departed history in full and freeze its version-vector
// entries at the announced final timestamps — and is then closed. The slot
// is retired for good: its id is never reused (its timestamps live on in
// the survivors' stores), sessions pinned to it fail their next operation,
// and stabilization on the survivors keeps advancing because nothing can
// depend on the departed DC beyond its final timestamp.
func (c *Cluster) RemoveDC(dc int) error {
	c.memberMu.Lock()
	if dc < 0 || dc >= int(c.dcs.Load()) {
		c.memberMu.Unlock()
		return fmt.Errorf("cluster: no data center %d", dc)
	}
	if c.status[dc] == msg.DCLeft {
		c.memberMu.Unlock()
		return fmt.Errorf("cluster: dc%d already left", dc)
	}
	live := 0
	for _, st := range c.status {
		if st == msg.DCActive || st == msg.DCJoining {
			live++
		}
	}
	if live <= 1 {
		c.memberMu.Unlock()
		return errors.New("cluster: cannot remove the last data center")
	}
	c.status[dc] = msg.DCLeft
	c.epoch++
	c.memberMu.Unlock()
	for p := 0; p < c.numParts(); p++ {
		srv := c.servers[dc][p].Swap(nil)
		if srv == nil {
			continue // half-started join slot; nothing ever ran here
		}
		srv.AnnounceLeave()
		srv.Close()
	}
	return nil
}

// KillDC crashes every partition server of a data center at once — a whole
// machine-room failure. The dead DC's outgoing replication tails are
// discarded and its endpoints drop all inbound replication traffic from then
// on; the membership mirror still counts it as a member, so the survivors'
// GSS freezes at the dead DC's last replicated timestamps until
// ForceRemoveDC evicts it. The slot cannot be restarted afterwards (the
// forced-removal semantics discard its un-agreed suffix for good). Requires
// Config.DataDir (the relay interposer).
func (c *Cluster) KillDC(dc int) error {
	if c.relays == nil {
		return errors.New("cluster: KillDC requires Config.DataDir")
	}
	c.memberMu.Lock()
	if dc < 0 || dc >= int(c.dcs.Load()) {
		c.memberMu.Unlock()
		return fmt.Errorf("cluster: no data center %d", dc)
	}
	if c.status[dc] == msg.DCLeft {
		c.memberMu.Unlock()
		return fmt.Errorf("cluster: dc%d already left", dc)
	}
	c.memberMu.Unlock()
	for p := 0; p < c.numParts(); p++ {
		if rl := c.relays[dc][p]; rl != nil {
			rl.dropRepl.Store(true) // a dead machine receives nothing
		}
		if srv := c.servers[dc][p].Swap(nil); srv != nil {
			srv.Crash()
		}
	}
	return nil
}

// ForceRemoveDC forcibly removes a crashed data center: the surviving DCs
// run the eviction protocol (core.Server.ForceRemove) for every partition,
// agreeing per link on the highest update timestamp any of them replicated
// from the dead DC; each survivor freezes its membership entry at that final
// and discards any version above it. If the DC's servers are still running
// they are killed first — forced removal is for dead DCs, and an evicted
// slot can never come back (its un-agreed suffix is gone). timeout bounds
// each partition's proposal round (0 selects a default). On an error the
// eviction may be partially applied; calling ForceRemoveDC again resumes it
// (the proposal round is idempotent).
func (c *Cluster) ForceRemoveDC(dead int, timeout time.Duration) error {
	c.memberMu.Lock()
	if dead < 0 || dead >= int(c.dcs.Load()) {
		c.memberMu.Unlock()
		return fmt.Errorf("cluster: no data center %d", dead)
	}
	if c.status[dead] == msg.DCLeft {
		c.memberMu.Unlock()
		return fmt.Errorf("cluster: dc%d already left", dead)
	}
	status := append([]uint8(nil), c.status...)
	c.memberMu.Unlock()
	live := 0
	for dc, st := range status {
		if dc != dead && st == msg.DCActive {
			live++
		}
	}
	if live == 0 {
		return errors.New("cluster: no active survivor to coordinate the eviction")
	}
	if err := c.KillDC(dead); err != nil {
		return err
	}
	// One eviction round per partition: each link (dead,p)→(·,p) has its own
	// agreed final, proposed by the lowest live DC holding that partition.
	finals := make([]vclock.Timestamp, c.numParts())
	for p := range finals {
		var prop *core.Server
		for dc := 0; dc < int(c.dcs.Load()); dc++ {
			if dc == dead || status[dc] != msg.DCActive {
				continue
			}
			if srv := c.Server(dc, p); srv != nil {
				prop = srv
				break
			}
		}
		if prop == nil {
			return fmt.Errorf("cluster: no running survivor holds partition %d", p)
		}
		f, err := prop.ForceRemove(dead, timeout)
		if err != nil {
			return fmt.Errorf("cluster: evict dc%d (partition %d): %w", dead, p, err)
		}
		finals[p] = f
	}
	c.memberMu.Lock()
	if c.finals == nil {
		c.finals = make(map[int][]vclock.Timestamp)
	}
	c.finals[dead] = finals
	if c.status[dead] != msg.DCLeft {
		c.status[dead] = msg.DCLeft
		c.epoch++
	}
	c.memberMu.Unlock()
	return nil
}

// NumDCs returns the number of data-center slots created so far, including
// departed ones (slots are never reused, so this is also one past the
// highest DC id). Use Membership for per-DC statuses.
func (c *Cluster) NumDCs() int { return int(c.dcs.Load()) }

// MaxDCs returns the deployment's DC-slot capacity.
func (c *Cluster) MaxDCs() int { return c.maxDCs }

// Membership returns the admin-side membership mirror. The authoritative
// views live on the servers (core.Server.Membership) and converge through
// the join/leave protocol; the mirror is what new and restarted servers are
// seeded with.
func (c *Cluster) Membership() msg.Membership {
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	return msg.Membership{Epoch: c.epoch, Status: append([]uint8(nil), c.status...)}
}

// StorageErr returns the first sticky persistence error reported by any
// server's engine, or nil. Durable deployments should poll it: a failed
// engine keeps serving from memory but no longer survives a crash.
func (c *Cluster) StorageErr() error {
	for dc := 0; dc < c.NumDCs(); dc++ {
		for p := 0; p < c.numParts(); p++ {
			srv := c.Server(dc, p)
			if srv == nil {
				continue // departed DC
			}
			if err := srv.StorageErr(); err != nil {
				return fmt.Errorf("cluster: dc%d-p%d storage: %w", dc, p, err)
			}
		}
	}
	return nil
}

// StorageStats aggregates every server's storage statistics, sampled with
// the engines' single-pass Stats so each server's keys/versions pair is
// consistent per shard.
func (c *Cluster) StorageStats() storage.StoreStats {
	var st storage.StoreStats
	for dc := 0; dc < c.NumDCs(); dc++ {
		for p := 0; p < c.numParts(); p++ {
			srv := c.Server(dc, p)
			if srv == nil {
				continue // departed DC
			}
			es := srv.Store().Stats()
			st.Keys += es.Keys
			st.Versions += es.Versions
		}
	}
	return st
}

// DurableStats aggregates every durable engine's commit-pipeline and
// catch-up seek counters. All-zero for in-memory deployments.
func (c *Cluster) DurableStats() storage.DurableStats {
	var st storage.DurableStats
	for dc := 0; dc < c.NumDCs(); dc++ {
		for p := 0; p < c.numParts(); p++ {
			srv := c.Server(dc, p)
			if srv == nil {
				continue // departed DC
			}
			if d, ok := srv.Store().(interface{ DurableStats() storage.DurableStats }); ok {
				st.Merge(d.DurableStats())
			}
		}
	}
	return st
}

// ReplicationStats summarizes the state of the replication plane across
// the deployment.
type ReplicationStats struct {
	// LagPerDC is, per data center, the worst replication lag any of its
	// partition servers observes against any remote DC: the server's own
	// version-vector entry minus the remote one, in time units. A link
	// frozen by an in-flight catch-up shows up here as growing lag.
	LagPerDC []time.Duration
	// LagPerLink breaks the lag down by link: LagPerLink[dst][src] is the
	// worst lag any partition server of DC dst observes on its inbound
	// stream from DC src (zero on the diagonal, for departed DCs, and for
	// slots that never joined). LagPerDC[dst] is the row maximum.
	LagPerLink [][]time.Duration
	// CatchUpsRequested / CatchUpsCompleted count inbound catch-up rounds
	// started and finished across all servers; CatchUpsServed counts the
	// WAL-shipped streams served to lagging siblings.
	CatchUpsRequested uint64
	CatchUpsCompleted uint64
	CatchUpsServed    uint64
	// CatchUpsActive is the number of links currently frozen mid-round.
	CatchUpsActive int
	// FullResyncs counts catch-up rounds answered with a full-history resync
	// (the requested range was checkpoint-pruned on the sender).
	FullResyncs uint64
	// LinkStates[dst][src] is the health of DC dst's inbound link from DC
	// src — the worst state any of dst's partition servers reports: active,
	// catching-up, frozen, evicted, idle, or self on the diagonal. Empty for
	// departed/never-joined dst rows.
	LinkStates [][]string
	// GCHoldbackAge is the age of the oldest live GC holdback anywhere in
	// the deployment — how long the worst laggard has been deferring GC.
	GCHoldbackAge time.Duration
}

// linkStateRank orders link states by severity for the per-DC aggregation.
func linkStateRank(s string) int {
	switch s {
	case "evicted":
		return 5
	case "frozen":
		return 4
	case "catching-up":
		return 3
	case "idle":
		return 2
	case "active":
		return 1
	}
	return 0
}

// MaxLag returns the worst per-DC lag.
func (r ReplicationStats) MaxLag() time.Duration {
	var max time.Duration
	for _, l := range r.LagPerDC {
		if l > max {
			max = l
		}
	}
	return max
}

// ReplicationStats samples every server's replication lag and catch-up
// counters.
func (c *Cluster) ReplicationStats() ReplicationStats {
	dcs := c.NumDCs()
	st := ReplicationStats{
		LagPerDC:   make([]time.Duration, dcs),
		LagPerLink: make([][]time.Duration, dcs),
	}
	st.LinkStates = make([][]string, dcs)
	for dc := 0; dc < dcs; dc++ {
		st.LagPerLink[dc] = make([]time.Duration, dcs)
		st.LinkStates[dc] = make([]string, dcs)
		for p := 0; p < c.numParts(); p++ {
			srv := c.Server(dc, p)
			if srv == nil {
				continue // departed DC
			}
			for src, lag := range srv.ReplicationLag() {
				if src < dcs && lag > st.LagPerLink[dc][src] {
					st.LagPerLink[dc][src] = lag
				}
				if lag > st.LagPerDC[dc] {
					st.LagPerDC[dc] = lag
				}
			}
			for src, state := range srv.LinkStates() {
				if src < dcs && linkStateRank(state) > linkStateRank(st.LinkStates[dc][src]) {
					st.LinkStates[dc][src] = state
				}
			}
			if age := srv.GCHoldbackAge(); age > st.GCHoldbackAge {
				st.GCHoldbackAge = age
			}
			cs := srv.CatchUpStats()
			st.CatchUpsRequested += cs.Requested
			st.CatchUpsCompleted += cs.Completed
			st.CatchUpsServed += cs.Served
			st.CatchUpsActive += cs.ActiveIn
			st.FullResyncs += cs.FullResyncs
		}
	}
	return st
}

// buildTCPTransports binds a loopback TCP node for every server and
// distributes the address directory.
func (c *Cluster) buildTCPTransports() (map[netemu.NodeID]core.Transport, error) {
	c.tcpDir = make(map[netemu.NodeID]string)
	out := make(map[netemu.NodeID]core.Transport)
	for dc := 0; dc < c.cfg.NumDCs; dc++ {
		for p := 0; p < c.numParts(); p++ {
			id := netemu.NodeID{DC: dc, Partition: p}
			node, err := tcpnet.Listen(id, "127.0.0.1:0")
			if err != nil {
				for _, n := range c.tcpNodes {
					n.Close()
				}
				return nil, fmt.Errorf("cluster: %w", err)
			}
			c.tcpNodes = append(c.tcpNodes, node)
			c.tcpDir[id] = node.Addr()
			out[id] = node
		}
	}
	for _, n := range c.tcpNodes {
		n.Connect(c.tcpDir)
	}
	return out, nil
}

// Close stops every server and the network. Close must not race an
// in-flight RestartServer (tests restart, then clean up).
func (c *Cluster) Close() {
	for dc := range c.servers {
		for p := range c.servers[dc] {
			if s := c.servers[dc][p].Load(); s != nil {
				s.Close()
			}
		}
	}
	if c.net != nil {
		c.net.Close()
	}
	c.memberMu.Lock()
	nodes := c.tcpNodes
	c.memberMu.Unlock()
	for _, n := range nodes {
		n.Close()
	}
}

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Network exposes the emulated network (partition injection, message
// counts). It returns nil in TCP mode.
func (c *Cluster) Network() *netemu.Network { return c.net }

// Messages returns the total number of protocol messages sent, in either
// transport mode.
func (c *Cluster) Messages() uint64 {
	if c.net != nil {
		return c.net.MessageCount()
	}
	c.memberMu.Lock()
	nodes := c.tcpNodes
	c.memberMu.Unlock()
	var total uint64
	for _, n := range nodes {
		total += n.Sent()
	}
	return total
}

// Server returns the partition server p of data center dc (the current one,
// if the node has been restarted), or nil for a DC that departed or never
// joined. The lookup is a lock-free atomic load, so the per-operation
// routing of sessions costs nothing extra.
func (c *Cluster) Server(dc, p int) *core.Server {
	if dc < 0 || dc >= len(c.servers) || p < 0 || p >= len(c.servers[dc]) {
		return nil
	}
	return c.servers[dc][p].Load()
}

// numParts returns the number of partition servers currently live in every
// member DC (grows on SplitPartition).
func (c *Cluster) numParts() int { return int(c.parts.Load()) }

// NumPartitions returns the number of live partition servers per DC.
func (c *Cluster) NumPartitions() int { return c.numParts() }

// MaxPartitions returns the deployment's partition capacity.
func (c *Cluster) MaxPartitions() int { return c.maxParts }

// SlotTable returns a copy of the cluster's current routing table, or nil if
// the deployment still routes by the static layout (no reshard has run).
func (c *Cluster) SlotTable() *keyspace.SlotMap {
	if m := c.slots.Load(); m != nil {
		return m.Clone()
	}
	return nil
}

// routingMap returns the effective slot table: the installed one, or the
// default layout materialized (reshards start from it).
func (c *Cluster) routingMap() *keyspace.SlotMap {
	if m := c.slots.Load(); m != nil {
		return m
	}
	return keyspace.DefaultMap(c.numParts())
}

// PartitionOf returns the partition responsible for key. Until the first
// reshard this is the static hash layout; afterwards the slot table decides,
// loaded atomically so sessions pick up an epoch flip between operations.
func (c *Cluster) PartitionOf(key string) int {
	if m := c.slots.Load(); m != nil {
		return m.OwnerOf(key)
	}
	return keyspace.PartitionOf(key, c.cfg.NumPartitions)
}

// dcRouter routes a session's requests within one data center, resolving
// servers per operation so sessions transparently follow a RestartServer.
type dcRouter struct {
	c     *Cluster
	dc    int
	coord int
}

func (r *dcRouter) ServerFor(key string) *core.Server {
	return r.c.Server(r.dc, r.c.PartitionOf(key))
}
func (r *dcRouter) Coordinator() *core.Server { return r.c.Server(r.dc, r.coord) }
func (r *dcRouter) PartitionOf(key string) int {
	return r.c.PartitionOf(key)
}

// NewSession opens a client session against data center dc. The session's
// coordinator is chosen round-robin, emulating clients collocated with
// servers.
func (c *Cluster) NewSession(dc int) (*client.Session, error) {
	return c.newSession(dc, c.cfg.Engine == HAPOCC)
}

// NewRawSession is NewSession without HA-POCC auto-fallback: a suspected
// partition surfaces as core.ErrSessionClosed instead of being recovered
// inside the session. Fault-injection harnesses use it so session
// re-initialization is explicit — an external causality checker must drop
// its recorded history exactly when the client drops its dependency state,
// which auto-fallback would do invisibly mid-operation.
func (c *Cluster) NewRawSession(dc int) (*client.Session, error) {
	return c.newSession(dc, false)
}

func (c *Cluster) newSession(dc int, autoFallback bool) (*client.Session, error) {
	if dc < 0 || dc >= c.NumDCs() || c.Server(dc, 0) == nil {
		return nil, fmt.Errorf("cluster: no data center %d", dc)
	}
	coord := int(c.rr.Add(1) % uint64(c.numParts()))
	mode := core.Optimistic
	if c.cfg.Engine == Cure {
		mode = core.Pessimistic
	}
	return client.NewSession(client.Config{
		Router: &dcRouter{c: c, dc: dc, coord: coord},
		// Dependency vectors are sized to the deployment's capacity, not its
		// current width, so a session opened before a DC joins tracks the
		// joiner's writes without resizing mid-flight.
		NumDCs:         c.maxDCs,
		Mode:           mode,
		RequestLatency: c.cfg.SessionLatency,
		AutoFallback:   autoFallback,
		// A session parked on a fenced slot must outlast the slowest healthy
		// reshard, whose drain phase is bounded by the cluster's configured
		// timeout — otherwise it surfaces ErrWrongSlotEpoch for a migration
		// that completes moments later.
		SlotRetryBudget: 2 * c.reshardTimeout(),
	})
}

// Seed pre-loads a key with an initial value into every data center, the way
// the paper's loader populates each partition before an experiment. Seeded
// versions carry tiny timestamps and empty dependency vectors, so they are
// immediately visible and stable everywhere.
func (c *Cluster) Seed(key string, value []byte) {
	ut := vclock.Timestamp(c.seedSeq.Add(1))
	p := c.PartitionOf(key)
	for dc := 0; dc < c.NumDCs(); dc++ {
		srv := c.Server(dc, p)
		if srv == nil {
			continue // departed DC
		}
		v := &item.Version{
			Key:        key,
			Value:      append([]byte(nil), value...),
			SrcReplica: 0,
			UpdateTime: ut,
			Deps:       vclock.New(c.maxDCs),
		}
		srv.Store().Insert(v)
	}
}

// SeedTable pre-loads every key of a keyspace table with an 8-byte value.
func (c *Cluster) SeedTable(table *keyspace.Table) {
	for p := 0; p < table.Partitions(); p++ {
		for _, k := range table.AllKeys(p) {
			c.Seed(k, []byte("00000000"))
		}
	}
}

// Aggregate is the cluster-wide union of per-server metrics.
type Aggregate struct {
	GetBlocking metrics.BlockingSnapshot
	PutBlocking metrics.BlockingSnapshot
	TxBlocking  metrics.BlockingSnapshot
	GetStale    metrics.StalenessSnapshot
	TxStale     metrics.StalenessSnapshot
}

// Blocking merges GET, PUT and slice-read blocking, the aggregate Fig. 2a /
// 3c report.
func (a Aggregate) Blocking() metrics.BlockingSnapshot {
	out := a.GetBlocking
	out.Add(a.PutBlocking)
	out.Add(a.TxBlocking)
	return out
}

// Metrics aggregates every server's statistics.
func (c *Cluster) Metrics() Aggregate {
	var agg Aggregate
	for dc := range c.mx {
		for _, m := range c.mx[dc] {
			if m == nil {
				continue // DC slot never joined
			}
			agg.GetBlocking.Add(m.GetBlocking.Snapshot())
			agg.PutBlocking.Add(m.PutBlocking.Snapshot())
			agg.TxBlocking.Add(m.TxBlocking.Snapshot())
			agg.GetStale.Add(m.GetStale.Snapshot())
			agg.TxStale.Add(m.TxStale.Snapshot())
		}
	}
	return agg
}

// ReadAt performs a raw GET against a specific DC with an empty dependency
// vector (monitoring helper for tests and examples).
func (c *Cluster) ReadAt(dc int, key string) (msg.ItemReply, error) {
	srv := c.Server(dc, c.PartitionOf(key))
	if srv == nil {
		return msg.ItemReply{}, fmt.Errorf("cluster: no data center %d", dc)
	}
	return srv.Get(key, vclock.New(c.maxDCs), core.Optimistic)
}
