// Package cluster assembles a full geo-replicated deployment: M data centers
// × N partitions of core.Server connected by an emulated network with
// injected inter-DC latencies, per-node skewed clocks, and client sessions
// attached to a DC. It provides the three engine presets the evaluation
// compares: POCC, Cure* and HA-POCC.
package cluster

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/item"
	"repro/internal/keyspace"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/netemu"
	"repro/internal/storage"
	"repro/internal/tcpnet"
	"repro/internal/vclock"
)

// Engine selects the protocol preset.
type Engine int

// Engine presets.
const (
	// POCC is the paper's optimistic system: no stabilization, blocking
	// dependency resolution.
	POCC Engine = iota + 1
	// Cure is the pessimistic baseline Cure*: stabilization every
	// StabilizationInterval, stable-visibility reads.
	Cure
	// HAPOCC is highly available POCC: optimistic with infrequent
	// stabilization and block-timeout session fallback.
	HAPOCC
)

func (e Engine) String() string {
	switch e {
	case POCC:
		return "POCC"
	case Cure:
		return "Cure*"
	case HAPOCC:
		return "HA-POCC"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Config parameterizes a deployment.
type Config struct {
	NumDCs        int
	NumPartitions int
	Engine        Engine

	// HeartbeatInterval is Δ (1 ms in the paper).
	HeartbeatInterval time.Duration
	// StabilizationInterval: 5 ms for Cure* and 500 ms for HA-POCC in the
	// paper's spirit; ignored for POCC.
	StabilizationInterval time.Duration
	// GCInterval enables the garbage-collection exchange (0 disables).
	GCInterval time.Duration
	// PutDepWait enables Algorithm 2 line 6 (the evaluation enables it).
	PutDepWait bool
	// ReplicationBatchSize caps the per-DC replication buffer before an
	// inline flush (0 = core default, 1 = unbatched).
	ReplicationBatchSize int
	// ReplicationFlushInterval is the replication buffer flush cadence
	// (0 defaults to the heartbeat interval Δ; negative disables batching).
	ReplicationFlushInterval time.Duration
	// BlockTimeout enables HA-POCC partition suspicion (HAPOCC only).
	BlockTimeout time.Duration
	// ClockSkew bounds the per-node clock offset: each node's skew is drawn
	// uniformly from [-ClockSkew, +ClockSkew], emulating loose NTP sync.
	ClockSkew time.Duration
	// Latency is the inter-node latency function (see AWSLatency). Nil means
	// zero latency.
	Latency netemu.LatencyFunc
	// JitterFrac adds uniform jitter to every message delay.
	JitterFrac float64
	// SessionLatency is the injected one-way client↔server delay.
	SessionLatency time.Duration
	// Seed drives all emulated randomness.
	Seed uint64
	// TCP runs the inter-node traffic over real loopback TCP connections
	// (internal/tcpnet) instead of the emulated network. Latency, jitter and
	// partition injection are unavailable in this mode.
	TCP bool
	// DataDir enables durable per-server storage: every partition server
	// opens a WAL-backed storage.Durable engine under
	// DataDir/dc<m>-p<n> and can be crash-restarted from it (see
	// RestartServer). Empty keeps the default in-memory engines.
	DataDir string
	// Durable tunes the WAL-backed engines opened for DataDir: checkpoint
	// trigger, segment size and fsync policy (storage.DurableOptions).
	// Ignored without DataDir.
	Durable storage.DurableOptions
	// CatchUp selects the replication catch-up mode (sequenced streams +
	// WAL-shipped resync, internal/repl). CatchUpAuto — the default —
	// enables it exactly when the deployment is durable (DataDir set);
	// CatchUpOn forces it (senders without a WAL answer catch-up requests
	// with Unsupported); CatchUpOff keeps the optimistic pre-catch-up
	// application everywhere.
	CatchUp CatchUpMode
	// CatchUpMaxInFlight bounds the un-acked bytes per outbound catch-up
	// stream (0 = 1 MiB): the sender's backpressure window.
	CatchUpMaxInFlight int
}

// CatchUpMode selects the replication catch-up behavior (Config.CatchUp).
type CatchUpMode int

// Catch-up modes.
const (
	// CatchUpAuto enables catch-up exactly when the deployment is durable.
	CatchUpAuto CatchUpMode = iota
	// CatchUpOn forces catch-up on (useful for mixed experiments).
	CatchUpOn
	// CatchUpOff disables catch-up (the pre-sequencing semantics: a crashed
	// server's unflushed replication tail is silently lost).
	CatchUpOff
)

// enabled resolves the mode against the deployment's durability.
func (m CatchUpMode) enabled(durable bool) bool {
	switch m {
	case CatchUpOn:
		return true
	case CatchUpOff:
		return false
	default:
		return durable
	}
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.HeartbeatInterval == 0 {
		out.HeartbeatInterval = time.Millisecond
	}
	if out.StabilizationInterval == 0 {
		switch out.Engine {
		case Cure:
			out.StabilizationInterval = 5 * time.Millisecond
		case HAPOCC:
			out.StabilizationInterval = 500 * time.Millisecond
		}
	}
	if out.Engine == HAPOCC && out.BlockTimeout == 0 {
		out.BlockTimeout = 250 * time.Millisecond
	}
	return out
}

// Cluster is a running deployment.
type Cluster struct {
	cfg      Config
	net      *netemu.Network // nil in TCP mode
	tcpNodes []*tcpnet.Node  // nil in emulated mode

	// servers is the [dc][partition] matrix; entries are atomic pointers so
	// sessions resolve the current server lock-free per operation while
	// RestartServer swaps one underneath them.
	servers    [][]atomic.Pointer[core.Server]
	transports [][]core.Transport
	relays     [][]*relay // non-nil only for durable (restartable) clusters
	skews      [][]time.Duration
	mx         [][]*core.Metrics // [dc][partition]
	seedSeq    atomic.Uint64     // timestamps for pre-loaded data
	rr         atomic.Uint64     // round-robin coordinator placement
}

// relay sits between the network endpoint and a restartable server. The
// endpoint's handler is installed exactly once and forwards to the current
// server's handler; RestartServer holds the gate exclusively while swapping
// servers, so deliveries pause (preserving per-link FIFO order through the
// restart) instead of reaching a half-closed server.
//
// When dropRepl is set, replication-plane messages (batches, heartbeats,
// catch-up traffic) are discarded instead of paused — a dead machine
// receives nothing. RestartServer sets it for the crash window on
// catch-up-enabled deployments, and tests set it directly
// (DropInboundReplication) to sever a link mid-workload. Request/response
// traffic (slice reads, exchanges) still pauses: in a real deployment it
// rides an RPC layer with its own retries, and dropping it would wedge
// remote RO-TX coordinators.
type relay struct {
	inner    core.Transport
	gate     sync.RWMutex
	dropRepl atomic.Bool
	h        atomic.Pointer[netemu.Handler]
}

// isReplPlane reports whether m belongs to the replication plane — the
// messages a crashed or cut-off receiver genuinely loses.
func isReplPlane(m any) bool {
	switch m.(type) {
	case msg.Replicate, msg.ReplicateBatch, msg.Heartbeat,
		msg.CatchUpRequest, msg.CatchUpReply, msg.CatchUpAck:
		return true
	}
	return false
}

func newRelay(inner core.Transport) *relay {
	r := &relay{inner: inner}
	inner.SetHandler(func(src netemu.NodeID, m any) {
		if r.dropRepl.Load() && isReplPlane(m) {
			return
		}
		r.gate.RLock()
		defer r.gate.RUnlock()
		if h := r.h.Load(); h != nil {
			(*h)(src, m)
		}
	})
	return r
}

func (r *relay) ID() netemu.NodeID             { return r.inner.ID() }
func (r *relay) Send(dst netemu.NodeID, m any) { r.inner.Send(dst, m) }
func (r *relay) SetHandler(h netemu.Handler)   { r.h.Store(&h) }

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.NumDCs < 1 || cfg.NumPartitions < 1 {
		return nil, fmt.Errorf("cluster: invalid layout %dx%d", cfg.NumDCs, cfg.NumPartitions)
	}
	if cfg.Engine != POCC && cfg.Engine != Cure && cfg.Engine != HAPOCC {
		return nil, errors.New("cluster: unknown engine")
	}
	c := &Cluster{cfg: cfg}
	var transports map[netemu.NodeID]core.Transport
	if cfg.TCP {
		var err error
		transports, err = c.buildTCPTransports()
		if err != nil {
			return nil, err
		}
	} else {
		c.net = netemu.New(netemu.Config{
			Latency:    cfg.Latency,
			JitterFrac: cfg.JitterFrac,
			Seed:       cfg.Seed,
		})
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xc105))
	c.servers = make([][]atomic.Pointer[core.Server], cfg.NumDCs)
	c.transports = make([][]core.Transport, cfg.NumDCs)
	c.skews = make([][]time.Duration, cfg.NumDCs)
	c.mx = make([][]*core.Metrics, cfg.NumDCs)
	if cfg.DataDir != "" {
		c.relays = make([][]*relay, cfg.NumDCs)
	}

	// First pass: register every node's transport (and relay) before any
	// server starts. A started server heartbeats its siblings immediately,
	// so every endpoint must exist before the first server comes up.
	for dc := 0; dc < cfg.NumDCs; dc++ {
		c.servers[dc] = make([]atomic.Pointer[core.Server], cfg.NumPartitions)
		c.transports[dc] = make([]core.Transport, cfg.NumPartitions)
		c.skews[dc] = make([]time.Duration, cfg.NumPartitions)
		c.mx[dc] = make([]*core.Metrics, cfg.NumPartitions)
		if c.relays != nil {
			c.relays[dc] = make([]*relay, cfg.NumPartitions)
		}
		for p := 0; p < cfg.NumPartitions; p++ {
			id := netemu.NodeID{DC: dc, Partition: p}
			if cfg.ClockSkew > 0 {
				c.skews[dc][p] = time.Duration(rng.Int64N(int64(2*cfg.ClockSkew))) - cfg.ClockSkew
			}
			var transport core.Transport
			if cfg.TCP {
				transport = transports[id]
			} else {
				transport = c.net.Register(id, nil)
			}
			if c.relays != nil {
				// Durable deployments interpose a relay so RestartServer can
				// pause delivery while it swaps the server behind it.
				rl := newRelay(transport)
				c.relays[dc][p] = rl
				transport = rl
			}
			c.transports[dc][p] = transport
			c.mx[dc][p] = &core.Metrics{}
		}
	}
	// Second pass: start the servers.
	for dc := 0; dc < cfg.NumDCs; dc++ {
		for p := 0; p < cfg.NumPartitions; p++ {
			srv, err := core.NewServer(c.serverConfig(dc, p))
			if err != nil {
				c.Close()
				return nil, err
			}
			c.servers[dc][p].Store(srv)
		}
	}
	return c, nil
}

// serverConfig assembles the core.Config of partition server (dc, p),
// reusing the node's transport, clock skew and metrics — the pieces that
// survive a RestartServer.
func (c *Cluster) serverConfig(dc, p int) core.Config {
	mode := core.Optimistic
	stab := c.cfg.StabilizationInterval
	blockTimeout := time.Duration(0)
	switch c.cfg.Engine {
	case Cure:
		mode = core.Pessimistic
	case HAPOCC:
		blockTimeout = c.cfg.BlockTimeout
	case POCC:
		stab = 0
	}
	var dataDir string
	if c.cfg.DataDir != "" {
		dataDir = filepath.Join(c.cfg.DataDir, fmt.Sprintf("dc%d-p%d", dc, p))
	}
	return core.Config{
		ID:                       netemu.NodeID{DC: dc, Partition: p},
		NumDCs:                   c.cfg.NumDCs,
		NumPartitions:            c.cfg.NumPartitions,
		Clock:                    clock.New(c.skews[dc][p]),
		Endpoint:                 c.transports[dc][p],
		DefaultMode:              mode,
		HeartbeatInterval:        c.cfg.HeartbeatInterval,
		StabilizationInterval:    stab,
		GCInterval:               c.cfg.GCInterval,
		PutDepWait:               c.cfg.PutDepWait,
		BlockTimeout:             blockTimeout,
		ReplicationBatchSize:     c.cfg.ReplicationBatchSize,
		ReplicationFlushInterval: c.cfg.ReplicationFlushInterval,
		DataDir:                  dataDir,
		DurableOptions:           c.cfg.Durable,
		CatchUp:                  c.catchUp(),
		CatchUpMaxInFlight:       c.cfg.CatchUpMaxInFlight,
		Metrics:                  c.mx[dc][p],
	}
}

// catchUp resolves the configured catch-up mode for this deployment.
func (c *Cluster) catchUp() bool { return c.cfg.CatchUp.enabled(c.cfg.DataDir != "") }

// RestartServer simulates a partition-server crash and recovery: the server
// is killed, a fresh one reopens the same durable data directory — its
// version chains and VV floor rebuilt from the snapshot and log tail — and
// takes over the node's network endpoint. Client operations racing the
// restart fail with core.ErrStopped and may be retried.
//
// It requires Config.DataDir: an in-memory server would restart empty, which
// is a data loss, not a recovery.
//
// With catch-up enabled (the default for durable deployments), the kill is
// a real crash: the outgoing replication buffer is discarded, not flushed —
// sibling DCs lose the tail of the update stream — and replication-plane
// messages arriving during the down window are dropped, as a dead machine
// would drop them. The restarted server and its siblings then detect the
// discontinuities through the link sequence numbers and resynchronize by
// WAL-shipped catch-up (internal/repl). With catch-up off, the legacy
// graceful semantics apply: the buffer is flushed and delivery pauses
// (never drops) through the swap. The torn-log recovery paths are covered
// separately by tests that truncate segment files on disk between a close
// and a reopen.
func (c *Cluster) RestartServer(dc, p int) error {
	if c.relays == nil {
		return errors.New("cluster: RestartServer requires Config.DataDir (durable engines)")
	}
	crash := c.catchUp()
	rl := c.relays[dc][p]
	if crash {
		// A dead machine receives nothing: drop replication traffic for the
		// whole down window (in-flight deliveries included, before the gate
		// settles). Catch-up repairs the loss after the restart — so the
		// drop must end when this function does, even on a failed reopen.
		rl.dropRepl.Store(true)
		defer rl.dropRepl.Store(false)
	}
	rl.gate.Lock() // drain in-flight request deliveries, pause new ones
	defer rl.gate.Unlock()
	if crash {
		c.Server(dc, p).Crash()
	} else {
		c.Server(dc, p).Close()
	}
	srv, err := core.NewServer(c.serverConfig(dc, p))
	if err != nil {
		return fmt.Errorf("cluster: restart dc%d-p%d: %w", dc, p, err)
	}
	c.servers[dc][p].Store(srv)
	return nil
}

// DropInboundReplication severs (drop=true) or restores the
// replication-plane delivery to one node: while severed, batches,
// heartbeats and catch-up traffic addressed to the node are discarded — not
// buffered — emulating a receiver cut off from the update stream. On
// restore the node sees a sequence gap on each inbound link and, with
// catch-up enabled, resynchronizes from its siblings' logs. Requires
// Config.DataDir (the relay interposer exists only on durable
// deployments).
func (c *Cluster) DropInboundReplication(dc, p int, drop bool) error {
	if c.relays == nil {
		return errors.New("cluster: DropInboundReplication requires Config.DataDir")
	}
	c.relays[dc][p].dropRepl.Store(drop)
	return nil
}

// StorageErr returns the first sticky persistence error reported by any
// server's engine, or nil. Durable deployments should poll it: a failed
// engine keeps serving from memory but no longer survives a crash.
func (c *Cluster) StorageErr() error {
	for dc := 0; dc < c.cfg.NumDCs; dc++ {
		for p := 0; p < c.cfg.NumPartitions; p++ {
			if err := c.Server(dc, p).StorageErr(); err != nil {
				return fmt.Errorf("cluster: dc%d-p%d storage: %w", dc, p, err)
			}
		}
	}
	return nil
}

// StorageStats aggregates every server's storage statistics, sampled with
// the engines' single-pass Stats so each server's keys/versions pair is
// consistent per shard.
func (c *Cluster) StorageStats() storage.StoreStats {
	var st storage.StoreStats
	for dc := 0; dc < c.cfg.NumDCs; dc++ {
		for p := 0; p < c.cfg.NumPartitions; p++ {
			es := c.Server(dc, p).Store().Stats()
			st.Keys += es.Keys
			st.Versions += es.Versions
		}
	}
	return st
}

// ReplicationStats summarizes the state of the replication plane across
// the deployment.
type ReplicationStats struct {
	// LagPerDC is, per data center, the worst replication lag any of its
	// partition servers observes against any remote DC: the server's own
	// version-vector entry minus the remote one, in time units. A link
	// frozen by an in-flight catch-up shows up here as growing lag.
	LagPerDC []time.Duration
	// CatchUpsRequested / CatchUpsCompleted count inbound catch-up rounds
	// started and finished across all servers; CatchUpsServed counts the
	// WAL-shipped streams served to lagging siblings.
	CatchUpsRequested uint64
	CatchUpsCompleted uint64
	CatchUpsServed    uint64
	// CatchUpsActive is the number of links currently frozen mid-round.
	CatchUpsActive int
}

// MaxLag returns the worst per-DC lag.
func (r ReplicationStats) MaxLag() time.Duration {
	var max time.Duration
	for _, l := range r.LagPerDC {
		if l > max {
			max = l
		}
	}
	return max
}

// ReplicationStats samples every server's replication lag and catch-up
// counters.
func (c *Cluster) ReplicationStats() ReplicationStats {
	st := ReplicationStats{LagPerDC: make([]time.Duration, c.cfg.NumDCs)}
	for dc := 0; dc < c.cfg.NumDCs; dc++ {
		for p := 0; p < c.cfg.NumPartitions; p++ {
			srv := c.Server(dc, p)
			for _, lag := range srv.ReplicationLag() {
				if lag > st.LagPerDC[dc] {
					st.LagPerDC[dc] = lag
				}
			}
			cs := srv.CatchUpStats()
			st.CatchUpsRequested += cs.Requested
			st.CatchUpsCompleted += cs.Completed
			st.CatchUpsServed += cs.Served
			st.CatchUpsActive += cs.ActiveIn
		}
	}
	return st
}

// buildTCPTransports binds a loopback TCP node for every server and
// distributes the address directory.
func (c *Cluster) buildTCPTransports() (map[netemu.NodeID]core.Transport, error) {
	directory := make(map[netemu.NodeID]string)
	out := make(map[netemu.NodeID]core.Transport)
	for dc := 0; dc < c.cfg.NumDCs; dc++ {
		for p := 0; p < c.cfg.NumPartitions; p++ {
			id := netemu.NodeID{DC: dc, Partition: p}
			node, err := tcpnet.Listen(id, "127.0.0.1:0")
			if err != nil {
				for _, n := range c.tcpNodes {
					n.Close()
				}
				return nil, fmt.Errorf("cluster: %w", err)
			}
			c.tcpNodes = append(c.tcpNodes, node)
			directory[id] = node.Addr()
			out[id] = node
		}
	}
	for _, n := range c.tcpNodes {
		n.Connect(directory)
	}
	return out, nil
}

// Close stops every server and the network. Close must not race an
// in-flight RestartServer (tests restart, then clean up).
func (c *Cluster) Close() {
	for dc := range c.servers {
		for p := range c.servers[dc] {
			if s := c.servers[dc][p].Load(); s != nil {
				s.Close()
			}
		}
	}
	if c.net != nil {
		c.net.Close()
	}
	for _, n := range c.tcpNodes {
		n.Close()
	}
}

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Network exposes the emulated network (partition injection, message
// counts). It returns nil in TCP mode.
func (c *Cluster) Network() *netemu.Network { return c.net }

// Messages returns the total number of protocol messages sent, in either
// transport mode.
func (c *Cluster) Messages() uint64 {
	if c.net != nil {
		return c.net.MessageCount()
	}
	var total uint64
	for _, n := range c.tcpNodes {
		total += n.Sent()
	}
	return total
}

// Server returns the partition server p of data center dc (the current one,
// if the node has been restarted). The lookup is a lock-free atomic load, so
// the per-operation routing of sessions costs nothing extra.
func (c *Cluster) Server(dc, p int) *core.Server {
	return c.servers[dc][p].Load()
}

// PartitionOf returns the partition responsible for key.
func (c *Cluster) PartitionOf(key string) int {
	return keyspace.PartitionOf(key, c.cfg.NumPartitions)
}

// dcRouter routes a session's requests within one data center, resolving
// servers per operation so sessions transparently follow a RestartServer.
type dcRouter struct {
	c     *Cluster
	dc    int
	coord int
}

func (r *dcRouter) ServerFor(key string) *core.Server {
	return r.c.Server(r.dc, keyspace.PartitionOf(key, r.c.cfg.NumPartitions))
}
func (r *dcRouter) Coordinator() *core.Server { return r.c.Server(r.dc, r.coord) }
func (r *dcRouter) PartitionOf(key string) int {
	return keyspace.PartitionOf(key, r.c.cfg.NumPartitions)
}

// NewSession opens a client session against data center dc. The session's
// coordinator is chosen round-robin, emulating clients collocated with
// servers.
func (c *Cluster) NewSession(dc int) (*client.Session, error) {
	if dc < 0 || dc >= c.cfg.NumDCs {
		return nil, fmt.Errorf("cluster: no data center %d", dc)
	}
	coord := int(c.rr.Add(1) % uint64(c.cfg.NumPartitions))
	mode := core.Optimistic
	if c.cfg.Engine == Cure {
		mode = core.Pessimistic
	}
	return client.NewSession(client.Config{
		Router:         &dcRouter{c: c, dc: dc, coord: coord},
		NumDCs:         c.cfg.NumDCs,
		Mode:           mode,
		RequestLatency: c.cfg.SessionLatency,
		AutoFallback:   c.cfg.Engine == HAPOCC,
	})
}

// Seed pre-loads a key with an initial value into every data center, the way
// the paper's loader populates each partition before an experiment. Seeded
// versions carry tiny timestamps and empty dependency vectors, so they are
// immediately visible and stable everywhere.
func (c *Cluster) Seed(key string, value []byte) {
	ut := vclock.Timestamp(c.seedSeq.Add(1))
	p := c.PartitionOf(key)
	for dc := 0; dc < c.cfg.NumDCs; dc++ {
		v := &item.Version{
			Key:        key,
			Value:      append([]byte(nil), value...),
			SrcReplica: 0,
			UpdateTime: ut,
			Deps:       vclock.New(c.cfg.NumDCs),
		}
		c.Server(dc, p).Store().Insert(v)
	}
}

// SeedTable pre-loads every key of a keyspace table with an 8-byte value.
func (c *Cluster) SeedTable(table *keyspace.Table) {
	for p := 0; p < table.Partitions(); p++ {
		for _, k := range table.AllKeys(p) {
			c.Seed(k, []byte("00000000"))
		}
	}
}

// Aggregate is the cluster-wide union of per-server metrics.
type Aggregate struct {
	GetBlocking metrics.BlockingSnapshot
	PutBlocking metrics.BlockingSnapshot
	TxBlocking  metrics.BlockingSnapshot
	GetStale    metrics.StalenessSnapshot
	TxStale     metrics.StalenessSnapshot
}

// Blocking merges GET, PUT and slice-read blocking, the aggregate Fig. 2a /
// 3c report.
func (a Aggregate) Blocking() metrics.BlockingSnapshot {
	out := a.GetBlocking
	out.Add(a.PutBlocking)
	out.Add(a.TxBlocking)
	return out
}

// Metrics aggregates every server's statistics.
func (c *Cluster) Metrics() Aggregate {
	var agg Aggregate
	for dc := range c.mx {
		for _, m := range c.mx[dc] {
			agg.GetBlocking.Add(m.GetBlocking.Snapshot())
			agg.PutBlocking.Add(m.PutBlocking.Snapshot())
			agg.TxBlocking.Add(m.TxBlocking.Snapshot())
			agg.GetStale.Add(m.GetStale.Snapshot())
			agg.TxStale.Add(m.TxStale.Snapshot())
		}
	}
	return agg
}

// ReadAt performs a raw GET against a specific DC with an empty dependency
// vector (monitoring helper for tests and examples).
func (c *Cluster) ReadAt(dc int, key string) (msg.ItemReply, error) {
	srv := c.Server(dc, c.PartitionOf(key))
	return srv.Get(key, vclock.New(c.cfg.NumDCs), core.Optimistic)
}
