package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/keyspace"
)

// Session-guarantee tests: causal consistency implies the four classic
// session guarantees (read-your-writes, monotonic reads, monotonic writes,
// writes-follow-reads). Each is verified against every engine.

func engines() []Engine { return []Engine{POCC, Cure, HAPOCC} }

func guaranteeCluster(t *testing.T, engine Engine, seed uint64) *Cluster {
	t.Helper()
	return newCluster(t, Config{
		NumDCs: 3, NumPartitions: 2, Engine: engine,
		HeartbeatInterval: time.Millisecond,
		Latency:           UniformLatency(50*time.Microsecond, 2*time.Millisecond),
		JitterFrac:        0.3,
		PutDepWait:        true,
		Seed:              seed,
	})
}

// TestGuaranteeReadYourWrites: a session always observes its own writes.
func TestGuaranteeReadYourWrites(t *testing.T) {
	for _, eng := range engines() {
		t.Run(eng.String(), func(t *testing.T) {
			c := guaranteeCluster(t, eng, 1001)
			s, err := c.NewSession(1)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 30; i++ {
				key := fmt.Sprintf("ryw-%d", i%5)
				want := []byte(fmt.Sprintf("v%d", i))
				if err := s.Put(key, want); err != nil {
					t.Fatal(err)
				}
				got, err := s.Get(key)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(want) {
					t.Fatalf("op %d: read %q after writing %q", i, got, want)
				}
			}
		})
	}
}

// TestGuaranteeMonotonicReads: successive reads of a key by one session
// never go backwards, even while remote writers race.
func TestGuaranteeMonotonicReads(t *testing.T) {
	for _, eng := range engines() {
		t.Run(eng.String(), func(t *testing.T) {
			c := guaranteeCluster(t, eng, 1002)
			c.Seed("mr", []byte("v0"))

			writer, err := c.NewSession(0)
			if err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 1; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if err := writer.Put("mr", []byte(fmt.Sprintf("v%04d", i))); err != nil {
						t.Errorf("writer: %v", err)
						return
					}
					time.Sleep(200 * time.Microsecond)
				}
			}()

			reader, err := c.NewSession(2)
			if err != nil {
				t.Fatal(err)
			}
			prev := ""
			for i := 0; i < 200; i++ {
				got, err := reader.Get("mr")
				if err != nil {
					t.Fatal(err)
				}
				if string(got) < prev { // versions are lexicographically ordered
					t.Fatalf("read %q after %q: monotonic reads violated", got, prev)
				}
				prev = string(got)
			}
			close(stop)
			<-done
		})
	}
}

// TestGuaranteeMonotonicWrites: a session's writes are observed in order by
// every other session (writes carry their predecessors as dependencies).
func TestGuaranteeMonotonicWrites(t *testing.T) {
	for _, eng := range engines() {
		t.Run(eng.String(), func(t *testing.T) {
			c := guaranteeCluster(t, eng, 1003)
			keyA := keyInPartition(t, 2, 0)
			keyB := keyInPartition(t, 2, 1)
			c.Seed(keyA, []byte("a0"))
			c.Seed(keyB, []byte("b0"))

			w, err := c.NewSession(0)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Put(keyA, []byte("a1")); err != nil {
				t.Fatal(err)
			}
			if err := w.Put(keyB, []byte("b1")); err != nil {
				t.Fatal(err)
			}

			r, err := c.NewSession(2)
			if err != nil {
				t.Fatal(err)
			}
			// Wait until the second write is visible, then the first must be.
			if !waitUntil(t, 5*time.Second, func() bool {
				v, errGet := r.Get(keyB)
				return errGet == nil && string(v) == "b1"
			}) {
				t.Fatal("b1 never became visible")
			}
			got, err := r.Get(keyA)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "a1" {
				t.Fatalf("saw b1 but then a=%q: monotonic writes violated", got)
			}
		})
	}
}

// TestGuaranteeWritesFollowReads: a write made after reading X is never
// observed before X by any session.
func TestGuaranteeWritesFollowReads(t *testing.T) {
	for _, eng := range engines() {
		t.Run(eng.String(), func(t *testing.T) {
			c := guaranteeCluster(t, eng, 1004)
			keyX := keyInPartition(t, 2, 0)
			keyR := keyInPartition(t, 2, 1)
			c.Seed(keyX, []byte("x0"))
			c.Seed(keyR, []byte("r0"))

			// DC0 writes X.
			w0, err := c.NewSession(0)
			if err != nil {
				t.Fatal(err)
			}
			if err := w0.Put(keyX, []byte("x1")); err != nil {
				t.Fatal(err)
			}

			// DC1 reads X, then writes a reply R (R causally follows X).
			w1, err := c.NewSession(1)
			if err != nil {
				t.Fatal(err)
			}
			if !waitUntil(t, 5*time.Second, func() bool {
				v, errGet := w1.Get(keyX)
				return errGet == nil && string(v) == "x1"
			}) {
				t.Fatal("x1 never reached DC1")
			}
			if err := w1.Put(keyR, []byte("r1")); err != nil {
				t.Fatal(err)
			}

			// DC2: once R is visible, X must be too.
			r2, err := c.NewSession(2)
			if err != nil {
				t.Fatal(err)
			}
			if !waitUntil(t, 5*time.Second, func() bool {
				v, errGet := r2.Get(keyR)
				return errGet == nil && string(v) == "r1"
			}) {
				t.Fatal("r1 never reached DC2")
			}
			got, err := r2.Get(keyX)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "x1" {
				t.Fatalf("saw r1 but x=%q: writes-follow-reads violated", got)
			}
		})
	}
}

// TestProtocolInvariants checks the paper's Propositions 1 and 2 on every
// version stored anywhere after a busy run: (1) a version's timestamp is
// strictly greater than every entry of its dependency vector originating
// from causality tracking... (2) dependencies recorded in a version are
// covered by the chain's history. Concretely verifiable from metadata:
// ut > deps[sr of any real dependency] is implied by ut > max entry only
// when PutDepWait's clock wait ran, so we assert the protocol-level
// invariant the PUT path enforces: ut > every deps entry.
func TestProtocolInvariants(t *testing.T) {
	c := guaranteeCluster(t, POCC, 1005)
	tbl := keyspace.Build(2, 4)
	c.SeedTable(tbl)
	for dc := 0; dc < 3; dc++ {
		s, err := c.NewSession(dc)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			key := tbl.Key(i%2, i%4)
			if i%3 == 0 {
				if _, err := s.Get(key); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if err := s.Put(key, []byte{byte(dc), byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	time.Sleep(50 * time.Millisecond) // let replication settle
	seeded := uint64(8)               // seeded versions carry tiny artificial timestamps
	// Walk every chain head and check Proposition 2.
	for dc := 0; dc < 3; dc++ {
		for p := 0; p < 2; p++ {
			store := c.Server(dc, p).Store()
			for r := 0; r < 4; r++ {
				key := tbl.Key(p, r)
				res := store.ReadVisible(key, nil)
				if res.V == nil {
					continue
				}
				v := res.V
				if uint64(v.UpdateTime) > seeded {
					for i, dep := range v.Deps {
						if dep >= v.UpdateTime {
							t.Fatalf("Proposition 2 violated at dc%d p%d %s: deps[%d]=%d >= ut=%d",
								dc, p, key, i, dep, v.UpdateTime)
						}
					}
				}
			}
		}
	}
}
