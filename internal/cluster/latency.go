package cluster

import (
	"time"

	"repro/internal/netemu"
)

// awsOneWay approximates the one-way delays of the paper's testbed
// (Oregon, Virginia, Ireland), in milliseconds. Round-trip times between
// those regions are roughly 70 ms (OR-VA), 140 ms (OR-IE) and 80 ms (VA-IE).
var awsOneWay = [3][3]float64{
	{0.1, 35, 70},
	{35, 0.1, 40},
	{70, 40, 0.1},
}

// AWSLatency returns a latency function emulating the paper's 3-DC AWS
// deployment, scaled by the given factor (1.0 = full AWS latencies; CI-sized
// runs use a smaller factor so experiments finish quickly). Intra-DC hops are
// 100 µs × scale with a 50 µs floor. Data centers beyond the third reuse the
// matrix modulo 3 but are always treated as remote.
func AWSLatency(scale float64) netemu.LatencyFunc {
	return func(src, dst netemu.NodeID) time.Duration {
		var ms float64
		if src.DC == dst.DC {
			ms = 0.1
		} else {
			ms = awsOneWay[src.DC%3][dst.DC%3]
			if ms <= 0.1 {
				ms = 40 // distinct DCs mapping to the same region slot
			}
		}
		d := time.Duration(ms * scale * float64(time.Millisecond))
		if d < 50*time.Microsecond {
			d = 50 * time.Microsecond
		}
		return d
	}
}

// UniformLatency returns a latency function with a fixed intra-DC and
// inter-DC delay, handy for deterministic protocol tests.
func UniformLatency(intra, inter time.Duration) netemu.LatencyFunc {
	return func(src, dst netemu.NodeID) time.Duration {
		if src.DC == dst.DC {
			return intra
		}
		return inter
	}
}
