package cluster

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"repro/internal/causaltest"
	"repro/internal/keyspace"
)

// TestCatchUpAfterCrashLostBufferTail is the deterministic buffer-tail-loss
// scenario: with timed flushing effectively disabled, every write sits in
// the origin server's replication buffer, so crashing that server (crash
// restarts discard the buffer — no graceful flush) guarantees the sibling
// DC never received any of them. The restarted incarnation's WAL still
// holds the versions, and the sibling must detect the new epoch and recover
// every acknowledged write via WAL-shipped catch-up.
func TestCatchUpAfterCrashLostBufferTail(t *testing.T) {
	c := newCluster(t, Config{
		NumDCs: 2, NumPartitions: 2, Engine: POCC,
		HeartbeatInterval:        time.Millisecond,
		ReplicationFlushInterval: time.Hour, // buffer never flushes on time
		PutDepWait:               true,
		DataDir:                  t.TempDir(),
		Seed:                     909,
	})
	sess, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string)
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("tail-%d", i%10)
		val := fmt.Sprintf("v%d", i)
		if err := sess.Put(key, []byte(val)); err != nil {
			t.Fatal(err)
		}
		want[key] = val
	}
	// Nothing may have replicated: the buffers are sitting on their tails.
	// (Heartbeats are suppressed while updates are buffered, so DC1's VV for
	// DC0 cannot have covered these writes either.)
	for key := range want {
		reply, err := c.ReadAt(1, key)
		if err != nil {
			t.Fatal(err)
		}
		if reply.Exists {
			t.Fatalf("key %s leaked to DC1 before the crash; the scenario needs a buffered tail", key)
		}
	}

	// Crash both DC0 servers: their buffered tails are gone for good.
	for p := 0; p < 2; p++ {
		if err := c.RestartServer(0, p); err != nil {
			t.Fatal(err)
		}
	}

	// The restarted incarnations heartbeat with a fresh epoch; DC1 detects
	// the discontinuity and pulls the lost tail out of DC0's WALs.
	if !waitUntil(t, 10*time.Second, func() bool {
		for key, val := range want {
			reply, err := c.ReadAt(1, key)
			if err != nil || !reply.Exists || string(reply.Value) != val {
				return false
			}
		}
		return true
	}) {
		st := c.ReplicationStats()
		t.Fatalf("DC1 never recovered the crashed buffer tail (catch-up stats %+v)", st)
	}
	st := c.ReplicationStats()
	if st.CatchUpsCompleted == 0 || st.CatchUpsServed == 0 {
		t.Fatalf("convergence without catch-up rounds (%+v); the scenario lost its teeth", st)
	}
	if err := c.StorageErr(); err != nil {
		t.Fatal(err)
	}
}

// TestCatchUpAfterDroppedLink severs — drops, not pauses — the inbound
// replication plane of one node mid-workload: batches and heartbeats
// addressed to it are discarded while checked sessions keep the cluster
// busy. After the link heals, the lagging replica must detect the sequence
// gap, catch up via WAL shipping, and the whole cluster must satisfy the
// causal session guarantees and converge.
func TestCatchUpAfterDroppedLink(t *testing.T) {
	const (
		dcs        = 3
		partitions = 2
		keys       = 8
		sessions   = 2
		opsPer     = 150
	)
	c := newCluster(t, Config{
		NumDCs: dcs, NumPartitions: partitions, Engine: POCC,
		HeartbeatInterval: time.Millisecond,
		GCInterval:        20 * time.Millisecond,
		Latency:           UniformLatency(50*time.Microsecond, 2*time.Millisecond),
		JitterFrac:        0.3,
		PutDepWait:        true,
		DataDir:           t.TempDir(),
		Seed:              1010,
	})
	tbl := keyspace.Build(partitions, keys)
	c.SeedTable(tbl)
	reg := causaltest.NewRegistry()

	var wg sync.WaitGroup
	for dc := 0; dc < dcs; dc++ {
		for si := 0; si < sessions; si++ {
			sess, err := c.NewSession(dc)
			if err != nil {
				t.Fatal(err)
			}
			cs := causaltest.NewSession(reg, sess, sessionName(dc, si))
			wg.Add(1)
			go func(dc, si int, cs *causaltest.Session) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(1010, uint64(dc*1000+si)))
				for op := 0; op < opsPer; op++ {
					key := tbl.Key(int(rng.Uint64N(partitions)), int(rng.Uint64N(keys)))
					var err error
					switch {
					case op%10 == 9:
						ks := []string{tbl.Key(0, int(rng.Uint64N(keys))), tbl.Key(1, int(rng.Uint64N(keys)))}
						_, err = cs.ROTx(ks)
					case op%3 == 2:
						err = cs.Put(key, []byte{byte(dc), byte(op)})
					default:
						_, err = cs.Get(key)
					}
					if err != nil {
						t.Errorf("dc%d s%d op %d: %v", dc, si, op, err)
						return
					}
				}
			}(dc, si, cs)
		}
	}

	// Sever the inbound replication plane of dc2-p0 while traffic flows,
	// then heal it. Messages in the window are gone, not delayed.
	time.Sleep(60 * time.Millisecond)
	if err := c.DropInboundReplication(2, 0, true); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if err := c.DropInboundReplication(2, 0, false); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for _, v := range reg.Violations() {
		t.Error(v)
	}

	// Convergence epilogue: every replica, including the one that lost part
	// of the stream, must land on identical heads.
	if !waitUntil(t, 10*time.Second, func() bool {
		for p := 0; p < partitions; p++ {
			for r := 0; r < keys; r++ {
				key := tbl.Key(p, r)
				h0 := c.Server(0, p).Store().Head(key)
				for dc := 1; dc < dcs; dc++ {
					h := c.Server(dc, p).Store().Head(key)
					if (h0 == nil) != (h == nil) {
						return false
					}
					if h0 != nil && !h0.Same(h) {
						return false
					}
				}
			}
		}
		return true
	}) {
		st := c.ReplicationStats()
		t.Fatalf("replicas did not converge after the dropped link (catch-up stats %+v)", st)
	}
	st := c.ReplicationStats()
	if st.CatchUpsCompleted == 0 {
		t.Fatalf("converged without any catch-up round (%+v); the drop window saw no traffic?", st)
	}
	t.Logf("catch-up stats: %+v, max lag %v", st, st.MaxLag())
	if err := c.StorageErr(); err != nil {
		t.Fatal(err)
	}
}

// TestCatchUpCountersExposed pins that a quiet durable cluster reports a
// healthy replication plane: no active rounds, bounded lag.
func TestCatchUpCountersExposed(t *testing.T) {
	c := newCluster(t, Config{
		NumDCs: 2, NumPartitions: 1, Engine: POCC,
		HeartbeatInterval: time.Millisecond,
		DataDir:           t.TempDir(),
	})
	sess, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if !waitUntil(t, 5*time.Second, func() bool {
		st := c.ReplicationStats()
		return st.CatchUpsActive == 0 && st.MaxLag() < 250*time.Millisecond
	}) {
		t.Fatalf("replication plane never settled: %+v", c.ReplicationStats())
	}
}
