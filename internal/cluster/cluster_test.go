package cluster

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/keyspace"
	"repro/internal/netemu"
)

func newCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(500 * time.Microsecond)
	}
	return false
}

// keyInPartition returns a key routed to the wanted partition.
func keyInPartition(t *testing.T, n, want int) string {
	t.Helper()
	tbl := keyspace.Build(n, 1)
	return tbl.Key(want, 0)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config must be rejected")
	}
	if _, err := New(Config{NumDCs: 1, NumPartitions: 1}); err == nil {
		t.Fatal("missing engine must be rejected")
	}
}

func TestEngineString(t *testing.T) {
	if POCC.String() != "POCC" || Cure.String() != "Cure*" || HAPOCC.String() != "HA-POCC" {
		t.Fatal("engine names changed")
	}
	if Engine(42).String() == "" {
		t.Fatal("unknown engine must still render")
	}
}

func TestPutIsReplicatedAcrossDCs(t *testing.T) {
	c := NewTestCluster(t, Topology{DCs: 3, Partitions: 2},
		WithLatency(UniformLatency(100*time.Microsecond, 2*time.Millisecond), 0))
	s0, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s0.Put("alpha", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	for dc := 0; dc < 3; dc++ {
		s, err := c.NewSession(dc)
		if err != nil {
			t.Fatal(err)
		}
		if !waitUntil(t, 2*time.Second, func() bool {
			v, errGet := s.Get("alpha")
			return errGet == nil && string(v) == "hello"
		}) {
			t.Fatalf("dc%d never saw the write", dc)
		}
	}
}

func TestReadYourWrites(t *testing.T) {
	for _, engine := range []Engine{POCC, Cure, HAPOCC} {
		t.Run(engine.String(), func(t *testing.T) {
			c := NewTestCluster(t, Topology{DCs: 2, Partitions: 2},
				WithEngine(engine),
				WithLatency(UniformLatency(100*time.Microsecond, 5*time.Millisecond), 0),
				WithSeed(2))
			s, err := c.NewSession(0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				val := []byte{byte(i)}
				if err := s.Put("k", val); err != nil {
					t.Fatal(err)
				}
				got, err := s.Get("k")
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(val) {
					t.Fatalf("iteration %d: read %v after writing %v", i, got, val)
				}
			}
		})
	}
}

func TestSessionDependencyVectors(t *testing.T) {
	c := NewTestCluster(t, Topology{DCs: 2, Partitions: 2},
		WithLatency(UniformLatency(50*time.Microsecond, time.Millisecond), 0),
		WithSeed(3))
	s, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	dv := s.DV()
	if dv.Get(0) == 0 {
		t.Fatal("PUT must set the local entry of DV (Algorithm 1 line 12)")
	}
	if rdv := s.RDV(); rdv.Get(0) != 0 {
		t.Fatal("a PUT must not touch RDV")
	}
	// A second write's version must carry the first write in its deps.
	if err := s.Put("k2", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	reply, err := s.GetReply("k2")
	if err != nil {
		t.Fatal(err)
	}
	if reply.Deps.Get(0) < dv.Get(0) {
		t.Fatalf("second write deps %v must cover first write %v", reply.Deps, dv)
	}
	// Reading an item with dependencies raises RDV (Algorithm 1 line 4).
	if rdv := s.RDV(); rdv.Get(0) < dv.Get(0) {
		t.Fatalf("RDV %v must absorb read deps %v", rdv, dv)
	}
}

// TestOptimisticFreshnessVsPessimisticStaleness reproduces the paper's core
// claim on one scenario: a fresh remote version whose dependency has not
// reached the local DC is returned by POCC immediately, while Cure* returns
// the stale version until stabilization catches up.
func TestOptimisticFreshnessVsPessimisticStaleness(t *testing.T) {
	build := func(engine Engine) (*Cluster, string, string) {
		c := NewTestCluster(t, Topology{DCs: 2, Partitions: 2},
			WithEngine(engine),
			WithHeartbeat(time.Millisecond),
			WithLatency(UniformLatency(50*time.Microsecond, time.Millisecond), 0),
			WithSeed(4))
		keyDep := keyInPartition(t, 2, 0) // dependency lives in partition 0
		keyTop := keyInPartition(t, 2, 1) // dependent item in partition 1
		c.Seed(keyDep, []byte("dep-old"))
		c.Seed(keyTop, []byte("top-old"))
		return c, keyDep, keyTop
	}

	scenario := func(c *Cluster, keyDep, keyTop string) {
		// Cut replication of partition 0 from DC0 to DC1, then write the
		// dependency (stuck) and the dependent item (replicates fine).
		c.Network().SetLinkDown(netemu.NodeID{DC: 0, Partition: 0}, netemu.NodeID{DC: 1, Partition: 0}, true)
		s0, err := c.NewSession(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := s0.Put(keyDep, []byte("dep-new")); err != nil {
			t.Fatal(err)
		}
		if err := s0.Put(keyTop, []byte("top-new")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond) // let keyTop replicate to DC1
	}

	t.Run("POCC returns fresh", func(t *testing.T) {
		c, keyDep, keyTop := build(POCC)
		scenario(c, keyDep, keyTop)
		s1, err := c.NewSession(1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s1.Get(keyTop)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "top-new" {
			t.Fatalf("POCC returned %q, want the freshest version", got)
		}
	})

	t.Run("Cure returns stale until stable", func(t *testing.T) {
		c, keyDep, keyTop := build(Cure)
		scenario(c, keyDep, keyTop)
		s1, err := c.NewSession(1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s1.Get(keyTop)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "top-old" {
			t.Fatalf("Cure* returned %q, want the stale-but-stable version", got)
		}
		stale := c.Metrics().GetStale
		if stale.Old == 0 {
			t.Fatal("Cure* must record the old read")
		}
		// Heal: the dependency replicates, stabilization advances the GSS,
		// and the fresh version becomes visible.
		c.Network().SetLinkDown(netemu.NodeID{DC: 0, Partition: 0}, netemu.NodeID{DC: 1, Partition: 0}, false)
		if !waitUntil(t, 2*time.Second, func() bool {
			v, errGet := s1.Get(keyTop)
			return errGet == nil && string(v) == "top-new"
		}) {
			t.Fatal("fresh version never became stable after healing")
		}
	})
}

// TestLazyDependencyResolutionBlocks reproduces the paper's blocking
// scenario (§III-B): a client reads fresh Y (which depends on X), then reads
// X whose replication is stuck — the GET must block until the partition
// heals, and then return the dependency.
func TestLazyDependencyResolutionBlocks(t *testing.T) {
	c := NewTestCluster(t, Topology{DCs: 2, Partitions: 2},
		WithHeartbeat(time.Millisecond),
		WithLatency(UniformLatency(50*time.Microsecond, time.Millisecond), 0),
		WithSeed(5))
	keyX := keyInPartition(t, 2, 0)
	keyY := keyInPartition(t, 2, 1)
	c.Seed(keyX, []byte("x-old"))
	c.Seed(keyY, []byte("y-old"))

	c.Network().SetLinkDown(netemu.NodeID{DC: 0, Partition: 0}, netemu.NodeID{DC: 1, Partition: 0}, true)
	s0, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s0.Put(keyX, []byte("x-new")); err != nil { // stuck behind the cut link
		t.Fatal(err)
	}
	if err := s0.Put(keyY, []byte("y-new")); err != nil { // replicates, deps include X
		t.Fatal(err)
	}

	s1, err := c.NewSession(1)
	if err != nil {
		t.Fatal(err)
	}
	if !waitUntil(t, 2*time.Second, func() bool {
		v, errGet := s1.Get(keyY)
		return errGet == nil && string(v) == "y-new"
	}) {
		t.Fatal("fresh Y never reached DC1")
	}

	// Reading X must now block: the session depends on X via Y's deps.
	type res struct {
		val []byte
		err error
	}
	done := make(chan res, 1)
	go func() {
		v, errGet := s1.Get(keyX)
		done <- res{v, errGet}
	}()
	select {
	case r := <-done:
		t.Fatalf("GET(x) returned %q early; it must block on the missing dependency", r.val)
	case <-time.After(50 * time.Millisecond):
	}

	c.Network().SetLinkDown(netemu.NodeID{DC: 0, Partition: 0}, netemu.NodeID{DC: 1, Partition: 0}, false)
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if string(r.val) != "x-new" {
			t.Fatalf("GET(x) = %q after heal, want x-new", r.val)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("GET(x) still blocked after healing")
	}
	if b := c.Metrics().GetBlocking; b.Blocked == 0 {
		t.Fatal("the blocked GET must be recorded in the metrics")
	}
}

func TestROTxAcrossPartitions(t *testing.T) {
	for _, engine := range []Engine{POCC, Cure} {
		t.Run(engine.String(), func(t *testing.T) {
			c := NewTestCluster(t, Topology{DCs: 2, Partitions: 4},
				WithEngine(engine),
				WithHeartbeat(time.Millisecond),
				WithLatency(UniformLatency(50*time.Microsecond, time.Millisecond), 0),
				WithSeed(6))
			tbl := keyspace.Build(4, 2)
			c.SeedTable(tbl)
			s, err := c.NewSession(0)
			if err != nil {
				t.Fatal(err)
			}
			keys := []string{tbl.Key(0, 0), tbl.Key(1, 0), tbl.Key(2, 0), tbl.Key(3, 0)}
			for i, k := range keys {
				if err := s.Put(k, []byte{byte('A' + i)}); err != nil {
					t.Fatal(err)
				}
			}
			got, err := s.ROTx(keys)
			if err != nil {
				t.Fatal(err)
			}
			for i, k := range keys {
				if string(got[k]) != string([]byte{byte('A' + i)}) {
					t.Fatalf("tx[%s] = %q", k, got[k])
				}
			}
		})
	}
}

func TestHAPOCCFallbackAndPromotion(t *testing.T) {
	c := NewTestCluster(t, Topology{DCs: 2, Partitions: 2},
		WithEngine(HAPOCC),
		WithHeartbeat(time.Millisecond),
		WithLatency(UniformLatency(50*time.Microsecond, time.Millisecond), 0),
		WithSeed(7),
		WithConfig(func(cfg *Config) {
			cfg.StabilizationInterval = 5 * time.Millisecond
			cfg.BlockTimeout = 50 * time.Millisecond
		}))
	keyX := keyInPartition(t, 2, 0)
	keyY := keyInPartition(t, 2, 1)
	c.Seed(keyX, []byte("x-old"))
	c.Seed(keyY, []byte("y-old"))

	c.Network().SetLinkDown(netemu.NodeID{DC: 0, Partition: 0}, netemu.NodeID{DC: 1, Partition: 0}, true)
	s0, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s0.Put(keyX, []byte("x-new")); err != nil {
		t.Fatal(err)
	}
	if err := s0.Put(keyY, []byte("y-new")); err != nil {
		t.Fatal(err)
	}

	s1, err := c.NewSession(1)
	if err != nil {
		t.Fatal(err)
	}
	if !waitUntil(t, 2*time.Second, func() bool {
		v, errGet := s1.Get(keyY)
		return errGet == nil && string(v) == "y-new"
	}) {
		t.Fatal("fresh Y never reached DC1")
	}

	// Reading X blocks past the timeout; the session must fall back to the
	// pessimistic protocol and still complete (with stale data).
	val, err := s1.Get(keyX)
	if err != nil {
		t.Fatalf("fallback read failed: %v", err)
	}
	if string(val) != "x-old" {
		t.Fatalf("pessimistic fallback read %q, want the stable version", val)
	}
	if s1.Mode() != core.Pessimistic {
		t.Fatal("session must be pessimistic after fallback")
	}
	if s1.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d", s1.Fallbacks())
	}

	// Heal; the session is promoted back to optimistic on a later operation.
	c.Network().SetLinkDown(netemu.NodeID{DC: 0, Partition: 0}, netemu.NodeID{DC: 1, Partition: 0}, false)
	if !waitUntil(t, 5*time.Second, func() bool {
		if _, errGet := s1.Get(keyX); errGet != nil {
			t.Fatal(errGet)
		}
		return s1.Mode() == core.Optimistic
	}) {
		t.Fatal("session never promoted back to optimistic")
	}
	if s1.Promotions() == 0 {
		t.Fatal("promotion counter not incremented")
	}
	// After promotion the fresh version is readable.
	if !waitUntil(t, 2*time.Second, func() bool {
		v, errGet := s1.Get(keyX)
		return errGet == nil && string(v) == "x-new"
	}) {
		t.Fatal("fresh X not visible after heal and promotion")
	}
}

func TestConvergenceAfterQuiescence(t *testing.T) {
	c := NewTestCluster(t, Topology{DCs: 3, Partitions: 2},
		WithHeartbeat(time.Millisecond),
		WithLatency(UniformLatency(50*time.Microsecond, 2*time.Millisecond), 0.3),
		WithSeed(8))
	tbl := keyspace.Build(2, 4)
	c.SeedTable(tbl)
	// Concurrent conflicting writers in every DC.
	for dc := 0; dc < 3; dc++ {
		s, err := c.NewSession(dc)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			key := tbl.Key(i%2, i%4)
			if err := s.Put(key, []byte{byte(dc), byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Quiesce: all replication flushes, then every DC must agree on every
	// key's head (last-writer-wins convergence).
	if !waitUntil(t, 5*time.Second, func() bool {
		for p := 0; p < 2; p++ {
			for r := 0; r < 4; r++ {
				key := tbl.Key(p, r)
				h0 := c.Server(0, p).Store().Head(key)
				for dc := 1; dc < 3; dc++ {
					h := c.Server(dc, p).Store().Head(key)
					if h0 == nil || h == nil || !h0.Same(h) {
						return false
					}
				}
			}
		}
		return true
	}) {
		t.Fatal("replicas did not converge")
	}
}

func TestStabilizationMessageOverhead(t *testing.T) {
	// An idle Cure* deployment keeps exchanging stabilization messages; an
	// idle POCC deployment only heartbeats. With heartbeats disabled by a
	// huge interval, POCC should be nearly silent.
	idleMessages := func(engine Engine) uint64 {
		c := NewTestCluster(t, Topology{DCs: 2, Partitions: 4},
			WithEngine(engine),
			WithHeartbeat(time.Hour),
			WithSeed(9),
			WithConfig(func(cfg *Config) { cfg.StabilizationInterval = 2 * time.Millisecond }))
		time.Sleep(100 * time.Millisecond)
		return c.Network().MessageCount()
	}
	pocc := idleMessages(POCC)
	cure := idleMessages(Cure)
	if cure < 100 {
		t.Fatalf("Cure* sent %d messages; stabilization should dominate", cure)
	}
	if pocc*10 > cure {
		t.Fatalf("POCC sent %d idle messages vs Cure* %d; expected an order of magnitude less", pocc, cure)
	}
}

func TestSeedVisibleEverywhere(t *testing.T) {
	c := NewTestCluster(t, Topology{DCs: 3, Partitions: 2}, WithSeed(10))
	c.Seed("s1", []byte("seeded"))
	for dc := 0; dc < 3; dc++ {
		reply, err := c.ReadAt(dc, "s1")
		if err != nil {
			t.Fatal(err)
		}
		if string(reply.Value) != "seeded" {
			t.Fatalf("dc%d: %+v", dc, reply)
		}
	}
}

func TestNewSessionBounds(t *testing.T) {
	c := NewTestCluster(t, Topology{DCs: 2, Partitions: 1}, WithSeed(11))
	if _, err := c.NewSession(-1); err == nil {
		t.Fatal("negative DC must be rejected")
	}
	if _, err := c.NewSession(2); err == nil {
		t.Fatal("out-of-range DC must be rejected")
	}
}

func TestGarbageCollectionAcrossCluster(t *testing.T) {
	c := NewTestCluster(t, Topology{DCs: 2, Partitions: 2},
		WithHeartbeat(time.Millisecond),
		WithGC(5*time.Millisecond),
		WithLatency(UniformLatency(50*time.Microsecond, 500*time.Microsecond), 0),
		WithSeed(12))
	s, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put("gckey", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	p := c.PartitionOf("gckey")
	if !waitUntil(t, 5*time.Second, func() bool {
		for dc := 0; dc < 2; dc++ {
			chain := c.Server(dc, p).Store()
			if chain.Stats().Versions > 2 {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("GC never pruned the chains: dc0=%d versions", c.Server(0, p).Store().Stats().Versions)
	}
	head := c.Server(0, p).Store().Head("gckey")
	if head == nil || head.Value[0] != 19 {
		t.Fatal("GC must keep the freshest version")
	}
}
