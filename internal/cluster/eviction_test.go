package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/msg"
)

// evictionCluster builds the 3-DC durable HA-POCC deployment the forced-
// removal tests drive.
func evictionCluster(t *testing.T, maxDCs int) *Cluster {
	t.Helper()
	return newCluster(t, Config{
		NumDCs: 3, NumPartitions: 2, MaxDCs: maxDCs, Engine: HAPOCC,
		HeartbeatInterval:     time.Millisecond,
		StabilizationInterval: 10 * time.Millisecond,
		GCInterval:            20 * time.Millisecond,
		BlockTimeout:          200 * time.Millisecond,
		PutDepWait:            true,
		Latency:               UniformLatency(50*time.Microsecond, time.Millisecond),
		JitterFrac:            0.2,
		DataDir:               t.TempDir(),
		Seed:                  77,
	})
}

// TestForcedRemovalEvictsCrashedDC is the forced-removal end-to-end: a whole
// DC crashes without a goodbye; the survivors' stabilization freezes on its
// entry; ForceRemoveDC coordinates the eviction (agree on the dead DC's
// highest replicated timestamps, freeze membership at the agreed finals);
// stabilization resumes; and a DC joining afterwards still bootstraps the
// dead DC's replicated history out of the survivors' logs.
func TestForcedRemovalEvictsCrashedDC(t *testing.T) {
	const dead = 2
	c := evictionCluster(t, 4)

	// History originated by the doomed DC, replicated before the crash: this
	// must survive the eviction and reach a later joiner.
	ds, err := c.NewSession(dead)
	if err != nil {
		t.Fatal(err)
	}
	deadKeys := make([]string, 4)
	for i := range deadKeys {
		deadKeys[i] = fmt.Sprintf("doomed-%d", i)
		if err := ds.Put(deadKeys[i], []byte(fmt.Sprintf("from-dc2-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until every survivor holds the dead DC's writes (they are then ≤
	// any agreed final by construction).
	if !waitUntil(t, 10*time.Second, func() bool {
		for _, dc := range []int{0, 1} {
			for _, k := range deadKeys {
				r, err := c.ReadAt(dc, k)
				if err != nil || !r.Exists || r.SrcReplica != dead {
					return false
				}
			}
		}
		return true
	}) {
		t.Fatal("dc2's writes never replicated to the survivors")
	}

	if err := c.KillDC(dead); err != nil {
		t.Fatal(err)
	}
	// The membership mirror still counts the dead DC as a member, so the
	// survivors' GSS entry for it freezes once the dead DC's in-flight
	// traffic drains: nothing will ever advance it again.
	time.Sleep(100 * time.Millisecond)
	frozen := c.Server(0, 0).GSS().Get(dead)
	time.Sleep(100 * time.Millisecond)
	if got := c.Server(0, 0).GSS().Get(dead); got != frozen {
		t.Fatalf("GSS[%d] advanced from %d to %d with the DC dead", dead, frozen, got)
	}
	if got := c.Membership().Status[dead]; got != msg.DCActive {
		t.Fatalf("killed DC status = %d, want still Active until evicted", got)
	}

	if err := c.ForceRemoveDC(dead, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.Membership().Status[dead]; got != msg.DCLeft {
		t.Fatalf("evicted DC status = %d, want Left", got)
	}
	// Every survivor's authoritative view must mark the slot Left with an
	// agreed final covering the replicated history (the proposer is settled
	// when ForceRemoveDC returns; its EvictNotice to the other survivors may
	// still be in flight).
	if !waitUntil(t, 10*time.Second, func() bool {
		for _, dc := range []int{0, 1} {
			for p := 0; p < 2; p++ {
				view := c.Server(dc, p).Membership()
				if view.Status[dead] != msg.DCLeft || view.FinalOf(dead) == 0 {
					return false
				}
			}
		}
		return true
	}) {
		for _, dc := range []int{0, 1} {
			for p := 0; p < 2; p++ {
				view := c.Server(dc, p).Membership()
				t.Logf("dc%d-p%d: status[%d]=%d final=%d", dc, p, dead, view.Status[dead], view.FinalOf(dead))
			}
		}
		t.Fatal("the eviction never reached every survivor's view")
	}

	// Stabilization must resume: a write made after the eviction becomes
	// covered by the survivors' GSS (impossible while a dead member wedges
	// the deployment).
	s0, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s0.Put("post-evict", []byte("alive")); err != nil {
		t.Fatal(err)
	}
	ut := c.Server(0, c.PartitionOf("post-evict")).VV().Get(0)
	if !waitUntil(t, 10*time.Second, func() bool {
		for _, dc := range []int{0, 1} {
			for p := 0; p < 2; p++ {
				if c.Server(dc, p).GSS().Get(0) < ut {
					return false
				}
			}
		}
		return true
	}) {
		t.Fatalf("GSS never covered the post-eviction write (stabilization wedged): %+v", c.ReplicationStats())
	}

	// A later joiner must bootstrap the dead DC's replicated history from
	// the survivors (departed-origin re-shipping): the dead DC itself is
	// gone, there is no other source.
	joiner, err := c.AddDC()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForJoin(joiner, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	for _, k := range deadKeys {
		r, err := c.ReadAt(joiner, k)
		if err != nil || !r.Exists || r.SrcReplica != dead {
			t.Fatalf("joiner's %s = %+v (err %v), want dc%d's pre-crash version", k, r, err, dead)
		}
	}
}

// TestForcedRemovalDiscardsUnreplicatedSuffix: updates the dead DC accepted
// but never replicated to any survivor are above every attestation, so the
// agreed final excludes them — they are discarded for good, and the
// survivors converge without them. (This is the forced-removal consistency
// argument: evict at the agreed final, drop the un-agreed suffix whose loss
// no survivor can repair.)
func TestForcedRemovalDiscardsUnreplicatedSuffix(t *testing.T) {
	const dead = 2
	c := evictionCluster(t, 3)

	s, err := c.NewSession(dead)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("suffix-key", []byte("replicated")); err != nil {
		t.Fatal(err)
	}
	if !waitUntil(t, 10*time.Second, func() bool {
		for _, dc := range []int{0, 1} {
			r, err := c.ReadAt(dc, "suffix-key")
			if err != nil || !r.Exists || r.SrcReplica != dead {
				return false
			}
		}
		return true
	}) {
		t.Fatal("the replicated write never reached the survivors")
	}
	replicated, err := c.ReadAt(0, "suffix-key")
	if err != nil {
		t.Fatal(err)
	}

	// Cut the survivors off, then write the doomed suffix: these versions
	// exist only on dc2, which is about to die with them.
	for _, dc := range []int{0, 1} {
		for p := 0; p < 2; p++ {
			if err := c.DropInboundReplication(dc, p, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 3; i++ {
		if err := s.Put("suffix-key", []byte(fmt.Sprintf("lost-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.KillDC(dead); err != nil {
		t.Fatal(err)
	}
	// Let the dead DC's in-flight batches drain into the survivors' drops
	// before restoring delivery: nothing of the suffix may arrive late.
	time.Sleep(100 * time.Millisecond)
	for _, dc := range []int{0, 1} {
		for p := 0; p < 2; p++ {
			if err := c.DropInboundReplication(dc, p, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.ForceRemoveDC(dead, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// The survivors agree on the pre-cut state: the suffix is gone, the
	// replicated prefix intact, and both DCs converge on the same head.
	for _, dc := range []int{0, 1} {
		r, err := c.ReadAt(dc, "suffix-key")
		if err != nil || !r.Exists {
			t.Fatalf("dc%d read: %+v (err %v)", dc, r, err)
		}
		if r.UpdateTime != replicated.UpdateTime || r.SrcReplica != replicated.SrcReplica {
			t.Fatalf("dc%d head = %d@dc%d, want the replicated prefix %d@dc%d (un-agreed suffix must be discarded)",
				dc, r.UpdateTime, r.SrcReplica, replicated.UpdateTime, replicated.SrcReplica)
		}
	}
	// And the deployment is live: new writes stabilize.
	s0, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s0.Put("after", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	ut := c.Server(0, c.PartitionOf("after")).VV().Get(0)
	if !waitUntil(t, 10*time.Second, func() bool {
		for _, dc := range []int{0, 1} {
			for p := 0; p < 2; p++ {
				if c.Server(dc, p).GSS().Get(0) < ut {
					return false
				}
			}
		}
		return true
	}) {
		t.Fatalf("stabilization wedged after eviction: %+v", c.ReplicationStats())
	}
}

// TestForcedRemovalValidation: evicting a healthy deployment's last members
// or unknown slots is refused.
func TestForcedRemovalValidation(t *testing.T) {
	c := newCluster(t, Config{
		NumDCs: 2, NumPartitions: 1, Engine: POCC,
		HeartbeatInterval: time.Millisecond,
		DataDir:           t.TempDir(),
	})
	if err := c.ForceRemoveDC(7, time.Second); err == nil {
		t.Fatal("evicting an unknown DC must fail")
	}
	if err := c.KillDC(-1); err == nil {
		t.Fatal("killing an unknown DC must fail")
	}
	if err := c.ForceRemoveDC(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.ForceRemoveDC(1, time.Second); err == nil {
		t.Fatal("evicting a departed DC must fail")
	}
	// No active survivor is left besides dc0's own partition — removing the
	// last member is refused.
	if err := c.ForceRemoveDC(0, time.Second); err == nil {
		t.Fatal("evicting the last DC must fail")
	}
}

// TestJoinTimeoutUnwindsCleanly: a joiner that cannot complete its bootstrap
// (its inbound links are severed) gives up after JoinTimeout, and
// WaitForJoin tears the half-joined DC down: servers gone, slot burned, the
// rest of the deployment unaffected.
func TestJoinTimeoutUnwindsCleanly(t *testing.T) {
	c := newCluster(t, Config{
		NumDCs: 2, NumPartitions: 2, MaxDCs: 3, Engine: POCC,
		HeartbeatInterval: time.Millisecond,
		// Enough latency that the join cannot complete before the test cuts
		// the joiner's inbound links off.
		Latency:     UniformLatency(20*time.Millisecond, 25*time.Millisecond),
		PutDepWait:  true,
		DataDir:     t.TempDir(),
		JoinTimeout: 400 * time.Millisecond,
		Seed:        9,
	})
	joiner, err := c.AddDC()
	if err != nil {
		t.Fatal(err)
	}
	// Sever the joiner's inbound replication plane: no JoinAccept, no
	// catch-up stream — the bootstrap cannot finish.
	for p := 0; p < 2; p++ {
		if err := c.DropInboundReplication(joiner, p, true); err != nil {
			t.Fatal(err)
		}
	}
	err = c.WaitForJoin(joiner, 20*time.Second)
	if err == nil {
		t.Fatal("WaitForJoin succeeded with the joiner cut off; want a JoinTimeout unwind")
	}
	for p := 0; p < 2; p++ {
		if c.Server(joiner, p) != nil {
			t.Fatalf("dc%d-p%d still running after the unwind", joiner, p)
		}
	}
	if got := c.Membership().Status[joiner]; got != msg.DCLeft {
		t.Fatalf("unwound joiner status = %d, want Left (slot burned)", got)
	}
	// The seed members are unaffected.
	s, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("still-alive", []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if !waitUntil(t, 10*time.Second, func() bool {
		r, err := c.ReadAt(1, "still-alive")
		return err == nil && r.Exists
	}) {
		t.Fatal("replication between the seed DCs broken after the unwind")
	}
}
