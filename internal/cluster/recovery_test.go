package cluster

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/causaltest"
	"repro/internal/core"
	"repro/internal/keyspace"
)

// retry re-issues op while the target server is down for a restart. Any
// error other than ErrStopped — or running out of patience — is returned.
func retry(op func() error) error {
	var err error
	for attempt := 0; attempt < 400; attempt++ {
		if err = op(); !errors.Is(err, core.ErrStopped) {
			return err
		}
		time.Sleep(5 * time.Millisecond)
	}
	return err
}

// TestDurableRecoveryMidWorkload is the crash-recovery acceptance test: a
// durable POCC cluster serves checked sessions while one partition server is
// killed and reopened from its data directory mid-workload. The kill is a
// true crash (catch-up is on by default for durable clusters): the victim's
// buffered replication tail is discarded and inbound replication is dropped
// during the down window, so convergence relies on the sequenced streams
// detecting the loss and WAL-shipped catch-up repairing it. The model-based
// checker must observe no causality violation (session guarantees), the
// restarted replica must actually replay its chains from the WAL, and all
// replicas must converge after quiescence.
func TestDurableRecoveryMidWorkload(t *testing.T) {
	const (
		dcs        = 3
		partitions = 2
		keys       = 8
		sessions   = 3
		opsPer     = 200
	)
	c := newCluster(t, Config{
		NumDCs: dcs, NumPartitions: partitions, Engine: POCC,
		HeartbeatInterval: time.Millisecond,
		GCInterval:        20 * time.Millisecond,
		Latency:           UniformLatency(50*time.Microsecond, 2*time.Millisecond),
		JitterFrac:        0.3,
		PutDepWait:        true,
		DataDir:           t.TempDir(),
		Seed:              707,
	})
	tbl := keyspace.Build(partitions, keys)
	c.SeedTable(tbl)
	reg := causaltest.NewRegistry()

	var wg sync.WaitGroup
	for dc := 0; dc < dcs; dc++ {
		for si := 0; si < sessions; si++ {
			sess, err := c.NewSession(dc)
			if err != nil {
				t.Fatal(err)
			}
			cs := causaltest.NewSession(reg, sess, sessionName(dc, si))
			wg.Add(1)
			go func(dc, si int, cs *causaltest.Session) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(707, uint64(dc*1000+si)))
				for op := 0; op < opsPer; op++ {
					key := tbl.Key(int(rng.Uint64N(partitions)), int(rng.Uint64N(keys)))
					var err error
					switch {
					case op%10 == 9:
						ks := []string{tbl.Key(0, int(rng.Uint64N(keys))), tbl.Key(1, int(rng.Uint64N(keys)))}
						err = retry(func() error { _, e := cs.ROTx(ks); return e })
					case op%3 == 2:
						err = retry(func() error { return cs.Put(key, []byte{byte(dc), byte(op)}) })
					default:
						err = retry(func() error { _, e := cs.Get(key); return e })
					}
					if err != nil {
						t.Errorf("dc%d s%d op %d: %v", dc, si, op, err)
						return
					}
				}
			}(dc, si, cs)
		}
	}

	// Kill and recover two servers, in different DCs, while traffic flows.
	for i, target := range []struct{ dc, p int }{{0, 0}, {1, 1}} {
		time.Sleep(80 * time.Millisecond)
		if err := c.RestartServer(target.dc, target.p); err != nil {
			t.Fatal(err)
		}
		st := c.Server(target.dc, target.p).Store().Stats()
		if st.Versions == 0 {
			t.Fatalf("restart %d: dc%d-p%d came back empty; WAL replay failed", i, target.dc, target.p)
		}
		t.Logf("restart %d: dc%d-p%d recovered %d keys / %d versions", i, target.dc, target.p, st.Keys, st.Versions)
	}
	wg.Wait()

	for _, v := range reg.Violations() {
		t.Error(v)
	}

	// Convergence epilogue across all replicas, including the restarted ones.
	if !waitUntil(t, 10*time.Second, func() bool {
		for p := 0; p < partitions; p++ {
			for r := 0; r < keys; r++ {
				key := tbl.Key(p, r)
				h0 := c.Server(0, p).Store().Head(key)
				for dc := 1; dc < dcs; dc++ {
					h := c.Server(dc, p).Store().Head(key)
					if (h0 == nil) != (h == nil) {
						return false
					}
					if h0 != nil && !h0.Same(h) {
						return false
					}
				}
			}
		}
		return true
	}) {
		t.Fatal("replicas did not converge after the recovery")
	}
	if err := c.StorageErr(); err != nil {
		t.Fatal(err)
	}
}

// tearWALTails chops a few bytes off every non-empty WAL segment tail under
// root, simulating the footprint of a machine crash mid-commit on every
// server at once.
func tearWALTails(t *testing.T, root string) int {
	t.Helper()
	torn := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".wal") {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		if info.Size() < 8 {
			return nil
		}
		torn++
		return os.Truncate(path, info.Size()-3)
	})
	if err != nil {
		t.Fatal(err)
	}
	return torn
}

// TestDurableColdRestart rebuilds a whole cluster from its data directory —
// with the tails of DC1's segments torn, as a machine crash mid-commit
// would leave them. DC0's replica must serve every acknowledged value, and
// DC1's engines must recover (dropping only each log's torn final record)
// rather than refuse to open. DC0 stays untorn because a version whose only
// copies were torn everywhere is gone for good — WAL-shipped catch-up
// (internal/repl) re-replicates lost stream tails from a surviving copy,
// it cannot resurrect versions no log holds.
func TestDurableColdRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		NumDCs: 2, NumPartitions: 2, Engine: POCC,
		HeartbeatInterval: time.Millisecond,
		Latency:           UniformLatency(50*time.Microsecond, time.Millisecond),
		PutDepWait:        true,
		DataDir:           dir,
		Seed:              808,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string)
	sess, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("cold-%d", i%10)
		val := fmt.Sprintf("v%d", i)
		if err := sess.Put(key, []byte(val)); err != nil {
			t.Fatal(err)
		}
		want[key] = val
	}
	// Let replication land at DC1 before the shutdown, so its WALs hold the
	// full history and the tear below has segments to bite into.
	if !waitUntil(t, 5*time.Second, func() bool {
		for key, val := range want {
			reply, err := c.ReadAt(1, key)
			if err != nil || !reply.Exists || string(reply.Value) != val {
				return false
			}
		}
		return true
	}) {
		t.Fatal("writes never replicated to DC1")
	}
	c.Close()

	// Crash footprint on DC1: every segment loses its in-flight tail record.
	torn := 0
	for p := 0; p < cfg.NumPartitions; p++ {
		torn += tearWALTails(t, filepath.Join(dir, fmt.Sprintf("dc1-p%d", p)))
	}
	if torn == 0 {
		t.Fatal("no DC1 segments to tear; the test lost its crash scenario")
	}

	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for key, val := range want {
		reply, err := c2.ReadAt(0, key)
		if err != nil {
			t.Fatal(err)
		}
		if !reply.Exists || string(reply.Value) != val {
			t.Fatalf("after cold restart %s = %q (exists=%v), want %q", key, reply.Value, reply.Exists, val)
		}
	}
	// The torn replica recovered everything but the torn records.
	for p := 0; p < cfg.NumPartitions; p++ {
		if st := c2.Server(1, p).Store().Stats(); st.Versions == 0 {
			t.Fatalf("dc1-p%d recovered no versions from its torn log", p)
		}
	}
	// The in-memory cluster would have come back empty: prove the reads hit
	// recovered state, not fresh writes.
	if st := c2.StorageStats(); st.Versions == 0 {
		t.Fatal("cold-restarted cluster reports no recovered versions")
	}
}

// TestRestartServerRequiresDataDir pins the data-loss guard.
func TestRestartServerRequiresDataDir(t *testing.T) {
	c := newCluster(t, Config{
		NumDCs: 1, NumPartitions: 1, Engine: POCC,
		HeartbeatInterval: time.Millisecond,
	})
	if err := c.RestartServer(0, 0); err == nil {
		t.Fatal("RestartServer on an in-memory cluster must refuse")
	}
}
