package wal

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

// TestReadRangeMatchesFullScan is the differential property behind the seek
// optimization: for any per-origin window, ReadRange + the caller's record
// filter must deliver exactly the records ReadFrom + the same filter would.
// The workload forces every index transition — segment rolls (trailers),
// checkpoints that prune records (snapshot ranges), async groups, and
// close/reopen cycles (trailer and sift rebuilds).
func TestReadRangeMatchesFullScan(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			const origins = 4
			opts := Options{SegmentBytes: 1 << 10, TagOf: testTagOf, NoSync: true}

			// live tracks the records currently in the log's history: the
			// checkpoint fill emits a surviving subset (mimicking GC pruning)
			// and appends add to it.
			type trec struct {
				origin int
				ts     uint64
			}
			var live []trec
			next := [origins]uint64{1, 1, 1, 1}

			replay := func(rec []byte) error { return nil }
			l, err := Open(dir, opts, replay)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { l.Close() }()

			for step := 0; step < 400; step++ {
				switch r := rng.Intn(100); {
				case r < 70: // append a small batch, sync or async
					n := 1 + rng.Intn(6)
					recs := make([][]byte, 0, n)
					for i := 0; i < n; i++ {
						o := rng.Intn(origins)
						ts := next[o]
						next[o] += uint64(1 + rng.Intn(3)) // leave ts gaps
						recs = append(recs, testRec(o, ts, fmt.Sprintf("s%d", step)))
						live = append(live, trec{o, ts})
					}
					if rng.Intn(2) == 0 {
						err = l.Append(recs...)
					} else {
						err = l.AppendAsync(recs...)
					}
					if err != nil {
						t.Fatal(err)
					}
				case r < 85 && len(live) > 0: // checkpoint, pruning ~30%
					var survivors []trec
					for _, tr := range live {
						if rng.Intn(10) < 7 {
							survivors = append(survivors, tr)
						}
					}
					err := l.Checkpoint(func(emit func([]byte)) {
						for _, tr := range survivors {
							emit(testRec(tr.origin, tr.ts, "snap"))
						}
					})
					if err != nil {
						t.Fatal(err)
					}
					live = survivors
				case r < 92: // barrier: flush async appends
					if err := l.Barrier(); err != nil {
						t.Fatal(err)
					}
				default: // close and reopen: rebuild index from trailers + sift
					if err := l.Close(); err != nil {
						t.Fatal(err)
					}
					if l, err = Open(dir, opts, replay); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := l.Barrier(); err != nil {
				t.Fatal(err)
			}

			// Probe random windows plus the empty and unbounded extremes.
			parse := func(rec []byte) (int, uint64) {
				return int(rec[0]), binary.BigEndian.Uint64(rec[1:9])
			}
			for probe := 0; probe < 60; probe++ {
				lo := make([]uint64, origins)
				hi := make([]uint64, origins)
				for o := 0; o < origins; o++ {
					switch probe % 3 {
					case 0: // recent-gap shape: (n-k, n]
						hi[o] = next[o]
						if k := uint64(rng.Intn(20)); k < hi[o] {
							lo[o] = hi[o] - k
						}
					case 1: // arbitrary window
						a, b := uint64(rng.Intn(int(next[o]+1))), uint64(rng.Intn(int(next[o]+1)))
						if a > b {
							a, b = b, a
						}
						lo[o], hi[o] = a, b
					case 2: // empty for this origin
						lo[o], hi[o] = 0, 0
					}
				}
				inWindow := func(o int, ts uint64) bool {
					return ts > lo[o] && ts <= hi[o]
				}
				full := map[string]int{}
				if err := l.ReadFrom(0, func(_ uint64, rec []byte) error {
					if o, ts := parse(rec); inWindow(o, ts) {
						full[fmt.Sprintf("%d@%d", o, ts)]++
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				ranged := map[string]int{}
				if _, err := l.ReadRange(lo, hi, func(_ uint64, rec []byte) error {
					if o, ts := parse(rec); inWindow(o, ts) {
						ranged[fmt.Sprintf("%d@%d", o, ts)]++
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				for k, n := range full {
					if ranged[k] != n {
						t.Errorf("probe %d lo=%v hi=%v: %s seen %d times in full scan, %d in ranged read",
							probe, lo, hi, k, n, ranged[k])
					}
				}
				for k, n := range ranged {
					if full[k] == 0 {
						t.Errorf("probe %d: ranged read produced %s (%d) absent from full scan", probe, k, n)
					}
				}
				if t.Failed() {
					t.FailNow()
				}
			}
		})
	}
}
