package wal

import (
	"testing"

	"repro/internal/item"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// FuzzWALDecode feeds arbitrary bytes through the full segment-recovery
// decode path — record framing plus wire version decoding — asserting that
// corrupted or truncated segments only ever produce errors, never panics.
// This is exactly what Open does with an untrusted segment file.
func FuzzWALDecode(f *testing.F) {
	// Seed with well-formed segments so the fuzzer mutates realistic input.
	v := &item.Version{
		Key:        "user:42",
		Value:      []byte("payload"),
		SrcReplica: 1,
		UpdateTime: 123456,
		Deps:       vclock.VC{7, 0, 99},
		Optimistic: true,
	}
	rec := wire.AppendVersion(nil, v)
	f.Add(appendFrame(nil, rec))
	f.Add(appendFrame(appendFrame(nil, rec), rec))
	f.Add(appendFrame(nil, rec)[:5]) // torn tail
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Framing layer: must terminate and never panic, both tolerating and
		// rejecting a torn tail.
		for _, tolerate := range []bool{true, false} {
			_, _ = walk(data, func(payload []byte) error {
				// Payload layer: version records from a frame that passed the
				// checksum still must decode without panicking (the checksum
				// protects torn writes, not malicious bytes).
				if _, _, err := wire.DecodeVersion(payload); err != nil {
					return nil // an error is the accepted outcome
				}
				return nil
			}, tolerate)
		}
		if p := validPrefix(data); p < 0 || p > len(data) {
			t.Fatalf("validPrefix out of range: %d of %d", p, len(data))
		}
	})
}
