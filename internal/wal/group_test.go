package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"
)

// testTag is the mini record format the index tests use: one origin byte
// followed by a big-endian timestamp, then arbitrary payload.
func testRec(origin int, ts uint64, body string) []byte {
	rec := make([]byte, 9, 9+len(body))
	rec[0] = byte(origin)
	binary.BigEndian.PutUint64(rec[1:], ts)
	return append(rec, body...)
}

func testTagOf(rec []byte) (int, uint64, bool) {
	if len(rec) < 9 {
		return 0, 0, false
	}
	return int(rec[0]), binary.BigEndian.Uint64(rec[1:]), true
}

// Concurrent synchronous appends must coalesce into shared commit groups:
// far fewer fsyncs than records, with the histogram seeing multi-record
// groups.
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	l, _ := replayAll(t, dir, Options{GroupWindow: 2 * time.Millisecond})
	const workers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := l.Stats()
	if s.Records != workers*each {
		t.Fatalf("Records = %d, want %d", s.Records, workers*each)
	}
	if s.Groups == 0 || s.Groups > s.Records/2 {
		t.Fatalf("Groups = %d for %d records: appends did not coalesce", s.Groups, s.Records)
	}
	if s.GroupMax < 2 {
		t.Fatalf("GroupMax = %d, want >= 2", s.GroupMax)
	}
	if s.Fsyncs < s.Groups {
		t.Fatalf("Fsyncs = %d < Groups = %d", s.Fsyncs, s.Groups)
	}
	if s.AckLagMaxNS <= 0 || s.AckLagSumNS <= 0 {
		t.Fatalf("ack lag not measured: sum=%d max=%d", s.AckLagSumNS, s.AckLagMaxNS)
	}
	if p := s.GroupP50(); p == 0 {
		t.Fatalf("GroupP50 = 0 with %d groups", s.Groups)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := replayAll(t, dir, Options{})
	defer l2.Close()
	if len(got) != workers*each {
		t.Fatalf("replayed %d records, want %d", len(got), workers*each)
	}
}

// AppendAsync acks before durability; Barrier is the sync boundary after
// which everything staged must be on disk.
func TestAppendAsyncBarrier(t *testing.T) {
	dir := t.TempDir()
	l, _ := replayAll(t, dir, Options{})
	var want [][]byte
	for i := 0; i < 200; i++ {
		rec := []byte(fmt.Sprintf("async-%03d", i))
		want = append(want, rec)
		if err := l.AppendAsync(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Barrier(); err != nil {
		t.Fatal(err)
	}
	if s := l.Stats(); s.Records != 200 {
		t.Fatalf("after Barrier, Records = %d, want 200", s.Records)
	}
	// The boundary is visible to cursors too: a ReadFrom after Barrier sees
	// every async record.
	var seen int
	if err := l.ReadFrom(0, func(_ uint64, rec []byte) error { seen++; return nil }); err != nil {
		t.Fatal(err)
	}
	if seen != 200 {
		t.Fatalf("cursor after Barrier saw %d records, want 200", seen)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := replayAll(t, dir, Options{})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// Close drains the pipeline: async appends issued right before Close are
// never lost by an orderly shutdown.
func TestAppendAsyncSurvivesClose(t *testing.T) {
	dir := t.TempDir()
	l, _ := replayAll(t, dir, Options{})
	for i := 0; i < 50; i++ {
		if err := l.AppendAsync([]byte(fmt.Sprintf("tail-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := replayAll(t, dir, Options{})
	defer l2.Close()
	if len(got) != 50 {
		t.Fatalf("replayed %d records after Close, want 50", len(got))
	}
}

// ReadRange consults the per-segment range index: a query for a recent
// window skips the cold segments entirely, and per-part ranges survive a
// reopen via the persisted segment trailers.
func TestReadRangeSkipsColdSegments(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 512, TagOf: testTagOf}
	l, _ := replayAll(t, dir, opts)
	const n = 200
	for ts := uint64(1); ts <= n; ts++ {
		if err := l.Append(testRec(0, ts, "payload-padding-to-force-rolls")); err != nil {
			t.Fatal(err)
		}
	}

	// A window covering only the newest few timestamps must skip segments.
	var got []uint64
	skipped, err := l.ReadRange([]uint64{n - 5}, []uint64{n}, func(_ uint64, rec []byte) error {
		_, ts, _ := testTagOf(rec)
		got = append(got, ts)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if skipped == 0 {
		t.Fatal("recent-window ReadRange skipped no segments")
	}
	found := map[uint64]bool{}
	for _, ts := range got {
		found[ts] = true
	}
	for ts := uint64(n - 4); ts <= n; ts++ {
		if !found[ts] {
			t.Fatalf("window record ts=%d missing from ReadRange", ts)
		}
	}

	// An unbounded window reads everything and skips nothing.
	count := 0
	skipped, err = l.ReadRange(nil, nil, func(_ uint64, rec []byte) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || count != n {
		t.Fatalf("unbounded ReadRange: skipped=%d count=%d, want 0/%d", skipped, count, n)
	}

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen WITHOUT TagOf: sealed segments still skip via their persisted
	// trailers (only the tail segment, which has no trailer, must be read).
	l2, recs := replayAll(t, dir, Options{SegmentBytes: 512})
	defer l2.Close()
	if len(recs) != n {
		t.Fatalf("reopen replayed %d records, want %d (trailers must be filtered)", len(recs), n)
	}
	skipped, err = l2.ReadRange([]uint64{n}, []uint64{n}, func(_ uint64, rec []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if skipped == 0 {
		t.Fatal("after reopen, empty-window ReadRange skipped no sealed segments")
	}
}

// A checkpoint records the snapshot's range: windows above it skip the
// snapshot wholesale.
func TestReadRangeSkipsSnapshot(t *testing.T) {
	dir := t.TempDir()
	opts := Options{TagOf: testTagOf}
	l, _ := replayAll(t, dir, opts)
	var history [][]byte
	for ts := uint64(1); ts <= 100; ts++ {
		rec := testRec(1, ts, "x")
		history = append(history, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(emitAll(history)); err != nil {
		t.Fatal(err)
	}
	for ts := uint64(101); ts <= 110; ts++ {
		if err := l.Append(testRec(1, ts, "x")); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	skipped, err := l.ReadRange([]uint64{0, 100}, []uint64{0, 110}, func(_ uint64, rec []byte) error {
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if skipped == 0 {
		t.Fatal("post-checkpoint window did not skip the snapshot")
	}
	if count != 10 {
		t.Fatalf("post-checkpoint window read %d records, want 10", count)
	}
	// A window reaching below the checkpoint must still include the snapshot.
	count = 0
	if _, err := l.ReadRange([]uint64{0, 50}, []uint64{0, 110}, func(_ uint64, rec []byte) error {
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 110 {
		t.Fatalf("deep window read %d records, want 110", count)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
