// Package wal implements the segmented write-ahead log behind the durable
// storage engine (storage.Durable). The log is a directory of append-only
// segment files plus at most one snapshot file:
//
//	000000000000000001.wal   log segments, ascending sequence numbers
//	000000000000000003.wal
//	000000000000000003.snap  checkpoint covering every segment ≤ 3
//
// Each record — in segments and snapshots alike — is framed as
//
//	uvarint(payload length) || uint32le(crc32c payload checksum) || payload
//
// where the payload is opaque to the log (the storage engine stores
// internal/wire version records). A commit (Append call) frames all its
// records, issues a single Write and, unless NoSync is set, a single fsync —
// the group-commit unit, which the storage engine aligns with the
// replication-batch boundary.
//
// Checkpoint atomically replaces the log's history with a snapshot: the
// snapshot is written to a temp file, fsynced and renamed to
// <activeseq>.snap, after which every segment ≤ activeseq (and any older
// snapshot) is removed and a fresh segment is started. Recovery (Open) loads
// the newest snapshot, replays every younger segment in order, and tolerates
// a torn record at the very tail of the final segment — the footprint of a
// crash mid-commit — by truncating it away. A short or corrupt record
// anywhere else is real corruption and fails the open.
//
// ReadFrom is the cursor over the same history for a live log: it replays
// snapshot + segments from a given segment sequence without blocking
// appends, pinning the files open so concurrent checkpoints cannot yank
// them away. The replication plane (internal/repl) streams catch-up data
// through it, and SnapshotSeq exposes the durable floor below which history
// exists only in compacted (snapshot) form.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const (
	segSuffix  = ".wal"
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"

	defaultSegmentBytes = 4 << 20

	// maxRecordBytes bounds a record so a corrupted length prefix cannot ask
	// recovery to allocate gigabytes (mirrors wire's frame limit).
	maxRecordBytes = 1 << 28
)

// Sentinel errors.
var (
	// ErrClosed is returned for operations on a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrCorrupt marks a structurally invalid record that cannot be a torn
	// tail write (bad checksum with all bytes present, absurd length, ...).
	ErrCorrupt = errors.New("wal: corrupt record")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options parameterizes a Log.
type Options struct {
	// SegmentBytes rolls to a new segment once the active one reaches this
	// size; 0 selects the default (4 MiB).
	SegmentBytes int64
	// NoSync skips the fsync at each commit boundary. Cheap, but a process
	// crash may lose the last commits; machine crashes may lose more.
	NoSync bool
}

// Log is a segmented append-only log. It is safe for concurrent use.
type Log struct {
	dir      string
	segBytes int64
	noSync   bool

	mu       sync.Mutex
	f        *os.File // active segment, nil after Close
	seq      uint64   // active segment sequence number
	firstSeg uint64   // oldest live segment sequence number
	snap     uint64   // current snapshot sequence number, 0 if none
	size     int64    // bytes in the active segment
	since    int64    // bytes appended (or replayed) since the last checkpoint
	buf      []byte   // frame scratch, reused across Append calls
}

// Open opens (creating if necessary) the log in dir and replays its state:
// first the newest snapshot's records, then every younger segment's records
// in append order, invoking replay for each payload. The payload slice is
// only valid during the call. A torn record at the tail of the final segment
// is truncated away; corruption anywhere else fails the open.
func Open(dir string, opts Options, replay func(rec []byte) error) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, snapSeq, err := scanDir(dir)
	if err != nil {
		return nil, err
	}

	if snapSeq > 0 {
		data, err := os.ReadFile(filepath.Join(dir, fileName(snapSeq, snapSuffix)))
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		// Snapshots are renamed into place after an fsync, so a readable
		// snapshot must parse end to end; any framing error is corruption.
		if _, err := walk(data, replay, false); err != nil {
			return nil, fmt.Errorf("wal: snapshot %d: %w", snapSeq, err)
		}
	}

	l := &Log{dir: dir, segBytes: opts.SegmentBytes, noSync: opts.NoSync, snap: snapSeq}
	var tailLen, tailValid int // final segment: file size and valid prefix
	for i, seq := range segs {
		data, err := os.ReadFile(filepath.Join(dir, fileName(seq, segSuffix)))
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		consumed, werr := walk(data, replay, i == len(segs)-1)
		if werr != nil {
			return nil, fmt.Errorf("wal: segment %d: %w", seq, werr)
		}
		l.since += int64(consumed)
		tailLen, tailValid = len(data), consumed
	}

	// Reopen the last segment for appending (its torn tail, if any, was
	// already measured by walk and is truncated here), or start a fresh one.
	if n := len(segs); n > 0 {
		l.seq = segs[n-1]
		l.firstSeg = segs[0]
		path := filepath.Join(dir, fileName(l.seq, segSuffix))
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if tailValid < tailLen {
			if err := f.Truncate(int64(tailValid)); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
		}
		if _, err := f.Seek(int64(tailValid), io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f, l.size = f, int64(tailValid)
	} else {
		if err := l.startSegmentLocked(snapSeq + 1); err != nil {
			return nil, err
		}
		l.firstSeg = snapSeq + 1
	}
	return l, nil
}

// scanDir classifies the directory's files: ascending segment sequences
// newer than the newest snapshot, and that snapshot's sequence (0 if none).
// Stale temp files and files made obsolete by the snapshot (leftovers of a
// crash mid-checkpoint) are removed.
func scanDir(dir string) (segs []uint64, snapSeq uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	var snaps []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			_ = os.Remove(filepath.Join(dir, name))
		case strings.HasSuffix(name, segSuffix):
			if seq, ok := parseName(name, segSuffix); ok {
				segs = append(segs, seq)
			}
		case strings.HasSuffix(name, snapSuffix):
			if seq, ok := parseName(name, snapSuffix); ok {
				snaps = append(snaps, seq)
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	if len(snaps) > 0 {
		snapSeq = snaps[len(snaps)-1]
		for _, s := range snaps[:len(snaps)-1] {
			_ = os.Remove(filepath.Join(dir, fileName(s, snapSuffix)))
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	live := segs[:0]
	for _, s := range segs {
		if s <= snapSeq {
			_ = os.Remove(filepath.Join(dir, fileName(s, segSuffix)))
			continue
		}
		live = append(live, s)
	}
	return live, snapSeq, nil
}

// Append commits the given records: all of them are framed into a single
// Write on the active segment, followed by one fsync (unless NoSync) — the
// group-commit boundary. The record slices are not retained.
func (l *Log) Append(recs ...[]byte) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return ErrClosed
	}
	if l.size >= l.segBytes {
		if err := l.rollLocked(); err != nil {
			return err
		}
	}
	buf := l.buf[:0]
	for _, r := range recs {
		buf = appendFrame(buf, r)
	}
	l.buf = buf
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(buf))
	l.since += int64(len(buf))
	if !l.noSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	return nil
}

// Checkpoint atomically replaces the log's history with a snapshot: fill is
// invoked once and emits every snapshot record (records are framed and
// streamed to disk in chunks, so the snapshot never materializes in memory;
// an emitted slice may be reused by the caller immediately after emit
// returns). The caller must guarantee the emitted records capture every
// record appended so far — the storage engine holds its writers out during
// the call. On return the old segments are gone and a fresh, empty segment
// is active.
func (l *Log) Checkpoint(fill func(emit func(rec []byte))) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return ErrClosed
	}
	tmp := filepath.Join(l.dir, "checkpoint"+tmpSuffix)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	var werr error
	buf := l.buf[:0]
	fill(func(rec []byte) {
		if werr != nil {
			return
		}
		buf = appendFrame(buf, rec)
		if len(buf) >= 1<<20 {
			_, werr = f.Write(buf)
			buf = buf[:0]
		}
	})
	l.buf = buf[:0]
	if werr == nil && len(buf) > 0 {
		_, werr = f.Write(buf)
	}
	if werr != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint: %w", werr)
	}
	if !l.noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: checkpoint: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	snapPath := filepath.Join(l.dir, fileName(l.seq, snapSuffix))
	if err := os.Rename(tmp, snapPath); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	// The rename must be durably ordered before the unlinks below: without a
	// directory fsync a power loss could persist the segment removals but
	// not the new snapshot's directory entry, losing everything.
	if err := l.syncDir(); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}

	// The snapshot is durable: everything up to and including the active
	// segment is obsolete.
	oldSeq := l.seq
	l.f.Close()
	l.f = nil
	if err := l.startSegmentLocked(oldSeq + 1); err != nil {
		return err
	}
	l.firstSeg = oldSeq + 1
	for seq := oldSeq; seq >= 1; seq-- {
		path := filepath.Join(l.dir, fileName(seq, segSuffix))
		if os.Remove(path) != nil {
			break // older segments were pruned by earlier checkpoints
		}
	}
	if l.snap != 0 {
		_ = os.Remove(filepath.Join(l.dir, fileName(l.snap, snapSuffix)))
	}
	l.snap = oldSeq
	l.since = 0
	return nil
}

// SinceCheckpoint returns how many log bytes have accumulated since the last
// checkpoint (or open), the storage engine's checkpoint trigger.
func (l *Log) SinceCheckpoint() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.since
}

// SnapshotSeq returns the sequence number of the current snapshot — the
// log's durable floor: history at and below this sequence lives only in the
// snapshot (its segments are gone). 0 means no checkpoint has been taken.
func (l *Log) SnapshotSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snap
}

// cursorPart is one file of a ReadFrom iteration, pinned open while the
// cursor runs so a concurrent checkpoint unlinking it cannot invalidate the
// read.
type cursorPart struct {
	seq   uint64
	f     *os.File
	limit int64 // bytes to read; -1 = whole file
}

// ReadFrom replays the log's durable records in order, invoking fn with each
// record's segment sequence number and payload (the payload slice is only
// valid during the call). Iteration starts at segment seq: when seq is at or
// below the snapshot floor (SnapshotSeq), the snapshot's records are
// replayed first — attributed to the floor sequence — followed by every live
// segment ≥ seq. The boundary is captured atomically at the call: records
// committed before ReadFrom is invoked are included, later appends are not,
// and concurrent appends or checkpoints never corrupt the iteration (files
// are pinned open before the lock is released). This is the replication
// catch-up read path: it shares nothing with the hot append path beyond the
// boundary capture.
func (l *Log) ReadFrom(seq uint64, fn func(seg uint64, rec []byte) error) error {
	l.mu.Lock()
	if l.f == nil {
		l.mu.Unlock()
		return ErrClosed
	}
	var parts []cursorPart
	fail := func(err error) error {
		l.mu.Unlock()
		for _, p := range parts {
			p.f.Close()
		}
		return fmt.Errorf("wal: cursor: %w", err)
	}
	if l.snap > 0 && seq <= l.snap {
		f, err := os.Open(filepath.Join(l.dir, fileName(l.snap, snapSuffix)))
		if err != nil {
			return fail(err)
		}
		parts = append(parts, cursorPart{seq: l.snap, f: f, limit: -1})
	}
	lo := l.firstSeg
	if seq > lo {
		lo = seq
	}
	for s := lo; s <= l.seq; s++ {
		f, err := os.Open(filepath.Join(l.dir, fileName(s, segSuffix)))
		if err != nil {
			if os.IsNotExist(err) {
				continue // pruned by an earlier checkpoint; snapshot covers it
			}
			return fail(err)
		}
		limit := int64(-1)
		if s == l.seq {
			// The active segment may grow after the lock drops; stop at the
			// captured size, which is always a whole-record boundary.
			limit = l.size
		}
		parts = append(parts, cursorPart{seq: s, f: f, limit: limit})
	}
	l.mu.Unlock()

	var err error
	for _, p := range parts {
		if err == nil {
			err = readPart(p, fn)
		}
		p.f.Close()
	}
	return err
}

// readPart replays one pinned cursor file. Every record must parse: cursor
// files never carry a torn tail (the active segment is cut at a commit
// boundary and older files were fully committed), so any framing error is
// real corruption.
func readPart(p cursorPart, fn func(seg uint64, rec []byte) error) error {
	var data []byte
	var err error
	if p.limit >= 0 {
		data = make([]byte, p.limit)
		_, err = io.ReadFull(p.f, data)
	} else {
		data, err = io.ReadAll(p.f)
	}
	if err != nil {
		return fmt.Errorf("wal: cursor: segment %d: %w", p.seq, err)
	}
	_, err = walk(data, func(rec []byte) error { return fn(p.seq, rec) }, false)
	if err != nil {
		return fmt.Errorf("wal: cursor: segment %d: %w", p.seq, err)
	}
	return nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close syncs and closes the active segment. Further operations return
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if !l.noSync {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// rollLocked closes the active segment and starts the next one.
func (l *Log) rollLocked() error {
	if !l.noSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	l.f.Close()
	l.f = nil
	return l.startSegmentLocked(l.seq + 1)
}

func (l *Log) startSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, fileName(seq, segSuffix)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: new segment: %w", err)
	}
	// Persist the new directory entry: Append fsyncs record bytes into the
	// file, but without this a crash could drop the segment file itself.
	if err := l.syncDir(); err != nil {
		f.Close()
		return fmt.Errorf("wal: new segment: %w", err)
	}
	l.f, l.seq, l.size = f, seq, 0
	return nil
}

// syncDir fsyncs the log directory, making renames/creates/unlinks durable.
func (l *Log) syncDir() error {
	if l.noSync {
		return nil
	}
	d, err := os.Open(l.dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

// appendFrame appends one framed record to b.
func appendFrame(b, payload []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, crcTable))
	return append(b, payload...)
}

// nextFrame parses the first framed record of b, returning the payload and
// the bytes consumed. io.EOF means b is empty; io.ErrUnexpectedEOF means the
// record is torn (bytes missing at the end of b); ErrCorrupt means the bytes
// present cannot be a valid record.
func nextFrame(b []byte) (payload []byte, n int, err error) {
	if len(b) == 0 {
		return nil, 0, io.EOF
	}
	length, un := binary.Uvarint(b)
	if un == 0 {
		return nil, 0, io.ErrUnexpectedEOF // varint cut off at buffer end
	}
	if un < 0 || length > maxRecordBytes {
		return nil, 0, ErrCorrupt
	}
	rest := b[un:]
	if uint64(len(rest)) < 4+length {
		return nil, 0, io.ErrUnexpectedEOF
	}
	sum := binary.LittleEndian.Uint32(rest)
	payload = rest[4 : 4+length]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, un + 4 + int(length), nil
}

// walk invokes replay for every record in data and returns how many bytes
// of whole records it consumed. With tolerateTorn, a torn record at the tail
// is silently dropped (the caller truncates the file to the consumed
// length); corruption — or a torn record when not tolerated — is an error.
func walk(data []byte, replay func(rec []byte) error, tolerateTorn bool) (int, error) {
	pos := 0
	for {
		payload, n, err := nextFrame(data[pos:])
		if err == io.EOF {
			return pos, nil
		}
		if err == io.ErrUnexpectedEOF && tolerateTorn {
			return pos, nil
		}
		if err != nil {
			return pos, fmt.Errorf("offset %d: %w", pos, err)
		}
		if rerr := replay(payload); rerr != nil {
			return pos, fmt.Errorf("offset %d: %w", pos, rerr)
		}
		pos += n
	}
}

// validPrefix returns the length of data's longest prefix of whole records.
func validPrefix(data []byte) int {
	pos := 0
	for {
		_, n, err := nextFrame(data[pos:])
		if err != nil {
			return pos
		}
		pos += n
	}
}

func fileName(seq uint64, suffix string) string {
	return fmt.Sprintf("%018d%s", seq, suffix)
}

func parseName(name, suffix string) (uint64, bool) {
	seq, err := strconv.ParseUint(strings.TrimSuffix(name, suffix), 10, 64)
	return seq, err == nil && seq > 0
}
