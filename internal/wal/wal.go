// Package wal implements the segmented write-ahead log behind the durable
// storage engine (storage.Durable). The log is a directory of append-only
// segment files plus at most one snapshot file:
//
//	000000000000000001.wal   log segments, ascending sequence numbers
//	000000000000000003.wal
//	000000000000000003.snap  checkpoint covering every segment ≤ 3
//
// Each record — in segments and snapshots alike — is framed as
//
//	uvarint(payload length) || uint32le(crc32c payload checksum) || payload
//
// where the payload is opaque to the log (the storage engine stores
// internal/wire version records).
//
// # Pipelined group commit
//
// Commits are pipelined through a single background committer goroutine:
// Append and AppendAsync frame their records into a staging buffer and
// return (AppendAsync) or wait for durability (Append), while the committer
// drains the entire staged buffer as one commit group — one Write and, unless
// NoSync is set, one fsync per group, no matter how many concurrent appenders
// contributed. While a group's fsync is in flight the next group accumulates,
// so the disk is never idle between commits and the fsync cost amortizes
// across every record staged meanwhile. Barrier waits until everything staged
// so far is durable; Err reports the sticky persistence error that fails the
// log permanently once the committer cannot write (the error is also pushed
// to Options.OnError, and every staged-but-unsynced append is failed rather
// than silently dropped). Close and Checkpoint drain the pipeline first, so
// an orderly shutdown never loses an acknowledged-async record.
//
// # Per-segment range index
//
// When Options.TagOf is set, every record is tagged at stage time with an
// (origin, timestamp) pair and each segment tracks the [min,max] timestamp
// range it holds per origin. A rolled segment persists its range as an index
// trailer record (a reserved payload the log filters out of replay and
// cursor reads); Open rebuilds the in-memory index from the trailers and — for
// the tail segment, which has none — from the replayed records themselves.
// ReadRange uses the index to skip the snapshot and every segment whose
// ranges cannot intersect a requested per-origin (lo, hi] window, which turns
// a catch-up of a small recent gap from an O(store) scan into an O(gap) read
// of the last segment(s).
//
// Checkpoint atomically replaces the log's history with a snapshot: the
// snapshot is written to a temp file, fsynced and renamed to
// <activeseq>.snap, after which every segment ≤ activeseq (and any older
// snapshot) is removed and a fresh segment is started. Recovery (Open) loads
// the newest snapshot, replays every younger segment in order, and tolerates
// a torn record at the very tail of the final segment — the footprint of a
// crash mid-commit — by truncating it away. A short or corrupt record
// anywhere else is real corruption and fails the open.
//
// ReadFrom is the cursor over the same history for a live log: it replays
// snapshot + segments from a given segment sequence without blocking
// appends, pinning the files open so concurrent checkpoints cannot yank
// them away. The replication plane (internal/repl) streams catch-up data
// through it, and SnapshotSeq exposes the durable floor below which history
// exists only in compacted (snapshot) form. Cursors see only committed
// bytes: records staged but not yet written by the committer are invisible,
// so a cursor can never replay data that a crash could still lose.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	segSuffix  = ".wal"
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"

	defaultSegmentBytes = 4 << 20

	// maxRecordBytes bounds a record so a corrupted length prefix cannot ask
	// recovery to allocate gigabytes (mirrors wire's frame limit).
	maxRecordBytes = 1 << 28

	// maxStageBytes bounds the staging buffer: appenders block once this much
	// is waiting on the committer, bounding memory and the ack-to-durable gap.
	maxStageBytes = 8 << 20
)

// Sentinel errors.
var (
	// ErrClosed is returned for operations on a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrCorrupt marks a structurally invalid record that cannot be a torn
	// tail write (bad checksum with all bytes present, absurd length, ...).
	ErrCorrupt = errors.New("wal: corrupt record")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// idxMagic prefixes the payload of an index trailer record — the per-origin
// [min,max] timestamp ranges a rolled segment persists about itself. The
// first byte is outside the wire codec's marker space and outside printable
// ASCII, so engine payloads can never collide with it.
var idxMagic = []byte{0xF7, 'w', 'i', 'd', 'x', '1'}

// Options parameterizes a Log.
type Options struct {
	// SegmentBytes rolls to a new segment once the active one reaches this
	// size; 0 selects the default (4 MiB).
	SegmentBytes int64
	// NoSync skips the fsync at each commit boundary. Cheap, but a process
	// crash may lose the last commits; machine crashes may lose more.
	NoSync bool
	// GroupWindow is how long the committer lingers after the first record of
	// a group is staged, coalescing concurrent appends into one fsync. 0
	// commits as soon as the committer is free (pipelining alone already
	// groups whatever accumulated during the previous fsync).
	GroupWindow time.Duration
	// TagOf extracts the (origin, timestamp) index tag from a record payload;
	// ok=false marks the record untagged, which makes its segment never
	// skippable by ReadRange. nil disables the range index.
	TagOf func(rec []byte) (origin int, ts uint64, ok bool)
	// Neutral, when set, marks records that are invisible to the range
	// index: they neither tag their segment nor force it unskippable, so
	// engine bookkeeping records (which TagOf cannot parse) do not defeat
	// the seek optimization. Checked before TagOf.
	Neutral func(rec []byte) bool
	// OnError is invoked once, without internal locks held, when the
	// background committer hits a persistence error and the log goes sticky-
	// failed. Synchronous callers additionally get the error returned.
	OnError func(error)
}

// Stats counts durable-path work. Aggregate with Merge.
type Stats struct {
	Groups  uint64 // commit groups written
	Fsyncs  uint64 // fsyncs issued (file and directory)
	Records uint64 // records committed

	GroupMax  uint64     // largest commit group, in records
	GroupHist [17]uint64 // records-per-group histogram, bucket i ≈ 2^i records

	AckLagSumNS int64 // total stage→durable latency across groups, ns
	AckLagMaxNS int64 // worst stage→durable latency of any group, ns
}

// Merge folds o into s (sums counters, maxes the maxima).
func (s *Stats) Merge(o Stats) {
	s.Groups += o.Groups
	s.Fsyncs += o.Fsyncs
	s.Records += o.Records
	if o.GroupMax > s.GroupMax {
		s.GroupMax = o.GroupMax
	}
	for i := range s.GroupHist {
		s.GroupHist[i] += o.GroupHist[i]
	}
	s.AckLagSumNS += o.AckLagSumNS
	if o.AckLagMaxNS > s.AckLagMaxNS {
		s.AckLagMaxNS = o.AckLagMaxNS
	}
}

// GroupP50 returns the approximate median commit-group size in records
// (the lower bound of the histogram bucket holding the median), 0 if no
// groups have committed.
func (s Stats) GroupP50() uint64 {
	if s.Groups == 0 {
		return 0
	}
	half := (s.Groups + 1) / 2
	var seen uint64
	for i, n := range s.GroupHist {
		seen += n
		if seen >= half {
			return uint64(1) << i
		}
	}
	return s.GroupMax
}

// tagEntry is a staged record's index tag; origin -1 means untagged, -2
// means neutral (invisible to the index, see Options.Neutral).
type tagEntry struct {
	origin int32
	ts     uint64
}

const tagNeutral = -2

// partRange is the per-origin [min,max] timestamp range of one log part
// (segment or snapshot). lo[o] == 0 means origin o is absent (real tags
// carry physical-clock timestamps, which are always > 0).
type partRange struct {
	lo, hi   []uint64
	untagged bool // holds at least one record without a tag: never skippable
}

func (p *partRange) add(t tagEntry) {
	if t.origin == tagNeutral {
		return
	}
	if t.origin < 0 {
		p.untagged = true
		return
	}
	o := int(t.origin)
	for len(p.lo) <= o {
		p.lo = append(p.lo, 0)
		p.hi = append(p.hi, 0)
	}
	if p.lo[o] == 0 || t.ts < p.lo[o] {
		p.lo[o] = t.ts
	}
	if t.ts > p.hi[o] {
		p.hi[o] = t.ts
	}
}

// overlaps reports whether the part may hold a record inside the per-origin
// window (lo[o], hi[o]]. Missing request entries are unbounded (lo 0, hi
// +inf), an unknown range (nil) or an untagged record forces a read.
func (p *partRange) overlaps(lo, hi []uint64) bool {
	if p == nil || p.untagged {
		return true
	}
	for o, plo := range p.lo {
		if plo == 0 {
			continue
		}
		var rlo uint64
		rhi := ^uint64(0)
		if o < len(lo) {
			rlo = lo[o]
		}
		if o < len(hi) {
			rhi = hi[o]
		}
		if p.hi[o] > rlo && plo <= rhi {
			return true
		}
	}
	return false
}

// Log is a segmented append-only log. It is safe for concurrent use.
type Log struct {
	dir      string
	segBytes int64
	noSync   bool
	window   time.Duration
	tagOf    func(rec []byte) (int, uint64, bool)
	neutral  func(rec []byte) bool
	onErr    func(error)

	mu     sync.Mutex
	stageC sync.Cond // signals the committer: work staged / closing
	doneC  sync.Cond // signals appenders: group committed / state change

	f        *os.File // active segment, nil after Close
	seq      uint64   // active segment sequence number
	firstSeg uint64   // oldest live segment sequence number
	snap     uint64   // current snapshot sequence number, 0 if none
	size     int64    // committed bytes in the active segment
	since    int64    // bytes committed (or replayed) since the last checkpoint
	closed   bool
	done     bool  // committer goroutine has exited
	err      error // sticky persistence error; the log is dead once set

	stage      []byte     // framed records awaiting the committer
	stageTags  []tagEntry // index tags for the staged records
	stageFirst time.Time  // when the oldest staged record arrived
	spare      []byte     // recycled group buffer
	spareTags  []tagEntry
	stagedID   uint64 // id the currently-staging group will commit under
	committed  uint64 // id of the last durably committed group
	committing bool   // committer is writing a group outside the lock

	idx     map[uint64]*partRange // ranges of sealed segments
	cur     *partRange            // range of the active segment
	snapRng *partRange            // range of the snapshot, nil if unknown
	buf     []byte                // checkpoint frame scratch
	stats   Stats
}

// Open opens (creating if necessary) the log in dir and replays its state:
// first the newest snapshot's records, then every younger segment's records
// in append order, invoking replay for each payload. The payload slice is
// only valid during the call. A torn record at the tail of the final segment
// is truncated away; corruption anywhere else fails the open.
func Open(dir string, opts Options, replay func(rec []byte) error) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, snapSeq, err := scanDir(dir)
	if err != nil {
		return nil, err
	}

	l := &Log{
		dir:      dir,
		segBytes: opts.SegmentBytes,
		noSync:   opts.NoSync,
		window:   opts.GroupWindow,
		tagOf:    opts.TagOf,
		neutral:  opts.Neutral,
		onErr:    opts.OnError,
		snap:     snapSeq,
		stagedID: 1,
		idx:      make(map[uint64]*partRange),
	}
	l.stageC.L = &l.mu
	l.doneC.L = &l.mu

	// sift wraps replay: index trailers are consumed into trailer (never shown
	// to the engine), every other record is tagged into rng and replayed.
	sift := func(rng *partRange, trailer **partRange) func(rec []byte) error {
		return func(rec []byte) error {
			if tr, ok := parseIdxTrailer(rec); ok {
				if trailer != nil {
					*trailer = tr
				}
				return nil
			}
			rng.add(l.tag(rec))
			return replay(rec)
		}
	}

	if snapSeq > 0 {
		data, err := os.ReadFile(filepath.Join(dir, fileName(snapSeq, snapSuffix)))
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		// Snapshots are renamed into place after an fsync, so a readable
		// snapshot must parse end to end; any framing error is corruption.
		rng := &partRange{}
		if _, err := walk(data, sift(rng, nil), false); err != nil {
			return nil, fmt.Errorf("wal: snapshot %d: %w", snapSeq, err)
		}
		l.snapRng = rng
	}

	var tailLen, tailValid int // final segment: file size and valid prefix
	for i, seq := range segs {
		data, err := os.ReadFile(filepath.Join(dir, fileName(seq, segSuffix)))
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		rng := &partRange{}
		var trailer *partRange
		consumed, werr := walk(data, sift(rng, &trailer), i == len(segs)-1)
		if werr != nil {
			return nil, fmt.Errorf("wal: segment %d: %w", seq, werr)
		}
		if trailer != nil {
			// A sealed segment's persisted index is authoritative — it keeps
			// ranges available even when this open has no TagOf.
			rng = trailer
		}
		l.idx[seq] = rng
		l.since += int64(consumed)
		tailLen, tailValid = len(data), consumed
	}

	// Reopen the last segment for appending (its torn tail, if any, was
	// already measured by walk and is truncated here), or start a fresh one.
	if n := len(segs); n > 0 {
		l.seq = segs[n-1]
		l.firstSeg = segs[0]
		l.cur = l.idx[l.seq]
		delete(l.idx, l.seq)
		path := filepath.Join(dir, fileName(l.seq, segSuffix))
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if tailValid < tailLen {
			if err := f.Truncate(int64(tailValid)); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
		}
		if _, err := f.Seek(int64(tailValid), io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f, l.size = f, int64(tailValid)
	} else {
		if err := l.startSegmentLocked(snapSeq + 1); err != nil {
			return nil, err
		}
		l.firstSeg = snapSeq + 1
	}
	if l.cur == nil {
		l.cur = &partRange{}
	}
	go l.committer()
	return l, nil
}

// tag computes a staged record's index tag.
func (l *Log) tag(rec []byte) tagEntry {
	if l.neutral != nil && l.neutral(rec) {
		return tagEntry{origin: tagNeutral}
	}
	if l.tagOf != nil {
		if o, ts, ok := l.tagOf(rec); ok && o >= 0 {
			return tagEntry{origin: int32(o), ts: ts}
		}
	}
	return tagEntry{origin: -1}
}

// scanDir classifies the directory's files: ascending segment sequences
// newer than the newest snapshot, and that snapshot's sequence (0 if none).
// Stale temp files and files made obsolete by the snapshot (leftovers of a
// crash mid-checkpoint) are removed.
func scanDir(dir string) (segs []uint64, snapSeq uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	var snaps []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			_ = os.Remove(filepath.Join(dir, name))
		case strings.HasSuffix(name, segSuffix):
			if seq, ok := parseName(name, segSuffix); ok {
				segs = append(segs, seq)
			}
		case strings.HasSuffix(name, snapSuffix):
			if seq, ok := parseName(name, snapSuffix); ok {
				snaps = append(snaps, seq)
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	if len(snaps) > 0 {
		snapSeq = snaps[len(snaps)-1]
		for _, s := range snaps[:len(snaps)-1] {
			_ = os.Remove(filepath.Join(dir, fileName(s, snapSuffix)))
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	live := segs[:0]
	for _, s := range segs {
		if s <= snapSeq {
			_ = os.Remove(filepath.Join(dir, fileName(s, segSuffix)))
			continue
		}
		live = append(live, s)
	}
	return live, snapSeq, nil
}

// ---------------------------------------------------------------------------
// The commit pipeline
// ---------------------------------------------------------------------------

// stageLocked frames recs into the staging buffer and returns the id of the
// commit group they will ride. Blocks while the stage is over its cap.
func (l *Log) stageLocked(recs [][]byte) (uint64, error) {
	for {
		if l.closed {
			return 0, ErrClosed
		}
		if l.err != nil {
			return 0, l.err
		}
		if l.f == nil {
			return 0, ErrClosed
		}
		if len(l.stage) < maxStageBytes {
			break
		}
		l.doneC.Wait()
	}
	if len(l.stage) == 0 {
		l.stageFirst = time.Now()
	}
	for _, r := range recs {
		l.stage = appendFrame(l.stage, r)
		l.stageTags = append(l.stageTags, l.tag(r))
	}
	l.stageC.Signal()
	return l.stagedID, nil
}

// Append commits the given records and waits until they are durable: the
// records join the staging buffer, coalesce with every other append staged
// meanwhile into a single commit group — one Write, one fsync (unless
// NoSync) — and Append returns once that group has committed. The record
// slices are not retained.
func (l *Log) Append(recs ...[]byte) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	id, err := l.stageLocked(recs)
	if err != nil {
		return err
	}
	for l.committed < id {
		if l.err != nil {
			return l.err
		}
		if l.closed {
			return ErrClosed
		}
		l.doneC.Wait()
	}
	return nil
}

// AppendAsync stages the given records for the committer and returns without
// waiting for durability: the ack-to-durable gap is bounded by the staging
// cap plus one in-flight commit group. A later persistence failure fails the
// log (Err, Options.OnError) rather than dropping the records silently, and
// Close/Checkpoint/Barrier drain the pipeline. The record slices are framed
// (copied) before return and not retained.
func (l *Log) AppendAsync(recs ...[]byte) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.stageLocked(recs)
	return err
}

// Barrier waits until every record staged before the call is durable (or the
// log has failed). It is the sync boundary async appenders order against:
// catch-up completeness claims and replication-plane VV advancement call it
// before promising history to a remote.
func (l *Log) Barrier() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.err != nil {
			return l.err
		}
		if l.closed || l.f == nil {
			return ErrClosed
		}
		if len(l.stage) == 0 && !l.committing {
			return nil
		}
		l.doneC.Wait()
	}
}

// Err returns the sticky persistence error, if the committer has failed.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Stats returns a snapshot of the log's durable-path counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// committer is the single background goroutine that drains the staging
// buffer: each cycle takes everything staged as one commit group, writes it
// with one Write and (unless NoSync) one fsync — outside the lock, so the
// next group accumulates meanwhile — then publishes the new durable boundary.
func (l *Log) committer() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		for !l.closed && l.err == nil && len(l.stage) == 0 {
			l.stageC.Wait()
		}
		if l.closed || l.err != nil {
			// After a sticky error the staged tail is undeliverable; park
			// until Close so late wakeups keep finding a live Cond.
			for !l.closed {
				l.stageC.Wait()
			}
			l.done = true
			l.doneC.Broadcast()
			return
		}
		if l.window > 0 {
			// Linger to let concurrent appenders join this group's fsync.
			if d := l.window - time.Since(l.stageFirst); d > 0 {
				l.mu.Unlock()
				time.Sleep(d)
				l.mu.Lock()
				if l.closed || l.err != nil || len(l.stage) == 0 {
					continue
				}
			}
		}
		group, tags, start := l.stage, l.stageTags, l.stageFirst
		l.stage, l.stageTags = l.spare[:0], l.spareTags[:0]
		id := l.stagedID
		l.stagedID++
		l.committing = true
		l.doneC.Broadcast() // stage drained: release backpressured appenders
		if l.size >= l.segBytes {
			if err := l.rollLocked(); err != nil {
				l.committing = false
				l.spare, l.spareTags = group, tags
				l.failLocked(err)
				continue
			}
		}
		f := l.f
		l.mu.Unlock()

		_, werr := f.Write(group)
		if werr == nil && !l.noSync {
			werr = f.Sync()
		}

		l.mu.Lock()
		l.committing = false
		l.spare, l.spareTags = group, tags
		if werr != nil {
			l.failLocked(fmt.Errorf("wal: commit: %w", werr))
			continue
		}
		l.size += int64(len(group))
		l.since += int64(len(group))
		for _, t := range tags {
			l.cur.add(t)
		}
		n := uint64(len(tags))
		l.stats.Groups++
		l.stats.Records += n
		if !l.noSync {
			l.stats.Fsyncs++
		}
		if n > l.stats.GroupMax {
			l.stats.GroupMax = n
		}
		b := bits.Len64(n) - 1
		if b >= len(l.stats.GroupHist) {
			b = len(l.stats.GroupHist) - 1
		}
		l.stats.GroupHist[b]++
		lag := time.Since(start).Nanoseconds()
		l.stats.AckLagSumNS += lag
		if lag > l.stats.AckLagMaxNS {
			l.stats.AckLagMaxNS = lag
		}
		l.committed = id
		l.doneC.Broadcast()
	}
}

// failLocked records the sticky error, wakes everyone, and reports it to
// Options.OnError (outside the lock).
func (l *Log) failLocked(err error) {
	if l.err != nil {
		return
	}
	l.err = err
	l.stageC.Broadcast()
	l.doneC.Broadcast()
	if cb := l.onErr; cb != nil {
		l.mu.Unlock()
		cb(err)
		l.mu.Lock()
	}
}

// drainLocked waits for the commit pipeline to go idle (stage empty, no
// group in flight). Returns the sticky error or ErrClosed if the log dies
// while waiting.
func (l *Log) drainLocked() error {
	for {
		if l.err != nil {
			return l.err
		}
		if l.closed || l.f == nil {
			return ErrClosed
		}
		if len(l.stage) == 0 && !l.committing {
			return nil
		}
		l.doneC.Wait()
	}
}

// Checkpoint atomically replaces the log's history with a snapshot: fill is
// invoked once and emits every snapshot record (records are framed and
// streamed to disk in chunks, so the snapshot never materializes in memory;
// an emitted slice may be reused by the caller immediately after emit
// returns). The caller must guarantee the emitted records capture every
// record appended so far — the storage engine holds its writers out during
// the call. The commit pipeline is drained first, so async appends are on
// disk before the segments holding them are pruned. On return the old
// segments are gone and a fresh, empty segment is active.
func (l *Log) Checkpoint(fill func(emit func(rec []byte))) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.drainLocked(); err != nil {
		return err
	}
	tmp := filepath.Join(l.dir, "checkpoint"+tmpSuffix)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	var werr error
	snapRng := &partRange{}
	buf := l.buf[:0]
	fill(func(rec []byte) {
		if werr != nil {
			return
		}
		snapRng.add(l.tag(rec))
		buf = appendFrame(buf, rec)
		if len(buf) >= 1<<20 {
			_, werr = f.Write(buf)
			buf = buf[:0]
		}
	})
	l.buf = buf[:0]
	if werr == nil && len(buf) > 0 {
		_, werr = f.Write(buf)
	}
	if werr != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint: %w", werr)
	}
	if !l.noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: checkpoint: %w", err)
		}
		l.stats.Fsyncs++
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	snapPath := filepath.Join(l.dir, fileName(l.seq, snapSuffix))
	if err := os.Rename(tmp, snapPath); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	// The rename must be durably ordered before the unlinks below: without a
	// directory fsync a power loss could persist the segment removals but
	// not the new snapshot's directory entry, losing everything.
	if err := l.syncDir(); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}

	// The snapshot is durable: everything up to and including the active
	// segment is obsolete.
	oldSeq := l.seq
	l.f.Close()
	l.f = nil
	if err := l.startSegmentLocked(oldSeq + 1); err != nil {
		return err
	}
	l.firstSeg = oldSeq + 1
	for seq := oldSeq; seq >= 1; seq-- {
		path := filepath.Join(l.dir, fileName(seq, segSuffix))
		if os.Remove(path) != nil {
			break // older segments were pruned by earlier checkpoints
		}
		delete(l.idx, seq)
	}
	if l.snap != 0 {
		_ = os.Remove(filepath.Join(l.dir, fileName(l.snap, snapSuffix)))
	}
	l.snap = oldSeq
	l.snapRng = snapRng
	l.cur = &partRange{}
	l.since = 0
	return nil
}

// SinceCheckpoint returns how many log bytes have accumulated since the last
// checkpoint (or open), the storage engine's checkpoint trigger.
func (l *Log) SinceCheckpoint() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.since
}

// SnapshotSeq returns the sequence number of the current snapshot — the
// log's durable floor: history at and below this sequence lives only in the
// snapshot (its segments are gone). 0 means no checkpoint has been taken.
func (l *Log) SnapshotSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snap
}

// cursorPart is one file of a ReadFrom iteration, pinned open while the
// cursor runs so a concurrent checkpoint unlinking it cannot invalidate the
// read.
type cursorPart struct {
	seq   uint64
	f     *os.File
	limit int64 // bytes to read; -1 = whole file
}

// ReadFrom replays the log's durable records in order, invoking fn with each
// record's segment sequence number and payload (the payload slice is only
// valid during the call). Iteration starts at segment seq: when seq is at or
// below the snapshot floor (SnapshotSeq), the snapshot's records are
// replayed first — attributed to the floor sequence — followed by every live
// segment ≥ seq. The boundary is captured atomically at the call: records
// durably committed before ReadFrom is invoked are included, staged or later
// appends are not, and concurrent appends or checkpoints never corrupt the
// iteration (files are pinned open before the lock is released). This is the
// replication catch-up read path: it shares nothing with the hot append path
// beyond the boundary capture.
func (l *Log) ReadFrom(seq uint64, fn func(seg uint64, rec []byte) error) error {
	_, err := l.read(seq, false, nil, nil, fn)
	return err
}

// ReadRange replays, in order, the durable records that may fall inside the
// per-origin window (lo[o], hi[o]] — request entries past either slice's
// length are unbounded. It consults the segment range index to skip the
// snapshot and any segment that cannot intersect the window, and returns how
// many such parts it skipped (the seek win) without reading them. fn may
// still see records outside the window: ranges are per-part summaries, so
// callers keep their per-record filter.
func (l *Log) ReadRange(lo, hi []uint64, fn func(seg uint64, rec []byte) error) (skipped int, err error) {
	return l.read(0, true, lo, hi, fn)
}

func (l *Log) read(seq uint64, ranged bool, lo, hi []uint64, fn func(seg uint64, rec []byte) error) (int, error) {
	l.mu.Lock()
	if l.f == nil || l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	skipped := 0
	var parts []cursorPart
	fail := func(err error) error {
		l.mu.Unlock()
		for _, p := range parts {
			p.f.Close()
		}
		return fmt.Errorf("wal: cursor: %w", err)
	}
	if l.snap > 0 && seq <= l.snap {
		if ranged && !l.snapRng.overlaps(lo, hi) {
			skipped++
		} else {
			f, err := os.Open(filepath.Join(l.dir, fileName(l.snap, snapSuffix)))
			if err != nil {
				return skipped, fail(err)
			}
			parts = append(parts, cursorPart{seq: l.snap, f: f, limit: -1})
		}
	}
	first := l.firstSeg
	if seq > first {
		first = seq
	}
	for s := first; s <= l.seq; s++ {
		rng := l.cur
		if s != l.seq {
			rng = l.idx[s]
		}
		if ranged && !rng.overlaps(lo, hi) {
			skipped++
			continue
		}
		f, err := os.Open(filepath.Join(l.dir, fileName(s, segSuffix)))
		if err != nil {
			if os.IsNotExist(err) {
				continue // pruned by an earlier checkpoint; snapshot covers it
			}
			return skipped, fail(err)
		}
		limit := int64(-1)
		if s == l.seq {
			// The active segment may grow after the lock drops; stop at the
			// committed size, which is always a whole-record boundary.
			limit = l.size
		}
		parts = append(parts, cursorPart{seq: s, f: f, limit: limit})
	}
	l.mu.Unlock()

	var err error
	for _, p := range parts {
		if err == nil {
			err = readPart(p, fn)
		}
		p.f.Close()
	}
	return skipped, err
}

// readPart replays one pinned cursor file. Every record must parse: cursor
// files never carry a torn tail (the active segment is cut at a commit
// boundary and older files were fully committed), so any framing error is
// real corruption. Index trailer records are filtered out.
func readPart(p cursorPart, fn func(seg uint64, rec []byte) error) error {
	var data []byte
	var err error
	if p.limit >= 0 {
		data = make([]byte, p.limit)
		_, err = io.ReadFull(p.f, data)
	} else {
		data, err = io.ReadAll(p.f)
	}
	if err != nil {
		return fmt.Errorf("wal: cursor: segment %d: %w", p.seq, err)
	}
	_, err = walk(data, func(rec []byte) error {
		if isIdxTrailer(rec) {
			return nil
		}
		return fn(p.seq, rec)
	}, false)
	if err != nil {
		return fmt.Errorf("wal: cursor: segment %d: %w", p.seq, err)
	}
	return nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close drains the commit pipeline, then syncs and closes the active
// segment. Further operations return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	for (len(l.stage) > 0 || l.committing) && l.err == nil {
		l.doneC.Wait()
	}
	l.closed = true
	l.stageC.Broadcast()
	l.doneC.Broadcast()
	for !l.done {
		l.doneC.Wait()
	}
	var err error
	if l.f != nil {
		if !l.noSync && l.err == nil {
			err = l.f.Sync()
			l.stats.Fsyncs++
		}
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}

// rollLocked seals the active segment — persisting its range index as a
// trailer record — and starts the next one.
func (l *Log) rollLocked() error {
	if trailer := appendIdxTrailer(nil, l.cur); trailer != nil {
		if _, err := l.f.Write(trailer); err != nil {
			return fmt.Errorf("wal: seal segment: %w", err)
		}
	}
	if !l.noSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
		l.stats.Fsyncs++
	}
	l.f.Close()
	l.f = nil
	l.idx[l.seq] = l.cur
	l.cur = &partRange{}
	return l.startSegmentLocked(l.seq + 1)
}

func (l *Log) startSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, fileName(seq, segSuffix)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: new segment: %w", err)
	}
	// Persist the new directory entry: the committer fsyncs record bytes into
	// the file, but without this a crash could drop the segment file itself.
	if err := l.syncDir(); err != nil {
		f.Close()
		return fmt.Errorf("wal: new segment: %w", err)
	}
	l.f, l.seq, l.size = f, seq, 0
	return nil
}

// syncDir fsyncs the log directory, making renames/creates/unlinks durable.
func (l *Log) syncDir() error {
	if l.noSync {
		return nil
	}
	d, err := os.Open(l.dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		l.stats.Fsyncs++
	}
	return err
}

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

// appendFrame appends one framed record to b.
func appendFrame(b, payload []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, crcTable))
	return append(b, payload...)
}

// appendIdxTrailer frames a segment's range index as a trailer record; nil if
// there is nothing to persist (no tagged records and no untagged marker —
// an empty segment needs no trailer).
func appendIdxTrailer(b []byte, r *partRange) []byte {
	n := 0
	for _, lo := range r.lo {
		if lo > 0 {
			n++
		}
	}
	if n == 0 && !r.untagged {
		return b
	}
	p := make([]byte, 0, len(idxMagic)+2+n*15)
	p = append(p, idxMagic...)
	if r.untagged {
		p = append(p, 1)
	} else {
		p = append(p, 0)
	}
	p = binary.AppendUvarint(p, uint64(n))
	for o, lo := range r.lo {
		if lo == 0 {
			continue
		}
		p = binary.AppendUvarint(p, uint64(o))
		p = binary.AppendUvarint(p, lo)
		p = binary.AppendUvarint(p, r.hi[o])
	}
	return appendFrame(b, p)
}

func isIdxTrailer(rec []byte) bool {
	return len(rec) >= len(idxMagic) && string(rec[:len(idxMagic)]) == string(idxMagic)
}

// parseIdxTrailer decodes an index trailer payload; ok=false if rec is a
// regular record. A recognizable but malformed trailer yields an untagged
// (never-skippable) range rather than an error — the index is advisory.
func parseIdxTrailer(rec []byte) (*partRange, bool) {
	if !isIdxTrailer(rec) {
		return nil, false
	}
	r := &partRange{}
	b := rec[len(idxMagic):]
	bad := &partRange{untagged: true}
	if len(b) < 1 {
		return bad, true
	}
	r.untagged = b[0] != 0
	b = b[1:]
	n, un := binary.Uvarint(b)
	if un <= 0 || n > 1<<20 {
		return bad, true
	}
	b = b[un:]
	for i := uint64(0); i < n; i++ {
		o, un := binary.Uvarint(b)
		if un <= 0 || o > 1<<20 {
			return bad, true
		}
		b = b[un:]
		lo, un := binary.Uvarint(b)
		if un <= 0 {
			return bad, true
		}
		b = b[un:]
		hi, un := binary.Uvarint(b)
		if un <= 0 {
			return bad, true
		}
		b = b[un:]
		r.add(tagEntry{origin: int32(o), ts: lo})
		r.add(tagEntry{origin: int32(o), ts: hi})
	}
	return r, true
}

// nextFrame parses the first framed record of b, returning the payload and
// the bytes consumed. io.EOF means b is empty; io.ErrUnexpectedEOF means the
// record is torn (bytes missing at the end of b); ErrCorrupt means the bytes
// present cannot be a valid record.
func nextFrame(b []byte) (payload []byte, n int, err error) {
	if len(b) == 0 {
		return nil, 0, io.EOF
	}
	length, un := binary.Uvarint(b)
	if un == 0 {
		return nil, 0, io.ErrUnexpectedEOF // varint cut off at buffer end
	}
	if un < 0 || length > maxRecordBytes {
		return nil, 0, ErrCorrupt
	}
	rest := b[un:]
	if uint64(len(rest)) < 4+length {
		return nil, 0, io.ErrUnexpectedEOF
	}
	sum := binary.LittleEndian.Uint32(rest)
	payload = rest[4 : 4+length]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, un + 4 + int(length), nil
}

// walk invokes replay for every record in data and returns how many bytes
// of whole records it consumed. With tolerateTorn, a torn record at the tail
// is silently dropped (the caller truncates the file to the consumed
// length); corruption — or a torn record when not tolerated — is an error.
func walk(data []byte, replay func(rec []byte) error, tolerateTorn bool) (int, error) {
	pos := 0
	for {
		payload, n, err := nextFrame(data[pos:])
		if err == io.EOF {
			return pos, nil
		}
		if err == io.ErrUnexpectedEOF && tolerateTorn {
			return pos, nil
		}
		if err != nil {
			return pos, fmt.Errorf("offset %d: %w", pos, err)
		}
		if rerr := replay(payload); rerr != nil {
			return pos, fmt.Errorf("offset %d: %w", pos, rerr)
		}
		pos += n
	}
}

// validPrefix returns the length of data's longest prefix of whole records.
func validPrefix(data []byte) int {
	pos := 0
	for {
		_, n, err := nextFrame(data[pos:])
		if err != nil {
			return pos
		}
		pos += n
	}
}

func fileName(seq uint64, suffix string) string {
	return fmt.Sprintf("%018d%s", seq, suffix)
}

func parseName(name, suffix string) (uint64, bool) {
	seq, err := strconv.ParseUint(strings.TrimSuffix(name, suffix), 10, 64)
	return seq, err == nil && seq > 0
}
